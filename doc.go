// Package repro is a constructive reproduction of Simone Santini's position
// paper "Summa Contra Ontologiam" (EDBT 2006 Workshops, LNCS 4254). The paper
// publishes no system and no evaluation; this repository builds, as working
// Go substrates, every formal device the paper names, endorses or attacks —
// order-sorted algebras and Bench-Capon/Malcolm ontology signatures, Guarino's
// intensional-relation machinery, formal grammars, a description logic with
// structural and tableau subsumption, definition graphs and their
// isomorphisms, lexical fields, a fixed-point hermeneutic interpreter, and an
// indexed triple store with ontology-mediated query answering — and turns each
// of the paper's three arguments (definitional, semantic, pragmatic) into a
// measurable synthetic experiment.
//
// The public entry points are:
//
//   - internal/core: the ontology audit that runs all three critiques over an
//     ontonomy and its surrounding data;
//   - internal/query: the BGP query layer over the triple store — variables,
//     selectivity-planned joins, ontology-aware expansion, streaming
//     solutions;
//   - internal/reason: the forward-chaining materialization engine —
//     RDFS-style and user Horn rules evaluated semi-naively to a fixpoint,
//     kept incrementally correct under adds and removes
//     (delete-and-rederive), served through a provenance-tagged view;
//   - internal/server: the HTTP/JSON serving layer over the materialized
//     store — streamed BGP queries, batched incrementally-maintained
//     mutations, and a sharded result cache invalidated by the engine's
//     deltas; the wire contract, with curl transcripts, is API.md;
//   - internal/experiments: the E1–E7, E5b, E5c and A1 experiments whose
//     tables EXPERIMENTS.md records;
//   - cmd/ontoaudit, cmd/ontoserve and cmd/benchrunner: the command-line
//     front ends (ontoaudit -query evaluates BGPs over an annotation store,
//     -materialize answers them from a forward-chained materialization;
//     ontoserve serves the materialization over HTTP — see API.md);
//   - examples/: six runnable walkthroughs — the paper's own examples plus
//     examples/server, the HTTP serving-stack tour.
//
// The benchmarks in bench_test.go regenerate one experiment per table and
// measure BGP joins at store scale; see DESIGN.md for the system inventory
// and EXPERIMENTS.md for the measured results.
package repro
