package grammar

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// balanced returns the grammar of balanced parentheses:
//
//	S → ( S ) S | ε
func balanced(t *testing.T) *Grammar {
	t.Helper()
	g, err := New(
		[]Symbol{"S"},
		[]Symbol{"(", ")"},
		"S",
		[]Production{
			{Head: "S", Body: []Symbol{"(", "S", ")", "S"}},
			{Head: "S", Body: nil},
		},
	)
	if err != nil {
		t.Fatalf("building balanced grammar: %v", err)
	}
	return g
}

// anbn returns the grammar of a^n b^n, n ≥ 1.
func anbn(t *testing.T) *Grammar {
	t.Helper()
	g, err := New(
		[]Symbol{"S"},
		[]Symbol{"a", "b"},
		"S",
		[]Production{
			{Head: "S", Body: []Symbol{"a", "S", "b"}},
			{Head: "S", Body: []Symbol{"a", "b"}},
		},
	)
	if err != nil {
		t.Fatalf("building a^n b^n grammar: %v", err)
	}
	return g
}

func toSymbols(s string) []Symbol {
	out := make([]Symbol, 0, len(s))
	for _, r := range s {
		out = append(out, Symbol(string(r)))
	}
	return out
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		n    []Symbol
		t    []Symbol
		s    Symbol
		p    []Production
	}{
		{"overlapping alphabets", []Symbol{"S"}, []Symbol{"S"}, "S", nil},
		{"start not nonterminal", []Symbol{"S"}, []Symbol{"a"}, "a", nil},
		{"head not nonterminal", []Symbol{"S"}, []Symbol{"a"}, "S", []Production{{Head: "a", Body: []Symbol{"a"}}}},
		{"undeclared body symbol", []Symbol{"S"}, []Symbol{"a"}, "S", []Production{{Head: "S", Body: []Symbol{"z"}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.n, c.t, c.s, c.p); err == nil {
				t.Errorf("expected structural violation for %s", c.name)
			}
		})
	}
}

func TestStructuralCheckAcceptsValid(t *testing.T) {
	err := StructuralCheck(
		[]Symbol{"S", "A"},
		[]Symbol{"a", "b"},
		"S",
		[]Production{{Head: "S", Body: []Symbol{"A", "b"}}, {Head: "A", Body: []Symbol{"a"}}},
	)
	if err != nil {
		t.Errorf("valid 4-tuple rejected: %v", err)
	}
}

func TestRecognizeAnBn(t *testing.T) {
	g := anbn(t)
	accept := []string{"ab", "aabb", "aaabbb", "aaaabbbb"}
	reject := []string{"", "a", "b", "ba", "aab", "abb", "abab", "aabbb"}
	for _, s := range accept {
		if !g.Recognize(toSymbols(s)) {
			t.Errorf("should accept %q", s)
		}
	}
	for _, s := range reject {
		if g.Recognize(toSymbols(s)) {
			t.Errorf("should reject %q", s)
		}
	}
}

func TestRecognizeBalanced(t *testing.T) {
	g := balanced(t)
	accept := []string{"", "()", "()()", "(())", "(()())()"}
	reject := []string{"(", ")", ")(", "(()", "())("}
	for _, s := range accept {
		if !g.Recognize(toSymbols(s)) {
			t.Errorf("should accept %q", s)
		}
	}
	for _, s := range reject {
		if g.Recognize(toSymbols(s)) {
			t.Errorf("should reject %q", s)
		}
	}
}

func TestRecognizeRejectsUnknownTerminal(t *testing.T) {
	g := anbn(t)
	if g.Recognize(toSymbols("axb")) {
		t.Error("string with undeclared terminal must be rejected")
	}
}

func TestDeriveProducesSentence(t *testing.T) {
	g := anbn(t)
	r := rand.New(rand.NewSource(7))
	form := g.Derive(50, func(c []Production) int { return r.Intn(len(c)) })
	if !g.Sentence(form) {
		t.Fatalf("derivation did not terminate in a sentence: %v", form)
	}
	if !g.Recognize(form) {
		t.Errorf("derived sentence %v not recognized by its own grammar", form)
	}
}

func TestDeriveDefaultChooser(t *testing.T) {
	g := anbn(t)
	// The default chooser always picks the first production, which recurses;
	// with a small budget the form is still unfinished.
	form := g.Derive(3, nil)
	if g.Sentence(form) {
		t.Errorf("expected unfinished sentential form, got sentence %v", form)
	}
}

func TestProductionString(t *testing.T) {
	p := Production{Head: "S", Body: []Symbol{"a", "S"}}
	if got := p.String(); got != "S → a S" {
		t.Errorf("String() = %q", got)
	}
	eps := Production{Head: "S"}
	if got := eps.String(); got != "S → ε" {
		t.Errorf("epsilon String() = %q", got)
	}
}

func TestAccessors(t *testing.T) {
	g := anbn(t)
	if g.Start() != "S" {
		t.Errorf("Start = %q", g.Start())
	}
	if !g.IsTerminal("a") || g.IsTerminal("S") {
		t.Error("IsTerminal misclassifies")
	}
	if !g.IsNonTerminal("S") || g.IsNonTerminal("a") {
		t.Error("IsNonTerminal misclassifies")
	}
	if got := len(g.Productions()); got != 2 {
		t.Errorf("Productions() len = %d, want 2", got)
	}
	if got := len(g.ProductionsFor("S")); got != 2 {
		t.Errorf("ProductionsFor(S) len = %d, want 2", got)
	}
	if g.Describe() == "" {
		t.Error("Describe should not be empty")
	}
}

func TestCNFRuleCountStable(t *testing.T) {
	g := balanced(t)
	a := g.ToCNF().RuleCount()
	b := g.ToCNF().RuleCount()
	if a != b || a == 0 {
		t.Errorf("CNF conversion not deterministic or empty: %d vs %d", a, b)
	}
}

func TestCNFEmptyString(t *testing.T) {
	g := balanced(t)
	if !g.ToCNF().Accepts(nil) {
		t.Error("balanced grammar accepts the empty string")
	}
	h := anbn(t)
	if h.ToCNF().Accepts(nil) {
		t.Error("a^n b^n (n≥1) rejects the empty string")
	}
}

// referenceBalanced checks balanced parentheses directly, as an oracle.
func referenceBalanced(s string) bool {
	depth := 0
	for _, r := range s {
		if r == '(' {
			depth++
		} else {
			depth--
		}
		if depth < 0 {
			return false
		}
	}
	return depth == 0
}

func TestPropertyCYKMatchesOracle(t *testing.T) {
	g := balanced(t)
	cnf := g.ToCNF()
	f := func(bits uint16, ln uint8) bool {
		n := int(ln % 12)
		s := make([]byte, n)
		for i := 0; i < n; i++ {
			if bits&(1<<i) != 0 {
				s[i] = '('
			} else {
				s[i] = ')'
			}
		}
		str := string(s)
		return cnf.Accepts(toSymbols(str)) == referenceBalanced(str)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDerivedStringsRecognized(t *testing.T) {
	g := balanced(t)
	cnf := g.ToCNF()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		form := g.Derive(60, func(c []Production) int { return r.Intn(len(c)) })
		if !g.Sentence(form) {
			return true // derivation budget exhausted; nothing to check
		}
		return cnf.Accepts(form)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCYK(b *testing.B) {
	g, err := New(
		[]Symbol{"S"},
		[]Symbol{"(", ")"},
		"S",
		[]Production{
			{Head: "S", Body: []Symbol{"(", "S", ")", "S"}},
			{Head: "S", Body: nil},
		},
	)
	if err != nil {
		b.Fatal(err)
	}
	cnf := g.ToCNF()
	input := toSymbols("(()(()))(()())((()))")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !cnf.Accepts(input) {
			b.Fatal("unexpected rejection")
		}
	}
}
