// Package grammar implements context-free grammars exactly as the paper's §2
// uses them: as the benchmark of what a *structural* definition looks like in
// computing science. A grammar is the classical 4-tuple (N, T, S, P); given an
// arbitrary candidate object one can decide, by structural inspection alone
// and with no reference to intended use, whether it is a grammar, and if it is
// one, what language it recognizes.
//
// The package provides construction and validation of grammars, derivation of
// sentential forms, conversion to Chomsky normal form, and CYK membership
// testing. It is used directly by the definitional-adequacy experiment (E1)
// and by the workload generators.
package grammar

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Symbol is a terminal or non-terminal symbol. Symbols are compared by name;
// the same name must not be used both as a terminal and a non-terminal within
// one grammar.
type Symbol string

// Production is a rewrite rule Head → Body. An empty Body denotes an
// ε-production.
type Production struct {
	Head Symbol
	Body []Symbol
}

// String renders the production in the conventional arrow notation.
func (p Production) String() string {
	if len(p.Body) == 0 {
		return fmt.Sprintf("%s → ε", p.Head)
	}
	parts := make([]string, len(p.Body))
	for i, s := range p.Body {
		parts[i] = string(s)
	}
	return fmt.Sprintf("%s → %s", p.Head, strings.Join(parts, " "))
}

// Grammar is a context-free grammar (N, T, S, P). Use New to construct a
// validated instance.
type Grammar struct {
	nonTerminals map[Symbol]bool
	terminals    map[Symbol]bool
	start        Symbol
	productions  []Production
}

// New builds a grammar from its four components and validates the structural
// conditions of the definition: N and T are disjoint, S ∈ N, every production
// head is in N, and every body symbol is in N ∪ T.
func New(nonTerminals, terminals []Symbol, start Symbol, productions []Production) (*Grammar, error) {
	g := &Grammar{
		nonTerminals: make(map[Symbol]bool, len(nonTerminals)),
		terminals:    make(map[Symbol]bool, len(terminals)),
		start:        start,
	}
	for _, n := range nonTerminals {
		g.nonTerminals[n] = true
	}
	for _, t := range terminals {
		if g.nonTerminals[t] {
			return nil, fmt.Errorf("grammar: symbol %q appears in both N and T", t)
		}
		g.terminals[t] = true
	}
	if !g.nonTerminals[start] {
		return nil, fmt.Errorf("grammar: start symbol %q is not a non-terminal", start)
	}
	for _, p := range productions {
		if !g.nonTerminals[p.Head] {
			return nil, fmt.Errorf("grammar: production head %q is not a non-terminal", p.Head)
		}
		for _, s := range p.Body {
			if !g.nonTerminals[s] && !g.terminals[s] {
				return nil, fmt.Errorf("grammar: production %v uses undeclared symbol %q", p, s)
			}
		}
		body := make([]Symbol, len(p.Body))
		copy(body, p.Body)
		g.productions = append(g.productions, Production{Head: p.Head, Body: body})
	}
	return g, nil
}

// Start returns the start symbol.
func (g *Grammar) Start() Symbol { return g.start }

// NonTerminals returns the non-terminal alphabet in sorted order.
func (g *Grammar) NonTerminals() []Symbol { return sortedSymbols(g.nonTerminals) }

// Terminals returns the terminal alphabet in sorted order.
func (g *Grammar) Terminals() []Symbol { return sortedSymbols(g.terminals) }

// Productions returns a copy of the production list.
func (g *Grammar) Productions() []Production {
	out := make([]Production, len(g.productions))
	copy(out, g.productions)
	return out
}

// IsTerminal reports whether s is a terminal of the grammar.
func (g *Grammar) IsTerminal(s Symbol) bool { return g.terminals[s] }

// IsNonTerminal reports whether s is a non-terminal of the grammar.
func (g *Grammar) IsNonTerminal(s Symbol) bool { return g.nonTerminals[s] }

func sortedSymbols(m map[Symbol]bool) []Symbol {
	out := make([]Symbol, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ProductionsFor returns the productions whose head is n.
func (g *Grammar) ProductionsFor(n Symbol) []Production {
	var out []Production
	for _, p := range g.productions {
		if p.Head == n {
			out = append(out, p)
		}
	}
	return out
}

// Derive applies productions leftmost-first for at most maxSteps steps
// starting from the start symbol, and returns the resulting sentential form.
// choose selects which production to apply among the candidates for the
// leftmost non-terminal; a nil choose always picks the first. Derive is used
// by the workload generators to sample strings of the language.
func (g *Grammar) Derive(maxSteps int, choose func(candidates []Production) int) []Symbol {
	form := []Symbol{g.start}
	for step := 0; step < maxSteps; step++ {
		idx := -1
		for i, s := range form {
			if g.nonTerminals[s] {
				idx = i
				break
			}
		}
		if idx < 0 {
			return form
		}
		cands := g.ProductionsFor(form[idx])
		if len(cands) == 0 {
			return form
		}
		pick := 0
		if choose != nil {
			pick = choose(cands) % len(cands)
			if pick < 0 {
				pick += len(cands)
			}
		}
		body := cands[pick].Body
		next := make([]Symbol, 0, len(form)-1+len(body))
		next = append(next, form[:idx]...)
		next = append(next, body...)
		next = append(next, form[idx+1:]...)
		form = next
	}
	return form
}

// Sentence reports whether the sentential form consists only of terminals.
func (g *Grammar) Sentence(form []Symbol) bool {
	for _, s := range form {
		if !g.terminals[s] {
			return false
		}
	}
	return true
}

// ErrNotRecognized is returned by Parse when the input is not in the language.
var ErrNotRecognized = errors.New("grammar: string not in language")

// Recognize reports whether the sequence of terminal symbols belongs to the
// language of the grammar, using CYK over the Chomsky-normal-form conversion.
// The empty string is recognized iff the start symbol is nullable.
func (g *Grammar) Recognize(input []Symbol) bool {
	for _, s := range input {
		if !g.terminals[s] {
			return false
		}
	}
	return g.ToCNF().Accepts(input)
}

// cnfGrammar is an internal Chomsky-normal-form representation: unit and
// ε-productions eliminated, every production either A→a or A→BC.
type cnfGrammar struct {
	terminalRules map[Symbol][]Symbol    // a → heads A with A→a
	binaryRules   map[[2]Symbol][]Symbol // (B,C) → heads A with A→BC
	start         Symbol
	startNullable bool
}

// ToCNF converts the grammar to Chomsky normal form. The conversion is
// deterministic so that repeated calls produce identical rule sets (useful for
// canonicalization in experiment E1).
func (g *Grammar) ToCNF() *CNF {
	c := &cnfGrammar{
		terminalRules: map[Symbol][]Symbol{},
		binaryRules:   map[[2]Symbol][]Symbol{},
		start:         g.start,
	}

	// Step 1: wrap terminals occurring in long bodies and break long bodies
	// into binary chains, generating fresh symbols deterministically.
	type rule struct {
		head Symbol
		body []Symbol
	}
	var rules []rule
	fresh := 0
	freshSym := func(prefix string) Symbol {
		fresh++
		return Symbol(fmt.Sprintf("_%s%d", prefix, fresh))
	}
	termWrap := map[Symbol]Symbol{}
	wrap := func(t Symbol) Symbol {
		if w, ok := termWrap[t]; ok {
			return w
		}
		w := freshSym("T")
		termWrap[t] = w
		rules = append(rules, rule{head: w, body: []Symbol{t}})
		return w
	}
	for _, p := range g.productions {
		body := make([]Symbol, len(p.Body))
		copy(body, p.Body)
		if len(body) >= 2 {
			for i, s := range body {
				if g.terminals[s] {
					body[i] = wrap(s)
				}
			}
		}
		for len(body) > 2 {
			n := freshSym("B")
			rules = append(rules, rule{head: n, body: []Symbol{body[len(body)-2], body[len(body)-1]}})
			body = append(body[:len(body)-2], n)
		}
		rules = append(rules, rule{head: p.Head, body: body})
	}

	// Step 2: compute nullable symbols and eliminate ε-productions.
	nullable := map[Symbol]bool{}
	changed := true
	for changed {
		changed = false
		for _, r := range rules {
			if nullable[r.head] {
				continue
			}
			allNull := true
			for _, s := range r.body {
				if !nullable[s] {
					allNull = false
					break
				}
			}
			if allNull { // includes the empty body case
				nullable[r.head] = true
				changed = true
			}
		}
	}
	c.startNullable = nullable[g.start]
	var noEps []rule
	for _, r := range rules {
		switch len(r.body) {
		case 0:
			// dropped
		case 1:
			noEps = append(noEps, r)
		case 2:
			noEps = append(noEps, r)
			if nullable[r.body[0]] && r.body[1] != r.head {
				noEps = append(noEps, rule{head: r.head, body: []Symbol{r.body[1]}})
			}
			if nullable[r.body[1]] && r.body[0] != r.head {
				noEps = append(noEps, rule{head: r.head, body: []Symbol{r.body[0]}})
			}
		}
	}

	// Step 3: eliminate unit productions A→B by transitive closure.
	unitClosure := map[Symbol]map[Symbol]bool{}
	addUnit := func(a, b Symbol) {
		if unitClosure[a] == nil {
			unitClosure[a] = map[Symbol]bool{a: true}
		}
		unitClosure[a][b] = true
	}
	heads := map[Symbol]bool{}
	for _, r := range noEps {
		heads[r.head] = true
	}
	for h := range heads {
		addUnit(h, h)
	}
	changed = true
	for changed {
		changed = false
		for _, r := range noEps {
			if len(r.body) == 1 && !g.terminals[r.body[0]] && r.body[0] != r.head {
				for h := range heads {
					if unitClosure[h][r.head] && !unitClosure[h][r.body[0]] {
						addUnit(h, r.body[0])
						changed = true
					}
				}
			}
		}
	}

	for h := range heads {
		for via := range unitClosure[h] {
			for _, r := range noEps {
				if r.head != via {
					continue
				}
				if len(r.body) == 1 && g.terminals[r.body[0]] {
					c.terminalRules[r.body[0]] = appendUnique(c.terminalRules[r.body[0]], h)
				}
				if len(r.body) == 2 {
					key := [2]Symbol{r.body[0], r.body[1]}
					c.binaryRules[key] = appendUnique(c.binaryRules[key], h)
				}
			}
		}
	}
	return &CNF{g: c}
}

func appendUnique(xs []Symbol, s Symbol) []Symbol {
	for _, x := range xs {
		if x == s {
			return xs
		}
	}
	return append(xs, s)
}

// CNF is a grammar converted to Chomsky normal form, supporting membership
// queries via the CYK algorithm.
type CNF struct {
	g *cnfGrammar
}

// Accepts reports whether the terminal string is in the language.
func (c *CNF) Accepts(input []Symbol) bool {
	if len(input) == 0 {
		return c.g.startNullable
	}
	return c.g.cyk(input)
}

// RuleCount returns the number of CNF rules (terminal plus binary), a measure
// of definition size used by experiment E1.
func (c *CNF) RuleCount() int {
	n := 0
	for _, hs := range c.g.terminalRules {
		n += len(hs)
	}
	for _, hs := range c.g.binaryRules {
		n += len(hs)
	}
	return n
}

func (c *cnfGrammar) cyk(input []Symbol) bool {
	n := len(input)
	// table[i][l] = set of heads deriving input[i:i+l+1]
	table := make([]map[Symbol]bool, n*n)
	at := func(i, l int) map[Symbol]bool { return table[i*n+l] }
	set := func(i, l int, m map[Symbol]bool) { table[i*n+l] = m }
	for i := 0; i < n; i++ {
		m := map[Symbol]bool{}
		for _, h := range c.terminalRules[input[i]] {
			m[h] = true
		}
		set(i, 0, m)
	}
	for l := 1; l < n; l++ {
		for i := 0; i+l < n; i++ {
			m := map[Symbol]bool{}
			for split := 0; split < l; split++ {
				left := at(i, split)
				right := at(i+split+1, l-split-1)
				if len(left) == 0 || len(right) == 0 {
					continue
				}
				for key, heads := range c.binaryRules {
					if left[key[0]] && right[key[1]] {
						for _, h := range heads {
							m[h] = true
						}
					}
				}
			}
			set(i, l, m)
		}
	}
	return at(0, n-1)[c.start]
}

// Describe returns a human-readable multi-line description of the grammar in
// the 4-tuple presentation.
func (g *Grammar) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "N = %v\n", g.NonTerminals())
	fmt.Fprintf(&b, "T = %v\n", g.Terminals())
	fmt.Fprintf(&b, "S = %s\n", g.start)
	b.WriteString("P =\n")
	for _, p := range g.productions {
		fmt.Fprintf(&b, "  %s\n", p)
	}
	return b.String()
}

// StructuralCheck inspects an arbitrary candidate 4-tuple and reports whether
// it satisfies the structural definition of a grammar, returning the first
// violation as an error. It is the executable version of the paper's point
// that "given an arbitrary string of symbols, a definition should allow one to
// determine whether the string is a formal grammar or not".
func StructuralCheck(nonTerminals, terminals []Symbol, start Symbol, productions []Production) error {
	_, err := New(nonTerminals, terminals, start, productions)
	return err
}
