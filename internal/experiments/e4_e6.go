package experiments

import (
	"math/rand"

	"repro/internal/hermeneutic"
	"repro/internal/query"
	"repro/internal/semfield"
	"repro/internal/store"
	"repro/internal/workload"
)

// classQuery answers one E5-style class retrieval through the query layer
// (query.Instances), expanded through the ontology index when one is
// supplied. Classes come from generated hierarchies and are never empty, so
// an evaluation error is a bug in the experiment, not a data condition.
func classQuery(s *store.Store, oi *store.OntologyIndex, class string) []string {
	out, err := query.Instances(s, oi, class)
	if err != nil {
		panic(err)
	}
	return out
}

// E4Params controls the semantic-field translation experiment.
type E4Params struct {
	Seed     int64
	Trials   int
	Cells    int
	Words    int
	Shifts   []int
	MaxShift int
}

// DefaultE4Params returns the parameters recorded in EXPERIMENTS.md.
func DefaultE4Params() E4Params {
	return E4Params{Seed: 4, Trials: 30, Cells: 96, Words: 10, Shifts: []int{0, 1, 2, 4, 6, 8}, MaxShift: 4}
}

// E4 measures, over random language pairs whose divisions of a shared
// semantic field diverge by an increasing number of boundary shifts, the
// translation loss of an atomistic word-to-word mapping against a
// field-relative mapping. The paper's doorknob/pomello argument predicts the
// atomistic loss grows with divergence while the field-relative loss stays at
// zero; the paper's own fixed examples are reported as the last two rows.
func E4(p E4Params) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "translation loss: atomistic vs field-relative mapping",
		Columns: []string{"workload", "boundary shifts", "divergence", "atomistic error", "field-relative error", "atomistic mean Jaccard"},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for _, shifts := range p.Shifts {
		var divergence, atomErr, fieldErr, jaccard float64
		for trial := 0; trial < p.Trials; trial++ {
			_, src, dst := workload.RandomFieldPair(rng, workload.FieldPairParams{
				Cells:          p.Cells,
				Words:          p.Words,
				BoundaryShifts: shifts,
				MaxShift:       p.MaxShift,
			})
			divergence += semfield.Divergence(src, dst)
			atom := semfield.TranslationLoss(src, dst, semfield.Atomistic)
			field := semfield.TranslationLoss(src, dst, semfield.FieldRelative)
			atomErr += atom.ErrorRate()
			fieldErr += field.ErrorRate()
			jaccard += atom.MeanJaccard
		}
		n := float64(p.Trials)
		t.AddRow("synthetic", shifts, divergence/n, atomErr/n, fieldErr/n, jaccard/n)
	}
	// The paper's own examples.
	_, english, italian := semfield.DoorknobExample()
	atom := semfield.TranslationLoss(english, italian, semfield.Atomistic)
	field := semfield.TranslationLoss(english, italian, semfield.FieldRelative)
	t.AddRow("doorknob→pomello (paper)", "-", semfield.Divergence(english, italian), atom.ErrorRate(), field.ErrorRate(), atom.MeanJaccard)

	_, it, es, _ := semfield.AgeAdjectivesExample()
	atom = semfield.TranslationLoss(it, es, semfield.Atomistic)
	field = semfield.TranslationLoss(it, es, semfield.FieldRelative)
	t.AddRow("anziano→spanish (paper)", "-", semfield.Divergence(it, es), atom.ErrorRate(), field.ErrorRate(), atom.MeanJaccard)
	return t
}

// E5Params controls the ontology-drift retrieval experiment.
type E5Params struct {
	Seed              int64
	Classes           int
	MaxParents        int
	InstancesPerClass int
	Drifts            []float64
}

// DefaultE5Params returns the parameters recorded in EXPERIMENTS.md.
func DefaultE5Params() E5Params {
	return E5Params{
		Seed:              5,
		Classes:           40,
		MaxParents:        2,
		InstancesPerClass: 25,
		Drifts:            []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5},
	}
}

// E5 measures ontology-mediated retrieval quality as annotations drift away
// from usage: for every class of a synthetic hierarchy, the instances whose
// *usage* belongs under that class are the ground truth, and the store is
// queried with and without ontology expansion. The paper's §4 claim is that a
// normative ontonomy imposed on a still-moving domain stops helping and
// starts hurting as the drift grows.
func E5(p E5Params) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "retrieval quality vs annotation drift, with and without ontology expansion",
		Columns: []string{"drift", "drifted instances", "expanded P", "expanded R", "expanded F1", "plain P", "plain R", "plain F1"},
	}
	for _, drift := range p.Drifts {
		rng := rand.New(rand.NewSource(p.Seed))
		corpus := workload.SyntheticCorpus(rng, workload.CorpusParams{
			Hierarchy:         workload.HierarchyParams{Classes: p.Classes, MaxParents: p.MaxParents},
			InstancesPerClass: p.InstancesPerClass,
			Drift:             drift,
		})
		oi, err := store.NewOntologyIndex(corpus.TBox)
		if err != nil {
			panic(err)
		}
		var expanded, plain []store.RetrievalResult
		for _, class := range corpus.Classes {
			relevant := corpus.RelevantTo(oi, class)
			expanded = append(expanded, store.Evaluate(classQuery(corpus.Store, oi, class), relevant))
			plain = append(plain, store.Evaluate(classQuery(corpus.Store, nil, class), relevant))
		}
		e := store.Macro(expanded)
		pl := store.Macro(plain)
		t.AddRow(drift, corpus.Drifted, e.Precision, e.Recall, e.F1, pl.Precision, pl.Recall, pl.F1)
	}
	return t
}

// E6Params controls the reader-context experiment.
type E6Params struct {
	Seed             int64
	Trials           int
	Cues             int
	Frames           int
	ContextStrengths []float64
	MaxIterations    int
}

// DefaultE6Params returns the parameters recorded in EXPERIMENTS.md.
func DefaultE6Params() E6Params {
	return E6Params{Seed: 6, Trials: 40, Cues: 12, Frames: 3, ContextStrengths: []float64{1, 1.5, 2, 4, 8}, MaxIterations: 8}
}

// E6 measures interpretation accuracy on synthetic situated texts as a
// function of how much the reader's situation says about the intended frame.
// Strength 1 is the "reader removed" case the paper attributes to ontology:
// every frame equally available, nothing to fix the cues. The paper predicts
// accuracy near zero there and rising with context strength.
func E6(p E6Params) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "interpretation accuracy vs reader-context strength",
		Columns: []string{"context strength", "mean accuracy", "mean ambiguity", "converged fraction"},
	}
	for _, strength := range p.ContextStrengths {
		rng := rand.New(rand.NewSource(p.Seed))
		var accuracy, ambiguity, converged float64
		for trial := 0; trial < p.Trials; trial++ {
			st := workload.RandomSituatedText(rng, workload.TextParams{
				Cues:            p.Cues,
				Frames:          p.Frames,
				ContextStrength: strength,
			})
			reading := hermeneutic.Interpret(st.Text, st.Code, st.Context, p.MaxIterations)
			accuracy += hermeneutic.Accuracy(reading, st.Intended)
			ambiguity += reading.AmbiguityRate()
			if reading.Converged {
				converged++
			}
		}
		n := float64(p.Trials)
		t.AddRow(strength, accuracy/n, ambiguity/n, converged/n)
	}
	return t
}
