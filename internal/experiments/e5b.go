package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/store"
	"repro/internal/workload"
)

// E5bParams controls the vocabulary-evolution experiment.
type E5bParams struct {
	Seed              int64
	Classes           int
	MaxParents        int
	InstancesPerClass int
	// SplitFractions is the series of fractions of ontology classes whose
	// usage has split into two finer categories the ontonomy does not have.
	SplitFractions []float64
}

// DefaultE5bParams returns the parameters recorded in EXPERIMENTS.md.
func DefaultE5bParams() E5bParams {
	return E5bParams{
		Seed:              8,
		Classes:           40,
		MaxParents:        2,
		InstancesPerClass: 20,
		SplitFractions:    []float64{0, 0.2, 0.4, 0.6, 0.8},
	}
}

// E5b operationalizes the sharper half of the paper's §4 claim: the ontonomy
// as a *limiting factor*. Here the annotations never go stale — the problem
// is that usage keeps evolving. A fraction of the ontology's classes split,
// in actual usage, into two finer categories ("the discipline is vital but
// not yet settled"); the ontonomy is normative and does not change, so
// annotators must keep filing both new categories under the old class, and
// queries can only be phrased in the old vocabulary.
//
// For every usage-level category the experiment asks the best question the
// ontology allows (the original class, with expansion) and scores it against
// the instances of that usage category. Expressible queries (categories that
// still coincide with an ontology class) stay perfect; split categories can
// never be separated from their sibling, so precision is capped. The table
// reports the fraction of usage categories still expressible and the macro
// retrieval quality through the fixed ontology, against the constant quality
// of a vocabulary that tracks usage.
func E5b(p E5bParams) *Table {
	t := &Table{
		ID:      "E5b",
		Title:   "a fixed ontonomy against evolving usage categories",
		Columns: []string{"split fraction", "usage categories", "expressible fraction", "ontology macro P", "ontology macro R", "ontology macro F1", "usage-tracking F1"},
	}
	for _, split := range p.SplitFractions {
		rng := rand.New(rand.NewSource(p.Seed))
		tb := workload.RandomHierarchyTBox(rng, workload.HierarchyParams{Classes: p.Classes, MaxParents: p.MaxParents})
		oi, err := store.NewOntologyIndex(tb)
		if err != nil {
			panic(err)
		}
		classes := tb.DefinedNames()
		sort.Strings(classes)

		// Decide which classes' usage has split.
		splitClass := map[string]bool{}
		for _, class := range classes {
			if rng.Float64() < split {
				splitClass[class] = true
			}
		}

		// Generate instances. Every instance is annotated with its ontology
		// class (the only vocabulary the normative scheme allows); its usage
		// category is either the class itself or one of the two finer
		// categories when the class has split.
		annotations := store.New()
		usageOf := map[string]string{}       // instance -> usage category
		categoryClass := map[string]string{} // usage category -> nearest ontology class
		instancesByCategory := map[string][]string{}
		batch := make([]store.Triple, 0, len(classes)*p.InstancesPerClass)
		for _, class := range classes {
			for i := 0; i < p.InstancesPerClass; i++ {
				inst := fmt.Sprintf("%s/item-%d", class, i)
				category := class
				if splitClass[class] {
					category = fmt.Sprintf("%s/usage-%c", class, 'a'+byte(i%2))
				}
				batch = append(batch, store.Triple{Subject: inst, Predicate: store.TypePredicate, Object: class})
				usageOf[inst] = category
				categoryClass[category] = class
				instancesByCategory[category] = append(instancesByCategory[category], inst)
			}
		}
		if _, err := annotations.AddBatch(batch); err != nil {
			panic(err)
		}

		categories := make([]string, 0, len(instancesByCategory))
		for c := range instancesByCategory {
			categories = append(categories, c)
		}
		sort.Strings(categories)

		expressible := 0
		var results []store.RetrievalResult
		for _, category := range categories {
			class := categoryClass[category]
			if category == class {
				expressible++
			}
			// The best question the fixed vocabulary allows: the nearest
			// ontology class, expanded.
			retrieved := classQuery(annotations, oi, class)
			relevant := relevantToCategory(usageOf, categoryClass, oi, category, class)
			results = append(results, store.Evaluate(retrieved, relevant))
		}
		agg := store.Macro(results)
		t.AddRow(split, len(categories), float64(expressible)/float64(len(categories)),
			agg.Precision, agg.Recall, agg.F1, 1.0)
	}
	return t
}

// relevantToCategory returns the ground-truth answer set of a usage-category
// query. A split category's answer set is exactly its own instances; a
// category that still coincides with an ontology class keeps the class
// reading — every instance whose usage category sits under one of the class's
// subsumees — so unsplit queries behave exactly as in E5.
func relevantToCategory(usageOf, categoryClass map[string]string, oi *store.OntologyIndex, category, class string) []string {
	var out []string
	if category != class {
		for inst, usage := range usageOf {
			if usage == category {
				out = append(out, inst)
			}
		}
		sort.Strings(out)
		return out
	}
	wantedClass := map[string]bool{}
	for _, sub := range oi.Subsumees(class) {
		wantedClass[sub] = true
	}
	for inst, usage := range usageOf {
		if wantedClass[categoryClass[usage]] {
			out = append(out, inst)
		}
	}
	sort.Strings(out)
	return out
}
