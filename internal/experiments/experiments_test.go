package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parse reads a numeric cell.
func parse(t *testing.T, tbl *Table, row int, col string) float64 {
	t.Helper()
	cell := tbl.Cell(row, col)
	if cell == "" {
		t.Fatalf("missing cell (%d, %s) in %s", row, col, tbl.ID)
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell (%d, %s) = %q is not numeric: %v", row, col, cell, err)
	}
	return v
}

func TestTableBasics(t *testing.T) {
	tbl := &Table{ID: "X", Title: "test", Columns: []string{"a", "b"}}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", "y")
	if got := tbl.Cell(0, "b"); got != "2.500" {
		t.Errorf("Cell = %q, want 2.500", got)
	}
	if got := tbl.Cell(5, "a"); got != "" {
		t.Errorf("out-of-range Cell = %q, want empty", got)
	}
	if got := tbl.Cell(0, "missing"); got != "" {
		t.Errorf("missing column Cell = %q, want empty", got)
	}
	s := tbl.String()
	if !strings.Contains(s, "X — test") || !strings.Contains(s, "2.500") {
		t.Errorf("String rendering missing content:\n%s", s)
	}
}

func TestAllAndByID(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("All() = %d experiments, want 10", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("experiment %+v is incomplete", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E5b", "E5c", "E6", "E7", "A1"} {
		if !seen[id] {
			t.Errorf("experiment %s missing from All()", id)
		}
	}
	if _, ok := ByID("e5"); !ok {
		t.Error("ByID should be case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID found a nonexistent experiment")
	}
}

func TestE1Shape(t *testing.T) {
	p := DefaultE1Params()
	p.PerFamily = 30 // keep the unit test fast; the default is used by the bench
	tbl := E1(p)
	if len(tbl.Rows) != 3 {
		t.Fatalf("E1 rows = %d, want 3 definitions", len(tbl.Rows))
	}
	// Row order follows AllDefinitions: functional, approximation, structural.
	functional := parse(t, tbl, 0, "discrimination")
	approximation := parse(t, tbl, 1, "discrimination")
	structural := parse(t, tbl, 2, "discrimination")
	if functional > 0.05 {
		t.Errorf("functional discrimination = %f, want ≈ 0", functional)
	}
	if approximation > 0.2 {
		t.Errorf("approximation discrimination = %f, want near 0", approximation)
	}
	if structural < 0.99 {
		t.Errorf("structural discrimination = %f, want 1", structural)
	}
	// The functional definition accepts grocery lists wholesale — the
	// paper's complaint verbatim.
	if rate := parse(t, tbl, 0, "grocery-list"); rate != 1 {
		t.Errorf("functional acceptance of grocery lists = %f, want 1", rate)
	}
}

func TestE2Shape(t *testing.T) {
	p := DefaultE2Params()
	p.Definitions = 30
	p.Vocabularies = []int{16, 64}
	p.Sizes = []int{2, 4, 8}
	tbl := E2(p)
	if len(tbl.Rows) != len(p.Vocabularies)*len(p.Sizes) {
		t.Fatalf("E2 rows = %d, want %d", len(tbl.Rows), len(p.Vocabularies)*len(p.Sizes))
	}
	// Collisions at k=2 should exceed collisions at k=8 for the same
	// vocabulary: more structure separates more definitions.
	for v := range p.Vocabularies {
		base := v * len(p.Sizes)
		small := parse(t, tbl, base, "collision rate")
		large := parse(t, tbl, base+len(p.Sizes)-1, "collision rate")
		if small < large {
			t.Errorf("vocabulary row %d: collision rate should not grow with definition size (k=2: %f, k=8: %f)", v, small, large)
		}
	}
	// And at the smallest size collisions must actually occur, otherwise the
	// experiment shows nothing.
	if first := parse(t, tbl, 0, "collision rate"); first == 0 {
		t.Error("E2 found no collisions at the smallest definition size; the workload is mis-tuned")
	}
}

func TestE3Shape(t *testing.T) {
	p := DefaultE3Params()
	p.Definitions = 25
	p.Vocabularies = []int{8, 32}
	p.MaxDepth = 3
	tbl := E3(p)
	rowsPerVocab := p.MaxDepth + 1
	if len(tbl.Rows) != len(p.Vocabularies)*rowsPerVocab {
		t.Fatalf("E3 rows = %d, want %d", len(tbl.Rows), len(p.Vocabularies)*rowsPerVocab)
	}
	for v := range p.Vocabularies {
		base := v * rowsPerVocab
		// Unfolded size grows monotonically with depth.
		for d := 1; d <= p.MaxDepth; d++ {
			prev := parse(t, tbl, base+d-1, "mean unfolded size")
			cur := parse(t, tbl, base+d, "mean unfolded size")
			if cur < prev {
				t.Errorf("vocab block %d: mean unfolded size decreased from depth %d to %d (%f -> %f)", v, d-1, d, prev, cur)
			}
		}
		// Collisions never increase with depth.
		for d := 1; d <= p.MaxDepth; d++ {
			prev := parse(t, tbl, base+d-1, "colliding pairs")
			cur := parse(t, tbl, base+d, "colliding pairs")
			if cur > prev {
				t.Errorf("vocab block %d: collisions increased with depth (%f -> %f)", v, prev, cur)
			}
		}
	}
}

func TestE4Shape(t *testing.T) {
	p := DefaultE4Params()
	p.Trials = 10
	p.Cells = 48
	tbl := E4(p)
	if len(tbl.Rows) != len(p.Shifts)+2 {
		t.Fatalf("E4 rows = %d, want %d synthetic rows plus 2 paper rows", len(tbl.Rows), len(p.Shifts)+2)
	}
	// Zero divergence, zero loss; loss grows with divergence.
	if loss := parse(t, tbl, 0, "atomistic error"); loss != 0 {
		t.Errorf("atomistic error with 0 shifts = %f, want 0", loss)
	}
	first := parse(t, tbl, 1, "atomistic error")
	last := parse(t, tbl, len(p.Shifts)-1, "atomistic error")
	if last <= first {
		t.Errorf("atomistic error should grow with divergence: %f at 1 shift, %f at %d shifts", first, last, p.Shifts[len(p.Shifts)-1])
	}
	for row := 0; row < len(tbl.Rows); row++ {
		if fieldErr := parse(t, tbl, row, "field-relative error"); fieldErr != 0 {
			t.Errorf("row %d: field-relative error = %f, want 0", row, fieldErr)
		}
	}
	// The paper's doorknob row shows a strictly positive atomistic loss.
	if paperLoss := parse(t, tbl, len(p.Shifts), "atomistic error"); paperLoss <= 0 {
		t.Errorf("doorknob atomistic error = %f, want > 0", paperLoss)
	}
}

func TestE5Shape(t *testing.T) {
	p := DefaultE5Params()
	p.Classes = 15
	p.InstancesPerClass = 10
	p.Drifts = []float64{0, 0.25, 0.5}
	tbl := E5(p)
	if len(tbl.Rows) != len(p.Drifts) {
		t.Fatalf("E5 rows = %d, want %d", len(tbl.Rows), len(p.Drifts))
	}
	// With no drift the ontology-expanded retrieval is perfect and beats the
	// plain one on recall.
	if f1 := parse(t, tbl, 0, "expanded F1"); f1 != 1 {
		t.Errorf("expanded F1 at drift 0 = %f, want 1", f1)
	}
	if plainR, expandedR := parse(t, tbl, 0, "plain R"), parse(t, tbl, 0, "expanded R"); plainR >= expandedR {
		t.Errorf("at drift 0 expansion should improve recall: plain %f, expanded %f", plainR, expandedR)
	}
	// Quality degrades monotonically with drift.
	for row := 1; row < len(p.Drifts); row++ {
		prev := parse(t, tbl, row-1, "expanded F1")
		cur := parse(t, tbl, row, "expanded F1")
		if cur > prev {
			t.Errorf("expanded F1 increased with drift (%f -> %f)", prev, cur)
		}
	}
	if drifted := parse(t, tbl, 2, "drifted instances"); drifted == 0 {
		t.Error("at 50% drift some instances must be drifted")
	}
}

func TestE5bShape(t *testing.T) {
	p := DefaultE5bParams()
	p.Classes = 15
	p.InstancesPerClass = 10
	p.SplitFractions = []float64{0, 0.5, 1}
	tbl := E5b(p)
	if len(tbl.Rows) != len(p.SplitFractions) {
		t.Fatalf("E5b rows = %d, want %d", len(tbl.Rows), len(p.SplitFractions))
	}
	// With no splits the fixed vocabulary expresses every usage category and
	// retrieval through it is perfect.
	if expr := parse(t, tbl, 0, "expressible fraction"); expr != 1 {
		t.Errorf("expressible fraction with no splits = %f, want 1", expr)
	}
	if f1 := parse(t, tbl, 0, "ontology macro F1"); f1 != 1 {
		t.Errorf("ontology F1 with no splits = %f, want 1", f1)
	}
	// As usage splits, both the expressible fraction and the retrieval
	// quality through the fixed ontology fall.
	for row := 1; row < len(tbl.Rows); row++ {
		if parse(t, tbl, row, "expressible fraction") > parse(t, tbl, row-1, "expressible fraction") {
			t.Errorf("expressible fraction increased at row %d", row)
		}
		if parse(t, tbl, row, "ontology macro F1") > parse(t, tbl, row-1, "ontology macro F1") {
			t.Errorf("ontology F1 increased at row %d", row)
		}
	}
	last := len(tbl.Rows) - 1
	if f1 := parse(t, tbl, last, "ontology macro F1"); f1 >= 0.9 {
		t.Errorf("with every class split, ontology-mediated F1 = %f; it should be visibly capped", f1)
	}
	// The usage-tracking column is the constant oracle.
	for row := range tbl.Rows {
		if parse(t, tbl, row, "usage-tracking F1") != 1 {
			t.Errorf("usage-tracking F1 at row %d should be 1", row)
		}
	}
}

func TestE5cShape(t *testing.T) {
	p := DefaultE5cParams()
	p.Classes = 20
	p.Scales = []int{2_000, 5_000}
	p.QueryClasses = 10
	p.Repeats = 2
	tbl := E5c(p)
	if len(tbl.Rows) != len(p.Scales) {
		t.Fatalf("E5c rows = %d, want %d", len(tbl.Rows), len(p.Scales))
	}
	for row := range tbl.Rows {
		// Materialization must actually infer something: the hierarchy
		// guarantees non-root classes have superclasses to propagate into.
		if inferred := parse(t, tbl, row, "inferred"); inferred <= 0 {
			t.Errorf("row %d: nothing inferred", row)
		}
		// Both retrieval modes returned the same answers (E5c panics on
		// disagreement), and both were actually timed.
		if us := parse(t, tbl, row, "expanded µs/query"); us < 0 {
			t.Errorf("row %d: negative expanded time", row)
		}
		if us := parse(t, tbl, row, "materialized µs/query"); us < 0 {
			t.Errorf("row %d: negative materialized time", row)
		}
		if n := parse(t, tbl, row, "instances/query"); n <= 0 {
			t.Errorf("row %d: queries retrieved nothing", row)
		}
	}
}

func TestE6Shape(t *testing.T) {
	p := DefaultE6Params()
	p.Trials = 10
	p.Cues = 8
	tbl := E6(p)
	if len(tbl.Rows) != len(p.ContextStrengths) {
		t.Fatalf("E6 rows = %d, want %d", len(tbl.Rows), len(p.ContextStrengths))
	}
	// Strength 1 is the reader-removed case: nothing is fixed.
	if acc := parse(t, tbl, 0, "mean accuracy"); acc != 0 {
		t.Errorf("accuracy with no context = %f, want 0", acc)
	}
	if amb := parse(t, tbl, 0, "mean ambiguity"); amb != 1 {
		t.Errorf("ambiguity with no context = %f, want 1", amb)
	}
	// A rich situation recovers the intended reading.
	last := len(p.ContextStrengths) - 1
	if acc := parse(t, tbl, last, "mean accuracy"); acc < 0.99 {
		t.Errorf("accuracy with rich context = %f, want ≈ 1", acc)
	}
	// Accuracy is monotone in context strength.
	for row := 1; row < len(tbl.Rows); row++ {
		if parse(t, tbl, row, "mean accuracy") < parse(t, tbl, row-1, "mean accuracy") {
			t.Errorf("accuracy decreased from row %d to %d", row-1, row)
		}
	}
}

func TestE7Shape(t *testing.T) {
	p := DefaultE7Params()
	p.Trials = 15
	p.Readers = 8
	p.Noise = 0.6
	tbl := E7(p)
	if len(tbl.Rows) != p.Readers {
		t.Fatalf("E7 rows = %d, want %d", len(tbl.Rows), p.Readers)
	}
	// The policed reading never loses the author's intention.
	for row := range tbl.Rows {
		if f := parse(t, tbl, row, "policed fidelity"); f != 1 {
			t.Errorf("policed fidelity at position %d = %f, want 1", row+1, f)
		}
	}
	// The situated reading decays along the chain, and the policed regime
	// pays for its stability with a growing override rate.
	first := parse(t, tbl, 0, "situated fidelity")
	last := parse(t, tbl, len(tbl.Rows)-1, "situated fidelity")
	if last >= first {
		t.Errorf("situated fidelity should decay along the chain: position 1 %f, position %d %f", first, p.Readers, last)
	}
	if parse(t, tbl, len(tbl.Rows)-1, "override rate") <= parse(t, tbl, 0, "override rate") {
		t.Error("override rate should grow along the chain")
	}
	// At every position the override rate mirrors the gap between the two
	// fidelities: the normative regime suppresses exactly the readings the
	// situated reader would have gotten "wrong" by the author's lights.
	for row := range tbl.Rows {
		gap := parse(t, tbl, row, "policed fidelity") - parse(t, tbl, row, "situated fidelity")
		if gap < 0 {
			t.Errorf("position %d: situated fidelity exceeds policed fidelity", row+1)
		}
	}
}

func TestA1Shape(t *testing.T) {
	p := DefaultA1Params()
	p.Sizes = []int{60, 120}
	p.StructuralQueries = 40
	p.TableauQueries = 5
	tbl := A1(p)
	if len(tbl.Rows) != len(p.Sizes)*4 {
		t.Fatalf("A1 rows = %d, want %d (sizes × shapes × procedures)", len(tbl.Rows), len(p.Sizes)*4)
	}
	for row := range tbl.Rows {
		if mean := parse(t, tbl, row, "mean µs/query"); mean < 0 {
			t.Errorf("row %d: negative mean time", row)
		}
		if q := parse(t, tbl, row, "queries"); q <= 0 {
			t.Errorf("row %d: no queries timed", row)
		}
	}
	// Both shapes and both procedures appear.
	var shapes, procedures = map[string]bool{}, map[string]bool{}
	for row := range tbl.Rows {
		shapes[tbl.Cell(row, "shape")] = true
		procedures[tbl.Cell(row, "procedure")] = true
	}
	if !shapes["tree"] || !shapes["dag"] {
		t.Errorf("shapes covered = %v, want tree and dag", shapes)
	}
	if !procedures["structural"] || !procedures["tableau"] {
		t.Errorf("procedures covered = %v, want structural and tableau", procedures)
	}
}
