package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/query"
	"repro/internal/reason"
	"repro/internal/store"
	"repro/internal/workload"
)

// E5cParams controls the materialized-retrieval experiment.
type E5cParams struct {
	Seed       int64
	Classes    int
	MaxParents int
	// Scales is the series of asserted type-annotation counts to measure at.
	Scales []int
	// QueryClasses is how many classes are timed per scale (evenly spaced
	// over the sorted class list, so shallow and deep classes both appear).
	QueryClasses int
	// Repeats is how many times each query is run; the table reports the
	// mean.
	Repeats int
}

// DefaultE5cParams returns the parameters recorded in EXPERIMENTS.md.
func DefaultE5cParams() E5cParams {
	return E5cParams{
		Seed:         9,
		Classes:      120,
		MaxParents:   2,
		Scales:       []int{100_000, 1_000_000},
		QueryClasses: 40,
		Repeats:      5,
	}
}

// E5c measures what materialization buys at serving time: the same E5-style
// class retrieval — stream the class's distinct instances — answered (a) by
// query-time ontology expansion, the BGP {?x type class} rewritten through
// the ontology index's subsumees with id-level dedup (ProjectFunc), and (b)
// against a forward-chained materialization, where the entailed type triples
// already sit in the POS indexes and retrieval is a plain index-set read
// (reason.Reasoner.InstancesFunc). The one-off cost of materializing (wall
// time and inferred-triple volume) is reported next to the per-query payoff.
// Like A1, the µs columns report measured wall time and vary run to run; the
// instance counts and triple counts are deterministic.
func E5c(p E5cParams) *Table {
	t := &Table{
		ID:      "E5c",
		Title:   "materialized vs query-time-expanded class retrieval",
		Columns: []string{"triples", "classes", "inferred", "materialize ms", "expanded µs/query", "materialized µs/query", "speedup", "instances/query"},
	}
	for _, scale := range p.Scales {
		rng := rand.New(rand.NewSource(p.Seed))
		tb := workload.RandomHierarchyTBox(rng, workload.HierarchyParams{Classes: p.Classes, MaxParents: p.MaxParents})
		oi, err := store.NewOntologyIndex(tb)
		if err != nil {
			panic(err)
		}
		classes := tb.DefinedNames()
		sort.Strings(classes)

		// The asserted corpus: scale type annotations round-robin over the
		// classes, plus the hierarchy itself as subClassOf triples.
		base := store.New()
		batch := make([]store.Triple, 0, scale)
		for i := 0; i < scale; i++ {
			class := classes[i%len(classes)]
			batch = append(batch, store.Triple{
				Subject:   fmt.Sprintf("%s/item-%d", class, i),
				Predicate: store.TypePredicate,
				Object:    class,
			})
		}
		if _, err := base.AddBatch(batch); err != nil {
			panic(err)
		}
		if _, err := base.AddBatch(reason.OntologyTriples(oi)); err != nil {
			panic(err)
		}

		matStart := time.Now()
		r, err := reason.Materialize(base, reason.RDFSRules())
		if err != nil {
			panic(err)
		}
		matMs := float64(time.Since(matStart).Microseconds()) / 1000

		queried := sampleClasses(classes, p.QueryClasses)
		expandedUs, n1 := timeRetrieval(p.Repeats, queried, func(class string) int {
			count := 0
			bgp := query.BGP{query.Pat(query.Var("x"), query.Lit(store.TypePredicate), query.Lit(class))}
			err := query.Eval(base, bgp, query.Expand(oi)).ProjectFunc("x", func(string) bool {
				count++
				return true
			})
			if err != nil {
				panic(err)
			}
			return count
		})
		materializedUs, n2 := timeRetrieval(p.Repeats, queried, func(class string) int {
			count := 0
			r.InstancesFunc(class, func(string) bool {
				count++
				return true
			})
			return count
		})
		if n1 != n2 {
			panic(fmt.Sprintf("E5c: expanded retrieval returned %d instances, materialized %d; the modes must agree", n1, n2))
		}
		t.AddRow(scale, len(classes), r.InferredCount(), matMs,
			expandedUs, materializedUs, expandedUs/materializedUs,
			float64(n1)/float64(len(queried)*p.Repeats))
	}
	return t
}

// sampleClasses picks up to n classes evenly spaced over the sorted list.
func sampleClasses(classes []string, n int) []string {
	if n <= 0 || n >= len(classes) {
		return classes
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, classes[i*len(classes)/n])
	}
	return out
}

// timeRetrieval runs the retrieval over every queried class repeats times,
// returning the mean µs per query and the total instances retrieved.
func timeRetrieval(repeats int, classes []string, retrieve func(string) int) (float64, int) {
	total := 0
	start := time.Now()
	for rep := 0; rep < repeats; rep++ {
		for _, class := range classes {
			total += retrieve(class)
		}
	}
	elapsed := time.Since(start)
	queries := repeats * len(classes)
	return float64(elapsed.Microseconds()) / float64(queries), total
}
