package experiments

import (
	"math/rand"
	"time"

	"repro/internal/dl"
	"repro/internal/workload"
)

// A1Params controls the subsumption-cost ablation.
type A1Params struct {
	Seed              int64
	Sizes             []int
	StructuralQueries int
	TableauQueries    int
}

// DefaultA1Params returns the parameters recorded in EXPERIMENTS.md.
func DefaultA1Params() A1Params {
	return A1Params{Seed: 7, Sizes: []int{100, 300, 1000}, StructuralQueries: 200, TableauQueries: 20}
}

// A1 is the ablation called out in DESIGN.md: the paper's §2 notes that the
// Bench-Capon/Malcolm model generalizes monocriterial taxonomies (trees) to
// partial orders (DAGs). A1 measures what that generality costs: the mean
// time of a subsumption query over random class hierarchies of increasing
// size, for tree-shaped vs DAG-shaped hierarchies and for the structural vs
// the tableau subsumption procedure.
func A1(p A1Params) *Table {
	t := &Table{
		ID:      "A1",
		Title:   "subsumption query cost: hierarchy shape × reasoning procedure",
		Columns: []string{"classes", "shape", "procedure", "queries", "mean µs/query", "positive answers"},
	}
	for _, size := range p.Sizes {
		for _, shape := range []struct {
			name       string
			maxParents int
		}{{"tree", 1}, {"dag", 3}} {
			rng := rand.New(rand.NewSource(p.Seed))
			tb := workload.RandomHierarchyTBox(rng, workload.HierarchyParams{Classes: size, MaxParents: shape.maxParents})

			structural := dl.NewStructuralReasoner(tb)
			mean, positives := timeQueries(rng, size, p.StructuralQueries, structural.Subsumes)
			t.AddRow(size, shape.name, "structural", p.StructuralQueries, mean, positives)

			tableau, err := dl.NewReasoner(tb)
			if err != nil {
				panic(err)
			}
			mean, positives = timeQueries(rng, size, p.TableauQueries, tableau.Subsumes)
			t.AddRow(size, shape.name, "tableau", p.TableauQueries, mean, positives)
		}
	}
	return t
}

// timeQueries runs queries random subsumption questions over the generated
// class names and returns the mean time per query in microseconds and the
// number of positive answers.
func timeQueries(rng *rand.Rand, classes, queries int, subsumes func(sub, super string) (bool, error)) (float64, int) {
	if queries < 1 {
		queries = 1
	}
	positives := 0
	start := time.Now()
	for q := 0; q < queries; q++ {
		sub := workload.ClassName(rng.Intn(classes))
		super := workload.ClassName(rng.Intn(classes))
		ok, err := subsumes(sub, super)
		if err != nil {
			panic(err)
		}
		if ok {
			positives++
		}
	}
	elapsed := time.Since(start)
	return float64(elapsed.Microseconds()) / float64(queries), positives
}
