// Package experiments implements the synthetic experiments E1–E6 and the
// ablation A1 described in DESIGN.md. The paper under reproduction is a
// position essay with no evaluation section; each experiment operationalizes
// one of its qualitative claims and produces the table or series that an
// evaluation section would have contained. EXPERIMENTS.md records the claim,
// the expected shape, and the measured outcome for each.
//
// All experiments are deterministic: they seed their own generators and never
// read the clock except where a column explicitly reports wall-time costs
// (A1).
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, a header row, and data
// rows. It is the common currency between the experiment functions, the
// bench harness in the repository root, and cmd/benchrunner.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting every cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("\n")
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		for i, cell := range row {
			w := len(cell)
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Cell returns the cell at (row, column name), or "" when out of range.
func (t *Table) Cell(row int, column string) string {
	if row < 0 || row >= len(t.Rows) {
		return ""
	}
	for i, c := range t.Columns {
		if c == column && i < len(t.Rows[row]) {
			return t.Rows[row][i]
		}
	}
	return ""
}

// Experiment couples an experiment id with the function that regenerates its
// table.
type Experiment struct {
	ID          string
	Description string
	Run         func() *Table
}

// All returns every experiment in report order, configured with its default
// parameters (the ones EXPERIMENTS.md records).
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Description: "definitional discrimination across artifact families", Run: func() *Table { return E1(DefaultE1Params()) }},
		{ID: "E2", Description: "structural-meaning collision rate vs definition size", Run: func() *Table { return E2(DefaultE2Params()) }},
		{ID: "E3", Description: "collisions remaining vs unfolding depth (differentiation does not terminate)", Run: func() *Table { return E3(DefaultE3Params()) }},
		{ID: "E4", Description: "atomistic vs field-relative translation loss vs divergence", Run: func() *Table { return E4(DefaultE4Params()) }},
		{ID: "E5", Description: "ontology-mediated retrieval quality vs annotation drift", Run: func() *Table { return E5(DefaultE5Params()) }},
		{ID: "E5b", Description: "a fixed ontonomy against evolving usage categories (the limiting-factor reading of §4)", Run: func() *Table { return E5b(DefaultE5bParams()) }},
		{ID: "E5c", Description: "materialized vs query-time-expanded retrieval (forward-chaining entailment as a serving layer)", Run: func() *Table { return E5c(DefaultE5cParams()) }},
		{ID: "E6", Description: "interpretation accuracy with and without reader context", Run: func() *Table { return E6(DefaultE6Params()) }},
		{ID: "E7", Description: "fidelity along a chain of readers: situated vs policed readings", Run: func() *Table { return E7(DefaultE7Params()) }},
		{ID: "A1", Description: "ablation: subsumption cost, tree vs DAG, structural vs tableau", Run: func() *Table { return A1(DefaultA1Params()) }},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
