package experiments

import (
	"math/rand"

	"repro/internal/definition"
	"repro/internal/structure"
	"repro/internal/workload"
)

// E1Params controls the definitional-discrimination experiment.
type E1Params struct {
	Seed              int64
	PerFamily         int
	TautologyFraction float64
}

// DefaultE1Params returns the parameters recorded in EXPERIMENTS.md.
func DefaultE1Params() E1Params {
	return E1Params{Seed: 1, PerFamily: 200, TautologyFraction: 0.25}
}

// E1 generates a mixed population of artifacts (PerFamily of each of the six
// families) and measures, for each of the three definitions of "ontonomy",
// the acceptance rate per family and the resulting discrimination score. The
// paper's §2 claim is that the functional and approximation definitions
// cannot separate ontonomies from grocery lists; the structural one can.
func E1(p E1Params) *Table {
	rng := rand.New(rand.NewSource(p.Seed))
	population, err := definition.Population(rng, definition.PopulationParams{
		PerFamily:         p.PerFamily,
		TautologyFraction: p.TautologyFraction,
	})
	if err != nil {
		panic(err) // generators are total for positive parameters
	}
	reports := definition.Assess(definition.AllDefinitions(), population)

	t := &Table{
		ID:    "E1",
		Title: "acceptance rate per artifact family under three definitions of 'ontonomy'",
		Columns: []string{
			"definition", "ontonomy", "grammar", "clause-set", "program", "grocery-list", "tax-form", "discrimination",
		},
	}
	for _, r := range reports {
		t.AddRow(
			r.Definition,
			r.AcceptanceOf(definition.KindOntonomy),
			r.AcceptanceOf(definition.KindGrammar),
			r.AcceptanceOf(definition.KindClauseSet),
			r.AcceptanceOf(definition.KindProgram),
			r.AcceptanceOf(definition.KindGroceryList),
			r.AcceptanceOf(definition.KindTaxForm),
			r.Discrimination(),
		)
	}
	return t
}

// E2Params controls the isomorphism-collision experiment.
type E2Params struct {
	Seed         int64
	Definitions  int
	Vocabularies []int
	Sizes        []int
	Erasure      structure.Erasure
}

// DefaultE2Params returns the parameters recorded in EXPERIMENTS.md.
func DefaultE2Params() E2Params {
	return E2Params{
		Seed:         2,
		Definitions:  80,
		Vocabularies: []int{16, 64, 256},
		Sizes:        []int{2, 3, 4, 6, 8, 10},
		Erasure:      structure.EraseConcepts,
	}
}

// E2 measures, for random TBoxes, how often two distinct defined concepts end
// up with the same structural meaning (the CAR ≅ DOG collision) as a function
// of definition size and vocabulary size. The paper predicts collisions are
// common for small definitions and shrink — without vanishing — as structure
// grows.
func E2(p E2Params) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "structural-meaning collision rate vs definition size (erasure: " + p.Erasure.String() + ")",
		Columns: []string{"vocabulary", "definition size k", "colliding pairs", "total pairs", "collision rate", "distinct skeletons"},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for _, vocab := range p.Vocabularies {
		for _, k := range p.Sizes {
			params := workload.DefaultTBoxParams(p.Definitions, vocab, k)
			tb := workload.RandomTBox(rng, params)
			rep := structure.Collisions(tb, 0, p.Erasure)
			t.AddRow(vocab, k, rep.CollidingPairs, rep.TotalPairs, rep.CollisionRate(), rep.DistinctSkeletons)
		}
	}
	return t
}

// E3Params controls the differentiation experiment.
type E3Params struct {
	Seed         int64
	Definitions  int
	Vocabularies []int
	Size         int
	MaxDepth     int
	Erasure      structure.Erasure
}

// DefaultE3Params returns the parameters recorded in EXPERIMENTS.md.
func DefaultE3Params() E3Params {
	return E3Params{
		Seed:         3,
		Definitions:  60,
		Vocabularies: []int{8, 32, 128, 512},
		Size:         3,
		MaxDepth:     5,
		Erasure:      structure.EraseConcepts,
	}
}

// E3 asks the paper's "when can we stop?" question: as definitions are
// unfolded deeper and deeper (dragging in ever more of the surrounding
// TBox), how many structural collisions remain, and how large have the
// unfolded definitions grown? The paper predicts that differentiation never
// properly terminates: collisions persist (or the structures grow without
// bound) rather than the process closing neatly.
func E3(p E3Params) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "collisions remaining vs unfolding depth (erasure: " + p.Erasure.String() + ")",
		Columns: []string{"vocabulary", "depth", "colliding pairs", "collision rate", "mean unfolded size"},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for _, vocab := range p.Vocabularies {
		params := workload.DefaultTBoxParams(p.Definitions, vocab, p.Size)
		// Make deep unfolding matter: most restrictions point at earlier
		// defined names rather than primitives.
		params.ReferenceProbability = 0.7
		params.RestrictionProbability = 0.6
		tb := workload.RandomTBox(rng, params)
		for _, point := range structure.DifferentiationCurve(tb, p.MaxDepth, p.Erasure) {
			t.AddRow(vocab, point.Depth, point.CollidingPairs, point.CollisionRate, point.MeanTreeSize)
		}
	}
	return t
}
