package experiments

import (
	"math/rand"

	"repro/internal/hermeneutic"
	"repro/internal/workload"
)

// E7Params controls the transmission-chain experiment.
type E7Params struct {
	Seed          int64
	Trials        int
	Cues          int
	Frames        int
	AuthorContext float64
	Readers       int
	Noise         float64
	MaxIterations int
}

// DefaultE7Params returns the parameters recorded in EXPERIMENTS.md.
func DefaultE7Params() E7Params {
	return E7Params{
		Seed:          9,
		Trials:        30,
		Cues:          10,
		Frames:        3,
		AuthorContext: 4,
		Readers:       12,
		Noise:         0.5,
		MaxIterations: 8,
	}
}

// E7 operationalizes the paper's §3 normativism remark: meaning can be kept
// stable across a chain of increasingly distant readers only by "constant
// policing" that re-imposes the author's canonical context. For each position
// in the chain the table reports the fidelity (to the author's intended
// senses) of the reader's own situated reading, the fidelity of the policed
// reading, and the override rate — the share of cues on which the policed
// reading suppresses what the reader's situation would have produced. The
// paper predicts a trade-off: without policing, fidelity decays; with it,
// fidelity is flat but only because the reader has been removed.
func E7(p E7Params) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "fidelity along a chain of readers: situated vs policed readings",
		Columns: []string{"reader position", "situated fidelity", "policed fidelity", "override rate"},
	}
	situated := make([]float64, p.Readers)
	policed := make([]float64, p.Readers)
	override := make([]float64, p.Readers)
	rng := rand.New(rand.NewSource(p.Seed))
	for trial := 0; trial < p.Trials; trial++ {
		st := workload.RandomSituatedText(rng, workload.TextParams{
			Cues:            p.Cues,
			Frames:          p.Frames,
			ContextStrength: p.AuthorContext,
		})
		res, err := hermeneutic.TransmissionChain(rng, st.Text, st.Code, st.Context, st.Intended, hermeneutic.ChainParams{
			Readers:       p.Readers,
			Noise:         p.Noise,
			MaxIterations: p.MaxIterations,
		})
		if err != nil {
			panic(err)
		}
		for i, o := range res.Outcomes {
			situated[i] += o.SituatedFidelity
			policed[i] += o.PolicedFidelity
			override[i] += o.OverrideRate
		}
	}
	n := float64(p.Trials)
	for i := 0; i < p.Readers; i++ {
		t.AddRow(i+1, situated[i]/n, policed[i]/n, override[i]/n)
	}
	return t
}
