package algebra

import "testing"

// boolSig builds the two-element Boolean signature with not and and.
func boolSig(t testing.TB) *Signature {
	t.Helper()
	s := NewSignature()
	s.AddSort("Bool")
	must := func(op Operator) {
		if err := s.AddOperator(op); err != nil {
			t.Fatalf("AddOperator: %v", err)
		}
	}
	must(Operator{Name: "true", Result: "Bool"})
	must(Operator{Name: "false", Result: "Bool"})
	must(Operator{Name: "not", Args: []Sort{"Bool"}, Result: "Bool"})
	must(Operator{Name: "and", Args: []Sort{"Bool", "Bool"}, Result: "Bool"})
	return s
}

// boolModel builds the standard two-element Boolean algebra.
func boolModel(t testing.TB) (*Signature, *Model) {
	t.Helper()
	s := boolSig(t)
	m := NewModel(s)
	m.SetCarrier("Bool", []Value{"T", "F"})
	m.DefineOp("true", nil, "T")
	m.DefineOp("false", nil, "F")
	m.DefineOp("not", []Value{"T"}, "F")
	m.DefineOp("not", []Value{"F"}, "T")
	m.DefineOp("and", []Value{"T", "T"}, "T")
	m.DefineOp("and", []Value{"T", "F"}, "F")
	m.DefineOp("and", []Value{"F", "T"}, "F")
	m.DefineOp("and", []Value{"F", "F"}, "F")
	return s, m
}

func TestModelValidateOK(t *testing.T) {
	_, m := boolModel(t)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestModelValidateMissingCarrier(t *testing.T) {
	s := boolSig(t)
	m := NewModel(s)
	if err := m.Validate(); err == nil {
		t.Error("model with no carriers should fail validation")
	}
}

func TestModelValidatePartialOperation(t *testing.T) {
	s := boolSig(t)
	m := NewModel(s)
	m.SetCarrier("Bool", []Value{"T", "F"})
	m.DefineOp("true", nil, "T")
	m.DefineOp("false", nil, "F")
	m.DefineOp("not", []Value{"T"}, "F")
	// not(F) left undefined, and completely undefined.
	if err := m.Validate(); err == nil {
		t.Error("partial operation table should fail validation")
	}
}

func TestModelValidateResultOutsideCarrier(t *testing.T) {
	s := NewSignature()
	s.AddSort("A")
	if err := s.AddOperator(Operator{Name: "c", Result: "A"}); err != nil {
		t.Fatal(err)
	}
	m := NewModel(s)
	m.SetCarrier("A", []Value{"x"})
	m.DefineOp("c", nil, "y") // y not in carrier
	if err := m.Validate(); err == nil {
		t.Error("operation result outside carrier should fail validation")
	}
}

func TestModelValidateSubsortContainment(t *testing.T) {
	s := NewSignature()
	s.AddSort("Sub")
	s.AddSort("Super")
	if err := s.AddSubsort("Sub", "Super"); err != nil {
		t.Fatal(err)
	}
	m := NewModel(s)
	m.SetCarrier("Super", []Value{"a"})
	m.SetCarrier("Sub", []Value{"a", "b"}) // b missing from Super
	if err := m.Validate(); err == nil {
		t.Error("subsort carrier must be contained in supersort carrier")
	}
	m.SetCarrier("Super", []Value{"a", "b"})
	if err := m.Validate(); err != nil {
		t.Errorf("containment satisfied, expected validation to pass: %v", err)
	}
}

func TestSetCarrierDeduplicates(t *testing.T) {
	s := boolSig(t)
	m := NewModel(s)
	m.SetCarrier("Bool", []Value{"T", "F", "T"})
	if got := len(m.Carrier("Bool")); got != 2 {
		t.Errorf("carrier size = %d, want 2", got)
	}
}

func TestEvalGroundTerms(t *testing.T) {
	_, m := boolModel(t)
	v, err := m.Eval(Apply("and", Constant("true"), Apply("not", Constant("false"))), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != "T" {
		t.Errorf("and(true, not(false)) = %q, want T", v)
	}
}

func TestEvalWithAssignment(t *testing.T) {
	_, m := boolModel(t)
	tm := Apply("and", Variable("p", "Bool"), Constant("true"))
	v, err := m.Eval(tm, Assignment{"p": "F"})
	if err != nil {
		t.Fatal(err)
	}
	if v != "F" {
		t.Errorf("and(F, true) = %q, want F", v)
	}
	if _, err := m.Eval(tm, nil); err == nil {
		t.Error("evaluating with unassigned variable should fail")
	}
}

func TestSatisfiesEquation(t *testing.T) {
	_, m := boolModel(t)
	p := Variable("p", "Bool")
	involution := Equation{Label: "double-negation", Left: Apply("not", Apply("not", p)), Right: p}
	ok, err := m.Satisfies(involution)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Boolean algebra satisfies double negation")
	}
	wrong := Equation{Label: "not-id", Left: Apply("not", p), Right: p}
	ok, err = m.Satisfies(wrong)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("not(p) = p should not be satisfied")
	}
}

func TestSatisfiesTheoryAndDataDomain(t *testing.T) {
	s, m := boolModel(t)
	p := Variable("p", "Bool")
	q := Variable("q", "Bool")
	eqs := []Equation{
		{Label: "and-comm", Left: Apply("and", p, q), Right: Apply("and", q, p)},
		{Label: "and-true", Left: Apply("and", p, Constant("true")), Right: p},
	}
	th, err := NewTheory(s, eqs)
	if err != nil {
		t.Fatal(err)
	}
	ok, failing, err := m.SatisfiesTheory(th)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("theory not satisfied, failing equation %s", failing)
	}
	dd, err := NewDataDomain(th, m)
	if err != nil {
		t.Fatalf("NewDataDomain: %v", err)
	}
	if dd.Theory != th || dd.Model != m {
		t.Error("data domain does not reference its components")
	}
}

func TestNewDataDomainRejectsBadModel(t *testing.T) {
	s, m := boolModel(t)
	p := Variable("p", "Bool")
	falseEq := []Equation{{Label: "absurd", Left: Apply("not", p), Right: p}}
	th, err := NewTheory(s, falseEq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDataDomain(th, m); err == nil {
		t.Error("data domain construction should fail when the model violates an equation")
	}
}

func BenchmarkSatisfiesEquation(b *testing.B) {
	_, m := boolModel(b)
	p := Variable("p", "Bool")
	q := Variable("q", "Bool")
	eq := Equation{Left: Apply("and", p, Apply("and", q, p)), Right: Apply("and", Apply("and", p, q), p)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, err := m.Satisfies(eq); err != nil || !ok {
			b.Fatal("equation should hold")
		}
	}
}
