// Package algebra implements order-sorted equational algebra in the sense of
// Goguen and Meseguer, which the paper identifies (via Bench-Capon and
// Malcolm) as the theoretical presupposition of the one structural definition
// of "ontonomy" it finds acceptable.
//
// The package provides:
//
//   - sorted signatures with a sub-sort partial order and ranked operator
//     declarations;
//   - terms (variables and operator applications) with sort inference under
//     sub-sorting;
//   - substitutions, equations, and equational theories;
//   - a simple left-to-right term-rewriting engine that normalizes terms with
//     respect to the oriented equations;
//   - finite algebras (models) with carriers and operation tables, and
//     satisfaction checking of equations in a model.
//
// Together with package signature it forms the "data domain" half of the
// Bench-Capon/Malcolm ontology-signature construction exercised by the core
// audit and by experiment E1.
package algebra

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/order"
)

// Sort is the name of a sort (a syntactic type).
type Sort string

// Operator declares an operation symbol with its rank: argument sorts and
// result sort. A nullary operator (len(Args) == 0) is a constant.
type Operator struct {
	Name   string
	Args   []Sort
	Result Sort
}

// String renders the operator declaration in the usual rank notation.
func (o Operator) String() string {
	if len(o.Args) == 0 {
		return fmt.Sprintf("%s : -> %s", o.Name, o.Result)
	}
	parts := make([]string, len(o.Args))
	for i, a := range o.Args {
		parts[i] = string(a)
	}
	return fmt.Sprintf("%s : %s -> %s", o.Name, strings.Join(parts, " "), o.Result)
}

// Signature is an order-sorted signature: a partially ordered set of sorts
// and a family of operator declarations over those sorts.
type Signature struct {
	sorts *order.Poset[Sort]
	ops   map[string][]Operator // name -> overloaded declarations
}

// NewSignature returns an empty signature.
func NewSignature() *Signature {
	return &Signature{sorts: order.New[Sort](), ops: make(map[string][]Operator)}
}

// AddSort declares a sort. Declaring the same sort twice is harmless.
func (s *Signature) AddSort(x Sort) { s.sorts.Add(x) }

// AddSubsort declares sub ≤ super in the sub-sort order, adding the sorts if
// needed. It returns an error if the relation would create a cycle.
func (s *Signature) AddSubsort(sub, super Sort) error {
	return s.sorts.Relate(sub, super)
}

// Subsort reports whether a ≤ b in the sub-sort order.
func (s *Signature) Subsort(a, b Sort) bool { return s.sorts.Leq(a, b) }

// Sorts returns the declared sorts.
func (s *Signature) Sorts() []Sort { return s.sorts.Elements() }

// SortOrder exposes the underlying sub-sort poset (read-only use intended).
func (s *Signature) SortOrder() *order.Poset[Sort] { return s.sorts }

// AddOperator declares an operator. All sorts mentioned in the rank must have
// been declared. Overloading (same name, different ranks) is allowed, as in
// order-sorted algebra, provided the ranks differ.
func (s *Signature) AddOperator(op Operator) error {
	for _, a := range append(append([]Sort{}, op.Args...), op.Result) {
		if !s.sorts.Contains(a) {
			return fmt.Errorf("algebra: operator %s uses undeclared sort %q", op.Name, a)
		}
	}
	for _, existing := range s.ops[op.Name] {
		if sameRank(existing, op) {
			return fmt.Errorf("algebra: operator %s redeclared with identical rank", op)
		}
	}
	cp := Operator{Name: op.Name, Args: append([]Sort(nil), op.Args...), Result: op.Result}
	s.ops[op.Name] = append(s.ops[op.Name], cp)
	return nil
}

func sameRank(a, b Operator) bool {
	if a.Result != b.Result || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Operators returns all operator declarations sorted by name then arity, so
// the listing is deterministic.
func (s *Signature) Operators() []Operator {
	var out []Operator
	for _, decls := range s.ops {
		out = append(out, decls...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return len(out[i].Args) < len(out[j].Args)
	})
	return out
}

// Declarations returns the (possibly overloaded) declarations of an operator
// name, or nil if undeclared.
func (s *Signature) Declarations(name string) []Operator {
	decls := s.ops[name]
	out := make([]Operator, len(decls))
	copy(out, decls)
	return out
}

// Constants returns the nullary operators of the given sort, including those
// declared at a subsort of it.
func (s *Signature) Constants(of Sort) []Operator {
	var out []Operator
	for _, op := range s.Operators() {
		if len(op.Args) == 0 && s.Subsort(op.Result, of) {
			out = append(out, op)
		}
	}
	return out
}

// Term is a variable or an operator application.
type Term struct {
	// Var is non-empty for a variable term; VarSort gives its sort.
	Var     string
	VarSort Sort
	// Op and Children describe an application term when Var is empty.
	Op       string
	Children []*Term
}

// Variable constructs a variable term of the given sort.
func Variable(name string, sort Sort) *Term { return &Term{Var: name, VarSort: sort} }

// Apply constructs an application term.
func Apply(op string, children ...*Term) *Term { return &Term{Op: op, Children: children} }

// Constant constructs a nullary application term.
func Constant(op string) *Term { return &Term{Op: op} }

// IsVar reports whether the term is a variable.
func (t *Term) IsVar() bool { return t.Var != "" }

// String renders the term in prefix notation.
func (t *Term) String() string {
	if t.IsVar() {
		return fmt.Sprintf("%s:%s", t.Var, t.VarSort)
	}
	if len(t.Children) == 0 {
		return t.Op
	}
	parts := make([]string, len(t.Children))
	for i, c := range t.Children {
		parts[i] = c.String()
	}
	return fmt.Sprintf("%s(%s)", t.Op, strings.Join(parts, ","))
}

// Size returns the number of nodes in the term.
func (t *Term) Size() int {
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Clone returns a deep copy of the term.
func (t *Term) Clone() *Term {
	if t.IsVar() {
		return &Term{Var: t.Var, VarSort: t.VarSort}
	}
	cs := make([]*Term, len(t.Children))
	for i, c := range t.Children {
		cs[i] = c.Clone()
	}
	return &Term{Op: t.Op, Children: cs}
}

// Equal reports structural equality of two terms.
func (t *Term) Equal(u *Term) bool {
	if t.IsVar() || u.IsVar() {
		return t.IsVar() && u.IsVar() && t.Var == u.Var && t.VarSort == u.VarSort
	}
	if t.Op != u.Op || len(t.Children) != len(u.Children) {
		return false
	}
	for i := range t.Children {
		if !t.Children[i].Equal(u.Children[i]) {
			return false
		}
	}
	return true
}

// Vars returns the variables occurring in the term, each once, in first-seen
// order.
func (t *Term) Vars() []*Term {
	var out []*Term
	seen := map[string]bool{}
	var walk func(*Term)
	walk = func(x *Term) {
		if x.IsVar() {
			if !seen[x.Var] {
				seen[x.Var] = true
				out = append(out, x)
			}
			return
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(t)
	return out
}

// SortOf infers the least result sort of the term in the signature. It
// returns an error for ill-sorted terms: undeclared operators, arity
// mismatches, or arguments whose sort is not a subsort of the declared
// argument sort. When an operator is overloaded, the first declaration whose
// argument sorts accept the children (in declaration order) is used.
func (s *Signature) SortOf(t *Term) (Sort, error) {
	if t.IsVar() {
		if !s.sorts.Contains(t.VarSort) {
			return "", fmt.Errorf("algebra: variable %s has undeclared sort %q", t.Var, t.VarSort)
		}
		return t.VarSort, nil
	}
	decls := s.ops[t.Op]
	if len(decls) == 0 {
		return "", fmt.Errorf("algebra: undeclared operator %q", t.Op)
	}
	childSorts := make([]Sort, len(t.Children))
	for i, c := range t.Children {
		cs, err := s.SortOf(c)
		if err != nil {
			return "", err
		}
		childSorts[i] = cs
	}
	var lastErr error
	for _, d := range decls {
		if len(d.Args) != len(t.Children) {
			lastErr = fmt.Errorf("algebra: operator %q applied to %d arguments, declaration wants %d", t.Op, len(t.Children), len(d.Args))
			continue
		}
		ok := true
		for i, want := range d.Args {
			if !s.Subsort(childSorts[i], want) {
				lastErr = fmt.Errorf("algebra: argument %d of %q has sort %q, not a subsort of %q", i, t.Op, childSorts[i], want)
				ok = false
				break
			}
		}
		if ok {
			return d.Result, nil
		}
	}
	return "", lastErr
}

// WellSorted reports whether the term is well-sorted in the signature.
func (s *Signature) WellSorted(t *Term) bool {
	_, err := s.SortOf(t)
	return err == nil
}

// Substitution maps variable names to terms.
type Substitution map[string]*Term

// Apply returns a copy of t with every bound variable replaced by its image.
func (sub Substitution) Apply(t *Term) *Term {
	if t.IsVar() {
		if r, ok := sub[t.Var]; ok {
			return r.Clone()
		}
		return t.Clone()
	}
	cs := make([]*Term, len(t.Children))
	for i, c := range t.Children {
		cs[i] = sub.Apply(c)
	}
	return &Term{Op: t.Op, Children: cs}
}

// Match attempts to match pattern against subject (subject must be at least
// as instantiated as the pattern: pattern variables bind to subject subterms,
// subject variables only match equal pattern variables). Sort constraints are
// checked against sig: a pattern variable of sort s only binds a subterm
// whose sort is a subsort of s. It returns the substitution and true on
// success.
func Match(sig *Signature, pattern, subject *Term) (Substitution, bool) {
	sub := Substitution{}
	if matchInto(sig, pattern, subject, sub) {
		return sub, true
	}
	return nil, false
}

func matchInto(sig *Signature, pattern, subject *Term, sub Substitution) bool {
	if pattern.IsVar() {
		if bound, ok := sub[pattern.Var]; ok {
			return bound.Equal(subject)
		}
		if sig != nil {
			st, err := sig.SortOf(subject)
			if err != nil || !sig.Subsort(st, pattern.VarSort) {
				return false
			}
		}
		sub[pattern.Var] = subject.Clone()
		return true
	}
	if subject.IsVar() {
		return false
	}
	if pattern.Op != subject.Op || len(pattern.Children) != len(subject.Children) {
		return false
	}
	for i := range pattern.Children {
		if !matchInto(sig, pattern.Children[i], subject.Children[i], sub) {
			return false
		}
	}
	return true
}

// Equation is an equality between two terms, universally quantified over
// their variables.
type Equation struct {
	Left, Right *Term
	Label       string
}

// String renders the equation.
func (e Equation) String() string {
	label := ""
	if e.Label != "" {
		label = "[" + e.Label + "] "
	}
	return fmt.Sprintf("%s%s = %s", label, e.Left, e.Right)
}

// Theory is an order-sorted equational theory (S, Σ, E): a signature plus a
// set of equations over it. It corresponds to the T of the data domain
// (T, D) in the Bench-Capon/Malcolm construction.
type Theory struct {
	Sig       *Signature
	Equations []Equation
}

// NewTheory builds a theory, validating that both sides of every equation are
// well-sorted and that their sorts are comparable in the sub-sort order.
func NewTheory(sig *Signature, eqs []Equation) (*Theory, error) {
	for _, e := range eqs {
		ls, err := sig.SortOf(e.Left)
		if err != nil {
			return nil, fmt.Errorf("algebra: equation %s: left side ill-sorted: %w", e, err)
		}
		rs, err := sig.SortOf(e.Right)
		if err != nil {
			return nil, fmt.Errorf("algebra: equation %s: right side ill-sorted: %w", e, err)
		}
		if !sig.Subsort(ls, rs) && !sig.Subsort(rs, ls) {
			return nil, fmt.Errorf("algebra: equation %s equates incomparable sorts %q and %q", e, ls, rs)
		}
	}
	return &Theory{Sig: sig, Equations: append([]Equation(nil), eqs...)}, nil
}

// RewriteResult reports the outcome of normalization.
type RewriteResult struct {
	Term    *Term
	Steps   int
	Reached bool // true if a normal form was reached within the step budget
}

// Normalize rewrites the term with the theory's equations oriented
// left-to-right, innermost-first, until no rule applies or the step budget is
// exhausted.
func (th *Theory) Normalize(t *Term, maxSteps int) RewriteResult {
	cur := t.Clone()
	steps := 0
	for steps < maxSteps {
		next, changed := th.rewriteOnce(cur)
		if !changed {
			return RewriteResult{Term: cur, Steps: steps, Reached: true}
		}
		cur = next
		steps++
	}
	return RewriteResult{Term: cur, Steps: steps, Reached: false}
}

// rewriteOnce applies a single rewrite step at the innermost-leftmost redex.
func (th *Theory) rewriteOnce(t *Term) (*Term, bool) {
	if !t.IsVar() {
		for i, c := range t.Children {
			if nc, changed := th.rewriteOnce(c); changed {
				cs := make([]*Term, len(t.Children))
				copy(cs, t.Children)
				cs[i] = nc
				return &Term{Op: t.Op, Children: cs}, true
			}
		}
	}
	for _, e := range th.Equations {
		if sub, ok := Match(th.Sig, e.Left, t); ok {
			replaced := sub.Apply(e.Right)
			if !replaced.Equal(t) {
				return replaced, true
			}
		}
	}
	return t, false
}

// EquivalentUnder reports whether the two terms have identical normal forms
// under the theory within the step budget. This is a sound but incomplete
// equality check (complete when the oriented rules are confluent and
// terminating, which the built-in and generated theories are).
func (th *Theory) EquivalentUnder(a, b *Term, maxSteps int) bool {
	na := th.Normalize(a, maxSteps)
	nb := th.Normalize(b, maxSteps)
	return na.Reached && nb.Reached && na.Term.Equal(nb.Term)
}
