package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// natSig builds the signature of naturals with zero, succ, plus, and a
// subsort NzNat ≤ Nat of non-zero naturals.
func natSig(t testing.TB) *Signature {
	t.Helper()
	s := NewSignature()
	s.AddSort("Nat")
	s.AddSort("NzNat")
	if err := s.AddSubsort("NzNat", "Nat"); err != nil {
		t.Fatalf("AddSubsort: %v", err)
	}
	mustOp := func(op Operator) {
		if err := s.AddOperator(op); err != nil {
			t.Fatalf("AddOperator(%v): %v", op, err)
		}
	}
	mustOp(Operator{Name: "zero", Result: "Nat"})
	mustOp(Operator{Name: "succ", Args: []Sort{"Nat"}, Result: "NzNat"})
	mustOp(Operator{Name: "plus", Args: []Sort{"Nat", "Nat"}, Result: "Nat"})
	return s
}

// natTheory builds the usual Peano addition rules over natSig.
func natTheory(t testing.TB) *Theory {
	t.Helper()
	s := natSig(t)
	x := Variable("x", "Nat")
	y := Variable("y", "Nat")
	eqs := []Equation{
		{Label: "plus-zero", Left: Apply("plus", Constant("zero"), x), Right: x},
		{Label: "plus-succ", Left: Apply("plus", Apply("succ", x), y), Right: Apply("succ", Apply("plus", x, y))},
	}
	th, err := NewTheory(s, eqs)
	if err != nil {
		t.Fatalf("NewTheory: %v", err)
	}
	return th
}

func num(n int) *Term {
	t := Constant("zero")
	for i := 0; i < n; i++ {
		t = Apply("succ", t)
	}
	return t
}

func TestSignatureSubsort(t *testing.T) {
	s := natSig(t)
	if !s.Subsort("NzNat", "Nat") {
		t.Error("NzNat should be a subsort of Nat")
	}
	if s.Subsort("Nat", "NzNat") {
		t.Error("Nat should not be a subsort of NzNat")
	}
	if !s.Subsort("Nat", "Nat") {
		t.Error("subsort order must be reflexive")
	}
}

func TestAddSubsortCycle(t *testing.T) {
	s := NewSignature()
	s.AddSort("A")
	s.AddSort("B")
	if err := s.AddSubsort("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSubsort("B", "A"); err == nil {
		t.Error("cyclic subsort declaration should fail")
	}
}

func TestAddOperatorValidation(t *testing.T) {
	s := NewSignature()
	s.AddSort("Nat")
	if err := s.AddOperator(Operator{Name: "f", Args: []Sort{"Missing"}, Result: "Nat"}); err == nil {
		t.Error("operator with undeclared argument sort should be rejected")
	}
	if err := s.AddOperator(Operator{Name: "zero", Result: "Nat"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddOperator(Operator{Name: "zero", Result: "Nat"}); err == nil {
		t.Error("identical redeclaration should be rejected")
	}
	// Overloading with a different rank is allowed.
	s.AddSort("Int")
	if err := s.AddOperator(Operator{Name: "zero", Result: "Int"}); err != nil {
		t.Errorf("overloading with distinct rank should be allowed: %v", err)
	}
}

func TestOperatorsSortedAndConstants(t *testing.T) {
	s := natSig(t)
	ops := s.Operators()
	if len(ops) != 3 {
		t.Fatalf("Operators() = %d, want 3", len(ops))
	}
	for i := 1; i < len(ops); i++ {
		if ops[i-1].Name > ops[i].Name {
			t.Error("Operators() not sorted by name")
		}
	}
	consts := s.Constants("Nat")
	if len(consts) != 1 || consts[0].Name != "zero" {
		t.Errorf("Constants(Nat) = %v, want [zero]", consts)
	}
	if got := s.Constants("NzNat"); len(got) != 0 {
		t.Errorf("Constants(NzNat) = %v, want none (zero is not NzNat)", got)
	}
	if got := s.Declarations("plus"); len(got) != 1 {
		t.Errorf("Declarations(plus) = %v", got)
	}
}

func TestSortOfInference(t *testing.T) {
	s := natSig(t)
	cases := []struct {
		term *Term
		want Sort
	}{
		{Constant("zero"), "Nat"},
		{Apply("succ", Constant("zero")), "NzNat"},
		{Apply("plus", num(1), num(2)), "Nat"},
		// succ accepts Nat, and NzNat ≤ Nat, so succ(succ(zero)) is fine.
		{Apply("succ", Apply("succ", Constant("zero"))), "NzNat"},
		{Variable("x", "NzNat"), "NzNat"},
	}
	for _, c := range cases {
		got, err := s.SortOf(c.term)
		if err != nil {
			t.Errorf("SortOf(%v): %v", c.term, err)
			continue
		}
		if got != c.want {
			t.Errorf("SortOf(%v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestSortOfErrors(t *testing.T) {
	s := natSig(t)
	bad := []*Term{
		Constant("undeclared"),
		Apply("succ", Constant("zero"), Constant("zero")), // arity
		Variable("x", "Missing"),
	}
	for _, b := range bad {
		if _, err := s.SortOf(b); err == nil {
			t.Errorf("SortOf(%v) should fail", b)
		}
	}
	if s.WellSorted(bad[0]) {
		t.Error("WellSorted should be false for ill-sorted term")
	}
	if !s.WellSorted(num(3)) {
		t.Error("WellSorted should be true for num(3)")
	}
}

func TestTermBasics(t *testing.T) {
	tm := Apply("plus", num(2), Variable("x", "Nat"))
	if tm.Size() != 5 {
		t.Errorf("Size = %d, want 5", tm.Size())
	}
	if got := tm.String(); got != "plus(succ(succ(zero)),x:Nat)" {
		t.Errorf("String = %q", got)
	}
	clone := tm.Clone()
	if !clone.Equal(tm) {
		t.Error("clone not equal to original")
	}
	clone.Children[0] = Constant("zero")
	if clone.Equal(tm) {
		t.Error("mutating clone should break equality")
	}
	vars := tm.Vars()
	if len(vars) != 1 || vars[0].Var != "x" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestMatchAndSubstitution(t *testing.T) {
	s := natSig(t)
	pattern := Apply("plus", Apply("succ", Variable("x", "Nat")), Variable("y", "Nat"))
	subject := Apply("plus", num(2), num(1))
	sub, ok := Match(s, pattern, subject)
	if !ok {
		t.Fatal("expected match")
	}
	if !sub["x"].Equal(num(1)) || !sub["y"].Equal(num(1)) {
		t.Errorf("substitution = %v", sub)
	}
	// Applying the substitution to the pattern reproduces the subject.
	if !sub.Apply(pattern).Equal(subject) {
		t.Error("sub(pattern) != subject")
	}
}

func TestMatchRespectSorts(t *testing.T) {
	s := natSig(t)
	// A variable of sort NzNat must not bind zero (sort Nat, not ≤ NzNat).
	pattern := Apply("succ", Variable("x", "NzNat"))
	subject := Apply("succ", Constant("zero"))
	if _, ok := Match(s, pattern, subject); ok {
		t.Error("match should fail: zero is not of sort NzNat")
	}
	subject2 := Apply("succ", num(1))
	if _, ok := Match(s, pattern, subject2); !ok {
		t.Error("match should succeed: succ(zero) has sort NzNat")
	}
}

func TestMatchNonLinearPattern(t *testing.T) {
	s := natSig(t)
	pattern := Apply("plus", Variable("x", "Nat"), Variable("x", "Nat"))
	if _, ok := Match(s, pattern, Apply("plus", num(1), num(1))); !ok {
		t.Error("non-linear match with equal arguments should succeed")
	}
	if _, ok := Match(s, pattern, Apply("plus", num(1), num(2))); ok {
		t.Error("non-linear match with different arguments should fail")
	}
}

func TestNewTheoryValidation(t *testing.T) {
	s := natSig(t)
	bad := []Equation{{Left: Constant("zero"), Right: Constant("nope")}}
	if _, err := NewTheory(s, bad); err == nil {
		t.Error("ill-sorted equation should be rejected")
	}
}

func TestNormalizePeanoAddition(t *testing.T) {
	th := natTheory(t)
	res := th.Normalize(Apply("plus", num(2), num(3)), 100)
	if !res.Reached {
		t.Fatal("normalization did not reach a normal form")
	}
	if !res.Term.Equal(num(5)) {
		t.Errorf("2+3 normalized to %v, want %v", res.Term, num(5))
	}
	if res.Steps == 0 {
		t.Error("expected at least one rewrite step")
	}
}

func TestNormalizeBudgetExhausted(t *testing.T) {
	th := natTheory(t)
	res := th.Normalize(Apply("plus", num(10), num(10)), 2)
	if res.Reached {
		t.Error("two steps cannot normalize 10+10")
	}
}

func TestEquivalentUnder(t *testing.T) {
	th := natTheory(t)
	a := Apply("plus", num(2), num(3))
	b := Apply("plus", num(4), num(1))
	if !th.EquivalentUnder(a, b, 200) {
		t.Error("2+3 and 4+1 should be equivalent")
	}
	if th.EquivalentUnder(a, num(4), 200) {
		t.Error("2+3 and 4 should not be equivalent")
	}
}

func TestPropertyNormalizationComputesAddition(t *testing.T) {
	th := natTheory(t)
	f := func(a, b uint8) bool {
		x, y := int(a%12), int(b%12)
		res := th.Normalize(Apply("plus", num(x), num(y)), 500)
		return res.Reached && res.Term.Equal(num(x+y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertySubstitutionComposition(t *testing.T) {
	// Applying a substitution twice is idempotent when images are ground.
	th := natTheory(t)
	_ = th
	f := func(n uint8) bool {
		sub := Substitution{"x": num(int(n % 6))}
		tm := Apply("plus", Variable("x", "Nat"), Variable("x", "Nat"))
		once := sub.Apply(tm)
		twice := sub.Apply(once)
		return once.Equal(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNormalizeAddition(b *testing.B) {
	th := natTheory(b)
	term := Apply("plus", num(20), num(20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := th.Normalize(term, 1000)
		if !res.Reached {
			b.Fatal("did not normalize")
		}
	}
}

func BenchmarkMatch(b *testing.B) {
	s := natSig(b)
	pattern := Apply("plus", Apply("succ", Variable("x", "Nat")), Variable("y", "Nat"))
	subject := Apply("plus", num(15), num(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Match(s, pattern, subject); !ok {
			b.Fatal("match failed")
		}
	}
}

func BenchmarkSortOf(b *testing.B) {
	s := natSig(b)
	r := rand.New(rand.NewSource(3))
	terms := make([]*Term, 32)
	for i := range terms {
		terms[i] = Apply("plus", num(r.Intn(20)), num(r.Intn(20)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SortOf(terms[i%len(terms)]); err != nil {
			b.Fatal(err)
		}
	}
}
