package algebra

import (
	"fmt"
	"sort"
)

// Value is an element of a carrier set in a finite algebra. Values are
// compared by string identity.
type Value string

// Model is a finite order-sorted algebra for a signature: a carrier set for
// every sort (with carriers of subsorts contained in carriers of supersorts)
// and a total interpretation for every operator declaration. A Theory paired
// with a Model of it is a "data domain" in the Bench-Capon/Malcolm sense.
type Model struct {
	sig      *Signature
	carriers map[Sort][]Value
	// ops maps operator name and argument tuple (joined) to a result value.
	ops map[string]Value
}

// NewModel creates an empty model of the signature. Carriers and operations
// are added with SetCarrier and DefineOp, and the result checked with
// Validate.
func NewModel(sig *Signature) *Model {
	return &Model{sig: sig, carriers: map[Sort][]Value{}, ops: map[string]Value{}}
}

// SetCarrier assigns the carrier set of a sort. The slice is copied and
// deduplicated, preserving first occurrence order.
func (m *Model) SetCarrier(s Sort, values []Value) {
	seen := map[Value]bool{}
	var out []Value
	for _, v := range values {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	m.carriers[s] = out
}

// Carrier returns the carrier of a sort (nil if unset).
func (m *Model) Carrier(s Sort) []Value {
	out := make([]Value, len(m.carriers[s]))
	copy(out, m.carriers[s])
	return out
}

func opKey(name string, args []Value) string {
	key := name
	for _, a := range args {
		key += "\x00" + string(a)
	}
	return key
}

// DefineOp defines the result of applying the named operator to the given
// argument values.
func (m *Model) DefineOp(name string, args []Value, result Value) {
	m.ops[opKey(name, args)] = result
}

// Apply evaluates the named operator on argument values, reporting whether an
// interpretation was defined for that tuple.
func (m *Model) Apply(name string, args []Value) (Value, bool) {
	v, ok := m.ops[opKey(name, args)]
	return v, ok
}

// Validate checks that the model is a genuine order-sorted algebra for its
// signature:
//
//   - every declared sort has a carrier (possibly empty);
//   - the carrier of a subsort is a subset of the carrier of each supersort;
//   - every operator declaration is total on the carriers of its argument
//     sorts and lands in the carrier of its result sort.
func (m *Model) Validate() error {
	for _, s := range m.sig.Sorts() {
		if _, ok := m.carriers[s]; !ok {
			return fmt.Errorf("algebra: sort %q has no carrier", s)
		}
	}
	for _, sub := range m.sig.Sorts() {
		for _, super := range m.sig.Sorts() {
			if sub == super || !m.sig.Subsort(sub, super) {
				continue
			}
			superSet := map[Value]bool{}
			for _, v := range m.carriers[super] {
				superSet[v] = true
			}
			for _, v := range m.carriers[sub] {
				if !superSet[v] {
					return fmt.Errorf("algebra: carrier of %q contains %q, missing from supersort %q", sub, v, super)
				}
			}
		}
	}
	for _, op := range m.sig.Operators() {
		if err := m.checkTotal(op); err != nil {
			return err
		}
	}
	return nil
}

// checkTotal verifies that op is defined on every argument tuple drawn from
// the carriers and lands in the result carrier.
func (m *Model) checkTotal(op Operator) error {
	resultSet := map[Value]bool{}
	for _, v := range m.carriers[op.Result] {
		resultSet[v] = true
	}
	tuples := cartesian(m, op.Args)
	for _, args := range tuples {
		res, ok := m.Apply(op.Name, args)
		if !ok {
			return fmt.Errorf("algebra: operator %s undefined on %v", op, args)
		}
		if !resultSet[res] {
			return fmt.Errorf("algebra: operator %s maps %v to %q outside carrier of %q", op, args, res, op.Result)
		}
	}
	return nil
}

func cartesian(m *Model, sorts []Sort) [][]Value {
	result := [][]Value{nil}
	for _, s := range sorts {
		carrier := m.carriers[s]
		var next [][]Value
		for _, prefix := range result {
			for _, v := range carrier {
				row := make([]Value, len(prefix)+1)
				copy(row, prefix)
				row[len(prefix)] = v
				next = append(next, row)
			}
		}
		result = next
	}
	if len(sorts) == 0 {
		return [][]Value{{}}
	}
	return result
}

// Assignment maps variable names to values.
type Assignment map[string]Value

// Eval evaluates a term in the model under an assignment of its variables.
// It returns an error for unassigned variables or undefined operations.
func (m *Model) Eval(t *Term, a Assignment) (Value, error) {
	if t.IsVar() {
		v, ok := a[t.Var]
		if !ok {
			return "", fmt.Errorf("algebra: variable %q unassigned", t.Var)
		}
		return v, nil
	}
	args := make([]Value, len(t.Children))
	for i, c := range t.Children {
		v, err := m.Eval(c, a)
		if err != nil {
			return "", err
		}
		args[i] = v
	}
	v, ok := m.Apply(t.Op, args)
	if !ok {
		return "", fmt.Errorf("algebra: operation %q undefined on %v", t.Op, args)
	}
	return v, nil
}

// Satisfies reports whether the model satisfies the equation: both sides
// evaluate to the same value under every assignment of the equation's
// variables to carrier elements of their sorts. It returns an error if
// evaluation itself fails (e.g. undefined operations).
func (m *Model) Satisfies(e Equation) (bool, error) {
	vars := append(e.Left.Vars(), e.Right.Vars()...)
	// Deduplicate by name, keep sorts.
	varSorts := map[string]Sort{}
	var names []string
	for _, v := range vars {
		if _, ok := varSorts[v.Var]; !ok {
			varSorts[v.Var] = v.VarSort
			names = append(names, v.Var)
		}
	}
	sort.Strings(names)
	assignments := m.assignments(names, varSorts)
	for _, a := range assignments {
		lv, err := m.Eval(e.Left, a)
		if err != nil {
			return false, err
		}
		rv, err := m.Eval(e.Right, a)
		if err != nil {
			return false, err
		}
		if lv != rv {
			return false, nil
		}
	}
	return true, nil
}

func (m *Model) assignments(names []string, sorts map[string]Sort) []Assignment {
	result := []Assignment{{}}
	for _, n := range names {
		carrier := m.carriers[sorts[n]]
		var next []Assignment
		for _, prefix := range result {
			for _, v := range carrier {
				a := Assignment{}
				for k, pv := range prefix {
					a[k] = pv
				}
				a[n] = v
				next = append(next, a)
			}
		}
		result = next
	}
	return result
}

// SatisfiesTheory reports whether the model satisfies every equation of the
// theory, returning the first failing equation's label (or its rendering when
// unlabeled) when it does not.
func (m *Model) SatisfiesTheory(th *Theory) (bool, string, error) {
	for _, e := range th.Equations {
		ok, err := m.Satisfies(e)
		if err != nil {
			return false, e.String(), err
		}
		if !ok {
			return false, e.String(), nil
		}
	}
	return true, "", nil
}

// DataDomain couples a theory with a model of it, the pair (T, D) from the
// Bench-Capon/Malcolm Definition 1.
type DataDomain struct {
	Theory *Theory
	Model  *Model
}

// NewDataDomain validates that the model is a well-formed algebra for the
// theory's signature and that it satisfies the theory's equations, and
// returns the pair.
func NewDataDomain(th *Theory, m *Model) (*DataDomain, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ok, failing, err := m.SatisfiesTheory(th)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("algebra: model does not satisfy equation %s", failing)
	}
	return &DataDomain{Theory: th, Model: m}, nil
}
