package structure

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dl"
)

// carGraph and dogGraph extract the per-concept definition subgraphs the
// paper's diagrams (6)–(8) draw.
func carGraph(t *testing.T, tb *dl.TBox) *Graph {
	t.Helper()
	g, err := FromTBox(tb)
	if err != nil {
		t.Fatal(err)
	}
	return g.Reachable("car")
}

func dogGraph(t *testing.T, tb *dl.TBox) *Graph {
	t.Helper()
	g, err := FromTBox(tb)
	if err != nil {
		t.Fatal(err)
	}
	return g.Reachable("dog")
}

func TestCarDogGraphIsomorphism(t *testing.T) {
	tb := combinedTBox(t)
	car := carGraph(t, tb)
	dog := dogGraph(t, tb)
	// With all labels erased the two definition graphs are isomorphic: the
	// CAR ≅ DOG collision of §3 at the graph level.
	if !Isomorphic(car, dog, IsoOptions{IgnoreAtoms: true, IgnoreRoles: true}) {
		t.Error("unlabeled car and dog definition graphs should be isomorphic (the paper's eq. 4 vs eq. 8)")
	}
	// With atom labels preserved they are not.
	if Isomorphic(car, dog, IsoOptions{IgnoreRoles: true}) {
		t.Error("car and dog graphs should differ when atomic concept names are preserved")
	}
	if IsomorphicDefault(car, dog) {
		t.Error("fully labeled car and dog graphs should not be isomorphic")
	}
}

func TestRevisedDogBreaksIsomorphism(t *testing.T) {
	tb := dl.NewTBox()
	for _, src := range []*dl.TBox{vehiclesTBox(t), revisedAnimalsTBox(t)} {
		for _, d := range src.Definitions() {
			if err := tb.Define(d.Name, d.Kind, d.Concept); err != nil {
				t.Fatal(err)
			}
		}
	}
	car := carGraph(t, tb)
	dog := dogGraph(t, tb)
	if Isomorphic(car, dog, IsoOptions{IgnoreAtoms: true, IgnoreRoles: true, IgnoreKinds: true}) {
		t.Error("after quadruped ⊑ animal (eq. 9) the unlabeled graphs should no longer be isomorphic")
	}
}

func TestIsomorphicSelf(t *testing.T) {
	g, err := FromTBox(combinedTBox(t))
	if err != nil {
		t.Fatal(err)
	}
	if !IsomorphicDefault(g, g) {
		t.Error("a graph must be isomorphic to itself")
	}
}

func TestIsomorphicRejectsDifferentCounts(t *testing.T) {
	a := NewGraph()
	a.AddNode(Node{ID: "x", Kind: NodePrimitive})
	b := NewGraph()
	b.AddNode(Node{ID: "x", Kind: NodePrimitive})
	b.AddNode(Node{ID: "y", Kind: NodePrimitive})
	if Isomorphic(a, b, IsoOptions{IgnoreAtoms: true, IgnoreRoles: true, IgnoreKinds: true}) {
		t.Error("graphs with different node counts reported isomorphic")
	}
}

func TestIsomorphicRespectsRoleLabels(t *testing.T) {
	build := func(role string) *Graph {
		g := NewGraph()
		g.AddNode(Node{ID: "a", Kind: NodeDefined})
		g.AddNode(Node{ID: "b", Kind: NodePrimitive})
		if err := g.AddEdge(Edge{From: "a", To: "b", Role: role}); err != nil {
			t.Fatal(err)
		}
		return g
	}
	r := build("r")
	s := build("s")
	if IsomorphicDefault(r, s) {
		t.Error("graphs differing only in role label reported isomorphic under default options")
	}
	if !Isomorphic(r, s, IsoOptions{IgnoreRoles: true}) {
		t.Error("graphs differing only in role label should match when roles are ignored")
	}
}

func TestIsomorphicRespectsCardinality(t *testing.T) {
	build := func(min int) *Graph {
		g := NewGraph()
		g.AddNode(Node{ID: "a", Kind: NodeDefined})
		g.AddNode(Node{ID: "b", Kind: NodePrimitive})
		if err := g.AddEdge(Edge{From: "a", To: "b", Role: "has", Min: min}); err != nil {
			t.Fatal(err)
		}
		return g
	}
	if IsomorphicDefault(build(2), build(4)) {
		t.Error("graphs differing only in edge cardinality reported isomorphic")
	}
}

// TestIsomorphicRelabeledCopy is the property test: any random DAG-ish labeled
// graph is isomorphic (ignoring atoms) to a copy of itself with all node ids
// renamed.
func TestIsomorphicRelabeledCopy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(6))
		h := relabel(g, "copy_")
		return Isomorphic(g, h, IsoOptions{IgnoreAtoms: false, IgnoreRoles: false})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestIsomorphicEdgeRemovalBreaks checks the converse: removing one edge from
// a relabeled copy breaks isomorphism.
func TestIsomorphicEdgeRemovalBreaks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 4+rng.Intn(5))
		if g.EdgeCount() == 0 {
			return true
		}
		h := relabel(g, "copy_")
		// Rebuild h without its last edge.
		trimmed := NewGraph()
		for _, id := range h.Nodes() {
			n, _ := h.Node(id)
			trimmed.AddNode(n)
		}
		edges := h.Edges()
		for _, e := range edges[:len(edges)-1] {
			if err := trimmed.AddEdge(e); err != nil {
				return false
			}
		}
		return !Isomorphic(g, trimmed, IsoOptions{IgnoreAtoms: true, IgnoreRoles: true, IgnoreKinds: true})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randomGraph builds a random labeled DAG with n nodes and roughly 1.5n edges.
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := NewGraph()
	kinds := []NodeKind{NodeDefined, NodePrimitive, NodeRestriction}
	atoms := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		var as []string
		for _, a := range atoms {
			if rng.Intn(2) == 0 {
				as = append(as, a)
			}
		}
		g.AddNode(Node{ID: fmt.Sprintf("n%d", i), Kind: kinds[rng.Intn(len(kinds))], Atoms: as})
	}
	roles := []string{"r", "s", "⊑"}
	edges := n + n/2
	for i := 0; i < edges; i++ {
		from := rng.Intn(n)
		to := rng.Intn(n)
		if from == to {
			continue
		}
		// Orient edges from lower to higher index to keep the graph acyclic,
		// like a definition graph.
		if from > to {
			from, to = to, from
		}
		_ = g.AddEdge(Edge{
			From: fmt.Sprintf("n%d", from),
			To:   fmt.Sprintf("n%d", to),
			Role: roles[rng.Intn(len(roles))],
			Min:  1 + rng.Intn(3),
		})
	}
	return g
}

// relabel returns a copy of g with every node id prefixed.
func relabel(g *Graph, prefix string) *Graph {
	h := NewGraph()
	for _, id := range g.Nodes() {
		n, _ := g.Node(id)
		h.AddNode(Node{ID: prefix + id, Kind: n.Kind, Atoms: n.Atoms})
	}
	for _, e := range g.Edges() {
		if err := h.AddEdge(Edge{From: prefix + e.From, To: prefix + e.To, Role: e.Role, Min: e.Min}); err != nil {
			panic(err)
		}
	}
	return h
}

func TestReachableSubgraph(t *testing.T) {
	g, err := FromTBox(vehiclesTBox(t))
	if err != nil {
		t.Fatal(err)
	}
	sub := g.Reachable("car")
	// From car one reaches motorvehicle, roadvehicle, their restriction
	// nodes and primitives, but never pickup.
	if _, ok := sub.Node("pickup"); ok {
		t.Error("car subgraph should not contain pickup")
	}
	for _, want := range []string{"car", "motorvehicle", "roadvehicle", "gasoline", "wheels", "small"} {
		if _, ok := sub.Node(want); !ok {
			t.Errorf("car subgraph missing %q", want)
		}
	}
	if empty := g.Reachable("nonexistent"); empty.NodeCount() != 0 {
		t.Error("Reachable of an unknown root should be empty")
	}
}
