package structure

import (
	"strings"
	"testing"

	"repro/internal/dl"
)

func TestCollisionsOnPaperTBox(t *testing.T) {
	tb := combinedTBox(t)
	rep := Collisions(tb, 0, EraseAll)
	if rep.Defined != 8 {
		t.Fatalf("Defined = %d, want 8", rep.Defined)
	}
	if rep.TotalPairs != 28 {
		t.Fatalf("TotalPairs = %d, want 28", rep.TotalPairs)
	}
	// car/dog, pickup/horse, motorvehicle/animal, roadvehicle/quadruped (and
	// cross pairs among structurally identical bodies) must all collide
	// shape-only, so the rate is well above zero.
	if rep.CollidingPairs == 0 {
		t.Fatal("expected shape-only collisions in the combined car/dog TBox")
	}
	if rep.CollisionRate() <= 0 || rep.CollisionRate() > 1 {
		t.Errorf("CollisionRate = %f, want within (0, 1]", rep.CollisionRate())
	}
	// car and dog specifically must be in the same group.
	var together bool
	for _, g := range rep.Groups {
		hasCar, hasDog := false, false
		for _, n := range g.Names {
			if n == "car" {
				hasCar = true
			}
			if n == "dog" {
				hasDog = true
			}
		}
		if hasCar && hasDog {
			together = true
		}
	}
	if !together {
		t.Error("car and dog should share a collision group at depth 0, erase-all")
	}
	if !strings.Contains(rep.Describe(), "car") {
		t.Error("Describe should mention the colliding names")
	}
}

func TestCollisionsKeepingNames(t *testing.T) {
	tb := combinedTBox(t)
	rep := Collisions(tb, 0, EraseNothing)
	if rep.CollidingPairs != 0 {
		t.Errorf("with names kept the paper TBox should have no collisions, got %d pairs: %s",
			rep.CollidingPairs, rep.Describe())
	}
	if rep.DistinctSkeletons != rep.Defined {
		t.Errorf("DistinctSkeletons = %d, want %d", rep.DistinctSkeletons, rep.Defined)
	}
}

func TestCollisionsSkipsNonConjunctive(t *testing.T) {
	tb := dl.NewTBox()
	tb.MustDefine("a", dl.SubsumedBy, dl.Exists("r", dl.Atomic("x")))
	tb.MustDefine("weird", dl.Equivalent, dl.Not(dl.Atomic("x")))
	rep := Collisions(tb, 0, EraseAll)
	if rep.Defined != 1 {
		t.Errorf("Defined = %d, want 1", rep.Defined)
	}
	if len(rep.Skipped) != 1 || rep.Skipped[0] != "weird" {
		t.Errorf("Skipped = %v, want [weird]", rep.Skipped)
	}
}

func TestDifferentiationCurve(t *testing.T) {
	tb := combinedTBox(t)
	points := DifferentiationCurve(tb, 3, EraseConcepts)
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	if points[0].Depth != 0 || points[3].Depth != 3 {
		t.Errorf("depths = %d..%d, want 0..3", points[0].Depth, points[3].Depth)
	}
	// Unfolding only adds structure, so the mean tree size must be
	// non-decreasing in depth.
	for i := 1; i < len(points); i++ {
		if points[i].MeanTreeSize < points[i-1].MeanTreeSize {
			t.Errorf("MeanTreeSize decreased from depth %d to %d (%f -> %f)",
				points[i-1].Depth, points[i].Depth, points[i-1].MeanTreeSize, points[i].MeanTreeSize)
		}
	}
	// With role labels kept, unfolding eventually separates car from dog:
	// the number of colliding pairs at the deepest point must be strictly
	// below the depth-0 value.
	if points[3].CollidingPairs >= points[0].CollidingPairs {
		t.Errorf("expected unfolding to reduce collisions with roles kept: depth0=%d depth3=%d",
			points[0].CollidingPairs, points[3].CollidingPairs)
	}
	// Shape-only collisions, by contrast, never go away for this TBox —
	// the paper's "we can't [stop]".
	shape := DifferentiationCurve(tb, 3, EraseAll)
	if shape[3].CollidingPairs == 0 {
		t.Error("shape-only collisions should persist at every depth for the eq. (4)/(8) pair")
	}
}

func TestSeparatesUndefinedName(t *testing.T) {
	tb := vehiclesTBox(t)
	if _, ok := Separates(tb, "car", "unicorn", 1, EraseAll); ok {
		t.Error("Separates should report not-ok for an undefined name")
	}
}

func TestCollisionRateEmptyTBox(t *testing.T) {
	rep := Collisions(dl.NewTBox(), 0, EraseAll)
	if rep.CollisionRate() != 0 {
		t.Errorf("CollisionRate of empty TBox = %f, want 0", rep.CollisionRate())
	}
	if rep.TotalPairs != 0 || rep.CollidingPairs != 0 {
		t.Errorf("empty TBox produced pairs: %+v", rep)
	}
}
