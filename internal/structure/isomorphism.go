package structure

import "sort"

// IsoOptions controls which labels the isomorphism test must respect.
// The zero value requires node kinds, atom sets, role labels, and
// cardinalities all to match, i.e. the strictest notion.
type IsoOptions struct {
	// IgnoreAtoms makes the matcher treat nodes with different atom sets as
	// compatible (the paper's erasure of concept names).
	IgnoreAtoms bool
	// IgnoreRoles makes the matcher treat edges with different role labels or
	// cardinalities as compatible (the paper's diagram (7) erasure).
	IgnoreRoles bool
	// IgnoreKinds makes the matcher ignore the defined/primitive/restriction
	// distinction on nodes.
	IgnoreKinds bool
}

// Isomorphic reports whether two definition graphs are isomorphic under the
// options: whether there is a bijection between their node sets preserving
// edges and the labels the options do not ignore. The search is a VF2-style
// backtracking matcher with degree- and label-based pruning; it is intended
// for the small graphs produced by definitions (tens of nodes), not for large
// arbitrary graphs.
func Isomorphic(a, b *Graph, opts IsoOptions) bool {
	m := newMatcher(a, b, opts)
	return m.feasibleCounts() && m.match(map[string]string{}, map[string]bool{})
}

// IsomorphicDefault reports isomorphism with full label preservation.
func IsomorphicDefault(a, b *Graph) bool {
	return Isomorphic(a, b, IsoOptions{})
}

type matcher struct {
	a, b *Graph
	opts IsoOptions
	// candidate lists for each node of a: nodes of b with compatible label
	// signature, in deterministic order.
	candidates map[string][]string
	orderA     []string
}

func newMatcher(a, b *Graph, opts IsoOptions) *matcher {
	m := &matcher{a: a, b: b, opts: opts, candidates: map[string][]string{}}
	bNodes := b.Nodes()
	sort.Strings(bNodes)
	for _, na := range a.Nodes() {
		var cands []string
		for _, nb := range bNodes {
			if m.nodeCompatible(na, nb) {
				cands = append(cands, nb)
			}
		}
		m.candidates[na] = cands
	}
	// Match the most constrained nodes first: fewest candidates, then highest
	// degree, to cut the search space.
	m.orderA = a.Nodes()
	sort.Slice(m.orderA, func(i, j int) bool {
		ci, cj := len(m.candidates[m.orderA[i]]), len(m.candidates[m.orderA[j]])
		if ci != cj {
			return ci < cj
		}
		di := len(a.Out(m.orderA[i])) + len(a.In(m.orderA[i]))
		dj := len(a.Out(m.orderA[j])) + len(a.In(m.orderA[j]))
		if di != dj {
			return di > dj
		}
		return m.orderA[i] < m.orderA[j]
	})
	return m
}

// feasibleCounts performs the cheap global pruning checks before search.
func (m *matcher) feasibleCounts() bool {
	if m.a.NodeCount() != m.b.NodeCount() || m.a.EdgeCount() != m.b.EdgeCount() {
		return false
	}
	for _, na := range m.a.Nodes() {
		if len(m.candidates[na]) == 0 {
			return false
		}
	}
	return true
}

func (m *matcher) nodeCompatible(idA, idB string) bool {
	na, _ := m.a.Node(idA)
	nb, _ := m.b.Node(idB)
	if !m.opts.IgnoreKinds && na.Kind != nb.Kind {
		return false
	}
	if !m.opts.IgnoreAtoms {
		if len(na.Atoms) != len(nb.Atoms) {
			return false
		}
		for i := range na.Atoms {
			if na.Atoms[i] != nb.Atoms[i] {
				return false
			}
		}
	}
	if len(m.a.Out(idA)) != len(m.b.Out(idB)) || len(m.a.In(idA)) != len(m.b.In(idB)) {
		return false
	}
	return true
}

func (m *matcher) edgeCompatible(ea, eb Edge) bool {
	if m.opts.IgnoreRoles {
		return true
	}
	return ea.Role == eb.Role && ea.Min == eb.Min
}

// match extends the partial mapping assign (a node id -> b node id) to a full
// isomorphism, using usedB to track already-claimed b nodes.
func (m *matcher) match(assign map[string]string, usedB map[string]bool) bool {
	if len(assign) == len(m.orderA) {
		return true
	}
	na := m.orderA[len(assign)]
	for _, nb := range m.candidates[na] {
		if usedB[nb] {
			continue
		}
		if !m.consistent(assign, na, nb) {
			continue
		}
		assign[na] = nb
		usedB[nb] = true
		if m.match(assign, usedB) {
			return true
		}
		delete(assign, na)
		delete(usedB, nb)
	}
	return false
}

// consistent checks that mapping na ↦ nb preserves all edges between na and
// already-mapped nodes.
func (m *matcher) consistent(assign map[string]string, na, nb string) bool {
	for _, ea := range m.a.Out(na) {
		if mapped, ok := assign[ea.To]; ok {
			if !m.hasEdge(m.b, nb, mapped, ea) {
				return false
			}
		}
	}
	for _, ea := range m.a.In(na) {
		if mapped, ok := assign[ea.From]; ok {
			if !m.hasEdge(m.b, mapped, nb, ea) {
				return false
			}
		}
	}
	// And conversely: every edge of b between nb and mapped images must have a
	// preimage, which the count pruning plus the forward check guarantees for
	// simple graphs; for multigraphs check explicitly.
	for _, eb := range m.b.Out(nb) {
		if pre, ok := reverseLookup(assign, eb.To); ok {
			if !m.hasEdgeA(na, pre, eb) {
				return false
			}
		}
	}
	for _, eb := range m.b.In(nb) {
		if pre, ok := reverseLookup(assign, eb.From); ok {
			if !m.hasEdgeA(pre, na, eb) {
				return false
			}
		}
	}
	return true
}

func (m *matcher) hasEdge(g *Graph, from, to string, like Edge) bool {
	for _, e := range g.Out(from) {
		if e.To == to && m.edgeCompatible(like, e) {
			return true
		}
	}
	return false
}

func (m *matcher) hasEdgeA(from, to string, like Edge) bool {
	for _, e := range m.a.Out(from) {
		if e.To == to && m.edgeCompatible(e, like) {
			return true
		}
	}
	return false
}

func reverseLookup(assign map[string]string, image string) (string, bool) {
	for k, v := range assign {
		if v == image {
			return k, true
		}
	}
	return "", false
}
