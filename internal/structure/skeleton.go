package structure

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dl"
)

// Erasure controls how much labeling a skeleton retains. The paper's diagram
// (6) keeps role labels and erases only the concept names; its diagram (7)
// erases everything and keeps the bare shape. Both readings of "structural
// meaning" are implemented so the collision experiments can compare them.
type Erasure int

// Erasure levels, from most to least information retained.
const (
	// EraseNothing keeps atomic concept names and role labels: two
	// definitions collide only if they are literally the same description
	// tree up to reordering of conjuncts.
	EraseNothing Erasure = iota
	// EraseConcepts erases atomic concept names but keeps role labels and
	// cardinalities — the reading of diagram (6) as pure structure over
	// named roles.
	EraseConcepts
	// EraseAll erases concept names, role labels and cardinalities, leaving
	// only the branching shape — the paper's diagram (7).
	EraseAll
)

// String names the erasure level.
func (e Erasure) String() string {
	switch e {
	case EraseNothing:
		return "erase-nothing"
	case EraseConcepts:
		return "erase-concepts"
	case EraseAll:
		return "erase-all"
	default:
		return fmt.Sprintf("Erasure(%d)", int(e))
	}
}

// Skeleton is the canonical string form of a definition's structure under a
// given erasure. Two definitions have equal Skeletons iff their unfolded
// description trees are isomorphic after the erasure — the executable
// rendering of the paper's claim that the structural meaning of "car" *is*
// diagram (7).
type Skeleton string

// SkeletonOf computes the skeleton of a single conjunctive concept. The
// concept must already be unfolded as far as the caller wants; use
// SkeletonOfDefinition for TBox-level unfolding.
func SkeletonOf(c *dl.Concept, e Erasure) (Skeleton, error) {
	tree, err := dl.DescriptionTree(c)
	if err != nil {
		return "", err
	}
	return Skeleton(canonicalTree(tree, e)), nil
}

// SkeletonOfDefinition unfolds the named definition in the TBox to maxDepth
// and computes its skeleton. A maxDepth of 0 uses the definition body as
// written; larger depths replace defined names by their definitions, which is
// how the paper proposes (and then doubts) that colliding structures can be
// told apart.
func SkeletonOfDefinition(t *dl.TBox, name string, maxDepth int, e Erasure) (Skeleton, error) {
	d, ok := t.Definition(name)
	if !ok {
		return "", fmt.Errorf("structure: %q is not defined in the TBox", name)
	}
	return SkeletonOf(t.Unfold(d.Concept, maxDepth), e)
}

// canonicalTree computes a canonical string for a description tree under an
// erasure, using the classic AHU bottom-up encoding: a node's code is built
// from its (erased) label and the multiset of its children's codes.
func canonicalTree(n *dl.DescriptionNode, e Erasure) string {
	var label string
	switch e {
	case EraseNothing, EraseConcepts:
		if e == EraseNothing {
			atoms := append([]string(nil), n.Atoms...)
			sort.Strings(atoms)
			label = strings.Join(atoms, ",")
		} else {
			label = fmt.Sprintf("#%d", len(n.Atoms))
		}
	case EraseAll:
		label = "·"
	}
	children := make([]string, 0, len(n.Edges))
	for _, edge := range n.Edges {
		child := canonicalTree(edge.Child, e)
		switch e {
		case EraseNothing, EraseConcepts:
			children = append(children, fmt.Sprintf("%s(%d)%s", edge.Role, edge.Min, child))
		case EraseAll:
			children = append(children, child)
		}
	}
	sort.Strings(children)
	return "[" + label + "|" + strings.Join(children, ";") + "]"
}

// TreeSize returns the number of nodes in the description tree of a
// conjunctive concept, a size measure used by the differentiation experiment.
func TreeSize(c *dl.Concept) (int, error) {
	tree, err := dl.DescriptionTree(c)
	if err != nil {
		return 0, err
	}
	return tree.Size(), nil
}

// Skeletons computes the skeleton of every defined name of a TBox at the
// given unfolding depth and erasure. Names whose definitions fall outside the
// conjunctive fragment are reported in the skipped list rather than causing
// the whole computation to fail.
func Skeletons(t *dl.TBox, maxDepth int, e Erasure) (map[string]Skeleton, []string) {
	out := make(map[string]Skeleton, len(t.DefinedNames()))
	var skipped []string
	for _, name := range t.DefinedNames() {
		sk, err := SkeletonOfDefinition(t, name, maxDepth, e)
		if err != nil {
			skipped = append(skipped, name)
			continue
		}
		out[name] = sk
	}
	sort.Strings(skipped)
	return out, skipped
}
