package structure

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dl"
)

// CollisionGroup is a set of defined names whose definitions share the same
// skeleton: by the structural theory of meaning the paper examines in §3,
// these names would all have to denote the same concept.
type CollisionGroup struct {
	Skeleton Skeleton
	Names    []string
}

// CollisionReport summarizes how many structural-meaning collisions a TBox
// contains at a given unfolding depth and erasure level.
type CollisionReport struct {
	Depth   int
	Erasure Erasure
	// Groups lists every skeleton shared by two or more defined names,
	// largest group first.
	Groups []CollisionGroup
	// Defined is the number of definitions examined and Skipped the names
	// whose bodies fall outside the conjunctive fragment.
	Defined int
	Skipped []string
	// DistinctSkeletons is the number of distinct skeletons among the
	// examined definitions.
	DistinctSkeletons int
	// CollidingPairs is the number of unordered pairs of distinct names that
	// share a skeleton.
	CollidingPairs int
	// TotalPairs is the number of unordered pairs of examined names.
	TotalPairs int
}

// CollisionRate is the fraction of definition pairs that collide: the
// probability that two distinct intended concepts are assigned the same
// structural meaning. The paper's CAR/DOG example is the claim that this is
// not zero; experiment E2 measures how it varies with definition size.
func (r CollisionReport) CollisionRate() float64 {
	if r.TotalPairs == 0 {
		return 0
	}
	return float64(r.CollidingPairs) / float64(r.TotalPairs)
}

// Describe renders the report for human consumption.
func (r CollisionReport) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "collisions at depth %d, %s: %d/%d pairs collide (%.3f), %d distinct skeletons over %d definitions\n",
		r.Depth, r.Erasure, r.CollidingPairs, r.TotalPairs, r.CollisionRate(), r.DistinctSkeletons, r.Defined)
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "  {%s}\n", strings.Join(g.Names, ", "))
	}
	if len(r.Skipped) > 0 {
		fmt.Fprintf(&b, "  skipped (non-conjunctive): %s\n", strings.Join(r.Skipped, ", "))
	}
	return b.String()
}

// Collisions computes the collision report of a TBox at the given unfolding
// depth and erasure.
func Collisions(t *dl.TBox, maxDepth int, e Erasure) CollisionReport {
	skeletons, skipped := Skeletons(t, maxDepth, e)
	byskeleton := map[Skeleton][]string{}
	for name, sk := range skeletons {
		//ontolint:ignore maporder every group is sorted (sort.Strings(names)) before use and Groups itself is re-sorted below
		byskeleton[sk] = append(byskeleton[sk], name)
	}
	report := CollisionReport{
		Depth:             maxDepth,
		Erasure:           e,
		Defined:           len(skeletons),
		Skipped:           skipped,
		DistinctSkeletons: len(byskeleton),
	}
	n := len(skeletons)
	report.TotalPairs = n * (n - 1) / 2
	for sk, names := range byskeleton {
		if len(names) < 2 {
			continue
		}
		sort.Strings(names)
		report.Groups = append(report.Groups, CollisionGroup{Skeleton: sk, Names: names})
		report.CollidingPairs += len(names) * (len(names) - 1) / 2
	}
	sort.Slice(report.Groups, func(i, j int) bool {
		if len(report.Groups[i].Names) != len(report.Groups[j].Names) {
			return len(report.Groups[i].Names) > len(report.Groups[j].Names)
		}
		return report.Groups[i].Names[0] < report.Groups[j].Names[0]
	})
	return report
}

// DifferentiationPoint is one row of the differentiation analysis: at a given
// unfolding depth, how many collisions remain.
type DifferentiationPoint struct {
	Depth             int
	CollidingPairs    int
	CollisionRate     float64
	DistinctSkeletons int
	// MeanTreeSize is the mean description-tree size of the unfolded
	// definitions at this depth: the cost, in structure, of the
	// differentiation achieved so far.
	MeanTreeSize float64
}

// DifferentiationCurve answers the paper's "when can we stop?" question
// empirically for one TBox: it unfolds every definition to depths 0..maxDepth
// and records, per depth, how many structural collisions remain and how large
// the unfolded definitions have grown. The paper predicts that the curve never
// reaches zero without dragging in "the trace of all the other signs of the
// language" — i.e. that collisions only vanish when the unfolded structures
// have absorbed essentially the whole TBox.
func DifferentiationCurve(t *dl.TBox, maxDepth int, e Erasure) []DifferentiationPoint {
	points := make([]DifferentiationPoint, 0, maxDepth+1)
	for depth := 0; depth <= maxDepth; depth++ {
		rep := Collisions(t, depth, e)
		var total, count int
		for _, name := range t.DefinedNames() {
			d, ok := t.Definition(name)
			if !ok {
				continue
			}
			c := t.Unfold(d.Concept, depth)
			if !c.IsConjunctive() {
				continue
			}
			if size, err := TreeSize(c); err == nil {
				total += size
				count++
			}
		}
		mean := 0.0
		if count > 0 {
			mean = float64(total) / float64(count)
		}
		points = append(points, DifferentiationPoint{
			Depth:             depth,
			CollidingPairs:    rep.CollidingPairs,
			CollisionRate:     rep.CollisionRate(),
			DistinctSkeletons: rep.DistinctSkeletons,
			MeanTreeSize:      mean,
		})
	}
	return points
}

// Separates reports whether unfolding to the given depth is enough to give the
// two named definitions different skeletons under the erasure. It returns
// false both when the skeletons coincide and when either name is undefined or
// non-conjunctive; the ok result distinguishes the two cases.
func Separates(t *dl.TBox, a, b string, maxDepth int, e Erasure) (separated, ok bool) {
	sa, errA := SkeletonOfDefinition(t, a, maxDepth, e)
	sb, errB := SkeletonOfDefinition(t, b, maxDepth, e)
	if errA != nil || errB != nil {
		return false, false
	}
	return sa != sb, true
}
