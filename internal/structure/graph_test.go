package structure

import (
	"strings"
	"testing"

	"repro/internal/dl"
)

func TestFromTBoxVehicles(t *testing.T) {
	g, err := FromTBox(vehiclesTBox(t))
	if err != nil {
		t.Fatalf("FromTBox: %v", err)
	}
	for _, name := range []string{"car", "pickup", "motorvehicle", "roadvehicle"} {
		n, ok := g.Node(name)
		if !ok {
			t.Fatalf("node %q missing", name)
		}
		if n.Kind != NodeDefined {
			t.Errorf("node %q kind = %v, want defined", name, n.Kind)
		}
	}
	for _, name := range []string{"small", "big", "gasoline", "wheels"} {
		n, ok := g.Node(name)
		if !ok {
			t.Fatalf("primitive node %q missing", name)
		}
		if n.Kind != NodePrimitive {
			t.Errorf("node %q kind = %v, want primitive", name, n.Kind)
		}
	}
	// car has three outgoing edges: two ⊑ edges to motorvehicle and
	// roadvehicle and one "size" edge to a restriction node.
	out := g.Out("car")
	if len(out) != 3 {
		t.Fatalf("car out-degree = %d, want 3", len(out))
	}
	roles := map[string]int{}
	for _, e := range out {
		roles[e.Role]++
	}
	if roles["⊑"] != 2 || roles["size"] != 1 {
		t.Errorf("car out edges by role = %v, want 2 ⊑ and 1 size", roles)
	}
	// roadvehicle carries the ∃4has.wheels restriction with Min 4.
	var found bool
	for _, e := range g.Out("roadvehicle") {
		if e.Role == "has" {
			found = true
			if e.Min != 4 {
				t.Errorf("has edge Min = %d, want 4", e.Min)
			}
		}
	}
	if !found {
		t.Error("roadvehicle has no `has` edge")
	}
}

func TestFromTBoxRejectsNonConjunctive(t *testing.T) {
	tb := dl.NewTBox()
	tb.MustDefine("odd", dl.Equivalent, dl.Or(dl.Atomic("a"), dl.Atomic("b")))
	if _, err := FromTBox(tb); err == nil {
		t.Fatal("FromTBox accepted a disjunctive definition")
	}
}

func TestGraphAddEdgeValidation(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{ID: "a", Kind: NodePrimitive})
	if err := g.AddEdge(Edge{From: "a", To: "missing", Role: "r"}); err == nil {
		t.Error("AddEdge accepted a missing target")
	}
	if err := g.AddEdge(Edge{From: "missing", To: "a", Role: "r"}); err == nil {
		t.Error("AddEdge accepted a missing source")
	}
	g.AddNode(Node{ID: "b", Kind: NodePrimitive})
	if err := g.AddEdge(Edge{From: "a", To: "b", Role: "r"}); err != nil {
		t.Errorf("AddEdge rejected a valid edge: %v", err)
	}
	if got := g.Out("a"); len(got) != 1 || got[0].Min != 1 {
		t.Errorf("Out(a) = %v, want one edge with Min defaulted to 1", got)
	}
}

func TestGraphStringDeterministic(t *testing.T) {
	g1, err := FromTBox(combinedTBox(t))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := FromTBox(combinedTBox(t))
	if err != nil {
		t.Fatal(err)
	}
	if g1.String() != g2.String() {
		t.Error("Graph.String is not deterministic across identical builds")
	}
	if !strings.Contains(g1.String(), "-has(4)->") {
		t.Errorf("rendering lacks the cardinality-annotated edge:\n%s", g1.String())
	}
}

func TestGraphNodeAtomsSortedAndDeduped(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{ID: "x", Kind: NodeDefined, Atoms: []string{"b", "a", "b"}})
	n, _ := g.Node("x")
	if len(n.Atoms) != 2 || n.Atoms[0] != "a" || n.Atoms[1] != "b" {
		t.Errorf("Atoms = %v, want [a b]", n.Atoms)
	}
}

func TestGraphInOutCounts(t *testing.T) {
	g, err := FromTBox(vehiclesTBox(t))
	if err != nil {
		t.Fatal(err)
	}
	// motorvehicle is referenced by car and pickup: in-degree 2.
	if got := len(g.In("motorvehicle")); got != 2 {
		t.Errorf("in-degree of motorvehicle = %d, want 2", got)
	}
	if g.NodeCount() == 0 || g.EdgeCount() == 0 {
		t.Fatal("empty graph from a non-empty TBox")
	}
	if got, want := len(g.Nodes()), g.NodeCount(); got != want {
		t.Errorf("Nodes() length %d != NodeCount %d", got, want)
	}
}
