// Package structure implements the "structural meaning" machinery of the
// paper's §3: definition graphs extracted from description-logic TBoxes,
// anonymous skeletons (the paper's diagram (7), in which concept names and
// role labels are erased and only the shape of the definition remains),
// canonical forms, isomorphism testing, and the two analyses the paper builds
// on them:
//
//   - collision analysis: how often do definitions of *different* intended
//     concepts have the *same* structural meaning (the CAR ≅ DOG example of
//     eqs. (4)–(8));
//   - differentiation analysis: the paper's "when can we stop [adding
//     predicates]?" question — how many collisions survive as the unfolding
//     depth and the amount of structure grow.
//
// The package works on the conjunctive fragment of package dl (the fragment in
// which all of the paper's examples are written); concepts outside it are
// reported, not silently mangled.
package structure

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dl"
)

// NodeKind classifies nodes of a definition graph.
type NodeKind int

// Node kinds.
const (
	// NodeDefined is a concept name defined in the TBox.
	NodeDefined NodeKind = iota
	// NodePrimitive is an atomic concept name with no definition.
	NodePrimitive
	// NodeRestriction is an anonymous node introduced by a role restriction
	// (the filler of ∃r.C or ≥n r.C).
	NodeRestriction
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case NodeDefined:
		return "defined"
	case NodePrimitive:
		return "primitive"
	case NodeRestriction:
		return "restriction"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a node of a definition graph.
type Node struct {
	// ID is unique within the graph.
	ID string
	// Kind classifies the node.
	Kind NodeKind
	// Atoms are the atomic concept names attached to the node (conjuncts that
	// are plain atomic concepts). Sorted, deduplicated.
	Atoms []string
}

// Edge is a directed, labeled edge of a definition graph.
type Edge struct {
	From, To string
	// Role is the role label of a restriction edge, or "⊑"/"≡" for the edge
	// from a defined name to the body of its definition.
	Role string
	// Min is the minimum cardinality of the restriction (1 for a plain ∃).
	Min int
}

// Graph is a directed labeled multigraph representing the definitional
// structure of a TBox or of a single unfolded definition. It is the object the
// paper draws in its diagrams (6) and (7).
//
// Graph is not safe for concurrent mutation.
type Graph struct {
	nodes map[string]*Node
	order []string
	edges []Edge
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{nodes: map[string]*Node{}}
}

// AddNode inserts a node, replacing any node with the same id.
func (g *Graph) AddNode(n Node) {
	atoms := append([]string(nil), n.Atoms...)
	sort.Strings(atoms)
	atoms = dedupe(atoms)
	if _, ok := g.nodes[n.ID]; !ok {
		g.order = append(g.order, n.ID)
	}
	g.nodes[n.ID] = &Node{ID: n.ID, Kind: n.Kind, Atoms: atoms}
}

// AddEdge inserts a directed labeled edge. Both endpoints must exist.
func (g *Graph) AddEdge(e Edge) error {
	if _, ok := g.nodes[e.From]; !ok {
		return fmt.Errorf("structure: edge source %q is not a node", e.From)
	}
	if _, ok := g.nodes[e.To]; !ok {
		return fmt.Errorf("structure: edge target %q is not a node", e.To)
	}
	if e.Min <= 0 {
		e.Min = 1
	}
	g.edges = append(g.edges, e)
	return nil
}

// Node returns the node with the given id.
func (g *Graph) Node(id string) (Node, bool) {
	n, ok := g.nodes[id]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// Nodes returns the node ids in insertion order.
func (g *Graph) Nodes() []string {
	return append([]string(nil), g.order...)
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	return append([]Edge(nil), g.edges...)
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return len(g.edges) }

// Out returns the edges leaving the node, in insertion order.
func (g *Graph) Out(id string) []Edge {
	var out []Edge
	for _, e := range g.edges {
		if e.From == id {
			out = append(out, e)
		}
	}
	return out
}

// In returns the edges entering the node, in insertion order.
func (g *Graph) In(id string) []Edge {
	var in []Edge
	for _, e := range g.edges {
		if e.To == id {
			in = append(in, e)
		}
	}
	return in
}

// String renders the graph in a compact adjacency form, deterministically.
func (g *Graph) String() string {
	var b strings.Builder
	ids := append([]string(nil), g.order...)
	sort.Strings(ids)
	for _, id := range ids {
		n := g.nodes[id]
		fmt.Fprintf(&b, "%s [%s", id, n.Kind)
		if len(n.Atoms) > 0 {
			fmt.Fprintf(&b, " %s", strings.Join(n.Atoms, ","))
		}
		b.WriteString("]\n")
		out := g.Out(id)
		sort.Slice(out, func(i, j int) bool {
			if out[i].Role != out[j].Role {
				return out[i].Role < out[j].Role
			}
			return out[i].To < out[j].To
		})
		for _, e := range out {
			if e.Min > 1 {
				fmt.Fprintf(&b, "  -%s(%d)-> %s\n", e.Role, e.Min, e.To)
			} else {
				fmt.Fprintf(&b, "  -%s-> %s\n", e.Role, e.To)
			}
		}
	}
	return b.String()
}

// FromTBox builds the definition graph of a whole TBox: one node per defined
// or primitive concept name, one anonymous node per role restriction occurring
// in a definition body, a "≡" or "⊑" edge from each defined name to the
// conjunction of its body, and a role-labeled edge for every restriction. This
// is the graph the paper draws as diagram (6) for the vehicle ontonomy of
// eq. (4).
//
// Only conjunctive definition bodies are supported; a body outside the
// conjunctive fragment yields an error naming the offending definition.
func FromTBox(t *dl.TBox) (*Graph, error) {
	g := NewGraph()
	// Declare a node for every name mentioned anywhere, so primitive names
	// referenced only inside bodies still appear.
	for _, name := range t.DefinedNames() {
		g.AddNode(Node{ID: name, Kind: NodeDefined})
	}
	for _, name := range t.PrimitiveNames() {
		if _, ok := g.nodes[name]; !ok {
			g.AddNode(Node{ID: name, Kind: NodePrimitive, Atoms: []string{name}})
		}
	}
	fresh := 0
	for _, def := range t.Definitions() {
		label := "≡"
		if def.Kind == dl.SubsumedBy {
			label = "⊑"
		}
		if !def.Concept.IsConjunctive() {
			return nil, fmt.Errorf("structure: definition of %s is outside the conjunctive fragment", def.Name)
		}
		if err := addBody(g, def.Name, label, def.Concept, &fresh); err != nil {
			return nil, fmt.Errorf("structure: definition of %s: %w", def.Name, err)
		}
	}
	return g, nil
}

// addBody attaches the conjuncts of body to the node from: atomic conjuncts
// that are graph nodes become label edges; restrictions become fresh
// restriction nodes with role edges.
func addBody(g *Graph, from, label string, body *dl.Concept, fresh *int) error {
	for _, conj := range body.Conjuncts() {
		switch conj.Op {
		case dl.OpTop:
			// ⊤ contributes nothing.
		case dl.OpAtomic:
			if _, ok := g.nodes[conj.Name]; !ok {
				// A primitive node carries its own name as its label, so
				// label-preserving isomorphism can distinguish "gasoline"
				// from "food" even though both are structurally just leaves.
				g.AddNode(Node{ID: conj.Name, Kind: NodePrimitive, Atoms: []string{conj.Name}})
			}
			if err := g.AddEdge(Edge{From: from, To: conj.Name, Role: label}); err != nil {
				return err
			}
		case dl.OpExists, dl.OpAtLeast:
			*fresh++
			id := fmt.Sprintf("_r%d", *fresh)
			g.AddNode(Node{ID: id, Kind: NodeRestriction})
			min := 1
			if conj.Op == dl.OpAtLeast {
				min = conj.N
			}
			if err := g.AddEdge(Edge{From: from, To: id, Role: conj.Role, Min: min}); err != nil {
				return err
			}
			if err := addBody(g, id, label, conj.Args[0], fresh); err != nil {
				return err
			}
		default:
			return dl.ErrNotConjunctive
		}
	}
	return nil
}

// Reachable returns the subgraph induced by the nodes reachable from root by
// following edges forward, including root itself. It is the "definition of one
// concept" view of a TBox graph: the paper's diagram (6) is exactly the
// subgraph of the vehicle ontonomy reachable from the car node. An unknown
// root yields an empty graph.
func (g *Graph) Reachable(root string) *Graph {
	sub := NewGraph()
	if _, ok := g.nodes[root]; !ok {
		return sub
	}
	visited := map[string]bool{root: true}
	queue := []string{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		sub.AddNode(*g.nodes[cur])
		for _, e := range g.Out(cur) {
			if !visited[e.To] {
				visited[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	for _, e := range g.edges {
		if visited[e.From] && visited[e.To] {
			// Endpoints may have been enqueued after the edge's source was
			// dequeued; ensure both nodes exist before adding.
			if _, ok := sub.nodes[e.From]; !ok {
				sub.AddNode(*g.nodes[e.From])
			}
			if _, ok := sub.nodes[e.To]; !ok {
				sub.AddNode(*g.nodes[e.To])
			}
			if err := sub.AddEdge(e); err != nil {
				// Unreachable: both endpoints were just ensured.
				panic(err)
			}
		}
	}
	return sub
}

// dedupe removes adjacent duplicates from a sorted slice.
func dedupe(s []string) []string {
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
