package structure

import (
	"testing"

	"repro/internal/dl"
)

// vehiclesTBox builds the paper's eq. (4): the car/pickup ontonomy.
func vehiclesTBox(t *testing.T) *dl.TBox {
	t.Helper()
	tb := dl.NewTBox()
	tb.MustDefine("car", dl.SubsumedBy, dl.And(
		dl.Atomic("motorvehicle"), dl.Atomic("roadvehicle"),
		dl.Exists("size", dl.Atomic("small")),
	))
	tb.MustDefine("pickup", dl.SubsumedBy, dl.And(
		dl.Atomic("motorvehicle"), dl.Atomic("roadvehicle"),
		dl.Exists("size", dl.Atomic("big")),
	))
	tb.MustDefine("motorvehicle", dl.SubsumedBy, dl.Exists("uses", dl.Atomic("gasoline")))
	tb.MustDefine("roadvehicle", dl.SubsumedBy, dl.AtLeast(4, "has", dl.Atomic("wheels")))
	return tb
}

// animalsTBox builds the paper's eq. (8): the dog/horse ontonomy, isomorphic
// to eq. (4).
func animalsTBox(t *testing.T) *dl.TBox {
	t.Helper()
	tb := dl.NewTBox()
	tb.MustDefine("dog", dl.SubsumedBy, dl.And(
		dl.Atomic("animal"), dl.Atomic("quadruped"),
		dl.Exists("size", dl.Atomic("small")),
	))
	tb.MustDefine("horse", dl.SubsumedBy, dl.And(
		dl.Atomic("animal"), dl.Atomic("quadruped"),
		dl.Exists("size", dl.Atomic("big")),
	))
	tb.MustDefine("animal", dl.SubsumedBy, dl.Exists("ingests", dl.Atomic("food")))
	tb.MustDefine("quadruped", dl.SubsumedBy, dl.AtLeast(4, "has", dl.Atomic("leg")))
	return tb
}

// revisedAnimalsTBox builds the paper's eqs. (9)–(11): quadruped ⊑ animal and
// the dog/horse definitions rewritten so that the animal conjunct is implied
// rather than stated — the paper's attempted repair of the CAR ≅ DOG
// collision.
func revisedAnimalsTBox(t *testing.T) *dl.TBox {
	t.Helper()
	tb := dl.NewTBox()
	tb.MustDefine("dog", dl.SubsumedBy, dl.And(
		dl.Atomic("quadruped"), dl.Exists("size", dl.Atomic("small")),
	))
	tb.MustDefine("horse", dl.SubsumedBy, dl.And(
		dl.Atomic("quadruped"), dl.Exists("size", dl.Atomic("big")),
	))
	tb.MustDefine("animal", dl.SubsumedBy, dl.Exists("ingests", dl.Atomic("food")))
	tb.MustDefine("quadruped", dl.SubsumedBy, dl.And(
		dl.Atomic("animal"), dl.AtLeast(4, "has", dl.Atomic("leg")),
	))
	return tb
}

// combinedTBox merges the vehicle and animal ontonomies into one TBox so that
// cross-domain collisions (CAR vs DOG) are visible to the collision analysis.
func combinedTBox(t *testing.T) *dl.TBox {
	t.Helper()
	tb := dl.NewTBox()
	for _, src := range []*dl.TBox{vehiclesTBox(t), animalsTBox(t)} {
		for _, d := range src.Definitions() {
			if err := tb.Define(d.Name, d.Kind, d.Concept); err != nil {
				t.Fatalf("combine: %v", err)
			}
		}
	}
	return tb
}
