package structure

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dl"
)

func TestSkeletonCarDogCollision(t *testing.T) {
	tb := combinedTBox(t)
	// At depth 0 (definitions as written), CAR and DOG collide once concept
	// names are erased — the paper's central example.
	for _, e := range []Erasure{EraseConcepts, EraseAll} {
		car, err := SkeletonOfDefinition(tb, "car", 0, e)
		if err != nil {
			t.Fatalf("car skeleton: %v", err)
		}
		dog, err := SkeletonOfDefinition(tb, "dog", 0, e)
		if err != nil {
			t.Fatalf("dog skeleton: %v", err)
		}
		if car != dog {
			t.Errorf("erasure %v: car and dog skeletons differ at depth 0; the paper's collision should hold\ncar: %s\ndog: %s", e, car, dog)
		}
	}
	// With names retained the two definitions are of course distinct.
	car, _ := SkeletonOfDefinition(tb, "car", 0, EraseNothing)
	dog, _ := SkeletonOfDefinition(tb, "dog", 0, EraseNothing)
	if car == dog {
		t.Error("EraseNothing: car and dog skeletons coincide; atom names should distinguish them")
	}
}

func TestSkeletonUnfoldingSeparatesUnderRoles(t *testing.T) {
	tb := combinedTBox(t)
	// Unfolding one level exposes the role names (uses vs ingests), which
	// separate the definitions when roles are kept…
	sep, ok := Separates(tb, "car", "dog", 2, EraseConcepts)
	if !ok {
		t.Fatal("Separates reported not-ok for defined conjunctive names")
	}
	if !sep {
		t.Error("depth-2 unfolding with role labels kept should separate car from dog")
	}
	// …but not when the shape alone is considered: eq. (4) and eq. (8) are
	// isomorphic at every depth, which is exactly the paper's point.
	sep, ok = Separates(tb, "car", "dog", 4, EraseAll)
	if !ok {
		t.Fatal("Separates reported not-ok")
	}
	if sep {
		t.Error("shape-only skeletons of car and dog should remain identical at depth 4")
	}
}

func TestSkeletonRevisedAnimalsSeparates(t *testing.T) {
	// The paper's repair (eqs. 9–11) moves the animal conjunct out of the dog
	// definition and into quadruped ⊑ animal. Compared with eq. (4)'s car,
	// the repaired dog now has a different amount of structure at its root,
	// so the definitions separate without relying on concept names.
	tb := dl.NewTBox()
	for _, src := range []*dl.TBox{vehiclesTBox(t), revisedAnimalsTBox(t)} {
		for _, d := range src.Definitions() {
			if err := tb.Define(d.Name, d.Kind, d.Concept); err != nil {
				t.Fatal(err)
			}
		}
	}
	sep, ok := Separates(tb, "car", "dog", 0, EraseConcepts)
	if !ok {
		t.Fatal("Separates reported not-ok")
	}
	if !sep {
		t.Error("after the eq. (9)–(11) revision, car and dog should separate at depth 0 with concept names erased")
	}
	// Before the revision the same comparison collides (TestSkeletonCarDogCollision),
	// which is the paper's starting point. The bare shape of diagram (7),
	// however, still cannot tell them apart, because description trees
	// flatten the extra conjunct into the root: that residual collision is
	// what the graph-level isomorphism test resolves (see isomorphism_test.go).
	sep, _ = Separates(tb, "car", "dog", 3, EraseAll)
	if sep {
		t.Error("shape-only (EraseAll) skeletons should still collide: conjunct flattening hides the revision")
	}
}

func TestSkeletonOfDefinitionUnknownName(t *testing.T) {
	tb := vehiclesTBox(t)
	if _, err := SkeletonOfDefinition(tb, "unicorn", 0, EraseAll); err == nil {
		t.Error("SkeletonOfDefinition accepted an undefined name")
	}
}

func TestSkeletonRejectsNonConjunctive(t *testing.T) {
	if _, err := SkeletonOf(dl.Not(dl.Atomic("a")), EraseAll); err == nil {
		t.Error("SkeletonOf accepted a negation")
	}
}

func TestSkeletonsSkipsNonConjunctive(t *testing.T) {
	tb := dl.NewTBox()
	tb.MustDefine("good", dl.SubsumedBy, dl.Exists("r", dl.Atomic("a")))
	tb.MustDefine("bad", dl.SubsumedBy, dl.Or(dl.Atomic("a"), dl.Atomic("b")))
	sks, skipped := Skeletons(tb, 1, EraseAll)
	if len(sks) != 1 {
		t.Errorf("got %d skeletons, want 1", len(sks))
	}
	if len(skipped) != 1 || skipped[0] != "bad" {
		t.Errorf("skipped = %v, want [bad]", skipped)
	}
}

// TestSkeletonConjunctOrderInvariance is the property test backing the use of
// skeletons as canonical forms: permuting conjuncts never changes the
// skeleton.
func TestSkeletonConjunctOrderInvariance(t *testing.T) {
	atoms := []string{"a", "b", "c", "d", "e"}
	roles := []string{"r", "s", "t"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		conjuncts := randomConjuncts(rng, atoms, roles, 2)
		forward := dl.And(conjuncts...)
		shuffled := append([]*dl.Concept(nil), conjuncts...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		backward := dl.And(shuffled...)
		for _, e := range []Erasure{EraseNothing, EraseConcepts, EraseAll} {
			s1, err1 := SkeletonOf(forward, e)
			s2, err2 := SkeletonOf(backward, e)
			if err1 != nil || err2 != nil {
				return false
			}
			if s1 != s2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSkeletonErasureMonotone checks that coarser erasures never separate what
// finer ones identify: if two concepts share an EraseNothing skeleton they
// also share the coarser skeletons.
func TestSkeletonErasureMonotone(t *testing.T) {
	atoms := []string{"a", "b", "c"}
	roles := []string{"r", "s"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c1 := dl.And(randomConjuncts(rng, atoms, roles, 2)...)
		c2 := dl.And(randomConjuncts(rng, atoms, roles, 2)...)
		fine1, err := SkeletonOf(c1, EraseNothing)
		if err != nil {
			return false
		}
		fine2, err := SkeletonOf(c2, EraseNothing)
		if err != nil {
			return false
		}
		if fine1 != fine2 {
			return true // nothing to check
		}
		for _, e := range []Erasure{EraseConcepts, EraseAll} {
			s1, _ := SkeletonOf(c1, e)
			s2, _ := SkeletonOf(c2, e)
			if s1 != s2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomConjuncts builds a small random conjunctive concept as a conjunct
// slice, recursing at most depth levels through role restrictions.
func randomConjuncts(rng *rand.Rand, atoms, roles []string, depth int) []*dl.Concept {
	n := 1 + rng.Intn(3)
	out := make([]*dl.Concept, 0, n)
	for i := 0; i < n; i++ {
		if depth > 0 && rng.Intn(2) == 0 {
			role := roles[rng.Intn(len(roles))]
			child := dl.And(randomConjuncts(rng, atoms, roles, depth-1)...)
			if rng.Intn(3) == 0 {
				out = append(out, dl.AtLeast(2+rng.Intn(3), role, child))
			} else {
				out = append(out, dl.Exists(role, child))
			}
		} else {
			out = append(out, dl.Atomic(atoms[rng.Intn(len(atoms))]))
		}
	}
	return out
}

func TestTreeSize(t *testing.T) {
	c := dl.And(dl.Atomic("a"), dl.Exists("r", dl.Atomic("b")))
	size, err := TreeSize(c)
	if err != nil {
		t.Fatal(err)
	}
	if size != 2 {
		t.Errorf("TreeSize = %d, want 2 (root plus one restriction child)", size)
	}
	if _, err := TreeSize(dl.Not(dl.Atomic("a"))); err == nil {
		t.Error("TreeSize accepted a non-conjunctive concept")
	}
}
