package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDirFindsBareExports(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "x.go", `package x

// Documented is fine.
type Documented struct{}

type Bare struct{}

func BareFunc() {}

// Group comments cover every name in the block.
const (
	CoveredA = 1
	CoveredB = 2
)

const BareConst = 3

// DocumentedMethod is fine.
func (Documented) DocumentedMethod() {}

func (Documented) BareMethod() {}

type hidden struct{}

// Methods on unexported types are not public surface.
func (hidden) Whatever() {}

func unexported() {}
`)
	// Test files are skipped entirely.
	writeFile(t, dir, "x_test.go", `package x

func TestishBare() {}
`)

	findings, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f[strings.LastIndex(f, "exported "):])
	}
	want := []string{
		"exported type Bare has no doc comment",
		"exported function BareFunc has no doc comment",
		"exported const BareConst has no doc comment",
		"exported method BareMethod has no doc comment",
	}
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing finding %q in %v", w, got)
		}
	}
}

func TestRunExitCodes(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "absent")}); code != 2 {
		t.Fatalf("absent dir: exit %d, want 2", code)
	}
	clean := t.TempDir()
	writeFile(t, clean, "ok.go", "package ok\n\n// Fine is documented.\nfunc Fine() {}\n")
	if code := run([]string{clean}); code != 0 {
		t.Fatalf("clean dir: exit %d, want 0", code)
	}
}
