// Command doccheck enforces the repository's documentation contract: every
// exported identifier in the packages it is pointed at must carry a doc
// comment. CI runs it over the serving stack —
//
//	go run ./internal/tools/doccheck internal/store internal/query internal/query/exec internal/reason internal/server
//
// — and fails the docs job on any bare export. The check is a small go/ast
// walk, not a full linter: a declaration is documented if the declaration
// itself, its spec, or (for grouped const/var/type blocks) the group has a
// comment; test files are skipped; methods count when both the method name
// and the receiver type are exported.
//
// Exit status: 0 when every exported identifier is documented, 1 otherwise
// (one "file:line: …" diagnostic per finding), 2 on usage or parse errors.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run checks every package directory and prints findings to stderr.
func run(dirs []string) int {
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> [<package-dir>...]")
		return 2
	}
	var findings []string
	for _, dir := range dirs {
		fs, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			return 2
		}
		findings = append(findings, fs...)
	}
	if len(findings) == 0 {
		return 0
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", len(findings))
	return 1
}

// checkDir parses one package directory (test files excluded) and returns
// one finding per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", dir, err)
	}
	var findings []string
	for _, pkg := range pkgs {
		for name, file := range pkg.Files {
			findings = append(findings, checkFile(fset, filepath.ToSlash(name), file)...)
		}
	}
	return findings, nil
}

// checkFile walks one file's top-level declarations.
func checkFile(fset *token.FileSet, name string, file *ast.File) []string {
	var findings []string
	report := func(pos token.Pos, kind, ident string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", name, p.Line, kind, ident))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						report(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					// A group comment (d.Doc) covers every const/var in the
					// block; otherwise each exported spec needs its own.
					if d.Doc != nil || sp.Doc != nil || sp.Comment != nil {
						continue
					}
					for _, id := range sp.Names {
						if id.IsExported() {
							report(id.Pos(), kindOf(d.Tok), id.Name)
						}
					}
				}
			}
		}
	}
	return findings
}

// kindOf names a ValueSpec's declaration kind for the diagnostic.
func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// receiverExported reports whether a function's receiver type (if any) is
// exported; methods on unexported types are not part of the public surface.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
