package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments.
//
// A finding can be silenced — with a recorded justification — by an
//
//	//ontolint:ignore <analyzer> <reason>
//
// comment either on the same line as the finding or on the line immediately
// above it. The analyzer name selects which checker is silenced (other
// analyzers still report on that line), and the reason is mandatory: an
// ignore comment without one is itself a finding, so suppressions cannot
// silently accumulate without explanation. An unknown analyzer name is not an
// error — a comment may target a checker that the running driver does not
// load — it simply suppresses nothing.

// ignorePrefix is the directive tag, in the standard "//tool:directive" form
// (no space after //, so gofmt preserves it verbatim).
const ignorePrefix = "ontolint:ignore"

// Suppressions is the parsed set of //ontolint:ignore directives for one
// package, plus a diagnostic for each malformed directive.
type Suppressions struct {
	// byAnalyzer maps analyzer name -> filename -> set of suppressed lines.
	byAnalyzer map[string]map[string]map[int]bool

	// Malformed holds one diagnostic per directive missing its analyzer
	// name or reason. Drivers report these under the name "ontolint".
	Malformed []Diagnostic
}

// ScanSuppressions collects every //ontolint:ignore directive in files.
func ScanSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byAnalyzer: make(map[string]map[string]map[int]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.Malformed = append(s.Malformed, Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed //ontolint:ignore: want \"//ontolint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				name := fields[0]
				byFile := s.byAnalyzer[name]
				if byFile == nil {
					byFile = make(map[string]map[int]bool)
					s.byAnalyzer[name] = byFile
				}
				lines := byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					byFile[pos.Filename] = lines
				}
				// The directive covers its own line (trailing comment)
				// and the next line (comment above the finding).
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic of the named analyzer at pos is
// covered by an ignore directive.
func (s *Suppressions) Suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	byFile := s.byAnalyzer[analyzer]
	if byFile == nil {
		return false
	}
	p := fset.Position(pos)
	return byFile[p.Filename][p.Line]
}
