// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against expectations written in the fixtures themselves, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture package lives in testdata/src/<name>/ next to the analyzer's
// test. Expected findings are trailing comments of the form
//
//	offender() // want "regexp" "second regexp"
//
// where each quoted (or backquoted) Go string is a regular expression that
// must match the message of one diagnostic reported on that line. The test
// fails on any diagnostic with no matching expectation and on any
// expectation with no matching diagnostic, so fixtures pin both the positive
// findings and the clean code of every analyzer.
//
// Fixtures are typechecked from source (the "source" importer), so they may
// import standard-library packages such as sync and sort, but not packages
// of this module. Diagnostics are filtered through the same
// //ontolint:ignore handling as the CI driver, which is what lets fixtures
// assert that suppression comments work.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/tools/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return testdata
}

// expectation is one "want" regexp awaiting a diagnostic on its line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// Run applies the analyzer to each fixture package under testdata/src and
// reports mismatches between its diagnostics and the fixtures' want
// comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPackage(t, filepath.Join(testdata, "src", pkg), pkg, a)
	}
}

// runPackage checks one fixture package directory.
func runPackage(t *testing.T, dir, path string, a *analysis.Analyzer) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Errorf("%s: no fixture files (%v)", dir, err)
		return
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*expectation
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Errorf("parsing fixture: %v", err)
			return
		}
		files = append(files, f)
		ws, err := parseWants(fset, f)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		wants = append(wants, ws...)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tcfg := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := tcfg.Check(path, fset, files, info)
	if err != nil {
		t.Errorf("typechecking fixture %s: %v", dir, err)
		return
	}

	findings, err := analysis.RunPackage(fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Errorf("running %s on %s: %v", a.Name, dir, err)
		return
	}

	matched := make([]bool, len(wants))
	for _, f := range findings {
		pos := fset.Position(f.Pos)
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(f.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", relPos(pos), f.Analyzer, f.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// relPos renders a position with its directory trimmed, for readable test
// failures.
func relPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(pos.Filename), pos.Line, pos.Column)
}

// parseWants extracts every "// want" expectation in the file.
func parseWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(text)
			for rest != "" {
				lit, err := strconv.QuotedPrefix(rest)
				if err != nil {
					return nil, fmt.Errorf("line %d: malformed want comment %q", pos.Line, c.Text)
				}
				pat, err := strconv.Unquote(lit)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", pos.Line, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad want regexp: %v", pos.Line, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				rest = strings.TrimSpace(rest[len(lit):])
			}
		}
	}
	return out, nil
}
