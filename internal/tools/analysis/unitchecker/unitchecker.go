// Package unitchecker implements the driver side of the `go vet -vettool`
// protocol for the analyzers in this repository, on the standard library
// alone.
//
// When go vet is given -vettool=<binary>, it does not hand the binary a
// package pattern; it drives it one compilation unit at a time:
//
//   - <tool> -V=full       must print an identity line ending in a build ID,
//     which cmd/go folds into its action cache keys;
//   - <tool> -flags        must print a JSON description of the tool's flags
//     (this tool has none, so it prints "[]");
//   - <tool> <file>.cfg    analyzes one package: the JSON config file carries
//     the unit's source files, its import map, and the compiler-produced
//     export data of its dependencies.
//
// The tool typechecks the unit with go/types using the export data named in
// the config — the same data the compiler just produced, so no source of any
// dependency is re-parsed — runs every analyzer, and prints findings to
// stderr as "file:line:col: [analyzer] message". Exit status: 0 for a clean
// unit, 2 when there are findings, 1 on operational errors. Any nonzero exit
// fails the enclosing go vet run.
//
// cmd/go also schedules dependency units with VetxOnly set, expecting only
// cross-package facts (the .vetx file) from them. The analyzers in this
// repository are strictly package-local and export no facts, so for those
// units the tool writes the expected (empty) output file and exits without
// parsing anything, which keeps `go vet -vettool=ontolint ./...` cheap even
// though cmd/go visits the whole dependency graph.
package unitchecker

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/tools/analysis"
)

// config mirrors the JSON written by cmd/go for each vet invocation (struct
// vetConfig in cmd/go/internal/work); only the fields this driver consumes
// are listed, unknown fields are ignored by encoding/json.
type config struct {
	ID         string   // package ID, e.g. "repro/internal/store [repro/internal/store.test]"
	Compiler   string   // "gc" or "gccgo"
	Dir        string   // package directory
	ImportPath string   // canonical import path
	GoFiles    []string // absolute paths of the unit's Go sources

	ImportMap   map[string]string // import path as written -> canonical package path
	PackageFile map[string]string // canonical package path -> export data file

	VetxOnly   bool   // facts-only invocation for a dependency; no diagnostics wanted
	VetxOutput string // file the driver must write (facts; empty for this tool)
	GoVersion  string // language version for the unit, e.g. "go1.22"

	SucceedOnTypecheckFailure bool // exit 0 on typecheck errors (go test's vet mode)
}

// Main is the entry point for a vettool binary: it interprets the cmd/go
// protocol arguments and never returns.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		printVersion(progname)
		os.Exit(0)
	case len(args) == 1 && args[0] == "-flags":
		// No tool-specific flags: an empty JSON flag list.
		fmt.Println("[]")
		os.Exit(0)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		code, err := run(args[0], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		os.Exit(code)
	default:
		fmt.Fprintf(os.Stderr, "usage: %s <file.cfg>\n\n", progname)
		fmt.Fprintf(os.Stderr, "%s is a go vet analysis tool; invoke it via\n\n", progname)
		fmt.Fprintf(os.Stderr, "\tgo vet -vettool=$(which %s) ./...\n\nanalyzers:\n", progname)
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(os.Stderr, "\t%-14s %s\n", a.Name, doc)
		}
		os.Exit(1)
	}
}

// printVersion emits the -V=full identity line. cmd/go requires the form
// "<name> version devel ... buildID=<id>" and uses the final field as the
// tool's cache key, so the ID is a hash of the executable itself: rebuild
// the tool (changing any analyzer) and every cached vet result is invalidated.
func printVersion(progname string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = hex.EncodeToString(sum[:16])
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, id)
}

// run analyzes the single compilation unit described by cfgFile, returning
// the process exit code.
func run(cfgFile string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}

	// cmd/go expects the facts file even from units it only wants facts
	// from. These analyzers produce none, so the file is always empty —
	// and for facts-only dependency units that is all the work there is.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	tcfg := types.Config{
		Importer:  newImporter(fset, &cfg),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typechecking %s: %w", cfg.ID, err)
	}

	findings, err := analysis.RunPackage(fset, files, pkg, info, analyzers)
	if err != nil {
		return 0, err
	}
	if len(findings) == 0 {
		return 0, nil
	}
	wd, _ := os.Getwd()
	for _, f := range findings {
		pos := fset.Position(f.Pos)
		name := pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, f.Analyzer, f.Message)
	}
	return 2, nil
}

// newImporter builds the unit's dependency importer: export data files named
// by the config, looked up through the source-path -> canonical-path import
// map. This is importer.ForCompiler's lookup mode, so "unsafe" and friends
// are handled by the toolchain importer itself.
func newImporter(fset *token.FileSet, cfg *config) types.Importer {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &mappedImporter{
		imports: cfg.ImportMap,
		under:   importer.ForCompiler(fset, compiler, lookup).(types.ImporterFrom),
		dir:     cfg.Dir,
	}
}

// mappedImporter rewrites import paths as written in source to the canonical
// package paths the export data is keyed by (vendoring, "test" variants).
type mappedImporter struct {
	imports map[string]string
	under   types.ImporterFrom
	dir     string
}

// Import resolves one import path through the unit's import map.
func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.imports[path]; ok {
		path = mapped
	}
	return m.under.ImportFrom(path, m.dir, 0)
}
