package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parse typechecks one synthetic file.
func parse(t *testing.T, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Defs: make(map[*ast.Ident]types.Object), Uses: make(map[*ast.Ident]types.Object)}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}, pkg, info
}

// flagFuncs reports every function declaration by name — a minimal analyzer
// for exercising the driver.
var flagFuncs = &Analyzer{
	Name: "flagfuncs",
	Doc:  "flag every function",
	Run: func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "function %s", fd.Name.Name)
				}
			}
		}
		return nil, nil
	},
}

func TestSuppressionAndMalformed(t *testing.T) {
	src := `package p

func a() {}

//ontolint:ignore flagfuncs reason recorded here
func b() {}

//ontolint:ignore otherchecker wrong analyzer name does not silence flagfuncs
func c() {}

//ontolint:ignore flagfuncs
func d() {}
`
	fset, files, pkg, info := parse(t, src)
	findings, err := RunPackage(fset, files, pkg, info, []*Analyzer{flagFuncs})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+": "+f.Message)
	}
	want := []string{
		"flagfuncs: function a",
		"flagfuncs: function c", // wrong analyzer name suppresses nothing
		"ontolint: malformed //ontolint:ignore: want \"//ontolint:ignore <analyzer> <reason>\"",
		"flagfuncs: function d", // the malformed directive above it suppresses nothing
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("findings:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func TestSameLineSuppression(t *testing.T) {
	src := `package p

func a() {} //ontolint:ignore flagfuncs trailing directives cover their own line
`
	fset, files, pkg, info := parse(t, src)
	findings, err := RunPackage(fset, files, pkg, info, []*Analyzer{flagFuncs})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("got %d findings, want 0 (trailing suppression)", len(findings))
	}
}
