package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one diagnostic attributed to the analyzer that produced it —
// the unit of output shared by both drivers (unitchecker and analysistest).
type Finding struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// RunPackage applies every analyzer to one type-checked package, filters the
// diagnostics through the package's //ontolint:ignore directives, and returns
// the surviving findings sorted by position. Malformed ignore directives are
// themselves returned as findings under the analyzer name "ontolint".
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	sup := ScanSuppressions(fset, files)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				if sup.Suppressed(fset, a.Name, d.Pos) {
					return
				}
				out = append(out, Finding{Analyzer: a.Name, Pos: d.Pos, Message: d.Message})
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	for _, d := range sup.Malformed {
		out = append(out, Finding{Analyzer: "ontolint", Pos: d.Pos, Message: d.Message})
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
