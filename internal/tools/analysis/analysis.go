// Package analysis is a deliberately small, dependency-free subset of the
// golang.org/x/tools/go/analysis API: enough surface — Analyzer, Pass,
// Diagnostic — for the repository's own vet-style checkers
// (repro/internal/tools/analyzers) to be written in the standard shape,
// without pulling x/tools into a module that is otherwise stdlib-only.
//
// An Analyzer inspects one type-checked package at a time through its Pass
// and reports findings with Pass.Report or Pass.Reportf. There is no fact or
// result plumbing between packages: every checker in this repository is a
// package-local invariant, so the cross-package machinery of the full
// framework is intentionally absent. Analyzers written against this package
// are source-compatible with x/tools for the subset they use, should the
// dependency ever be adopted.
//
// Two drivers execute analyzers: repro/internal/tools/analysis/unitchecker
// implements the `go vet -vettool` protocol for CI, and
// repro/internal/tools/analysis/analysistest runs them over testdata fixture
// packages in unit tests. Both apply the //ontolint:ignore suppression rules
// implemented in this package (see suppress.go) so behavior cannot drift
// between CI and tests.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ontolint:ignore comments. By convention a short lowercase word.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Report and returns an optional result (unused by this
	// repository's drivers) and an error for operational failures —
	// findings are diagnostics, not errors.
	Run func(pass *Pass) (any, error)
}

// A Pass presents one type-checked package to an Analyzer's Run function and
// collects its diagnostics.
type Pass struct {
	// Analyzer is the analyzer being applied.
	Analyzer *Analyzer

	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet

	// Files are the package's parsed syntax trees, with comments.
	Files []*ast.File

	// Pkg is the package's type information.
	Pkg *types.Package

	// TypesInfo holds the type-checker's facts about the expressions and
	// identifiers in Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it; analyzers
	// usually call Reportf instead.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
