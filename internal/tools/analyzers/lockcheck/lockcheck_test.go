package lockcheck_test

import (
	"testing"

	"repro/internal/tools/analysis/analysistest"
	"repro/internal/tools/analyzers/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockcheck.Analyzer, "a", "wal")
}
