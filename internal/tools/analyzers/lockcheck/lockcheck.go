// Package lockcheck verifies the repository's shard-mutex discipline
// (DESIGN.md "Enforced invariants"): every sync.Mutex/RWMutex acquisition is
// released on every path out of the function, no second mutex is acquired
// while one is held, and no exported method of the package is called while a
// lock is held (exported methods take their own locks; calling one from
// under a lock self-deadlocks or double-locks).
//
// The check is path-sensitive and intraprocedural, built on pathwalk: the
// abstract state is the multiset of held locks plus the deferred releases,
// branches fork it, and at every return (and across every loop iteration)
// the state must balance. Releasing a lock the function did not acquire is
// deliberately not a finding — that is the repository's split
// acquire/release helper pattern (store.tripleLocker) — and intentional
// violations carry an //ontolint:ignore lockcheck comment with a reason.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/tools/analysis"
	"repro/internal/tools/analyzers/internal/pathwalk"
)

// Analyzer is the lockcheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "check that mutexes are released on all paths, never nested, and never held across exported calls\n\n" +
		"Lock/RLock must be balanced by Unlock/RUnlock (explicit or deferred) on every path out of the\n" +
		"function and across every loop iteration; acquiring a second mutex while one is held, locking a\n" +
		"held mutex again, and calling an exported same-package method under a lock are reported.",
	Run: run,
}

// heldLock is one acquisition not yet released.
type heldLock struct {
	key   string // canonical receiver expression, e.g. "sh.mu"
	write bool   // Lock/Unlock rather than RLock/RUnlock
	pos   token.Pos
}

// lockState is the abstract state: held locks in acquisition order, plus
// releases scheduled by defer.
type lockState struct {
	held     []heldLock
	deferred []string // key + mode of deferred Unlock/RUnlock calls
}

// sig renders a lock's key+mode for matching against deferred releases.
func (h heldLock) sig() string {
	if h.write {
		return h.key + "/w"
	}
	return h.key + "/r"
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass, reported: make(map[token.Pos]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.checkFunc(n.Body)
				}
			case *ast.FuncLit:
				c.checkFunc(n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checker carries per-package state; reported dedupes diagnostics so a lock
// site is flagged once however many paths reach it.
type checker struct {
	pass     *analysis.Pass
	reported map[token.Pos]bool
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// checkFunc walks one function body. Function literals are checked as
// independent functions (by run's Inspect), starting lock-free: a closure
// invoked under a caller's lock is out of intraprocedural scope.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	pathwalk.Walk(body, lockState{}, pathwalk.Hooks{
		Exec: c.exec,
		Key: func(st pathwalk.State) string {
			s := st.(lockState)
			parts := make([]string, 0, len(s.held)+len(s.deferred)+1)
			for _, h := range s.held {
				parts = append(parts, h.sig())
			}
			parts = append(parts, "|")
			parts = append(parts, s.deferred...)
			return strings.Join(parts, ",")
		},
		Return:      c.atReturn,
		LoopIterEnd: c.loopIterEnd,
	})
}

// exec interprets one atomic node: defer registrations, lock/unlock calls,
// and exported calls made under a lock.
func (c *checker) exec(n ast.Node, st pathwalk.State) pathwalk.State {
	s := clone(st.(lockState))
	if d, ok := n.(*ast.DeferStmt); ok {
		if op, key, ok := c.mutexOp(d.Call); ok && (op == "Unlock" || op == "RUnlock") {
			s.deferred = append(s.deferred, heldLock{key: key, write: op == "Unlock"}.sig())
		}
		return s
	}
	pathwalk.Calls(n, func(call *ast.CallExpr) {
		if op, key, ok := c.mutexOp(call); ok {
			switch op {
			case "Lock", "RLock":
				c.acquire(&s, call, key, op == "Lock")
			case "Unlock", "RUnlock":
				release(&s, key, op == "Unlock")
			}
			return
		}
		if len(s.held) > 0 {
			if name, ok := c.exportedSamePkgMethod(call); ok {
				c.report(call.Pos(), "call to exported method %s while %s is held: exported methods acquire their own locks", name, s.held[len(s.held)-1].key)
			}
		}
	})
	return s
}

// acquire adds a lock to the held set, reporting re-entrant and nested
// acquisitions.
func (c *checker) acquire(s *lockState, call *ast.CallExpr, key string, write bool) {
	for _, h := range s.held {
		if h.key == key {
			c.report(call.Pos(), "%s is acquired while already held (acquired at %s): mutexes in Go are not re-entrant", key, c.pass.Fset.Position(h.pos))
			return
		}
	}
	if len(s.held) > 0 {
		c.report(call.Pos(), "acquiring %s while %s is held: nested mutex acquisition risks deadlock against a writer locking in the opposite order", key, s.held[len(s.held)-1].key)
	}
	s.held = append(s.held, heldLock{key: key, write: write, pos: call.Pos()})
}

// release drops the most recent matching acquisition. A release with no
// matching acquisition is not a finding: the repository's split
// acquire/release helpers (store.tripleLocker.unlock) release locks their
// caller acquired.
func release(s *lockState, key string, write bool) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].key == key && s.held[i].write == write {
			s.held = append(s.held[:i:i], s.held[i+1:]...)
			return
		}
	}
}

// atReturn checks that every held lock has a deferred release at a function
// exit.
func (c *checker) atReturn(st pathwalk.State, _ token.Pos) {
	s := st.(lockState)
	deferred := append([]string(nil), s.deferred...)
held:
	for _, h := range s.held {
		sig := h.sig()
		for i, d := range deferred {
			if d == sig {
				deferred = append(deferred[:i], deferred[i+1:]...)
				continue held
			}
		}
		c.report(h.pos, "%s acquired here is not released on every path out of the function", h.key)
	}
}

// loopIterEnd checks that a loop iteration leaves the lock state exactly as
// it found it; an imbalanced iteration compounds on every pass.
func (c *checker) loopIterEnd(entry, end pathwalk.State, loop ast.Stmt) {
	a, b := entry.(lockState), end.(lockState)
	if stateSig(a) != stateSig(b) {
		c.report(loop.Pos(), "lock state changes across a loop iteration: held %s at loop entry, %s at iteration end", heldNames(a), heldNames(b))
	}
}

func stateSig(s lockState) string {
	parts := make([]string, 0, len(s.held)+len(s.deferred))
	for _, h := range s.held {
		parts = append(parts, h.sig())
	}
	parts = append(parts, s.deferred...)
	return strings.Join(parts, ",")
}

func heldNames(s lockState) string {
	if len(s.held) == 0 {
		return "none"
	}
	names := make([]string, len(s.held))
	for i, h := range s.held {
		names[i] = h.key
	}
	return strings.Join(names, ", ")
}

func clone(s lockState) lockState {
	return lockState{
		held:     append([]heldLock(nil), s.held...),
		deferred: append([]string(nil), s.deferred...),
	}
}

// mutexOp classifies a call as a sync mutex operation, returning the method
// name and the canonical key of the mutex expression. Embedded mutexes
// (s.Lock() on a struct embedding sync.Mutex) key on the embedding value.
func (c *checker) mutexOp(call *ast.CallExpr) (op, key string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	if !isSyncLock(sig.Recv().Type()) {
		return "", "", false
	}
	return name, pathwalk.ExprKey(c.pass.Fset, sel.X), true
}

// isSyncLock reports whether t is sync.Mutex, sync.RWMutex or sync.Locker
// (possibly behind a pointer).
func isSyncLock(t types.Type) bool {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "Locker":
		return true
	}
	return false
}

// exportedSamePkgMethod reports whether the call invokes an exported method
// whose receiver is an exported named type of the package under analysis —
// the class of calls that re-enter the package's public, self-locking
// surface.
func (c *checker) exportedSamePkgMethod(call *ast.CallExpr) (string, bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	fn, isFn := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || !fn.Exported() {
		return "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() != c.pass.Pkg || !obj.Exported() {
		return "", false
	}
	return obj.Name() + "." + fn.Name(), true
}
