// Package wal is the lockcheck fixture for the group-commit mutex
// discipline of repro/internal/durable: one mutex guards the staging
// buffer, a claim flag hands the file to exactly one goroutine, and the
// claim holder drops the mutex around file I/O. The clean functions mirror
// the real writer; the seeded violations are the mistakes the discipline
// forbids, and the suppressed sites pin the two //ontolint:ignore directives
// the real package carries.
package wal

import "sync"

// Writer is the fixture's group-commit log writer, exported so calls to its
// methods exercise the exported-call-under-lock rule.
type Writer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	syncing bool // claim flag: the holder owns the file until it clears it
	buf     []byte
	seq     uint64
	durable uint64
}

// Append stages a record under the lock and never touches the file — the
// appender side of the protocol is syscall-free by construction.
func (w *Writer) Append(p []byte) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, p...)
	w.seq++
	return w.seq
}

// Sync is the clean group-commit wait loop: whichever branch an iteration
// takes — wait for the current claim holder or become it — the lock state
// at iteration end matches loop entry.
func (w *Writer) Sync(target uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.durable < target {
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.syncing = true
		w.drainLocked()
	}
}

// drainLocked is the claim-holder protocol: entered with w.mu held, it
// releases the mutex around the (simulated) file I/O — legal because the
// syncing flag keeps every other goroutine off the file — and reacquires it
// before returning to the caller, who still owns the release. The
// reacquisition is unbalanced within this function by design, exactly like
// the real writer's, so it carries the real suppression.
func (w *Writer) drainLocked() {
	buf := w.buf
	w.buf = nil
	w.mu.Unlock()
	writeFile(buf)
	w.mu.Lock() //ontolint:ignore lockcheck fixture: reacquisition after the unlocked I/O window; the caller entered with the lock held and releases it
	w.syncing = false
	w.durable = w.seq
	w.cond.Broadcast()
}

// checkpointOrdered mirrors Engine.Checkpoint's fixed one-way lock order:
// ck is always taken before w.mu, and w.mu critical sections never take ck.
func (w *Writer) checkpointOrdered(ck *sync.Mutex) uint64 {
	ck.Lock()
	defer ck.Unlock()
	w.mu.Lock() //ontolint:ignore lockcheck fixture: fixed one-way order (checkpoint mutex before writer mutex) cannot deadlock
	seq := w.seq
	w.mu.Unlock()
	return seq
}

// checkpointUnordered takes the two mutexes in the opposite order with no
// documented discipline — the deadlock-prone shape the rule exists for.
func (w *Writer) checkpointUnordered(ck *sync.Mutex) {
	w.mu.Lock()
	ck.Lock() // want "nested mutex acquisition"
	ck.Unlock()
	w.mu.Unlock()
}

// commitLeaky forgets the unlock on the sticky-error early return.
func (w *Writer) commitLeaky(target uint64) bool {
	w.mu.Lock() // want "not released on every path"
	if w.seq < target {
		return false
	}
	w.mu.Unlock()
	return true
}

// syncUnderLock re-enters the writer's public self-locking surface from
// under its own lock.
func (w *Writer) syncUnderLock() {
	w.mu.Lock()
	w.Sync(w.seq) // want "call to exported method Writer.Sync"
	w.mu.Unlock()
}

// pollImbalanced acquires inside the wait loop without releasing, so every
// iteration compounds the imbalance.
func (w *Writer) pollImbalanced(target uint64) {
	for w.durable < target { // want "lock state changes across a loop iteration"
		w.mu.Lock()
	}
}

// writeFile stands in for the file syscalls the claim holder performs with
// the mutex dropped.
func writeFile(p []byte) {
	_ = p
}
