// Package a is the lockcheck fixture: early-return leaks, re-entrant and
// nested acquisitions, exported calls under a lock, loop imbalance, and the
// clean and suppressed forms of each.
package a

import "sync"

// Shard is a lock-guarded cell, exported so method calls on it exercise the
// exported-call-under-lock rule.
type Shard struct {
	mu sync.RWMutex
	n  int
}

// Len is an exported self-locking accessor.
func (s *Shard) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

func leakOnEarlyReturn(s *Shard, bail bool) int {
	s.mu.Lock() // want "not released on every path"
	if bail {
		return 0
	}
	s.mu.Unlock()
	return s.n
}

func balancedDefer(s *Shard) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

func balancedExplicit(s *Shard, bail bool) int {
	s.mu.Lock()
	if bail {
		s.mu.Unlock()
		return 0
	}
	s.mu.Unlock()
	return s.n
}

func reentrant(s *Shard) {
	s.mu.Lock()
	s.mu.Lock() // want "acquired while already held"
	s.mu.Unlock()
	s.mu.Unlock()
}

func nested(a, b *Shard) {
	a.mu.Lock()
	b.mu.Lock() // want "nested mutex acquisition"
	b.mu.Unlock()
	a.mu.Unlock()
}

func nestedSuppressed(a, b *Shard) {
	a.mu.Lock()
	b.mu.Lock() //ontolint:ignore lockcheck fixture: ordered acquisition is deadlock-free
	b.mu.Unlock()
	a.mu.Unlock()
}

func exportedUnderLock(s *Shard, t *Shard) {
	s.mu.Lock()
	_ = t.Len() // want "call to exported method Shard.Len"
	s.mu.Unlock()
}

func exportedAfterUnlock(s *Shard, t *Shard) {
	s.mu.Lock()
	s.mu.Unlock()
	_ = t.Len()
}

func loopImbalance(s *Shard, xs []int) {
	for range xs { // want "lock state changes across a loop iteration"
		s.mu.Lock()
	}
}

func loopBalanced(s *Shard, xs []int) {
	for range xs {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

// sequential lock/unlock of the same mutex is not nesting.
func sequential(s *Shard) {
	s.mu.RLock()
	n := s.n
	s.mu.RUnlock()
	s.mu.Lock()
	s.n = n + 1
	s.mu.Unlock()
}

// unlockHelper releases a lock its caller acquired; the unmatched release
// is deliberately not a finding (split acquire/release helper pattern).
func unlockHelper(s *Shard) {
	s.mu.Unlock()
}

func branches(s *Shard, mode int) {
	s.mu.Lock() // want "not released on every path"
	switch mode {
	case 0:
		s.mu.Unlock()
	case 1:
		s.mu.Unlock()
	}
	// default falls through still holding the lock
}
