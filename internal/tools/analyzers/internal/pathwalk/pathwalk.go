// Package pathwalk is the path-sensitive statement walker shared by the
// lockcheck and poolcheck analyzers. Both enforce obligation disciplines —
// "every Lock is released on every path", "every pooled Get is Put on every
// path" — which a plain syntactic walk cannot check: the interesting bugs
// are precisely the early-return and error paths. pathwalk interprets a
// function body abstractly, forking the client's state at branches, joining
// (with deduplication) where control flow meets, and calling back at every
// function exit and loop-iteration boundary so the client can check that its
// obligations are balanced there.
//
// The engine is deliberately modest: it is intraprocedural, analyzes each
// loop body for a single abstract iteration (requiring the client's state to
// be balanced across it, which is exactly the discipline the analyzers
// enforce), treats goto as abandoning the path, and never descends into
// function literals — clients analyze those as independent function bodies.
// States are treated as immutable values: the client's Exec must
// copy-on-write, never mutate in place, because the engine shares states
// freely between forked branches.
package pathwalk

import (
	"fmt"
	"go/ast"
	"go/token"
)

// maxStates caps the abstract states tracked at any program point. Beyond
// the cap further states are dropped, trading completeness for termination;
// real function bodies in this repository stay in single digits.
const maxStates = 64

// State is the client's abstract state at a program point.
type State any

// Hooks is the client half of the walk.
type Hooks struct {
	// Exec interprets one atomic node — a simple statement, or a
	// condition/initializer expression of a compound one — and returns the
	// successor state. It must not mutate st in place.
	Exec func(n ast.Node, st State) State

	// Key returns a canonical signature of a state; states with equal keys
	// are merged at join points.
	Key func(st State) string

	// Return is called once per path that leaves the function, with the
	// state at the exit and the position of the return (or closing brace).
	Return func(st State, pos token.Pos)

	// LoopIterEnd is called when one abstract iteration of a loop body
	// completes (at the body's end and at each continue), with the states
	// at loop entry and iteration end. Clients report when the signatures
	// differ: an imbalanced iteration compounds its imbalance on every
	// pass.
	LoopIterEnd func(entry, end State, loop ast.Stmt)
}

// frame is one enclosing breakable construct during the walk.
type frame struct {
	node   ast.Stmt
	label  string
	isLoop bool
	entry  State   // loop-entry state of the iteration being walked
	brk    []State // states carried out by break statements
}

type walker struct {
	h      Hooks
	frames []*frame
	label  string // label of a LabeledStmt awaiting its construct
}

// Walk interprets body starting from init.
func Walk(body *ast.BlockStmt, init State, h Hooks) {
	w := &walker{h: h}
	out := w.stmt(body, []State{init})
	for _, st := range out {
		h.Return(st, body.Rbrace)
	}
}

// dedup merges states with identical keys and applies the state cap.
func (w *walker) dedup(states []State) []State {
	if len(states) <= 1 {
		return states
	}
	seen := make(map[string]bool, len(states))
	out := states[:0:0]
	for _, s := range states {
		k := w.h.Key(s)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, s)
		if len(out) >= maxStates {
			break
		}
	}
	return out
}

// exec maps Exec over every state; a nil node is a no-op.
func (w *walker) exec(n ast.Node, states []State) []State {
	if n == nil || isNilNode(n) {
		return states
	}
	out := make([]State, len(states))
	for i, s := range states {
		out[i] = w.h.Exec(n, s)
	}
	return out
}

// isNilNode guards against typed-nil ast.Expr/ast.Stmt interface values
// (e.g. a ForStmt's absent Init arrives as a nil *ast.AssignStmt in an
// ast.Stmt).
func isNilNode(n ast.Node) bool {
	switch v := n.(type) {
	case ast.Expr:
		return v == nil
	case ast.Stmt:
		return v == nil
	}
	return false
}

// stmtList folds the walk over a statement list.
func (w *walker) stmtList(list []ast.Stmt, states []State) []State {
	for _, s := range list {
		states = w.stmt(s, states)
		if len(states) == 0 {
			break
		}
	}
	return states
}

// takeLabel consumes a pending statement label for a frame.
func (w *walker) takeLabel() string {
	l := w.label
	w.label = ""
	return l
}

// push adds a frame; pop removes it.
func (w *walker) push(fr *frame) {
	w.frames = append(w.frames, fr)
}

func (w *walker) pop() {
	w.frames = w.frames[:len(w.frames)-1]
}

// findFrame locates the target of a break (any frame) or continue (loop
// frames only), innermost first, honoring an optional label.
func (w *walker) findFrame(label *ast.Ident, needLoop bool) *frame {
	for i := len(w.frames) - 1; i >= 0; i-- {
		fr := w.frames[i]
		if needLoop && !fr.isLoop {
			continue
		}
		if label != nil && fr.label != label.Name {
			continue
		}
		return fr
	}
	return nil
}

// stmt walks one statement from every state in states, returning the states
// that flow past it.
func (w *walker) stmt(s ast.Stmt, states []State) []State {
	if s == nil || len(states) == 0 {
		return states
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmtList(s.List, states)

	case *ast.IfStmt:
		states = w.exec(s.Init, states)
		states = w.dedup(w.exec(s.Cond, states))
		thenOut := w.stmt(s.Body, states)
		elseOut := states
		if s.Else != nil {
			elseOut = w.stmt(s.Else, states)
		}
		return w.dedup(append(thenOut, elseOut...))

	case *ast.ForStmt:
		pre := w.exec(s.Init, states)
		pre = w.dedup(w.exec(s.Cond, pre))
		fr := &frame{node: s, label: w.takeLabel(), isLoop: true}
		w.push(fr)
		for _, entry := range pre {
			fr.entry = entry
			end := w.stmt(s.Body, []State{entry})
			end = w.exec(s.Post, end)
			for _, e := range end {
				w.h.LoopIterEnd(entry, e, s)
			}
		}
		w.pop()
		var out []State
		if s.Cond != nil {
			// The condition can be false before any iteration, so the
			// pre-loop states flow past; a balanced body means they also
			// stand in for the states after N iterations.
			out = append(out, pre...)
		}
		out = append(out, fr.brk...)
		return w.dedup(out)

	case *ast.RangeStmt:
		pre := w.dedup(w.exec(s.X, states))
		fr := &frame{node: s, label: w.takeLabel(), isLoop: true}
		w.push(fr)
		for _, entry := range pre {
			fr.entry = entry
			end := w.stmt(s.Body, []State{entry})
			for _, e := range end {
				w.h.LoopIterEnd(entry, e, s)
			}
		}
		w.pop()
		out := append(append([]State(nil), pre...), fr.brk...)
		return w.dedup(out)

	case *ast.SwitchStmt:
		pre := w.exec(s.Init, states)
		pre = w.dedup(w.exec(s.Tag, pre))
		return w.cases(s, pre, s.Body.List)

	case *ast.TypeSwitchStmt:
		pre := w.exec(s.Init, states)
		pre = w.dedup(w.exec(s.Assign, pre))
		return w.cases(s, pre, s.Body.List)

	case *ast.SelectStmt:
		// Every select clause (including default) is a body; control never
		// flows past without entering one, so there is no pre passthrough.
		fr := &frame{node: s, label: w.takeLabel()}
		w.push(fr)
		var out []State
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			st := states
			if cc.Comm != nil {
				st = w.stmt(cc.Comm, st)
			}
			out = append(out, w.stmtList(cc.Body, st)...)
		}
		w.pop()
		if len(s.Body.List) == 0 {
			out = states // select{} blocks forever; keep the walk total
		}
		return w.dedup(append(out, fr.brk...))

	case *ast.LabeledStmt:
		w.label = s.Label.Name
		return w.stmt(s.Stmt, states)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if fr := w.findFrame(s.Label, false); fr != nil {
				fr.brk = append(fr.brk, states...)
			}
			return nil
		case token.CONTINUE:
			if fr := w.findFrame(s.Label, true); fr != nil {
				for _, st := range states {
					w.h.LoopIterEnd(fr.entry, st, fr.node)
				}
			}
			return nil
		case token.GOTO:
			return nil // abandon the path; goto is out of scope
		default: // fallthrough: approximated as falling out of the case
			return states
		}

	case *ast.ReturnStmt:
		states = w.exec(s, states)
		for _, st := range states {
			w.h.Return(st, s.Pos())
		}
		return nil

	default:
		// Atomic statements: expression, assignment, declaration, inc/dec,
		// send, defer, go, empty. The client interprets the whole node.
		return w.exec(s, states)
	}
}

// cases walks the clause bodies of a switch or type switch.
func (w *walker) cases(sw ast.Stmt, pre []State, clauses []ast.Stmt) []State {
	fr := &frame{node: sw, label: w.takeLabel()}
	w.push(fr)
	var out []State
	hasDefault := false
	for _, c := range clauses {
		cc := c.(*ast.CaseClause)
		st := pre
		for _, e := range cc.List {
			st = w.exec(e, st)
		}
		if cc.List == nil {
			hasDefault = true
		}
		out = append(out, w.stmtList(cc.Body, st)...)
	}
	w.pop()
	out = append(out, fr.brk...)
	if !hasDefault {
		out = append(out, pre...)
	}
	return w.dedup(out)
}

// Calls invokes fn for every call expression syntactically inside n, in
// source order, without descending into function literals (their bodies are
// separate functions to the analyzers).
func Calls(n ast.Node, fn func(*ast.CallExpr)) {
	if n == nil || isNilNode(n) {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fn(m)
		}
		return true
	})
}

// ExprKey renders an expression as a canonical string key — "sh.mu",
// "s.pos[i].mu" — for matching a Lock to its Unlock or a pool to its Put.
// Expressions outside the renderable subset get a position-unique key, which
// simply means they never match anything else.
func ExprKey(fset *token.FileSet, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprKey(fset, e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + ExprKey(fset, e.X)
	case *ast.ParenExpr:
		return ExprKey(fset, e.X)
	case *ast.IndexExpr:
		return ExprKey(fset, e.X) + "[" + ExprKey(fset, e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	default:
		p := fset.Position(e.Pos())
		return fmt.Sprintf("?@%s:%d:%d", p.Filename, p.Line, p.Column)
	}
}
