package poolcheck_test

import (
	"testing"

	"repro/internal/tools/analysis/analysistest"
	"repro/internal/tools/analyzers/poolcheck"
)

func TestPoolcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), poolcheck.Analyzer, "a")
}
