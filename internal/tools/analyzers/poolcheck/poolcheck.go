// Package poolcheck verifies the buffer-reuse rules of the pooled batch
// operators (DESIGN.md "buffer-reuse rules"): a value taken from a
// sync.Pool must be returned to it — or handed off to something that will —
// on every path out of the function, pools must recycle pointers rather than
// slice headers, and every Get must be type-asserted where it happens.
//
// The leak check is path-sensitive, built on pathwalk: assigning
// `pool.Get().(*T)` to a local creates an obligation; the obligation is
// discharged when the value is passed to a call (Put included), returned,
// stored into a structure, sent, captured by a closure, or aliased —
// positions where ownership leaves the function — and any path reaching a
// return with the obligation still open is a leak. Three syntactic rules
// ride along: Put of a slice-typed value (boxes the header per call, the
// exact mistake the array-pointer pools in internal/query/exec exist to
// avoid), a Get whose result is not type-asserted at the call site, and a
// package-level sync.Pool with Gets but no Put anywhere in the package.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/tools/analysis"
	"repro/internal/tools/analyzers/internal/pathwalk"
)

// Analyzer is the poolcheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: "check sync.Pool discipline: Get balanced by Put on all paths, pointer-shaped pool members, asserted Gets\n\n" +
		"A value obtained from a sync.Pool and kept in a local must be Put back or handed off on every\n" +
		"path out of the function; Put of a slice-typed value and an unasserted Get are reported, as is\n" +
		"a package-level pool that is Get from but never Put to.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass, reported: make(map[token.Pos]bool)}
	for _, f := range pass.Files {
		c.syntactic(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.checkFunc(n.Body)
				}
			case *ast.FuncLit:
				c.checkFunc(n.Body)
			}
			return true
		})
	}
	c.pools()
	return nil, nil
}

type checker struct {
	pass     *analysis.Pass
	reported map[token.Pos]bool

	// Package-level pool accounting for the Get-without-Put rule,
	// accumulated across files by syntactic.
	poolVars  []*types.Var
	poolGets  map[types.Object]int
	poolPuts  map[types.Object]int
	poolDecls map[types.Object]token.Pos
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// obligation is one pooled value whose release this function still owes.
type obligation struct {
	obj  types.Object // the local holding the value
	pool string       // canonical pool expression, for the message
	pos  token.Pos    // the Get call
}

// poolState is the abstract state: open obligations.
type poolState struct {
	obls []obligation
}

// checkFunc runs the path-sensitive leak check over one function body.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	pathwalk.Walk(body, poolState{}, pathwalk.Hooks{
		Exec: c.exec,
		Key: func(st pathwalk.State) string {
			s := st.(poolState)
			keys := make([]string, len(s.obls))
			for i, o := range s.obls {
				keys[i] = o.obj.Name() + "@" + c.pass.Fset.Position(o.pos).String()
			}
			sort.Strings(keys)
			return strings.Join(keys, ",")
		},
		Return: func(st pathwalk.State, _ token.Pos) {
			for _, o := range st.(poolState).obls {
				c.report(o.pos, "value from %s.Get is not returned to the pool (Put) or handed off on every path out of the function", o.pool)
			}
		},
		LoopIterEnd: func(entry, end pathwalk.State, _ ast.Stmt) {
			open := make(map[types.Object]bool)
			for _, o := range entry.(poolState).obls {
				open[o.obj] = true
			}
			for _, o := range end.(poolState).obls {
				if !open[o.obj] {
					c.report(o.pos, "value from %s.Get leaks across a loop iteration: a fresh Get every pass with no Put", o.pool)
				}
			}
		},
	})
}

// exec interprets one atomic node: first discharge obligations whose value
// escapes or is released in it, then open obligations for fresh Gets.
func (c *checker) exec(n ast.Node, st pathwalk.State) pathwalk.State {
	s := poolState{obls: append([]obligation(nil), st.(poolState).obls...)}
	if len(s.obls) > 0 {
		c.scanConsumption(n, &s)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Rhs {
				c.defineObligation(n.Lhs[i], n.Rhs[i], &s)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
					for i := range vs.Values {
						c.defineObligation(vs.Names[i], vs.Values[i], &s)
					}
				}
			}
		}
	}
	return s
}

// defineObligation opens an obligation when a pool Get is assigned to a
// simple local. Gets assigned into fields or used inline transfer ownership
// immediately and are not tracked.
func (c *checker) defineObligation(lhs, rhs ast.Expr, s *poolState) {
	pool, ok := c.poolGetCall(rhs)
	if !ok {
		return
	}
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	discharge(s, obj) // a reassignment replaces the old obligation
	s.obls = append(s.obls, obligation{obj: obj, pool: pool, pos: rhs.Pos()})
}

// scanConsumption discharges every obligation whose local appears in an
// ownership-transferring position in n: as (part of an aliasing) call
// argument, a method receiver, a return operand, an assignment source, a
// composite-literal element, a channel send, or captured by a function
// literal.
func (c *checker) scanConsumption(n ast.Node, s *poolState) {
	mark := func(e ast.Expr) {
		if id, ok := stripAlias(e).(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
				discharge(s, obj)
			}
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			// A closure capturing the local owns its release.
			ast.Inspect(m.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
						discharge(s, obj)
					}
				}
				return true
			})
			return false
		case *ast.CallExpr:
			if !c.isBuiltinLenCap(m) {
				for _, arg := range m.Args {
					mark(arg)
				}
				if sel, ok := m.Fun.(*ast.SelectorExpr); ok {
					mark(sel.X)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				mark(r)
			}
		case *ast.AssignStmt:
			for _, r := range m.Rhs {
				mark(r)
			}
		case *ast.CompositeLit:
			for _, el := range m.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				mark(el)
			}
		case *ast.SendStmt:
			mark(m.Value)
		}
		return true
	})
}

// stripAlias unwraps expression forms that alias the whole underlying
// object: parentheses, address-of, slicing, type assertions. Element reads
// like buf[0] are deliberately not unwrapped — they pass a copy, not the
// buffer.
func stripAlias(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return e
			}
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		default:
			return e
		}
	}
}

// discharge closes the obligation for obj, if open.
func discharge(s *poolState, obj types.Object) {
	for i, o := range s.obls {
		if o.obj == obj {
			s.obls = append(s.obls[:i:i], s.obls[i+1:]...)
			return
		}
	}
}

// isBuiltinLenCap reports whether the call is len or cap, whose arguments
// neither alias nor consume.
func (c *checker) isBuiltinLenCap(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if _, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return false
	}
	return id.Name == "len" || id.Name == "cap"
}

// poolGetCall reports whether e is (possibly behind a type assertion)
// a Get() on a sync.Pool, returning the pool's canonical expression.
func (c *checker) poolGetCall(e ast.Expr) (string, bool) {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		default:
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return "", false
			}
			_, pool, ok := c.poolMethod(call, "Get")
			if !ok || len(call.Args) != 0 {
				return "", false
			}
			return pool, true
		}
	}
}

// poolMethod matches a call of the named method on a sync.Pool receiver.
func (c *checker) poolMethod(call *ast.CallExpr, name string) (*ast.SelectorExpr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, "", false
	}
	t := c.pass.TypesInfo.Types[sel.X].Type
	if t == nil {
		return nil, "", false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return nil, "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || obj.Name() != "Pool" {
		return nil, "", false
	}
	return sel, pathwalk.ExprKey(c.pass.Fset, sel.X), true
}

// syntactic applies the non-path rules to one file: slice-typed Put
// arguments, unasserted Gets, and pool Get/Put accounting.
func (c *checker) syntactic(f *ast.File) {
	if c.poolGets == nil {
		c.poolGets = make(map[types.Object]int)
		c.poolPuts = make(map[types.Object]int)
		c.poolDecls = make(map[types.Object]token.Pos)
	}

	// Record package-level sync.Pool vars.
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				v, ok := c.pass.TypesInfo.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				t := v.Type()
				if p, isPtr := t.(*types.Pointer); isPtr {
					t = p.Elem()
				}
				if n, isNamed := t.(*types.Named); isNamed {
					obj := n.Obj()
					if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool" {
						c.poolVars = append(c.poolVars, v)
						c.poolDecls[v] = name.Pos()
					}
				}
			}
		}
	}

	// Gets appearing as the operand of a type assertion are the asserted
	// (correct) form.
	asserted := make(map[*ast.CallExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if ta, ok := n.(*ast.TypeAssertExpr); ok {
			e := ta.X
			for {
				if p, isParen := e.(*ast.ParenExpr); isParen {
					e = p.X
					continue
				}
				break
			}
			if call, isCall := e.(*ast.CallExpr); isCall {
				asserted[call] = true
			}
		}
		return true
	})

	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, pool, ok := c.poolMethod(call, "Put"); ok && len(call.Args) == 1 {
			c.countPool(sel, c.poolPuts)
			if t := c.pass.TypesInfo.Types[call.Args[0]].Type; t != nil {
				if _, isSlice := t.Underlying().(*types.Slice); isSlice {
					c.report(call.Pos(), "slice passed to %s.Put: every Put boxes the slice header into a fresh allocation; pool a pointer (e.g. *[N]T) instead", pool)
				}
			}
		}
		if sel, pool, ok := c.poolMethod(call, "Get"); ok && len(call.Args) == 0 {
			c.countPool(sel, c.poolGets)
			if !asserted[call] {
				c.report(call.Pos(), "result of %s.Get is not type-asserted at the call site; assert to the pooled pointer type immediately", pool)
			}
		}
		return true
	})
}

// countPool attributes a Get/Put to a package-level pool var, when the
// receiver is a plain identifier.
func (c *checker) countPool(sel *ast.SelectorExpr, counts map[types.Object]int) {
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			counts[obj]++
		}
	}
}

// pools reports package-level pools that are drawn from but never refilled.
func (c *checker) pools() {
	for _, v := range c.poolVars {
		if c.poolGets[v] > 0 && c.poolPuts[v] == 0 {
			c.report(c.poolDecls[v], "sync.Pool %s has Get calls but no Put anywhere in the package: pooled objects are never recycled", v.Name())
		}
	}
}
