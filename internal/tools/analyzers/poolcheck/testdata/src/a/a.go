// Package a is the poolcheck fixture: leaked Gets on early-return paths,
// slice-typed Puts, unasserted Gets, a never-refilled pool, and the clean
// and suppressed forms of each.
package a

import "sync"

const size = 64

var bufPool = sync.Pool{New: func() any { return new([size]byte) }}

// slicePool is drawn from but never refilled anywhere in the package.
var slicePool = sync.Pool{New: func() any { return make([]byte, size) }} // want "has Get calls but no Put"

func leakOnEarlyReturn(fail bool) int {
	buf := bufPool.Get().(*[size]byte) // want "not returned to the pool"
	if fail {
		return 0
	}
	n := len(buf)
	bufPool.Put(buf)
	return n
}

func balanced(fail bool) int {
	buf := bufPool.Get().(*[size]byte)
	if fail {
		bufPool.Put(buf)
		return 0
	}
	n := len(buf)
	bufPool.Put(buf)
	return n
}

func balancedDefer(fail bool) int {
	buf := bufPool.Get().(*[size]byte)
	defer bufPool.Put(buf)
	if fail {
		return 0
	}
	return len(buf)
}

// handing the buffer to the caller transfers the release obligation.
func handOff() *[size]byte {
	buf := bufPool.Get().(*[size]byte)
	return buf
}

// a closure capturing the buffer owns its release.
func closureRelease() func() {
	buf := bufPool.Get().(*[size]byte)
	return func() { bufPool.Put(buf) }
}

func putSlice(b []byte) {
	slicePool.Get() // want "not type-asserted"
	bufPool.Put(b)  // want "slice passed to bufPool.Put"
}

func suppressedLeak(fail bool) int {
	buf := bufPool.Get().(*[size]byte) //ontolint:ignore poolcheck fixture: leak is intentional here
	if fail {
		return 0
	}
	n := len(buf)
	bufPool.Put(buf)
	return n
}

func loopLeak(rounds int) {
	for i := 0; i < rounds; i++ {
		buf := bufPool.Get().(*[size]byte) // want "leaks across a loop iteration"
		buf[0] = byte(i)
	}
}

func loopBalanced(rounds int) {
	for i := 0; i < rounds; i++ {
		buf := bufPool.Get().(*[size]byte)
		buf[0] = byte(i)
		bufPool.Put(buf)
	}
}
