// Package scoped holds an uncancellable pull loop in a package outside the
// analyzer's configured scope; nothing here may be reported.
package scoped

// Feed is a batch source.
type Feed struct{ n int }

// Next pulls one item.
func (f *Feed) Next() (int, bool) { f.n--; return f.n, f.n > 0 }

func drain(f *Feed) int {
	total := 0
	for {
		n, ok := f.Next()
		if !ok {
			return total
		}
		total += n
	}
}
