// Package a is the interruptcheck fixture: uncancellable pull loops, the
// delegation/polling/receiver-forwarding exemptions, and suppression. The
// local Ctx, Stream and Solutions types mirror the shapes of the real
// exec/query packages.
package a

// Ctx mirrors the execution context of the real exec package: pulls that
// forward one delegate cancellation to the callee.
type Ctx struct {
	Interrupt func() bool
}

// Cancelled reports whether the interrupt has tripped.
func (c *Ctx) Cancelled() bool { return c.Interrupt != nil && c.Interrupt() }

// Stream is a batch-pulling operator.
type Stream struct{ n int }

// Next pulls one batch without taking a context.
func (s *Stream) Next() (int, bool) { s.n--; return s.n, s.n > 0 }

// NextBatch pulls one batch under an execution context.
func (s *Stream) NextBatch(ctx *Ctx) (int, bool) { s.n--; return s.n, s.n > 0 }

func uncancellable(s *Stream) int {
	total := 0
	for {
		n, ok := s.Next() // want "without consulting cancellation"
		if !ok {
			return total
		}
		total += n
	}
}

func delegates(s *Stream, ctx *Ctx) int {
	total := 0
	for {
		n, ok := s.NextBatch(ctx)
		if !ok {
			return total
		}
		total += n
	}
}

func polls(s *Stream, ctx *Ctx) int {
	total := 0
	for {
		if ctx.Cancelled() {
			return total
		}
		n, ok := s.Next()
		if !ok {
			return total
		}
		total += n
	}
}

// outerPolls mirrors the parallel-wave idiom: the outer loop polls, the
// inner fan-out loop pulls.
func outerPolls(s *Stream, ctx *Ctx, workers int) int {
	total := 0
	for {
		if ctx.Cancelled() {
			return total
		}
		for i := 0; i < workers; i++ {
			n, ok := s.Next()
			if !ok {
				return total
			}
			total += n
		}
	}
}

// Solutions mirrors the query façade: its methods forward their own
// receiver, whose contract already covers cancellation.
type Solutions struct{ s Stream }

// Next forwards the receiver's stream.
func (sol *Solutions) Next() (int, bool) { return sol.s.Next() }

// Drain pulls from its own receiver; the receiver's contract covers it.
func (sol *Solutions) Drain() int {
	total := 0
	for {
		n, ok := sol.Next()
		if !ok {
			return total
		}
		total += n
	}
}

// installs mirrors the server handler: the function installs an Interrupt,
// so its loops are covered.
func installs(s *Stream, stop func() bool) int {
	ctx := Ctx{}
	ctx.Interrupt = stop
	total := 0
	for {
		n, ok := s.Next()
		if !ok {
			return total
		}
		total += n
	}
}

func suppressed(s *Stream) int {
	total := 0
	for {
		n, ok := s.Next() //ontolint:ignore interruptcheck fixture: maintenance loop is deliberately uncancellable
		if !ok {
			return total
		}
		total += n
	}
}
