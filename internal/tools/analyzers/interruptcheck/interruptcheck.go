// Package interruptcheck keeps request cancellation honest in the serving
// stack: a loop that pulls batches from an operator or solution stream
// (Next/NextBatch) can run for a long time, and if it never consults the
// query Interrupt option or a context, a cancelled HTTP request keeps
// burning CPU until the scan completes — a regression that reviews rarely
// catch because the happy path is unaffected.
//
// Within the configured packages (the query/reason/server stack by default;
// see Packages), every for/range loop that calls a method named Next or
// NextBatch must satisfy one of: the call forwards an execution context (an
// argument whose named type is Ctx, the delegation idiom — cancellation is
// the callee's job); the loop itself consults cancellation (a Cancelled()
// call, a ctx.Err() check, or a reference to an Interrupt option/field); the
// enclosing function installs an interrupt (a call to an Interrupt function
// or an assignment to an Interrupt field); or the pull is the enclosing
// method forwarding to its own receiver (sol.Next() inside a Solutions
// method — the receiver's own contract covers it). Test files are skipped.
package interruptcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/tools/analysis"
)

// Analyzer is the interruptcheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "interruptcheck",
	Doc: "check that batch-pulling loops in the serving stack consult cancellation\n\n" +
		"A for loop calling Next/NextBatch must forward an execution Ctx, poll Cancelled/ctx.Err/an\n" +
		"Interrupt option, or be the receiver's own forwarding method; otherwise a cancelled request\n" +
		"cannot stop the loop.",
	Run: run,
}

// Packages lists the package paths the check applies to; batch-pulling
// loops elsewhere (one-shot tools, experiments) may legitimately run to
// completion. A package is checked when its import path equals an entry.
// Tests may override this to point the analyzer at fixture packages.
var Packages = []string{
	"repro/internal/query",
	"repro/internal/query/exec",
	"repro/internal/reason",
	"repro/internal/server",
}

func run(pass *analysis.Pass) (any, error) {
	checked := false
	for _, p := range Packages {
		if pass.Pkg.Path() == p {
			checked = true
			break
		}
	}
	if !checked {
		return nil, nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// checkFunc inspects every loop of one top-level function. Function
// literals inside it are treated as part of the function: the interrupt
// evidence (an installed Interrupt option, say) lives at function scope,
// and a cancellation poll in an outer loop covers the pulls of the loops it
// drives (the parallel-wave idiom: the wave loop polls, the inner fan-out
// loop pulls).
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	recv := receiverName(fd)
	funcInstalls := installsInterrupt(fd.Body)
	consults := make(map[ast.Node]bool) // loop node -> body consults cancellation

	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Next" && sel.Sel.Name != "NextBatch" {
			return true
		}
		if _, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !ok {
			return true
		}
		covered := funcInstalls || forwardsCtx(pass, call)
		inLoop := false
		for i := len(stack) - 2; i >= 0 && !covered; i-- {
			var body *ast.BlockStmt
			switch l := stack[i].(type) {
			case *ast.ForStmt:
				body = l.Body
			case *ast.RangeStmt:
				body = l.Body
			default:
				continue
			}
			inLoop = true
			c, seen := consults[stack[i]]
			if !seen {
				c = consultsCancellation(body)
				consults[stack[i]] = c
			}
			covered = covered || c
		}
		if covered || !inLoop {
			return true
		}
		// A method pulling from its own receiver is forwarding its
		// receiver's contract, not driving a scan of its own.
		if id, ok := sel.X.(*ast.Ident); ok && recv != "" && id.Name == recv {
			return true
		}
		pass.Reportf(call.Pos(), "loop pulls %s.%s without consulting cancellation: forward an exec Ctx, poll Cancelled/ctx.Err, or install an Interrupt so a cancelled request can stop this loop", exprText(sel.X), sel.Sel.Name)
		return true
	})
}

// receiverName returns the name of fd's receiver identifier, or "".
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// forwardsCtx reports whether the pull call passes an execution context —
// an argument whose named (element) type is called Ctx.
func forwardsCtx(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		t := pass.TypesInfo.Types[arg].Type
		if t == nil {
			continue
		}
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed && n.Obj().Name() == "Ctx" {
			return true
		}
	}
	return false
}

// consultsCancellation reports whether the loop body checks for
// cancellation: a Cancelled() call, a ctx.Err() check, or any reference to
// an Interrupt identifier or field.
func consultsCancellation(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "Cancelled" || n.Sel.Name == "Err" || n.Sel.Name == "Interrupt" {
				found = true
			}
		case *ast.Ident:
			if n.Name == "Interrupt" {
				found = true
			}
		}
		return !found
	})
	return found
}

// installsInterrupt reports whether the function body installs an interrupt:
// a call to an Interrupt function/option or an assignment whose target is an
// Interrupt field.
func installsInterrupt(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Interrupt" {
					found = true
				}
			case *ast.Ident:
				if fun.Name == "Interrupt" {
					found = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Interrupt" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// exprText renders the pull receiver for the diagnostic.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.CallExpr:
		return exprText(e.Fun) + "()"
	default:
		return "stream"
	}
}
