package interruptcheck_test

import (
	"testing"

	"repro/internal/tools/analysis/analysistest"
	"repro/internal/tools/analyzers/interruptcheck"
)

func TestInterruptcheck(t *testing.T) {
	defer func(prev []string) { interruptcheck.Packages = prev }(interruptcheck.Packages)
	interruptcheck.Packages = []string{"a"}
	analysistest.Run(t, analysistest.TestData(), interruptcheck.Analyzer, "a")
}

// TestScopedOut checks that packages outside the configured serving stack
// are not checked at all.
func TestScopedOut(t *testing.T) {
	defer func(prev []string) { interruptcheck.Packages = prev }(interruptcheck.Packages)
	interruptcheck.Packages = []string{"some/other/pkg"}
	analysistest.Run(t, analysistest.TestData(), interruptcheck.Analyzer, "scoped")
}
