// Package doccheck enforces the repository's documentation contract: every
// exported identifier in the serving stack must carry a doc comment. It is
// the go/analysis port of the original internal/tools/doccheck command, so
// the rules are unchanged: a declaration is documented if the declaration
// itself, its spec, or (for grouped const/var/type blocks) the group has a
// comment; test files are skipped; methods count when both the method name
// and the receiver type are exported.
package doccheck

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/tools/analysis"
)

// Analyzer is the doccheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "doccheck",
	Doc: "check that every exported identifier in the serving stack has a doc comment\n\n" +
		"A group comment covers every const/var in its block; methods are checked when the receiver\n" +
		"type is exported too; test files are exempt.",
	Run: run,
}

// Packages lists the package paths the contract applies to — the serving
// stack whose godoc is the public surface. Tests may override this to point
// the analyzer at fixture packages.
var Packages = []string{
	"repro/internal/store",
	"repro/internal/query",
	"repro/internal/query/exec",
	"repro/internal/reason",
	"repro/internal/server",
	"repro/internal/obs",
	"repro/internal/repl",
}

func run(pass *analysis.Pass) (any, error) {
	checked := false
	for _, p := range Packages {
		if pass.Pkg.Path() == p {
			checked = true
			break
		}
	}
	if !checked {
		return nil, nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		checkFile(pass, f)
	}
	return nil, nil
}

// checkFile walks one file's top-level declarations.
func checkFile(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				pass.Reportf(d.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						pass.Reportf(sp.Pos(), "exported type %s has no doc comment", sp.Name.Name)
					}
				case *ast.ValueSpec:
					// A group comment (d.Doc) covers every const/var in the
					// block; otherwise each exported spec needs its own.
					if d.Doc != nil || sp.Doc != nil || sp.Comment != nil {
						continue
					}
					for _, id := range sp.Names {
						if id.IsExported() {
							pass.Reportf(id.Pos(), "exported %s %s has no doc comment", kindOf(d.Tok), id.Name)
						}
					}
				}
			}
		}
	}
}

// kindOf names a ValueSpec's declaration kind for the diagnostic.
func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// receiverExported reports whether a function's receiver type (if any) is
// exported; methods on unexported types are not part of the public surface.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
