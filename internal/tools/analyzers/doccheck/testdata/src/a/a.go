// Package a is the doccheck fixture: undocumented exported identifiers,
// documented and grouped forms, unexported receivers, suppression, and a
// malformed ignore directive.
package a

func Undocumented() {} // want "exported function Undocumented has no doc comment"

// Documented has a doc comment.
func Documented() {}

type Widget struct { // want "exported type Widget has no doc comment"
	ID int
}

// Gadget is documented.
type Gadget struct{}

// Frob is documented; its receiver is exported too.
func (Gadget) Frob() {}

func (Gadget) Twiddle() {} // want "exported method Twiddle has no doc comment"

type gizmo struct{}

// methods on unexported receivers are not part of the public surface.
func (gizmo) Exported() {}

// Grouped constants are covered by the group comment.
const (
	Alpha = iota
	Beta
)

var Loose = []int{ // want "exported var Loose has no doc comment"
	1,
}

var Silenced = []int{ //ontolint:ignore doccheck fixture: documented in the package overview instead
	2,
}
