package doccheck_test

import (
	"testing"

	"repro/internal/tools/analysis/analysistest"
	"repro/internal/tools/analyzers/doccheck"
)

func TestDoccheck(t *testing.T) {
	defer func(prev []string) { doccheck.Packages = prev }(doccheck.Packages)
	doccheck.Packages = []string{"a"}
	analysistest.Run(t, analysistest.TestData(), doccheck.Analyzer, "a")
}
