// Package a is the maporder fixture: unsorted map-fed appends, direct
// writes under map iteration, the sanctioned collect-then-sort idiom, and
// suppression.
package a

import (
	"fmt"
	"io"
	"sort"
)

func unsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "appended to from a map iteration but never sorted"
	}
	return out
}

func sorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedSlice(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func writerInLoop(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "Fprintf called inside iteration over a map"
	}
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//ontolint:ignore maporder fixture: order is irrelevant to the caller
		out = append(out, k)
	}
	return out
}

// counting and deleting are order-insensitive and must not be flagged.
func countAndPrune(m map[string]int) int {
	n := 0
	for k, v := range m {
		if v == 0 {
			delete(m, k)
			continue
		}
		n += v
	}
	return n
}

// a per-key destination gets a distinct slice per iteration; map order
// cannot leak into any one of them.
func regroup(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}
