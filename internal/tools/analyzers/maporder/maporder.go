// Package maporder guards the repository's determinism contract: every
// user-visible result — Query/Triples/Subjects slices, byte-stable
// snapshots, ndjson rows — must depend only on the store's contents, never
// on Go's randomized map iteration order (package store's "Ordering" doc,
// DESIGN.md "Enforced invariants").
//
// Two patterns are reported inside a `for range` over a map: appending to a
// slice that the enclosing function never sorts (the slice's order is then
// the map's), and writing directly to an output — io writers, encoders,
// fmt.Fprint* — from inside the iteration, where no later sort is even
// possible. Appends whose slice is passed to sort.* or slices.Sort* later
// in the same function are the sanctioned collect-then-sort idiom and pass.
// Iterations whose order genuinely may not matter (counting, deleting,
// draining into an unordered structure) are untouched: neither pattern
// matches them. Test files are skipped.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/tools/analysis"
	"repro/internal/tools/analyzers/internal/pathwalk"
)

// Analyzer is the maporder analysis.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "check that map iteration never feeds user-visible output without a sort\n\n" +
		"Inside a for-range over a map, appending to a slice the function never sorts, or writing\n" +
		"directly to a writer/encoder, makes the output depend on Go's randomized map order.",
	Run: run,
}

// writerMethods are method names that emit output directly; calling one
// inside a map iteration bakes map order into the output stream.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Fprintf": true, "Fprintln": true, "Fprint": true,
	"Printf": true, "Println": true, "Print": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checkFunc inspects one function body: collects the appends made under map
// iteration, then clears those whose destination the function sorts.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	type appendSite struct {
		dst string
		pos token.Pos
	}
	var appends []appendSite

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed as its own function
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.Types[rng.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				if dst, pos, ok := appendAssign(pass, m); ok {
					// A destination indexed by the range key gets a
					// distinct slice per iteration, so map order cannot
					// leak into any one of them.
					if !indexedByRangeKey(pass, m.Lhs[0], rng) {
						appends = append(appends, appendSite{dst: dst, pos: pos})
					}
				}
			case *ast.CallExpr:
				if sel, ok := m.Fun.(*ast.SelectorExpr); ok && writerMethods[sel.Sel.Name] {
					pass.Reportf(m.Pos(), "%s called inside iteration over a map: output order follows Go's randomized map order; collect into a slice, sort, then emit", sel.Sel.Name)
				}
				if id, ok := m.Fun.(*ast.Ident); ok && writerMethods[id.Name] {
					pass.Reportf(m.Pos(), "%s called inside iteration over a map: output order follows Go's randomized map order; collect into a slice, sort, then emit", id.Name)
				}
			}
			return true
		})
		return true
	})

	if len(appends) == 0 {
		return
	}
	sorted := sortedSlices(pass, body)
	for _, a := range appends {
		if !sorted[a.dst] {
			pass.Reportf(a.pos, "%s is appended to from a map iteration but never sorted in this function: its order follows Go's randomized map order", a.dst)
		}
	}
}

// indexedByRangeKey reports whether the assignment destination is an index
// expression whose index is the range statement's key variable.
func indexedByRangeKey(pass *analysis.Pass, dst ast.Expr, rng *ast.RangeStmt) bool {
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	keyObj := pass.TypesInfo.Defs[keyID]
	if keyObj == nil {
		keyObj = pass.TypesInfo.Uses[keyID]
	}
	if keyObj == nil {
		return false
	}
	ie, ok := dst.(*ast.IndexExpr)
	if !ok {
		return false
	}
	idx, ok := ie.Index.(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[idx] == keyObj
}

// appendAssign matches `dst = append(dst, ...)` (or :=) and returns the
// destination's canonical expression.
func appendAssign(pass *analysis.Pass, as *ast.AssignStmt) (string, token.Pos, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", token.NoPos, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return "", token.NoPos, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return "", token.NoPos, false
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return "", token.NoPos, false
	}
	return pathwalk.ExprKey(pass.Fset, as.Lhs[0]), as.Pos(), true
}

// sortedSlices returns the canonical expressions passed to a sort.* or
// slices.Sort* call anywhere in the function.
func sortedSlices(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if _, isPkg := pass.TypesInfo.Uses[pkgID].(*types.PkgName); !isPkg {
			return true
		}
		if pkgID.Name != "sort" && pkgID.Name != "slices" {
			return true
		}
		for _, arg := range call.Args {
			out[pathwalk.ExprKey(pass.Fset, arg)] = true
		}
		return true
	})
	return out
}
