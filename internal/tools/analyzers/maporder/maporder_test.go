package maporder_test

import (
	"testing"

	"repro/internal/tools/analysis/analysistest"
	"repro/internal/tools/analyzers/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer, "a")
}
