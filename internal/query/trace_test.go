package query

import (
	"testing"
)

// TestTraceThreePatternJoin drives a 3-pattern BGP with a Trace attached
// and checks the planner fields and the per-operator stats the drained
// evaluation must have filled.
func TestTraceThreePatternJoin(t *testing.T) {
	s := fill(t,
		[3]string{"a", "type", "car"},
		[3]string{"b", "type", "car"},
		[3]string{"a", "locatedIn", "site1"},
		[3]string{"b", "locatedIn", "site2"},
		[3]string{"site1", "partOf", "region1"},
		[3]string{"site2", "partOf", "region1"},
	)
	bgp := MustParseBGP("?x type car . ?x locatedIn ?site . ?site partOf ?region")
	var tr Trace
	got := bindings(t, Eval(s, bgp, WithTrace(&tr)))
	if len(got) != 2 {
		t.Fatalf("solutions = %d, want 2", len(got))
	}
	if !tr.Exhaustive {
		t.Error("3-pattern BGP must plan exhaustively")
	}
	if tr.Considered != 6 {
		t.Errorf("considered = %d, want 3! = 6", tr.Considered)
	}
	if len(tr.Chosen) != 3 || len(tr.Levels) != 3 {
		t.Fatalf("chosen/levels = %d/%d, want 3/3", len(tr.Chosen), len(tr.Levels))
	}
	seen := map[int]bool{}
	for _, idx := range tr.Chosen {
		if idx < 0 || idx > 2 || seen[idx] {
			t.Fatalf("chosen order %v is not a permutation of the BGP", tr.Chosen)
		}
		seen[idx] = true
	}
	if len(tr.Candidates) == 0 || tr.Candidates[0].Cost != tr.Cost {
		t.Errorf("candidates[0] must be the chosen cost %g, got %+v", tr.Cost, tr.Candidates)
	}
	for i, lt := range tr.Levels {
		if lt.Index != tr.Chosen[i] {
			t.Errorf("level %d index %d != chosen %d", i, lt.Index, tr.Chosen[i])
		}
		if lt.Pattern != bgp[lt.Index].String() {
			t.Errorf("level %d pattern %q != %q", i, lt.Pattern, bgp[lt.Index].String())
		}
		if lt.Stat.Batches == 0 || lt.Stat.Rows == 0 {
			t.Errorf("level %d stat not filled: %+v", i, lt.Stat)
		}
		if lt.Stat.Nanos <= 0 {
			t.Errorf("level %d has no wall time: %+v", i, lt.Stat)
		}
		if i > 0 && lt.Stat.Probes == 0 {
			t.Errorf("join level %d issued no probes: %+v", i, lt.Stat)
		}
	}
	// The root (last level) emits exactly the solution rows.
	if root := tr.Levels[2].Stat; root.Rows != 2 {
		t.Errorf("root rows = %d, want 2", root.Rows)
	}
}

// TestTraceSinglePattern pins the single-pattern fast path: one candidate,
// one level, leaf stats filled.
func TestTraceSinglePattern(t *testing.T) {
	s := fill(t,
		[3]string{"a", "type", "car"},
		[3]string{"b", "type", "car"},
	)
	var tr Trace
	got := bindings(t, Eval(s, MustParseBGP("?x type car"), WithTrace(&tr)))
	if len(got) != 2 {
		t.Fatalf("solutions = %d, want 2", len(got))
	}
	if !tr.Exhaustive || tr.Considered != 1 || len(tr.Levels) != 1 {
		t.Errorf("single-pattern trace: %+v", tr)
	}
	if tr.Levels[0].Stat.Rows != 2 {
		t.Errorf("leaf rows = %d, want 2", tr.Levels[0].Stat.Rows)
	}
}

// TestTraceGreedyPlan pins the greedy fallback above maxExhaustive: the
// trace marks it non-exhaustive and records one candidate (the greedy
// order).
func TestTraceGreedyPlan(t *testing.T) {
	s := fill(t,
		[3]string{"a", "p1", "b"},
		[3]string{"b", "p2", "c"},
		[3]string{"c", "p3", "d"},
		[3]string{"d", "p4", "e"},
		[3]string{"e", "p5", "f"},
		[3]string{"f", "p6", "g"},
		[3]string{"g", "p7", "h"},
	)
	bgp := MustParseBGP("?a p1 ?b . ?b p2 ?c . ?c p3 ?d . ?d p4 ?e . ?e p5 ?f . ?f p6 ?g . ?g p7 ?h")
	var tr Trace
	got := bindings(t, Eval(s, bgp, WithTrace(&tr)))
	if len(got) != 1 {
		t.Fatalf("solutions = %d, want 1", len(got))
	}
	if tr.Exhaustive {
		t.Error("7-pattern BGP must plan greedily")
	}
	if len(tr.Chosen) != 7 || len(tr.Candidates) != 1 {
		t.Errorf("greedy trace: chosen %v candidates %v", tr.Chosen, tr.Candidates)
	}
}
