package query

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/tboxio"
)

// e5Store builds the E5-shaped corpus the store benchmarks use: n type
// annotations spread over a few hundred classes.
func e5Store(b *testing.B, n int) *store.Store {
	b.Helper()
	ts := make([]store.Triple, n)
	for i := range ts {
		ts[i] = store.Triple{
			Subject:   fmt.Sprintf("inst-%d", i),
			Predicate: store.TypePredicate,
			Object:    fmt.Sprintf("class-%d", i%317),
		}
	}
	s := store.New()
	if _, err := s.AddBatch(ts); err != nil {
		b.Fatal(err)
	}
	return s
}

// e5Index classifies a root class over 32 of the corpus classes, matching
// the 32-subsumee fan-out of the store package's expansion benchmark.
func e5Index(b *testing.B) *store.OntologyIndex {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("root <= exists r.k\n")
	for i := 0; i < 32; i++ {
		fmt.Fprintf(&sb, "class-%d <= root and exists r.k%d\n", i, i)
	}
	tb, err := tboxio.ParseString(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	oi, err := store.NewOntologyIndex(tb)
	if err != nil {
		b.Fatal(err)
	}
	return oi
}

// BenchmarkExpandedClassQuery is the E5 class-query benchmark both ways:
// the retired InstancesOfExpanded helper's algorithm (a hand-rolled
// subsumee-union over ForEachSubject with string-keyed dedup, reproduced
// inline) against the same retrieval phrased as a one-pattern BGP with the
// Expand option. The two must return identical answers (the query tests
// prove it) at comparable cost — the bar for retiring the helper was that
// the BGP form not lose to it.
func BenchmarkExpandedClassQuery(b *testing.B) {
	const n = 100_000
	s := e5Store(b, n)
	oi := e5Index(b)
	b.Run("legacy-helper", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// expandedReference (query_test.go) is the retired helper's
			// algorithm, shared with the equivalence test.
			if got := expandedReference(s, oi, "root"); len(got) == 0 {
				b.Fatal("no instances")
			}
		}
	})
	b.Run("bgp-expand", func(b *testing.B) {
		b.ReportAllocs()
		bgp := BGP{Pat(Var("x"), Lit(store.TypePredicate), Lit("root"))}
		for i := 0; i < b.N; i++ {
			got, err := Eval(s, bgp, Expand(oi)).Project("x")
			if err != nil {
				b.Fatal(err)
			}
			if len(got) == 0 {
				b.Fatal("no instances")
			}
		}
	})
}

// BenchmarkSolutionsStream measures the raw iterator: streaming every
// (instance, class) solution of an unselective pattern without
// materializing bindings.
func BenchmarkSolutionsStream(b *testing.B) {
	const n = 100_000
	s := e5Store(b, n)
	bgp := BGP{Pat(Var("x"), Lit(store.TypePredicate), Var("c"))}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sols := Eval(s, bgp)
		count := 0
		for sols.Next() {
			count++
		}
		if count != n {
			b.Fatalf("streamed %d solutions, want %d", count, n)
		}
	}
}
