package query

import (
	"sort"

	"repro/internal/query/exec"
)

// This file is the EXPLAIN surface of the evaluator: a Trace attached via
// WithTrace records what the planner considered and chose, and wires a live
// OpStat into every operator of the lowered tree so draining the Solutions
// fills in per-operator batch/row/probe counts and wall time. The server's
// POST /query?explain=1 serializes the filled Trace as the response.

// maxTraceCandidates caps how many candidate orders an exhaustive plan
// keeps in the trace (the cheapest ones; a 6-pattern BGP costs 720 orders
// and nobody reads them all).
const maxTraceCandidates = 16

// Trace records one evaluation's planner decisions and execution
// statistics. Zero it, pass it through WithTrace, drain the Solutions, then
// read it; the operator Stats are written by the evaluation itself, so read
// them only after the iteration ends.
type Trace struct {
	// Exhaustive reports whether the planner searched all join orders
	// (BGPs of up to 6 patterns) or fell back to the greedy ordering.
	Exhaustive bool `json:"exhaustive"`
	// Considered is the number of candidate orders costed.
	Considered int `json:"considered"`
	// Candidates holds the cheapest candidate orders, ascending by cost
	// (capped; the chosen order is always Candidates[0] when present).
	Candidates []Candidate `json:"candidates,omitempty"`
	// Chosen is the chosen join order as indices into the request BGP.
	Chosen []int `json:"chosen"`
	// Cost is the chosen order's estimated total work under the planner's
	// cardinality-propagation model.
	Cost float64 `json:"cost"`
	// Levels describes the lowered operators in evaluation order: Levels[0]
	// is the leaf scan, every later entry a join probing the levels before
	// it.
	Levels []LevelTrace `json:"levels"`
}

// Candidate is one join order the planner costed.
type Candidate struct {
	// Order is the candidate join order as indices into the request BGP.
	Order []int `json:"order"`
	// Cost is its estimated total work.
	Cost float64 `json:"cost"`
}

// LevelTrace is one operator of the lowered tree: the pattern it evaluates,
// the planner's estimate for it, and the live execution statistics.
type LevelTrace struct {
	// Pattern is the pattern's textual form (the one ParseBGP reads).
	Pattern string `json:"pattern"`
	// Index is the pattern's position in the request BGP.
	Index int `json:"index"`
	// EstRows is the planner's estimated matches per probe of this level
	// along the chosen order (for the leaf, the estimated scan count).
	EstRows float64 `json:"est_rows"`
	// Expand is the number of ontology-expansion candidate classes this
	// level unions over (0 when not expanded).
	Expand int `json:"expand,omitempty"`
	// Stat holds the operator's execution statistics, filled while the
	// Solutions drains: batches and rows returned, index probes issued
	// (joins), and wall nanoseconds inclusive of child pulls.
	Stat exec.OpStat `json:"stat"`
}

// WithTrace attaches t to the evaluation: Eval fills the planner fields
// before returning, and the operator tree writes the per-level Stats while
// the Solutions drains. The Trace must outlive the iteration and must not
// be shared between concurrent evaluations.
func WithTrace(t *Trace) Option {
	return func(c *config) { c.trace = t }
}

// recordCandidate appends one costed order (copying the permutation) and
// counts it.
func (t *Trace) recordCandidate(levels []level, order []int, cost float64) {
	t.Considered++
	orig := make([]int, len(order))
	for i, idx := range order {
		orig[i] = levels[idx].orig
	}
	t.Candidates = append(t.Candidates, Candidate{Order: orig, Cost: cost})
}

// finishPlan fills the chosen-order fields and the Levels skeleton once the
// planner settles on best: the chosen order's per-level row estimates are
// replayed under the same cost model, and the candidate list is sorted and
// truncated to the cheapest few.
func (t *Trace) finishPlan(levels []level, stats []pstats, best []int, cost float64, bound []bool, exhaustive bool) {
	t.Exhaustive = exhaustive
	t.Cost = cost
	t.Chosen = make([]int, len(best))
	t.Levels = make([]LevelTrace, len(best))
	for i := range bound {
		bound[i] = false
	}
	for i, idx := range best {
		lv := &levels[idx]
		t.Chosen[i] = lv.orig
		t.Levels[i] = LevelTrace{
			Index:   lv.orig,
			EstRows: probeEstimate(lv, stats[idx], bound),
			Expand:  len(lv.expand),
		}
		for _, c := range lv.comps {
			if c.isVar {
				bound[c.varIdx] = true
			}
		}
	}
	sort.SliceStable(t.Candidates, func(i, j int) bool { return t.Candidates[i].Cost < t.Candidates[j].Cost })
	if len(t.Candidates) > maxTraceCandidates {
		t.Candidates = t.Candidates[:maxTraceCandidates]
	}
}
