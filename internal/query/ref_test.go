package query

// The join evaluator is checked against the dumbest possible reference: a
// string-level backtracking evaluator that, for each pattern in BGP order,
// scans every triple of the store. The reference knows nothing about
// indexes, dictionaries, plans or probes, so any agreement between the two
// is evidence the planner's ordering and the id-level probing are
// semantics-preserving. The comparison runs as a seeded property test over
// random stores and BGPs (shared-variable joins, repeated variables,
// unsatisfiable literals, empty stores, ontology expansion) and as a fuzz
// target over the same generator.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/store"
	"repro/internal/tboxio"
)

// refEval evaluates the BGP by exhaustive backtracking over the materialized
// triple list, in the BGP's own pattern order.
func refEval(ts []store.Triple, bgp BGP, oi *store.OntologyIndex) []Binding {
	// Reject the same malformed inputs Eval reports through Err.
	for _, p := range bgp {
		for _, term := range p.terms() {
			if term.Value == "" {
				return nil
			}
		}
	}
	var out []Binding
	bind := map[string]string{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(bgp) {
			b := make(Binding, len(bind))
			for k, v := range bind {
				b[k] = v
			}
			out = append(out, b)
			return
		}
		for _, t := range ts {
			if ok, undo := refMatch(bgp[i], t, bind, oi); ok {
				rec(i + 1)
				for _, k := range undo {
					delete(bind, k)
				}
			}
		}
	}
	rec(0)
	return out
}

// refMatch matches one triple against one pattern under the current binding,
// returning which variables it newly bound.
func refMatch(p TriplePattern, t store.Triple, bind map[string]string, oi *store.OntologyIndex) (bool, []string) {
	vals := [3]string{t.Subject, t.Predicate, t.Object}
	expanded := oi != nil && !p.Predicate.IsVar && p.Predicate.Value == store.TypePredicate && !p.Object.IsVar
	var undo []string
	fail := func() (bool, []string) {
		for _, k := range undo {
			delete(bind, k)
		}
		return false, nil
	}
	for i, term := range p.terms() {
		if term.IsVar {
			if v, bound := bind[term.Value]; bound {
				if v != vals[i] {
					return fail()
				}
				continue
			}
			bind[term.Value] = vals[i]
			undo = append(undo, term.Value)
			continue
		}
		if expanded && i == 2 {
			found := false
			for _, sub := range oi.Subsumees(p.Object.Value) {
				if sub == vals[i] {
					found = true
					break
				}
			}
			if !found {
				return fail()
			}
			continue
		}
		if term.Value != vals[i] {
			return fail()
		}
	}
	return true, undo
}

// refHierarchy is the fixed class hierarchy the random cases annotate under:
// c2 ⊑ c1 ⊑ c0, c3 ⊑ c0, c4 unrelated.
const refHierarchy = `
c0 <= exists r.a0
c1 <= c0 and exists r.a1
c2 <= c1 and exists r.a2
c3 <= c0 and exists r.a3
c4 <= exists r.a4
`

func refIndex(t testing.TB) *store.OntologyIndex {
	t.Helper()
	tb, err := tboxio.ParseString(refHierarchy)
	if err != nil {
		t.Fatal(err)
	}
	oi, err := store.NewOntologyIndex(tb)
	if err != nil {
		t.Fatal(err)
	}
	return oi
}

// randomCase generates one store and one BGP from the rng. The vocabulary is
// deliberately tiny so joins, repeated variables and empty answers all occur
// with useful frequency; a sprinkle of never-interned literals exercises the
// unsatisfiable path.
func randomCase(rng *rand.Rand) ([]store.Triple, BGP) {
	subjects := []string{"s0", "s1", "s2", "s3", "s4", "s5"}
	predicates := []string{"p0", "p1", "p2", store.TypePredicate}
	objects := []string{"o0", "o1", "s0", "s1", "c0", "c1", "c2", "c3", "c4"}
	vars := []string{"a", "b", "c", "d"}

	n := rng.Intn(60) // sometimes zero: the empty store
	triples := make([]store.Triple, 0, n)
	for i := 0; i < n; i++ {
		triples = append(triples, store.Triple{
			Subject:   subjects[rng.Intn(len(subjects))],
			Predicate: predicates[rng.Intn(len(predicates))],
			Object:    objects[rng.Intn(len(objects))],
		})
	}

	term := func(pool []string) Term {
		r := rng.Float64()
		switch {
		case r < 0.40:
			return Var(vars[rng.Intn(len(vars))])
		case r < 0.45:
			return Lit("never-seen")
		default:
			return Lit(pool[rng.Intn(len(pool))])
		}
	}
	bgp := make(BGP, 1+rng.Intn(4))
	for i := range bgp {
		bgp[i] = Pat(term(subjects), term(predicates), term(objects))
	}
	return triples, bgp
}

// checkAgainstReference evaluates one case both ways and compares the
// canonicalized solution multisets.
func checkAgainstReference(t *testing.T, triples []store.Triple, bgp BGP, oi *store.OntologyIndex) {
	t.Helper()
	s := store.New()
	if _, err := s.AddBatch(triples); err != nil {
		t.Fatal(err)
	}
	var opts []Option
	if oi != nil {
		opts = append(opts, Expand(oi))
	}
	got, err := Eval(s, bgp, opts...).All()
	if err != nil {
		t.Fatalf("BGP %q: %v", bgp, err)
	}
	want := refEval(s.Triples(), bgp, oi)
	gotC, wantC := canonicalize(got), canonicalize(want)
	if !reflect.DeepEqual(gotC, wantC) {
		t.Fatalf("BGP %q over %d triples:\n planner: %v\n reference: %v", bgp, len(triples), gotC, wantC)
	}
}

func TestEvalMatchesReference(t *testing.T) {
	oi := refIndex(t)
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		triples, bgp := randomCase(rng)
		var idx *store.OntologyIndex
		if seed%2 == 1 {
			idx = oi
		}
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			checkAgainstReference(t, triples, bgp, idx)
		})
	}
}

func FuzzEvalMatchesReference(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed, seed%3 == 0)
	}
	tb, err := tboxio.ParseString(refHierarchy)
	if err != nil {
		f.Fatal(err)
	}
	oi, err := store.NewOntologyIndex(tb)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed int64, expand bool) {
		rng := rand.New(rand.NewSource(seed))
		triples, bgp := randomCase(rng)
		var idx *store.OntologyIndex
		if expand {
			idx = oi
		}
		checkAgainstReference(t, triples, bgp, idx)
	})
}

// TestInterruptMidBatch cancels an evaluation from inside the stream — the
// hook flips after a prefix of solutions has been read, which with the
// batched evaluator lands mid-batch — and checks that the iteration stops
// within the documented poll throttle instead of draining the rest of the
// current batch, and that Err reports ErrInterrupted.
func TestInterruptMidBatch(t *testing.T) {
	s := store.New()
	ts := make([]store.Triple, 0, 40_000)
	for i := 0; i < 40_000; i++ {
		ts = append(ts, store.Triple{
			Subject:   fmt.Sprintf("s%d", i),
			Predicate: "p",
			Object:    fmt.Sprintf("o%d", i%13),
		})
	}
	if _, err := s.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	const prefix = 1500 // more than one 1024-row batch
	cancelled := false
	sols := Eval(s, MustParseBGP("?s p ?o"), Interrupt(func() bool { return cancelled }))
	n := 0
	for sols.Next() {
		n++
		if n == prefix {
			cancelled = true
		}
		if n > prefix+4*interruptTickMask {
			t.Fatal("iterator kept producing solutions long after mid-stream cancellation")
		}
	}
	if !reflect.DeepEqual(sols.Err(), ErrInterrupted) {
		t.Fatalf("Err = %v, want ErrInterrupted", sols.Err())
	}
	if n < prefix {
		t.Fatalf("iterator stopped after %d solutions, before the cancellation point", n)
	}
}

// TestEmptyBatchPipelines covers the empty-batch path: a leaf whose rows are
// entirely (or partially) eliminated by an intra-pattern repeated-variable
// filter hands empty (or short) batches to the join above, which must skip
// them without ending the stream. Checked against the reference evaluator,
// with and without a surviving self-loop.
func TestEmptyBatchPipelines(t *testing.T) {
	base := []store.Triple{
		{Subject: "a", Predicate: "p", Object: "b"},
		{Subject: "b", Predicate: "p", Object: "c"},
		{Subject: "c", Predicate: "p", Object: "a"},
		{Subject: "a", Predicate: "q", Object: "x"},
		{Subject: "b", Predicate: "q", Object: "y"},
	}
	selfLoop := store.Triple{Subject: "b", Predicate: "p", Object: "b"}
	bgps := []BGP{
		MustParseBGP("?x p ?x"),           // filter-everything leaf
		MustParseBGP("?x p ?x . ?x q ?y"), // empty batches feeding a join
		MustParseBGP("?x q ?y . ?x p ?x"), // repeated-var pattern as the probe side
	}
	for _, withLoop := range []bool{false, true} {
		triples := base
		if withLoop {
			triples = append(append([]store.Triple(nil), base...), selfLoop)
		}
		for _, bgp := range bgps {
			t.Run(fmt.Sprintf("loop=%v/%s", withLoop, bgp), func(t *testing.T) {
				checkAgainstReference(t, triples, bgp, nil)
			})
		}
	}
}

// TestGreedyPlannerMatchesReference covers the n > maxExhaustive planner
// branch, which the random generator (≤4 patterns) never reaches: 7- and
// 8-pattern BGPs over a path-plus-hub graph, deterministic and seeded-random,
// compared against the reference evaluator. The graph keeps the reference's
// exhaustive backtracking tractable (every pattern is predicate-anchored).
func TestGreedyPlannerMatchesReference(t *testing.T) {
	var triples []store.Triple
	for i := 0; i < 10; i++ {
		a := fmt.Sprintf("a%d", i)
		triples = append(triples,
			store.Triple{Subject: a, Predicate: store.TypePredicate, Object: fmt.Sprintf("t%d", i%3)},
			store.Triple{Subject: "h", Predicate: "spoke", Object: a},
		)
		if i+1 < 10 {
			triples = append(triples, store.Triple{Subject: a, Predicate: "next", Object: fmt.Sprintf("a%d", i+1)})
		}
	}
	chain := func(n int, subst map[string]Term) BGP {
		termFor := func(name string) Term {
			if t, ok := subst[name]; ok {
				return t
			}
			return Var(name)
		}
		var bgp BGP
		for i := 0; i < n; i++ {
			bgp = append(bgp, Pat(termFor(fmt.Sprintf("v%d", i)), Lit("next"), termFor(fmt.Sprintf("v%d", i+1))))
		}
		return bgp
	}

	// A 7-pattern pure chain and an 8-pattern chain+hub+type mix.
	cases := []BGP{
		chain(7, nil),
		append(chain(5, nil),
			Pat(Lit("h"), Lit("spoke"), Var("v0")),
			Pat(Var("v0"), Lit(store.TypePredicate), Lit("t0")),
			Pat(Var("v5"), Lit(store.TypePredicate), Var("tv"))),
	}
	// Seeded-random 8-pattern cases: a 7-chain with one variable pinned to a
	// random node, plus a hub pattern.
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		subst := map[string]Term{fmt.Sprintf("v%d", rng.Intn(8)): Lit(fmt.Sprintf("a%d", rng.Intn(10)))}
		bgp := append(chain(7, subst), Pat(Lit("h"), Lit("spoke"), Var("v3")))
		cases = append(cases, bgp)
	}
	for i, bgp := range cases {
		if len(bgp) <= maxExhaustive {
			t.Fatalf("case %d has %d patterns; this test must exercise the greedy branch (> %d)", i, len(bgp), maxExhaustive)
		}
		t.Run(fmt.Sprintf("case-%d", i), func(t *testing.T) {
			checkAgainstReference(t, triples, bgp, nil)
		})
	}
}
