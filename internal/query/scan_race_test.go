package query

// These tests back the concurrency claims of the batched evaluator's leaf
// scans: shard-parallel scan parts refill under shard read-locks while
// writers mutate the store (AddBatch and Remove), and while a materialized
// View's overlay is written. Run under -race in CI. Solution sets are only
// sanity-checked — the docs promise consistency only against a quiescent
// store — but every streamed row must be well-formed and the iteration must
// never error.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/store"
)

// raceStore builds a store big enough that full scans split into parallel
// parts (well past exec's ParallelScanMinCount).
func raceStore(t testing.TB, n int) *store.Store {
	t.Helper()
	s := store.New()
	ts := make([]store.Triple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, store.Triple{
			Subject:   fmt.Sprintf("s%d", i),
			Predicate: fmt.Sprintf("p%d", i%7),
			Object:    fmt.Sprintf("o%d", i%97),
		})
	}
	if _, err := s.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestParallelScanUnderConcurrentWrites drives shard-parallel full scans
// while one goroutine batch-inserts fresh triples and another removes them
// again: the scan-part cursors must stay crash- and race-free while shards
// mutate under them, and every pre-existing triple's row must remain
// well-formed.
func TestParallelScanUnderConcurrentWrites(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const n = 20_000
	s := raceStore(t, n)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]store.Triple, 0, 64)
			for j := 0; j < 64; j++ {
				batch = append(batch, store.Triple{
					Subject:   fmt.Sprintf("extra-%d-%d", i, j),
					Predicate: "p0",
					Object:    "o0",
				})
			}
			if _, err := s.AddBatch(batch); err != nil {
				panic(err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for j := 0; j < 64; j++ {
				s.Remove(store.Triple{
					Subject:   fmt.Sprintf("extra-%d-%d", i, j),
					Predicate: "p0",
					Object:    "o0",
				})
			}
		}
	}()

	bgp := MustParseBGP("?s ?p ?o")
	for i := 0; i < 30; i++ {
		sols := Eval(s, bgp)
		rows := 0
		for sols.Next() {
			if v, ok := sols.Value("s"); !ok || v == "" {
				t.Fatalf("iteration %d: malformed subject binding (%q, %v)", i, v, ok)
			}
			rows++
		}
		if err := sols.Err(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		// The writers only ever add and remove their own extra- triples, so
		// every original triple should be scannable... except those caught
		// mid-mutation, which the consistency contract allows to be missed.
		// A gross undercount would mean a cursor lost its position.
		if rows < n/2 {
			t.Fatalf("iteration %d: scan saw only %d of %d stable triples", i, rows, n)
		}
	}
	close(stop)
	wg.Wait()
}

// TestParallelScanOverViewUnderOverlayWrites runs full scans over a
// non-disjoint View (so overlay parts take the per-triple dedup probe into
// the base) while the overlay is concurrently written — the
// materialization-refresh shape, where inferred triples stream in while
// readers scan the union.
func TestParallelScanOverViewUnderOverlayWrites(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const n = 20_000
	base := raceStore(t, n)
	overlay := base.NewOverlay()
	view, err := store.NewView(base, overlay)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tr := store.Triple{Subject: fmt.Sprintf("inf-%d", i%512), Predicate: "p1", Object: "o1"}
			if i%2 == 0 {
				if _, err := overlay.Add(tr); err != nil {
					panic(err)
				}
			} else {
				overlay.Remove(tr)
			}
		}
	}()

	bgp := MustParseBGP("?s ?p ?o")
	for i := 0; i < 30; i++ {
		sols := Eval(view, bgp)
		rows := 0
		for sols.Next() {
			rows++
		}
		if err := sols.Err(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if rows < n/2 {
			t.Fatalf("iteration %d: union scan saw only %d of %d base triples", i, rows, n)
		}
	}
	close(stop)
	wg.Wait()
}
