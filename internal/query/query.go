// Package query is the store's declarative query layer: SPARQL-style basic
// graph patterns (BGPs) over repro/internal/store, with variables, joins,
// ontology-aware expansion and streaming solutions.
//
// A TriplePattern is three Terms, each either a literal (Lit) or a variable
// (Var); a BGP is a conjunction of patterns joined on their shared variables.
// Eval plans the BGP — join orders are costed from the store's per-pattern
// cardinality and distinct-component statistics (Store.StatsID), cheapest
// estimated plan first — and evaluates it as an index-nested-loop join: each
// probe substitutes the bindings accumulated so far and answers from
// whichever SPO/POS/OSP permutation index the resulting bound components
// select. The join runs entirely on dictionary ids; solutions resolve back
// to strings only when read.
//
//	sols := query.Eval(s, query.BGP{
//		query.Pat(query.Var("x"), query.Lit(store.TypePredicate), query.Lit("car")),
//		query.Pat(query.Var("x"), query.Lit("locatedIn"), query.Var("site")),
//	})
//	for sols.Next() {
//		b := sols.Bind() // {"x": ..., "site": ...}
//	}
//
// With the Expand option, a pattern whose predicate is the literal
// store.TypePredicate and whose object is a literal class is rewritten
// through an OntologyIndex into the union over the class's subsumees — the
// paper's §4 ontology-mediated query answering as a query option instead of
// a bespoke helper (Instances is the one-pattern convenience form).
//
// Solutions follow SPARQL bag semantics: the multiplicity of a binding is
// the number of distinct triple combinations producing it (under Expand, an
// instance annotated with several subsumees of the queried class yields one
// solution per annotation). All, and Project's deduplicated projection, are
// the conveniences most callers want.
package query

import (
	"fmt"
	"strings"
)

// Term is one component of a triple pattern: a literal value or a named
// variable. The zero Term is an empty literal, which no triple can match
// (Eval reports it as an error).
type Term struct {
	// Value is the literal value, or the variable's name.
	Value string
	// IsVar distinguishes a variable from a literal.
	IsVar bool
}

// Var returns a variable term. Occurrences of the same name anywhere in a
// BGP denote the same variable and must bind to the same value.
func Var(name string) Term {
	return Term{Value: name, IsVar: true}
}

// Lit returns a literal term.
func Lit(value string) Term {
	return Term{Value: value}
}

// String renders the term in the textual form ParseBGP reads: ?name for a
// variable, the bare value for a literal.
func (t Term) String() string {
	if t.IsVar {
		return "?" + t.Value
	}
	return t.Value
}

// TriplePattern is one pattern of a BGP: a triple whose components may be
// variables. It replaces the bound-only store.Pattern for query purposes —
// a store.Pattern can only say "wildcard", a TriplePattern names the
// wildcard so patterns can join on it.
type TriplePattern struct {
	Subject, Predicate, Object Term
}

// Pat builds a triple pattern.
func Pat(subject, predicate, object Term) TriplePattern {
	return TriplePattern{Subject: subject, Predicate: predicate, Object: object}
}

// terms returns the components in subject, predicate, object order.
func (p TriplePattern) terms() [3]Term {
	return [3]Term{p.Subject, p.Predicate, p.Object}
}

// String renders the pattern in the textual form ParseBGP reads.
func (p TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s", p.Subject, p.Predicate, p.Object)
}

// BGP is a basic graph pattern: a conjunction of triple patterns joined on
// their shared variables. An empty BGP has exactly one solution, the empty
// binding (the neutral element of the join).
type BGP []TriplePattern

// Vars returns the variable names of the BGP in order of first appearance
// (subject, predicate, object within a pattern; patterns in BGP order,
// regardless of the order the planner evaluates them in).
func (b BGP) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range b {
		for _, t := range p.terms() {
			if t.IsVar && !seen[t.Value] {
				seen[t.Value] = true
				out = append(out, t.Value)
			}
		}
	}
	return out
}

// String renders the BGP in the textual form ParseBGP reads: patterns
// joined by " . ".
func (b BGP) String() string {
	parts := make([]string, len(b))
	for i, p := range b {
		parts[i] = p.String()
	}
	return strings.Join(parts, " . ")
}

// Binding is one solution of a BGP: a value for every variable.
type Binding map[string]string
