package exec_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/query/exec"
	"repro/internal/store"
)

// expandFixture builds a store plus a candidate-expansion list whose entries
// all miss: the candidates only ever appear under a different predicate, so a
// scan for (?s p candidate) spins through every candidate without producing a
// row. That keeps a sequential scan inside one Next call long enough for the
// throttled cancellation poll to fire — the regression shape for the pull
// loop forgetting to consult its Ctx.
func expandFixture(t *testing.T, candidates int) (*store.Store, exec.Pattern, []store.SymbolID) {
	t.Helper()
	s := store.New()
	s.MustAdd(store.Triple{Subject: "s0", Predicate: "p", Object: "o0"})
	expand := make([]store.SymbolID, 0, candidates)
	for i := 0; i < candidates; i++ {
		obj := fmt.Sprintf("never-%d", i)
		s.MustAdd(store.Triple{Subject: "filler", Predicate: "q", Object: obj})
		id, ok := s.SymbolID(obj)
		if !ok {
			t.Fatalf("symbol %q not interned", obj)
		}
		expand = append(expand, id)
	}
	pid, ok := s.SymbolID("p")
	if !ok {
		t.Fatal(`symbol "p" not interned`)
	}
	return s, exec.Pattern{exec.Var(0), exec.Lit(pid), exec.Var(1)}, expand
}

// TestScanSequentialCancelledMidPull pins the fix for the sequential scan
// loop: cancellation must be observed between candidate pulls inside a single
// Next call, not only on entry. With an always-true Interrupt hook the scan
// must report ErrInterrupted; before the fix it drained all candidates and
// reported clean exhaustion.
func TestScanSequentialCancelledMidPull(t *testing.T) {
	s, pat, expand := expandFixture(t, 2048)
	op := exec.NewScan(s, pat, expand, 2, 0)
	ctx := &exec.Ctx{Interrupt: func() bool { return true }}
	for {
		b, err := op.Next(ctx)
		if err != nil {
			if !errors.Is(err, exec.ErrInterrupted) {
				t.Fatalf("Next error = %v, want ErrInterrupted", err)
			}
			return
		}
		if b == nil {
			t.Fatal("scan drained to exhaustion: cancellation was never consulted inside the pull loop")
		}
	}
}

// TestScanSequentialUncancelledDrains is the control for the fixture above:
// with no Interrupt hook the same scan must run to clean exhaustion, proving
// the interrupted run stopped because of the hook and not a scan error.
func TestScanSequentialUncancelledDrains(t *testing.T) {
	s, pat, expand := expandFixture(t, 2048)
	op := exec.NewScan(s, pat, expand, 2, 0)
	ctx := &exec.Ctx{}
	for {
		b, err := op.Next(ctx)
		if err != nil {
			t.Fatalf("Next error = %v, want clean exhaustion", err)
		}
		if b == nil {
			return
		}
	}
}
