package exec

import (
	"sync/atomic"
	"time"
)

// This file is the executor's observability surface: per-operator span
// statistics an EXPLAIN trace attaches to scan and join nodes, and the
// package-wide pool round-trip counters the overhead guard and /metrics
// read. With no stat attached an operator pays one pointer load and branch
// per Next call; the pool counters are one atomic add per buffer round
// trip (per batch, never per row).

// OpStat accumulates one operator's execution statistics. The evaluator
// attaches one per operator via Instrument; the operator adds into it from
// the pulling goroutine, so the struct needs no atomics — read it after the
// stream ends (or accept a torn mid-flight read).
type OpStat struct {
	// Batches and Rows count the non-nil batches the operator returned and
	// the rows they carried.
	Batches int64 `json:"batches"`
	Rows    int64 `json:"rows"`
	// Probes counts index probes issued (joins only): one per child row per
	// QueryIDBatch call, counted once per expansion candidate.
	Probes int64 `json:"probes"`
	// Nanos is the wall time spent inside this operator's Next calls,
	// inclusive of time spent pulling its children — the EXPLAIN ANALYZE
	// convention, so a parent's time bounds its subtree's.
	Nanos int64 `json:"nanos"`
}

// instrumentable is satisfied by operators that can carry an OpStat.
type instrumentable interface{ setStat(*OpStat) }

// Instrument attaches st to op, reporting whether the operator supports
// span statistics (scans and joins do; the reasoner-only leaves do not).
// It must be called before the first Next.
func Instrument(op Op, st *OpStat) bool {
	in, ok := op.(instrumentable)
	if ok {
		in.setStat(st)
	}
	return ok
}

func (s *scan) setStat(st *OpStat) { s.stat = st }
func (j *join) setStat(st *OpStat) { j.stat = st }

// epoch anchors nanotime: time.Since on a fixed base reads the monotonic
// clock, so span durations are immune to wall-clock steps.
var epoch = time.Now()

// nanotime returns monotonic nanoseconds since package init; the difference
// of two readings is a wall duration.
func nanotime() int64 { return int64(time.Since(epoch)) }

// poolGets and poolPuts count buffer-pool round trips package-wide — every
// Get and Put against the batch, block, column, probe, triple, row and
// operator pools. The pair is the executor's recycling health signal:
// steady-state gets-puts is the working set currently pinned by live
// iterators, and a drifting gap means abandoned trees are leaking buffers
// to the garbage collector.
var poolGets, poolPuts atomic.Int64

// PoolCounters returns the cumulative buffer-pool gets and puts. The
// counters are process-wide and monotone; concurrent evaluations
// interleave, so deltas taken around one query are exact only when it runs
// alone.
func PoolCounters() (gets, puts int64) {
	return poolGets.Load(), poolPuts.Load()
}
