// Package exec is the batched (vectorized) operator runtime under the query
// layer: bindings flow through a tree of pull-based operators as columnar
// batches of dictionary ids instead of one solution at a time. The query
// evaluator (repro/internal/query.Eval) compiles a planned BGP onto this
// tree, and the materialization engine (repro/internal/reason) compiles its
// semi-naive rule bodies onto the same operators, so every layer above the
// store shares one execution engine.
//
// The operator vocabulary is small:
//
//	NewScan      a leaf reading a pattern's matches off a Source, in batches,
//	             optionally shard-parallel (ScanParts + merge)
//	NewSliceScan a leaf over an in-memory triple slice — the semi-naive
//	             engine's "one atom ranges over the delta" stage
//	NewSeed      a one-row leaf of pre-bound variables — the rederivation
//	             test's "head variables already known" stage
//	NewJoin      an index-nested-loop join probing batch-at-a-time: the
//	             child's rows become probe patterns, grouped by index shard
//	             so each shard is locked once per batch (QueryIDBatch)
//
// A Batch is columnar — one []store.SymbolID per variable slot — and owned by
// the operator that returned it: it is valid until that operator's next Next
// call, and buffers are reused throughout, so steady-state evaluation
// allocates nothing per binding. Operators tolerate and may produce empty
// batches (N == 0); callers skip them.
package exec

import (
	"errors"
	"runtime"
	"sync"

	"repro/internal/store"
)

// BatchSize is the target number of rows per batch: large enough to amortize
// per-batch costs (shard lock round trips, interrupt polls, virtual calls)
// over a thousand bindings, small enough that a batch's columns stay resident
// in cache.
const BatchSize = 1024

// ErrInterrupted is the error an operator tree reports when its Ctx's
// Interrupt hook cancelled the evaluation. repro/internal/query re-exports it
// as query.ErrInterrupted.
var ErrInterrupted = errors.New("query: evaluation interrupted")

// Batch is one columnar batch of variable bindings: Cols[slot][row] is the
// value row binds for the variable occupying slot. Only the slots the
// pipeline has bound so far hold meaningful values; a leaf fills its
// pattern's slots, each join adds its new ones. A Batch is owned by the
// operator that returned it and is valid until that operator's next Next.
type Batch struct {
	// Cols holds one column per variable slot.
	Cols [][]store.SymbolID
	// N is the number of valid rows.
	N int
	// colsArr backs Cols for the common few-slot case, and block is the one
	// pooled allocation the columns slice — one pool round trip per batch
	// instead of one per column.
	colsArr [blockSlots][]store.SymbolID
	block   *[blockSlots * BatchSize]store.SymbolID
}

// The pools below recycle the fixed-size buffers every evaluation needs —
// batch columns, probe batches, triple buffers — across operator trees.
// Evaluating a small query would otherwise pay tens of kilobytes of
// allocate-and-zero per Eval call, dwarfing the query itself; with the pools
// a drained evaluation gives every buffer back and steady-state serving
// allocates almost nothing. The pools hold pointers to fixed-size arrays,
// not slices: putting a slice into a sync.Pool boxes its header onto the
// heap, which would put an allocation right back on the per-batch path the
// pools exist to clear. Operators release their buffers when their stream
// ends (exhaustion or error); an abandoned iterator simply leaves them to
// the garbage collector.
// blockSlots is how many columns a pooled batch block carries; batches with
// more variable slots (rare, deep BGPs) fall back to per-column pooling.
const blockSlots = 8

var (
	blockPool = sync.Pool{New: func() any { return new([blockSlots * BatchSize]store.SymbolID) }}
	colPool   = sync.Pool{New: func() any { return new([BatchSize]store.SymbolID) }}
	probePool = sync.Pool{New: func() any { return new([BatchSize]store.IDPattern) }}
	tripPool  = sync.Pool{New: func() any { return new([BatchSize]store.IDTriple) }}
	rowPool   = sync.Pool{New: func() any { return new([BatchSize]int32) }}
	batchPool = sync.Pool{New: func() any { return new(Batch) }}
	scanPool  = sync.Pool{New: func() any { return new(scan) }}
	joinPool  = sync.Pool{New: func() any { return new(join) }}
)

// maxPooledCap bounds what grown buffers go back to the pools: a
// pathological fan-out would otherwise pin its peak footprint forever.
const maxPooledCap = 1 << 16

// newBatch builds a batch with nslots pooled columns of BatchSize capacity.
// The Batch struct itself is pooled too: release hands it back, and the next
// evaluation's newBatch reuses it. That is safe because a released batch is
// only ever reachable through an operator whose stream has ended, and every
// consumer (the Solutions adapter, parent joins) stops touching batches the
// moment a stream ends.
func newBatch(nslots int) *Batch {
	b := batchPool.Get().(*Batch)
	*b = Batch{}
	if nslots <= blockSlots {
		b.block = blockPool.Get().(*[blockSlots * BatchSize]store.SymbolID)
		poolGets.Add(2) // batch + block
		for i := 0; i < nslots; i++ {
			b.colsArr[i] = b.block[i*BatchSize : (i+1)*BatchSize : (i+1)*BatchSize]
		}
		b.Cols = b.colsArr[:nslots]
		return b
	}
	poolGets.Add(1 + int64(nslots)) // batch + one column each
	b.Cols = make([][]store.SymbolID, nslots)
	for i := range b.Cols {
		b.Cols[i] = colPool.Get().(*[BatchSize]store.SymbolID)[:]
	}
	return b
}

// release returns the batch's columns to the pool. The caller must not touch
// the batch afterwards.
func (b *Batch) release() {
	if b.block != nil {
		blockPool.Put(b.block)
		poolPuts.Add(1)
	} else {
		for i := range b.Cols {
			if c := b.Cols[i]; c != nil && cap(c) >= BatchSize {
				colPool.Put((*[BatchSize]store.SymbolID)(c[:BatchSize]))
				poolPuts.Add(1)
			}
		}
	}
	*b = Batch{}
	batchPool.Put(b)
	poolPuts.Add(1)
}

// takeTrips pops a pooled triple buffer of length BatchSize.
func takeTrips() []store.IDTriple {
	poolGets.Add(1)
	return tripPool.Get().(*[BatchSize]store.IDTriple)[:]
}

// putTrips returns a triple buffer to the pool (first BatchSize entries of a
// grown buffer; callers bound what they hand back with maxPooledCap).
func putTrips(buf []store.IDTriple) {
	if cap(buf) >= BatchSize {
		tripPool.Put((*[BatchSize]store.IDTriple)(buf[:BatchSize]))
		poolPuts.Add(1)
	}
}

// Ctx carries the per-evaluation state every operator of one tree shares:
// the cancellation hook and its polling throttle. The zero value (no hook)
// is an uncancellable evaluation.
type Ctx struct {
	// Interrupt is polled periodically; once it returns true the evaluation
	// stops and the tree reports ErrInterrupted. Nil means uncancellable.
	Interrupt func() bool
	ticks     uint
}

// tickMask throttles the Interrupt hook to one poll per tickMask+1 steps.
const tickMask = 255

// Cancelled polls the Interrupt hook, throttled; exported so the Solutions
// adapter in package query can share the tree's poll budget between batches.
func (c *Ctx) Cancelled() bool {
	if c.Interrupt == nil {
		return false
	}
	if c.ticks++; c.ticks&tickMask != 0 {
		return false
	}
	return c.Interrupt()
}

// Source is the batched id-level read surface operators evaluate over,
// satisfied by both *store.Store and *store.View: resumable partitioned
// scans for leaves and shard-grouped batch probes for joins.
type Source interface {
	// ScanParts splits a pattern's matches into independently drainable
	// cursors (see store.ScanParts).
	ScanParts(p store.IDPattern, max int) []*store.ScanPart
	// QueryIDBatch answers a batch of same-shape probes, each match tagged
	// with its probe's index (see store.QueryIDBatch).
	QueryIDBatch(ps []store.IDPattern, yield func(pi int, t store.IDTriple) bool)
}

// Term is one component of an operator pattern: a literal id, or a variable
// identified by its slot index in the tree's batches.
type Term struct {
	// Slot is the variable's column index, when IsVar.
	Slot int
	// ID is the literal's dictionary id, when !IsVar.
	ID store.SymbolID
	// IsVar distinguishes the two.
	IsVar bool
}

// Lit builds a literal term.
func Lit(id store.SymbolID) Term { return Term{ID: id} }

// Var builds a variable term for the given slot.
func Var(slot int) Term { return Term{Slot: slot, IsVar: true} }

// Pattern is one triple pattern over slots: subject, predicate, object.
type Pattern [3]Term

// Op is one operator of the tree. Next returns the operator's next batch —
// owned by the operator, valid until its next Next call — or (nil, nil) when
// the stream is exhausted, or an error (ErrInterrupted is the only one
// operators produce). A returned batch may have N == 0; callers skip those
// and pull again.
type Op interface {
	Next(ctx *Ctx) (*Batch, error)
}

// Close releases an operator tree's pooled buffers without draining it —
// for callers that stop early by design (the rederivation test abandons its
// pipeline at the first surviving row). It must only be called on a tree
// whose stream has NOT ended: once Next has returned nil or an error every
// operator has already released itself, and a second release would poison
// the pools. Closing is optional — an abandoned tree is garbage-collected
// like anything else — but hot abandon-early paths reclaim their buffers
// with it.
func Close(op Op) {
	for op != nil {
		switch t := op.(type) {
		case *join:
			child := t.child
			t.close()
			op = child
		case *scan:
			t.close()
			op = nil
		case *sliceScan:
			t.close()
			op = nil
		case *seed:
			if t.out != nil {
				t.out.release()
				t.out = nil
			}
			op = nil
		default:
			op = nil
		}
	}
}

// rowPlan is the compiled shape shared by every operator that turns matched
// triples into batch rows: which triple positions write which slots, and
// which positions must agree because they name the same (newly bound)
// variable twice.
type rowPlan struct {
	// outSlot[i] is the slot position i writes, or -1 when position i is a
	// literal, probe-bound, or a repeat of an earlier position.
	outSlot [3]int
	// eq lists (i, j) pairs of positions that must hold equal ids: a slot's
	// second and later occurrences within one pattern.
	eq [][2]int
}

// planRow compiles the row plan of a pattern given which slots the input
// already binds (nil for a leaf: nothing bound yet).
func planRow(pat Pattern, boundBefore []bool) rowPlan {
	rp := rowPlan{outSlot: [3]int{-1, -1, -1}}
	for i, t := range pat {
		if !t.IsVar {
			continue
		}
		if boundBefore != nil && boundBefore[t.Slot] {
			continue // probe-bound: the store already guaranteed equality
		}
		first := -1
		for j := 0; j < i; j++ {
			if pat[j].IsVar && pat[j].Slot == t.Slot && (boundBefore == nil || !boundBefore[pat[j].Slot]) {
				first = j
				break
			}
		}
		if first >= 0 {
			rp.eq = append(rp.eq, [2]int{first, i})
			continue
		}
		rp.outSlot[i] = t.Slot
	}
	return rp
}

// admit applies the plan's equality filters to one triple.
func (rp *rowPlan) admit(t store.IDTriple) bool {
	vals := [3]store.SymbolID{t.S, t.P, t.O}
	for _, pair := range rp.eq {
		if vals[pair[0]] != vals[pair[1]] {
			return false
		}
	}
	return true
}

// write writes one admitted triple's new bindings into row r of b.
func (rp *rowPlan) write(b *Batch, r int, t store.IDTriple) {
	vals := [3]store.SymbolID{t.S, t.P, t.O}
	for i, slot := range rp.outSlot {
		if slot >= 0 {
			b.Cols[slot][r] = vals[i]
		}
	}
}

// idPattern builds the literal template of a pattern: literals become bound
// components, variables wildcards.
func idPattern(pat Pattern) store.IDPattern {
	var ip store.IDPattern
	if !pat[0].IsVar {
		ip.S, ip.BoundS = pat[0].ID, true
	}
	if !pat[1].IsVar {
		ip.P, ip.BoundP = pat[1].ID, true
	}
	if !pat[2].IsVar {
		ip.O, ip.BoundO = pat[2].ID, true
	}
	return ip
}

// ParallelScanMinCount is the estimated match count below which a scan leaf
// stays sequential: splitting and merging a few hundred triples across
// goroutines costs more than it saves.
const ParallelScanMinCount = 4096

// scan is the leaf operator over a Source: it drains ScanParts cursors into
// a triple buffer and converts each fill into a columnar batch. With several
// parts and a large enough estimate it goes wide: each Next runs one wave of
// concurrent part refills (one goroutine per part, bounded by GOMAXPROCS)
// and the waves' buffers are merged into batches. Waves are synchronous — no
// goroutine outlives a Next call — so an abandoned iterator leaks nothing.
type scan struct {
	src    Source
	ip     store.IDPattern
	rp     rowPlan
	expand []store.SymbolID // candidate object ids; nil when not expanded

	parts   []*store.ScanPart
	started bool
	candIdx int
	workers int

	out      *Batch
	tbuf     []store.IDTriple
	queue    [][]store.IDTriple // filled wave buffers not yet converted
	free     [][]store.IDTriple // reusable wave buffers
	done     bool
	released bool
	stat     *OpStat // span statistics, when instrumented (see stats.go)
}

// close releases the scan's pooled buffers — and the scan itself — once its
// stream has ended. A closed operator must not be used again; the Solutions
// adapter and the join's child handling both stop at the first nil/error.
func (s *scan) close() {
	if s.released {
		return
	}
	s.released = true
	s.out.release()
	for _, pt := range s.parts {
		pt.Release()
	}
	s.parts = nil
	if s.tbuf != nil {
		putTrips(s.tbuf)
		s.tbuf = nil
	}
	for _, buf := range s.queue {
		putTrips(buf)
	}
	s.queue = nil
	for _, buf := range s.free {
		putTrips(buf)
	}
	s.free = nil
	scanPool.Put(s)
	poolPuts.Add(1)
}

// NewScan builds a leaf scanning the pattern's matches off src. nslots sizes
// the batches (the total variable count of the tree); estCount is the
// planner's estimate of the pattern's matches, which decides whether the
// scan is worth running shard-parallel; expand, when non-nil, replaces the
// object position with each candidate id in turn (the query layer's
// ontology expansion).
func NewScan(src Source, pat Pattern, expand []store.SymbolID, nslots, estCount int) Op {
	poolGets.Add(1)
	s := scanPool.Get().(*scan)
	*s = scan{
		src:    src,
		ip:     idPattern(pat),
		rp:     planRow(pat, nil),
		expand: expand,
		out:    newBatch(nslots),
	}
	if expand != nil {
		s.ip.BoundO = true
	}
	if w := runtime.GOMAXPROCS(0); w > 1 && expand == nil && estCount >= ParallelScanMinCount {
		s.workers = w
	}
	return s
}

// Next pulls the scan's next batch, accounting the pull when instrumented.
// The stat pointer and clock are captured before the inner call: the scan
// struct is pooled and may be recycled the moment next ends its stream, so
// nothing touches s afterwards.
func (s *scan) Next(ctx *Ctx) (*Batch, error) {
	st := s.stat
	if st == nil {
		return s.next(ctx)
	}
	start := nanotime()
	b, err := s.next(ctx)
	st.Nanos += nanotime() - start
	if b != nil {
		st.Batches++
		st.Rows += int64(b.N)
	}
	return b, err
}

// next is the uninstrumented pull.
func (s *scan) next(ctx *Ctx) (*Batch, error) {
	if s.done {
		return nil, nil
	}
	if ctx.Cancelled() {
		s.done = true
		s.close()
		return nil, ErrInterrupted
	}
	if !s.started {
		s.started = true
		s.openParts()
	}
	if s.workers > 1 {
		return s.nextParallel(ctx)
	}
	return s.nextSequential(ctx)
}

// openParts opens the cursors for the current candidate (or the plain
// pattern when no expansion is in play).
func (s *scan) openParts() {
	ip := s.ip
	if s.expand != nil {
		ip.O = s.expand[s.candIdx]
	}
	max := 1
	if s.workers > 1 {
		max = s.workers * 2
	}
	s.parts = s.src.ScanParts(ip, max)
}

// nextCandidate advances expansion to the next candidate class, reporting
// false when all are exhausted.
func (s *scan) nextCandidate() bool {
	if s.expand == nil || s.candIdx+1 >= len(s.expand) {
		return false
	}
	s.candIdx++
	s.openParts()
	return true
}

// nextSequential drains the parts one cursor at a time.
func (s *scan) nextSequential(ctx *Ctx) (*Batch, error) {
	if s.tbuf == nil {
		s.tbuf = takeTrips()
	}
	for {
		if ctx.Cancelled() {
			s.done = true
			s.close()
			return nil, ErrInterrupted
		}
		if len(s.parts) == 0 {
			if s.nextCandidate() {
				continue
			}
			s.done = true
			s.close()
			return nil, nil
		}
		n, exhausted := s.parts[0].NextBatch(s.tbuf)
		if exhausted {
			s.parts[0].Release()
			s.parts = s.parts[1:]
		}
		if n == 0 {
			continue
		}
		s.convert(s.tbuf[:n])
		return s.out, nil
	}
}

// nextParallel converts queued wave buffers into batches, running a new wave
// of concurrent part refills when the queue is dry.
func (s *scan) nextParallel(ctx *Ctx) (*Batch, error) {
	for {
		if len(s.queue) > 0 {
			buf := s.queue[0]
			s.queue = s.queue[1:]
			s.convert(buf)
			s.free = append(s.free, buf[:0])
			return s.out, nil
		}
		if len(s.parts) == 0 {
			s.done = true
			s.close()
			return nil, nil
		}
		if ctx.Cancelled() {
			s.done = true
			s.close()
			return nil, ErrInterrupted
		}
		// One wave: up to workers parts refill concurrently into separate
		// buffers; the wave is joined before Next returns, so cancellation
		// or abandonment cannot leak a goroutine.
		w := s.workers
		if w > len(s.parts) {
			w = len(s.parts)
		}
		type fill struct {
			buf       []store.IDTriple
			exhausted bool
		}
		results := make([]fill, w)
		donech := make(chan int, w)
		for i := 0; i < w; i++ {
			buf := s.takeBuf()
			part := s.parts[i]
			go func(i int, buf []store.IDTriple) {
				n, exhausted := part.NextBatch(buf[:BatchSize])
				results[i] = fill{buf: buf[:n], exhausted: exhausted}
				donech <- i
			}(i, buf)
		}
		for i := 0; i < w; i++ {
			<-donech
		}
		live := s.parts[:0]
		for i, pt := range s.parts {
			if i < w && results[i].exhausted {
				pt.Release()
				continue
			}
			live = append(live, pt)
		}
		s.parts = live
		for _, f := range results {
			if len(f.buf) > 0 {
				s.queue = append(s.queue, f.buf)
			} else {
				s.free = append(s.free, f.buf[:0])
			}
		}
	}
}

// takeBuf pops a reusable wave buffer or draws one from the pool.
func (s *scan) takeBuf() []store.IDTriple {
	if n := len(s.free); n > 0 {
		buf := s.free[n-1]
		s.free = s.free[:n-1]
		return buf[:BatchSize]
	}
	return takeTrips()
}

// convert turns a triple buffer into the output batch.
func (s *scan) convert(ts []store.IDTriple) {
	r := 0
	for _, t := range ts {
		if !s.rp.admit(t) {
			continue
		}
		s.rp.write(s.out, r, t)
		r++
	}
	s.out.N = r
}

// sliceScan is the leaf over an in-memory triple slice: the delta stage of
// semi-naive evaluation. Literal components filter; variable components
// bind.
type sliceScan struct {
	ts  []store.IDTriple
	lit [3]struct {
		bound bool
		id    store.SymbolID
	}
	rp       rowPlan
	out      *Batch
	pos      int
	done     bool
	released bool
}

// NewSliceScan builds a leaf over ts matching pat, with nslots-column
// batches. The slice is not copied; it must stay unchanged while the tree
// runs.
func NewSliceScan(ts []store.IDTriple, pat Pattern, nslots int) Op {
	ss := &sliceScan{ts: ts, rp: planRow(pat, nil), out: newBatch(nslots)}
	for i, t := range pat {
		if !t.IsVar {
			ss.lit[i].bound = true
			ss.lit[i].id = t.ID
		}
	}
	return ss
}

// close releases the slice scan's pooled columns.
func (ss *sliceScan) close() {
	if !ss.released {
		ss.released = true
		ss.out.release()
	}
}

// Next pulls the slice scan's next batch.
func (ss *sliceScan) Next(ctx *Ctx) (*Batch, error) {
	if ss.done {
		return nil, nil
	}
	if ctx.Cancelled() {
		ss.done = true
		ss.close()
		return nil, ErrInterrupted
	}
	r := 0
	for ss.pos < len(ss.ts) && r < BatchSize {
		t := ss.ts[ss.pos]
		ss.pos++
		vals := [3]store.SymbolID{t.S, t.P, t.O}
		ok := true
		for i := range ss.lit {
			if ss.lit[i].bound && ss.lit[i].id != vals[i] {
				ok = false
				break
			}
		}
		if !ok || !ss.rp.admit(t) {
			continue
		}
		ss.rp.write(ss.out, r, t)
		r++
	}
	if ss.pos >= len(ss.ts) && r == 0 {
		ss.done = true
		ss.close()
		return nil, nil
	}
	ss.out.N = r
	return ss.out, nil
}

// seed is the one-row leaf: a single binding of pre-set slots, used when an
// evaluation starts from known values (the rederivation test binds a rule's
// head variables before probing its body).
type seed struct {
	out  *Batch
	done bool
}

// NewSeed builds a leaf emitting exactly one row that binds slot i to
// vals[i] for every i with bound[i] set. nslots is the tree's slot count;
// vals and bound are indexed by slot and copied.
func NewSeed(vals []store.SymbolID, bound []bool, nslots int) Op {
	s := &seed{out: newBatch(nslots)}
	for i := 0; i < nslots && i < len(vals); i++ {
		if i < len(bound) && bound[i] {
			s.out.Cols[i][0] = vals[i]
		}
	}
	s.out.N = 1
	return s
}

// Next emits the single seeded row, then exhaustion.
func (s *seed) Next(ctx *Ctx) (*Batch, error) {
	if s.done {
		if s.out != nil {
			s.out.release()
			s.out = nil
		}
		return nil, nil
	}
	s.done = true
	return s.out, nil
}

// join is the batched index-nested-loop join: each child row instantiates
// the pattern into a probe (literals and already-bound slots become bound
// components), the whole batch of probes is answered by one QueryIDBatch
// call (each index shard locked once), and every match emits one output row
// — the child's bound columns copied across plus the pattern's new slots.
type join struct {
	child  Op
	src    Source
	pat    Pattern
	ipBase store.IDPattern
	rp     rowPlan
	expand []store.SymbolID

	// probeSlot[i] is the slot position i reads its probe value from, or -1
	// when the position is a literal (or expansion-bound object).
	probeSlot [3]int
	// copySlots are the slots bound before this join, copied child→out per
	// output row.
	copySlots []int

	out         *Batch
	probes      []store.IDPattern
	matchRows   []int32
	matchTrips  []store.IDTriple
	emitPos     int
	childBatch  *Batch
	done        bool
	interrupted bool
	released    bool
	stat        *OpStat // span statistics, when instrumented (see stats.go)
}

// close releases the join's pooled buffers once its stream has ended.
func (j *join) close() {
	if j.released {
		return
	}
	j.released = true
	j.out.release()
	if j.probes != nil && cap(j.probes) >= BatchSize {
		probePool.Put((*[BatchSize]store.IDPattern)(j.probes[:BatchSize]))
		poolPuts.Add(1)
	}
	j.probes = nil
	if j.matchTrips != nil && cap(j.matchTrips) >= BatchSize && cap(j.matchTrips) <= maxPooledCap {
		putTrips(j.matchTrips)
	}
	j.matchTrips = nil
	if j.matchRows != nil && cap(j.matchRows) >= BatchSize && cap(j.matchRows) <= maxPooledCap {
		rowPool.Put((*[BatchSize]int32)(j.matchRows[:BatchSize]))
		poolPuts.Add(1)
	}
	j.matchRows = nil
	j.child, j.childBatch, j.src = nil, nil, nil
	joinPool.Put(j)
	poolPuts.Add(1)
}

// NewJoin builds a join of child against src on pat. boundBefore flags, per
// slot, the variables the child's batches already bind: those become probe
// components, the rest output columns. nslots sizes the output batches;
// expand, when non-nil, probes each candidate object id in turn.
func NewJoin(child Op, src Source, pat Pattern, expand []store.SymbolID, boundBefore []bool, nslots int) Op {
	poolGets.Add(2) // join + probe buffer
	j := joinPool.Get().(*join)
	*j = join{
		child:     child,
		src:       src,
		pat:       pat,
		ipBase:    idPattern(pat),
		rp:        planRow(pat, boundBefore),
		expand:    expand,
		out:       newBatch(nslots),
		probeSlot: [3]int{-1, -1, -1},
		probes:    probePool.Get().(*[BatchSize]store.IDPattern)[:],
	}
	if expand != nil {
		j.ipBase.BoundO = true
	}
	for i, t := range pat {
		if t.IsVar && boundBefore[t.Slot] {
			j.probeSlot[i] = t.Slot
			switch i {
			case 0:
				j.ipBase.BoundS = true
			case 1:
				j.ipBase.BoundP = true
			case 2:
				j.ipBase.BoundO = true
			}
		}
	}
	for slot, b := range boundBefore {
		if b {
			j.copySlots = append(j.copySlots, slot)
		}
	}
	return j
}

// Next pulls the join's next batch, accounting the pull when instrumented.
// Nanos is inclusive of child pulls; the stat pointer and clock are captured
// before the inner call because the join struct is pooled and may be
// recycled the moment next ends its stream.
func (j *join) Next(ctx *Ctx) (*Batch, error) {
	st := j.stat
	if st == nil {
		return j.next(ctx)
	}
	start := nanotime()
	b, err := j.next(ctx)
	st.Nanos += nanotime() - start
	if b != nil {
		st.Batches++
		st.Rows += int64(b.N)
	}
	return b, err
}

// next is the uninstrumented pull.
func (j *join) next(ctx *Ctx) (*Batch, error) {
	if j.done {
		return nil, nil
	}
	for {
		if j.emitPos < len(j.matchRows) {
			return j.emit(), nil
		}
		if j.interrupted || ctx.Cancelled() {
			j.done = true
			j.close()
			return nil, ErrInterrupted
		}
		cb, err := j.child.Next(ctx)
		if err != nil {
			j.done = true
			j.close()
			return nil, err
		}
		if cb == nil {
			j.done = true
			j.close()
			return nil, nil
		}
		if cb.N == 0 {
			continue
		}
		j.childBatch = cb
		j.collect(ctx, cb)
		if j.interrupted && len(j.matchRows) == 0 {
			j.done = true
			j.close()
			return nil, ErrInterrupted
		}
	}
}

// collect probes one child batch and buffers the matches. Matches are
// buffered rather than emitted from inside the store callback so no output
// work happens under shard read-locks and so the output batch boundary is
// free to fall anywhere.
func (j *join) collect(ctx *Ctx, cb *Batch) {
	if j.matchTrips == nil {
		j.matchTrips = takeTrips()
		j.matchRows = rowPool.Get().(*[BatchSize]int32)[:]
		poolGets.Add(1)
	}
	j.matchRows = j.matchRows[:0]
	j.matchTrips = j.matchTrips[:0]
	j.emitPos = 0
	for r := 0; r < cb.N; r++ {
		p := j.ipBase
		if s := j.probeSlot[0]; s >= 0 {
			p.S = cb.Cols[s][r]
		}
		if s := j.probeSlot[1]; s >= 0 {
			p.P = cb.Cols[s][r]
		}
		if s := j.probeSlot[2]; s >= 0 {
			p.O = cb.Cols[s][r]
		}
		j.probes[r] = p
	}
	yield := func(pi int, t store.IDTriple) bool {
		if ctx.Cancelled() {
			j.interrupted = true
			return false
		}
		if !j.rp.admit(t) {
			return true
		}
		j.matchRows = append(j.matchRows, int32(pi))
		j.matchTrips = append(j.matchTrips, t)
		return true
	}
	if j.expand != nil {
		for _, cand := range j.expand {
			for r := 0; r < cb.N; r++ {
				j.probes[r].O = cand
			}
			if j.stat != nil {
				j.stat.Probes += int64(cb.N)
			}
			j.src.QueryIDBatch(j.probes[:cb.N], yield)
			if j.interrupted {
				return
			}
		}
		return
	}
	if j.stat != nil {
		j.stat.Probes += int64(cb.N)
	}
	j.src.QueryIDBatch(j.probes[:cb.N], yield)
}

// emit converts up to BatchSize buffered matches into the output batch.
func (j *join) emit() *Batch {
	n := len(j.matchRows) - j.emitPos
	if n > BatchSize {
		n = BatchSize
	}
	for k := 0; k < n; k++ {
		row := int(j.matchRows[j.emitPos+k])
		for _, slot := range j.copySlots {
			j.out.Cols[slot][k] = j.childBatch.Cols[slot][row]
		}
		j.rp.write(j.out, k, j.matchTrips[j.emitPos+k])
	}
	j.emitPos += n
	j.out.N = n
	if j.emitPos >= len(j.matchRows) {
		// Shrink pathological fan-out buffers back down so one huge probe
		// does not pin memory for the rest of the evaluation.
		const keep = 1 << 16
		if cap(j.matchTrips) > keep {
			j.matchRows = nil
			j.matchTrips = nil
		}
	}
	return j.out
}
