package query_test

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/store"
)

// ExampleParseBGP parses the textual BGP form the command lines and the
// HTTP API accept: patterns separated by '.', '?name' a variable.
func ExampleParseBGP() {
	bgp, err := query.ParseBGP("?x type car . ?x locatedIn ?site")
	if err != nil {
		panic(err)
	}
	fmt.Println(bgp)
	fmt.Println(bgp.Vars())

	_, err = query.ParseBGP("?x type")
	fmt.Println(err)
	// Output:
	// ?x type car . ?x locatedIn ?site
	// [x site]
	// query: pattern "?x type" has 2 terms, want 3 (subject predicate object)
}

// ExampleEval evaluates a two-pattern join and drains the streaming
// solutions.
func ExampleEval() {
	s := store.New()
	if _, err := s.AddAll(
		store.Triple{Subject: "beetle", Predicate: store.TypePredicate, Object: "car"},
		store.Triple{Subject: "pickup1", Predicate: store.TypePredicate, Object: "car"},
		store.Triple{Subject: "beetle", Predicate: "locatedIn", Object: "rome"},
	); err != nil {
		panic(err)
	}

	sols := query.Eval(s, query.MustParseBGP("?x type car . ?x locatedIn ?site"))
	for sols.Next() {
		x, _ := sols.Value("x")
		site, _ := sols.Value("site")
		fmt.Println(x, site)
	}
	if err := sols.Err(); err != nil {
		panic(err)
	}
	// Output:
	// beetle rome
}

// ExampleCanonical shows the cache key two spellings of one query share.
func ExampleCanonical() {
	a := query.MustParseBGP("?x type car . ?x locatedIn ?site")
	b := query.MustParseBGP("?v locatedIn ?where . ?v type car")
	fmt.Println(query.Canonical(a))
	fmt.Println(query.Canonical(a) == query.Canonical(b))
	// Output:
	// ?v0 locatedIn ?v1 . ?v0 type car
	// true
}
