package query

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

func TestCanonicalIgnoresVariableNames(t *testing.T) {
	a := MustParseBGP("?x type car . ?x locatedIn ?site")
	b := MustParseBGP("?subj type car . ?subj locatedIn ?where")
	if Canonical(a) != Canonical(b) {
		t.Fatalf("renamed variables changed the key:\n%q\n%q", Canonical(a), Canonical(b))
	}
}

func TestCanonicalIgnoresPatternOrder(t *testing.T) {
	a := MustParseBGP("?x type car . ?x locatedIn ?site . ?site type garage")
	b := MustParseBGP("?s type garage . ?v locatedIn ?s . ?v type car")
	if Canonical(a) != Canonical(b) {
		t.Fatalf("reordered patterns changed the key:\n%q\n%q", Canonical(a), Canonical(b))
	}
}

func TestCanonicalSeparatesDistinctQueries(t *testing.T) {
	cases := [][2]string{
		{"?x type car", "?x type pickup"},
		{"?x type car", "?x type car . ?x type car"},
		{"?a p ?b . ?b p ?a", "?a p ?b . ?a p ?b"},
		{"?x type car", "?x ?p car"},
		{"lit type car", "?x type car"},
	}
	for _, c := range cases {
		a, b := MustParseBGP(c[0]), MustParseBGP(c[1])
		if Canonical(a) == Canonical(b) {
			t.Errorf("distinct BGPs %q and %q share key %q", c[0], c[1], Canonical(a))
		}
	}
}

// TestCanonicalKeyIsEquivalentBGP checks soundness end to end: parsing a
// BGP's canonical key back yields a BGP with the same solution multiset (up
// to variable names) on a concrete store.
func TestCanonicalKeyIsEquivalentBGP(t *testing.T) {
	s := fill(t,
		[3]string{"a", "type", "car"},
		[3]string{"b", "type", "car"},
		[3]string{"a", "locatedIn", "rome"},
		[3]string{"b", "locatedIn", "paris"},
		[3]string{"rome", "type", "city"},
	)
	for _, text := range []string{
		"?x type car . ?x locatedIn ?site . ?site type city",
		"?x type car",
		"?x ?p ?o",
	} {
		bgp := MustParseBGP(text)
		key := Canonical(bgp)
		reparsed, err := ParseBGP(key)
		if err != nil {
			t.Fatalf("canonical key %q does not parse: %v", key, err)
		}
		if Canonical(reparsed) != key {
			t.Fatalf("canonicalization is not idempotent: %q -> %q", key, Canonical(reparsed))
		}
		want, err := Eval(s, bgp).All()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Eval(s, reparsed).All()
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("%q: key BGP has %d solutions, original %d", text, len(got), len(want))
		}
	}
}

func TestParseBGPErrorPaths(t *testing.T) {
	cases := []struct {
		name, text, wantSub string
	}{
		{"empty input", "", "no patterns"},
		{"whitespace only", "   \n\t ", "no patterns"},
		{"separators only", " . ; \n .", "no patterns"},
		{"unterminated pattern", "?x type car . ?x locatedIn", "has 2 terms"},
		{"one term", "?x", "has 1 terms"},
		{"four terms", "?x type car extra", "has 4 terms"},
		{"empty variable name", "? type car", "empty name"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bgp, err := ParseBGP(c.text)
			if err == nil {
				t.Fatalf("ParseBGP(%q) = %v, want error", c.text, bgp)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("ParseBGP(%q) error %q does not mention %q", c.text, err, c.wantSub)
			}
		})
	}
	// A variable-only triple is legal — every component may be a variable —
	// and must parse, not error.
	if _, err := ParseBGP("?s ?p ?o"); err != nil {
		t.Fatalf("variable-only pattern should parse: %v", err)
	}
}

func TestInterruptStopsEvaluation(t *testing.T) {
	// A store big enough that the full cross product would take a while.
	triples := make([][3]string, 0, 2000)
	for i := 0; i < 2000; i++ {
		triples = append(triples, [3]string{"s" + strconv.Itoa(i%500), "p", "o" + strconv.Itoa(i%40)})
	}
	s := fill(t, triples...)

	// Cancelled from the start: the iterator must terminate quickly and
	// report ErrInterrupted even though the BGP has a huge solution space.
	bgp := MustParseBGP("?a p ?b . ?c p ?d . ?e p ?f")
	sols := Eval(s, bgp, Interrupt(func() bool { return true }))
	n := 0
	for sols.Next() {
		n++
		if n > 4*interruptTickMask {
			t.Fatal("iterator kept producing solutions long after cancellation")
		}
	}
	if !errors.Is(sols.Err(), ErrInterrupted) {
		t.Fatalf("Err = %v, want ErrInterrupted", sols.Err())
	}

	// Never cancelled: the hook must not change the result set.
	small := fill(t, [3]string{"a", "type", "car"}, [3]string{"b", "type", "car"})
	got := bindings(t, Eval(small, MustParseBGP("?x type car"), Interrupt(func() bool { return false })))
	want := bindings(t, Eval(small, MustParseBGP("?x type car")))
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Interrupt(false) changed the solutions: %v vs %v", got, want)
	}
}

var canonicalSink string

func BenchmarkCanonical(b *testing.B) {
	bgp := MustParseBGP("?x type car . ?x locatedIn ?site . ?site type city . ?site partOf ?country")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		canonicalSink = Canonical(bgp)
	}
}
