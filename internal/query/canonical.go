package query

import (
	"sort"
	"strconv"
	"strings"
)

// Canonical returns a canonical string key for the BGP, built for result
// caches: two BGPs with the same key are guaranteed to have identical
// solution multisets up to variable names (soundness), and most syntactic
// re-spellings of one query — renamed variables, reordered patterns — map to
// the same key (best-effort completeness; canonicalization never solves
// graph isomorphism, so some equivalent BGPs keep distinct keys and merely
// miss a cache hit).
//
// The key is computed in three steps: patterns are first ordered by their
// variable-erased skeleton (literals kept, every variable masked to "?"),
// then variables are renamed to ?v0, ?v1, … in order of first appearance
// over that ordering, and finally the renamed patterns are sorted once more
// so renaming ties cannot leak source order into the key. Patterns are
// joined with " . ", the textual form ParseBGP reads — a canonical key of a
// satisfiable BGP is itself a parseable BGP.
//
// Canonical is a pure function of the BGP value and safe for concurrent use.
func Canonical(bgp BGP) string {
	key, _ := CanonicalWithVars(bgp)
	return key
}

// CanonicalWithVars is Canonical returning, alongside the key, the BGP's
// original variable names in canonical order: vars[i] is the source name
// the key spells ?v<i>. A result cache that replays responses verbatim
// needs the mapping in its key — two queries may share a canonical form yet
// name their variables differently, and a replayed response must bind the
// names the request used.
func CanonicalWithVars(bgp BGP) (string, []string) {
	masked := make([]struct {
		key string
		pat TriplePattern
	}, len(bgp))
	for i, p := range bgp {
		masked[i].key = maskedForm(p)
		masked[i].pat = p
	}
	sort.SliceStable(masked, func(i, j int) bool { return masked[i].key < masked[j].key })

	rename := make(map[string]string, 4)
	var vars []string
	renamed := make([]string, len(masked))
	for i, m := range masked {
		renamed[i] = renamedForm(m.pat, rename, &vars)
	}
	sort.Strings(renamed)
	return strings.Join(renamed, " . "), vars
}

// maskedForm renders the pattern with every variable replaced by a bare "?",
// the variable-name-independent skeleton the first sort orders on.
func maskedForm(p TriplePattern) string {
	var b strings.Builder
	for i, t := range p.terms() {
		if i > 0 {
			b.WriteByte(' ')
		}
		if t.IsVar {
			b.WriteByte('?')
		} else {
			b.WriteString(t.Value)
		}
	}
	return b.String()
}

// renamedForm renders the pattern with variables renamed through the shared
// table, assigning ?v0, ?v1, … in order of first appearance and recording
// each source name in vars at its assigned index.
func renamedForm(p TriplePattern, rename map[string]string, vars *[]string) string {
	var b strings.Builder
	for i, t := range p.terms() {
		if i > 0 {
			b.WriteByte(' ')
		}
		if t.IsVar {
			name, ok := rename[t.Value]
			if !ok {
				name = "?v" + strconv.Itoa(len(rename))
				rename[t.Value] = name
				*vars = append(*vars, t.Value)
			}
			b.WriteString(name)
		} else {
			b.WriteString(t.Value)
		}
	}
	return b.String()
}
