package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/store"
	"repro/internal/workload"
)

// fill builds a store from (s, p, o) string triples.
func fill(t testing.TB, triples ...[3]string) *store.Store {
	t.Helper()
	s := store.New()
	batch := make([]store.Triple, len(triples))
	for i, tr := range triples {
		batch[i] = store.Triple{Subject: tr[0], Predicate: tr[1], Object: tr[2]}
	}
	if _, err := s.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	return s
}

// bindings drains sols and canonicalizes the solutions for comparison:
// "k=v k=v" strings sorted by variable name, the whole multiset sorted.
func bindings(t testing.TB, sols *Solutions) []string {
	t.Helper()
	all, err := sols.All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	return canonicalize(all)
}

func canonicalize(all []Binding) []string {
	out := make([]string, 0, len(all))
	for _, b := range all {
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		row := ""
		for _, k := range keys {
			row += k + "=" + b[k] + " "
		}
		out = append(out, row)
	}
	sort.Strings(out)
	return out
}

func TestSinglePattern(t *testing.T) {
	s := fill(t,
		[3]string{"a", "type", "car"},
		[3]string{"b", "type", "car"},
		[3]string{"c", "type", "dog"},
	)
	got, err := Eval(s, MustParseBGP("?x type car")).Project("x")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Project = %v, want %v", got, want)
	}
	// All three components variable: every triple, once.
	all, err := Eval(s, MustParseBGP("?s ?p ?o")).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("?s ?p ?o yielded %d solutions, want 3", len(all))
	}
}

func TestJoin(t *testing.T) {
	s := fill(t,
		[3]string{"a", "type", "car"},
		[3]string{"b", "type", "car"},
		[3]string{"c", "type", "dog"},
		[3]string{"a", "locatedIn", "garage"},
		[3]string{"c", "locatedIn", "garage"},
		[3]string{"b", "locatedIn", "kennel"},
		[3]string{"garage", "partOf", "house"},
	)
	got := bindings(t, Eval(s, MustParseBGP("?x type car . ?x locatedIn ?w")))
	want := []string{"w=garage x=a ", "w=kennel x=b "}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("2-pattern join = %v, want %v", got, want)
	}
	// Three patterns, chained variables.
	got = bindings(t, Eval(s, MustParseBGP("?x type car . ?x locatedIn ?w . ?w partOf ?h")))
	want = []string{"h=house w=garage x=a "}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("3-pattern join = %v, want %v", got, want)
	}
}

func TestRepeatedVariableWithinPattern(t *testing.T) {
	s := fill(t,
		[3]string{"a", "sameAs", "a"},
		[3]string{"a", "sameAs", "b"},
		[3]string{"b", "sameAs", "b"},
	)
	got, err := Eval(s, MustParseBGP("?x sameAs ?x")).Project("x")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(got, want) {
		t.Errorf("?x sameAs ?x = %v, want %v", got, want)
	}
}

func TestUnsatisfiableAndEmpty(t *testing.T) {
	s := fill(t, [3]string{"a", "type", "car"})
	// A literal the store has never seen: no solutions, no error.
	if got := bindings(t, Eval(s, MustParseBGP("?x type spaceship"))); len(got) != 0 {
		t.Errorf("unsatisfiable pattern yielded %v", got)
	}
	// One unsatisfiable pattern kills the whole conjunction.
	if got := bindings(t, Eval(s, MustParseBGP("?x type car . ?x made-of unobtainium"))); len(got) != 0 {
		t.Errorf("conjunction with unsatisfiable pattern yielded %v", got)
	}
	// Empty store.
	if got := bindings(t, Eval(store.New(), MustParseBGP("?s ?p ?o"))); len(got) != 0 {
		t.Errorf("empty store yielded %v", got)
	}
	// Empty BGP: exactly one empty solution.
	sols := Eval(s, nil)
	n := 0
	for sols.Next() {
		n++
		if len(sols.Bind()) != 0 {
			t.Errorf("empty BGP solution = %v, want empty", sols.Bind())
		}
	}
	if n != 1 || sols.Err() != nil {
		t.Errorf("empty BGP: %d solutions, err %v; want exactly 1, nil", n, sols.Err())
	}
}

func TestErrors(t *testing.T) {
	s := fill(t, [3]string{"a", "type", "car"})
	sols := Eval(s, BGP{Pat(Var("x"), Lit("type"), Lit(""))})
	if sols.Next() {
		t.Error("Next succeeded on a BGP with an empty literal")
	}
	if sols.Err() == nil {
		t.Error("empty literal not reported through Err")
	}
	sols = Eval(s, BGP{Pat(Var(""), Lit("type"), Lit("car"))})
	if sols.Next() || sols.Err() == nil {
		t.Error("empty variable name not reported through Err")
	}
	if _, err := Eval(s, MustParseBGP("?x type car")).Project("nope"); err == nil {
		t.Error("unknown projection variable not reported")
	}
}

func TestValueAndVars(t *testing.T) {
	s := fill(t, [3]string{"a", "type", "car"}, [3]string{"a", "locatedIn", "garage"})
	sols := Eval(s, MustParseBGP("?x type car . ?x locatedIn ?w"))
	if got, want := sols.Vars(), []string{"x", "w"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Vars = %v, want %v (BGP order, not plan order)", got, want)
	}
	if _, ok := sols.Value("x"); ok {
		t.Error("Value answered before the first Next")
	}
	for sols.Next() {
		if v, ok := sols.Value("x"); !ok || v != "a" {
			t.Errorf("Value(x) = %q, %v", v, ok)
		}
		if v, ok := sols.Value("w"); !ok || v != "garage" {
			t.Errorf("Value(w) = %q, %v", v, ok)
		}
		if _, ok := sols.Value("zzz"); ok {
			t.Error("Value answered for an unknown variable")
		}
	}
}

func TestParseBGP(t *testing.T) {
	bgp, err := ParseBGP("?x type car .\n ?x locatedIn ?w; garage partOf house")
	if err != nil {
		t.Fatal(err)
	}
	if len(bgp) != 3 {
		t.Fatalf("parsed %d patterns, want 3", len(bgp))
	}
	if got := bgp.String(); got != "?x type car . ?x locatedIn ?w . garage partOf house" {
		t.Errorf("String = %q", got)
	}
	for _, bad := range []string{"", "a b", "a b c d", "?x type ?"} {
		if _, err := ParseBGP(bad); err == nil {
			t.Errorf("ParseBGP(%q) succeeded, want error", bad)
		}
	}
}

// expandedReference computes ontology-expanded class retrieval straight off
// the store's raw reads — the algorithm the retired InstancesOfExpanded
// helper ran — as the independent reference the Expand option is checked
// against.
func expandedReference(s *store.Store, oi *store.OntologyIndex, class string) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range oi.Subsumees(class) {
		s.ForEachSubject(store.TypePredicate, c, func(subj string) bool {
			if !seen[subj] {
				seen[subj] = true
				out = append(out, subj)
			}
			return true
		})
	}
	sort.Strings(out)
	return out
}

// TestExpansionMatchesRawReadsOnE5Corpus is the acceptance check for the
// Expand option: on the E5 corpus, the one-pattern expanded query must
// return exactly the subsumee-union the store's raw POS reads produce, for
// every class, at every drift level; and the unexpanded query must match
// Store.Subjects.
func TestExpansionMatchesRawReadsOnE5Corpus(t *testing.T) {
	for _, drift := range []float64{0, 0.2, 0.5} {
		rng := rand.New(rand.NewSource(5))
		corpus := workload.SyntheticCorpus(rng, workload.CorpusParams{
			Hierarchy:         workload.HierarchyParams{Classes: 40, MaxParents: 2},
			InstancesPerClass: 25,
			Drift:             drift,
		})
		oi, err := store.NewOntologyIndex(corpus.TBox)
		if err != nil {
			t.Fatal(err)
		}
		for _, class := range corpus.Classes {
			bgp := BGP{Pat(Var("x"), Lit(store.TypePredicate), Lit(class))}
			expanded, err := Eval(corpus.Store, bgp, Expand(oi)).Project("x")
			if err != nil {
				t.Fatal(err)
			}
			if want := expandedReference(corpus.Store, oi, class); !reflect.DeepEqual(expanded, want) {
				t.Fatalf("drift %.1f, class %s: expanded query = %v, raw reads = %v", drift, class, expanded, want)
			}
			plain, err := Eval(corpus.Store, bgp).Project("x")
			if err != nil {
				t.Fatal(err)
			}
			if want := corpus.Store.Subjects(store.TypePredicate, class); !reflect.DeepEqual(plain, want) {
				t.Fatalf("drift %.1f, class %s: plain query = %v, raw reads = %v", drift, class, plain, want)
			}
		}
	}
}

func TestExpansionWithVariableObjectIsLiteral(t *testing.T) {
	s := fill(t,
		[3]string{"a", "type", "car"},
		[3]string{"b", "type", "roadvehicle"},
	)
	// Build a tiny index through the real classifier so car ⊑ roadvehicle.
	corpus := workload.SyntheticCorpus(rand.New(rand.NewSource(1)), workload.CorpusParams{
		Hierarchy:         workload.HierarchyParams{Classes: 5, MaxParents: 1},
		InstancesPerClass: 1,
	})
	oi, err := store.NewOntologyIndex(corpus.TBox)
	if err != nil {
		t.Fatal(err)
	}
	// With a variable object there is no class to expand: the pattern matches
	// the stored annotations literally, binding the annotation class.
	got, err := Eval(s, MustParseBGP("?x type ?c"), Expand(oi)).Project("c")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"car", "roadvehicle"}; !reflect.DeepEqual(got, want) {
		t.Errorf("variable-object type pattern = %v, want %v", got, want)
	}
}

// TestPlanOrderIndependence checks that the selectivity-ordered plan returns
// the same solution multiset as every permutation of the same BGP.
func TestPlanOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var triples [][3]string
	for i := 0; i < 400; i++ {
		triples = append(triples, [3]string{
			fmt.Sprintf("s%d", rng.Intn(40)),
			fmt.Sprintf("p%d", rng.Intn(4)),
			fmt.Sprintf("o%d", rng.Intn(25)),
		})
	}
	s := fill(t, triples...)
	base := MustParseBGP("?a p0 ?b . ?b p1 ?c . ?a p2 ?c")
	want := bindings(t, Eval(s, base))
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		bgp := make(BGP, len(base))
		for i, j := range perm {
			bgp[i] = base[j]
		}
		if got := bindings(t, Eval(s, bgp)); !reflect.DeepEqual(got, want) {
			t.Errorf("permutation %v: %d solutions, want %d", perm, len(got), len(want))
		}
	}
}

// TestConcurrentEvalAndWriters backs the Solutions concurrency claim: joins
// running against a store under concurrent ingest must never race or error
// (run under -race in CI). Solution sets are only checked for sanity — the
// docs promise consistency only against a quiescent store.
func TestConcurrentEvalAndWriters(t *testing.T) {
	s := store.New()
	base := make([]store.Triple, 0, 2000)
	for i := 0; i < 1000; i++ {
		inst := fmt.Sprintf("inst-%d", i)
		base = append(base,
			store.Triple{Subject: inst, Predicate: store.TypePredicate, Object: fmt.Sprintf("class-%d", i%20)},
			store.Triple{Subject: inst, Predicate: "locatedIn", Object: fmt.Sprintf("site-%d", i%13)},
		)
	}
	if _, err := s.AddBatch(base); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			inst := fmt.Sprintf("extra-%d", i)
			s.MustAdd(store.Triple{Subject: inst, Predicate: store.TypePredicate, Object: "class-1"})
			s.MustAdd(store.Triple{Subject: inst, Predicate: "locatedIn", Object: "site-1"})
		}
	}()
	bgp := MustParseBGP("?x type class-1 . ?x locatedIn ?w")
	for i := 0; i < 50; i++ {
		sols := Eval(s, bgp)
		n := 0
		for sols.Next() {
			n++
		}
		if err := sols.Err(); err != nil {
			t.Fatal(err)
		}
		if n < 50 { // 1000/20 instances of class-1 were present before the writer started
			t.Fatalf("iteration %d: %d solutions, want at least the 50 pre-existing", i, n)
		}
	}
	close(stop)
	wg.Wait()
}
