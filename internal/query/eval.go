package query

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/store"
)

// ErrInterrupted is the error a Solutions iterator reports through Err when
// an Interrupt hook cancelled the evaluation before it was exhausted.
// Callers wrapping a context deadline should match it with errors.Is.
var ErrInterrupted = errors.New("query: evaluation interrupted")

// Source is the id-level store surface Eval evaluates over: the hooks of
// internal/store's ids.go, satisfied by both *store.Store (a single store)
// and *store.View (the asserted∪inferred union of a materialized store). The
// evaluator and planner only ever touch these five methods, so anything that
// exposes dictionary-encoded pattern reads with cardinality statistics can
// sit under a BGP.
type Source interface {
	// SymbolID returns the dictionary id of a name; ok is false for names
	// never interned (a pattern bound to one matches nothing).
	SymbolID(name string) (store.SymbolID, bool)
	// QueryIDFunc streams every triple matching the id pattern to yield,
	// stopping early when yield returns false.
	QueryIDFunc(p store.IDPattern, yield func(store.IDTriple) bool)
	// CountID returns the number of triples matching the id pattern.
	CountID(p store.IDPattern) int
	// StatsID returns cardinality statistics for the id pattern.
	StatsID(p store.IDPattern) store.IDStats
	// NewResolver returns a resolver from ids back to names.
	NewResolver() store.Resolver
}

// config collects Eval's options.
type config struct {
	oi           *store.OntologyIndex
	materialized bool
	interrupt    func() bool
}

// Option configures one Eval call.
type Option func(*config)

// Expand makes type-patterns ontology-aware: every pattern whose predicate is
// the literal store.TypePredicate and whose object is a literal class is
// rewritten into the union of the same pattern over each of the class's
// subsumees (the class itself included), so asking for "roadvehicle" also
// retrieves subjects annotated "car" or "pickup". Patterns whose object is a
// variable are not rewritten — there is no class to expand — and match type
// annotations literally.
func Expand(oi *store.OntologyIndex) Option {
	return func(c *config) { c.oi = oi }
}

// Interrupt installs a cancellation hook on the evaluation: cancelled is
// polled periodically (every few hundred probe steps, so long scans cannot
// run away unobserved) and, once it returns true, the iteration stops —
// Next returns false and Err reports ErrInterrupted. The hook is how a
// server maps a request context's deadline onto an in-flight join:
//
//	sols := query.Eval(src, bgp, query.Interrupt(func() bool {
//		return ctx.Err() != nil
//	}))
//
// cancelled is called from whatever goroutine drives Next (never
// concurrently with itself) and must be cheap and non-blocking; a closure
// over a context or an atomic flag both qualify. A nil hook means the
// evaluation is uncancellable, the zero-cost default.
func Interrupt(cancelled func() bool) Option {
	return func(c *config) { c.interrupt = cancelled }
}

// Materialized marks the source as a materialized store — one whose
// entailments a reasoner (repro/internal/reason) has already derived into the
// triples themselves — and therefore suppresses Expand rewriting: a type
// pattern is evaluated literally, because the subsumee annotations Expand
// would union over are already present as inferred type triples. It takes
// precedence over Expand, so callers can pass both unconditionally and let
// the presence of a reasoner decide (reason's equivalence tests prove the two
// modes return identical answers on the E5 corpus).
func Materialized() Option {
	return func(c *config) { c.materialized = true }
}

// comp is one compiled pattern component: a literal resolved to its
// dictionary id, or a reference into the variable table.
type comp struct {
	isVar  bool
	varIdx int            // variable-table index, when isVar
	id     store.SymbolID // literal id, when !isVar
}

// level is one pattern of the join, in evaluation order: its compiled
// components, its expansion candidates, and the match buffer the current
// probe filled. buf and local are reused across probes, so steady-state
// iteration allocates nothing.
type level struct {
	comps  [3]comp
	expand []store.SymbolID // expanded object candidates; nil when not expanded
	yield  func(store.IDTriple) bool
	buf    []store.IDTriple
	pos    int
	local  []int // variable indexes bound by the current candidate
}

// Solutions streams the solutions of a BGP. The iteration protocol is
//
//	sols := query.Eval(s, bgp)
//	for sols.Next() {
//		... sols.Bind() or sols.Value(...) ...
//	}
//	if err := sols.Err(); err != nil { ... }
//
// A Solutions is single-use and not safe for concurrent use. It holds no
// locks between Next calls; each probe reads the store under the store's own
// shard read-locks, so a concurrent writer interleaving with the iteration
// may be reflected in some probes and not others (the solution set is only
// guaranteed consistent against a quiescent store).
type Solutions struct {
	src     Source
	res     store.Resolver
	vars    []string
	levels  []level
	bind    []store.SymbolID // current value per variable
	bound   []bool           // whether the variable is currently bound
	depth   int
	err     error
	done    bool
	started bool
	// interrupt is the Interrupt option's cancellation hook; ticks throttles
	// how often it is polled.
	interrupt func() bool
	ticks     uint
}

// interruptTickMask throttles the Interrupt hook: it is polled once every
// interruptTickMask+1 probe steps, cheap enough to sit on the innermost
// loops while still bounding how long a cancelled evaluation keeps running.
const interruptTickMask = 255

// cancelled polls the Interrupt hook (throttled) and, when it fires, ends
// the iteration with ErrInterrupted.
func (sol *Solutions) cancelled() bool {
	if sol.interrupt == nil || sol.done {
		return false
	}
	if sol.ticks++; sol.ticks&interruptTickMask != 0 {
		return false
	}
	if !sol.interrupt() {
		return false
	}
	sol.err = ErrInterrupted
	sol.done = true
	return true
}

// Eval plans and evaluates a BGP over a Source — a *store.Store, or a
// *store.View when querying a materialized union — returning a Solutions
// iterator. Planning is selectivity-ordered: each pattern's cardinality and
// per-component distinct widths with only its literals bound are read off
// the source's indexes (StatsID), and the join order minimizing the
// estimated total work under a cardinality-propagation model is chosen —
// exhaustively for BGPs of up to 6 patterns, greedily cheapest-next-probe
// beyond — so evaluation starts from the most selective pattern and follows
// shared variables through their most selective probe direction instead of
// degenerating into cartesian products. Evaluation is an index-nested-loop
// join at the dictionary-id level: every probe substitutes the bindings
// accumulated so far and answers from the SPO/POS/OSP permutation family
// those bound components select.
//
// A BGP that mentions an empty-named variable or an empty literal is
// reported through Err; a literal the store has never seen simply yields no
// solutions. An empty BGP yields exactly one empty solution.
func Eval(src Source, bgp BGP, opts ...Option) *Solutions {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.materialized {
		cfg.oi = nil
	}
	sol := &Solutions{src: src, res: src.NewResolver(), vars: bgp.Vars(), interrupt: cfg.interrupt}
	varIdx := make(map[string]int, len(sol.vars))
	for i, name := range sol.vars {
		varIdx[name] = i
	}
	sol.bind = make([]store.SymbolID, len(sol.vars))
	sol.bound = make([]bool, len(sol.vars))

	unsat := false
	levels := make([]level, 0, len(bgp))
	for _, p := range bgp {
		var lv level
		expanded := cfg.oi != nil && !p.Predicate.IsVar && p.Predicate.Value == store.TypePredicate && !p.Object.IsVar
		for i, t := range p.terms() {
			if t.IsVar {
				if t.Value == "" {
					sol.err = fmt.Errorf("query: pattern (%s) names a variable with an empty name", p)
					sol.done = true
					return sol
				}
				lv.comps[i] = comp{isVar: true, varIdx: varIdx[t.Value]}
				continue
			}
			if t.Value == "" {
				sol.err = fmt.Errorf("query: pattern (%s) has an empty literal; no triple can match it", p)
				sol.done = true
				return sol
			}
			if expanded && i == 2 {
				// The object literal is replaced by the expansion candidates
				// below; the zero comp is never consulted.
				continue
			}
			id, ok := src.SymbolID(t.Value)
			if !ok {
				unsat = true
			}
			lv.comps[i] = comp{id: id}
		}
		if expanded {
			for _, sub := range cfg.oi.Subsumees(p.Object.Value) {
				if id, ok := src.SymbolID(sub); ok {
					lv.expand = append(lv.expand, id)
				}
			}
			if len(lv.expand) == 0 {
				unsat = true
			}
		}
		levels = append(levels, lv)
	}
	if unsat {
		sol.done = true
		return sol
	}
	sol.levels = plan(src, levels, len(sol.vars))
	for i := range sol.levels {
		lv := &sol.levels[i]
		lv.yield = func(t store.IDTriple) bool {
			if sol.cancelled() {
				return false
			}
			lv.buf = append(lv.buf, t)
			return true
		}
	}
	return sol
}

// pstats are one pattern's planning statistics with only its literal
// components bound: the match count and, per component position, the number
// of distinct values the position takes among the matches (expanded patterns
// aggregate over their candidate classes).
type pstats struct {
	count    float64
	distinct [3]float64
}

// levelStats reads the pattern's statistics off the store's indexes.
func levelStats(src Source, lv *level) pstats {
	var ip store.IDPattern
	if !lv.comps[0].isVar {
		ip.S, ip.BoundS = lv.comps[0].id, true
	}
	if !lv.comps[1].isVar {
		ip.P, ip.BoundP = lv.comps[1].id, true
	}
	if lv.expand != nil {
		ip.BoundO = true
		var st pstats
		st.distinct[1] = 1
		for _, oid := range lv.expand {
			ip.O = oid
			is := src.StatsID(ip)
			st.count += float64(is.Count)
			st.distinct[0] += float64(is.DistinctS)
			st.distinct[2]++
		}
		return st
	}
	if !lv.comps[2].isVar {
		ip.O, ip.BoundO = lv.comps[2].id, true
	}
	is := src.StatsID(ip)
	return pstats{
		count:    float64(is.Count),
		distinct: [3]float64{float64(is.DistinctS), float64(is.DistinctP), float64(is.DistinctO)},
	}
}

// probeEstimate estimates how many matches one probe of the pattern yields
// given which variables the plan has already bound: the pattern's count,
// divided by the distinct width of every join-bound position. A position
// bound to one concrete value selects about count/distinct of the matches —
// a subject-bound probe into a predicate pattern is near a point lookup,
// while an object-bound probe into the same pattern keeps count/|objects|.
func probeEstimate(lv *level, st pstats, bound []bool) float64 {
	m := st.count
	for i, c := range lv.comps {
		if c.isVar && bound[c.varIdx] {
			if d := st.distinct[i]; d > 1 {
				m /= d
			}
		}
	}
	return m
}

// planCost simulates evaluating the levels in the given order, propagating
// the estimated number of partial solutions: each step costs one probe plus
// its estimated matches per surviving partial solution. bound is scratch
// space (one flag per variable), reset here.
func planCost(levels []level, stats []pstats, order []int, bound []bool) float64 {
	for i := range bound {
		bound[i] = false
	}
	solutions, work := 1.0, 0.0
	for _, idx := range order {
		m := probeEstimate(&levels[idx], stats[idx], bound)
		work += solutions * (1 + m)
		solutions *= m
		for _, c := range levels[idx].comps {
			if c.isVar {
				bound[c.varIdx] = true
			}
		}
	}
	return work
}

// maxExhaustive is the largest BGP whose join orders are searched
// exhaustively (6! = 720 candidate plans); larger BGPs fall back to a greedy
// cheapest-next-step ordering under the same cost model.
const maxExhaustive = 6

// plan orders the levels for the join by estimated total work under the
// count/distinct cost model: selectivity-ordered, cheapest plan first. The
// model naturally evaluates selective patterns before unselective ones and
// follows join-bound variables through their most selective probe direction;
// disconnected pattern groups end up cheapest-first, keeping the unavoidable
// cartesian product as small as possible.
func plan(src Source, levels []level, nvars int) []level {
	n := len(levels)
	if n <= 1 {
		return levels
	}
	stats := make([]pstats, n)
	for i := range levels {
		stats[i] = levelStats(src, &levels[i])
	}
	bound := make([]bool, nvars)
	var best []int
	if n <= maxExhaustive {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		bestCost := math.Inf(1)
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				if c := planCost(levels, stats, perm, bound); c < bestCost {
					bestCost = c
					best = append(best[:0], perm...)
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
	} else {
		used := make([]bool, n)
		solutions := 1.0
		for len(best) < n {
			bi, bc := -1, math.Inf(1)
			for i := 0; i < n; i++ {
				if used[i] {
					continue
				}
				if c := solutions * (1 + probeEstimate(&levels[i], stats[i], bound)); c < bc {
					bi, bc = i, c
				}
			}
			used[bi] = true
			solutions *= probeEstimate(&levels[bi], stats[bi], bound)
			best = append(best, bi)
			for _, c := range levels[bi].comps {
				if c.isVar {
					bound[c.varIdx] = true
				}
			}
		}
	}
	ordered := make([]level, 0, n)
	for _, idx := range best {
		ordered = append(ordered, levels[idx])
	}
	return ordered
}

// probe fills level d's match buffer: the bindings accumulated at shallower
// levels are substituted into the pattern and the store streams the matching
// id triples straight into the reused buffer.
func (sol *Solutions) probe(d int) {
	lv := &sol.levels[d]
	lv.buf = lv.buf[:0]
	lv.pos = -1
	var ip store.IDPattern
	if c := lv.comps[0]; c.isVar {
		if sol.bound[c.varIdx] {
			ip.S, ip.BoundS = sol.bind[c.varIdx], true
		}
	} else {
		ip.S, ip.BoundS = c.id, true
	}
	if c := lv.comps[1]; c.isVar {
		if sol.bound[c.varIdx] {
			ip.P, ip.BoundP = sol.bind[c.varIdx], true
		}
	} else {
		ip.P, ip.BoundP = c.id, true
	}
	if lv.expand != nil {
		ip.BoundO = true
		for _, oid := range lv.expand {
			ip.O = oid
			sol.src.QueryIDFunc(ip, lv.yield)
		}
		return
	}
	if c := lv.comps[2]; c.isVar {
		if sol.bound[c.varIdx] {
			ip.O, ip.BoundO = sol.bind[c.varIdx], true
		}
	} else {
		ip.O, ip.BoundO = c.id, true
	}
	sol.src.QueryIDFunc(ip, lv.yield)
}

// tryBind applies the candidate at lv.pos to the binding state, recording
// which variables it newly bound so they can be rolled back. It fails — with
// the state unchanged — when the candidate conflicts with an existing
// binding, which is how repeated variables within one pattern (e.g. ?x p ?x)
// are enforced.
func (sol *Solutions) tryBind(lv *level) bool {
	t := lv.buf[lv.pos]
	vals := [3]store.SymbolID{t.S, t.P, t.O}
	lv.local = lv.local[:0]
	for i := range lv.comps {
		c := lv.comps[i]
		if !c.isVar {
			continue
		}
		if sol.bound[c.varIdx] {
			if sol.bind[c.varIdx] != vals[i] {
				sol.unbind(lv)
				return false
			}
			continue
		}
		sol.bind[c.varIdx] = vals[i]
		sol.bound[c.varIdx] = true
		lv.local = append(lv.local, c.varIdx)
	}
	return true
}

// unbind rolls back the variables the level's current candidate bound.
func (sol *Solutions) unbind(lv *level) {
	for _, idx := range lv.local {
		sol.bound[idx] = false
	}
	lv.local = lv.local[:0]
}

// Next advances to the next solution, reporting whether one exists. After
// Next returns true, Bind and Value read the solution; after it returns
// false, Err reports whether the iteration ended in an error.
func (sol *Solutions) Next() bool {
	if sol.err != nil || sol.done {
		return false
	}
	if !sol.started {
		sol.started = true
		if len(sol.levels) == 0 {
			// The empty BGP: one empty solution, then exhaustion.
			sol.done = true
			return true
		}
		sol.depth = 0
		sol.probe(0)
	} else {
		sol.unbind(&sol.levels[sol.depth])
	}
	d := sol.depth
	for {
		if sol.cancelled() || sol.err != nil {
			return false
		}
		lv := &sol.levels[d]
		advanced := false
		for lv.pos+1 < len(lv.buf) {
			lv.pos++
			if sol.tryBind(lv) {
				advanced = true
				break
			}
		}
		if !advanced {
			d--
			if d < 0 {
				sol.done = true
				return false
			}
			sol.unbind(&sol.levels[d])
			continue
		}
		if d == len(sol.levels)-1 {
			sol.depth = d
			return true
		}
		d++
		sol.probe(d)
	}
}

// Err returns the error that ended the iteration, or nil. The only errors
// today are malformed BGPs (empty literals, empty variable names), unknown
// projection variables, and ErrInterrupted when an Interrupt hook cancelled
// the evaluation; evaluation itself cannot fail.
func (sol *Solutions) Err() error {
	return sol.err
}

// Vars returns the BGP's variable names in order of first appearance.
func (sol *Solutions) Vars() []string {
	return append([]string(nil), sol.vars...)
}

// Value returns the current solution's value for one variable without
// allocating. It is only meaningful after Next returned true; ok is false
// for unknown variables or outside a solution.
func (sol *Solutions) Value(name string) (string, bool) {
	for i, v := range sol.vars {
		if v == name {
			if !sol.bound[i] {
				return "", false
			}
			return sol.res.Name(sol.bind[i]), true
		}
	}
	return "", false
}

// Bind materializes the current solution as a fresh Binding. It is only
// meaningful after Next returned true. Use Value to read a single variable
// without the allocation.
func (sol *Solutions) Bind() Binding {
	b := make(Binding, len(sol.vars))
	for i, name := range sol.vars {
		if sol.bound[i] {
			b[name] = sol.res.Name(sol.bind[i])
		}
	}
	return b
}

// All drains the iterator and returns every remaining solution. The order of
// solutions is unspecified (it follows the plan, not the BGP).
func (sol *Solutions) All() ([]Binding, error) {
	var out []Binding
	for sol.Next() {
		out = append(out, sol.Bind())
	}
	return out, sol.Err()
}

// Instances answers the canonical class-retrieval query every experiment and
// audit asks: the sorted distinct subjects annotated (via
// store.TypePredicate) with the class — expanded through the ontology
// index's subsumees when oi is non-nil, literal annotations only when it is
// nil. It is the one-pattern BGP {?x type class} projected to ?x, and the
// query-layer replacement for the deprecated store.InstancesOf and
// store.InstancesOfExpanded helpers. Over a materialized view pass a nil oi
// (or use reason.Reasoner.Instances, the allocation-light direct form): the
// inferred type triples already carry the expansion.
func Instances(src Source, oi *store.OntologyIndex, class string) ([]string, error) {
	bgp := BGP{Pat(Var("x"), Lit(store.TypePredicate), Lit(class))}
	var opts []Option
	if oi != nil {
		opts = append(opts, Expand(oi))
	}
	return Eval(src, bgp, opts...).Project("x")
}

// Project drains the iterator and returns the distinct values the named
// variable takes across the remaining solutions, sorted — the shape every
// retrieval experiment consumes. Deduplication happens at the dictionary-id
// level; only the distinct ids are resolved to strings.
func (sol *Solutions) Project(name string) ([]string, error) {
	var out []string
	err := sol.ProjectFunc(name, func(v string) bool {
		out = append(out, v)
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// ProjectFunc drains the iterator, streaming the distinct values the named
// variable takes across the remaining solutions to yield and stopping early
// when yield returns false. It is Project without the materialized slice and
// the sort: deduplication still happens at the dictionary-id level, the
// enumeration order is unspecified, and only the distinct ids are resolved
// to strings — the serving-shaped form of class retrieval the E5c experiment
// times against materialized reads.
func (sol *Solutions) ProjectFunc(name string, yield func(string) bool) error {
	idx := -1
	for i, v := range sol.vars {
		if v == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		if sol.err == nil {
			sol.err = fmt.Errorf("query: projection variable ?%s does not occur in the pattern", name)
		}
		return sol.err
	}
	seen := make(map[store.SymbolID]struct{})
	for sol.Next() {
		id := sol.bind[idx]
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		if !yield(sol.res.Name(id)) {
			break
		}
	}
	return sol.err
}
