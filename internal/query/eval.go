package query

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/query/exec"
	"repro/internal/store"
)

// ErrInterrupted is the error a Solutions iterator reports through Err when
// an Interrupt hook cancelled the evaluation before it was exhausted.
// Callers wrapping a context deadline should match it with errors.Is. It is
// the same value as exec.ErrInterrupted — the operator runtime produces it,
// this package re-exports it.
var ErrInterrupted = exec.ErrInterrupted

// Source is the id-level store surface Eval evaluates over, satisfied by
// both *store.Store (a single store) and *store.View (the asserted∪inferred
// union of a materialized store): dictionary lookups and cardinality
// statistics for the planner, plus the batched scan/probe hooks the operator
// runtime (repro/internal/query/exec) executes with. Anything exposing these
// eight methods can sit under a BGP.
type Source interface {
	// SymbolID returns the dictionary id of a name; ok is false for names
	// never interned (a pattern bound to one matches nothing).
	SymbolID(name string) (store.SymbolID, bool)
	// QueryIDFunc streams every triple matching the id pattern to yield,
	// stopping early when yield returns false.
	QueryIDFunc(p store.IDPattern, yield func(store.IDTriple) bool)
	// QueryIDBatch answers a batch of same-shape probes, grouped by index
	// shard (see store.QueryIDBatch) — the join operators' probe hook.
	QueryIDBatch(ps []store.IDPattern, yield func(pi int, t store.IDTriple) bool)
	// ScanParts splits a pattern's matches into independently drainable
	// cursors (see store.ScanParts) — the leaf operators' scan hook.
	ScanParts(p store.IDPattern, max int) []*store.ScanPart
	// CountID returns the number of triples matching the id pattern.
	CountID(p store.IDPattern) int
	// StatsID returns cardinality statistics for the id pattern.
	StatsID(p store.IDPattern) store.IDStats
	// NewResolver returns a resolver from ids back to names.
	NewResolver() store.Resolver
}

// interruptTickMask mirrors the operator runtime's interrupt-poll throttle
// (exec polls its Ctx hook once every interruptTickMask+1 steps, and the
// Solutions adapter shares that budget); tests use it to bound how many
// solutions a cancelled iteration may still produce.
const interruptTickMask = 255

// config collects Eval's options.
type config struct {
	oi           *store.OntologyIndex
	materialized bool
	interrupt    func() bool
	trace        *Trace
}

// Option configures one Eval call.
type Option func(*config)

// Expand makes type-patterns ontology-aware: every pattern whose predicate is
// the literal store.TypePredicate and whose object is a literal class is
// rewritten into the union of the same pattern over each of the class's
// subsumees (the class itself included), so asking for "roadvehicle" also
// retrieves subjects annotated "car" or "pickup". Patterns whose object is a
// variable are not rewritten — there is no class to expand — and match type
// annotations literally.
func Expand(oi *store.OntologyIndex) Option {
	return func(c *config) { c.oi = oi }
}

// Interrupt installs a cancellation hook on the evaluation: cancelled is
// polled periodically (every few hundred execution steps, so long scans
// cannot run away unobserved) and, once it returns true, the iteration stops
// — Next returns false and Err reports ErrInterrupted. The hook is how a
// server maps a request context's deadline onto an in-flight join:
//
//	sols := query.Eval(src, bgp, query.Interrupt(func() bool {
//		return ctx.Err() != nil
//	}))
//
// cancelled is called from whatever goroutine drives Next (never
// concurrently with itself) and must be cheap and non-blocking; a closure
// over a context or an atomic flag both qualify. A nil hook means the
// evaluation is uncancellable, the zero-cost default.
func Interrupt(cancelled func() bool) Option {
	return func(c *config) { c.interrupt = cancelled }
}

// Materialized marks the source as a materialized store — one whose
// entailments a reasoner (repro/internal/reason) has already derived into the
// triples themselves — and therefore suppresses Expand rewriting: a type
// pattern is evaluated literally, because the subsumee annotations Expand
// would union over are already present as inferred type triples. It takes
// precedence over Expand, so callers can pass both unconditionally and let
// the presence of a reasoner decide (reason's equivalence tests prove the two
// modes return identical answers on the E5 corpus).
func Materialized() Option {
	return func(c *config) { c.materialized = true }
}

// comp is one compiled pattern component: a literal resolved to its
// dictionary id, or a reference into the variable table.
type comp struct {
	isVar  bool
	varIdx int            // variable-table index, when isVar
	id     store.SymbolID // literal id, when !isVar
}

// level is one pattern of the join, in evaluation order: its compiled
// components and its expansion candidates. The planner orders levels; the
// builder then lowers them onto the operator tree.
type level struct {
	comps  [3]comp
	expand []store.SymbolID // expanded object candidates; nil when not expanded
	orig   int              // the pattern's index in the request BGP (trace labeling)
}

// Solutions streams the solutions of a BGP. The iteration protocol is
//
//	sols := query.Eval(s, bgp)
//	for sols.Next() {
//		... sols.Bind() or sols.Value(...) ...
//	}
//	if err := sols.Err(); err != nil { ... }
//
// Under the hood the solutions are produced in columnar batches by the
// operator tree in repro/internal/query/exec; Next walks the current batch
// row by row, so the tuple-at-a-time surface costs one virtual call and one
// bounds check per solution. Batch-aware consumers (the HTTP server's ndjson
// streamer) can take whole batches through NextBatch instead.
//
// A Solutions is single-use and not safe for concurrent use. It holds no
// locks between Next calls; each batch refill reads the store under the
// store's own shard read-locks, so a concurrent writer interleaving with the
// iteration may be reflected in some batches and not others (the solution
// set is only guaranteed consistent against a quiescent store).
type Solutions struct {
	src  Source
	res  store.Resolver
	vars []string
	root exec.Op
	ctx  exec.Ctx
	cur  *exec.Batch
	row  int
	// onRow is true while the iterator is positioned on a valid solution
	// (between a true Next and the following call).
	onRow bool
	err   error
	done  bool
}

// Eval plans and evaluates a BGP over a Source — a *store.Store, or a
// *store.View when querying a materialized union — returning a Solutions
// iterator. Planning is selectivity-ordered: each pattern's cardinality and
// per-component distinct widths with only its literals bound are read off
// the source's indexes (StatsID), and the join order minimizing the
// estimated total work under a cardinality-propagation model is chosen —
// exhaustively for BGPs of up to 6 patterns, greedily cheapest-next-probe
// beyond. The planner's output is then lowered onto a batched operator tree
// (repro/internal/query/exec): the most selective pattern becomes the leaf
// scan — shard-parallel when it is wide enough — and every later pattern a
// batch-at-a-time index-nested-loop join whose probes are grouped by index
// shard. Everything runs on dictionary ids; solutions resolve back to
// strings only when read.
//
// A BGP that mentions an empty-named variable or an empty literal is
// reported through Err; a literal the store has never seen simply yields no
// solutions. An empty BGP yields exactly one empty solution.
func Eval(src Source, bgp BGP, opts ...Option) *Solutions {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.materialized {
		cfg.oi = nil
	}
	sol := &Solutions{src: src, res: src.NewResolver(), vars: bgpVars(bgp)}
	sol.ctx.Interrupt = cfg.interrupt
	// Variable-table lookups are linear: BGPs have a handful of variables,
	// and a map would cost more to build than every lookup it would serve.
	varIdx := func(name string) int {
		for i, v := range sol.vars {
			if v == name {
				return i
			}
		}
		return -1
	}

	unsat := false
	levels := make([]level, 0, len(bgp))
	for pi, p := range bgp {
		lv := level{orig: pi}
		expanded := cfg.oi != nil && !p.Predicate.IsVar && p.Predicate.Value == store.TypePredicate && !p.Object.IsVar
		for i, t := range p.terms() {
			if t.IsVar {
				if t.Value == "" {
					sol.err = fmt.Errorf("query: pattern (%s) names a variable with an empty name", p)
					sol.done = true
					return sol
				}
				lv.comps[i] = comp{isVar: true, varIdx: varIdx(t.Value)}
				continue
			}
			if t.Value == "" {
				sol.err = fmt.Errorf("query: pattern (%s) has an empty literal; no triple can match it", p)
				sol.done = true
				return sol
			}
			if expanded && i == 2 {
				// The object literal is replaced by the expansion candidates
				// below; the zero comp is never consulted.
				continue
			}
			id, ok := src.SymbolID(t.Value)
			if !ok {
				unsat = true
			}
			lv.comps[i] = comp{id: id}
		}
		if expanded {
			for _, sub := range cfg.oi.Subsumees(p.Object.Value) {
				if id, ok := src.SymbolID(sub); ok {
					lv.expand = append(lv.expand, id)
				}
			}
			if len(lv.expand) == 0 {
				unsat = true
			}
		}
		levels = append(levels, lv)
	}
	if unsat {
		sol.done = true
		return sol
	}
	if len(levels) == 0 {
		// The empty BGP: no operator tree; Next synthesizes the one empty
		// solution.
		return sol
	}
	ordered, estFirst := plan(src, levels, len(sol.vars), cfg.trace)
	if tr := cfg.trace; tr != nil {
		for i := range tr.Levels {
			tr.Levels[i].Pattern = bgp[tr.Levels[i].Index].String()
		}
	}
	sol.root = build(src, ordered, len(sol.vars), estFirst, cfg.trace)
	return sol
}

// bgpVars collects the BGP's variable names in order of first appearance
// with linear dedup — BGP.Vars without the map, for the few-variable BGPs
// every query is.
func bgpVars(b BGP) []string {
	var out []string
	for _, p := range b {
		for _, t := range p.terms() {
			if !t.IsVar {
				continue
			}
			seen := false
			for _, v := range out {
				if v == t.Value {
					seen = true
					break
				}
			}
			if !seen {
				out = append(out, t.Value)
			}
		}
	}
	return out
}

// build lowers the planned levels onto the operator tree: the first level
// becomes the leaf scan (sized by the planner's estimate so wide scans go
// shard-parallel), every later level a batched probe join. With a trace
// attached, each lowered operator is instrumented with its level's OpStat.
func build(src Source, ordered []level, nvars int, estFirst float64, tr *Trace) exec.Op {
	bound := make([]bool, nvars)
	var root exec.Op
	for li := range ordered {
		lv := &ordered[li]
		var pat exec.Pattern
		for i, c := range lv.comps {
			if c.isVar {
				pat[i] = exec.Var(c.varIdx)
			} else {
				pat[i] = exec.Lit(c.id)
			}
		}
		if root == nil {
			root = exec.NewScan(src, pat, lv.expand, nvars, int(estFirst))
		} else {
			root = exec.NewJoin(root, src, pat, lv.expand, append([]bool(nil), bound...), nvars)
		}
		if tr != nil && li < len(tr.Levels) {
			exec.Instrument(root, &tr.Levels[li].Stat)
		}
		for _, c := range lv.comps {
			if c.isVar {
				bound[c.varIdx] = true
			}
		}
	}
	return root
}

// pstats are one pattern's planning statistics with only its literal
// components bound: the match count and, per component position, the number
// of distinct values the position takes among the matches (expanded patterns
// aggregate over their candidate classes).
type pstats struct {
	count    float64
	distinct [3]float64
}

// levelStats reads the pattern's statistics off the store's indexes.
func levelStats(src Source, lv *level) pstats {
	var ip store.IDPattern
	if !lv.comps[0].isVar {
		ip.S, ip.BoundS = lv.comps[0].id, true
	}
	if !lv.comps[1].isVar {
		ip.P, ip.BoundP = lv.comps[1].id, true
	}
	if lv.expand != nil {
		ip.BoundO = true
		var st pstats
		st.distinct[1] = 1
		for _, oid := range lv.expand {
			ip.O = oid
			is := src.StatsID(ip)
			st.count += float64(is.Count)
			st.distinct[0] += float64(is.DistinctS)
			st.distinct[2]++
		}
		return st
	}
	if !lv.comps[2].isVar {
		ip.O, ip.BoundO = lv.comps[2].id, true
	}
	is := src.StatsID(ip)
	return pstats{
		count:    float64(is.Count),
		distinct: [3]float64{float64(is.DistinctS), float64(is.DistinctP), float64(is.DistinctO)},
	}
}

// probeEstimate estimates how many matches one probe of the pattern yields
// given which variables the plan has already bound: the pattern's count,
// divided by the distinct width of every join-bound position. A position
// bound to one concrete value selects about count/distinct of the matches —
// a subject-bound probe into a predicate pattern is near a point lookup,
// while an object-bound probe into the same pattern keeps count/|objects|.
func probeEstimate(lv *level, st pstats, bound []bool) float64 {
	m := st.count
	for i, c := range lv.comps {
		if c.isVar && bound[c.varIdx] {
			if d := st.distinct[i]; d > 1 {
				m /= d
			}
		}
	}
	return m
}

// planCost simulates evaluating the levels in the given order, propagating
// the estimated number of partial solutions: each step costs one probe plus
// its estimated matches per surviving partial solution. bound is scratch
// space (one flag per variable), reset here.
func planCost(levels []level, stats []pstats, order []int, bound []bool) float64 {
	for i := range bound {
		bound[i] = false
	}
	solutions, work := 1.0, 0.0
	for _, idx := range order {
		m := probeEstimate(&levels[idx], stats[idx], bound)
		work += solutions * (1 + m)
		solutions *= m
		for _, c := range levels[idx].comps {
			if c.isVar {
				bound[c.varIdx] = true
			}
		}
	}
	return work
}

// maxExhaustive is the largest BGP whose join orders are searched
// exhaustively (6! = 720 candidate plans); larger BGPs fall back to a greedy
// cheapest-next-step ordering under the same cost model.
const maxExhaustive = 6

// planScratchVars bounds the stack-allocated planning scratch: BGPs with at
// most this many distinct variables (every realistic query) plan without
// heap allocation for their bound-flag vector.
const planScratchVars = 24

// plan orders the levels for the join by estimated total work under the
// count/distinct cost model: selectivity-ordered, cheapest plan first. The
// model naturally evaluates selective patterns before unselective ones and
// follows join-bound variables through their most selective probe direction;
// disconnected pattern groups end up cheapest-first, keeping the unavoidable
// cartesian product as small as possible. The returned order is what build
// lowers onto the operator tree; the second result is the estimated match
// count of the order's first level, which sizes the leaf scan. A non-nil tr
// records every candidate order costed and the chosen order's per-level
// estimates (see trace.go).
func plan(src Source, levels []level, nvars int, tr *Trace) ([]level, float64) {
	n := len(levels)
	if n == 1 {
		st := levelStats(src, &levels[0])
		if tr != nil {
			stats := []pstats{st}
			bound := make([]bool, nvars)
			order := []int{0}
			c := planCost(levels, stats, order, bound)
			tr.recordCandidate(levels, order, c)
			tr.finishPlan(levels, stats, order, c, bound, true)
		}
		return levels, st.count
	}
	// The scratch below lives in fixed-size arrays when the BGP is small —
	// the overwhelmingly common case — so planning itself allocates nothing.
	var statsArr [maxExhaustive]pstats
	var stats []pstats
	if n <= maxExhaustive {
		stats = statsArr[:n]
	} else {
		stats = make([]pstats, n)
	}
	for i := range levels {
		stats[i] = levelStats(src, &levels[i])
	}
	var boundArr [planScratchVars]bool
	var bound []bool
	if nvars <= planScratchVars {
		bound = boundArr[:nvars]
	} else {
		bound = make([]bool, nvars)
	}
	var bestArr, permArr [maxExhaustive]int
	var best []int
	if n <= maxExhaustive {
		best = bestArr[:0]
		perm := permArr[:n]
		for i := range perm {
			perm[i] = i
		}
		bestCost := math.Inf(1)
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				c := planCost(levels, stats, perm, bound)
				if tr != nil {
					tr.recordCandidate(levels, perm, c)
				}
				if c < bestCost {
					bestCost = c
					best = append(best[:0], perm...)
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		if tr != nil {
			tr.finishPlan(levels, stats, best, bestCost, bound, true)
		}
	} else {
		used := make([]bool, n)
		solutions := 1.0
		for len(best) < n {
			bi, bc := -1, math.Inf(1)
			for i := 0; i < n; i++ {
				if used[i] {
					continue
				}
				if c := solutions * (1 + probeEstimate(&levels[i], stats[i], bound)); c < bc {
					bi, bc = i, c
				}
			}
			used[bi] = true
			solutions *= probeEstimate(&levels[bi], stats[bi], bound)
			best = append(best, bi)
			for _, c := range levels[bi].comps {
				if c.isVar {
					bound[c.varIdx] = true
				}
			}
		}
		if tr != nil {
			c := planCost(levels, stats, best, bound)
			tr.recordCandidate(levels, best, c)
			tr.finishPlan(levels, stats, best, c, bound, false)
		}
	}
	ordered := make([]level, 0, n)
	for _, idx := range best {
		ordered = append(ordered, levels[idx])
	}
	return ordered, stats[best[0]].count
}

// Next advances to the next solution, reporting whether one exists. After
// Next returns true, Bind and Value read the solution; after it returns
// false, Err reports whether the iteration ended in an error.
func (sol *Solutions) Next() bool {
	sol.onRow = false
	if sol.err != nil || sol.done {
		return false
	}
	if sol.root == nil {
		// The empty BGP: one empty solution, then exhaustion.
		sol.done = true
		sol.onRow = true
		return true
	}
	if sol.cur != nil && sol.row+1 < sol.cur.N {
		// The interrupt hook is polled here too (throttled), so a
		// cancellation observed mid-batch stops the iteration without
		// draining the batch's remaining rows.
		if sol.ctx.Cancelled() {
			sol.err = ErrInterrupted
			sol.done = true
			return false
		}
		sol.row++
		sol.onRow = true
		return true
	}
	for {
		b, err := sol.root.Next(&sol.ctx)
		if err != nil {
			sol.err = err
			sol.done = true
			return false
		}
		if b == nil {
			sol.done = true
			return false
		}
		if b.N == 0 {
			continue
		}
		sol.cur, sol.row, sol.onRow = b, 0, true
		return true
	}
}

// Err returns the error that ended the iteration, or nil. The only errors
// today are malformed BGPs (empty literals, empty variable names), unknown
// projection variables, and ErrInterrupted when an Interrupt hook cancelled
// the evaluation; evaluation itself cannot fail.
func (sol *Solutions) Err() error {
	return sol.err
}

// Vars returns the BGP's variable names in order of first appearance.
func (sol *Solutions) Vars() []string {
	return append([]string(nil), sol.vars...)
}

// Resolver returns the resolver the iterator reads names through — the hook
// batch-aware consumers (NextBatch) use to resolve column ids themselves.
func (sol *Solutions) Resolver() store.Resolver {
	return sol.res
}

// Value returns the current solution's value for one variable without
// allocating. It is only meaningful after Next returned true; ok is false
// for unknown variables or outside a solution.
func (sol *Solutions) Value(name string) (string, bool) {
	if !sol.onRow || sol.cur == nil {
		return "", false
	}
	for i, v := range sol.vars {
		if v == name {
			return sol.res.Name(sol.cur.Cols[i][sol.row]), true
		}
	}
	return "", false
}

// Bind materializes the current solution as a fresh Binding. It is only
// meaningful after Next returned true. Use Value to read a single variable
// without the allocation.
func (sol *Solutions) Bind() Binding {
	b := make(Binding, len(sol.vars))
	if !sol.onRow || sol.cur == nil {
		return b
	}
	for i, name := range sol.vars {
		b[name] = sol.res.Name(sol.cur.Cols[i][sol.row])
	}
	return b
}

// SolutionBatch is one columnar window of solutions, handed out by
// Solutions.NextBatch: Len rows over the iterator's variables (Vars order),
// each cell a dictionary id resolvable through Solutions.Resolver. A batch
// is owned by the iterator and valid only until the next NextBatch call.
type SolutionBatch struct {
	cols [][]store.SymbolID
	n    int
}

// Len returns the number of rows in the batch.
func (sb SolutionBatch) Len() int { return sb.n }

// ID returns the dictionary id bound by row for the col'th variable of the
// iterator's Vars.
func (sb SolutionBatch) ID(col, row int) store.SymbolID { return sb.cols[col][row] }

// NextBatch advances the iteration one whole batch at a time — the bulk form
// of Next for consumers that stream many solutions (the HTTP server's ndjson
// writer): no per-solution virtual call, no Binding map, just columns of ids
// to resolve and format. ok is false when the iteration is exhausted or
// failed (check Err, exactly as after Next). A non-empty iteration never
// yields an empty batch; the empty BGP yields one single-row batch whose row
// binds nothing. Do not mix NextBatch and Next on one iterator — each
// consumes the stream the other would have seen.
func (sol *Solutions) NextBatch() (SolutionBatch, bool) {
	sol.onRow = false
	if sol.err != nil || sol.done {
		return SolutionBatch{}, false
	}
	if sol.root == nil {
		// The empty BGP: one batch holding the single empty solution.
		sol.done = true
		return SolutionBatch{n: 1}, true
	}
	for {
		b, err := sol.root.Next(&sol.ctx)
		if err != nil {
			sol.err = err
			sol.done = true
			return SolutionBatch{}, false
		}
		if b == nil {
			sol.done = true
			return SolutionBatch{}, false
		}
		if b.N == 0 {
			continue
		}
		return SolutionBatch{cols: b.Cols, n: b.N}, true
	}
}

// All drains the iterator and returns every remaining solution. The order of
// solutions is unspecified (it follows the plan, not the BGP).
func (sol *Solutions) All() ([]Binding, error) {
	var out []Binding
	for sol.Next() {
		out = append(out, sol.Bind())
	}
	return out, sol.Err()
}

// Instances answers the canonical class-retrieval query every experiment and
// audit asks: the sorted distinct subjects annotated (via
// store.TypePredicate) with the class — expanded through the ontology
// index's subsumees when oi is non-nil, literal annotations only when it is
// nil. It is the one-pattern BGP {?x type class} projected to ?x. Over a
// materialized view pass a nil oi (or use reason.Reasoner.Instances, the
// allocation-light direct form): the inferred type triples already carry the
// expansion.
func Instances(src Source, oi *store.OntologyIndex, class string) ([]string, error) {
	bgp := BGP{Pat(Var("x"), Lit(store.TypePredicate), Lit(class))}
	var opts []Option
	if oi != nil {
		opts = append(opts, Expand(oi))
	}
	return Eval(src, bgp, opts...).Project("x")
}

// Project drains the iterator and returns the distinct values the named
// variable takes across the remaining solutions, sorted — the shape every
// retrieval experiment consumes. Deduplication happens at the dictionary-id
// level; only the distinct ids are resolved to strings.
func (sol *Solutions) Project(name string) ([]string, error) {
	var out []string
	err := sol.ProjectFunc(name, func(v string) bool {
		out = append(out, v)
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// ProjectFunc drains the iterator, streaming the distinct values the named
// variable takes across the remaining solutions to yield and stopping early
// when yield returns false. It is Project without the materialized slice and
// the sort: deduplication still happens at the dictionary-id level, the
// enumeration order is unspecified, and only the distinct ids are resolved
// to strings — the serving-shaped form of class retrieval the E5c experiment
// times against materialized reads.
func (sol *Solutions) ProjectFunc(name string, yield func(string) bool) error {
	idx := -1
	for i, v := range sol.vars {
		if v == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		if sol.err == nil {
			sol.err = fmt.Errorf("query: projection variable ?%s does not occur in the pattern", name)
		}
		return sol.err
	}
	seen := make(map[store.SymbolID]struct{})
	for sol.Next() {
		id := sol.cur.Cols[idx][sol.row]
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		if !yield(sol.res.Name(id)) {
			break
		}
	}
	return sol.err
}
