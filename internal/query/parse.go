package query

import (
	"fmt"
	"strings"
)

// ParseBGP reads the textual form of a BGP: triple patterns separated by
// '.', ';' or newlines, each pattern three whitespace-separated terms, a
// term starting with '?' being a variable and anything else a literal.
//
//	?x type car . ?x locatedIn ?site
//
// Literals cannot contain whitespace or the separators; there is no quoting.
// The format exists for command lines (cmd/ontoaudit -query) and tests, not
// as a SPARQL front end.
func ParseBGP(text string) (BGP, error) {
	var bgp BGP
	for _, raw := range strings.FieldsFunc(text, func(r rune) bool {
		return r == '.' || r == ';' || r == '\n'
	}) {
		fields := strings.Fields(raw)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("query: pattern %q has %d terms, want 3 (subject predicate object)", strings.TrimSpace(raw), len(fields))
		}
		var terms [3]Term
		for i, f := range fields {
			if name, isVar := strings.CutPrefix(f, "?"); isVar {
				if name == "" {
					return nil, fmt.Errorf("query: pattern %q has a variable with an empty name", strings.TrimSpace(raw))
				}
				terms[i] = Var(name)
			} else {
				terms[i] = Lit(f)
			}
		}
		bgp = append(bgp, Pat(terms[0], terms[1], terms[2]))
	}
	if len(bgp) == 0 {
		return nil, fmt.Errorf("query: no patterns in %q", text)
	}
	return bgp, nil
}

// MustParseBGP is ParseBGP panicking on error, for statically known patterns
// in tests and examples.
func MustParseBGP(text string) BGP {
	bgp, err := ParseBGP(text)
	if err != nil {
		panic(err)
	}
	return bgp
}
