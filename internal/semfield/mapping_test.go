package semfield

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAtomisticMappingDoorknob(t *testing.T) {
	_, english, italian := DoorknobExample()
	m := AtomisticMapping(english, italian)
	// "doorknob" overlaps pomello on 3 cells (Jaccard 3/5) and maniglia on
	// 2 of 5 (Jaccard 2/8); the dictionary gloss is pomello.
	if m["doorknob"] != "pomello" {
		t.Errorf("doorknob maps to %q, want pomello", m["doorknob"])
	}
	if m["doorhandle"] != "maniglia" {
		t.Errorf("doorhandle maps to %q, want maniglia", m["doorhandle"])
	}
}

func TestTranslationLossDoorknob(t *testing.T) {
	_, english, italian := DoorknobExample()
	atomistic := TranslationLoss(english, italian, Atomistic)
	field := TranslationLoss(english, italian, FieldRelative)
	if field.ErrorRate() != 0 {
		t.Errorf("field-relative error rate = %f, want 0 (Italian covers the whole field)", field.ErrorRate())
	}
	if atomistic.ErrorRate() <= field.ErrorRate() {
		t.Errorf("atomistic error rate (%f) should exceed field-relative (%f): the paper's doorknob/maniglia loss",
			atomistic.ErrorRate(), field.ErrorRate())
	}
	// Exactly the cells English files under doorknob but Italian under
	// maniglia are misplaced: thumb-latch-knob and lever-knob-hybrid.
	if atomistic.Misplaced != 2 {
		t.Errorf("Misplaced = %d, want 2", atomistic.Misplaced)
	}
	if atomistic.Untranslatable != 0 {
		t.Errorf("Untranslatable = %d, want 0", atomistic.Untranslatable)
	}
	if atomistic.Evaluated != 8 {
		t.Errorf("Evaluated = %d, want 8", atomistic.Evaluated)
	}
}

func TestTranslationLossAgeAdjectives(t *testing.T) {
	_, italian, spanish, french := AgeAdjectivesExample()
	type pair struct {
		src, dst *Language
	}
	for _, p := range []pair{{italian, spanish}, {spanish, italian}, {italian, french}, {spanish, french}} {
		t.Run(p.src.Name()+"→"+p.dst.Name(), func(t *testing.T) {
			atomistic := TranslationLoss(p.src, p.dst, Atomistic)
			field := TranslationLoss(p.src, p.dst, FieldRelative)
			if atomistic.ErrorRate() < field.ErrorRate() {
				t.Errorf("atomistic error (%f) below field-relative (%f)", atomistic.ErrorRate(), field.ErrorRate())
			}
			if field.ErrorRate() != 0 {
				t.Errorf("field-relative error = %f, want 0: all three languages cover the field", field.ErrorRate())
			}
		})
	}
	// Italian → Spanish must lose something: anziano spans three cells that
	// Spanish splits across anciano, mayor and antiguo.
	if loss := TranslationLoss(italian, spanish, Atomistic); loss.Misplaced == 0 {
		t.Error("Italian→Spanish atomistic translation should misplace some anziano cells")
	}
}

func TestTranslateAtomisticAndFieldRelative(t *testing.T) {
	_, english, italian := DoorknobExample()
	m := AtomisticMapping(english, italian)
	// A cell on the English side of the boundary but the Italian other side.
	word, ext, ok := TranslateAtomistic(english, italian, m, "lever-knob-hybrid")
	if !ok {
		t.Fatal("TranslateAtomistic failed on a covered cell")
	}
	if word != "pomello" {
		t.Errorf("atomistic translation = %q, want pomello (the dictionary gloss of doorknob)", word)
	}
	if contains(ext, "lever-knob-hybrid") {
		t.Error("the atomistic gloss should not cover the translated cell: that is the loss")
	}
	word, ext, ok = TranslateFieldRelative(italian, "lever-knob-hybrid")
	if !ok || word != "maniglia" || !contains(ext, "lever-knob-hybrid") {
		t.Errorf("field-relative translation = %q (ok=%v), want maniglia covering the cell", word, ok)
	}
	// Uncovered cells are untranslatable either way.
	s := NewSpace("a", "b")
	empty := NewLanguage(s, "empty-ish")
	empty.MustAddLexeme("w", "a")
	if _, _, ok := TranslateFieldRelative(empty, "b"); ok {
		t.Error("field-relative translation of an uncovered cell should fail")
	}
	if _, _, ok := TranslateAtomistic(empty, empty, WordMapping{}, "b"); ok {
		t.Error("atomistic translation of an uncovered cell should fail")
	}
}

func TestDivergence(t *testing.T) {
	_, english, italian := DoorknobExample()
	if d := Divergence(english, english); d != 0 {
		t.Errorf("Divergence of a language with itself = %f, want 0", d)
	}
	d := Divergence(english, italian)
	if d <= 0 || d >= 1 {
		t.Errorf("Divergence(English, Italian) = %f, want strictly between 0 and 1", d)
	}
	if d2 := Divergence(italian, english); d2 != d {
		t.Errorf("Divergence is not symmetric: %f vs %f", d, d2)
	}
}

func TestLossReportStringAndMethodString(t *testing.T) {
	_, english, italian := DoorknobExample()
	rep := TranslationLoss(english, italian, Atomistic)
	if rep.String() == "" {
		t.Error("empty String rendering")
	}
	if Atomistic.String() != "atomistic" || FieldRelative.String() != "field-relative" {
		t.Error("Method.String misnames the methods")
	}
	if Method(42).String() == "" {
		t.Error("unknown method should still render")
	}
}

// TestIdenticalLanguagesLossless is the property test: translating between
// two identically divided languages loses nothing under either method.
func TestIdenticalLanguagesLossless(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		space, a := randomLanguage(rng, "A")
		b := cloneLanguage(space, a, "B")
		if TranslationLoss(a, b, Atomistic).ErrorRate() != 0 {
			return false
		}
		return TranslationLoss(a, b, FieldRelative).ErrorRate() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFieldRelativeNeverWorse is the property test behind experiment E4: on
// fully covering partition languages, the field-relative method's error rate
// never exceeds the atomistic one.
func TestFieldRelativeNeverWorse(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		rngA := rand.New(rand.NewSource(seedA))
		space, a := randomLanguage(rngA, "A")
		rngB := rand.New(rand.NewSource(seedB))
		b := randomLanguageOver(rngB, space, "B")
		atom := TranslationLoss(a, b, Atomistic).ErrorRate()
		field := TranslationLoss(a, b, FieldRelative).ErrorRate()
		return field <= atom+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// randomLanguage builds a random partition language over a random 6–14 cell
// space.
func randomLanguage(rng *rand.Rand, name string) (*Space, *Language) {
	n := 6 + rng.Intn(9)
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell(fmt.Sprintf("c%d", i))
	}
	space := NewSpace(cells...)
	return space, randomLanguageOver(rng, space, name)
}

// randomLanguageOver partitions the space's cells into 2–5 contiguous words.
func randomLanguageOver(rng *rand.Rand, space *Space, name string) *Language {
	l := NewLanguage(space, name)
	cells := space.Cells()
	words := 2 + rng.Intn(4)
	if words > len(cells) {
		words = len(cells)
	}
	// Choose word boundaries.
	boundaries := map[int]bool{}
	for len(boundaries) < words-1 {
		boundaries[1+rng.Intn(len(cells)-1)] = true
	}
	start := 0
	word := 0
	for i := 1; i <= len(cells); i++ {
		if i == len(cells) || boundaries[i] {
			ext := cells[start:i]
			l.MustAddLexeme(fmt.Sprintf("%s_w%d", name, word), ext...)
			word++
			start = i
		}
	}
	return l
}

// cloneLanguage copies a language's division under new word names.
func cloneLanguage(space *Space, src *Language, name string) *Language {
	dst := NewLanguage(space, name)
	for _, lx := range src.Lexemes() {
		dst.MustAddLexeme(name+"_"+lx.Word, lx.Extension...)
	}
	return dst
}
