package semfield

import (
	"testing"
)

func TestSpaceBasics(t *testing.T) {
	s := NewSpace("a", "b", "c", "b")
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3 (duplicates ignored)", s.Len())
	}
	if !s.Contains("a") || s.Contains("z") {
		t.Error("Contains misreports membership")
	}
	cells := s.Cells()
	if len(cells) != 3 || cells[0] != "a" || cells[2] != "c" {
		t.Errorf("Cells = %v, want [a b c]", cells)
	}
	cells[0] = "mutated"
	if s.Cells()[0] != "a" {
		t.Error("Cells returned a live reference to internal state")
	}
}

func TestLanguageValidation(t *testing.T) {
	s := NewSpace("a", "b")
	l := NewLanguage(s, "L")
	if err := l.AddLexeme("", "a"); err == nil {
		t.Error("accepted empty word")
	}
	if err := l.AddLexeme("w"); err == nil {
		t.Error("accepted empty extension")
	}
	if err := l.AddLexeme("w", "z"); err == nil {
		t.Error("accepted out-of-space cell")
	}
	if err := l.AddLexeme("w", "a", "a", "b"); err != nil {
		t.Fatalf("rejected valid lexeme: %v", err)
	}
	if err := l.AddLexeme("w", "b"); err == nil {
		t.Error("accepted duplicate word")
	}
	ext, ok := l.Extension("w")
	if !ok || len(ext) != 2 {
		t.Errorf("Extension(w) = %v, %v; want deduplicated [a b]", ext, ok)
	}
}

func TestLanguageQueries(t *testing.T) {
	s := NewSpace("a", "b", "c", "d")
	l := NewLanguage(s, "L")
	l.MustAddLexeme("x", "a", "b")
	l.MustAddLexeme("y", "c")
	if got := l.WordsFor("a"); len(got) != 1 || got[0] != "x" {
		t.Errorf("WordsFor(a) = %v, want [x]", got)
	}
	if l.Covers("d") {
		t.Error("Covers(d) = true for an uncovered cell")
	}
	covered := l.Covered()
	if len(covered) != 3 {
		t.Errorf("Covered = %v, want 3 cells", covered)
	}
	if !l.IsPartition() {
		t.Error("disjoint lexemes should form a partition")
	}
	l.MustAddLexeme("z", "b", "d")
	if l.IsPartition() {
		t.Error("overlapping lexemes reported as a partition")
	}
	if got := l.Words(); len(got) != 3 || got[0] != "x" {
		t.Errorf("Words = %v", got)
	}
	lexemes := l.Lexemes()
	lexemes[0].Extension[0] = "mutated"
	if ext, _ := l.Extension("x"); ext[0] != "a" {
		t.Error("Lexemes leaked a live extension slice")
	}
}

func TestOppositions(t *testing.T) {
	_, english, _ := DoorknobExample()
	opp := english.Oppositions("doorknob")
	if len(opp) != 1 || opp[0] != "doorhandle" {
		t.Errorf("Oppositions(doorknob) = %v, want [doorhandle]", opp)
	}
	if got := english.Oppositions("no-such-word"); got != nil {
		t.Errorf("Oppositions of unknown word = %v, want nil", got)
	}
}

func TestDoorknobExampleShape(t *testing.T) {
	space, english, italian := DoorknobExample()
	if space.Len() != 8 {
		t.Fatalf("space has %d cells, want 8", space.Len())
	}
	for _, l := range []*Language{english, italian} {
		if !l.IsPartition() {
			t.Errorf("%s should partition the field", l.Name())
		}
		if len(l.Covered()) != space.Len() {
			t.Errorf("%s should cover the whole field", l.Name())
		}
	}
	// The paper's point: some English doorknobs are Italian maniglie.
	ext, _ := english.Extension("doorknob")
	crossover := 0
	for _, c := range ext {
		for _, w := range italian.WordsFor(c) {
			if w == "maniglia" {
				crossover++
			}
		}
	}
	if crossover == 0 {
		t.Error("expected some doorknob cells to fall under maniglia")
	}
	// But not all of them: pomelli are, in general, doorknobs.
	if crossover == len(ext) {
		t.Error("every doorknob cell fell under maniglia; the example should keep pomello ⊂ doorknob")
	}
}

func TestAgeAdjectivesExampleShape(t *testing.T) {
	space, italian, spanish, french := AgeAdjectivesExample()
	if space.Len() != 6 {
		t.Fatalf("space has %d cells, want 6", space.Len())
	}
	// Spanish is the only language with a dedicated word for aged beverages
	// and for respectful reference to the old.
	if got := spanish.WordsFor("aged-beverage"); len(got) != 1 || got[0] != "añejo" {
		t.Errorf("Spanish aged-beverage = %v, want [añejo]", got)
	}
	if got := spanish.WordsFor("respected-elder"); len(got) != 1 || got[0] != "mayor" {
		t.Errorf("Spanish respected-elder = %v, want [mayor]", got)
	}
	// Italian anziano covers seniority in a function, where Spanish uses
	// antiguo and French ancien: three different shapes over the same cell.
	cell := Cell("senior-in-function")
	if got := italian.WordsFor(cell); len(got) != 1 || got[0] != "anziano" {
		t.Errorf("Italian senior-in-function = %v, want [anziano]", got)
	}
	if got := spanish.WordsFor(cell); len(got) != 1 || got[0] != "antiguo" {
		t.Errorf("Spanish senior-in-function = %v, want [antiguo]", got)
	}
	if got := french.WordsFor(cell); len(got) != 1 || got[0] != "ancien" {
		t.Errorf("French senior-in-function = %v, want [ancien]", got)
	}
	// All three languages cover the whole space.
	for _, l := range []*Language{italian, spanish, french} {
		if len(l.Covered()) != space.Len() {
			t.Errorf("%s covers %d cells, want %d", l.Name(), len(l.Covered()), space.Len())
		}
	}
}
