package semfield

import (
	"fmt"
	"sort"
)

// WordMapping is an atomistic word-to-word correspondence between two
// languages: each source word is assigned the single target word judged
// "equivalent" to it, the way a bilingual dictionary's headline gloss does
// (doorknob ↦ pomello).
type WordMapping map[string]string

// AtomisticMapping computes the best atomistic mapping from src to dst: every
// word of src is mapped to the dst word with the largest Jaccard overlap
// between extensions (ties broken alphabetically, so the result is
// deterministic). Words with no overlapping dst word are left unmapped.
//
// This is the mapping conceptual atomism allows: it compares words one at a
// time and never looks at how either language divides the rest of the field.
func AtomisticMapping(src, dst *Language) WordMapping {
	m := WordMapping{}
	dstWords := dst.Words()
	sort.Strings(dstWords)
	for _, w := range src.Words() {
		ext, _ := src.Extension(w)
		best := ""
		bestScore := 0.0
		for _, dw := range dstWords {
			dext, _ := dst.Extension(dw)
			score := jaccard(ext, dext)
			if score > bestScore {
				bestScore = score
				best = dw
			}
		}
		if best != "" {
			m[w] = best
		}
	}
	return m
}

// jaccard computes the Jaccard similarity of two cell sets.
func jaccard(a, b []Cell) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inA := map[Cell]bool{}
	for _, c := range a {
		inA[c] = true
	}
	inter := 0
	union := len(a)
	for _, c := range b {
		if inA[c] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// TranslateAtomistic translates one occurrence (a cell) from src to dst using
// the atomistic mapping: the cell is encoded as the first src word covering
// it, the mapping is applied, and the dst word's whole extension is returned
// as the meaning the target audience reconstructs. The boolean reports
// whether a translation existed at all (the cell was covered and its word was
// mapped).
func TranslateAtomistic(src, dst *Language, m WordMapping, c Cell) (word string, extension []Cell, ok bool) {
	words := src.WordsFor(c)
	if len(words) == 0 {
		return "", nil, false
	}
	target, ok := m[words[0]]
	if !ok {
		return "", nil, false
	}
	ext, _ := dst.Extension(target)
	return target, ext, true
}

// TranslateFieldRelative translates one occurrence by the field structure of
// the target language: the dst word(s) covering the cell itself. This is the
// translation a speaker of dst would produce, because it respects where dst
// draws its own fissures in the field.
func TranslateFieldRelative(dst *Language, c Cell) (word string, extension []Cell, ok bool) {
	words := dst.WordsFor(c)
	if len(words) == 0 {
		return "", nil, false
	}
	ext, _ := dst.Extension(words[0])
	return words[0], ext, true
}

// Method selects a translation strategy for the loss analysis.
type Method int

// Translation methods.
const (
	// Atomistic uses a fixed word-to-word mapping.
	Atomistic Method = iota
	// FieldRelative re-encodes each occurrence in the target language's own
	// division of the field.
	FieldRelative
)

// String names the method.
func (m Method) String() string {
	switch m {
	case Atomistic:
		return "atomistic"
	case FieldRelative:
		return "field-relative"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// LossReport quantifies how much of the source language's distinctions a
// translation strategy loses.
type LossReport struct {
	Method Method
	// Evaluated is the number of cells evaluated: those covered by the
	// source language.
	Evaluated int
	// Untranslatable is the number of evaluated cells for which the strategy
	// produced no target word at all.
	Untranslatable int
	// Misplaced is the number of evaluated cells whose produced target word
	// does not actually cover the cell: the translation names a region of the
	// field the occurrence is not in (the "doorknob" rendered as "pomello"
	// when the thing is, for Italian, a maniglia).
	Misplaced int
	// MeanJaccard is the mean Jaccard similarity between the source word's
	// extension and the produced target word's extension over the evaluated
	// cells (0 for untranslatable cells).
	MeanJaccard float64
}

// ErrorRate is the fraction of evaluated cells that were untranslatable or
// misplaced.
func (r LossReport) ErrorRate() float64 {
	if r.Evaluated == 0 {
		return 0
	}
	return float64(r.Untranslatable+r.Misplaced) / float64(r.Evaluated)
}

// String renders the report.
func (r LossReport) String() string {
	return fmt.Sprintf("%s: %d cells, %d untranslatable, %d misplaced, error rate %.3f, mean Jaccard %.3f",
		r.Method, r.Evaluated, r.Untranslatable, r.Misplaced, r.ErrorRate(), r.MeanJaccard)
}

// TranslationLoss measures the loss of translating every covered cell of src
// into dst under the given method. For the atomistic method the mapping is
// recomputed with AtomisticMapping; use TranslationLossWithMapping to supply
// a hand-built dictionary.
func TranslationLoss(src, dst *Language, method Method) LossReport {
	var m WordMapping
	if method == Atomistic {
		m = AtomisticMapping(src, dst)
	}
	return TranslationLossWithMapping(src, dst, method, m)
}

// TranslationLossWithMapping is TranslationLoss with an explicit atomistic
// mapping (ignored for the field-relative method).
func TranslationLossWithMapping(src, dst *Language, method Method, m WordMapping) LossReport {
	rep := LossReport{Method: method}
	var jaccardSum float64
	for _, c := range src.Covered() {
		rep.Evaluated++
		srcWords := src.WordsFor(c)
		srcExt, _ := src.Extension(srcWords[0])
		var word string
		var ext []Cell
		var ok bool
		switch method {
		case Atomistic:
			word, ext, ok = TranslateAtomistic(src, dst, m, c)
		case FieldRelative:
			word, ext, ok = TranslateFieldRelative(dst, c)
		}
		if !ok {
			rep.Untranslatable++
			continue
		}
		jaccardSum += jaccard(srcExt, ext)
		if !contains(ext, c) {
			rep.Misplaced++
		}
		_ = word
	}
	if rep.Evaluated > 0 {
		rep.MeanJaccard = jaccardSum / float64(rep.Evaluated)
	}
	return rep
}

// contains reports whether the cell slice contains the cell.
func contains(cells []Cell, c Cell) bool {
	for _, x := range cells {
		if x == c {
			return true
		}
	}
	return false
}

// Divergence measures how differently two languages divide the shared part of
// the semantic space: the fraction of cell pairs (both covered by both
// languages) on which the languages disagree about whether the two cells fall
// under the same word. It is 0 when the two languages draw identical
// boundaries on the shared region and approaches 1 as every boundary of one
// cuts across the other.
func Divergence(a, b *Language) float64 {
	var shared []Cell
	for _, c := range a.Space().Cells() {
		if a.Covers(c) && b.Covers(c) {
			shared = append(shared, c)
		}
	}
	if len(shared) < 2 {
		return 0
	}
	disagreements := 0
	pairs := 0
	for i := 0; i < len(shared); i++ {
		for j := i + 1; j < len(shared); j++ {
			pairs++
			sameA := sameWord(a, shared[i], shared[j])
			sameB := sameWord(b, shared[i], shared[j])
			if sameA != sameB {
				disagreements++
			}
		}
	}
	return float64(disagreements) / float64(pairs)
}

// sameWord reports whether the language files both cells under some common
// word.
func sameWord(l *Language, x, y Cell) bool {
	for _, wx := range l.WordsFor(x) {
		for _, wy := range l.WordsFor(y) {
			if wx == wy {
				return true
			}
		}
	}
	return false
}
