package semfield

// This file contains the paper's two worked lexical-field examples as
// ready-made builders, so that tests, examples and experiment E4 all exercise
// exactly the configurations drawn in §3.

// DoorknobExample reproduces the paper's doorknob/door-handle vs
// pomello/maniglia schema: a one-dimensional field of door-opening fixtures
// ranging from round knobs to lever handles, which English and Italian divide
// at different points. The middle cells are the ones English calls doorknobs
// but Italian files under maniglia.
//
// It returns the space, the English language, and the Italian language.
func DoorknobExample() (*Space, *Language, *Language) {
	// Cells ordered from "most knob-like" to "most handle-like".
	cells := []Cell{
		"round-knob", "oval-knob", "knob-with-latch", "thumb-latch-knob",
		"lever-knob-hybrid", "short-lever", "long-lever", "bar-handle",
	}
	space := NewSpace(cells...)

	english := NewLanguage(space, "English")
	english.MustAddLexeme("doorknob",
		"round-knob", "oval-knob", "knob-with-latch", "thumb-latch-knob", "lever-knob-hybrid")
	english.MustAddLexeme("doorhandle",
		"short-lever", "long-lever", "bar-handle")

	italian := NewLanguage(space, "Italian")
	italian.MustAddLexeme("pomello",
		"round-knob", "oval-knob", "knob-with-latch")
	italian.MustAddLexeme("maniglia",
		"thumb-latch-knob", "lever-knob-hybrid", "short-lever", "long-lever", "bar-handle")

	return space, english, italian
}

// AgeAdjectivesExample reproduces the paper's table of adjectives of old age
// in Italian, Spanish and French (after Geckeler): the field is divided into
// regions (aged wine, old things, old persons, respectful reference to old
// persons, seniority in a function, ancient things), and the three languages
// cover them with differently-shaped lexemes.
//
// It returns the space and the three languages in the order Italian, Spanish,
// French.
func AgeAdjectivesExample() (*Space, *Language, *Language, *Language) {
	cells := []Cell{
		"aged-beverage",      // un ron añejo
		"old-thing",          // una casa vieja / una vecchia casa / une vieille maison
		"old-person",         // persona anziana / anciano / âgé
		"respected-elder",    // persona mayor
		"senior-in-function", // il sergente anziano / el sargento antiguo / le sergent ancien
		"ancient-thing",      // antico / antiguo / antique
	}
	space := NewSpace(cells...)

	italian := NewLanguage(space, "Italian")
	// Italian has no dedicated appreciative form for aged beverages; vecchio
	// covers them along with old things generally.
	italian.MustAddLexeme("vecchio", "aged-beverage", "old-thing")
	italian.MustAddLexeme("anziano", "old-person", "respected-elder", "senior-in-function")
	italian.MustAddLexeme("antico", "ancient-thing")

	spanish := NewLanguage(space, "Spanish")
	spanish.MustAddLexeme("añejo", "aged-beverage")
	spanish.MustAddLexeme("viejo", "old-thing")
	spanish.MustAddLexeme("anciano", "old-person")
	spanish.MustAddLexeme("mayor", "respected-elder")
	spanish.MustAddLexeme("antiguo", "senior-in-function", "ancient-thing")

	french := NewLanguage(space, "French")
	// French, like Italian, folds aged beverages under the basic adjective.
	french.MustAddLexeme("vieux", "aged-beverage", "old-thing")
	french.MustAddLexeme("âgé", "old-person", "respected-elder")
	french.MustAddLexeme("ancien", "senior-in-function")
	french.MustAddLexeme("antique", "ancient-thing")

	return space, italian, spanish, french
}
