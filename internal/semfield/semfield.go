// Package semfield implements the structural (field-theoretic) view of
// lexical meaning that the paper's §3 uses against conceptual atomism: a
// semantic space that different languages divide differently, lexemes as
// coverings of regions of that space, and two ways of mapping one language
// onto another —
//
//   - an atomistic mapping, which pairs each word of the source language with
//     a single best-matching word of the target language ("doorknob" ↦
//     "pomello") and ignores how the target language actually divides the
//     field;
//   - a field-relative mapping, which translates occurrences (cells of the
//     space) by asking which target word covers that cell.
//
// The paper's doorknob/pomello and vecchio/viejo/vieux examples are provided
// as ready-made builders, and the loss metrics quantify its claim that the
// atomistic mapping loses exactly the distinctions that arise "at the
// fissures" of each language's division of the field.
package semfield

import (
	"fmt"
	"sort"
)

// Cell is an atomic region of a semantic space: a designatum fine-grained
// enough that every language under consideration either covers it with one of
// its words or does not cover it at all.
type Cell string

// Space is a finite semantic space: an ordered set of cells. The order is
// only used for deterministic iteration; no geometry is implied.
type Space struct {
	cells []Cell
	index map[Cell]int
}

// NewSpace builds a space from its cells, ignoring duplicates.
func NewSpace(cells ...Cell) *Space {
	s := &Space{index: map[Cell]int{}}
	for _, c := range cells {
		if _, ok := s.index[c]; ok {
			continue
		}
		s.index[c] = len(s.cells)
		s.cells = append(s.cells, c)
	}
	return s
}

// Cells returns the cells in insertion order. The slice is a copy.
func (s *Space) Cells() []Cell {
	return append([]Cell(nil), s.cells...)
}

// Contains reports whether the cell belongs to the space.
func (s *Space) Contains(c Cell) bool {
	_, ok := s.index[c]
	return ok
}

// Len returns the number of cells.
func (s *Space) Len() int { return len(s.cells) }

// Lexeme is a word of a language together with its extension: the set of
// cells it covers.
type Lexeme struct {
	Word      string
	Extension []Cell
}

// Language is a named division of a semantic space into lexemes. A language
// need not cover the whole space (some things are simply not lexicalized) and
// its lexemes may overlap (near-synonyms), although the paper's examples are
// overlap-free within each language.
//
// Language is not safe for concurrent mutation.
type Language struct {
	name    string
	space   *Space
	lexemes []Lexeme
	byWord  map[string]int
	byCell  map[Cell][]string
}

// NewLanguage returns an empty language over the space.
func NewLanguage(space *Space, name string) *Language {
	return &Language{
		name:   name,
		space:  space,
		byWord: map[string]int{},
		byCell: map[Cell][]string{},
	}
}

// Name returns the language's name.
func (l *Language) Name() string { return l.name }

// Space returns the semantic space the language divides.
func (l *Language) Space() *Space { return l.space }

// AddLexeme adds a word with its extension. It is an error to add the same
// word twice, to add a word with an empty extension, or to reference a cell
// outside the space.
func (l *Language) AddLexeme(word string, extension ...Cell) error {
	if word == "" {
		return fmt.Errorf("semfield: empty word in language %s", l.name)
	}
	if _, dup := l.byWord[word]; dup {
		return fmt.Errorf("semfield: word %q already defined in language %s", word, l.name)
	}
	if len(extension) == 0 {
		return fmt.Errorf("semfield: word %q has an empty extension", word)
	}
	seen := map[Cell]bool{}
	ext := make([]Cell, 0, len(extension))
	for _, c := range extension {
		if !l.space.Contains(c) {
			return fmt.Errorf("semfield: cell %q is not in the space of language %s", c, l.name)
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		ext = append(ext, c)
	}
	l.byWord[word] = len(l.lexemes)
	l.lexemes = append(l.lexemes, Lexeme{Word: word, Extension: ext})
	for _, c := range ext {
		l.byCell[c] = append(l.byCell[c], word)
	}
	return nil
}

// MustAddLexeme is AddLexeme panicking on error; for statically known
// languages in tests and examples.
func (l *Language) MustAddLexeme(word string, extension ...Cell) {
	if err := l.AddLexeme(word, extension...); err != nil {
		panic(err)
	}
}

// Words returns the words of the language in insertion order.
func (l *Language) Words() []string {
	out := make([]string, len(l.lexemes))
	for i, lx := range l.lexemes {
		out[i] = lx.Word
	}
	return out
}

// Extension returns a copy of the extension of a word.
func (l *Language) Extension(word string) ([]Cell, bool) {
	i, ok := l.byWord[word]
	if !ok {
		return nil, false
	}
	return append([]Cell(nil), l.lexemes[i].Extension...), true
}

// WordsFor returns the words whose extension contains the cell, in insertion
// order. An uncovered cell yields an empty slice.
func (l *Language) WordsFor(c Cell) []string {
	return append([]string(nil), l.byCell[c]...)
}

// Covers reports whether some word of the language covers the cell.
func (l *Language) Covers(c Cell) bool {
	return len(l.byCell[c]) > 0
}

// Covered returns the cells covered by at least one word, in space order.
func (l *Language) Covered() []Cell {
	var out []Cell
	for _, c := range l.space.cells {
		if l.Covers(c) {
			out = append(out, c)
		}
	}
	return out
}

// IsPartition reports whether the language's lexemes are pairwise disjoint,
// i.e. whether the language divides (its part of) the field rather than
// layering near-synonyms over it.
func (l *Language) IsPartition() bool {
	for _, words := range l.byCell {
		if len(words) > 1 {
			return false
		}
	}
	return true
}

// Lexemes returns a copy of the lexeme list in insertion order.
func (l *Language) Lexemes() []Lexeme {
	out := make([]Lexeme, len(l.lexemes))
	for i, lx := range l.lexemes {
		out[i] = Lexeme{Word: lx.Word, Extension: append([]Cell(nil), lx.Extension...)}
	}
	return out
}

// Oppositions returns, for each word, the words it is directly opposed to:
// those whose extensions are disjoint from it but adjacent in the sense of
// sharing the field (both cover some cell of the other's lexeme's complement
// within the union of the two). In the structural view the paper endorses, a
// word's meaning is constituted by exactly these oppositions.
func (l *Language) Oppositions(word string) []string {
	ext, ok := l.Extension(word)
	if !ok {
		return nil
	}
	extSet := map[Cell]bool{}
	for _, c := range ext {
		extSet[c] = true
	}
	var out []string
	for _, lx := range l.lexemes {
		if lx.Word == word {
			continue
		}
		overlap := false
		for _, c := range lx.Extension {
			if extSet[c] {
				overlap = true
				break
			}
		}
		if !overlap {
			out = append(out, lx.Word)
		}
	}
	sort.Strings(out)
	return out
}
