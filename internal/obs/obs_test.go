package obs_test

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func scrape(t *testing.T, r *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.String()
}

func TestCounterAndGauge(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("t_events_total", "Events.")
	g := r.Gauge("t_depth", "Depth.")
	c.Inc()
	c.Add(41)
	g.Set(2.5)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	out := scrape(t, r)
	for _, want := range []string{
		"# HELP t_events_total Events.\n# TYPE t_events_total counter\nt_events_total 42\n",
		"# HELP t_depth Depth.\n# TYPE t_depth gauge\nt_depth 2.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *obs.Counter
	var g *obs.Gauge
	var h *obs.Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

// TestHistogramBucketBoundaries pins the le convention: a value equal to a
// bound lands in that bucket (inclusive upper bounds), one epsilon above
// lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("t_lat", "Latency.", []float64{1, 2, 4})
	h.Observe(1)    // bucket le=1
	h.Observe(1.01) // bucket le=2
	h.Observe(2)    // bucket le=2
	h.Observe(4)    // bucket le=4
	h.Observe(4.5)  // +Inf
	s := h.Snapshot()
	want := []int64{1, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if got, want := s.Sum, 1+1.01+2+4+4.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	// Cumulative exposition: le="4" must count everything up to 4.
	out := scrape(t, r)
	for _, want := range []string{
		`t_lat_bucket{le="1"} 1`,
		`t_lat_bucket{le="2"} 3`,
		`t_lat_bucket{le="4"} 4`,
		`t_lat_bucket{le="+Inf"} 5`,
		`t_lat_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}
}

// TestHistogramQuantile checks the bucketed estimate against exact
// quantiles of known distributions: the estimate must land within one
// bucket width of the truth.
func TestHistogramQuantile(t *testing.T) {
	bounds := obs.ExpBuckets(1, 2, 20) // 1 .. ~524288
	r := obs.NewRegistry()
	h := r.Histogram("t_q", "Q.", bounds)
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 0, 10_000)
	for i := 0; i < 10_000; i++ {
		// Log-uniform over [1, 65536]: every bucket gets traffic.
		v := math.Pow(2, rng.Float64()*16)
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Float64s(vals)
	s := h.Snapshot()
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact := vals[int(q*float64(len(vals)-1))]
		est := s.Quantile(q)
		// One doubling bucket of slack: the estimate interpolates within
		// the bucket holding the rank, so it is off by at most the bucket
		// width.
		if est < exact/2 || est > exact*2 {
			t.Errorf("q%.2f: estimate %g outside bucket tolerance of exact %g", q, est, exact)
		}
	}
	if !math.IsNaN(obs.HistogramSnapshot{}.Quantile(0.5)) {
		t.Error("empty snapshot quantile must be NaN")
	}
}

func TestHistogramMerge(t *testing.T) {
	bounds := []float64{1, 10, 100}
	r := obs.NewRegistry()
	whole := r.Histogram("t_whole", "W.", bounds)
	a := r.Histogram("t_a", "A.", bounds)
	b := r.Histogram("t_b", "B.", bounds)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		v := rng.Float64() * 120
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	merged := a.Snapshot()
	if err := merged.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	w := whole.Snapshot()
	if merged.Count != w.Count {
		t.Errorf("merged count %d != whole %d", merged.Count, w.Count)
	}
	for i := range w.Counts {
		if merged.Counts[i] != w.Counts[i] {
			t.Errorf("bucket %d: merged %d != whole %d", i, merged.Counts[i], w.Counts[i])
		}
	}
	if math.Abs(merged.Sum-w.Sum) > 1e-6 {
		t.Errorf("merged sum %g != whole %g", merged.Sum, w.Sum)
	}
	bad := obs.HistogramSnapshot{Bounds: []float64{1, 2}}
	if err := merged.Merge(bad); err == nil {
		t.Error("merging mismatched bounds must fail")
	}
}

// TestRegistryConcurrency hammers registration-time instruments from many
// goroutines while scraping concurrently; run under -race this is the
// registry's thread-safety proof, and the final counts must be exact.
func TestRegistryConcurrency(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("t_hits_total", "Hits.")
	h := r.Histogram("t_lat", "Latency.", obs.LatencyBuckets())
	vec := r.CounterVec("t_codes_total", "Codes.", "code")
	const workers, each = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(float64(i%1000) * 1e-6)
				vec.With("200").Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_, _ = r.WriteTo(&bytes.Buffer{})
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*each {
		t.Errorf("counter = %d, want %d", c.Value(), workers*each)
	}
	if got := h.Snapshot().Count; got != workers*each {
		t.Errorf("histogram count = %d, want %d", got, workers*each)
	}
	if got := vec.With("200").Value(); got != workers*each {
		t.Errorf("vec counter = %d, want %d", got, workers*each)
	}
}

// TestExpositionByteStable is the determinism property: two registries
// holding the same instrument states — registered in different orders —
// must expose byte-identical scrapes, and scraping twice must be
// byte-identical too.
func TestExpositionByteStable(t *testing.T) {
	build := func(order []int) *obs.Registry {
		r := obs.NewRegistry()
		steps := []func(){
			func() { r.Counter("t_b_total", "B.", obs.L("shard", "1")).Add(7) },
			func() { r.Counter("t_b_total", "B.", obs.L("shard", "0")).Add(3) },
			func() { r.Counter("t_a_total", "A.").Add(1) },
			func() { r.Histogram("t_h", "H.", []float64{1, 2}).Observe(1.5) },
			func() { r.GaugeFunc("t_g", "G.", func() float64 { return 4.25 }) },
		}
		for _, i := range order {
			steps[i]()
		}
		return r
	}
	r1 := build([]int{0, 1, 2, 3, 4})
	r2 := build([]int{4, 3, 2, 1, 0})
	s1, s2 := scrape(t, r1), scrape(t, r2)
	if s1 != s2 {
		t.Errorf("registration order changed the scrape:\n--- a\n%s--- b\n%s", s1, s2)
	}
	if again := scrape(t, r1); again != s1 {
		t.Errorf("second scrape differs:\n--- first\n%s--- second\n%s", s1, again)
	}
	// Families must appear sorted by name.
	ia := strings.Index(s1, "t_a_total")
	ib := strings.Index(s1, "t_b_total")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("families not sorted by name:\n%s", s1)
	}
	// Series within a family sorted by label value.
	i0 := strings.Index(s1, `t_b_total{shard="0"} 3`)
	i1 := strings.Index(s1, `t_b_total{shard="1"} 7`)
	if i0 < 0 || i1 < 0 || i0 > i1 {
		t.Errorf("series not sorted by label:\n%s", s1)
	}
}

func TestExpositionEscaping(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("t_esc_total", "line one\nline \\two", obs.L("path", "a\"b\\c\nd")).Inc()
	out := scrape(t, r)
	if !strings.Contains(out, `# HELP t_esc_total line one\nline \\two`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `t_esc_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := obs.NewRegistry()
	r.Counter("t_dup_total", "D.")
	mustPanic("duplicate series", func() { r.Counter("t_dup_total", "D.") })
	mustPanic("kind clash", func() { r.Gauge("t_dup_total", "D.") })
	mustPanic("help clash", func() { r.Counter("t_dup_total", "other", obs.L("a", "b")) })
	mustPanic("bad name", func() { r.Counter("0bad", "B.") })
	mustPanic("bad label name", func() { r.Counter("t_ok_total", "B.", obs.L("0bad", "v")) })
	mustPanic("empty buckets", func() { r.Histogram("t_h0", "H.", nil) })
	mustPanic("unsorted buckets", func() { r.Histogram("t_h1", "H.", []float64{2, 1}) })
	mustPanic("vec arity", func() { r.CounterVec("t_v_total", "V.", "a").With("x", "y") })
}
