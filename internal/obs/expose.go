package obs

import (
	"io"
	"sort"
	"strconv"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4). The output is byte-deterministic for a given metric
// state: families are sorted by name, series within a family by their
// canonical label key, and floats format through one shared routine — the
// property the exposition tests pin and the fuzz target exercises against
// hostile help strings and label values.

// WriteTo renders every registered family as Prometheus text, returning
// the bytes written. It holds the registry lock only while collecting the
// family list; instrument reads are the instruments' own atomic loads.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	// Series order within a family is registration order; sort a copy by
	// label key so scrapes are stable whatever order layers registered in.
	sorted := make([][]series, len(fams))
	for i, f := range fams {
		ss := append([]series(nil), f.series...)
		sort.Slice(ss, func(a, b int) bool { return ss[a].labelKey < ss[b].labelKey })
		sorted[i] = ss
	}
	r.mu.Unlock()

	var buf []byte
	for i, f := range fams {
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = appendEscapedHelp(buf, f.help)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind.String()...)
		buf = append(buf, '\n')
		for _, s := range sorted[i] {
			buf = s.expose(buf, f.name, s.labels)
		}
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// appendSample appends one sample line: name{labels,extra} value. suffix is
// appended to the family name (histogram _bucket/_sum/_count lines); extra
// is an additional label rendered after the constant ones (the histogram
// `le` label).
func appendSample(buf []byte, name, suffix string, labels []Label, extra *Label, value float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	if len(labels) > 0 || extra != nil {
		buf = append(buf, '{')
		for i, l := range labels {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendLabel(buf, l)
		}
		if extra != nil {
			if len(labels) > 0 {
				buf = append(buf, ',')
			}
			buf = appendLabel(buf, *extra)
		}
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = append(buf, formatFloat(value)...)
	buf = append(buf, '\n')
	return buf
}

// appendLabel appends name="escaped value".
func appendLabel(buf []byte, l Label) []byte {
	buf = append(buf, l.Name...)
	buf = append(buf, '=', '"')
	for i := 0; i < len(l.Value); i++ {
		switch c := l.Value[i]; c {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// appendEscapedHelp appends help text with the format's two escapes
// (backslash and newline).
func appendEscapedHelp(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, c)
		}
	}
	return buf
}

// formatFloat renders a sample value: shortest round-trip representation,
// the one formatting every exposition shares so identical states render
// identical bytes.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
