package obs_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

// FuzzExposition feeds hostile help text, label values and sample values
// through the text encoder and checks the two properties every scrape must
// hold: the output parses line-by-line as the exposition format (every
// non-comment line is `name[{labels}] value` with balanced, escaped label
// quoting), and encoding the same state twice is byte-identical.
func FuzzExposition(f *testing.F) {
	f.Add("Total requests.", "GET /query", 1.5, int64(3))
	f.Add("line\nbreak \\ slash", "quote\" slash\\ nl\n", math.Inf(1), int64(0))
	f.Add("", "", -0.0, int64(-7))
	f.Add("héłp", "væl\x00ue", 1e-300, int64(1<<62))
	f.Fuzz(func(t *testing.T, help, labelVal string, gv float64, cv int64) {
		r := obs.NewRegistry()
		r.Counter("fz_events_total", help, obs.L("tag", labelVal)).Add(cv)
		r.Gauge("fz_level", help).Set(gv)
		r.Histogram("fz_lat", help, []float64{0.5, 1, 2}).Observe(gv)

		var b1, b2 bytes.Buffer
		if _, err := r.WriteTo(&b1); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if _, err := r.WriteTo(&b2); err != nil {
			t.Fatalf("WriteTo(2): %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("two scrapes of one state differ:\n%q\n%q", b1.Bytes(), b2.Bytes())
		}
		checkExposition(t, b1.String())
	})
}

// checkExposition is a minimal exposition-format parser: it fails the test
// on any line a Prometheus scraper would reject.
func checkExposition(t *testing.T, out string) {
	t.Helper()
	if out != "" && !strings.HasSuffix(out, "\n") {
		t.Fatalf("output does not end in newline: %q", out)
	}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# HELP "):]
			if i := strings.IndexByte(rest, ' '); i <= 0 {
				t.Fatalf("comment line without metric name: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment form: %q", line)
		}
		parseSample(t, line)
	}
}

// parseSample validates one `name[{labels}] value` line.
func parseSample(t *testing.T, line string) {
	t.Helper()
	rest := line
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	name := rest[:i]
	if name == "" {
		t.Fatalf("sample with empty name: %q", line)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := parseLabels(t, line, rest)
		rest = rest[end:]
	}
	if !strings.HasPrefix(rest, " ") {
		t.Fatalf("no space before value: %q", line)
	}
	val := rest[1:]
	if val == "" || strings.ContainsAny(val, " \t") {
		t.Fatalf("malformed value %q in line %q", val, line)
	}
	// The formatter emits Go float syntax plus +Inf/-Inf/NaN, all of which
	// Prometheus accepts; just require it non-empty and space-free above.
}

// parseLabels walks a `{k="v",...}` block, enforcing escaped quoting, and
// returns the index just past the closing brace.
func parseLabels(t *testing.T, line, s string) int {
	t.Helper()
	i := 1 // past '{'
	for {
		start := i
		for i < len(s) && s[i] != '=' {
			if s[i] == '"' || s[i] == '}' || s[i] == ',' {
				t.Fatalf("malformed label name at %d in %q", i, line)
			}
			i++
		}
		if i == start || i >= len(s) {
			t.Fatalf("label block without name=: %q", line)
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			t.Fatalf("label value not quoted: %q", line)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					t.Fatalf("dangling escape: %q", line)
				}
				if c := s[i+1]; c != '\\' && c != '"' && c != 'n' {
					t.Fatalf("invalid escape \\%c: %q", c, line)
				}
				i++
			} else if s[i] == '\n' {
				t.Fatalf("raw newline inside label value: %q", line)
			}
			i++
		}
		if i >= len(s) {
			t.Fatalf("unterminated label value: %q", line)
		}
		i++ // past closing '"'
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		if i < len(s) && s[i] == '}' {
			return i + 1
		}
		t.Fatalf("expected , or } after label value: %q", line)
	}
}
