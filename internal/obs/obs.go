// Package obs is the engine's zero-dependency observability substrate: a
// concurrency-safe metrics registry of counters, gauges and log-bucketed
// histograms, exposed in the Prometheus text format. Every engine layer —
// the HTTP server, the query executor, the reasoner, the durable log and
// the store — registers its instruments here, and GET /metrics serves one
// deterministic scrape of all of them.
//
// Design constraints, in order:
//
//   - Hot-path updates are allocation-free and lock-free: Counter.Add and
//     Histogram.Observe are a handful of atomic operations, cheap enough to
//     sit on the 1024-row batch pipeline and the WAL group-commit path.
//   - Nil instruments are valid no-ops: a layer whose metrics were never
//     registered calls the same Add/Observe methods and pays one branch, so
//     instrumented code never needs an "is observability on?" conditional.
//   - Exposition is byte-deterministic: families sort by name, series sort
//     by label value, and floats format identically across scrapes, so two
//     registries holding the same state produce identical bytes (tested by
//     property test and fuzzed for parser-validity).
//
// Typical use:
//
//	reg := obs.NewRegistry()
//	hits := reg.Counter("onto_cache_hits_total", "Cache lookups that hit.")
//	lat := reg.Histogram("onto_query_seconds", "Query latency.", obs.LatencyBuckets())
//	...
//	hits.Inc()
//	lat.Observe(time.Since(start).Seconds())
//	...
//	mux.Handle("/metrics", reg.Handler())
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant name/value pair attached to an instrument at
// registration. Instruments sharing a family name but differing in labels
// are distinct series under one HELP/TYPE header, exactly as Prometheus
// renders a labeled family.
type Label struct {
	// Name must match the Prometheus label-name charset
	// ([a-zA-Z_][a-zA-Z0-9_]*); Value may be any string (escaped on
	// exposition).
	Name, Value string
}

// L builds a Label — sugar for registration call sites.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// kind is the exposition TYPE of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// String renders the TYPE the exposition format spells.
func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one registered instrument: its sorted label set and the hook
// that appends its sample lines.
type series struct {
	labelKey string // canonical sorted "k=v,k=v" form, the within-family sort key
	labels   []Label
	expose   func(buf []byte, name string, labels []Label) []byte
}

// family groups every series registered under one metric name; all of them
// must agree on help text and kind (enforced at registration).
type family struct {
	name   string
	help   string
	kind   kind
	series []series
}

// Registry holds a set of metric families and renders them as one
// Prometheus text scrape. Create one with NewRegistry; registration and
// exposition are safe for concurrent use with each other and with
// hot-path updates on the registered instruments.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds one series under name, validating family consistency.
// Registration errors are programmer errors (duplicate series, one name
// used with two helps or kinds, malformed names) and panic.
func (r *Registry) register(name, help string, k kind, labels []Label, expose func(buf []byte, name string, labels []Label) []byte) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: metric name %q is not a valid Prometheus metric name", name))
	}
	for _, l := range labels {
		if !validName(l.Name) {
			panic(fmt.Sprintf("obs: label name %q on metric %q is not a valid Prometheus label name", l.Name, name))
		}
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	key := labelKey(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		r.families[name] = f
	} else {
		if f.kind != k {
			panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, k))
		}
		if f.help != help {
			panic(fmt.Sprintf("obs: metric %q registered with two different help strings", name))
		}
		for _, s := range f.series {
			if s.labelKey == key {
				panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, key))
			}
		}
	}
	f.series = append(f.series, series{labelKey: key, labels: ls, expose: expose})
}

// labelKey canonicalizes a sorted label set into the within-family sort key.
func labelKey(ls []Label) string {
	key := ""
	for i, l := range ls {
		if i > 0 {
			key += ","
		}
		key += l.Name + "=" + l.Value
	}
	return key
}

// validName reports whether s is a legal Prometheus metric/label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing count. The nil Counter is a valid
// no-op, so uninstrumented layers call the same methods.
type Counter struct {
	v atomic.Int64
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, labels, func(buf []byte, fam string, ls []Label) []byte {
		return appendSample(buf, fam, "", ls, nil, float64(c.Value()))
	})
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (which must be non-negative; counters never go down).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The nil Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Gauge registers and returns a settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, labels, func(buf []byte, fam string, ls []Label) []byte {
		return appendSample(buf, fam, "", ls, nil, g.Value())
	})
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on the nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// GaugeFunc registers a gauge whose value is read by calling fn at scrape
// time — the form for values another layer already tracks (triple counts,
// uptime, sequence numbers). fn must be safe to call from any goroutine and
// should be cheap; it runs on every scrape.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, func(buf []byte, fam string, ls []Label) []byte {
		return appendSample(buf, fam, "", ls, nil, fn())
	})
}

// CounterFunc registers a counter whose value is read by calling fn at
// scrape time — for monotone counts another layer already tracks (fsyncs,
// pool round trips). fn must be monotone non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, labels, func(buf []byte, fam string, ls []Label) []byte {
		return appendSample(buf, fam, "", ls, nil, fn())
	})
}

// CounterVec is a family of counters whose label values are discovered at
// runtime (HTTP status codes, operator kinds). Children are created on
// first use and live forever; keep the value space small.
type CounterVec struct {
	reg        *Registry
	name, help string
	labelNames []string

	mu       sync.Mutex
	children map[string]*Counter
}

// CounterVec registers a runtime-labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("obs: CounterVec %q needs at least one label name", name))
	}
	return &CounterVec{
		reg:        r,
		name:       name,
		help:       help,
		labelNames: append([]string(nil), labelNames...),
		children:   make(map[string]*Counter),
	}
}

// With returns the child counter for the given label values (one per label
// name, in registration order), creating and registering it on first use.
// Callers on hot paths should cache the returned *Counter.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("obs: CounterVec %q wants %d label values, got %d", v.name, len(v.labelNames), len(values)))
	}
	key := ""
	for i, val := range values {
		if i > 0 {
			key += "\x00"
		}
		key += val
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.children[key]; c != nil {
		return c
	}
	labels := make([]Label, len(values))
	for i, val := range values {
		labels[i] = Label{Name: v.labelNames[i], Value: val}
	}
	c := v.reg.Counter(v.name, v.help, labels...) //ontolint:ignore lockcheck fixed one-way order: CounterVec.mu always nests outside Registry.mu and registry code never calls back into a CounterVec, so the nesting cannot deadlock; holding mu across registration keeps first-use creation race-free (two concurrent With calls must not both register the series)
	v.children[key] = c
	return c
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

// Since is a convenience for latency observations: it observes the seconds
// elapsed since start. The nil Histogram is a valid no-op.
func (h *Histogram) Since(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}
