package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// This file is the histogram instrument: log-bucketed distributions with
// atomic hot-path observation, cumulative Prometheus exposition, and
// quantile estimation for tests and EXPLAIN summaries.

// Histogram is a distribution of observations over fixed buckets. A value v
// falls into the first bucket whose upper bound is >= v (bounds are
// inclusive, the Prometheus `le` convention); values above every bound land
// in the implicit +Inf bucket. Observe is lock-free: one bucket increment,
// one count increment, one CAS loop for the sum. The nil Histogram is a
// valid no-op.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// Histogram registers and returns a histogram series over the given bucket
// upper bounds, which must be sorted strictly ascending and non-empty
// (ExpBuckets, LatencyBuckets and SizeBuckets build standard schedules).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := newHistogram(name, bounds)
	r.register(name, help, kindHistogram, labels, func(buf []byte, fam string, ls []Label) []byte {
		return h.Snapshot().expose(buf, fam, ls)
	})
	return h
}

// newHistogram validates the bounds and builds the unregistered instrument.
func newHistogram(name string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bucket bounds must be sorted strictly ascending", name))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. Allocation-free; safe for any number of
// concurrent observers.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Branch-predictable linear scan: bucket schedules are a few dozen
	// entries and most observations land in the first few buckets of a
	// latency histogram, so the scan beats a binary search in practice.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state, the
// form quantile estimation and merging operate on. Counts[i] is the
// non-cumulative count of bucket i (Counts[len(Bounds)] is the +Inf
// bucket).
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds, sorted ascending.
	Bounds []float64
	// Counts holds one non-cumulative count per bucket, plus the +Inf
	// bucket at the end.
	Counts []int64
	// Count and Sum are the total observation count and value sum.
	Count int64
	Sum   float64
}

// Snapshot copies the histogram's current state. Concurrent observers may
// land between the bucket reads — each bucket's value is exact at its own
// read, the cross-bucket total is approximate under concurrency, exact on
// a quiescent histogram. The nil Histogram snapshots to the zero value.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Merge adds another snapshot's counts into this one. Both must share the
// same bucket bounds; merging is how per-shard or per-replica histograms
// aggregate into one distribution.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if len(s.Bounds) != len(o.Bounds) {
		return fmt.Errorf("obs: merging histograms with %d and %d buckets", len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bucket bounds at %d (%g vs %g)", i, s.Bounds[i], o.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return nil
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation within the bucket holding the
// target rank — the standard bucketed estimate, exact to within one bucket
// width. It returns NaN on an empty snapshot; the +Inf bucket clamps to
// the highest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(s.Bounds) {
			// The +Inf bucket has no upper bound to interpolate toward;
			// clamp to the highest finite bound.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// expose appends the snapshot's cumulative bucket lines, sum and count in
// the Prometheus histogram convention.
func (s HistogramSnapshot) expose(buf []byte, name string, labels []Label) []byte {
	cum := int64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		buf = appendSample(buf, name+"_bucket", "", labels, &Label{Name: "le", Value: formatFloat(bound)}, float64(cum))
	}
	cum += s.Counts[len(s.Bounds)]
	buf = appendSample(buf, name+"_bucket", "", labels, &Label{Name: "le", Value: "+Inf"}, float64(cum))
	buf = appendSample(buf, name+"_sum", "", labels, nil, s.Sum)
	buf = appendSample(buf, name+"_count", "", labels, nil, float64(s.Count))
	return buf
}

// ExpBuckets builds n exponential bucket bounds: start, start*factor,
// start*factor², … — the log-bucketed schedule every latency and size
// histogram in the engine uses. start must be positive and factor > 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the standard latency schedule: 1µs to ~8.6s in
// doubling buckets (24 bounds), covering everything from a cache hit to a
// timed-out query in one histogram.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 24) }

// SizeBuckets is the standard size/count schedule: 1 to ~1M in doubling
// buckets (21 bounds) — solution counts, batch sizes, delta sizes.
func SizeBuckets() []float64 { return ExpBuckets(1, 2, 21) }
