package hermeneutic

// This file builds the paper's worked example: the "trespassers will be
// prosecuted" sign, which reads as a threat when encountered on a door and as
// a report when encountered as a headline, even though the words are the
// same.

// TrespassersSign returns the sign as a text, the shared code connecting its
// cues to the threat-notice and news-report frames, and the two reader
// contexts the paper contrasts: the sign encountered on a door of a private
// building, and the same words encountered as a newspaper headline.
func TrespassersSign() (*Text, *Code, *Context, *Context) {
	text, err := NewText("trespassers will be prosecuted",
		Cue{Surface: "trespassers", Senses: []Sense{
			"the-reader-should-they-enter", // the threat reading: it refers to me
			"unidentified-past-offenders",  // the report reading: some people somewhere
		}},
		Cue{Surface: "will be prosecuted", Senses: []Sense{
			"threat-of-punishment",
			"prediction-of-legal-proceedings",
		}},
		Cue{Surface: "undated durable lettering", Senses: []Sense{
			"standing-norm",
			"news-of-the-day",
		}},
	)
	if err != nil {
		panic(err)
	}

	code, err := NewCode(
		[]Frame{"threat-notice", "news-report"},
		[]Convention{
			{Frame: "threat-notice", Surface: "trespassers", Sense: "the-reader-should-they-enter", Weight: 2},
			{Frame: "news-report", Surface: "trespassers", Sense: "unidentified-past-offenders", Weight: 2},
			{Frame: "threat-notice", Surface: "will be prosecuted", Sense: "threat-of-punishment", Weight: 2},
			{Frame: "news-report", Surface: "will be prosecuted", Sense: "prediction-of-legal-proceedings", Weight: 2},
			{Frame: "threat-notice", Surface: "undated durable lettering", Sense: "standing-norm", Weight: 1},
			{Frame: "news-report", Surface: "undated durable lettering", Sense: "news-of-the-day", Weight: 1},
		},
	)
	if err != nil {
		panic(err)
	}

	// The sign is screwed to a door of a building the reader is about to
	// enter: private property, authority backing the proprietor, durable
	// plastic. All of this is situation, not text.
	door := &Context{
		Name: "sign on a door",
		FramePriors: map[Frame]float64{
			"threat-notice": 4,
			"news-report":   1,
		},
	}
	// The same words set as a headline over a column of newsprint.
	news := &Context{
		Name: "newspaper headline",
		FramePriors: map[Frame]float64{
			"threat-notice": 1,
			"news-report":   4,
		},
	}
	return text, code, door, news
}
