package hermeneutic

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTrespassersSignReadings(t *testing.T) {
	text, code, door, news := TrespassersSign()

	onDoor := Interpret(text, code, door, 10)
	if onDoor.Frame != "threat-notice" {
		t.Errorf("door reading frame = %q, want threat-notice", onDoor.Frame)
	}
	if onDoor.Senses[0] != "the-reader-should-they-enter" {
		t.Errorf("door reading of 'trespassers' = %q, want the-reader-should-they-enter", onDoor.Senses[0])
	}
	if onDoor.AmbiguityRate() != 0 {
		t.Errorf("door reading ambiguity = %f, want 0", onDoor.AmbiguityRate())
	}
	if !onDoor.Converged {
		t.Error("door reading did not converge")
	}

	inPaper := Interpret(text, code, news, 10)
	if inPaper.Frame != "news-report" {
		t.Errorf("news reading frame = %q, want news-report", inPaper.Frame)
	}
	if inPaper.Senses[0] != "unidentified-past-offenders" {
		t.Errorf("news reading of 'trespassers' = %q, want unidentified-past-offenders", inPaper.Senses[0])
	}

	// Same text, same code, different readers: the readings disagree on
	// every cue — the paper's point that the missing elements "must be
	// supplied by a specific situation".
	if ag := Agreement(onDoor, inPaper); ag != 0 {
		t.Errorf("Agreement(door, news) = %f, want 0", ag)
	}
	if ag := Agreement(onDoor, onDoor); ag != 1 {
		t.Errorf("Agreement of a reading with itself = %f, want 1", ag)
	}
}

func TestTrespassersSignUnderDetermination(t *testing.T) {
	text, code, _, _ := TrespassersSign()
	// With the reader removed, the code alone supports both frames equally,
	// so every cue stays ambiguous.
	if u := UnderDetermination(text, code, 10); u != 1 {
		t.Errorf("UnderDetermination = %f, want 1 (every cue is tied without a situation)", u)
	}
	r := Interpret(text, code, Acontextual(), 10)
	for i := range text.Cues {
		if !r.IsAmbiguous(i) {
			t.Errorf("acontextual reading fixed cue %d; it should not be able to", i)
		}
	}
}

func TestAccuracy(t *testing.T) {
	text, code, door, _ := TrespassersSign()
	intended := []Sense{"the-reader-should-they-enter", "threat-of-punishment", "standing-norm"}
	contextual := Interpret(text, code, door, 10)
	if acc := Accuracy(contextual, intended); acc != 1 {
		t.Errorf("contextual accuracy = %f, want 1", acc)
	}
	acontextual := Interpret(text, code, Acontextual(), 10)
	if acc := Accuracy(acontextual, intended); acc != 0 {
		t.Errorf("acontextual accuracy = %f, want 0 (all cues ambiguous count as errors)", acc)
	}
	if acc := Accuracy(contextual, nil); acc != 0 {
		t.Errorf("Accuracy with no intention = %f, want 0", acc)
	}
	if acc := Accuracy(contextual, intended[:1]); acc != 0 {
		t.Errorf("Accuracy with mismatched length = %f, want 0", acc)
	}
}

func TestNewTextValidation(t *testing.T) {
	if _, err := NewText("t", Cue{Surface: "", Senses: []Sense{"a"}}); err == nil {
		t.Error("accepted a cue with an empty surface")
	}
	if _, err := NewText("t", Cue{Surface: "x", Senses: nil}); err == nil {
		t.Error("accepted a cue with no senses")
	}
	if _, err := NewText("t", Cue{Surface: "x", Senses: []Sense{"a"}}); err != nil {
		t.Errorf("rejected a valid text: %v", err)
	}
}

func TestNewCodeValidation(t *testing.T) {
	if _, err := NewCode([]Frame{"f"}, []Convention{{Frame: "g", Surface: "x", Sense: "a", Weight: 1}}); err == nil {
		t.Error("accepted a convention referencing an undeclared frame")
	}
	if _, err := NewCode([]Frame{"f"}, []Convention{{Frame: "f", Surface: "x", Sense: "a", Weight: 0}}); err == nil {
		t.Error("accepted a zero-weight convention")
	}
	code, err := NewCode([]Frame{"f", "g"}, []Convention{{Frame: "f", Surface: "x", Sense: "a", Weight: 1}})
	if err != nil {
		t.Fatalf("rejected a valid code: %v", err)
	}
	if len(code.Frames()) != 2 || len(code.Conventions()) != 1 {
		t.Errorf("Frames/Conventions = %d/%d, want 2/1", len(code.Frames()), len(code.Conventions()))
	}
}

func TestInterpretDefaults(t *testing.T) {
	text, code, door, _ := TrespassersSign()
	// maxIterations below 1 is clamped.
	r := Interpret(text, code, door, 0)
	if r.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1", r.Iterations)
	}
	// A nil context behaves as the acontextual reader.
	nilCtx := Interpret(text, code, nil, 5)
	plain := Interpret(text, code, Acontextual(), 5)
	if Agreement(nilCtx, plain) != 1 && nilCtx.AmbiguityRate() != plain.AmbiguityRate() {
		t.Error("nil context should behave like Acontextual()")
	}
}

func TestDescribe(t *testing.T) {
	text, code, door, _ := TrespassersSign()
	r := Interpret(text, code, door, 10)
	d := Describe(text, r)
	if !strings.Contains(d, "threat-notice") || !strings.Contains(d, "trespassers") {
		t.Errorf("Describe output missing expected content:\n%s", d)
	}
	acontextual := Interpret(text, code, Acontextual(), 10)
	if !strings.Contains(Describe(text, acontextual), "[ambiguous]") {
		t.Error("Describe should flag ambiguous cues")
	}
}

func TestAgreementLengthMismatch(t *testing.T) {
	a := Reading{Senses: []Sense{"x"}}
	b := Reading{Senses: []Sense{"x", "y"}}
	if Agreement(a, b) != 0 {
		t.Error("Agreement of different-length readings should be 0")
	}
	if Agreement(Reading{}, Reading{}) != 0 {
		t.Error("Agreement of empty readings should be 0")
	}
}

// TestInterpretProperties checks, over random codes and texts, that the
// interpretation is well-formed: every chosen sense is a candidate of its
// cue, the ambiguity rate lies in [0, 1], frame weights are a distribution,
// and richer contexts never increase ambiguity relative to the acontextual
// reading of the same text.
func TestInterpretProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		text, code, intendedFrame := randomTextAndCode(rng)
		ctx := &Context{Name: "rich", FramePriors: map[Frame]float64{intendedFrame: 5}}

		contextual := Interpret(text, code, ctx, 8)
		acontextual := Interpret(text, code, Acontextual(), 8)

		for i, cue := range text.Cues {
			if !containsSense(cue.Senses, contextual.Senses[i]) {
				return false
			}
		}
		if contextual.AmbiguityRate() < 0 || contextual.AmbiguityRate() > 1 {
			return false
		}
		total := 0.0
		for _, w := range contextual.FrameWeights {
			if w < 0 {
				return false
			}
			total += w
		}
		if total < 0.999 || total > 1.001 {
			return false
		}
		return contextual.AmbiguityRate() <= acontextual.AmbiguityRate()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// randomTextAndCode builds a random two-frame code and a text whose cues each
// have one sense conventionally tied to each frame, mirroring the structure
// of the trespassers example at arbitrary size.
func randomTextAndCode(rng *rand.Rand) (*Text, *Code, Frame) {
	frames := []Frame{"frame-A", "frame-B"}
	nCues := 2 + rng.Intn(6)
	cues := make([]Cue, 0, nCues)
	var conventions []Convention
	for i := 0; i < nCues; i++ {
		surface := fmt.Sprintf("cue-%d", i)
		sa := Sense(fmt.Sprintf("sense-%d-a", i))
		sb := Sense(fmt.Sprintf("sense-%d-b", i))
		cues = append(cues, Cue{Surface: surface, Senses: []Sense{sa, sb}})
		conventions = append(conventions,
			Convention{Frame: "frame-A", Surface: surface, Sense: sa, Weight: 1 + rng.Float64()},
			Convention{Frame: "frame-B", Surface: surface, Sense: sb, Weight: 1 + rng.Float64()},
		)
	}
	text, err := NewText("random", cues...)
	if err != nil {
		panic(err)
	}
	code, err := NewCode(frames, conventions)
	if err != nil {
		panic(err)
	}
	intended := frames[rng.Intn(len(frames))]
	return text, code, intended
}

func containsSense(ss []Sense, s Sense) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
