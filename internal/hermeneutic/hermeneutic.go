// Package hermeneutic operationalizes the paper's §3 argument about the
// hermeneutic circle and the "death of the reader": texts are sequences of
// ambiguous cues, a shared code supplies the conventions that connect cues,
// frames and senses, and a reader's context supplies the situational priors
// over frames. Interpretation is the fixed-point process the paper (citing
// Gadamer) describes — "the parts of the text can be understood in terms of
// the whole context, and the context becomes intelligible by means of the
// parts" — implemented as an alternating re-estimation of frame weights from
// chosen senses and of senses from frame weights.
//
// The package measures two things the paper asserts qualitatively:
//
//   - under-determination: how many cues a context-free ("reader removed")
//     decoding cannot fix;
//   - reader dependence: how much the readings produced under different
//     contexts differ from each other, the paper's trespassers-sign example.
package hermeneutic

import (
	"fmt"
	"math"
	"sort"
)

// Sense is one candidate reading of a cue.
type Sense string

// Frame is a global reading the whole text can be placed under (a genre or
// discourse type: threat notice, news report, shopping list, ...). Frames are
// the "whole" of the hermeneutic circle.
type Frame string

// Cue is an occurrence in a text: a surface form with its candidate senses.
type Cue struct {
	Surface string
	Senses  []Sense
}

// Text is an ordered sequence of cues. The order is not interpreted by the
// fixed point (conventions act per-cue); it matters only for reporting.
type Text struct {
	Title string
	Cues  []Cue
}

// NewText builds a text, validating that every cue has at least one sense.
func NewText(title string, cues ...Cue) (*Text, error) {
	for i, c := range cues {
		if c.Surface == "" {
			return nil, fmt.Errorf("hermeneutic: cue %d has an empty surface form", i)
		}
		if len(c.Senses) == 0 {
			return nil, fmt.Errorf("hermeneutic: cue %q has no candidate senses", c.Surface)
		}
	}
	return &Text{Title: title, Cues: cues}, nil
}

// Convention is one element of the shared code: within a frame, a surface
// form supports one of its senses with a given strength. Conventions are what
// the paper calls "the complex network of conventions, discourses and
// situatedness" — the part of meaning that is social rather than authorial.
type Convention struct {
	Frame   Frame
	Surface string
	Sense   Sense
	Weight  float64
}

// Code is a shared system of signification: the frames a culture has
// available and the conventions connecting surfaces, senses and frames.
type Code struct {
	frames      []Frame
	conventions []Convention
	index       map[string][]Convention // by surface
}

// NewCode builds a code from its frames and conventions. Conventions must
// reference declared frames and have positive weight.
func NewCode(frames []Frame, conventions []Convention) (*Code, error) {
	declared := map[Frame]bool{}
	for _, f := range frames {
		declared[f] = true
	}
	c := &Code{frames: append([]Frame(nil), frames...), index: map[string][]Convention{}}
	for _, conv := range conventions {
		if !declared[conv.Frame] {
			return nil, fmt.Errorf("hermeneutic: convention references undeclared frame %q", conv.Frame)
		}
		if conv.Weight <= 0 {
			return nil, fmt.Errorf("hermeneutic: convention for %q/%q has non-positive weight", conv.Surface, conv.Sense)
		}
		c.conventions = append(c.conventions, conv)
		c.index[conv.Surface] = append(c.index[conv.Surface], conv)
	}
	return c, nil
}

// Frames returns the declared frames in declaration order.
func (c *Code) Frames() []Frame {
	return append([]Frame(nil), c.frames...)
}

// Conventions returns a copy of the convention list.
func (c *Code) Conventions() []Convention {
	return append([]Convention(nil), c.conventions...)
}

// Context is a reader's situation: a name for reporting and a prior weight
// over frames induced by where and how the text is encountered (a plastic
// sign screwed to a door vs. a newspaper page). A nil or empty context is the
// "reader removed" case: all frames equally likely.
type Context struct {
	Name        string
	FramePriors map[Frame]float64
}

// Acontextual returns the empty context the paper accuses ontology of
// assuming: no situation, no priors, the algorithm as reader.
func Acontextual() *Context {
	return &Context{Name: "acontextual"}
}

// Reading is the result of interpreting a text.
type Reading struct {
	// Frame is the dominant frame at the fixed point.
	Frame Frame
	// FrameWeights is the final normalized weight of every frame.
	FrameWeights map[Frame]float64
	// Senses maps cue index to the chosen sense.
	Senses []Sense
	// Ambiguous lists the indexes of cues whose best sense was not unique
	// (within a small tolerance): cues the reading cannot actually fix.
	Ambiguous []int
	// Iterations is the number of passes of the circle executed, and
	// Converged whether a fixed point was reached before the limit.
	Iterations int
	Converged  bool
}

// IsAmbiguous reports whether the cue at index i was left ambiguous.
func (r Reading) IsAmbiguous(i int) bool {
	for _, a := range r.Ambiguous {
		if a == i {
			return true
		}
	}
	return false
}

// AmbiguityRate is the fraction of cues left ambiguous.
func (r Reading) AmbiguityRate() float64 {
	if len(r.Senses) == 0 {
		return 0
	}
	return float64(len(r.Ambiguous)) / float64(len(r.Senses))
}

const tolerance = 1e-9

// Interpret runs the hermeneutic circle on a text: starting from the
// context's frame priors (uniform if absent), it alternately chooses, for
// every cue, the sense best supported by the current frame weights, and
// re-estimates the frame weights from the chosen senses, until the chosen
// senses stop changing or maxIterations passes have run. maxIterations values
// below 1 are treated as 1.
func Interpret(text *Text, code *Code, ctx *Context, maxIterations int) Reading {
	if maxIterations < 1 {
		maxIterations = 1
	}
	if ctx == nil {
		ctx = Acontextual()
	}
	frames := code.Frames()
	weights := initialWeights(frames, ctx)

	reading := Reading{FrameWeights: weights, Senses: make([]Sense, len(text.Cues))}
	var prev []Sense
	for iter := 1; iter <= maxIterations; iter++ {
		reading.Iterations = iter
		reading.Ambiguous = reading.Ambiguous[:0]
		ambiguous := make(map[int]bool, len(text.Cues))
		// Part from whole: choose each cue's sense under the current frame
		// weights.
		for i, cue := range text.Cues {
			sense, tied := bestSense(cue, code, weights)
			reading.Senses[i] = sense
			if tied {
				reading.Ambiguous = append(reading.Ambiguous, i)
				ambiguous[i] = true
			}
		}
		// Whole from parts: re-estimate the frame weights from the senses
		// just chosen, on top of the context's priors. Cues the current pass
		// could not actually fix contribute nothing: an arbitrary
		// tie-breaking choice is the algorithm's, not the text's, and letting
		// it feed back would manufacture a reading out of nothing.
		weights = reestimate(frames, ctx, code, text, reading.Senses, ambiguous)
		reading.FrameWeights = weights
		if prev != nil && equalSenses(prev, reading.Senses) {
			reading.Converged = true
			break
		}
		prev = append(prev[:0], reading.Senses...)
	}
	reading.Frame = dominantFrame(frames, weights)
	return reading
}

// initialWeights normalizes the context's priors over the declared frames,
// falling back to uniform for frames without a prior (and entirely uniform
// for an empty context).
func initialWeights(frames []Frame, ctx *Context) map[Frame]float64 {
	weights := make(map[Frame]float64, len(frames))
	total := 0.0
	for _, f := range frames {
		w := 1.0
		if ctx.FramePriors != nil {
			if p, ok := ctx.FramePriors[f]; ok {
				w = p
			}
		}
		if w < 0 {
			w = 0
		}
		weights[f] = w
		total += w
	}
	if total == 0 {
		for _, f := range frames {
			weights[f] = 1.0 / float64(len(frames))
		}
		return weights
	}
	for f := range weights {
		weights[f] /= total
	}
	return weights
}

// bestSense scores each candidate sense of the cue by the frame-weighted sum
// of supporting conventions and returns the best one, reporting whether the
// maximum was tied. Senses with no supporting convention score zero; if all
// score zero the cue is ambiguous and the first sense is returned as a
// placeholder.
func bestSense(cue Cue, code *Code, weights map[Frame]float64) (Sense, bool) {
	scores := make([]float64, len(cue.Senses))
	for _, conv := range code.index[cue.Surface] {
		for i, s := range cue.Senses {
			if conv.Sense == s {
				scores[i] += conv.Weight * weights[conv.Frame]
			}
		}
	}
	bestIdx := 0
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[bestIdx]+tolerance {
			bestIdx = i
		}
	}
	ties := 0
	for i := range scores {
		if math.Abs(scores[i]-scores[bestIdx]) <= tolerance {
			ties++
		}
	}
	return cue.Senses[bestIdx], ties > 1
}

// reestimate recomputes normalized frame weights: the context prior plus the
// weight of every convention compatible with a chosen sense, skipping cues
// marked ambiguous.
func reestimate(frames []Frame, ctx *Context, code *Code, text *Text, senses []Sense, ambiguous map[int]bool) map[Frame]float64 {
	weights := make(map[Frame]float64, len(frames))
	for _, f := range frames {
		w := 1.0
		if ctx.FramePriors != nil {
			if p, ok := ctx.FramePriors[f]; ok {
				w = p
			}
		}
		if w < 0 {
			w = 0
		}
		weights[f] = w
	}
	for i, cue := range text.Cues {
		if ambiguous[i] {
			continue
		}
		for _, conv := range code.index[cue.Surface] {
			if conv.Sense == senses[i] {
				weights[conv.Frame] += conv.Weight
			}
		}
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total > 0 {
		for f := range weights {
			weights[f] /= total
		}
	}
	return weights
}

// dominantFrame returns the highest-weighted frame, breaking ties by
// declaration order.
func dominantFrame(frames []Frame, weights map[Frame]float64) Frame {
	if len(frames) == 0 {
		return ""
	}
	best := frames[0]
	for _, f := range frames[1:] {
		if weights[f] > weights[best]+tolerance {
			best = f
		}
	}
	return best
}

func equalSenses(a, b []Sense) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Agreement is the fraction of cues on which two readings of the same text
// choose the same sense, counting ambiguous cues as disagreements. It is the
// measure behind the paper's claim that readings are reader-relative: if
// meaning were fully encoded in the text, Agreement would be 1 for all pairs
// of competent readers.
func Agreement(a, b Reading) float64 {
	if len(a.Senses) == 0 || len(a.Senses) != len(b.Senses) {
		return 0
	}
	same := 0
	for i := range a.Senses {
		if a.Senses[i] == b.Senses[i] && !a.IsAmbiguous(i) && !b.IsAmbiguous(i) {
			same++
		}
	}
	return float64(same) / float64(len(a.Senses))
}

// Accuracy is the fraction of cues whose chosen sense matches the intended
// senses, counting ambiguous cues as errors (the reading did not actually fix
// them). It is used by experiment E6, where synthetic texts are generated
// with a known intention.
func Accuracy(r Reading, intended []Sense) float64 {
	if len(intended) == 0 || len(r.Senses) != len(intended) {
		return 0
	}
	correct := 0
	for i := range intended {
		if r.Senses[i] == intended[i] && !r.IsAmbiguous(i) {
			correct++
		}
	}
	return float64(correct) / float64(len(intended))
}

// UnderDetermination measures how much of the text the code alone cannot fix:
// it interprets the text acontextually and returns the ambiguity rate — the
// fraction of cues whose sense remains tied when every frame is equally
// available. It is the executable version of the paper's claim that "none of
// these elements, necessary for understanding, is in the text".
func UnderDetermination(text *Text, code *Code, maxIterations int) float64 {
	return Interpret(text, code, Acontextual(), maxIterations).AmbiguityRate()
}

// Describe renders a reading against its text for human consumption.
func Describe(text *Text, r Reading) string {
	out := fmt.Sprintf("%s — frame %q (converged=%v after %d iterations)\n", text.Title, r.Frame, r.Converged, r.Iterations)
	for i, cue := range text.Cues {
		marker := ""
		if r.IsAmbiguous(i) {
			marker = "  [ambiguous]"
		}
		out += fmt.Sprintf("  %-24s -> %s%s\n", cue.Surface, r.Senses[i], marker)
	}
	frames := make([]string, 0, len(r.FrameWeights))
	for f := range r.FrameWeights {
		frames = append(frames, string(f))
	}
	sort.Strings(frames)
	for _, f := range frames {
		out += fmt.Sprintf("  frame %-20s %.3f\n", f, r.FrameWeights[Frame(f)])
	}
	return out
}
