package hermeneutic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func trespassersFixture() (*Text, *Code, *Context, []Sense) {
	text, code, door, _ := TrespassersSign()
	intended := []Sense{"the-reader-should-they-enter", "threat-of-punishment", "standing-norm"}
	return text, code, door, intended
}

func TestTransmissionChainValidation(t *testing.T) {
	text, code, door, intended := trespassersFixture()
	rng := rand.New(rand.NewSource(1))
	if _, err := TransmissionChain(rng, nil, code, door, intended, ChainParams{Readers: 2}); err == nil {
		t.Error("accepted a nil text")
	}
	if _, err := TransmissionChain(rng, text, code, door, intended[:1], ChainParams{Readers: 2}); err == nil {
		t.Error("accepted mismatched intended senses")
	}
}

func TestTransmissionChainNoNoise(t *testing.T) {
	text, code, door, intended := trespassersFixture()
	rng := rand.New(rand.NewSource(2))
	res, err := TransmissionChain(rng, text, code, door, intended, ChainParams{Readers: 5, Noise: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 5 {
		t.Fatalf("outcomes = %d, want 5", len(res.Outcomes))
	}
	// With no drift every reader shares the author's situation: situated and
	// policed readings coincide, fidelity stays 1, nothing is overridden.
	for _, o := range res.Outcomes {
		if o.SituatedFidelity != 1 || o.PolicedFidelity != 1 {
			t.Errorf("position %d: fidelities %f/%f, want 1/1", o.Position, o.SituatedFidelity, o.PolicedFidelity)
		}
		if o.OverrideRate != 0 {
			t.Errorf("position %d: override rate %f, want 0", o.Position, o.OverrideRate)
		}
	}
	if res.MeanOverrideRate() != 0 || res.MeanSituatedFidelity() != 1 {
		t.Error("chain means inconsistent with per-reader outcomes")
	}
}

func TestTransmissionChainWithDrift(t *testing.T) {
	text, code, door, intended := trespassersFixture()
	// Average over several chains: with substantial drift the situated
	// fidelity at the end of a long chain falls below the policed fidelity,
	// and the policed regime has to override a non-trivial share of readings.
	var situatedEnd, policedEnd, override float64
	const trials = 40
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		res, err := TransmissionChain(rng, text, code, door, intended, ChainParams{Readers: 12, Noise: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		last := res.Outcomes[len(res.Outcomes)-1]
		situatedEnd += last.SituatedFidelity
		policedEnd += last.PolicedFidelity
		override += res.MeanOverrideRate()
	}
	situatedEnd /= trials
	policedEnd /= trials
	override /= trials
	if policedEnd != 1 {
		t.Errorf("policed fidelity at the end of the chain = %f, want 1 (the canonical context never moves)", policedEnd)
	}
	if situatedEnd >= 0.95 {
		t.Errorf("situated fidelity at the end of a noisy chain = %f; drift should have eroded it", situatedEnd)
	}
	if override <= 0 {
		t.Error("a noisy chain should force the policed regime to override some readings")
	}
}

// TestTransmissionChainProperties: outcomes are always within [0,1], policed
// fidelity never falls below what the canonical context achieves on its own,
// and the chain length is respected.
func TestTransmissionChainProperties(t *testing.T) {
	text, code, door, intended := trespassersFixture()
	canonical := Accuracy(Interpret(text, code, door, 8), intended)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		readers := 1 + int(seed%7+7)%7
		res, err := TransmissionChain(rng, text, code, door, intended, ChainParams{Readers: readers, Noise: 0.8})
		if err != nil {
			return false
		}
		if len(res.Outcomes) != readers {
			return false
		}
		for _, o := range res.Outcomes {
			for _, v := range []float64{o.SituatedFidelity, o.PolicedFidelity, o.OverrideRate} {
				if v < 0 || v > 1 {
					return false
				}
			}
			if o.PolicedFidelity != canonical {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
