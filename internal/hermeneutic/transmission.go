package hermeneutic

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file models the transmission of a text along a chain of readers, the
// situation behind the paper's §3 remark that "the only way in which ontology
// can keep a stable meaning is by constant policing and an authoritarian
// normativism that sets, once and for all, the 'true' intentions of the
// author". Each reader in the chain is historically and culturally a little
// further from the author: their situation (frame priors) drifts. Two
// regimes are compared:
//
//   - unpoliced: every reader interprets the text from their own situation;
//     meaning is whatever the situated reading makes of it, and fidelity to
//     the author's intention decays along the chain;
//   - policed: a normative code fixes the reading to the author's canonical
//     context regardless of where the reader actually stands; fidelity to the
//     author is preserved, and the price — the fraction of cues on which the
//     imposed reading overrides what the reader's own situation would have
//     produced — is measured explicitly.
//
// The pair of curves is the executable form of the trade-off the paper
// asserts: stability of meaning is bought by suppressing the reader.

// ChainParams controls TransmissionChain.
type ChainParams struct {
	// Readers is the number of readers in the chain (at least 1).
	Readers int
	// Noise is the standard scale of the per-step drift applied to the frame
	// priors (0 means every reader shares the author's situation).
	Noise float64
	// MaxIterations bounds each reader's hermeneutic fixed point.
	MaxIterations int
}

// ReaderOutcome is the result of one reader's position in the chain.
type ReaderOutcome struct {
	// Position is 1-based distance from the author.
	Position int
	// SituatedFidelity is the accuracy of the reader's own situated reading
	// against the author's intended senses.
	SituatedFidelity float64
	// PolicedFidelity is the accuracy of the policed (canonical-context)
	// reading against the author's intended senses.
	PolicedFidelity float64
	// OverrideRate is the fraction of cues on which the policed reading
	// differs from the reader's own situated reading: the amount of reading
	// the normative regime has to suppress at this position.
	OverrideRate float64
}

// ChainResult is the outcome of a whole chain.
type ChainResult struct {
	Outcomes []ReaderOutcome
}

// TransmissionChain walks a text down a chain of progressively more distant
// readers. The author's context supplies the initial frame priors and the
// intended senses are the ground truth; each subsequent reader's priors are
// the previous reader's priors perturbed by multiplicative noise drawn from
// rng. For every reader both the situated and the policed readings are
// produced and scored.
func TransmissionChain(rng *rand.Rand, text *Text, code *Code, author *Context, intended []Sense, p ChainParams) (ChainResult, error) {
	if text == nil || code == nil || author == nil {
		return ChainResult{}, fmt.Errorf("hermeneutic: transmission chain requires a text, a code and an author context")
	}
	if len(intended) != len(text.Cues) {
		return ChainResult{}, fmt.Errorf("hermeneutic: intended senses (%d) do not match the text's cues (%d)", len(intended), len(text.Cues))
	}
	if p.Readers < 1 {
		p.Readers = 1
	}
	if p.MaxIterations < 1 {
		p.MaxIterations = 8
	}
	if p.Noise < 0 {
		p.Noise = 0
	}

	priors := map[Frame]float64{}
	for _, f := range code.Frames() {
		w := 1.0
		if author.FramePriors != nil {
			if v, ok := author.FramePriors[f]; ok && v > 0 {
				w = v
			}
		}
		priors[f] = w
	}

	result := ChainResult{Outcomes: make([]ReaderOutcome, 0, p.Readers)}
	for position := 1; position <= p.Readers; position++ {
		priors = drift(rng, priors, p.Noise)
		reader := &Context{
			Name:        fmt.Sprintf("reader %d", position),
			FramePriors: clonePriors(priors),
		}
		situated := Interpret(text, code, reader, p.MaxIterations)
		policed := Interpret(text, code, author, p.MaxIterations)

		outcome := ReaderOutcome{
			Position:         position,
			SituatedFidelity: Accuracy(situated, intended),
			PolicedFidelity:  Accuracy(policed, intended),
			OverrideRate:     1 - Agreement(policed, situated),
		}
		result.Outcomes = append(result.Outcomes, outcome)
	}
	return result, nil
}

// drift perturbs every prior multiplicatively by bounded noise and
// renormalizes, keeping every weight strictly positive. Frames are visited in
// sorted order so that the random draws are consumed deterministically for a
// given seed.
func drift(rng *rand.Rand, priors map[Frame]float64, noise float64) map[Frame]float64 {
	frames := make([]string, 0, len(priors))
	for f := range priors {
		frames = append(frames, string(f))
	}
	sort.Strings(frames)
	out := make(map[Frame]float64, len(priors))
	total := 0.0
	for _, name := range frames {
		f := Frame(name)
		factor := 1 + noise*(2*rng.Float64()-1)
		if factor < 0.05 {
			factor = 0.05
		}
		v := priors[f] * factor
		if v <= 0 {
			v = 1e-6
		}
		out[f] = v
		total += v
	}
	if total > 0 {
		for f := range out {
			out[f] = out[f] / total * float64(len(out))
		}
	}
	return out
}

func clonePriors(priors map[Frame]float64) map[Frame]float64 {
	out := make(map[Frame]float64, len(priors))
	for f, w := range priors {
		out[f] = w
	}
	return out
}

// MeanSituatedFidelity averages the situated fidelity over the chain.
func (r ChainResult) MeanSituatedFidelity() float64 {
	return r.mean(func(o ReaderOutcome) float64 { return o.SituatedFidelity })
}

// MeanPolicedFidelity averages the policed fidelity over the chain.
func (r ChainResult) MeanPolicedFidelity() float64 {
	return r.mean(func(o ReaderOutcome) float64 { return o.PolicedFidelity })
}

// MeanOverrideRate averages the override rate over the chain.
func (r ChainResult) MeanOverrideRate() float64 {
	return r.mean(func(o ReaderOutcome) float64 { return o.OverrideRate })
}

func (r ChainResult) mean(f func(ReaderOutcome) float64) float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	total := 0.0
	for _, o := range r.Outcomes {
		total += f(o)
	}
	return total / float64(len(r.Outcomes))
}
