package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// This file adds durability to the store: a snapshot format (one JSON-encoded
// triple per line) that can be written to and re-read from any
// io.Writer/Reader. The format is line-oriented so that snapshots of large
// stores can be streamed and partially inspected with ordinary text tools.

// Snapshot writes every triple to w, one JSON object per line, in the
// canonical sorted order of Triples. Two stores holding the same triples
// produce byte-identical snapshots, whatever order they were ingested in. It
// returns the number of triples written.
func (s *Store) Snapshot(w io.Writer) (int, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	triples := s.Triples()
	for _, t := range triples {
		if err := enc.Encode(t); err != nil {
			return 0, fmt.Errorf("store: encoding snapshot: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, fmt.Errorf("store: flushing snapshot: %w", err)
	}
	return len(triples), nil
}

// restoreChunk is how many decoded triples Restore accumulates before
// flushing them to the store in one AddBatch.
const restoreChunk = 4096

// Restore reads a snapshot produced by Snapshot and adds every triple to the
// store (existing triples are kept; duplicates are ignored). It returns the
// number of triples added.
//
// Partial-commit contract: a malformed or invalid entry aborts the restore
// with an error identifying the entry number, and the valid triples read
// before the error REMAIN in the store — Restore streams through the batch
// path and is deliberately not transactional, so a multi-gigabyte snapshot
// never has to be buffered twice. Callers that must not observe (or serve,
// or journal) a partially restored corpus restore into a scratch store
// first and move the triples over only on success, as cmd/ontoserve does:
//
//	scratch := store.New()
//	if _, err := store.Restore(scratch, r); err != nil {
//	    return err // nothing reached the real store
//	}
//	_, err := s.AddBatch(scratch.Triples())
//
// Ingest goes through the batch path in chunks, so restoring a large
// snapshot locks each index shard a handful of times instead of three times
// per triple.
func Restore(s *Store, r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	added := 0
	line := 0
	chunk := make([]Triple, 0, restoreChunk)
	flush := func() error {
		n, err := s.AddBatch(chunk)
		added += n
		chunk = chunk[:0]
		return err
	}
	for {
		var t Triple
		err := dec.Decode(&t)
		if err == io.EOF {
			ferr := flush()
			return added, ferr
		}
		line++
		if err != nil {
			if ferr := flush(); ferr != nil {
				return added, ferr
			}
			return added, fmt.Errorf("store: decoding snapshot entry %d: %w", line, err)
		}
		if !t.valid() {
			if ferr := flush(); ferr != nil {
				return added, ferr
			}
			return added, fmt.Errorf("store: snapshot entry %d: triple %v has an empty component", line, t)
		}
		chunk = append(chunk, t)
		if len(chunk) == restoreChunk {
			if err := flush(); err != nil {
				return added, err
			}
		}
	}
}
