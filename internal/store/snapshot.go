package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// This file adds durability to the store: a snapshot format (one JSON-encoded
// triple per line) that can be written to and re-read from any
// io.Writer/Reader. The format is line-oriented so that snapshots of large
// stores can be streamed and partially inspected with ordinary text tools.

// Snapshot writes every triple to w, one JSON object per line, in the
// deterministic order of Query(Pattern{}). It returns the number of triples
// written.
func (s *Store) Snapshot(w io.Writer) (int, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	triples := s.Query(Pattern{})
	for _, t := range triples {
		if err := enc.Encode(t); err != nil {
			return 0, fmt.Errorf("store: encoding snapshot: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, fmt.Errorf("store: flushing snapshot: %w", err)
	}
	return len(triples), nil
}

// Restore reads a snapshot produced by Snapshot and adds every triple to the
// store (existing triples are kept; duplicates are ignored). It returns the
// number of triples added. A malformed line aborts the restore with an error
// identifying the line number; triples added before the error remain in the
// store.
func Restore(s *Store, r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	added := 0
	line := 0
	for {
		var t Triple
		err := dec.Decode(&t)
		if err == io.EOF {
			return added, nil
		}
		line++
		if err != nil {
			return added, fmt.Errorf("store: decoding snapshot entry %d: %w", line, err)
		}
		ok, err := s.Add(t)
		if err != nil {
			return added, fmt.Errorf("store: snapshot entry %d: %w", line, err)
		}
		if ok {
			added++
		}
	}
}
