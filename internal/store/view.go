package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file is the store's materialization surface: shared-dictionary overlay
// stores and the View that unions a base (asserted) store with an overlay of
// inferred triples. The forward-chaining engine in repro/internal/reason
// derives entailed triples into an overlay returned by NewOverlay, so the two
// stores mint ids from one symbol table and the whole derivation runs at the
// dictionary-id level; a View presents their union to the query layer with
// every triple tagged by Provenance.

// Provenance distinguishes how a triple entered a materialized view: asserted
// directly into the base store, or inferred into the overlay by a reasoner.
type Provenance uint8

// Provenance values.
const (
	// ProvAsserted marks a triple present in the base store.
	ProvAsserted Provenance = iota
	// ProvInferred marks a triple present only in the inferred overlay.
	ProvInferred
)

// String names the provenance the way tagged snapshots spell it.
func (p Provenance) String() string {
	if p == ProvInferred {
		return "inferred"
	}
	return "asserted"
}

// NewOverlay returns a fresh empty store sharing s's symbol table: an id
// minted by either store resolves to the same name in both, so id-level
// triples and patterns can move between them without re-encoding. The overlay
// is an ordinary Store in every other respect — same indexes, same locking,
// same iterators — and package reason uses one to hold inferred triples apart
// from the asserted base.
func (s *Store) NewOverlay() *Store {
	return &Store{syms: s.syms}
}

// SharesDictionary reports whether o interns through the same symbol table as
// s (i.e. o was created by NewOverlay on s or on a store sharing s's
// dictionary), which is what makes their SymbolIDs interchangeable.
func (s *Store) SharesDictionary(o *Store) bool {
	return o != nil && s.syms == o.syms
}

// Intern interns a name into the store's dictionary and returns its id,
// minting a fresh id on first sight. Unlike SymbolID it never fails on an
// unseen name; it exists so a rule compiler can resolve head literals that no
// asserted triple mentions yet. Interning alone adds no triple. The empty
// string is rejected: no valid triple component is empty, so an empty name
// could never be matched or stored.
func (s *Store) Intern(name string) (SymbolID, error) {
	if name == "" {
		return 0, fmt.Errorf("store: cannot intern an empty name")
	}
	if id, ok := s.syms.lookup(name); ok {
		return id, nil
	}
	s.syms.mu.Lock()
	defer s.syms.mu.Unlock()
	before := len(s.syms.names)
	id := s.syms.internLocked(name)
	s.syms.journalGrowthLocked(before)
	return id, nil
}

// ContainsID reports whether the id triple is present. It is the id-level
// twin of Contains: three ids that were never interned simply match nothing.
func (s *Store) ContainsID(t IDTriple) bool {
	sh := s.spo.shard(t.S)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.containsLocked(t.S, t.P, t.O)
}

// validID reports whether every component id has actually been minted by the
// store's dictionary.
func (s *Store) validID(t IDTriple) bool {
	n := SymbolID(len(s.syms.snapshot()))
	return t.S < n && t.P < n && t.O < n
}

// AddID inserts a dictionary-encoded triple, reporting whether it was newly
// inserted. All three ids must have been minted by the store's dictionary
// (an overlay sharing the dictionary qualifies); unknown ids are rejected
// with an error, since they name nothing. It is the id-level twin of Add —
// the materialization engine derives triples as ids and stores them without
// ever resolving a string.
func (s *Store) AddID(t IDTriple) (bool, error) {
	if !s.validID(t) {
		return false, fmt.Errorf("store: AddID: triple %v has an id the dictionary never minted", t)
	}
	e := encTriple{t.S, t.P, t.O}
	l := s.lockTriple(e)
	added := l.spo.insertLocked(e.s, e.p, e.o)
	if added {
		l.pos.insertLocked(e.p, e.o, e.s)
		l.osp.insertLocked(e.o, e.s, e.p)
	}
	l.unlock()
	if added {
		s.size.Add(1)
		if j := s.getJournal(); j != nil {
			j.JournalAdd([]IDTriple{t})
			if err := commitJournal(j); err != nil {
				return true, err
			}
		}
	}
	return added, nil
}

// RemoveID deletes a dictionary-encoded triple, reporting whether it was
// present. Unknown ids simply match nothing. It is the id-level twin of
// Remove, used by the overdeletion pass of incremental maintenance.
func (s *Store) RemoveID(t IDTriple) bool {
	if !s.validID(t) {
		return false
	}
	e := encTriple{t.S, t.P, t.O}
	l := s.lockTriple(e)
	removed := l.spo.removeLocked(e.s, e.p, e.o)
	if removed {
		l.pos.removeLocked(e.p, e.o, e.s)
		l.osp.removeLocked(e.o, e.s, e.p)
	}
	l.unlock()
	if removed {
		s.size.Add(-1)
		if j := s.getJournal(); j != nil {
			j.JournalRemove(t)
			_ = commitJournal(j) // sticky in the journal; no error slot here
		}
	}
	return removed
}

// View is the read-only union of a base store (asserted triples) and an
// overlay store (inferred triples) sharing one dictionary. It satisfies the
// query layer's Source interface, so BGPs evaluate over the materialized
// union exactly as over a single store; every read de-duplicates triples
// present in both members, so callers see each triple once even if an
// overlay briefly shadows an asserted triple.
//
// A View holds no locks of its own: each probe reads the two stores under
// their own shard read-locks, so, like Store's iterators, a result set is
// only guaranteed consistent against quiescent members.
type View struct {
	base    *Store
	overlay *Store
	// disjoint records the NewDisjointView promise that no triple is in
	// both members: counts become plain sums and reads skip the per-triple
	// duplicate probe.
	disjoint bool
}

// NewView returns the union view of base and overlay. The two stores must
// share a dictionary (see NewOverlay); ids from one would be meaningless in
// the other otherwise. NewView makes no disjointness assumption: every read
// de-duplicates against the base, and counting scans the overlay's matches.
// When the caller maintains base∩overlay = ∅, NewDisjointView is the faster
// form.
func NewView(base, overlay *Store) (*View, error) {
	if base == nil || overlay == nil {
		return nil, fmt.Errorf("store: NewView needs both a base and an overlay store")
	}
	if !base.SharesDictionary(overlay) {
		return nil, fmt.Errorf("store: view members do not share a dictionary; create the overlay with NewOverlay")
	}
	return &View{base: base, overlay: overlay}, nil
}

// NewDisjointView is NewView under the caller's promise that no triple is
// ever in both members — the invariant package reason maintains (inferred
// triples are exactly the derivable non-asserted ones). The promise buys the
// fast paths the union cannot have in general: Len and CountID are O(1)-over
// the members' own counters instead of overlay scans, and the iterators skip
// the per-triple duplicate probe. If the promise is transiently violated
// (e.g. mid-maintenance, between a base insert and the matching overlay
// retirement), reads overlapping that window may see the affected triple
// twice and counts may double-count it; quiescent views are exact.
func NewDisjointView(base, overlay *Store) (*View, error) {
	v, err := NewView(base, overlay)
	if err != nil {
		return nil, err
	}
	v.disjoint = true
	return v, nil
}

// Base returns the asserted member of the view.
func (v *View) Base() *Store { return v.base }

// Overlay returns the inferred member of the view.
func (v *View) Overlay() *Store { return v.overlay }

// Len returns the number of distinct triples visible through the view. For
// a disjoint view (NewDisjointView) it is the O(1) sum of the members'
// counters; otherwise triples present in both members are counted once, at
// the cost of scanning the overlay.
func (v *View) Len() int {
	n := v.base.Len() + v.overlay.Len()
	if v.disjoint {
		return n
	}
	v.overlay.QueryIDFunc(IDPattern{}, func(t IDTriple) bool {
		if v.base.ContainsID(t) {
			n--
		}
		return true
	})
	return n
}

// SymbolID returns the dictionary id of a name (the dictionary is shared, so
// it answers for both members).
func (v *View) SymbolID(name string) (SymbolID, bool) {
	return v.base.SymbolID(name)
}

// NewResolver returns a resolver over the shared dictionary.
func (v *View) NewResolver() Resolver {
	return v.base.NewResolver()
}

// Contains reports whether the triple is visible through the view.
func (v *View) Contains(t Triple) bool {
	return v.base.Contains(t) || v.overlay.Contains(t)
}

// Provenance reports how the triple entered the view: ProvAsserted when it is
// in the base store (even if an overlay copy shadows it), ProvInferred when it
// is only in the overlay; ok is false when the view does not contain it.
func (v *View) Provenance(t Triple) (Provenance, bool) {
	if v.base.Contains(t) {
		return ProvAsserted, true
	}
	if v.overlay.Contains(t) {
		return ProvInferred, true
	}
	return ProvAsserted, false
}

// QueryIDFunc streams every distinct triple of the union matching the id
// pattern to yield, stopping early when yield returns false: first the base's
// matches, then the overlay's, skipping overlay triples also present in the
// base. The enumeration order is unspecified and allocation per triple is
// zero; the same no-writes-from-yield rule as Store.QueryIDFunc applies.
func (v *View) QueryIDFunc(p IDPattern, yield func(IDTriple) bool) {
	stopped := false
	v.base.QueryIDFunc(p, func(t IDTriple) bool {
		if !yield(t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	v.overlay.QueryIDFunc(p, func(t IDTriple) bool {
		if !v.disjoint && v.base.ContainsID(t) {
			return true
		}
		return yield(t)
	})
}

// CountID returns the number of distinct union triples matching the id
// pattern. Like View.Len it is a plain sum of the members' index counters
// for a disjoint view — cheap enough for the query planner to call once per
// pattern per query — and subtracts duplicates by scanning the overlay's
// matches otherwise.
func (v *View) CountID(p IDPattern) int {
	n := v.base.CountID(p) + v.overlay.CountID(p)
	if v.disjoint {
		return n
	}
	v.overlay.QueryIDFunc(p, func(t IDTriple) bool {
		if v.base.ContainsID(t) {
			n--
		}
		return true
	})
	return n
}

// StatsID returns cardinality statistics for the id pattern over the union.
// Counts are exact for a disjoint view and subtract overlay duplicates
// otherwise; the distinct widths are the sums of the two members' widths —
// an upper bound when a value occurs on both sides — which is accurate
// enough for the planner's selectivity ordering.
func (v *View) StatsID(p IDPattern) IDStats {
	bs, os := v.base.StatsID(p), v.overlay.StatsID(p)
	count := bs.Count + os.Count
	if !v.disjoint {
		v.overlay.QueryIDFunc(p, func(t IDTriple) bool {
			if v.base.ContainsID(t) {
				count--
			}
			return true
		})
	}
	return IDStats{
		Count:     count,
		DistinctS: bs.DistinctS + os.DistinctS,
		DistinctP: bs.DistinctP + os.DistinctP,
		DistinctO: bs.DistinctO + os.DistinctO,
	}
}

// QueryFunc streams every distinct union triple matching the string pattern
// to yield, resolving ids through the shared dictionary.
func (v *View) QueryFunc(p Pattern, yield func(Triple) bool) {
	ip, ok := v.base.encodePattern(p)
	if !ok {
		return
	}
	res := newResolver(v.base.syms)
	v.QueryIDFunc(ip, func(t IDTriple) bool {
		return yield(Triple{res.name(t.S), res.name(t.P), res.name(t.O)})
	})
}

// Query returns all distinct union triples matching the pattern, sorted
// lexicographically — the same deterministic ordering contract as
// Store.Query.
func (v *View) Query(p Pattern) []Triple {
	var out []Triple
	v.QueryFunc(p, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Triples returns every distinct triple visible through the view in the
// store's canonical sorted export order.
func (v *View) Triples() []Triple {
	out := make([]Triple, 0, v.base.Len()+v.overlay.Len())
	v.QueryFunc(Pattern{}, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// ForEachSubject streams the distinct subjects of union triples with the
// given predicate and object, stopping early when yield returns false — the
// materialized-retrieval hot path: one POS set read per member, no join
// machinery, no per-subject allocation. Subjects present in both members are
// yielded once.
func (v *View) ForEachSubject(predicate, object string, yield func(string) bool) {
	pid, ok := v.base.SymbolID(predicate)
	if !ok {
		return
	}
	oid, ok := v.base.SymbolID(object)
	if !ok {
		return
	}
	res := newResolver(v.base.syms)
	stopped := false
	v.base.ForEachSubject(predicate, object, func(s string) bool {
		if !yield(s) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	ip := IDPattern{P: pid, O: oid, BoundP: true, BoundO: true}
	v.overlay.QueryIDFunc(ip, func(t IDTriple) bool {
		if !v.disjoint && v.base.ContainsID(t) {
			return true
		}
		return yield(res.name(t.S))
	})
}

// Subjects returns the distinct subjects of union triples with the given
// predicate and object, sorted (Store.Subjects' ordering contract, over the
// union).
func (v *View) Subjects(predicate, object string) []string {
	var out []string
	v.ForEachSubject(predicate, object, func(s string) bool {
		out = append(out, s)
		return true
	})
	sort.Strings(out)
	return out
}

// TaggedTriple is one triple of a materialized view together with its
// provenance; it is the record type of provenance-tagged snapshots.
type TaggedTriple struct {
	Subject    string
	Predicate  string
	Object     string
	Provenance string
}

// SnapshotProvenance writes every distinct triple of the view to w, one JSON
// object per line in the canonical sorted order of Triples, each tagged
// "asserted" or "inferred" — the provenance-preserving export. Two views
// holding the same tagged triples produce byte-identical output. It returns
// the number of triples written.
func (v *View) SnapshotProvenance(w io.Writer) (int, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	triples := v.Triples()
	for _, t := range triples {
		prov := ProvInferred
		if v.base.Contains(t) {
			prov = ProvAsserted
		}
		if err := enc.Encode(TaggedTriple{t.Subject, t.Predicate, t.Object, prov.String()}); err != nil {
			return 0, fmt.Errorf("store: encoding tagged snapshot: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, fmt.Errorf("store: flushing tagged snapshot: %w", err)
	}
	return len(triples), nil
}

// Snapshot writes every distinct triple of the view to w in the plain
// snapshot format of Store.Snapshot (no provenance tags), so a materialized
// union can be re-read by Restore like any store snapshot. It returns the
// number of triples written.
func (v *View) Snapshot(w io.Writer) (int, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	triples := v.Triples()
	for _, t := range triples {
		if err := enc.Encode(t); err != nil {
			return 0, fmt.Errorf("store: encoding view snapshot: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, fmt.Errorf("store: flushing view snapshot: %w", err)
	}
	return len(triples), nil
}
