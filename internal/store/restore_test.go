package store

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
)

// dumpIDState extracts what a durable-segment chain would hand RestoreSorted:
// the dictionary in interning order and the full triple set sorted by id.
func dumpIDState(s *Store) ([]string, []IDTriple) {
	res := s.NewResolver()
	dict := make([]string, s.DictLen())
	for i := range dict {
		dict[i] = res.Name(SymbolID(i))
	}
	var ts []IDTriple
	s.QueryIDFunc(IDPattern{}, func(t IDTriple) bool {
		ts = append(ts, t)
		return true
	})
	sort.Slice(ts, func(i, j int) bool { return idTripleLess(ts[i], ts[j]) })
	return dict, ts
}

func snapshotOf(t *testing.T, s *Store) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.String()
}

// skewedCorpus builds a corpus that exercises every index shape: a hot
// predicate whose object sets spill past setSpill, subjects with more
// predicates than midSpill, and a long tail of small entries.
func skewedCorpus(n int) []Triple {
	ts := make([]Triple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, Triple{
			Subject:   fmt.Sprintf("s%d", i%97),
			Predicate: fmt.Sprintf("p%d", i%13),
			Object:    fmt.Sprintf("o%d", i),
		})
	}
	// A spilled trailing set: one (s, p) pair with > setSpill objects.
	for i := 0; i < 2*setSpill; i++ {
		ts = append(ts, Triple{Subject: "hub", Predicate: "links", Object: fmt.Sprintf("t%d", i)})
	}
	// A spilled middle level: one subject with > midSpill predicates.
	for i := 0; i < 2*midSpill; i++ {
		ts = append(ts, Triple{Subject: "wide", Predicate: fmt.Sprintf("attr%d", i), Object: "v"})
	}
	return ts
}

func TestRestoreSortedMatchesBatchIngest(t *testing.T) {
	ref := New()
	if _, err := ref.AddBatch(skewedCorpus(3000)); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	// A few single-triple mutations so the reference store is not a pure
	// batch artifact.
	ref.MustAdd(Triple{Subject: "solo", Predicate: "p0", Object: "o1"})
	ref.Remove(Triple{Subject: "s1", Predicate: "p1", Object: "o1262"})

	dict, ids := dumpIDState(ref)
	got := New()
	if err := got.RestoreSorted(dict, ids); err != nil {
		t.Fatalf("RestoreSorted: %v", err)
	}

	if got.Len() != ref.Len() {
		t.Fatalf("Len: restored %d, reference %d", got.Len(), ref.Len())
	}
	if got.DictLen() != ref.DictLen() {
		t.Fatalf("DictLen: restored %d, reference %d", got.DictLen(), ref.DictLen())
	}
	if a, b := snapshotOf(t, got), snapshotOf(t, ref); a != b {
		t.Fatal("restored snapshot differs from reference snapshot")
	}
	// Ids, not just names, must match: segment tombstone replay depends on
	// the restored store minting identical SymbolIDs.
	res := ref.NewResolver()
	for i := 0; i < ref.DictLen(); i++ {
		name := res.Name(SymbolID(i))
		id, ok := got.SymbolID(name)
		if !ok || id != SymbolID(i) {
			t.Fatalf("SymbolID(%q) = %d, %v; want %d", name, id, ok, i)
		}
	}
	// Index-level reads must agree across all three families.
	for _, p := range []Pattern{
		{Subject: "hub"},
		{Predicate: "links"},
		{Object: "v"},
		{Subject: "wide", Predicate: "attr3"},
		{Predicate: "p4", Object: "o17"},
		{Subject: "s2", Predicate: "p2", Object: "o28"},
	} {
		g, r := got.Query(p), ref.Query(p)
		if len(g) != len(r) {
			t.Fatalf("Query(%v): restored %d rows, reference %d", p, len(g), len(r))
		}
		if got.Count(p) != ref.Count(p) {
			t.Fatalf("Count(%v): restored %d, reference %d", p, got.Count(p), ref.Count(p))
		}
	}
}

// TestRestoreSortedThenMutate proves the directly-built index levels (spill
// maps included) behave identically to incrementally built ones under later
// Add/Remove traffic.
func TestRestoreSortedThenMutate(t *testing.T) {
	ref := New()
	if _, err := ref.AddBatch(skewedCorpus(500)); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	dict, ids := dumpIDState(ref)
	got := New()
	if err := got.RestoreSorted(dict, ids); err != nil {
		t.Fatalf("RestoreSorted: %v", err)
	}
	mutate := func(s *Store) {
		// Duplicate insert must be refused by both.
		if added, _ := s.Add(Triple{Subject: "hub", Predicate: "links", Object: "t3"}); added {
			t.Fatal("duplicate Add reported newly inserted")
		}
		// Remove out of a spilled set, out of a spilled middle level, and a
		// plain small entry.
		for _, tr := range []Triple{
			{Subject: "hub", Predicate: "links", Object: "t7"},
			{Subject: "wide", Predicate: "attr1", Object: "v"},
			{Subject: "s3", Predicate: "p3", Object: "o3"},
		} {
			if !s.Remove(tr) {
				t.Fatalf("Remove(%v) reported absent", tr)
			}
		}
		s.MustAdd(Triple{Subject: "fresh", Predicate: "links", Object: "hub"})
	}
	mutate(ref)
	mutate(got)
	if a, b := snapshotOf(t, got), snapshotOf(t, ref); a != b {
		t.Fatal("post-mutation snapshots diverge")
	}
}

func TestRestoreSortedEmptyAndDictOnly(t *testing.T) {
	s := New()
	if err := s.RestoreSorted(nil, nil); err != nil {
		t.Fatalf("empty restore: %v", err)
	}
	if s.Len() != 0 || s.DictLen() != 0 {
		t.Fatalf("empty restore left %d triples, %d names", s.Len(), s.DictLen())
	}
	s2 := New()
	if err := s2.RestoreSorted([]string{"a", "b"}, nil); err != nil {
		t.Fatalf("dict-only restore: %v", err)
	}
	if id, ok := s2.SymbolID("b"); !ok || id != 1 {
		t.Fatalf("SymbolID(b) = %d, %v; want 1, true", id, ok)
	}
	if s2.Len() != 0 {
		t.Fatalf("dict-only restore holds %d triples", s2.Len())
	}
}

type nopJournal struct{}

func (nopJournal) JournalDict(SymbolID, []string) {}
func (nopJournal) JournalAdd([]IDTriple)          {}
func (nopJournal) JournalRemove(IDTriple)         {}
func (nopJournal) JournalCommit() error           { return nil }

func TestRestoreSortedRejectsBadInput(t *testing.T) {
	dict := []string{"a", "b", "c"}
	cases := []struct {
		name    string
		prep    func() *Store
		dict    []string
		triples []IDTriple
	}{
		{"non-empty store", func() *Store { s := New(); s.MustAdd(Triple{Subject: "x", Predicate: "y", Object: "z"}); return s }, dict, nil},
		{"journal attached", func() *Store { s := New(); s.SetJournal(nopJournal{}); return s }, dict, nil},
		{"id out of range", New, dict, []IDTriple{{0, 1, 3}}},
		{"unsorted", New, dict, []IDTriple{{0, 1, 2}, {0, 0, 1}}},
		{"duplicate triple", New, dict, []IDTriple{{0, 1, 2}, {0, 1, 2}}},
		{"duplicate dict name", New, []string{"a", "a"}, nil},
		{"empty dict name", New, []string{"a", ""}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.prep()
			if err := s.RestoreSorted(tc.dict, tc.triples); err == nil {
				t.Fatal("RestoreSorted accepted invalid input")
			}
		})
	}
}
