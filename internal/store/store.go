// Package store implements the database-shaped substrate for the paper's §4
// pragmatic argument: an in-memory triple store with subject/predicate/object
// indexes, pattern queries, ontology-aware query expansion over a
// description-logic TBox, and the precision/recall accounting used to measure
// whether a normative ontonomy helps or hinders retrieval as the usage of a
// domain drifts away from it (experiment E5).
//
// The engine is dictionary-encoded and sharded. Every subject, predicate and
// object string is interned into a uint32 id by a symbol table, and the three
// canonical permutation indexes (SPO, POS, OSP) are kept as id-based shard
// families: each family is split numShards ways by a hash of its leading
// component, and each shard has its own RWMutex, so concurrent writers only
// contend when they touch the same shard. Ingest has a batch path (AddBatch)
// that interns the whole batch under one symbol-table lock and visits every
// index shard at most once, and reads have an allocation-free iterator form
// (QueryFunc, ForEachSubject) alongside the materializing Query.
//
// Ordering: every materializing read (Query, Triples, Subjects, Objects,
// Predicates) returns its result in sorted lexicographic order, so results
// depend only on the store's contents — never on ingest order or on how ids
// happened to fall across shards. The streaming forms (QueryFunc,
// QueryIDFunc, ForEachSubject) trade that determinism for zero allocation
// and enumerate in unspecified order.
//
// Joins, variables and ontology-aware expansion live one layer up, in
// package repro/internal/query, which evaluates basic graph patterns over
// the id-level hooks in ids.go.
//
// Consistency: all methods are safe for concurrent use. Single-triple writes
// (Add, Remove) lock all three affected shards together, so a triple is never
// half-visible across indexes once Add or Remove has returned, and never
// observable in one permutation but not another. AddBatch applies the batch
// index family by index family for speed; while it is in flight a concurrent
// reader may see a batched triple through one access path before another, and
// concurrently Removing a triple that an in-flight batch is inserting is
// unspecified. Once AddBatch returns, its triples are fully visible
// everywhere.
package store

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Triple is one (subject, predicate, object) fact.
type Triple struct {
	Subject   string
	Predicate string
	Object    string
}

// String renders the triple.
func (t Triple) String() string {
	return fmt.Sprintf("(%s %s %s)", t.Subject, t.Predicate, t.Object)
}

// valid reports whether all three components are non-empty.
func (t Triple) valid() bool {
	return t.Subject != "" && t.Predicate != "" && t.Object != ""
}

// less orders triples lexicographically by subject, predicate, object.
func (t Triple) less(u Triple) bool {
	if t.Subject != u.Subject {
		return t.Subject < u.Subject
	}
	if t.Predicate != u.Predicate {
		return t.Predicate < u.Predicate
	}
	return t.Object < u.Object
}

// Pattern is a triple pattern: empty components are wildcards.
type Pattern struct {
	Subject   string
	Predicate string
	Object    string
}

// String renders the pattern with ? for wildcards.
func (p Pattern) String() string {
	part := func(s string) string {
		if s == "" {
			return "?"
		}
		return s
	}
	return fmt.Sprintf("(%s %s %s)", part(p.Subject), part(p.Predicate), part(p.Object))
}

// Matches reports whether the triple matches the pattern.
func (p Pattern) Matches(t Triple) bool {
	return (p.Subject == "" || p.Subject == t.Subject) &&
		(p.Predicate == "" || p.Predicate == t.Predicate) &&
		(p.Object == "" || p.Object == t.Object)
}

// Store is an in-memory indexed triple store. The zero value is not ready to
// use; call New. All methods are safe for concurrent use; see the package
// documentation for the exact visibility guarantees of batch ingest.
type Store struct {
	syms *symtab
	size atomic.Int64
	spo  indexFamily // sharded by subject
	pos  indexFamily // sharded by predicate
	osp  indexFamily // sharded by object
	// journal, when non-nil, receives this store's triple mutations and
	// gates their acknowledgment on durability; see SetJournal. Overlays
	// never inherit it. Held as an atomic pointer so a detach at engine
	// close is safe against in-flight mutations; each mutation loads it
	// once (getJournal) and uses that value for both the journaling calls
	// and the commit.
	journal atomic.Pointer[Journal]
}

// New returns an empty store.
func New() *Store {
	return &Store{syms: newSymtab()}
}

// Add inserts a triple, reporting whether it was newly inserted. Triples with
// an empty component are rejected with an error. With a journal attached, a
// newly inserted triple is journaled and committed before returning; a commit
// failure is returned wrapping ErrJournal (the triple is applied in memory).
func (s *Store) Add(t Triple) (bool, error) {
	if !t.valid() {
		return false, fmt.Errorf("store: triple %v has an empty component", t)
	}
	e := s.syms.internTriple(t)
	l := s.lockTriple(e)
	added := l.spo.insertLocked(e.s, e.p, e.o)
	if added {
		l.pos.insertLocked(e.p, e.o, e.s)
		l.osp.insertLocked(e.o, e.s, e.p)
	}
	l.unlock()
	if added {
		s.size.Add(1)
		if j := s.getJournal(); j != nil {
			j.JournalAdd([]IDTriple{{S: e.s, P: e.p, O: e.o}})
			if err := commitJournal(j); err != nil {
				return true, err
			}
		}
	}
	return added, nil
}

// MustAdd is Add panicking on error, for statically known data in tests and
// examples.
func (s *Store) MustAdd(t Triple) {
	if _, err := s.Add(t); err != nil {
		panic(err)
	}
}

// AddAll inserts all triples in a single batch, returning how many were newly
// inserted. It delegates to AddBatch and shares its all-or-nothing validation
// contract: if any triple has an empty component, an error identifying it is
// returned and no triple of the call is inserted.
func (s *Store) AddAll(ts ...Triple) (int, error) {
	return s.AddBatch(ts)
}

// Remove deletes a triple, reporting whether it was present. With a journal
// attached the removal is journaled and committed before returning; the
// signature has no error slot, so a failed commit is only observable through
// the journal's own sticky-error reporting (the removal stays applied in
// memory either way).
func (s *Store) Remove(t Triple) bool {
	e, ok := s.syms.lookupTriple(t)
	if !ok {
		return false
	}
	l := s.lockTriple(e)
	removed := l.spo.removeLocked(e.s, e.p, e.o)
	if removed {
		l.pos.removeLocked(e.p, e.o, e.s)
		l.osp.removeLocked(e.o, e.s, e.p)
	}
	l.unlock()
	if removed {
		s.size.Add(-1)
		if j := s.getJournal(); j != nil {
			j.JournalRemove(IDTriple{S: e.s, P: e.p, O: e.o})
			_ = commitJournal(j) // sticky in the journal; no error slot here
		}
	}
	return removed
}

// Len returns the number of triples in this store. A Store only ever counts
// what was explicitly added to it: when a reasoner (repro/internal/reason)
// materializes entailments, the inferred triples live in a separate overlay
// store, so Len on the asserted base excludes them. Use View.Len for the
// asserted-plus-inferred total of a materialized view.
func (s *Store) Len() int {
	return int(s.size.Load())
}

// NumShards returns the shard count of each permutation index family — the
// range of valid ShardTripleCount arguments.
func (s *Store) NumShards() int { return numShards }

// ShardTripleCount returns the number of triples whose subject hashes to
// SPO shard i — the observability layer's view of write-skew across shards
// (a hot subject shows up as one shard far above the mean). It walks the
// shard's trailing sets under its read lock, so it costs the shard's size
// and briefly blocks writers to that shard; scrape-time use only.
func (s *Store) ShardTripleCount(i int) int {
	if i < 0 || i >= numShards {
		return 0
	}
	sh := &s.spo[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	n := 0
	for _, e := range sh.m {
		for j := range e.entries {
			n += e.entries[j].trail.len()
		}
	}
	return n
}

// Contains reports whether the triple is present.
func (s *Store) Contains(t Triple) bool {
	e, ok := s.syms.lookupTriple(t)
	if !ok {
		return false
	}
	sh := s.spo.shard(e.s)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.containsLocked(e.s, e.p, e.o)
}

// QueryFunc streams every triple matching the pattern to yield, stopping
// early when yield returns false. It answers from the most selective
// permutation index for the pattern's bound components and allocates nothing
// per triple; the enumeration order is unspecified (use Query for the
// deterministic sorted form). yield must not call methods that write to the
// store, or it may deadlock against writers waiting on the shard being
// iterated.
func (s *Store) QueryFunc(p Pattern, yield func(Triple) bool) {
	ip, ok := s.encodePattern(p)
	if !ok {
		return
	}
	res := newResolver(s.syms)
	s.QueryIDFunc(ip, func(t IDTriple) bool {
		return yield(Triple{res.name(t.S), res.name(t.P), res.name(t.O)})
	})
}

// Query returns all triples matching the pattern, sorted lexicographically by
// subject, then predicate, then object. That ordering is a contract: two
// stores holding the same triples return identical slices for the same
// pattern, whatever order the triples were ingested in and however they fell
// across shards. The most selective permutation index available for the
// pattern's bound components is used, so fully or partially bound queries
// never scan the whole store. Use QueryFunc to stream matches without
// materializing and sorting the result.
func (s *Store) Query(p Pattern) []Triple {
	var out []Triple
	s.QueryFunc(p, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Triples returns every triple in the store, sorted lexicographically by
// subject, then predicate, then object — the store's canonical export order.
// Like Query, the result depends only on the store's contents, never on
// ingest order or shard layout; Snapshot is defined in terms of it.
func (s *Store) Triples() []Triple {
	out := make([]Triple, 0, s.Len())
	s.QueryFunc(Pattern{}, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Count returns the number of triples matching the pattern. It runs entirely
// on the dictionary-encoded indexes — no triple is materialized and no symbol
// is resolved back to a string. Like Len, it counts this store's own triples
// only: inferred triples held in a reasoner's overlay are not included unless
// counted through the overlay or a View (View.CountID is the union form).
func (s *Store) Count(p Pattern) int {
	ip, ok := s.encodePattern(p)
	if !ok {
		return 0
	}
	return s.CountID(ip)
}

// ForEachSubject streams the distinct subjects of triples with the given
// predicate and object to yield, stopping early when yield returns false.
// The order is unspecified; allocation per subject is zero. The same
// no-writes-from-yield rule as QueryFunc applies.
func (s *Store) ForEachSubject(predicate, object string, yield func(string) bool) {
	pid, ok := s.syms.lookup(predicate)
	if !ok {
		return
	}
	oid, ok := s.syms.lookup(object)
	if !ok {
		return
	}
	res := newResolver(s.syms)
	sh := s.pos.shard(pid)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.m[pid]
	if e == nil {
		return
	}
	set := e.find(oid)
	if set == nil {
		return
	}
	set.forEach(func(sid uint32) bool {
		return yield(res.name(sid))
	})
}

// Subjects returns the distinct subjects of triples with the given predicate
// and object, in sorted order (the same deterministic ordering contract as
// Query: the result depends only on the store's contents). Use ForEachSubject
// to stream them without the materialized slice and the sort.
func (s *Store) Subjects(predicate, object string) []string {
	pid, ok := s.syms.lookup(predicate)
	if !ok {
		return nil
	}
	oid, ok := s.syms.lookup(object)
	if !ok {
		return nil
	}
	res := newResolver(s.syms)
	sh := s.pos.shard(pid)
	sh.mu.RLock()
	var out []string
	if e := sh.m[pid]; e != nil {
		if set := e.find(oid); set != nil {
			out = set.appendResolved(res, make([]string, 0, set.len()))
		}
	}
	sh.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Objects returns the distinct objects of triples with the given subject and
// predicate, in sorted order (the same deterministic ordering contract as
// Query).
func (s *Store) Objects(subject, predicate string) []string {
	sid, ok := s.syms.lookup(subject)
	if !ok {
		return nil
	}
	pid, ok := s.syms.lookup(predicate)
	if !ok {
		return nil
	}
	res := newResolver(s.syms)
	sh := s.spo.shard(sid)
	sh.mu.RLock()
	var out []string
	if e := sh.m[sid]; e != nil {
		if set := e.find(pid); set != nil {
			set.forEach(func(oid uint32) bool {
				out = append(out, res.name(oid))
				return true
			})
		}
	}
	sh.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Predicates returns the distinct predicates in the store, in sorted order
// (the same deterministic ordering contract as Query).
func (s *Store) Predicates() []string {
	res := newResolver(s.syms)
	var out []string
	for i := range s.pos {
		sh := &s.pos[i]
		sh.mu.RLock()
		for pid := range sh.m {
			out = append(out, res.name(pid))
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}
