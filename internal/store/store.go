// Package store implements the database-shaped substrate for the paper's §4
// pragmatic argument: an in-memory triple store with subject/predicate/object
// indexes, pattern queries, ontology-aware query expansion over a
// description-logic TBox, and the precision/recall accounting used to measure
// whether a normative ontonomy helps or hinders retrieval as the usage of a
// domain drifts away from it (experiment E5).
//
// The store is deliberately small but real: triples are deduplicated, the
// three canonical permutation indexes (SPO, POS, OSP) are maintained
// incrementally, every pattern query is answered from the most selective
// index, and reads are safe for concurrent use.
package store

import (
	"fmt"
	"sort"
	"sync"
)

// Triple is one (subject, predicate, object) fact.
type Triple struct {
	Subject   string
	Predicate string
	Object    string
}

// String renders the triple.
func (t Triple) String() string {
	return fmt.Sprintf("(%s %s %s)", t.Subject, t.Predicate, t.Object)
}

// valid reports whether all three components are non-empty.
func (t Triple) valid() bool {
	return t.Subject != "" && t.Predicate != "" && t.Object != ""
}

// Pattern is a triple pattern: empty components are wildcards.
type Pattern struct {
	Subject   string
	Predicate string
	Object    string
}

// String renders the pattern with ? for wildcards.
func (p Pattern) String() string {
	part := func(s string) string {
		if s == "" {
			return "?"
		}
		return s
	}
	return fmt.Sprintf("(%s %s %s)", part(p.Subject), part(p.Predicate), part(p.Object))
}

// Matches reports whether the triple matches the pattern.
func (p Pattern) Matches(t Triple) bool {
	return (p.Subject == "" || p.Subject == t.Subject) &&
		(p.Predicate == "" || p.Predicate == t.Predicate) &&
		(p.Object == "" || p.Object == t.Object)
}

// index is a three-level nested map keyed by a fixed permutation of the
// triple components.
type index map[string]map[string]map[string]bool

func (ix index) add(a, b, c string) {
	l2, ok := ix[a]
	if !ok {
		l2 = map[string]map[string]bool{}
		ix[a] = l2
	}
	l3, ok := l2[b]
	if !ok {
		l3 = map[string]bool{}
		l2[b] = l3
	}
	l3[c] = true
}

func (ix index) remove(a, b, c string) {
	l2, ok := ix[a]
	if !ok {
		return
	}
	l3, ok := l2[b]
	if !ok {
		return
	}
	delete(l3, c)
	if len(l3) == 0 {
		delete(l2, b)
	}
	if len(l2) == 0 {
		delete(ix, a)
	}
}

// Store is an in-memory indexed triple store. The zero value is not ready to
// use; call New. All methods are safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	size int
	spo  index
	pos  index
	osp  index
}

// New returns an empty store.
func New() *Store {
	return &Store{spo: index{}, pos: index{}, osp: index{}}
}

// Add inserts a triple, reporting whether it was newly inserted. Triples with
// an empty component are rejected with an error.
func (s *Store) Add(t Triple) (bool, error) {
	if !t.valid() {
		return false, fmt.Errorf("store: triple %v has an empty component", t)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.containsLocked(t) {
		return false, nil
	}
	s.spo.add(t.Subject, t.Predicate, t.Object)
	s.pos.add(t.Predicate, t.Object, t.Subject)
	s.osp.add(t.Object, t.Subject, t.Predicate)
	s.size++
	return true, nil
}

// MustAdd is Add panicking on error, for statically known data in tests and
// examples.
func (s *Store) MustAdd(t Triple) {
	if _, err := s.Add(t); err != nil {
		panic(err)
	}
}

// AddAll inserts all triples, returning how many were newly inserted and the
// first error encountered (insertion stops at the first invalid triple).
func (s *Store) AddAll(ts ...Triple) (int, error) {
	added := 0
	for _, t := range ts {
		ok, err := s.Add(t)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

// Remove deletes a triple, reporting whether it was present.
func (s *Store) Remove(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.containsLocked(t) {
		return false
	}
	s.spo.remove(t.Subject, t.Predicate, t.Object)
	s.pos.remove(t.Predicate, t.Object, t.Subject)
	s.osp.remove(t.Object, t.Subject, t.Predicate)
	s.size--
	return true
}

// Len returns the number of triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

// Contains reports whether the triple is present.
func (s *Store) Contains(t Triple) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.containsLocked(t)
}

func (s *Store) containsLocked(t Triple) bool {
	l2, ok := s.spo[t.Subject]
	if !ok {
		return false
	}
	l3, ok := l2[t.Predicate]
	if !ok {
		return false
	}
	return l3[t.Object]
}

// Query returns all triples matching the pattern, in deterministic
// (lexicographic) order. The most selective permutation index available for
// the pattern's bound components is used, so fully or partially bound queries
// never scan the whole store.
func (s *Store) Query(p Pattern) []Triple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Triple
	collect := func(t Triple) {
		if p.Matches(t) {
			out = append(out, t)
		}
	}
	switch {
	case p.Subject != "":
		for pred, objs := range s.spo[p.Subject] {
			if p.Predicate != "" && pred != p.Predicate {
				continue
			}
			for obj := range objs {
				collect(Triple{p.Subject, pred, obj})
			}
		}
	case p.Predicate != "":
		for obj, subjects := range s.pos[p.Predicate] {
			if p.Object != "" && obj != p.Object {
				continue
			}
			for subj := range subjects {
				collect(Triple{subj, p.Predicate, obj})
			}
		}
	case p.Object != "":
		for subj, preds := range s.osp[p.Object] {
			for pred := range preds {
				collect(Triple{subj, pred, p.Object})
			}
		}
	default:
		for subj, l2 := range s.spo {
			for pred, objs := range l2 {
				for obj := range objs {
					collect(Triple{subj, pred, obj})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Subject != out[j].Subject {
			return out[i].Subject < out[j].Subject
		}
		if out[i].Predicate != out[j].Predicate {
			return out[i].Predicate < out[j].Predicate
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// Subjects returns the distinct subjects of triples with the given predicate
// and object, sorted.
func (s *Store) Subjects(predicate, object string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for subj := range s.pos[predicate][object] {
		out = append(out, subj)
	}
	sort.Strings(out)
	return out
}

// Objects returns the distinct objects of triples with the given subject and
// predicate, sorted.
func (s *Store) Objects(subject, predicate string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for obj := range s.spo[subject][predicate] {
		out = append(out, obj)
	}
	sort.Strings(out)
	return out
}

// Predicates returns the distinct predicates in the store, sorted.
func (s *Store) Predicates() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for pred := range s.pos {
		out = append(out, pred)
	}
	sort.Strings(out)
	return out
}
