package store

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentShardedWritersAndReaders exercises the sharded engine the way
// the global-lock engine never could be: many writers on disjoint subject
// ranges (single adds, batches, and removals of their own triples) racing
// many readers on every read path. Run with -race; the final state is checked
// exactly.
func TestConcurrentShardedWritersAndReaders(t *testing.T) {
	const (
		writers          = 8
		triplesPerWriter = 400
		removedPerWriter = 100
		readers          = 8
	)
	s := New()
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the triples via a batch, half via single adds, then
			// remove a slice of what this writer inserted.
			batch := make([]Triple, 0, triplesPerWriter/2)
			for i := 0; i < triplesPerWriter/2; i++ {
				batch = append(batch, writerTriple(w, i))
			}
			if _, err := s.AddBatch(batch); err != nil {
				t.Error(err)
				return
			}
			for i := triplesPerWriter / 2; i < triplesPerWriter; i++ {
				s.MustAdd(writerTriple(w, i))
			}
			for i := 0; i < removedPerWriter; i++ {
				if !s.Remove(writerTriple(w, i)) {
					t.Errorf("writer %d: own triple %d missing at removal", w, i)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				class := fmt.Sprintf("class%d", i%7)
				_ = s.Query(Pattern{Predicate: "type", Object: class})
				s.QueryFunc(Pattern{Subject: fmt.Sprintf("w%d-s%d", i%writers, i)}, func(Triple) bool { return true })
				s.ForEachSubject("type", class, func(string) bool { return true })
				_ = s.Count(Pattern{Predicate: "type"})
				_ = s.Predicates()
				_ = s.Len()
			}
		}(r)
	}
	wg.Wait()

	want := writers * (triplesPerWriter - removedPerWriter)
	if s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
	if got := s.Count(Pattern{Predicate: "type"}); got != want {
		t.Fatalf("Count(type) = %d, want %d", got, want)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < triplesPerWriter; i++ {
			tr := writerTriple(w, i)
			if s.Contains(tr) != (i >= removedPerWriter) {
				t.Fatalf("writer %d triple %d: wrong final presence", w, i)
			}
		}
	}
}

func writerTriple(w, i int) Triple {
	return Triple{
		Subject:   fmt.Sprintf("w%d-s%d", w, i),
		Predicate: "type",
		Object:    fmt.Sprintf("class%d", i%7),
	}
}
