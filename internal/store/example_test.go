package store_test

import (
	"bytes"
	"fmt"

	"repro/internal/store"
)

// ExampleStore_Snapshot writes a store as JSON lines and restores it into a
// fresh store: the canonical sorted order makes snapshots byte-stable, so
// equal stores produce identical bytes whatever order they were built in.
func ExampleStore_Snapshot() {
	s := store.New()
	if _, err := s.AddAll(
		store.Triple{Subject: "beetle", Predicate: "type", Object: "car"},
		store.Triple{Subject: "beetle", Predicate: "locatedIn", Object: "rome"},
	); err != nil {
		panic(err)
	}

	var buf bytes.Buffer
	n, err := s.Snapshot(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(n, "triples")
	fmt.Print(buf.String())

	restored := store.New()
	if _, err := store.Restore(restored, &buf); err != nil {
		panic(err)
	}
	fmt.Println("restored:", restored.Len())
	// Output:
	// 2 triples
	// {"Subject":"beetle","Predicate":"locatedIn","Object":"rome"}
	// {"Subject":"beetle","Predicate":"type","Object":"car"}
	// restored: 2
}

// ExampleStore_Query shows the sorted deterministic ordering contract of
// the string-level pattern reads.
func ExampleStore_Query() {
	s := store.New()
	if _, err := s.AddAll(
		store.Triple{Subject: "b", Predicate: "type", Object: "car"},
		store.Triple{Subject: "a", Predicate: "type", Object: "car"},
		store.Triple{Subject: "a", Predicate: "type", Object: "dog"},
	); err != nil {
		panic(err)
	}
	for _, t := range s.Query(store.Pattern{Predicate: "type", Object: "car"}) {
		fmt.Println(t)
	}
	// Output:
	// (a type car)
	// (b type car)
}
