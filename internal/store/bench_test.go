package store

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// seedEngine replicates the pre-dictionary engine this package shipped with —
// triple-nested map[string] permutation indexes behind one store-wide RWMutex,
// locked once per triple — so the benchmarks below can measure the rebuild
// against the exact baseline it replaced.
type seedEngine struct {
	mu   sync.RWMutex
	size int
	spo  map[string]map[string]map[string]bool
	pos  map[string]map[string]map[string]bool
	osp  map[string]map[string]map[string]bool
}

func newSeedEngine() *seedEngine {
	return &seedEngine{
		spo: map[string]map[string]map[string]bool{},
		pos: map[string]map[string]map[string]bool{},
		osp: map[string]map[string]map[string]bool{},
	}
}

func seedIndexAdd(ix map[string]map[string]map[string]bool, a, b, c string) {
	l2, ok := ix[a]
	if !ok {
		l2 = map[string]map[string]bool{}
		ix[a] = l2
	}
	l3, ok := l2[b]
	if !ok {
		l3 = map[string]bool{}
		l2[b] = l3
	}
	l3[c] = true
}

func (s *seedEngine) add(t Triple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.spo[t.Subject][t.Predicate][t.Object] {
		seedIndexAdd(s.spo, t.Subject, t.Predicate, t.Object)
		seedIndexAdd(s.pos, t.Predicate, t.Object, t.Subject)
		seedIndexAdd(s.osp, t.Object, t.Subject, t.Predicate)
		s.size++
	}
}

func (s *seedEngine) subjects(predicate, object string) []string {
	s.mu.RLock()
	var out []string
	for subj := range s.pos[predicate][object] {
		out = append(out, subj)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ingestWorkload builds n distinct type-annotation triples shaped like the
// E5/E5b corpora: many instances spread over a few hundred classes.
func ingestWorkload(n int) []Triple {
	ts := make([]Triple, n)
	for i := range ts {
		ts[i] = Triple{
			Subject:   fmt.Sprintf("inst-%d", i),
			Predicate: TypePredicate,
			Object:    fmt.Sprintf("class-%d", i%317),
		}
	}
	return ts
}

// BenchmarkStoreIngest measures bulk ingest at 1e5 and 1e6 triples:
// the batch path, the per-triple path, and the seed's nested string-map
// engine it replaced.
func BenchmarkStoreIngest(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		ts := ingestWorkload(n)
		b.Run(fmt.Sprintf("batch-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := New()
				if _, err := s.AddBatch(ts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "triples/s")
		})
		b.Run(fmt.Sprintf("single-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := New()
				for _, t := range ts {
					if _, err := s.Add(t); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "triples/s")
		})
		b.Run(fmt.Sprintf("seedmaps-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := newSeedEngine()
				for _, t := range ts {
					s.add(t)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "triples/s")
		})
	}
}

// BenchmarkStoreQuery measures the E5-shaped read pattern over a 1e5-triple
// store: retrieving one class's instances through the POS index, via the
// sorted materializing paths (new and seed) and the streaming iterator.
func BenchmarkStoreQuery(b *testing.B) {
	const n = 100_000
	ts := ingestWorkload(n)
	s := New()
	if _, err := s.AddBatch(ts); err != nil {
		b.Fatal(err)
	}
	seed := newSeedEngine()
	for _, t := range ts {
		seed.add(t)
	}
	class := func(i int) string { return fmt.Sprintf("class-%d", i%317) }

	b.Run("subjects", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := s.Subjects(TypePredicate, class(i)); len(got) == 0 {
				b.Fatal("empty class")
			}
		}
	})
	b.Run("foreachsubject", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			count := 0
			s.ForEachSubject(TypePredicate, class(i), func(string) bool {
				count++
				return true
			})
			if count == 0 {
				b.Fatal("empty class")
			}
		}
	})
	b.Run("queryfunc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			count := 0
			s.QueryFunc(Pattern{Predicate: TypePredicate, Object: class(i)}, func(Triple) bool {
				count++
				return true
			})
			if count == 0 {
				b.Fatal("empty class")
			}
		}
	})
	b.Run("query", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := s.Query(Pattern{Predicate: TypePredicate, Object: class(i)}); len(got) == 0 {
				b.Fatal("empty class")
			}
		}
	})
	b.Run("seedmaps-subjects", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := seed.subjects(TypePredicate, class(i)); len(got) == 0 {
				b.Fatal("empty class")
			}
		}
	})
}

// BenchmarkOntologyExpansion measures the full E5 read loop at store scale:
// the subsumee-union retrieval (what the query layer's Expand option runs)
// over a realistic 32-subsumee fan-out, phrased directly over the POS index.
func BenchmarkOntologyExpansion(b *testing.B) {
	const n = 100_000
	s := New()
	if _, err := s.AddBatch(ingestWorkload(n)); err != nil {
		b.Fatal(err)
	}
	// A synthetic index: one queried class expanding to 32 subsumees.
	oi := &OntologyIndex{subsumees: map[string][]string{}}
	for i := 0; i < 32; i++ {
		oi.subsumees["root"] = append(oi.subsumees["root"], fmt.Sprintf("class-%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// expandedInstances (ontology_test.go) is the subsumee-union walk,
		// shared with the retrieval test.
		if got := expandedInstances(s, oi, "root"); len(got) == 0 {
			b.Fatal("no instances")
		}
	}
}
