package store

import "sync"

// symtab is the store's symbol table: it interns subject, predicate and
// object strings into dense uint32 ids so the permutation indexes hold
// four-byte ids instead of string headers, and so equality tests inside the
// indexes are integer compares. Ids are append-only and never reused, which
// makes the id→name direction readable under a plain snapshot of the names
// slice (see names below).
type symtab struct {
	mu    sync.RWMutex
	ids   map[string]uint32
	names []string
	// journal, when non-nil, is told about freshly minted ids before the
	// interning lock is released, so dictionary-growth records reach the log
	// in id order ahead of any triple record that references them. The
	// symbol table is shared by overlays, so the hook covers every store of
	// a dictionary-sharing family.
	journal Journal
}

func newSymtab() *symtab {
	return &symtab{ids: make(map[string]uint32)}
}

// setJournal installs (or clears) the dictionary-growth hook.
func (st *symtab) setJournal(j Journal) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.journal = j
}

// journalGrowthLocked reports the names minted since the dictionary held
// before entries to the journal. Callers hold st.mu for writing; running
// under the lock is what orders dictionary records ahead of every triple
// record that uses the new ids.
func (st *symtab) journalGrowthLocked(before int) {
	if st.journal != nil && len(st.names) > before {
		st.journal.JournalDict(SymbolID(before), st.names[before:]) //ontolint:ignore lockcheck the journal only appends to its own buffer (its lock nests strictly inside the dictionary lock, never the reverse) and the under-lock call is what keeps dictionary records ordered before the triple records that use the new ids
	}
}

// internTriple interns all three components under a single lock round trip.
func (st *symtab) internTriple(t Triple) encTriple {
	st.mu.RLock()
	s, okS := st.ids[t.Subject]
	p, okP := st.ids[t.Predicate]
	o, okO := st.ids[t.Object]
	st.mu.RUnlock()
	if okS && okP && okO {
		return encTriple{s, p, o}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	before := len(st.names)
	e := encTriple{st.internLocked(t.Subject), st.internLocked(t.Predicate), st.internLocked(t.Object)}
	st.journalGrowthLocked(before)
	return e
}

// internBatch interns every component of ts under one write lock, appending
// the encoded triples to enc (the symbol-table lock is taken once for the
// whole batch, not once per triple).
func (st *symtab) internBatch(ts []Triple, enc []encTriple) []encTriple {
	st.mu.Lock()
	defer st.mu.Unlock()
	before := len(st.names)
	for _, t := range ts {
		enc = append(enc, encTriple{
			st.internLocked(t.Subject),
			st.internLocked(t.Predicate),
			st.internLocked(t.Object),
		})
	}
	st.journalGrowthLocked(before)
	return enc
}

func (st *symtab) internLocked(s string) uint32 {
	if id, ok := st.ids[s]; ok {
		return id
	}
	id := uint32(len(st.names))
	st.ids[s] = id
	st.names = append(st.names, s)
	return id
}

// lookup returns the id of s without interning it; ok is false when s has
// never been seen (and therefore cannot occur in any index).
func (st *symtab) lookup(s string) (uint32, bool) {
	st.mu.RLock()
	id, ok := st.ids[s]
	st.mu.RUnlock()
	return id, ok
}

// lookupTriple resolves all three components read-only.
func (st *symtab) lookupTriple(t Triple) (encTriple, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, okS := st.ids[t.Subject]
	p, okP := st.ids[t.Predicate]
	o, okO := st.ids[t.Object]
	return encTriple{s, p, o}, okS && okP && okO
}

// snapshot returns the current id→name mapping. The returned slice is safe
// to read concurrently with interning: ids are append-only, so every element
// below the snapshot's length is immutable. Resolvers must fall back to name
// for ids minted after the snapshot was taken.
func (st *symtab) snapshot() []string {
	st.mu.RLock()
	names := st.names
	st.mu.RUnlock()
	return names
}

// name resolves a single id under the lock; used as the slow path when a
// snapshot proves too short.
func (st *symtab) name(id uint32) string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.names[id]
}

// resolver resolves ids to names from a cheap snapshot, falling back to the
// locked path for ids interned after the snapshot. The zero value is not
// ready; use newResolver.
type resolver struct {
	st    *symtab
	names []string
}

func newResolver(st *symtab) resolver {
	return resolver{st: st, names: st.snapshot()}
}

func (r resolver) name(id uint32) string {
	if int(id) < len(r.names) {
		return r.names[id]
	}
	return r.st.name(id)
}
