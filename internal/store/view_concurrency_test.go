// The concurrent-snapshot test lives in the external test package so it can
// drive writes through the real materialization engine (repro/internal/reason
// imports store; an internal test would be an import cycle).
package store_test

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/reason"
	"repro/internal/store"
)

// TestViewSnapshotUnderConcurrentEngineWrites snapshots a materialized view
// while a reasoner concurrently adds and removes triples — the serving
// layer's GET /snapshot racing POST /triples. Run under -race (CI does),
// this is primarily a data-race probe; the semantic assertions are the
// documented weak ones: every snapshot line is a well-formed triple
// (Restore parses the whole stream), and a quiescent snapshot afterwards is
// exact and byte-stable.
func TestViewSnapshotUnderConcurrentEngineWrites(t *testing.T) {
	base := store.New()
	if _, err := base.AddAll(
		store.Triple{Subject: "car", Predicate: reason.SubClassOfPredicate, Object: "vehicle"},
		store.Triple{Subject: "vehicle", Predicate: reason.SubClassOfPredicate, Object: "artifact"},
	); err != nil {
		t.Fatal(err)
	}
	r, err := reason.Materialize(base, reason.RDFSRules())
	if err != nil {
		t.Fatal(err)
	}
	view := r.View()

	const (
		writers = 2
		rounds  = 150
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tr := store.Triple{
					Subject:   fmt.Sprintf("item-%d-%d", w, i),
					Predicate: store.TypePredicate,
					Object:    "car",
				}
				if _, err := r.Add(tr); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if i%3 == 0 {
					r.Remove(tr)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var buf bytes.Buffer
			if _, err := view.Snapshot(&buf); err != nil {
				t.Errorf("snapshot under writes: %v", err)
				return
			}
			// Every line must still be a well-formed triple.
			if _, err := store.Restore(store.New(), &buf); err != nil {
				t.Errorf("snapshot under writes does not restore: %v", err)
				return
			}
			if _, err := view.SnapshotProvenance(io.Discard); err != nil {
				t.Errorf("provenance snapshot under writes: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiescent: the snapshot is exact and byte-stable.
	var a, b bytes.Buffer
	na, err := view.Snapshot(&a)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := view.Snapshot(&b)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("quiescent snapshots differ: %d vs %d triples", na, nb)
	}
	if na != view.Len() {
		t.Fatalf("snapshot wrote %d triples, view holds %d", na, view.Len())
	}
}
