package store

import (
	"errors"
	"fmt"
)

// This file is the store's durability hook: a Journal interface the mutation
// path reports to, at dictionary-id level, so a write-ahead log (package
// repro/internal/durable) can make every acknowledged mutation replayable
// without the store knowing anything about files, fsync or record formats.
//
// The contract between the store and a journal is ordering: dictionary-growth
// notifications are emitted under the symbol-table lock, in id order, so a
// journal that appends them to a log in call order is guaranteed that every
// id is defined before any triple notification references it. Triple
// notifications for concurrent batches may interleave in any order — adds
// commute under set semantics — but a racing Add and Remove of the same
// triple may be journaled in either order (the store documents that race as
// unspecified; callers that need a deterministic log, like the serving
// stack's reasoner, already serialize mutations behind one lock).

// ErrJournal marks a mutation that was applied to the in-memory indexes but
// whose journal commit failed: the triples are visible to readers of this
// process yet are not guaranteed durable. Callers that promise durability
// (the HTTP serving layer) should report such errors as server-side failures,
// not client errors.
var ErrJournal = errors.New("journal commit failed")

// Journal receives the store's mutation stream at dictionary-id level. A
// journal is attached with SetJournal; afterwards every mutating method
// reports what it changed and blocks in JournalCommit until the journal calls
// the change durable. Implementations must be safe for concurrent use — the
// store calls them from every writing goroutine — and may retain the slices
// they are handed (the store never mutates them afterwards).
type Journal interface {
	// JournalDict reports freshly minted dictionary ids: names[i] was
	// assigned id first+i. It is called under the symbol-table lock, so
	// calls arrive in ascending id order and before any JournalAdd or
	// JournalRemove that references the new ids; it must be fast and must
	// not call back into the store.
	JournalDict(first SymbolID, names []string)
	// JournalAdd reports triples newly inserted by one mutation (duplicates
	// already present are excluded). Every component id has been reported by
	// an earlier JournalDict call or belongs to the dictionary state the
	// journal was opened over.
	JournalAdd(batch []IDTriple)
	// JournalRemove reports one removed triple.
	JournalRemove(t IDTriple)
	// JournalCommit blocks until every change this goroutine journaled so
	// far is durable, and returns the journal's sticky error if durability
	// has failed. The store calls it once per acknowledged mutation, after
	// the in-memory apply, so group-committing journals see concurrent
	// mutations pile up and can amortize one fsync across all of them.
	JournalCommit() error
}

// SetJournal attaches a journal to the store's mutation path, or detaches it
// with nil. The journal observes dictionary growth for every store sharing
// this store's symbol table (overlays included — their ids must be defined
// too), and triple changes for this store only, which is what lets a serving
// stack journal the asserted base while the reasoner's derived overlay stays
// ephemeral.
//
// SetJournal is safe to call while mutations are in flight: the field is an
// atomic pointer the mutation path loads once per mutation, so a concurrent
// detach (durable.Engine.Close) is not a data race — a racing mutation either
// journals and commits through the old journal or skips journaling entirely.
// Once attached, a mutation returns only after JournalCommit; if the commit
// fails the mutation is still applied in memory and the error (wrapping
// ErrJournal where the signature allows) tells the caller durability is gone.
// Remove and RemoveID have no error return; their commit failures are only
// visible through the journal's own sticky-error reporting, so durability
// monitors must watch the journal, not the store.
func (s *Store) SetJournal(j Journal) {
	if j == nil {
		s.journal.Store(nil)
	} else {
		s.journal.Store(&j)
	}
	s.syms.setJournal(j)
}

// getJournal loads the attached journal, nil when none is attached. Mutation
// paths call it exactly once per mutation and thread the loaded value through
// to the commit, so a concurrent SetJournal cannot split one mutation across
// two journals.
func (s *Store) getJournal() Journal {
	if p := s.journal.Load(); p != nil {
		return *p
	}
	return nil
}

// DictLen returns the number of names interned in the store's dictionary —
// the exclusive upper bound of every minted SymbolID. A checkpointer pairs it
// with NewResolver to dump the id→name mapping: every id below DictLen
// resolves, and ids minted later refer to names the dump does not need.
func (s *Store) DictLen() int {
	return len(s.syms.snapshot())
}

// commitJournal runs j's commit, wrapping failures in ErrJournal. Callers
// pass the journal they already loaded for this mutation (see getJournal).
func commitJournal(j Journal) error {
	if err := j.JournalCommit(); err != nil {
		return fmt.Errorf("store: mutation applied in memory but not durable: %w: %w", ErrJournal, err)
	}
	return nil
}

// AddIDBatch inserts a batch of dictionary-encoded triples, returning how
// many were newly inserted — the id-level twin of AddBatch, used by recovery
// to bulk-load segment runs and replayed log records without resolving a
// single string. Validation is all-or-nothing exactly as AddBatch: every
// component id must have been minted by the store's dictionary, and if any
// was not, an error identifying the first offending triple is returned and
// nothing is inserted. Like AddBatch it visits each index shard at most once
// per family pass, and shares its in-flight visibility caveats.
func (s *Store) AddIDBatch(ts []IDTriple) (int, error) {
	n := SymbolID(s.DictLen())
	for i, t := range ts {
		if t.S >= n || t.P >= n || t.O >= n {
			return 0, fmt.Errorf("store: batch id triple %d %v has an id the dictionary never minted; batch not inserted", i, t)
		}
	}
	if len(ts) == 0 {
		return 0, nil
	}
	enc := make([]encTriple, 0, len(ts))
	for _, t := range ts {
		enc = append(enc, encTriple{t.S, t.P, t.O})
	}
	fresh := s.insertBatch(enc)
	if j := s.getJournal(); j != nil && len(fresh) > 0 {
		j.JournalAdd(freshIDs(fresh))
		if err := commitJournal(j); err != nil {
			return len(fresh), err
		}
	}
	return len(fresh), nil
}

// freshIDs converts the batch path's encoded triples to the exported id form
// the journal receives.
func freshIDs(fresh []encTriple) []IDTriple {
	out := make([]IDTriple, len(fresh))
	for i, e := range fresh {
		out[i] = IDTriple{S: e.s, P: e.p, O: e.o}
	}
	return out
}
