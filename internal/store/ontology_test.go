package store

import (
	"sort"
	"testing"

	"repro/internal/dl"
)

// vehiclesTBox is the paper's eq. (4) plus explicit subclass structure so
// that ontology expansion has something to expand: car and pickup are both
// road vehicles and motor vehicles.
func vehiclesTBox(t *testing.T) *dl.TBox {
	t.Helper()
	tb := dl.NewTBox()
	tb.MustDefine("motorvehicle", dl.SubsumedBy, dl.Exists("uses", dl.Atomic("gasoline")))
	tb.MustDefine("roadvehicle", dl.SubsumedBy, dl.AtLeast(4, "has", dl.Atomic("wheels")))
	tb.MustDefine("car", dl.SubsumedBy, dl.And(
		dl.Atomic("motorvehicle"), dl.Atomic("roadvehicle"), dl.Exists("size", dl.Atomic("small")),
	))
	tb.MustDefine("pickup", dl.SubsumedBy, dl.And(
		dl.Atomic("motorvehicle"), dl.Atomic("roadvehicle"), dl.Exists("size", dl.Atomic("big")),
	))
	return tb
}

func TestOntologyIndexSubsumption(t *testing.T) {
	oi, err := NewOntologyIndex(vehiclesTBox(t))
	if err != nil {
		t.Fatal(err)
	}
	subs := oi.Subsumees("roadvehicle")
	want := map[string]bool{"car": true, "pickup": true, "roadvehicle": true}
	if len(subs) != len(want) {
		t.Fatalf("Subsumees(roadvehicle) = %v, want car, pickup, roadvehicle", subs)
	}
	for _, s := range subs {
		if !want[s] {
			t.Errorf("unexpected subsumee %q", s)
		}
	}
	sups := oi.Subsumers("car")
	if len(sups) != 3 { // car, motorvehicle, roadvehicle
		t.Errorf("Subsumers(car) = %v, want 3 classes", sups)
	}
	// Unknown classes degrade to themselves.
	if got := oi.Subsumees("boat"); len(got) != 1 || got[0] != "boat" {
		t.Errorf("Subsumees(boat) = %v, want [boat]", got)
	}
	if got := oi.Subsumers("boat"); len(got) != 1 || got[0] != "boat" {
		t.Errorf("Subsumers(boat) = %v, want [boat]", got)
	}
	if got := oi.Classes(); len(got) != 4 {
		t.Errorf("Classes = %v, want the 4 defined names", got)
	}
}

// expandedInstances is the expansion the query layer performs, phrased over
// the store's raw reads: the deduplicated sorted union of each subsumee's
// annotated subjects. It stands in for the removed InstancesOfExpanded
// helper so the subsumption index's retrieval semantics stay covered at the
// store level (the query package proves its Expand option equivalent).
func expandedInstances(s *Store, oi *OntologyIndex, class string) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range oi.Subsumees(class) {
		s.ForEachSubject(TypePredicate, c, func(subj string) bool {
			if !seen[subj] {
				seen[subj] = true
				out = append(out, subj)
			}
			return true
		})
	}
	sort.Strings(out)
	return out
}

func TestExpandedRetrievalThroughIndex(t *testing.T) {
	oi, err := NewOntologyIndex(vehiclesTBox(t))
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	for _, a := range [][2]string{{"c1", "car"}, {"c2", "car"}, {"p1", "pickup"}, {"r1", "roadvehicle"}} {
		s.MustAdd(Triple{Subject: a[0], Predicate: TypePredicate, Object: a[1]})
	}

	plain := s.Subjects(TypePredicate, "roadvehicle")
	if len(plain) != 1 || plain[0] != "r1" {
		t.Errorf("unexpanded Subjects(type, roadvehicle) = %v, want [r1]", plain)
	}
	expanded := expandedInstances(s, oi, "roadvehicle")
	if len(expanded) != 4 {
		t.Errorf("expanded retrieval of roadvehicle = %v, want all four instances", expanded)
	}
	// Expansion of a leaf class adds nothing.
	if got := expandedInstances(s, oi, "car"); len(got) != 2 {
		t.Errorf("expanded retrieval of car = %v, want [c1 c2]", got)
	}
	// Expansion never loses the unexpanded answers.
	for _, subj := range plain {
		found := false
		for _, e := range expanded {
			if e == subj {
				found = true
			}
		}
		if !found {
			t.Errorf("expansion lost subject %q", subj)
		}
	}
}

func TestNewOntologyIndexWithFailingReasoner(t *testing.T) {
	tb := vehiclesTBox(t)
	fails := func(sub, super string) (bool, error) {
		return false, dl.ErrNotConjunctive
	}
	if _, err := NewOntologyIndexWith(tb, fails); err == nil {
		t.Error("expected the reasoner error to propagate")
	}
}

func TestEvaluateAndMacro(t *testing.T) {
	r := Evaluate([]string{"a", "b", "c"}, []string{"b", "c", "d"})
	if r.TruePositive != 2 || r.Retrieved != 3 || r.Relevant != 3 {
		t.Fatalf("Evaluate = %+v", r)
	}
	if p := r.Precision(); p < 0.666 || p > 0.667 {
		t.Errorf("Precision = %f", p)
	}
	if rec := r.Recall(); rec < 0.666 || rec > 0.667 {
		t.Errorf("Recall = %f", rec)
	}
	if f1 := r.F1(); f1 < 0.66 || f1 > 0.67 {
		t.Errorf("F1 = %f", f1)
	}
	// Edge cases.
	empty := Evaluate(nil, nil)
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Errorf("empty Evaluate P/R = %f/%f, want 1/1", empty.Precision(), empty.Recall())
	}
	zero := Evaluate([]string{"x"}, []string{"y"})
	if zero.F1() != 0 {
		t.Errorf("disjoint F1 = %f, want 0", zero.F1())
	}
	agg := Macro([]RetrievalResult{r, empty})
	if agg.Queries != 2 {
		t.Errorf("Macro queries = %d, want 2", agg.Queries)
	}
	if agg.Recall <= 0.8 || agg.Recall > 1 {
		t.Errorf("Macro recall = %f", agg.Recall)
	}
	if Macro(nil).Queries != 0 {
		t.Error("Macro(nil) should be zero-valued")
	}
	if r.String() == "" || agg.String() == "" {
		t.Error("empty String renderings")
	}
}
