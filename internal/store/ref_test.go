package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// refStore is the reference semantics the indexed engine must agree with: a
// flat deduplicated slice of triples, with every pattern query answered by
// filtering all triples and sorting. It is deliberately the dumbest correct
// implementation — no dictionary, no shards, no indexes.
type refStore struct {
	triples map[Triple]bool
}

func newRef() *refStore {
	return &refStore{triples: map[Triple]bool{}}
}

func (r *refStore) add(t Triple) bool {
	if r.triples[t] {
		return false
	}
	r.triples[t] = true
	return true
}

func (r *refStore) remove(t Triple) bool {
	if !r.triples[t] {
		return false
	}
	delete(r.triples, t)
	return true
}

func (r *refStore) query(p Pattern) []Triple {
	var out []Triple
	for t := range r.triples {
		if p.Matches(t) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// randomTriple draws components from a small vocabulary so duplicates,
// removals and pattern hits are all frequent.
func randomTriple(rng *rand.Rand) Triple {
	return Triple{
		Subject:   fmt.Sprintf("s%d", rng.Intn(12)),
		Predicate: fmt.Sprintf("p%d", rng.Intn(5)),
		Object:    fmt.Sprintf("o%d", rng.Intn(12)),
	}
}

// checkAgreement compares every read path of the engine against the
// reference on a set of probing patterns.
func checkAgreement(t *testing.T, s *Store, ref *refStore) {
	t.Helper()
	if s.Len() != len(ref.triples) {
		t.Fatalf("Len = %d, reference has %d", s.Len(), len(ref.triples))
	}
	patterns := []Pattern{
		{},
		{Subject: "s1"},
		{Subject: "s999"},
		{Predicate: "p0"},
		{Predicate: "p3"},
		{Object: "o2"},
		{Subject: "s1", Predicate: "p1"},
		{Subject: "s2", Object: "o3"},
		{Predicate: "p2", Object: "o4"},
		{Subject: "s0", Predicate: "p0", Object: "o0"},
	}
	for _, p := range patterns {
		want := ref.query(p)
		got := s.Query(p)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Query(%v) = %v, reference says %v", p, got, want)
		}
		if c := s.Count(p); c != len(want) {
			t.Fatalf("Count(%v) = %d, reference says %d", p, c, len(want))
		}
		// QueryFunc must stream exactly the same set, in any order.
		seen := map[Triple]bool{}
		s.QueryFunc(p, func(tr Triple) bool {
			if seen[tr] {
				t.Fatalf("QueryFunc(%v) yielded %v twice", p, tr)
			}
			seen[tr] = true
			return true
		})
		if len(seen) != len(want) {
			t.Fatalf("QueryFunc(%v) yielded %d triples, reference says %d", p, len(seen), len(want))
		}
		for _, tr := range want {
			if !seen[tr] {
				t.Fatalf("QueryFunc(%v) missed %v", p, tr)
			}
		}
	}
	for _, tr := range ref.query(Pattern{}) {
		if !s.Contains(tr) {
			t.Fatalf("Contains(%v) = false for a present triple", tr)
		}
	}
}

// TestEngineMatchesReference drives the indexed engine and the
// filter-all-triples reference through the same random schedule of single
// adds, batch adds and removals, and checks that every read path agrees at
// several points along the way.
func TestEngineMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		ref := newRef()
		for step := 0; step < 6; step++ {
			switch rng.Intn(3) {
			case 0: // single adds
				for i := 0; i < 30; i++ {
					tr := randomTriple(rng)
					got, err := s.Add(tr)
					if err != nil {
						return false
					}
					if got != ref.add(tr) {
						return false
					}
				}
			case 1: // one batch, with internal duplicates
				batch := make([]Triple, 0, 40)
				wantNew := 0
				refCopy := map[Triple]bool{}
				for i := 0; i < 40; i++ {
					tr := randomTriple(rng)
					batch = append(batch, tr)
					if !ref.triples[tr] && !refCopy[tr] {
						refCopy[tr] = true
						wantNew++
					}
				}
				added, err := s.AddBatch(batch)
				if err != nil || added != wantNew {
					return false
				}
				for tr := range refCopy {
					ref.add(tr)
				}
			case 2: // removals, present or not
				for i := 0; i < 20; i++ {
					tr := randomTriple(rng)
					if s.Remove(tr) != ref.remove(tr) {
						return false
					}
				}
			}
			checkAgreement(t, s, ref)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// FuzzQueryAgreement fuzzes one add/remove schedule seed plus one query
// pattern drawn from fuzzed components, asserting the indexed answer equals
// the reference answer.
func FuzzQueryAgreement(f *testing.F) {
	f.Add(int64(1), "s1", "", "")
	f.Add(int64(2), "", "p1", "o1")
	f.Add(int64(3), "", "", "")
	f.Add(int64(4), "s0", "p0", "o0")
	f.Fuzz(func(t *testing.T, seed int64, subj, pred, obj string) {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		ref := newRef()
		for i := 0; i < 80; i++ {
			tr := randomTriple(rng)
			if rng.Intn(4) == 0 {
				if s.Remove(tr) != ref.remove(tr) {
					t.Fatalf("Remove(%v) disagrees with reference", tr)
				}
				continue
			}
			got, err := s.Add(tr)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref.add(tr) {
				t.Fatalf("Add(%v) disagrees with reference", tr)
			}
		}
		p := Pattern{Subject: subj, Predicate: pred, Object: obj}
		want := ref.query(p)
		got := s.Query(p)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Query(%v) = %v, reference says %v", p, got, want)
		}
		if c := s.Count(p); c != len(want) {
			t.Fatalf("Count(%v) = %d, want %d", p, c, len(want))
		}
	})
}
