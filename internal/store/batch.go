package store

import "fmt"

// AddBatch inserts a batch of triples, returning how many were newly
// inserted (duplicates, within the batch or against the store, are counted
// once). Validation is all-or-nothing: the batch is checked up front and if
// any triple has an empty component an error identifying its position is
// returned and nothing at all is inserted. A successful AddBatch therefore
// inserted every valid new triple, and a failed one inserted none — there are
// no partial counts to misread.
//
// The fast path over per-triple Add: all strings of the batch are interned
// under one symbol-table lock, and each index shard is then locked at most
// once per family pass instead of once per triple. See the package
// documentation for what concurrent readers may observe while a batch is in
// flight.
//
// With a journal attached (SetJournal) the batch is acknowledged durable
// before returning: the freshly inserted triples are journaled and the call
// blocks in JournalCommit. A commit failure is returned wrapping ErrJournal —
// the batch is applied in memory but not durable.
func (s *Store) AddBatch(ts []Triple) (int, error) {
	for i, t := range ts {
		if !t.valid() {
			return 0, fmt.Errorf("store: batch triple %d %v has an empty component; batch not inserted", i, t)
		}
	}
	if len(ts) == 0 {
		return 0, nil
	}
	enc := s.syms.internBatch(ts, make([]encTriple, 0, len(ts)))
	fresh := s.insertBatch(enc)
	if j := s.getJournal(); j != nil && len(fresh) > 0 {
		j.JournalAdd(freshIDs(fresh))
		if err := commitJournal(j); err != nil {
			return len(fresh), err
		}
	}
	return len(fresh), nil
}

// insertBatch applies an encoded batch to the three index families and the
// size counter, returning the triples that were actually absent (the batch's
// fresh subset, reusing enc's storage). It is the shared body of AddBatch and
// AddIDBatch.
func (s *Store) insertBatch(enc []encTriple) []encTriple {
	// Pass 1 — SPO, the arbiter of newness: group the batch by subject
	// shard, lock each shard once, and keep only the triples that were
	// actually absent.
	// fresh reuses enc's storage; byShard holds copies, so overwriting the
	// prefix of enc during pass 1 is safe.
	fresh := enc[:0]
	var byShard [numShards][]encTriple
	for _, e := range enc {
		sh := shardOf(e.s)
		byShard[sh] = append(byShard[sh], e)
	}
	for i := range byShard {
		if len(byShard[i]) == 0 {
			continue
		}
		sh := &s.spo[i]
		sh.mu.Lock()
		sh.reserve(len(byShard[i]))
		for _, e := range byShard[i] {
			if sh.insertLocked(e.s, e.p, e.o) {
				fresh = append(fresh, e)
			}
		}
		sh.mu.Unlock()
		byShard[i] = nil
	}

	// Passes 2 and 3 — POS and OSP for the fresh triples only, again one
	// lock per touched shard.
	for _, e := range fresh {
		sh := shardOf(e.p)
		byShard[sh] = append(byShard[sh], e)
	}
	for i := range byShard {
		if len(byShard[i]) == 0 {
			continue
		}
		sh := &s.pos[i]
		sh.mu.Lock()
		for _, e := range byShard[i] {
			sh.insertLocked(e.p, e.o, e.s)
		}
		sh.mu.Unlock()
		byShard[i] = nil
	}
	for _, e := range fresh {
		sh := shardOf(e.o)
		byShard[sh] = append(byShard[sh], e)
	}
	for i := range byShard {
		if len(byShard[i]) == 0 {
			continue
		}
		sh := &s.osp[i]
		sh.mu.Lock()
		sh.reserve(len(byShard[i]))
		for _, e := range byShard[i] {
			sh.insertLocked(e.o, e.s, e.p)
		}
		sh.mu.Unlock()
		byShard[i] = nil
	}

	s.size.Add(int64(len(fresh)))
	return fresh
}
