package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestAddQueryRemove(t *testing.T) {
	s := New()
	added, err := s.AddAll(
		Triple{"car1", "type", "car"},
		Triple{"car1", "color", "red"},
		Triple{"dog1", "type", "dog"},
		Triple{"car1", "type", "car"}, // duplicate
	)
	if err != nil {
		t.Fatal(err)
	}
	if added != 3 || s.Len() != 3 {
		t.Fatalf("added=%d Len=%d, want 3 and 3", added, s.Len())
	}
	if !s.Contains(Triple{"car1", "type", "car"}) {
		t.Error("Contains misses an inserted triple")
	}
	if s.Contains(Triple{"car1", "type", "dog"}) {
		t.Error("Contains reports a missing triple")
	}
	if got := s.Query(Pattern{Subject: "car1"}); len(got) != 2 {
		t.Errorf("Query(subject=car1) = %v, want 2 triples", got)
	}
	if got := s.Query(Pattern{Predicate: "type"}); len(got) != 2 {
		t.Errorf("Query(predicate=type) = %v, want 2 triples", got)
	}
	if got := s.Query(Pattern{Object: "red"}); len(got) != 1 || got[0].Subject != "car1" {
		t.Errorf("Query(object=red) = %v", got)
	}
	if got := s.Query(Pattern{}); len(got) != 3 {
		t.Errorf("Query(all) = %v, want 3 triples", got)
	}
	if got := s.Query(Pattern{Subject: "car1", Predicate: "type", Object: "car"}); len(got) != 1 {
		t.Errorf("fully bound query = %v, want exactly the triple", got)
	}
	if !s.Remove(Triple{"car1", "color", "red"}) {
		t.Error("Remove failed on a present triple")
	}
	if s.Remove(Triple{"car1", "color", "red"}) {
		t.Error("Remove succeeded twice")
	}
	if s.Len() != 2 {
		t.Errorf("Len after removal = %d, want 2", s.Len())
	}
	if got := s.Query(Pattern{Object: "red"}); len(got) != 0 {
		t.Errorf("removed triple still visible via OSP index: %v", got)
	}
}

func TestAddRejectsEmptyComponents(t *testing.T) {
	s := New()
	for _, bad := range []Triple{
		{"", "p", "o"}, {"s", "", "o"}, {"s", "p", ""},
	} {
		if _, err := s.Add(bad); err == nil {
			t.Errorf("Add accepted invalid triple %v", bad)
		}
	}
	added, err := s.AddAll(Triple{"a", "b", "c"}, Triple{"", "", ""})
	if err == nil {
		t.Error("AddAll did not propagate the error")
	}
	// The batch contract is all-or-nothing: an invalid triple anywhere in
	// the call means nothing is inserted.
	if added != 0 || s.Len() != 0 {
		t.Errorf("AddAll with an invalid triple inserted %d (Len %d), want 0 (0)", added, s.Len())
	}
}

func TestAddBatch(t *testing.T) {
	s := New()
	s.MustAdd(Triple{"x", "p", "y"})
	added, err := s.AddBatch([]Triple{
		{"a", "p", "b"},
		{"a", "p", "b"}, // duplicate within the batch
		{"x", "p", "y"}, // duplicate against the store
		{"c", "p", "d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 || s.Len() != 3 {
		t.Errorf("AddBatch added %d (Len %d), want 2 (3)", added, s.Len())
	}
	for _, tr := range []Triple{{"a", "p", "b"}, {"c", "p", "d"}, {"x", "p", "y"}} {
		if !s.Contains(tr) {
			t.Errorf("batched triple %v missing", tr)
		}
	}
	if added, err := s.AddBatch(nil); err != nil || added != 0 {
		t.Errorf("empty batch: added %d, err %v", added, err)
	}
	// A failed batch inserts nothing, even the valid prefix.
	added, err = s.AddBatch([]Triple{{"e", "p", "f"}, {"", "p", "g"}})
	if err == nil {
		t.Error("AddBatch accepted an invalid triple")
	}
	if added != 0 || s.Contains(Triple{"e", "p", "f"}) {
		t.Errorf("failed batch must insert nothing: added=%d", added)
	}
}

func TestAccessors(t *testing.T) {
	s := New()
	s.MustAdd(Triple{"i1", "type", "car"})
	s.MustAdd(Triple{"i2", "type", "car"})
	s.MustAdd(Triple{"i1", "owner", "alice"})
	if got := s.Subjects("type", "car"); len(got) != 2 || got[0] != "i1" || got[1] != "i2" {
		t.Errorf("Subjects = %v, want [i1 i2]", got)
	}
	if got := s.Objects("i1", "type"); len(got) != 1 || got[0] != "car" {
		t.Errorf("Objects = %v, want [car]", got)
	}
	if got := s.Predicates(); len(got) != 2 || got[0] != "owner" || got[1] != "type" {
		t.Errorf("Predicates = %v, want [owner type]", got)
	}
	if got := s.Subjects("type", "boat"); len(got) != 0 {
		t.Errorf("Subjects of an absent class = %v, want empty", got)
	}
}

func TestPatternString(t *testing.T) {
	p := Pattern{Subject: "s"}
	if p.String() != "(s ? ?)" {
		t.Errorf("Pattern.String = %q", p.String())
	}
	tr := Triple{"a", "b", "c"}
	if tr.String() != "(a b c)" {
		t.Errorf("Triple.String = %q", tr.String())
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.MustAdd(Triple{
					Subject:   fmt.Sprintf("s%d-%d", w, i),
					Predicate: "type",
					Object:    fmt.Sprintf("class%d", i%5),
				})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = s.Query(Pattern{Predicate: "type", Object: "class1"})
				_ = s.Len()
			}
		}()
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("Len = %d, want 800", s.Len())
	}
}

// TestIndexAgreement is the property test on the index invariant: whatever
// the access path, a pattern query returns exactly the matching subset of all
// inserted triples.
func TestIndexAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var all []Triple
		for i := 0; i < 60; i++ {
			tr := Triple{
				Subject:   fmt.Sprintf("s%d", rng.Intn(8)),
				Predicate: fmt.Sprintf("p%d", rng.Intn(4)),
				Object:    fmt.Sprintf("o%d", rng.Intn(8)),
			}
			if ok, err := s.Add(tr); err != nil {
				return false
			} else if ok {
				all = append(all, tr)
			}
		}
		// Remove a few at random.
		for i := 0; i < 10 && len(all) > 0; i++ {
			k := rng.Intn(len(all))
			s.Remove(all[k])
			all = append(all[:k], all[k+1:]...)
		}
		patterns := []Pattern{
			{},
			{Subject: "s1"},
			{Predicate: "p2"},
			{Object: "o3"},
			{Subject: "s1", Predicate: "p0"},
			{Predicate: "p1", Object: "o2"},
			{Subject: "s0", Object: "o0"},
			{Subject: "s2", Predicate: "p3", Object: "o7"},
		}
		for _, p := range patterns {
			want := map[Triple]bool{}
			for _, tr := range all {
				if p.Matches(tr) {
					want[tr] = true
				}
			}
			got := s.Query(p)
			if len(got) != len(want) {
				return false
			}
			for _, tr := range got {
				if !want[tr] {
					return false
				}
			}
		}
		return s.Len() == len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDeterministicOrderingContract checks the ordering contract of every
// materializing read: the same triples ingested in different orders (and
// therefore interned to different ids, falling differently across shards)
// must produce identical Query, Triples, Subjects, Objects and Predicates
// results.
func TestDeterministicOrderingContract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	triples := make([]Triple, 0, 500)
	for i := 0; i < 500; i++ {
		triples = append(triples, Triple{
			Subject:   fmt.Sprintf("s%d", rng.Intn(60)),
			Predicate: fmt.Sprintf("p%d", rng.Intn(5)),
			Object:    fmt.Sprintf("o%d", rng.Intn(40)),
		})
	}
	build := func(order []Triple) *Store {
		s := New()
		if _, err := s.AddBatch(order); err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref := build(triples)
	for round := 0; round < 5; round++ {
		shuffled := append([]Triple(nil), triples...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		s := build(shuffled)
		ts := s.Triples()
		if want := ref.Triples(); !reflect.DeepEqual(ts, want) {
			t.Fatalf("round %d: Triples differ across ingest orders", round)
		}
		if !sort.SliceIsSorted(ts, func(i, j int) bool { return ts[i].less(ts[j]) }) {
			t.Fatalf("round %d: Triples not sorted", round)
		}
		for _, p := range []Pattern{{}, {Predicate: "p0"}, {Subject: "s1"}, {Object: "o2"}, {Predicate: "p1", Object: "o3"}} {
			if got, want := s.Query(p), ref.Query(p); !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d: Query(%v) differs across ingest orders", round, p)
			}
		}
		if got, want := s.Subjects("p0", "o1"), ref.Subjects("p0", "o1"); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: Subjects differ", round)
		}
		if got, want := s.Objects("s1", "p0"), ref.Objects("s1", "p0"); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: Objects differ", round)
		}
		if got, want := s.Predicates(), ref.Predicates(); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: Predicates differ", round)
		}
		for _, ss := range [][]string{s.Predicates(), s.Subjects("p0", "o1"), s.Objects("s1", "p0")} {
			if !sort.StringsAreSorted(ss) {
				t.Fatalf("round %d: accessor result not sorted: %v", round, ss)
			}
		}
	}
}

// TestIDLevelHooks checks the id-level query surface the join evaluator in
// internal/query builds on: SymbolID resolution, QueryIDFunc enumeration and
// CountID against the string-level equivalents.
func TestIDLevelHooks(t *testing.T) {
	s := New()
	data := []Triple{
		{"a", "p", "x"}, {"a", "p", "y"}, {"a", "q", "x"},
		{"b", "p", "x"}, {"c", "q", "z"},
	}
	if _, err := s.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.SymbolID("nope"); ok {
		t.Error("SymbolID resolved a never-interned name")
	}
	res := s.NewResolver()
	encode := func(p Pattern) IDPattern {
		ip, ok := s.encodePattern(p)
		if !ok {
			t.Fatalf("encodePattern(%v) failed", p)
		}
		return ip
	}
	patterns := []Pattern{
		{}, {Subject: "a"}, {Predicate: "p"}, {Object: "x"},
		{Subject: "a", Predicate: "p"}, {Predicate: "p", Object: "x"},
		{Subject: "a", Object: "x"}, {Subject: "a", Predicate: "p", Object: "x"},
	}
	for _, p := range patterns {
		ip := encode(p)
		if got, want := s.CountID(ip), s.Count(p); got != want {
			t.Errorf("CountID(%v) = %d, Count = %d", p, got, want)
		}
		var got []Triple
		s.QueryIDFunc(ip, func(tr IDTriple) bool {
			got = append(got, Triple{res.Name(tr.S), res.Name(tr.P), res.Name(tr.O)})
			return true
		})
		sort.Slice(got, func(i, j int) bool { return got[i].less(got[j]) })
		if want := s.Query(p); !reflect.DeepEqual(got, want) {
			t.Errorf("QueryIDFunc(%v) = %v, want %v", p, got, want)
		}
	}
	// Early stop.
	n := 0
	s.QueryIDFunc(IDPattern{}, func(IDTriple) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stopped QueryIDFunc yielded %d triples, want 1", n)
	}
}
