package store

import (
	"fmt"
	"sync"
)

// This file is the recovery fast path: RestoreSorted rebuilds an empty store
// from the dictionary and triple set a durable-segment chain recovers, without
// going through the mutation path at all. The per-triple path (AddIDBatch →
// insertBatch) exists to be safe against concurrent readers and duplicate
// inserts; recovery needs neither — the store is private until restore
// returns and segment chains carry each triple exactly once, already sorted —
// so restore can build every index level by direct append: no per-triple lock
// acquisition, no dedup probing, no incremental spill-map growth. Boot cost
// becomes sequential segment I/O plus three bucket-and-append passes.

// RestoreSorted bulk-loads an empty store from a recovered dictionary and a
// sorted triple set. dict[i] becomes the name of SymbolID i (reproducing the
// interning order a segment chain recorded), and triples must be strictly
// ascending in (S, P, O) order — therefore duplicate-free — with every
// component id below len(dict). The slices are retained; callers must not
// mutate them afterwards.
//
// The store must be empty and journal-free: restore bypasses the mutation
// path, so nothing is journaled (recovery runs before the engine attaches
// its journal) and no locks are relied on for visibility. The caller owns
// the store exclusively until RestoreSorted returns; afterwards it is safe
// for concurrent use as usual.
func (s *Store) RestoreSorted(dict []string, triples []IDTriple) error {
	if s.Len() != 0 || s.DictLen() != 0 {
		return fmt.Errorf("store: RestoreSorted needs an empty store, not %d triples and %d dictionary entries", s.Len(), s.DictLen())
	}
	if s.getJournal() != nil {
		return fmt.Errorf("store: RestoreSorted bypasses the mutation path and would not journal; detach the journal first")
	}
	n := SymbolID(len(dict))
	for i, t := range triples {
		if t.S >= n || t.P >= n || t.O >= n {
			return fmt.Errorf("store: restore triple %d %v references an id outside the %d-name dictionary", i, t, n)
		}
		if i > 0 && !idTripleLess(triples[i-1], t) {
			return fmt.Errorf("store: restore triples not in strict (S, P, O) order at index %d: %v after %v", i, t, triples[i-1])
		}
	}
	// One map operation per name: insert unconditionally and let the final
	// length expose duplicates (a repeated name collapses two inserts into
	// one entry). Probing for the duplicate up front would double the string
	// hashing on the hot path to improve only the error message, so the
	// second pass that names the offender runs only after a failure.
	ids := make(map[string]uint32, len(dict))
	for i, name := range dict {
		if name == "" {
			return fmt.Errorf("store: restore dictionary id %d is the empty string", i)
		}
		ids[name] = uint32(i)
	}
	if len(ids) != len(dict) {
		seen := make(map[string]uint32, len(dict))
		for i, name := range dict {
			if prev, dup := seen[name]; dup {
				return fmt.Errorf("store: restore dictionary repeats %q as ids %d and %d", name, prev, i)
			}
			seen[name] = uint32(i)
		}
	}
	s.syms.mu.Lock()
	s.syms.ids = ids
	s.syms.names = dict
	s.syms.mu.Unlock()

	// Build the three permutation families concurrently, each family's
	// shards in parallel. Bucketing rotates every triple into the family's
	// own (lead, mid, trail) frame up front, so the sort and build loops
	// touch plain struct fields instead of calling accessor closures per
	// element — on a multi-million-triple restore those calls are the
	// difference between memory-bound and call-bound. The SPO family
	// receives the input ordering directly (bucketing is stable, so each
	// bucket stays (lead, mid)-sorted); POS and OSP buckets are re-sorted
	// inside the shard's goroutine.
	var wg sync.WaitGroup
	build := func(fam *indexFamily, rot rotation, presorted bool) {
		buckets := bucketByShard(triples, rot)
		for i := range fam {
			wg.Add(1)
			go func(sh *shard, bucket []IDTriple) {
				defer wg.Done()
				if !presorted {
					radixSortByLeadMid(bucket)
				}
				buildShardSorted(sh, bucket)
			}(&fam[i], buckets[i])
		}
	}
	build(&s.spo, rotSPO, true)
	build(&s.pos, rotPOS, false)
	build(&s.osp, rotOSP, false)
	wg.Wait()
	s.size.Store(int64(len(triples)))
	return nil
}

// idTripleLess orders id triples by (S, P, O).
func idTripleLess(a, b IDTriple) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	if a.P != b.P {
		return a.P < b.P
	}
	return a.O < b.O
}

// rotation names the component permutation a family's buckets are built in:
// which original component becomes the (lead, mid, trail) = (S, P, O) frame.
type rotation int

const (
	rotSPO rotation = iota // identity: lead S, mid P, trail O
	rotPOS                 // lead P, mid O, trail S
	rotOSP                 // lead O, mid S, trail P
)

// bucketByShard splits ts into numShards slices by the shard of the permuted
// leading component, rotating every triple into the family's frame on the way
// in and preserving relative order. Two counted passes, so every bucket is
// allocated at its exact final size. The rotation is dispatched once per pass
// rather than per element — a closure call per triple here costs more than
// the copy itself.
func bucketByShard(ts []IDTriple, rot rotation) [numShards][]IDTriple {
	var counts [numShards]int
	switch rot {
	case rotSPO:
		for _, t := range ts {
			counts[shardOf(t.S)]++
		}
	case rotPOS:
		for _, t := range ts {
			counts[shardOf(t.P)]++
		}
	case rotOSP:
		for _, t := range ts {
			counts[shardOf(t.O)]++
		}
	}
	var buckets [numShards][]IDTriple
	for i := range buckets {
		buckets[i] = make([]IDTriple, 0, counts[i])
	}
	switch rot {
	case rotSPO:
		for _, t := range ts {
			i := shardOf(t.S)
			buckets[i] = append(buckets[i], t)
		}
	case rotPOS:
		for _, t := range ts {
			i := shardOf(t.P)
			buckets[i] = append(buckets[i], IDTriple{S: t.P, P: t.O, O: t.S})
		}
	case rotOSP:
		for _, t := range ts {
			i := shardOf(t.O)
			buckets[i] = append(buckets[i], IDTriple{S: t.O, P: t.S, O: t.P})
		}
	}
	return buckets
}

// radixSortByLeadMid sorts a permuted bucket by (lead, mid) = (S, P) — an
// LSD byte-radix sort, stable, so runs equal in (lead, mid) keep their input
// order and the trailing sets of a pre-sorted input come out sorted too.
// Comparison sorting here is the restore path's biggest CPU sink (a
// comparator closure per decision); counting passes replace it with O(n) per
// byte, and passes whose byte is constant across the bucket (the common case
// for the high bytes of 32-bit ids) are skipped entirely.
func radixSortByLeadMid(ts []IDTriple) {
	n := len(ts)
	if n < 2 {
		return
	}
	src, dst := ts, make([]IDTriple, n)
	for pass := 0; pass < 8; pass++ {
		shift := (pass % 4) * 8
		fromLead := pass >= 4
		digit := func(t IDTriple) byte {
			if fromLead {
				return byte(t.S >> shift)
			}
			return byte(t.P >> shift)
		}
		var counts [256]int
		for _, t := range src {
			counts[digit(t)]++
		}
		if counts[digit(src[0])] == n {
			continue // every key shares this byte; the pass is a no-op
		}
		sum := 0
		for d := range counts {
			c := counts[d]
			counts[d] = sum
			sum += c
		}
		if fromLead {
			for _, t := range src {
				d := byte(t.S >> shift)
				dst[counts[d]] = t
				counts[d]++
			}
		} else {
			for _, t := range src {
				d := byte(t.P >> shift)
				dst[counts[d]] = t
				counts[d]++
			}
		}
		src, dst = dst, src
	}
	if &src[0] != &ts[0] {
		copy(ts, src)
	}
}

// buildShardSorted populates one empty shard from its permuted bucket, which
// is sorted by (lead, mid) = (S, P) with the trail in O. Runs sharing a lead
// become one leadEntry, runs sharing (lead, mid) one trailing set, and every
// level is carved out of three arena allocations sized by a counting pass —
// for a family like OSP, whose lead is near-unique, per-entry allocation
// would mean millions of tiny objects for the GC to trace. Each sub-slice is
// capped at its run boundary (arena[i:j:j]), so a later append on a live
// entry reallocates instead of clobbering its neighbor. Spill indexes are
// built once, after each level's final size is known, instead of
// incrementally as the mutation path must.
func buildShardSorted(sh *shard, bucket []IDTriple) {
	// The shard is not shared until RestoreSorted returns, but take the
	// lock anyway: it is one acquisition per shard and keeps the builder
	// honest under the race detector if a caller ever leaks the store early.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	leads, pairs := 0, 0
	var prevL, prevM uint32
	for i, t := range bucket {
		if i == 0 || t.S != prevL {
			leads++
			pairs++
		} else if t.P != prevM {
			pairs++
		}
		prevL, prevM = t.S, t.P
	}
	leadArena := make([]leadEntry, leads)
	midArena := make([]midTrail, pairs)
	elemArena := make([]uint32, len(bucket))
	sh.m = make(map[uint32]*leadEntry, leads)
	li, mi := 0, 0
	for i := 0; i < len(bucket); {
		l := bucket[i].S
		j := i
		for j < len(bucket) && bucket[j].S == l {
			j++
		}
		e := &leadArena[li]
		li++
		m0 := mi
		for k := i; k < j; {
			m := bucket[k].P
			k2 := k
			// The run scan already touches each triple; peel the trail
			// column into the element arena on the way past rather than in
			// a separate full pass over the bucket.
			for k2 < j && bucket[k2].P == m {
				elemArena[k2] = bucket[k2].O
				k2++
			}
			set := idSet{elems: elemArena[k:k2:k2]}
			if k2-k > setSpill {
				set.idx = make(map[uint32]int32, k2-k)
				for p, v := range set.elems {
					set.idx[v] = int32(p)
				}
			}
			midArena[mi] = midTrail{mid: m, trail: set}
			mi++
			k = k2
		}
		e.entries = midArena[m0:mi:mi]
		if mi-m0 > midSpill {
			e.idx = make(map[uint32]int32, mi-m0)
			for p := range e.entries {
				e.idx[e.entries[p].mid] = int32(p)
			}
		}
		sh.m[l] = e
		i = j
	}
}
