package store

import "fmt"

// RetrievalResult is the standard precision/recall accounting of one query:
// how many items were retrieved, how many were relevant, and how many of the
// retrieved were relevant.
type RetrievalResult struct {
	Retrieved    int
	Relevant     int
	TruePositive int
}

// Evaluate compares a retrieved set against a relevant (ground truth) set.
func Evaluate(retrieved, relevant []string) RetrievalResult {
	rel := make(map[string]bool, len(relevant))
	for _, r := range relevant {
		rel[r] = true
	}
	res := RetrievalResult{Retrieved: len(retrieved), Relevant: len(relevant)}
	for _, r := range retrieved {
		if rel[r] {
			res.TruePositive++
		}
	}
	return res
}

// Precision is the fraction of retrieved items that are relevant; 1 when
// nothing was retrieved (no false positives were asserted).
func (r RetrievalResult) Precision() float64 {
	if r.Retrieved == 0 {
		return 1
	}
	return float64(r.TruePositive) / float64(r.Retrieved)
}

// Recall is the fraction of relevant items that were retrieved; 1 when
// nothing was relevant.
func (r RetrievalResult) Recall() float64 {
	if r.Relevant == 0 {
		return 1
	}
	return float64(r.TruePositive) / float64(r.Relevant)
}

// F1 is the harmonic mean of precision and recall; 0 when both are 0.
func (r RetrievalResult) F1() float64 {
	p, rec := r.Precision(), r.Recall()
	if p+rec == 0 {
		return 0
	}
	return 2 * p * rec / (p + rec)
}

// String renders the result.
func (r RetrievalResult) String() string {
	return fmt.Sprintf("retrieved=%d relevant=%d tp=%d P=%.3f R=%.3f F1=%.3f",
		r.Retrieved, r.Relevant, r.TruePositive, r.Precision(), r.Recall(), r.F1())
}

// Aggregate is the macro-average of several retrieval results: the mean
// precision, recall and F1 over queries.
type Aggregate struct {
	Queries   int
	Precision float64
	Recall    float64
	F1        float64
}

// Macro averages the per-query metrics; an empty input yields zeros.
func Macro(results []RetrievalResult) Aggregate {
	if len(results) == 0 {
		return Aggregate{}
	}
	agg := Aggregate{Queries: len(results)}
	for _, r := range results {
		agg.Precision += r.Precision()
		agg.Recall += r.Recall()
		agg.F1 += r.F1()
	}
	n := float64(len(results))
	agg.Precision /= n
	agg.Recall /= n
	agg.F1 /= n
	return agg
}

// String renders the aggregate.
func (a Aggregate) String() string {
	return fmt.Sprintf("queries=%d P=%.3f R=%.3f F1=%.3f", a.Queries, a.Precision, a.Recall, a.F1)
}
