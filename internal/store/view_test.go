package store

import (
	"bytes"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func viewFixture(t *testing.T) (*Store, *Store, *View) {
	t.Helper()
	base := New()
	base.MustAdd(Triple{"a", "p", "b"})
	base.MustAdd(Triple{"a", "type", "car"})
	overlay := base.NewOverlay()
	if !base.SharesDictionary(overlay) {
		t.Fatal("overlay does not share the dictionary")
	}
	if _, err := overlay.Add(Triple{"a", "type", "vehicle"}); err != nil {
		t.Fatal(err)
	}
	v, err := NewView(base, overlay)
	if err != nil {
		t.Fatal(err)
	}
	return base, overlay, v
}

func TestViewUnionAndProvenance(t *testing.T) {
	base, overlay, v := viewFixture(t)
	if v.Len() != 3 {
		t.Errorf("view Len = %d, want 3", v.Len())
	}
	want := []Triple{{"a", "p", "b"}, {"a", "type", "car"}, {"a", "type", "vehicle"}}
	if got := v.Triples(); !reflect.DeepEqual(got, want) {
		t.Errorf("Triples = %v, want %v", got, want)
	}
	if got := v.Query(Pattern{Predicate: "type"}); len(got) != 2 {
		t.Errorf("Query(type) = %v, want 2 triples", got)
	}
	if prov, ok := v.Provenance(Triple{"a", "type", "car"}); !ok || prov != ProvAsserted {
		t.Errorf("asserted triple: %v, %v", prov, ok)
	}
	if prov, ok := v.Provenance(Triple{"a", "type", "vehicle"}); !ok || prov != ProvInferred {
		t.Errorf("inferred triple: %v, %v", prov, ok)
	}
	if _, ok := v.Provenance(Triple{"z", "z", "z"}); ok {
		t.Error("absent triple reported present")
	}
	// A triple in both members is visible once and reads as asserted.
	if _, err := overlay.Add(Triple{"a", "p", "b"}); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 {
		t.Errorf("after shadowing, Len = %d, want still 3", v.Len())
	}
	if got := v.Triples(); !reflect.DeepEqual(got, want) {
		t.Errorf("after shadowing, Triples = %v, want %v", got, want)
	}
	if prov, _ := v.Provenance(Triple{"a", "p", "b"}); prov != ProvAsserted {
		t.Error("shadowed triple should read as asserted")
	}
	ip, _ := base.encodePattern(Pattern{Subject: "a"})
	if n := v.CountID(ip); n != 3 {
		t.Errorf("CountID(a ? ?) = %d, want 3", n)
	}
	_ = overlay
}

func TestViewForEachSubject(t *testing.T) {
	base, overlay, v := viewFixture(t)
	overlayOnly := Triple{"b", "type", "car"}
	if _, err := overlay.Add(overlayOnly); err != nil {
		t.Fatal(err)
	}
	// Duplicate of an asserted triple must not double-report its subject.
	if _, err := overlay.Add(Triple{"a", "type", "car"}); err != nil {
		t.Fatal(err)
	}
	var got []string
	v.ForEachSubject("type", "car", func(s string) bool {
		got = append(got, s)
		return true
	})
	sort.Strings(got)
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("ForEachSubject = %v, want [a b]", got)
	}
	if subj := v.Subjects("type", "car"); !reflect.DeepEqual(subj, []string{"a", "b"}) {
		t.Errorf("Subjects = %v, want [a b]", subj)
	}
	_ = base
}

func TestViewSnapshots(t *testing.T) {
	_, _, v := viewFixture(t)
	var plain bytes.Buffer
	if n, err := v.Snapshot(&plain); err != nil || n != 3 {
		t.Fatalf("Snapshot = %d, %v", n, err)
	}
	// The plain form restores into an ordinary store.
	s2 := New()
	if n, err := Restore(s2, strings.NewReader(plain.String())); err != nil || n != 3 {
		t.Fatalf("Restore = %d, %v", n, err)
	}
	var tagged bytes.Buffer
	if n, err := v.SnapshotProvenance(&tagged); err != nil || n != 3 {
		t.Fatalf("SnapshotProvenance = %d, %v", n, err)
	}
	if !strings.Contains(tagged.String(), `"Provenance":"inferred"`) ||
		!strings.Contains(tagged.String(), `"Provenance":"asserted"`) {
		t.Errorf("tagged snapshot missing provenance tags:\n%s", tagged.String())
	}
}

func TestDisjointViewFastPaths(t *testing.T) {
	base := New()
	base.MustAdd(Triple{"a", "p", "b"})
	base.MustAdd(Triple{"a", "type", "car"})
	overlay := base.NewOverlay()
	if _, err := overlay.Add(Triple{"a", "type", "vehicle"}); err != nil {
		t.Fatal(err)
	}
	v, err := NewDisjointView(base, overlay)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 {
		t.Errorf("Len = %d, want 3", v.Len())
	}
	ip, _ := base.encodePattern(Pattern{Predicate: "type"})
	if n := v.CountID(ip); n != 2 {
		t.Errorf("CountID(? type ?) = %d, want 2", n)
	}
	want := []Triple{{"a", "p", "b"}, {"a", "type", "car"}, {"a", "type", "vehicle"}}
	if got := v.Triples(); !reflect.DeepEqual(got, want) {
		t.Errorf("Triples = %v, want %v", got, want)
	}
	if subj := v.Subjects("type", "vehicle"); !reflect.DeepEqual(subj, []string{"a"}) {
		t.Errorf("Subjects = %v, want [a]", subj)
	}
	if _, err := NewDisjointView(New(), New()); err == nil {
		t.Error("NewDisjointView accepted stores with separate dictionaries")
	}
}

func TestViewRequiresSharedDictionary(t *testing.T) {
	if _, err := NewView(New(), New()); err == nil {
		t.Error("NewView accepted stores with separate dictionaries")
	}
	if _, err := NewView(nil, New()); err == nil {
		t.Error("NewView accepted a nil base")
	}
}

func TestInternAndIDWrites(t *testing.T) {
	s := New()
	id, err := s.Intern("fresh")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s.SymbolID("fresh"); !ok || got != id {
		t.Errorf("SymbolID(fresh) = %d, %v; want %d, true", got, ok, id)
	}
	if _, err := s.Intern(""); err == nil {
		t.Error("Intern accepted the empty string")
	}
	// Interning alone adds no triple.
	if s.Len() != 0 {
		t.Errorf("Len after Intern = %d, want 0", s.Len())
	}
	a, _ := s.Intern("a")
	p, _ := s.Intern("p")
	b, _ := s.Intern("b")
	idt := IDTriple{S: a, P: p, O: b}
	if added, err := s.AddID(idt); err != nil || !added {
		t.Fatalf("AddID = %v, %v", added, err)
	}
	if added, err := s.AddID(idt); err != nil || added {
		t.Fatalf("second AddID = %v, %v; want false, nil", added, err)
	}
	if !s.Contains(Triple{"a", "p", "b"}) || !s.ContainsID(idt) {
		t.Error("AddID triple not visible")
	}
	if _, err := s.AddID(IDTriple{S: 9999, P: p, O: b}); err == nil {
		t.Error("AddID accepted an unminted id")
	}
	if !s.RemoveID(idt) {
		t.Error("RemoveID missed the triple")
	}
	if s.RemoveID(idt) {
		t.Error("second RemoveID reported success")
	}
	if s.RemoveID(IDTriple{S: 9999, P: 9999, O: 9999}) {
		t.Error("RemoveID of unminted ids reported success")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
}

func TestOntologyIndexRejectsSubsumptionCycles(t *testing.T) {
	tb := vehiclesTBox(t)
	// A subsumption test that relates every pair both ways: one big cycle.
	_, err := NewOntologyIndexWith(tb, func(sub, super string) (bool, error) {
		return true, nil
	})
	if err == nil {
		t.Fatal("cyclic subsumption accepted")
	}
	var cycErr *SubsumptionCycleError
	if !errors.As(err, &cycErr) {
		t.Fatalf("error %v (%T) is not a *SubsumptionCycleError", err, err)
	}
	if len(cycErr.Cycles) != 1 || len(cycErr.Cycles[0]) != 4 {
		t.Errorf("Cycles = %v, want one 4-class component", cycErr.Cycles)
	}
	if msg := cycErr.Error(); !strings.Contains(msg, "cycle") {
		t.Errorf("Error() = %q, want a mention of cycles", msg)
	}
	// The legitimate acyclic hierarchy still classifies.
	if _, err := NewOntologyIndex(tb); err != nil {
		t.Errorf("acyclic TBox rejected: %v", err)
	}
}
