package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := New()
	s.MustAdd(Triple{"a", "type", "car"})
	s.MustAdd(Triple{"b", "type", "dog"})
	s.MustAdd(Triple{"a", "color", "red"})

	var buf bytes.Buffer
	n, err := s.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("Snapshot wrote %d triples, want 3", n)
	}

	restored := New()
	added, err := Restore(restored, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if added != 3 || restored.Len() != 3 {
		t.Errorf("Restore added %d, Len %d; want 3 and 3", added, restored.Len())
	}
	for _, tr := range s.Query(Pattern{}) {
		if !restored.Contains(tr) {
			t.Errorf("restored store is missing %v", tr)
		}
	}
}

func TestRestoreIntoNonEmptyStoreIgnoresDuplicates(t *testing.T) {
	s := New()
	s.MustAdd(Triple{"a", "type", "car"})
	var buf bytes.Buffer
	if _, err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	added, err := Restore(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || s.Len() != 1 {
		t.Errorf("restoring a snapshot into its own store added %d (Len %d), want 0 (1)", added, s.Len())
	}
}

func TestRestoreMalformedInput(t *testing.T) {
	s := New()
	if _, err := Restore(s, strings.NewReader("{not json}\n")); err == nil {
		t.Error("Restore accepted malformed JSON")
	}
	// A structurally valid but semantically invalid triple (empty component).
	if _, err := Restore(New(), strings.NewReader(`{"Subject":"","Predicate":"p","Object":"o"}`)); err == nil {
		t.Error("Restore accepted a triple with an empty component")
	}
	// Valid prefix before the malformed entry is preserved.
	partial := New()
	added, err := Restore(partial, strings.NewReader(`{"Subject":"a","Predicate":"p","Object":"o"}`+"\n{bad"))
	if err == nil {
		t.Error("Restore should report the malformed tail")
	}
	if added != 1 || !partial.Contains(Triple{"a", "p", "o"}) {
		t.Errorf("valid prefix should be preserved: added=%d", added)
	}
}

// TestSnapshotRestoreProperty checks the round trip over random stores.
func TestSnapshotRestoreProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		for i := 0; i < 40; i++ {
			s.MustAdd(Triple{
				Subject:   fmt.Sprintf("s%d", rng.Intn(10)),
				Predicate: fmt.Sprintf("p%d", rng.Intn(4)),
				Object:    fmt.Sprintf("o%d", rng.Intn(10)),
			})
		}
		var buf bytes.Buffer
		if _, err := s.Snapshot(&buf); err != nil {
			return false
		}
		restored := New()
		if _, err := Restore(restored, &buf); err != nil {
			return false
		}
		if restored.Len() != s.Len() {
			return false
		}
		for _, tr := range s.Query(Pattern{}) {
			if !restored.Contains(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotByteStabilityAtScale is the satellite check for the canonical
// export order: at 10⁵ triples, a snapshot, its restore into a fresh store,
// and a snapshot of a store ingested in a completely different order must
// all be byte-identical, and the restored store must hold exactly the
// original triples.
func TestSnapshotByteStabilityAtScale(t *testing.T) {
	const n = 100_000
	triples := make([]Triple, n)
	for i := range triples {
		triples[i] = Triple{
			Subject:   fmt.Sprintf("inst-%d", i),
			Predicate: TypePredicate,
			Object:    fmt.Sprintf("class-%d", i%317),
		}
	}
	s := New()
	if _, err := s.AddBatch(triples); err != nil {
		t.Fatal(err)
	}

	var first bytes.Buffer
	if _, err := s.Snapshot(&first); err != nil {
		t.Fatal(err)
	}

	restored := New()
	added, err := Restore(restored, bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if added != n || restored.Len() != n {
		t.Fatalf("restore added %d triples into a store of %d, want %d", added, restored.Len(), n)
	}
	var second bytes.Buffer
	if _, err := restored.Snapshot(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("snapshot of the restored store differs byte-for-byte from the original")
	}

	// A third store, ingested in reverse order so every symbol gets a
	// different id and lands on different shards.
	reversed := New()
	for i := n - 1; i >= 0; i-- {
		if _, err := reversed.Add(triples[i]); err != nil {
			t.Fatal(err)
		}
	}
	var third bytes.Buffer
	if _, err := reversed.Snapshot(&third); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), third.Bytes()) {
		t.Fatal("snapshots differ across ingest orders")
	}
}
