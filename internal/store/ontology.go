package store

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dl"
	"repro/internal/worlds"
)

// TypePredicate is the predicate under which instances are annotated with
// their class, the way "rdf:type" is used on the semantic web the paper's §4
// discusses.
const TypePredicate = "type"

// OntologyIndex is a precomputed subsumption index over the defined names of
// a TBox, used to expand class-based queries: asking for "roadvehicle" also
// retrieves things annotated "car" or "pickup". It is the ontology-mediated
// query answering whose value experiment E5 puts to the test.
type OntologyIndex struct {
	classes   []string
	subsumees map[string][]string // class -> classes subsumed by it (including itself)
	subsumers map[string][]string // class -> classes subsuming it (including itself)
}

// NewOntologyIndex classifies the TBox with the structural subsumption
// procedure (complete for the conjunctive fragment the synthetic ontonomies
// live in) and builds the index. Use NewOntologyIndexWith to supply a
// different subsumption test, e.g. the tableau reasoner.
func NewOntologyIndex(t *dl.TBox) (*OntologyIndex, error) {
	r := dl.NewStructuralReasoner(t)
	return NewOntologyIndexWith(t, r.Subsumes)
}

// SubsumptionCycleError is the typed error NewOntologyIndexWith returns when
// the subsumption test relates distinct defined names cyclically (A ⊑ B and
// B ⊑ A with A ≠ B). A cyclic hierarchy collapses the classes of each cycle
// into one — expansion through it retrieves every member's instances for any
// member — and, more importantly, the forward-chaining reasoner in
// repro/internal/reason refuses such hierarchies up front rather than
// materializing the collapsed closure silently. Each cycle lists the names of
// one strongly connected component, sorted.
type SubsumptionCycleError struct {
	Cycles [][]string
}

// Error renders the cycles.
func (e *SubsumptionCycleError) Error() string {
	parts := make([]string, len(e.Cycles))
	for i, c := range e.Cycles {
		parts[i] = strings.Join(c, " ⊑ ") + " ⊑ " + c[0]
	}
	return fmt.Sprintf("store: subsumption hierarchy contains %d cycle(s) among distinct classes: %s",
		len(e.Cycles), strings.Join(parts, "; "))
}

// NewOntologyIndexWith builds the index using the supplied subsumption test
// over the TBox's defined names. Hierarchies in which distinct names subsume
// each other are rejected with a *SubsumptionCycleError (detected with the
// strongly-connected-component machinery of repro/internal/worlds, the same
// logic behind the paper's §2 circularity analysis): an index silently built
// over a cycle would equate the cycle's classes, and downstream consumers —
// query expansion, the materialization engine — are entitled to an acyclic
// subsumption order.
func NewOntologyIndexWith(t *dl.TBox, subsumes func(sub, super string) (bool, error)) (*OntologyIndex, error) {
	names := t.DefinedNames()
	sort.Strings(names)
	oi := &OntologyIndex{
		classes:   names,
		subsumees: make(map[string][]string, len(names)),
		subsumers: make(map[string][]string, len(names)),
	}
	g := worlds.NewDependencyGraph()
	for _, super := range names {
		for _, sub := range names {
			ok, err := subsumes(sub, super)
			if err != nil {
				return nil, fmt.Errorf("store: classifying %s ⊑ %s: %w", sub, super, err)
			}
			if ok {
				oi.subsumees[super] = append(oi.subsumees[super], sub)
				oi.subsumers[sub] = append(oi.subsumers[sub], super)
				if sub != super {
					g.AddDependency(sub, super)
				}
			}
		}
	}
	if cycles := g.Cycles(); len(cycles) > 0 {
		return nil, &SubsumptionCycleError{Cycles: cycles}
	}
	return oi, nil
}

// Classes returns the classes covered by the index, sorted.
func (oi *OntologyIndex) Classes() []string {
	return append([]string(nil), oi.classes...)
}

// Subsumees returns the classes subsumed by the given class (itself
// included), sorted. Unknown classes yield just themselves, so expansion
// degrades gracefully to the unexpanded query.
func (oi *OntologyIndex) Subsumees(class string) []string {
	subs, ok := oi.subsumees[class]
	if !ok {
		return []string{class}
	}
	out := append([]string(nil), subs...)
	sort.Strings(out)
	return out
}

// Subsumers returns the classes subsuming the given class (itself included),
// sorted.
func (oi *OntologyIndex) Subsumers(class string) []string {
	sups, ok := oi.subsumers[class]
	if !ok {
		return []string{class}
	}
	out := append([]string(nil), sups...)
	sort.Strings(out)
	return out
}

// Class retrieval lives in the query layer: query.Instances(src, oi, class)
// is the one-pattern BGP {?x type class} projected to ?x, expanded through
// the index's subsumees when oi is non-nil. The store package only provides
// the index (this file) and the raw reads the query layer is built on; the
// old InstancesOf/InstancesOfExpanded/Annotate helpers that duplicated that
// retrieval here were deprecated in favor of the query layer and have been
// removed.
