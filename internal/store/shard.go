package store

import "sync"

// The engine keeps the three canonical permutation indexes (SPO, POS, OSP)
// as families of shards. Each family is sharded by a hash of its leading
// component's id, and each shard carries its own RWMutex, so writers touching
// different subjects (or predicates, or objects) proceed in parallel instead
// of serializing behind one store-wide lock.
//
// Inside a shard the two inner levels are adaptive rather than nested maps:
// a lead's middle components live in a small linear-scanned slice that gains
// a map index only past midSpill entries, and each trailing set is a small
// unsorted uint32 slice that spills to a map past setSpill entries. Real
// triple data is extremely skewed — most (subject, predicate) pairs have a
// handful of objects while a few (predicate, object) pairs have thousands of
// subjects — so almost all inserts touch only small pointer-free slices,
// which cost a fraction of a map insert and are invisible to the garbage
// collector.

// numShards is the shard count per index family. A power of two so the shard
// selector is a mask; 16 is enough to spread institution-scale ingest across
// cores without bloating small stores.
const numShards = 16

// midSpill is how many middle components a lead holds before linear scans
// are replaced by a map index; setSpill is how many trailing ids a set holds
// before spilling from a slice to a map.
const (
	midSpill = 8
	setSpill = 32
)

// encTriple is a dictionary-encoded triple: three symbol-table ids.
type encTriple struct {
	s, p, o uint32
}

// shardOf maps a leading-component id to its shard. Ids are dense sequential
// integers, so a Fibonacci mix spreads consecutive ids across shards.
func shardOf(id uint32) uint32 {
	return (id * 2654435761) >> 16 & (numShards - 1)
}

// idSet is an adaptive set of ids. Its members always live in the unsorted
// elems slice — enumeration is a contiguous array walk whatever the size,
// which is what the batched scan and probe paths stream from — and past
// setSpill members a value→position map is added so membership tests and
// swap-deletes stay O(1) instead of going linear. The slice-plus-index
// layout costs a little more memory than a bare map once spilled, but every
// read path (scans, probes, batch fills) iterates elems at cache speed
// rather than walking map buckets.
type idSet struct {
	elems []uint32
	idx   map[uint32]int32 // value -> position in elems; nil while small
}

func (s *idSet) add(c uint32) bool {
	if s.idx != nil {
		if _, ok := s.idx[c]; ok {
			return false
		}
		s.idx[c] = int32(len(s.elems))
		s.elems = append(s.elems, c)
		return true
	}
	for _, v := range s.elems {
		if v == c {
			return false
		}
	}
	s.elems = append(s.elems, c)
	if len(s.elems) > setSpill {
		s.idx = make(map[uint32]int32, 2*setSpill)
		for i, v := range s.elems {
			s.idx[v] = int32(i)
		}
	}
	return true
}

func (s *idSet) remove(c uint32) bool {
	if s.idx != nil {
		pos, ok := s.idx[c]
		if !ok {
			return false
		}
		last := len(s.elems) - 1
		moved := s.elems[last]
		s.elems[pos] = moved
		s.elems = s.elems[:last]
		if int(pos) != last {
			s.idx[moved] = pos
		}
		delete(s.idx, c)
		return true
	}
	for i, v := range s.elems {
		if v == c {
			last := len(s.elems) - 1
			s.elems[i] = s.elems[last]
			s.elems = s.elems[:last]
			return true
		}
	}
	return false
}

func (s *idSet) contains(c uint32) bool {
	if s.idx != nil {
		_, ok := s.idx[c]
		return ok
	}
	for _, v := range s.elems {
		if v == c {
			return true
		}
	}
	return false
}

func (s *idSet) len() int {
	return len(s.elems)
}

// appendResolved appends every id's resolved name to out. It is the
// materializing twin of forEach, kept here so the set layout is walked in
// one place only.
func (s *idSet) appendResolved(res resolver, out []string) []string {
	for _, v := range s.elems {
		out = append(out, res.name(v))
	}
	return out
}

// forEach streams the set, reporting false when fn stopped the enumeration.
func (s *idSet) forEach(fn func(uint32) bool) bool {
	for _, v := range s.elems {
		if !fn(v) {
			return false
		}
	}
	return true
}

// midTrail couples one middle component with its trailing set.
type midTrail struct {
	mid   uint32
	trail idSet
}

// leadEntry is everything indexed under one leading component: the list of
// (middle, trailing-set) pairs, linear-scanned while short, map-indexed once
// it outgrows midSpill.
type leadEntry struct {
	entries []midTrail
	idx     map[uint32]int32 // mid -> position in entries; nil while short
}

// find returns the trailing set of mid, or nil. The pointer is valid until
// the next mutation of the entry.
func (e *leadEntry) find(mid uint32) *idSet {
	if e.idx != nil {
		if i, ok := e.idx[mid]; ok {
			return &e.entries[i].trail
		}
		return nil
	}
	for i := range e.entries {
		if e.entries[i].mid == mid {
			return &e.entries[i].trail
		}
	}
	return nil
}

// findOrCreate returns mid's trailing set, appending an empty one (and
// building or maintaining the spill index) on first sight.
func (e *leadEntry) findOrCreate(mid uint32) *idSet {
	if set := e.find(mid); set != nil {
		return set
	}
	e.entries = append(e.entries, midTrail{mid: mid})
	i := len(e.entries) - 1
	if e.idx != nil {
		e.idx[mid] = int32(i)
	} else if len(e.entries) > midSpill {
		e.idx = make(map[uint32]int32, 2*midSpill)
		for j := range e.entries {
			e.idx[e.entries[j].mid] = int32(j)
		}
	}
	return &e.entries[i].trail
}

// removeMid drops mid's (emptied) trailing set by swap-delete, keeping the
// spill index consistent.
func (e *leadEntry) removeMid(mid uint32) {
	pos := -1
	if e.idx != nil {
		i, ok := e.idx[mid]
		if !ok {
			return
		}
		pos = int(i)
	} else {
		for i := range e.entries {
			if e.entries[i].mid == mid {
				pos = i
				break
			}
		}
		if pos < 0 {
			return
		}
	}
	last := len(e.entries) - 1
	e.entries[pos] = e.entries[last]
	e.entries[last] = midTrail{}
	e.entries = e.entries[:last]
	if e.idx != nil {
		delete(e.idx, mid)
		if pos < last {
			e.idx[e.entries[pos].mid] = int32(pos)
		}
	}
}

// forEach streams every (mid, trailing-set) pair, reporting false when fn
// stopped the enumeration.
func (e *leadEntry) forEach(fn func(mid uint32, trail *idSet) bool) bool {
	for i := range e.entries {
		if !fn(e.entries[i].mid, &e.entries[i].trail) {
			return false
		}
	}
	return true
}

// shard is one lock-protected slice of a permutation index, mapping leading
// components to their leadEntry.
type shard struct {
	mu sync.RWMutex
	m  map[uint32]*leadEntry
}

// reserve sizes the lead map for about n upcoming leads; a no-op once the
// map exists. Called by the batch path so the first big ingest does not grow
// the map incrementally.
func (sh *shard) reserve(n int) {
	if sh.m == nil {
		sh.m = make(map[uint32]*leadEntry, n)
	}
}

// insertLocked adds (a, b, c), reporting whether it was absent. Callers hold mu.
func (sh *shard) insertLocked(a, b, c uint32) bool {
	e := sh.m[a]
	if e == nil {
		if sh.m == nil {
			sh.m = make(map[uint32]*leadEntry)
		}
		e = &leadEntry{}
		sh.m[a] = e
	}
	return e.findOrCreate(b).add(c)
}

// removeLocked deletes (a, b, c), reporting whether it was present, and
// prunes emptied levels. Callers hold mu.
func (sh *shard) removeLocked(a, b, c uint32) bool {
	e := sh.m[a]
	if e == nil {
		return false
	}
	set := e.find(b)
	if set == nil || !set.remove(c) {
		return false
	}
	if set.len() == 0 {
		e.removeMid(b)
		if len(e.entries) == 0 {
			delete(sh.m, a)
		}
	}
	return true
}

// containsLocked reports whether (a, b, c) is present. Callers hold mu (read
// or write).
func (sh *shard) containsLocked(a, b, c uint32) bool {
	e := sh.m[a]
	if e == nil {
		return false
	}
	set := e.find(b)
	return set != nil && set.contains(c)
}

// indexFamily is one permutation index: numShards shards addressed by the
// leading component.
type indexFamily [numShards]shard

func (f *indexFamily) shard(lead uint32) *shard {
	return &f[shardOf(lead)]
}

// tripleLocker acquires the three shard locks a single-triple write needs —
// the subject's SPO shard, the predicate's POS shard and the object's OSP
// shard — always in family order (SPO, POS, OSP), so concurrent writers
// cannot deadlock and every Add/Remove updates all three indexes atomically
// with respect to other single-triple writers.
type tripleLocker struct {
	spo, pos, osp *shard
}

func (s *Store) lockTriple(e encTriple) tripleLocker {
	l := tripleLocker{
		spo: s.spo.shard(e.s),
		pos: s.pos.shard(e.p),
		osp: s.osp.shard(e.o),
	}
	l.spo.mu.Lock() //ontolint:ignore lockcheck held across return by design; the caller releases all three via tripleLocker.unlock
	l.pos.mu.Lock() //ontolint:ignore lockcheck fixed family order (SPO, POS, OSP) makes the nested acquisition deadlock-free
	l.osp.mu.Lock() //ontolint:ignore lockcheck fixed family order (SPO, POS, OSP) makes the nested acquisition deadlock-free
	return l
}

func (l tripleLocker) unlock() {
	l.osp.mu.Unlock()
	l.pos.mu.Unlock()
	l.spo.mu.Unlock()
}
