package store

import "sync"

// This file is the store's batched scan-and-probe surface: the hooks the
// vectorized operator runtime in repro/internal/query/exec pulls triples
// through. Where ids.go answers one pattern at a time through a callback,
// these hooks move triples in batches — a ScanPart is a resumable cursor that
// fills caller-provided slices under one shard read-lock per refill, ScanParts
// splits a pattern's matches into independently scannable parts so leaf scans
// can run shard-parallel and merge, and QueryIDBatch answers a whole batch of
// same-shape probes while visiting each index shard at most once. The
// amortization is the point: a tuple-at-a-time join pays a lock round trip and
// a callback per probe, a batched one pays them per thousand triples.

// Index families a ScanPart can walk, in the lead/mid/trail vocabulary of
// shard.go: famSPO has subjects leading, famPOS predicates, famOSP objects.
const (
	famSPO = iota
	famPOS
	famOSP
)

// tripleOf reassembles an IDTriple from a family's (lead, mid, trail)
// coordinates.
func tripleOf(fam uint8, lead, mid, trail uint32) IDTriple {
	switch fam {
	case famPOS:
		return IDTriple{S: trail, P: lead, O: mid}
	case famOSP:
		return IDTriple{S: mid, P: trail, O: lead}
	default:
		return IDTriple{S: lead, P: mid, O: trail}
	}
}

// ScanPart is a resumable cursor over one independently scannable slice of
// the triples matching a pattern. Obtain parts with ScanParts (or a single
// whole-pattern cursor with ScanIDBatch) and drain each by calling NextBatch
// until it reports done. Distinct parts of one ScanParts call cover disjoint
// triples and may be drained concurrently from different goroutines — each
// refill takes its shard's read-lock independently — which is how the query
// layer's parallel leaf scans work; a single part must not be shared.
//
// Like every store iterator, a cursor overlapping concurrent writers is
// well-formed but not snapshot-consistent: a triple inserted or removed while
// the scan is between refills may be seen or missed, and results are only
// guaranteed exact against quiescent members. NextBatch never blocks writers
// for longer than one refill.
type ScanPart struct {
	owner *Store
	// dedup, when non-nil, suppresses triples also present in that store —
	// how a View hands out overlay parts without double-reporting triples
	// shadowed by the base.
	dedup *Store

	fam        uint8
	lead       uint32
	midBound   bool
	mid        uint32
	trailBound bool
	trail      uint32
	allBound   bool
	unbound    bool // full scan over the owner's SPO shards

	// Cursor state. For unbound scans: the current shard, its snapshotted
	// lead keys and the position in them. For single-lead scans: the entry
	// range [midLo, midHi) and the position in it (midHi < 0 means "to the
	// end", kept open so single-part scans do not miss entries appended
	// after the cursor was created), plus the position within the current
	// entry's trailing element slice — trailing sets keep their members in
	// an indexable slice whatever their size, so a refill stops exactly at
	// the batch boundary and resumes by position (re-clamped each refill,
	// since the set may have mutated in between).
	shard     int
	shardHi   int
	leads     []uint32
	haveLeads bool
	leadPos   int
	midLo     int
	midPos    int
	midHi     int
	trailPos  int

	// pending spills triples that did not fit the caller's batch on the
	// unbound full-scan path, where a whole lead entry (one subject's few
	// predicates and objects) is enumerated per lock hold; single-lead
	// scans never spill.
	pending []IDTriple
	pendPos int
	done    bool
}

// NextBatch fills out with the part's next triples, returning how many were
// written and whether the part is exhausted (done true means no further call
// will produce anything). A refill holds the current shard's read-lock once;
// the usual no-writes-from-the-calling-goroutine rule of QueryIDFunc does not
// apply between calls — the lock is released before NextBatch returns.
func (pt *ScanPart) NextBatch(out []IDTriple) (int, bool) {
	n := pt.drainPending(out)
	if n == len(out) || pt.done {
		return n, pt.exhausted()
	}
	if pt.unbound {
		n = pt.fillUnbound(out, n)
	} else {
		n = pt.fillLead(out, n)
	}
	return n, pt.exhausted()
}

// exhausted reports whether nothing at all remains, spill included.
func (pt *ScanPart) exhausted() bool {
	return pt.done && pt.pendPos >= len(pt.pending)
}

// drainPending moves spilled triples into out first.
func (pt *ScanPart) drainPending(out []IDTriple) int {
	n := 0
	for pt.pendPos < len(pt.pending) && n < len(out) {
		out[n] = pt.pending[pt.pendPos]
		n++
		pt.pendPos++
	}
	if pt.pendPos >= len(pt.pending) {
		pt.pending = pt.pending[:0]
		pt.pendPos = 0
	}
	return n
}

// emit places one triple into out, spilling into pending once out is full and
// applying the view's duplicate suppression.
func (pt *ScanPart) emit(t IDTriple, out []IDTriple, n *int) {
	if pt.dedup != nil && pt.dedup.ContainsID(t) {
		return
	}
	if *n < len(out) {
		out[*n] = t
		*n = *n + 1
	} else {
		pt.pending = append(pt.pending, t)
	}
}

// fillUnbound advances a full-scan part: SPO shards [shard, shardHi), lead
// keys snapshotted per shard, each lead's whole entry enumerated in one
// lock hold (overflow spills into pending).
func (pt *ScanPart) fillUnbound(out []IDTriple, n int) int {
	for pt.shard < pt.shardHi && n < len(out) {
		sh := &pt.owner.spo[pt.shard]
		sh.mu.RLock()
		if !pt.haveLeads {
			pt.leads = pt.leads[:0]
			for k := range sh.m {
				//ontolint:ignore maporder ScanPart enumeration order is documented unspecified; sorted forms sort after materializing
				pt.leads = append(pt.leads, k)
			}
			pt.haveLeads = true
			pt.leadPos = 0
		}
		for pt.leadPos < len(pt.leads) && n < len(out) {
			lead := pt.leads[pt.leadPos]
			if e := sh.m[lead]; e != nil {
				e.forEach(func(mid uint32, trail *idSet) bool {
					trail.forEach(func(c uint32) bool {
						pt.emit(IDTriple{S: lead, P: mid, O: c}, out, &n)
						return true
					})
					return true
				})
			}
			pt.leadPos++
		}
		finished := pt.leadPos >= len(pt.leads)
		sh.mu.RUnlock()
		if finished {
			pt.shard++
			pt.haveLeads = false
		}
	}
	if pt.shard >= pt.shardHi {
		pt.done = true
	}
	return n
}

// family returns the owner's index family the part walks.
func (pt *ScanPart) family() *indexFamily {
	switch pt.fam {
	case famPOS:
		return &pt.owner.pos
	case famOSP:
		return &pt.owner.osp
	default:
		return &pt.owner.spo
	}
}

// fillLead advances a single-lead part: the lead entry is re-looked-up under
// a fresh read-lock each refill (it may have mutated in between; positions
// are re-clamped, which keeps the cursor crash-free under concurrent writes
// at the documented may-miss-may-duplicate consistency).
func (pt *ScanPart) fillLead(out []IDTriple, n int) int {
	sh := pt.family().shard(pt.lead)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.m[pt.lead]
	if e == nil {
		pt.done = true
		return n
	}
	switch {
	case pt.allBound:
		if set := e.find(pt.mid); set != nil && set.contains(pt.trail) {
			pt.emit(tripleOf(pt.fam, pt.lead, pt.mid, pt.trail), out, &n)
		}
		pt.done = true
	case pt.midBound:
		set := e.find(pt.mid)
		if set == nil {
			pt.done = true
			return n
		}
		// The hot leaf shape (two bound components, e.g. every
		// {?x type class} scan): fill straight from the element slice,
		// resuming by position, with the family dispatch hoisted out of
		// the loop. Stopping at the batch boundary (rather than spilling
		// the rest) keeps both the lock hold and the cursor's memory
		// bounded however large the posting list is.
		elems := set.elems
		if pt.trailPos > len(elems) {
			pt.trailPos = len(elems)
		}
		lead, mid := pt.lead, pt.mid
		if pt.dedup == nil {
			switch pt.fam {
			case famPOS:
				for pt.trailPos < len(elems) && n < len(out) {
					out[n] = IDTriple{S: elems[pt.trailPos], P: lead, O: mid}
					n++
					pt.trailPos++
				}
			case famOSP:
				for pt.trailPos < len(elems) && n < len(out) {
					out[n] = IDTriple{S: mid, P: elems[pt.trailPos], O: lead}
					n++
					pt.trailPos++
				}
			default:
				for pt.trailPos < len(elems) && n < len(out) {
					out[n] = IDTriple{S: lead, P: mid, O: elems[pt.trailPos]}
					n++
					pt.trailPos++
				}
			}
		} else {
			for pt.trailPos < len(elems) && n < len(out) {
				t := tripleOf(pt.fam, lead, mid, elems[pt.trailPos])
				pt.trailPos++
				//ontolint:ignore lockcheck dedup is the view's base store, not pt.owner; its shard locks are distinct so the probe cannot self-deadlock
				if !pt.dedup.ContainsID(t) {
					out[n] = t
					n++
				}
			}
		}
		if pt.trailPos >= len(elems) {
			pt.done = true
		}
	default:
		hi := len(e.entries)
		if pt.midHi >= 0 && pt.midHi < hi {
			hi = pt.midHi
		}
		if pt.midPos < pt.midLo {
			pt.midPos = pt.midLo
		}
		for pt.midPos < hi && n < len(out) {
			mt := &e.entries[pt.midPos]
			if pt.trailBound {
				if mt.trail.contains(pt.trail) {
					t := tripleOf(pt.fam, pt.lead, mt.mid, pt.trail)
					//ontolint:ignore lockcheck dedup is the view's base store, not pt.owner; its shard locks are distinct so the probe cannot self-deadlock
					if pt.dedup == nil || !pt.dedup.ContainsID(t) {
						out[n] = t
						n++
					}
				}
				pt.midPos++
				continue
			}
			// Resume within the current entry's element slice, exactly as
			// the midBound fast path does, so one huge trailing set never
			// spills past the batch boundary.
			elems := mt.trail.elems
			if pt.trailPos > len(elems) {
				pt.trailPos = len(elems)
			}
			for pt.trailPos < len(elems) && n < len(out) {
				t := tripleOf(pt.fam, pt.lead, mt.mid, elems[pt.trailPos])
				pt.trailPos++
				//ontolint:ignore lockcheck dedup is the view's base store, not pt.owner; its shard locks are distinct so the probe cannot self-deadlock
				if pt.dedup == nil || !pt.dedup.ContainsID(t) {
					out[n] = t
					n++
				}
			}
			if pt.trailPos >= len(elems) {
				pt.midPos++
				pt.trailPos = 0
			}
		}
		if pt.midPos >= hi {
			pt.done = true
		}
	}
	return n
}

// minMidsPerPart is the smallest entry range worth a part of its own: below
// it the per-part cursor overhead outweighs any parallelism.
const minMidsPerPart = 16

// partPool recycles ScanPart cursors (with their lead snapshots and spill
// buffers) so steady-state scans allocate nothing per part.
var partPool = sync.Pool{New: func() any { return new(ScanPart) }}

// takePart draws a zeroed cursor with its buffers kept.
func takePart() *ScanPart {
	pt := partPool.Get().(*ScanPart)
	leads, pending := pt.leads[:0], pt.pending[:0]
	*pt = ScanPart{leads: leads, pending: pending}
	return pt
}

// maxPooledPartBuf bounds the snapshot/spill buffers a released cursor may
// park in the pool, so one scan over a pathological shard does not pin its
// peak footprint forever.
const maxPooledPartBuf = 1 << 15

// Release returns an exhausted or abandoned cursor to the pool; the caller
// must not touch it afterwards. Releasing is optional — an unreleased part
// is garbage-collected like anything else — but the batched evaluator
// releases every part it drains so scan-heavy serving reuses the cursors'
// snapshot and spill buffers instead of reallocating them per query.
// Oversized buffers are dropped rather than pooled.
func (pt *ScanPart) Release() {
	if cap(pt.leads) > maxPooledPartBuf {
		pt.leads = nil
	}
	if cap(pt.pending) > maxPooledPartBuf {
		pt.pending = nil
	}
	partPool.Put(pt)
}

// ScanIDBatch returns a single resumable cursor over every triple matching
// the id pattern — the batched twin of QueryIDFunc. Drain it with NextBatch;
// each refill costs one shard lock round trip however many triples it moves.
func (s *Store) ScanIDBatch(p IDPattern) *ScanPart {
	return s.ScanParts(p, 1)[0]
}

// ScanParts splits the pattern's matching triples into at most max parts that
// can be drained concurrently (see ScanPart); the parts jointly cover exactly
// the pattern's matches and pairwise overlap nothing. A fully unbound pattern
// splits by SPO shard; a pattern with one bound component splits its lead
// entry's middle range; more tightly bound patterns are a single point lookup
// and come back as one part. Fewer than max parts (often just one) are
// returned when the matches are too few to be worth splitting.
func (s *Store) ScanParts(p IDPattern, max int) []*ScanPart {
	if max < 1 {
		max = 1
	}
	point := func(fam uint8, lead, mid, trail uint32, allBound bool) []*ScanPart {
		pt := takePart()
		pt.owner, pt.fam, pt.lead, pt.mid, pt.trail = s, fam, lead, mid, trail
		pt.allBound, pt.midBound, pt.midHi = allBound, !allBound, -1
		return []*ScanPart{pt}
	}
	switch {
	case p.BoundS && p.BoundP && p.BoundO:
		return point(famSPO, p.S, p.P, p.O, true)
	case p.BoundS && p.BoundP:
		return point(famSPO, p.S, p.P, 0, false)
	case p.BoundP && p.BoundO:
		return point(famPOS, p.P, p.O, 0, false)
	case p.BoundS && p.BoundO:
		return s.leadParts(famSPO, p.S, true, p.O, max)
	case p.BoundS:
		return s.leadParts(famSPO, p.S, false, 0, max)
	case p.BoundP:
		return s.leadParts(famPOS, p.P, false, 0, max)
	case p.BoundO:
		return s.leadParts(famOSP, p.O, false, 0, max)
	default:
		groups := max
		if groups > numShards {
			groups = numShards
		}
		parts := make([]*ScanPart, 0, groups)
		for g := 0; g < groups; g++ {
			pt := takePart()
			pt.owner, pt.unbound, pt.midHi = s, true, -1
			pt.shard = g * numShards / groups
			pt.shardHi = (g + 1) * numShards / groups
			parts = append(parts, pt)
		}
		return parts
	}
}

// leadParts builds the parts of a single-lead scan, splitting the lead
// entry's middle range when it is wide enough.
func (s *Store) leadParts(fam uint8, lead uint32, trailBound bool, trail uint32, max int) []*ScanPart {
	part := func(lo, hi int) *ScanPart {
		pt := takePart()
		pt.owner, pt.fam, pt.lead, pt.trailBound, pt.trail = s, fam, lead, trailBound, trail
		pt.midLo, pt.midPos, pt.midHi = lo, lo, hi
		return pt
	}
	if max == 1 {
		return []*ScanPart{part(0, -1)}
	}
	var fams *indexFamily
	switch fam {
	case famPOS:
		fams = &s.pos
	case famOSP:
		fams = &s.osp
	default:
		fams = &s.spo
	}
	sh := fams.shard(lead)
	sh.mu.RLock()
	width := 0
	if e := sh.m[lead]; e != nil {
		width = len(e.entries)
	}
	sh.mu.RUnlock()
	parts := max
	if w := width / minMidsPerPart; parts > w {
		parts = w
	}
	if parts <= 1 {
		return []*ScanPart{part(0, -1)}
	}
	out := make([]*ScanPart, 0, parts)
	for g := 0; g < parts; g++ {
		lo := g * width / parts
		hi := (g + 1) * width / parts
		if g == parts-1 {
			hi = -1 // the last part stays open-ended, like the single-part form
		}
		out = append(out, part(lo, hi))
	}
	return out
}

// ScanParts is the View form of Store.ScanParts: the base's parts followed by
// the overlay's, with overlay parts suppressing triples also present in the
// base (so each union triple is reported exactly once) unless the view was
// built with the disjointness promise, in which case the per-triple probe is
// skipped.
func (v *View) ScanParts(p IDPattern, max int) []*ScanPart {
	parts := v.base.ScanParts(p, max)
	over := v.overlay.ScanParts(p, max)
	if !v.disjoint {
		for _, pt := range over {
			pt.dedup = v.base
		}
	}
	return append(parts, over...)
}

// orderPool recycles the probe-ordering scratch QueryIDBatch uses for its
// counting sort, so steady-state batched joins allocate nothing per batch
// (array pointers, not slices, so Put does not box a header).
var orderPool = sync.Pool{New: func() any { return new([batchOrderSize]int32) }}

// batchOrderSize is the largest probe batch the pooled scratch covers; the
// rare larger batch allocates its own.
const batchOrderSize = 1024

// QueryIDBatch streams the matches of a batch of probe patterns to yield,
// each tagged with the index of the pattern it answers, stopping early when
// yield returns false. All patterns of one call must share the same bound
// shape (the same Bound flags — the form a batched join produces, where every
// probe of a batch binds the same components); the batch is grouped by index
// shard and each shard is locked once for all its probes, instead of once per
// probe as repeated QueryIDFunc calls would. Matches arrive grouped by shard,
// not in pattern order. yield runs under a shard read-lock and must not write
// to the store.
func (s *Store) QueryIDBatch(ps []IDPattern, yield func(pi int, t IDTriple) bool) {
	if len(ps) == 0 {
		return
	}
	shape := ps[0]
	if !shape.BoundS && !shape.BoundP && !shape.BoundO {
		// Unbound probes (a cartesian stage): no lead to group by; fall back
		// to one full scan per pattern.
		for i := range ps {
			stopped := false
			s.QueryIDFunc(ps[i], func(t IDTriple) bool {
				if !yield(i, t) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				return
			}
		}
		return
	}
	// The two most common join shapes — (S P ?) answering objects and
	// (? P O) answering subjects, the forms a join's bound lead plus one
	// more bound component produces — run fully specialized loops: lead
	// extraction, shard grouping, map lookup, entry find and element walk
	// are all inlined with no per-probe dispatch, because this is the
	// innermost loop of every batched join. Everything else goes through
	// the general per-probe dispatch.
	switch {
	case shape.BoundS && shape.BoundP && !shape.BoundO:
		s.batchProbeSP(ps, yield)
	case shape.BoundP && shape.BoundO && !shape.BoundS:
		s.batchProbePO(ps, yield)
	default:
		var fams *indexFamily
		var leadOf func(IDPattern) uint32
		switch {
		case shape.BoundS:
			fams, leadOf = &s.spo, func(p IDPattern) uint32 { return p.S }
		case shape.BoundP:
			fams, leadOf = &s.pos, func(p IDPattern) uint32 { return p.P }
		default:
			fams, leadOf = &s.osp, func(p IDPattern) uint32 { return p.O }
		}
		order, counts, release := groupByShard(ps, leadOf)
		defer release()
		for shIdx := 0; shIdx < numShards; shIdx++ {
			lo, hi := counts[shIdx], counts[shIdx+1]
			if lo == hi {
				continue
			}
			sh := &fams[shIdx]
			sh.mu.RLock()
			for _, pi := range order[lo:hi] {
				if !probeShardLocked(sh, ps[pi], int(pi), yield) {
					sh.mu.RUnlock()
					return
				}
			}
			sh.mu.RUnlock()
		}
	}
}

// groupByShard counting-sorts the probe indexes by the shard of their lead
// component: one pass to size the buckets, one to place, so each shard is
// visited exactly once. The scratch comes from a pool; call release when
// done with the order slice.
func groupByShard(ps []IDPattern, leadOf func(IDPattern) uint32) (order []int32, counts [numShards + 1]int32, release func()) {
	for i := range ps {
		counts[shardOf(leadOf(ps[i]))+1]++
	}
	for i := 0; i < numShards; i++ {
		counts[i+1] += counts[i]
	}
	release = func() {}
	if len(ps) <= batchOrderSize {
		pooled := orderPool.Get().(*[batchOrderSize]int32)
		release = func() { orderPool.Put(pooled) }
		order = pooled[:len(ps)]
	} else {
		order = make([]int32, len(ps))
	}
	var next [numShards]int32
	for i := range ps {
		sh := shardOf(leadOf(ps[i]))
		order[counts[sh]+next[sh]] = int32(i)
		next[sh]++
	}
	return order, counts, release
}

// batchProbeSP answers a batch of (S P ?) probes: SPO family, objects out.
func (s *Store) batchProbeSP(ps []IDPattern, yield func(pi int, t IDTriple) bool) {
	var counts [numShards + 1]int32
	for i := range ps {
		counts[shardOf(ps[i].S)+1]++
	}
	for i := 0; i < numShards; i++ {
		counts[i+1] += counts[i]
	}
	var order []int32
	if len(ps) <= batchOrderSize {
		pooled := orderPool.Get().(*[batchOrderSize]int32)
		defer orderPool.Put(pooled)
		order = pooled[:len(ps)]
	} else {
		order = make([]int32, len(ps))
	}
	var next [numShards]int32
	for i := range ps {
		sh := shardOf(ps[i].S)
		order[counts[sh]+next[sh]] = int32(i)
		next[sh]++
	}
	for shIdx := 0; shIdx < numShards; shIdx++ {
		lo, hi := counts[shIdx], counts[shIdx+1]
		if lo == hi {
			continue
		}
		sh := &s.spo[shIdx]
		sh.mu.RLock()
		for _, pi := range order[lo:hi] {
			p := ps[pi]
			e := sh.m[p.S]
			if e == nil {
				continue
			}
			set := e.find(p.P)
			if set == nil {
				continue
			}
			for _, v := range set.elems {
				if !yield(int(pi), IDTriple{S: p.S, P: p.P, O: v}) {
					sh.mu.RUnlock()
					return
				}
			}
		}
		sh.mu.RUnlock()
	}
}

// batchProbePO answers a batch of (? P O) probes: POS family, subjects out.
func (s *Store) batchProbePO(ps []IDPattern, yield func(pi int, t IDTriple) bool) {
	var counts [numShards + 1]int32
	for i := range ps {
		counts[shardOf(ps[i].P)+1]++
	}
	for i := 0; i < numShards; i++ {
		counts[i+1] += counts[i]
	}
	var order []int32
	if len(ps) <= batchOrderSize {
		pooled := orderPool.Get().(*[batchOrderSize]int32)
		defer orderPool.Put(pooled)
		order = pooled[:len(ps)]
	} else {
		order = make([]int32, len(ps))
	}
	var next [numShards]int32
	for i := range ps {
		sh := shardOf(ps[i].P)
		order[counts[sh]+next[sh]] = int32(i)
		next[sh]++
	}
	for shIdx := 0; shIdx < numShards; shIdx++ {
		lo, hi := counts[shIdx], counts[shIdx+1]
		if lo == hi {
			continue
		}
		sh := &s.pos[shIdx]
		sh.mu.RLock()
		for _, pi := range order[lo:hi] {
			p := ps[pi]
			e := sh.m[p.P]
			if e == nil {
				continue
			}
			set := e.find(p.O)
			if set == nil {
				continue
			}
			for _, v := range set.elems {
				if !yield(int(pi), IDTriple{S: v, P: p.P, O: p.O}) {
					sh.mu.RUnlock()
					return
				}
			}
		}
		sh.mu.RUnlock()
	}
}

// probeShardLocked answers one probe from its (already read-locked) shard,
// reporting false when yield stopped the enumeration. The branch structure
// mirrors QueryIDFunc's family dispatch, minus the locking; trailing sets
// are walked with explicit loops over the adaptive representation rather
// than forEach closures — this is the innermost loop of every batched join,
// and a closure per probe is exactly the per-binding cost batching exists
// to remove.
func probeShardLocked(sh *shard, p IDPattern, pi int, yield func(int, IDTriple) bool) bool {
	switch {
	case p.BoundS:
		e := sh.m[p.S]
		if e == nil {
			return true
		}
		if p.BoundP {
			set := e.find(p.P)
			if set == nil {
				return true
			}
			if p.BoundO {
				if set.contains(p.O) {
					return yield(pi, IDTriple{S: p.S, P: p.P, O: p.O})
				}
				return true
			}
			return emitSet(set, pi, yield, famSPO, p.S, p.P)
		}
		for i := range e.entries {
			mt := &e.entries[i]
			if p.BoundO {
				if mt.trail.contains(p.O) && !yield(pi, IDTriple{S: p.S, P: mt.mid, O: p.O}) {
					return false
				}
				continue
			}
			if !emitSet(&mt.trail, pi, yield, famSPO, p.S, mt.mid) {
				return false
			}
		}
		return true
	case p.BoundP:
		e := sh.m[p.P]
		if e == nil {
			return true
		}
		if p.BoundO {
			set := e.find(p.O)
			if set == nil {
				return true
			}
			return emitSet(set, pi, yield, famPOS, p.P, p.O)
		}
		for i := range e.entries {
			mt := &e.entries[i]
			if !emitSet(&mt.trail, pi, yield, famPOS, p.P, mt.mid) {
				return false
			}
		}
		return true
	default: // BoundO
		e := sh.m[p.O]
		if e == nil {
			return true
		}
		for i := range e.entries {
			mt := &e.entries[i]
			if !emitSet(&mt.trail, pi, yield, famOSP, p.O, mt.mid) {
				return false
			}
		}
		return true
	}
}

// emitSet yields one triple per member of a trailing set, reassembled from
// the family's (lead, mid, trail) coordinates, as a direct loop over the
// set's element slice (no per-set closure).
func emitSet(set *idSet, pi int, yield func(int, IDTriple) bool, fam uint8, lead, mid uint32) bool {
	for _, v := range set.elems {
		if !yield(pi, tripleOf(fam, lead, mid, v)) {
			return false
		}
	}
	return true
}

// QueryIDBatch is the View form of Store.QueryIDBatch: each probe answers
// from the base, then from the overlay with base-shadowed triples suppressed
// (skipped entirely under the disjoint view's promise). The same same-shape
// and no-writes-from-yield rules apply.
func (v *View) QueryIDBatch(ps []IDPattern, yield func(pi int, t IDTriple) bool) {
	stopped := false
	v.base.QueryIDBatch(ps, func(pi int, t IDTriple) bool {
		if !yield(pi, t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	v.overlay.QueryIDBatch(ps, func(pi int, t IDTriple) bool {
		if !v.disjoint && v.base.ContainsID(t) {
			return true
		}
		return yield(pi, t)
	})
}
