package store

// This file is the store's id-level query surface: the hooks the join
// evaluator in internal/query builds on. A join probes the store thousands of
// times per query, so the evaluator works entirely in dictionary ids —
// variables bind to SymbolIDs, probes are IDPatterns, matches are IDTriples —
// and only the final solutions are resolved back to strings through a
// Resolver. The string-level Pattern methods (QueryFunc, Count) are thin
// wrappers over these.

// SymbolID is a dictionary id minted by the store's symbol table. Ids are
// dense, append-only and never reused; they are only meaningful relative to
// the store that minted them.
type SymbolID = uint32

// IDTriple is a dictionary-encoded triple.
type IDTriple struct {
	S, P, O SymbolID
}

// IDPattern is a dictionary-encoded triple pattern: a component constrains
// the match only when its Bound flag is set (an unbound component is a
// wildcard, whatever its id field holds).
type IDPattern struct {
	S, P, O                SymbolID
	BoundS, BoundP, BoundO bool
}

// SymbolID returns the dictionary id of a name, with ok reporting whether the
// name has ever been interned. A name that was never interned cannot occur in
// any index, so a pattern bound to it matches nothing.
func (s *Store) SymbolID(name string) (SymbolID, bool) {
	return s.syms.lookup(name)
}

// Resolver resolves SymbolIDs back to names from a lock-free snapshot of the
// symbol table, falling back to the locked path only for ids minted after the
// Resolver was created. Create one per query result set rather than per id.
type Resolver struct {
	r resolver
}

// NewResolver returns a resolver over the store's current dictionary.
func (s *Store) NewResolver() Resolver {
	return Resolver{r: newResolver(s.syms)}
}

// Name resolves one id.
func (r Resolver) Name(id SymbolID) string {
	return r.r.name(id)
}

// encodePattern resolves a string pattern's bound components to ids; ok is
// false when a bound component was never interned (the pattern matches
// nothing).
func (s *Store) encodePattern(p Pattern) (IDPattern, bool) {
	var ip IDPattern
	var ok bool
	if p.Subject != "" {
		if ip.S, ok = s.syms.lookup(p.Subject); !ok {
			return IDPattern{}, false
		}
		ip.BoundS = true
	}
	if p.Predicate != "" {
		if ip.P, ok = s.syms.lookup(p.Predicate); !ok {
			return IDPattern{}, false
		}
		ip.BoundP = true
	}
	if p.Object != "" {
		if ip.O, ok = s.syms.lookup(p.Object); !ok {
			return IDPattern{}, false
		}
		ip.BoundO = true
	}
	return ip, true
}

// QueryIDFunc streams every triple matching the id pattern to yield, stopping
// early when yield returns false. It picks the permutation family by the
// pattern's bound components — bound subject → SPO, else bound predicate →
// POS, else bound object → OSP, else a full SPO scan — and allocates nothing.
// The enumeration order is unspecified. yield must not write to the store (it
// runs under a shard read-lock).
func (s *Store) QueryIDFunc(p IDPattern, yield func(IDTriple) bool) {
	switch {
	case p.BoundS:
		sh := s.spo.shard(p.S)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		e := sh.m[p.S]
		if e == nil {
			return
		}
		if p.BoundP {
			set := e.find(p.P)
			if set == nil {
				return
			}
			if p.BoundO {
				if set.contains(p.O) {
					yield(IDTriple{p.S, p.P, p.O})
				}
				return
			}
			set.forEach(func(oid SymbolID) bool {
				return yield(IDTriple{p.S, p.P, oid})
			})
			return
		}
		e.forEach(func(pid SymbolID, objs *idSet) bool {
			if p.BoundO {
				if objs.contains(p.O) {
					return yield(IDTriple{p.S, pid, p.O})
				}
				return true
			}
			return objs.forEach(func(oid SymbolID) bool {
				return yield(IDTriple{p.S, pid, oid})
			})
		})
	case p.BoundP:
		sh := s.pos.shard(p.P)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		e := sh.m[p.P]
		if e == nil {
			return
		}
		if p.BoundO {
			set := e.find(p.O)
			if set == nil {
				return
			}
			set.forEach(func(sid SymbolID) bool {
				return yield(IDTriple{sid, p.P, p.O})
			})
			return
		}
		e.forEach(func(oid SymbolID, subjects *idSet) bool {
			return subjects.forEach(func(sid SymbolID) bool {
				return yield(IDTriple{sid, p.P, oid})
			})
		})
	case p.BoundO:
		sh := s.osp.shard(p.O)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		e := sh.m[p.O]
		if e == nil {
			return
		}
		e.forEach(func(sid SymbolID, preds *idSet) bool {
			return preds.forEach(func(pid SymbolID) bool {
				return yield(IDTriple{sid, pid, p.O})
			})
		})
	default:
		for i := range s.spo {
			if !s.scanShardIDs(&s.spo[i], yield) {
				return
			}
		}
	}
}

// scanShardIDs streams one whole SPO shard to yield, reporting false when
// yield stopped the enumeration.
func (s *Store) scanShardIDs(sh *shard, yield func(IDTriple) bool) bool {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for sid, e := range sh.m {
		ok := e.forEach(func(pid SymbolID, objs *idSet) bool {
			return objs.forEach(func(oid SymbolID) bool {
				return yield(IDTriple{sid, pid, oid})
			})
		})
		if !ok {
			return false
		}
	}
	return true
}

// CountID returns the exact number of triples matching the id pattern. It is
// the planner's cardinality estimate: it runs entirely on the indexes — set
// lengths are read off the index nodes, no triple is materialized and no
// symbol resolved — so it is cheap enough to call once per pattern per query.
func (s *Store) CountID(p IDPattern) int {
	count := 0
	switch {
	case p.BoundS:
		sh := s.spo.shard(p.S)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		e := sh.m[p.S]
		if e == nil {
			return 0
		}
		if p.BoundP {
			set := e.find(p.P)
			if set == nil {
				return 0
			}
			if p.BoundO {
				if set.contains(p.O) {
					return 1
				}
				return 0
			}
			return set.len()
		}
		e.forEach(func(_ SymbolID, objs *idSet) bool {
			if p.BoundO {
				if objs.contains(p.O) {
					count++
				}
				return true
			}
			count += objs.len()
			return true
		})
	case p.BoundP:
		sh := s.pos.shard(p.P)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		e := sh.m[p.P]
		if e == nil {
			return 0
		}
		if p.BoundO {
			if set := e.find(p.O); set != nil {
				return set.len()
			}
			return 0
		}
		e.forEach(func(_ SymbolID, subjects *idSet) bool {
			count += subjects.len()
			return true
		})
	case p.BoundO:
		sh := s.osp.shard(p.O)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		e := sh.m[p.O]
		if e == nil {
			return 0
		}
		e.forEach(func(_ SymbolID, preds *idSet) bool {
			count += preds.len()
			return true
		})
	default:
		return s.Len()
	}
	return count
}

// IDStats are cheap cardinality statistics for one id pattern: the exact
// match count, and the number of distinct subjects, predicates and objects
// among the matches — exact where an index level exposes it in O(1) (lead
// and middle widths), bounded above by Count where it does not. The planner
// in internal/query divides Count by a distinct figure to estimate how
// selective probing the pattern through that component will be.
type IDStats struct {
	Count     int
	DistinctS int
	DistinctP int
	DistinctO int
}

// StatsID returns cardinality statistics for the id pattern. Like CountID it
// runs entirely on the indexes, reading set lengths and entry widths; it
// never materializes a triple or resolves a symbol.
func (s *Store) StatsID(p IDPattern) IDStats {
	switch {
	case p.BoundS && p.BoundP && p.BoundO:
		n := s.CountID(p)
		return IDStats{Count: n, DistinctS: n, DistinctP: n, DistinctO: n}
	case p.BoundS:
		sh := s.spo.shard(p.S)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		e := sh.m[p.S]
		if e == nil {
			return IDStats{}
		}
		if p.BoundP {
			set := e.find(p.P)
			if set == nil {
				return IDStats{}
			}
			n := set.len()
			return IDStats{Count: n, DistinctS: 1, DistinctP: 1, DistinctO: n}
		}
		st := IDStats{DistinctS: 1}
		e.forEach(func(_ SymbolID, objs *idSet) bool {
			if p.BoundO {
				if objs.contains(p.O) {
					st.Count++
				}
				return true
			}
			st.Count += objs.len()
			st.DistinctP++
			return true
		})
		if p.BoundO {
			st.DistinctP = st.Count
			st.DistinctO = 1
		} else {
			st.DistinctO = st.Count
		}
		return st
	case p.BoundP:
		sh := s.pos.shard(p.P)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		e := sh.m[p.P]
		if e == nil {
			return IDStats{}
		}
		if p.BoundO {
			set := e.find(p.O)
			if set == nil {
				return IDStats{}
			}
			n := set.len()
			return IDStats{Count: n, DistinctS: n, DistinctP: 1, DistinctO: 1}
		}
		st := IDStats{DistinctP: 1}
		e.forEach(func(_ SymbolID, subjects *idSet) bool {
			st.Count += subjects.len()
			st.DistinctO++
			return true
		})
		st.DistinctS = st.Count
		return st
	case p.BoundO:
		sh := s.osp.shard(p.O)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		e := sh.m[p.O]
		if e == nil {
			return IDStats{}
		}
		st := IDStats{DistinctO: 1}
		e.forEach(func(_ SymbolID, preds *idSet) bool {
			st.Count += preds.len()
			st.DistinctS++
			return true
		})
		st.DistinctP = st.Count
		return st
	default:
		st := IDStats{Count: s.Len()}
		for i := range s.spo {
			s.spo[i].mu.RLock()
			st.DistinctS += len(s.spo[i].m)
			s.spo[i].mu.RUnlock()
		}
		for i := range s.pos {
			s.pos[i].mu.RLock()
			st.DistinctP += len(s.pos[i].m)
			s.pos[i].mu.RUnlock()
		}
		for i := range s.osp {
			s.osp[i].mu.RLock()
			st.DistinctO += len(s.osp[i].m)
			s.osp[i].mu.RUnlock()
		}
		return st
	}
}
