package core

import (
	"fmt"

	"repro/internal/dl"
	"repro/internal/semfield"
	"repro/internal/store"
)

// This file packages the paper's own worked examples as ready-made audit
// inputs, so the examples, the CLI and the tests all exercise exactly the
// configuration §3 discusses.

// PaperTBox returns the combined ontonomy of the paper's eq. (4) and eq. (8):
// the car/pickup vehicle definitions and the isomorphic dog/horse animal
// definitions, in one TBox.
func PaperTBox() *dl.TBox {
	tb := dl.NewTBox()
	tb.MustDefine("car", dl.SubsumedBy, dl.And(
		dl.Atomic("motorvehicle"), dl.Atomic("roadvehicle"), dl.Exists("size", dl.Atomic("small")),
	))
	tb.MustDefine("pickup", dl.SubsumedBy, dl.And(
		dl.Atomic("motorvehicle"), dl.Atomic("roadvehicle"), dl.Exists("size", dl.Atomic("big")),
	))
	tb.MustDefine("motorvehicle", dl.SubsumedBy, dl.Exists("uses", dl.Atomic("gasoline")))
	tb.MustDefine("roadvehicle", dl.SubsumedBy, dl.AtLeast(4, "has", dl.Atomic("wheels")))

	tb.MustDefine("dog", dl.SubsumedBy, dl.And(
		dl.Atomic("animal"), dl.Atomic("quadruped"), dl.Exists("size", dl.Atomic("small")),
	))
	tb.MustDefine("horse", dl.SubsumedBy, dl.And(
		dl.Atomic("animal"), dl.Atomic("quadruped"), dl.Exists("size", dl.Atomic("big")),
	))
	tb.MustDefine("animal", dl.SubsumedBy, dl.Exists("ingests", dl.Atomic("food")))
	tb.MustDefine("quadruped", dl.SubsumedBy, dl.AtLeast(4, "has", dl.Atomic("leg")))
	return tb
}

// PaperRevisedTBox returns the paper's eqs. (9)–(11): the animal side
// rewritten with quadruped ⊑ animal so that the dog/horse definitions no
// longer mirror the vehicle ones, alongside the unchanged vehicle side.
func PaperRevisedTBox() *dl.TBox {
	tb := dl.NewTBox()
	tb.MustDefine("car", dl.SubsumedBy, dl.And(
		dl.Atomic("motorvehicle"), dl.Atomic("roadvehicle"), dl.Exists("size", dl.Atomic("small")),
	))
	tb.MustDefine("pickup", dl.SubsumedBy, dl.And(
		dl.Atomic("motorvehicle"), dl.Atomic("roadvehicle"), dl.Exists("size", dl.Atomic("big")),
	))
	tb.MustDefine("motorvehicle", dl.SubsumedBy, dl.Exists("uses", dl.Atomic("gasoline")))
	tb.MustDefine("roadvehicle", dl.SubsumedBy, dl.AtLeast(4, "has", dl.Atomic("wheels")))

	tb.MustDefine("dog", dl.SubsumedBy, dl.And(
		dl.Atomic("quadruped"), dl.Exists("size", dl.Atomic("small")),
	))
	tb.MustDefine("horse", dl.SubsumedBy, dl.And(
		dl.Atomic("quadruped"), dl.Exists("size", dl.Atomic("big")),
	))
	tb.MustDefine("animal", dl.SubsumedBy, dl.Exists("ingests", dl.Atomic("food")))
	tb.MustDefine("quadruped", dl.SubsumedBy, dl.And(
		dl.Atomic("animal"), dl.AtLeast(4, "has", dl.Atomic("leg")),
	))
	return tb
}

// PaperInput assembles a complete audit input from the paper's own examples:
// the eq. (4)/(8) TBox, the English and Italian door-fixture vocabularies,
// and a small annotated store of vehicles and animals in which a handful of
// annotations have drifted (a horse-drawn cart annotated as a motor vehicle,
// and similar §3 borderline cases).
func PaperInput() Input {
	annotations := store.New()
	trueClass := map[string]string{}
	add := func(instance, annotated, actual string) {
		if _, err := annotations.Add(store.Triple{Subject: instance, Predicate: store.TypePredicate, Object: annotated}); err != nil {
			panic(err)
		}
		trueClass[instance] = actual
	}
	// Faithfully annotated instances.
	for i := 0; i < 4; i++ {
		add(fmt.Sprintf("sedan-%d", i), "car", "car")
		add(fmt.Sprintf("truck-%d", i), "pickup", "pickup")
		add(fmt.Sprintf("poodle-%d", i), "dog", "dog")
		add(fmt.Sprintf("mare-%d", i), "horse", "horse")
	}
	// The paper's borderline road vehicles: four wheels, no engine. Usage
	// files them under roadvehicle, but the normative annotation forced them
	// under the closest motorized class.
	add("horse-drawn-cart", "car", "roadvehicle")
	add("seaside-rental-quadricycle", "car", "roadvehicle")
	add("small-omnibus", "pickup", "roadvehicle")

	_, english, italian := semfield.DoorknobExample()
	return Input{
		TBox:        PaperTBox(),
		Annotations: annotations,
		TrueClass:   trueClass,
		Languages:   []*semfield.Language{english, italian},
		MaxDepth:    3,
	}
}
