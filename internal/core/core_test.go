package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/definition"
	"repro/internal/dl"
)

func TestAuditRequiresTBox(t *testing.T) {
	if _, err := Audit(Input{}); err != ErrNoTBox {
		t.Fatalf("Audit without TBox returned %v, want ErrNoTBox", err)
	}
}

func TestAuditPaperInput(t *testing.T) {
	rep, err := Audit(PaperInput())
	if err != nil {
		t.Fatal(err)
	}
	// Definitional: functional and approximation accept, structural has
	// nothing to accept (no signature-level ontonomy supplied).
	if len(rep.Definitional.Verdicts) != 3 {
		t.Fatalf("verdicts = %d, want 3", len(rep.Definitional.Verdicts))
	}
	if !rep.Definitional.Verdicts[0].Accepted || !rep.Definitional.Verdicts[1].Accepted {
		t.Error("functional and approximation definitions should accept the paper TBox")
	}
	if rep.Definitional.Verdicts[2].Accepted {
		t.Error("structural definition should not accept a bare TBox")
	}
	if rep.Definitional.StructuralDefinitionApplicable {
		t.Error("no signature-level ontonomy was supplied; the flag should be false")
	}

	// Structural: the CAR ≅ DOG collision is present as written and the
	// unfolding (which exposes role names) separates it at depth 3.
	if rep.Structural.AsWritten.CollidingPairs == 0 {
		t.Error("the paper TBox should exhibit collisions as written")
	}
	var carDog bool
	for _, g := range rep.Structural.AsWritten.Groups {
		names := strings.Join(g.Names, " ")
		if strings.Contains(names, "car") && strings.Contains(names, "dog") {
			carDog = true
		}
	}
	if !carDog {
		t.Error("car and dog should share a collision group as written")
	}
	// Unfolding (which exposes the uses/ingests role names) separates the
	// cross-domain CAR ≅ DOG pair, but pairs that differ only in a primitive
	// leaf name — car/pickup (small vs big), dog/horse, roadvehicle/quadruped
	// (wheels vs leg) — remain indistinguishable at every depth once names
	// are erased: the paper's "we can't [stop]" in miniature.
	if rep.Structural.Unfolded.CollidingPairs != 3 {
		t.Errorf("unfolded colliding pairs = %d, want 3 (car≅pickup, dog≅horse, roadvehicle≅quadruped)",
			rep.Structural.Unfolded.CollidingPairs)
	}
	for _, g := range rep.Structural.Unfolded.Groups {
		names := strings.Join(g.Names, " ")
		if strings.Contains(names, "car") && strings.Contains(names, "dog") {
			t.Error("car and dog should be separated by unfolding with role labels kept")
		}
	}
	if rep.Structural.ShapeOnly.CollidingPairs == 0 {
		t.Error("shape-only reading should still collide (the paper's diagram (7))")
	}
	if len(rep.Structural.Curve) != 4 {
		t.Errorf("curve has %d points, want 4 (depths 0..3)", len(rep.Structural.Curve))
	}

	// Semantic: English↔Italian pairs, with a positive atomistic loss.
	if len(rep.Semantic.Pairs) != 2 {
		t.Fatalf("semantic pairs = %d, want 2", len(rep.Semantic.Pairs))
	}
	var positive bool
	for _, p := range rep.Semantic.Pairs {
		if p.FieldRelative.ErrorRate() != 0 {
			t.Errorf("%s→%s field-relative error = %f, want 0", p.Source, p.Target, p.FieldRelative.ErrorRate())
		}
		if p.Atomistic.ErrorRate() > 0 {
			positive = true
		}
	}
	if !positive {
		t.Error("at least one direction should show an atomistic translation loss")
	}

	// Pragmatic: ground truth supplied, both aggregates computed; the
	// drifted cart/omnibus annotations cost precision under expansion.
	if !rep.Pragmatic.GroundTruth {
		t.Fatal("pragmatic audit should have ground truth")
	}
	if rep.Pragmatic.AnnotatedInstances != 19 {
		t.Errorf("annotated instances = %d, want 19", rep.Pragmatic.AnnotatedInstances)
	}
	if rep.Pragmatic.Expanded.Recall <= rep.Pragmatic.Plain.Recall {
		t.Errorf("expansion should improve recall: expanded %f, plain %f",
			rep.Pragmatic.Expanded.Recall, rep.Pragmatic.Plain.Recall)
	}
	if rep.Pragmatic.Expanded.Precision >= 1 {
		t.Errorf("the drifted annotations should cost expanded precision, got %f", rep.Pragmatic.Expanded.Precision)
	}

	// Findings and rendering.
	if len(rep.Findings) == 0 {
		t.Fatal("no findings produced")
	}
	text := rep.Render()
	for _, want := range []string{"ONTOLOGY AUDIT", "definitional:", "structural:", "semantic:", "pragmatic:", "car"} {
		if !strings.Contains(text, want) {
			t.Errorf("Render output missing %q", want)
		}
	}
}

func TestAuditMinimalInput(t *testing.T) {
	rep, err := Audit(Input{TBox: PaperRevisedTBox()})
	if err != nil {
		t.Fatal(err)
	}
	// Without languages and annotations, the corresponding audits are
	// skipped but noted.
	var semanticSkipped, pragmaticSkipped bool
	for _, f := range rep.Findings {
		if strings.Contains(f, "field audit was skipped") {
			semanticSkipped = true
		}
		if strings.Contains(f, "retrieval audit was skipped") {
			pragmaticSkipped = true
		}
	}
	if !semanticSkipped || !pragmaticSkipped {
		t.Errorf("skipped audits should be noted in findings: %v", rep.Findings)
	}
	if rep.Pragmatic.GroundTruth {
		t.Error("no ground truth was supplied")
	}
	// The revised TBox separates car from dog as written under
	// concept-erasure (the repair of eqs. 9–11).
	for _, g := range rep.Structural.AsWritten.Groups {
		names := strings.Join(g.Names, " ")
		if strings.Contains(names, "car") && strings.Contains(names, "dog") {
			t.Error("revised TBox should not collide car with dog as written")
		}
	}
}

func TestAuditWithSignatureOntonomy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	onto, err := definition.RandomOntonomy(rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(Input{TBox: PaperTBox(), Ontonomy: onto.Ontonomy})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Definitional.StructuralDefinitionApplicable {
		t.Error("a signature-level ontonomy was supplied; the flag should be true")
	}
	if !rep.Definitional.Verdicts[2].Accepted {
		t.Errorf("structural definition should accept a genuine ontonomy: %s", rep.Definitional.Verdicts[2].Reason)
	}
}

func TestAuditAnnotationsWithoutGroundTruth(t *testing.T) {
	in := PaperInput()
	in.TrueClass = nil
	rep, err := Audit(in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pragmatic.GroundTruth {
		t.Error("ground truth should be absent")
	}
	if rep.Pragmatic.AnnotatedInstances == 0 {
		t.Error("annotation count should still be reported")
	}
	var noted bool
	for _, f := range rep.Findings {
		if strings.Contains(f, "no usage ground truth") {
			noted = true
		}
	}
	if !noted {
		t.Error("missing ground truth should be noted in findings")
	}
}

func TestAuditNonConjunctiveDefinitionsNoted(t *testing.T) {
	tb := PaperTBox()
	tb.MustDefine("oddball", dl.Equivalent, dl.Or(dl.Atomic("a"), dl.Atomic("b")))
	rep, err := Audit(Input{TBox: tb})
	if err != nil {
		t.Fatal(err)
	}
	var noted bool
	for _, f := range rep.Findings {
		if strings.Contains(f, "outside the conjunctive fragment") && strings.Contains(f, "oddball") {
			noted = true
		}
	}
	if !noted {
		t.Errorf("non-conjunctive definitions should be reported in findings: %v", rep.Findings)
	}
}

func TestPaperTBoxShapes(t *testing.T) {
	if got := len(PaperTBox().DefinedNames()); got != 8 {
		t.Errorf("PaperTBox defines %d names, want 8", got)
	}
	if got := len(PaperRevisedTBox().DefinedNames()); got != 8 {
		t.Errorf("PaperRevisedTBox defines %d names, want 8", got)
	}
	if !PaperTBox().Acyclic() || !PaperRevisedTBox().Acyclic() {
		t.Error("paper TBoxes must be acyclic")
	}
}
