// Package core exposes the library's public-facing "ontology audit": given an
// ontonomy (a description-logic TBox, optionally accompanied by a
// Bench-Capon/Malcolm signature-level ontonomy, an annotated data store, and
// the lexical fields of the community that is supposed to use it), it runs
// the paper's three critiques and returns a structured report:
//
//   - the definitional audit (§2): which of the circulating definitions of
//     "ontonomy" the artifact actually satisfies, and which of them could
//     reject anything at all;
//   - the structural-meaning audit (§3): which distinct concepts receive the
//     same structural meaning (the CAR ≅ DOG collisions), and whether
//     unfolding definitions ever separates them;
//   - the semantic-field audit (§3): how much an atomistic word-to-word
//     reading of the community's vocabularies loses relative to their actual
//     field structure;
//   - the pragmatic audit (§4): whether ontology-mediated query expansion
//     helps or hurts retrieval over the accompanying annotated data.
//
// Audit is what the examples and cmd/ontoaudit drive; every substrate it pulls
// together is available directly under internal/ for finer-grained use.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/definition"
	"repro/internal/dl"
	"repro/internal/query"
	"repro/internal/semfield"
	"repro/internal/signature"
	"repro/internal/store"
	"repro/internal/structure"
)

// Input is everything an audit can look at. Only TBox is mandatory.
type Input struct {
	// TBox is the ontonomy under audit, as a description-logic terminology.
	TBox *dl.TBox
	// Ontonomy is the Bench-Capon/Malcolm signature-level rendering of the
	// same ontonomy, if the caller has one; without it the structural
	// definition of §2 has nothing it could accept.
	Ontonomy *signature.Ontonomy
	// Annotations is a store of type annotations made under the ontonomy.
	Annotations *store.Store
	// TrueClass is the ground truth of usage: for every annotated instance,
	// the class its actual usage belongs to. Required for the pragmatic
	// audit; without it only the annotation counts are reported.
	TrueClass map[string]string
	// Languages are the lexical fields of the community the ontonomy is
	// meant to serve; at least two are needed for the semantic-field audit.
	Languages []*semfield.Language
	// MaxDepth is the maximum unfolding depth for the structural audit
	// (default 3).
	MaxDepth int
}

// DefinitionVerdict is one definition's judgement of the audited artifact.
type DefinitionVerdict struct {
	Definition string
	Accepted   bool
	Reason     string
}

// DefinitionalFinding is the §2 part of the report.
type DefinitionalFinding struct {
	Verdicts []DefinitionVerdict
	// StructuralDefinitionApplicable records whether a signature-level
	// ontonomy was supplied at all.
	StructuralDefinitionApplicable bool
}

// StructuralFinding is the §3 (structural meaning) part of the report.
type StructuralFinding struct {
	// AsWritten is the collision report over definitions as written
	// (depth 0) with concept names erased.
	AsWritten structure.CollisionReport
	// Unfolded is the collision report at MaxDepth.
	Unfolded structure.CollisionReport
	// Curve is the full differentiation curve up to MaxDepth.
	Curve []structure.DifferentiationPoint
	// ShapeOnly is the collision report at MaxDepth with role labels erased
	// as well — the paper's diagram (7) reading.
	ShapeOnly structure.CollisionReport
}

// LanguagePairLoss is the semantic-field audit of one ordered language pair.
type LanguagePairLoss struct {
	Source, Target string
	Divergence     float64
	Atomistic      semfield.LossReport
	FieldRelative  semfield.LossReport
}

// SemanticFinding is the §3 (lexical field) part of the report.
type SemanticFinding struct {
	Pairs []LanguagePairLoss
}

// PragmaticFinding is the §4 part of the report.
type PragmaticFinding struct {
	// Classes is the number of class queries evaluated.
	Classes int
	// AnnotatedInstances is the number of annotated instances in the store.
	AnnotatedInstances int
	// Expanded and Plain are the macro-averaged retrieval quality with and
	// without ontology expansion; they are only meaningful when ground truth
	// was supplied (GroundTruth is true).
	Expanded, Plain store.Aggregate
	GroundTruth     bool
}

// Report is the full audit result.
type Report struct {
	Definitional DefinitionalFinding
	Structural   StructuralFinding
	Semantic     SemanticFinding
	Pragmatic    PragmaticFinding
	// Findings is the human-readable summary, one sentence per finding, in
	// audit order.
	Findings []string
}

// ErrNoTBox is returned by Audit when no TBox is supplied.
var ErrNoTBox = errors.New("core: audit requires a TBox")

// Audit runs every applicable critique over the input and assembles the
// report. Parts of the audit whose inputs are missing are skipped and noted
// in the findings rather than failing the whole audit.
func Audit(in Input) (*Report, error) {
	if in.TBox == nil {
		return nil, ErrNoTBox
	}
	maxDepth := in.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 3
	}
	rep := &Report{}
	auditDefinitional(in, rep)
	auditStructural(in, rep, maxDepth)
	auditSemantic(in, rep)
	auditPragmatic(in, rep)
	return rep, nil
}

// tboxArtifact adapts a bare TBox to the definition.Artifact interface so the
// functional and approximation definitions can judge it even when no
// signature-level ontonomy is supplied.
type tboxArtifact struct {
	tbox *dl.TBox
}

func (a tboxArtifact) Kind() definition.Kind { return definition.KindOntonomy }

func (a tboxArtifact) Symbols() []string {
	set := map[string]bool{}
	for _, n := range a.tbox.DefinedNames() {
		set[n] = true
	}
	for _, n := range a.tbox.PrimitiveNames() {
		set[n] = true
	}
	for _, r := range a.tbox.RoleNames() {
		set[r] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func (a tboxArtifact) Statements() []string {
	defs := a.tbox.Definitions()
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.String()
	}
	return out
}

func auditDefinitional(in Input, rep *Report) {
	var artifact definition.Artifact
	if in.Ontonomy != nil {
		artifact = definition.OntonomyArtifact{Ontonomy: in.Ontonomy}
		rep.Definitional.StructuralDefinitionApplicable = true
	} else {
		artifact = tboxArtifact{tbox: in.TBox}
	}
	accepted := 0
	for _, def := range definition.AllDefinitions() {
		v := def.Accepts(artifact)
		rep.Definitional.Verdicts = append(rep.Definitional.Verdicts, DefinitionVerdict{
			Definition: def.Name,
			Accepted:   v.Accepted,
			Reason:     v.Reason,
		})
		if v.Accepted {
			accepted++
		}
	}
	rep.Findings = append(rep.Findings, fmt.Sprintf(
		"definitional: %d of %d circulating definitions accept the artifact", accepted, len(rep.Definitional.Verdicts)))
	if !rep.Definitional.StructuralDefinitionApplicable {
		rep.Findings = append(rep.Findings,
			"definitional: no signature-level ontonomy was supplied, so the only structural definition (Bench-Capon & Malcolm) has nothing it could accept")
	}
}

func auditStructural(in Input, rep *Report, maxDepth int) {
	rep.Structural.AsWritten = structure.Collisions(in.TBox, 0, structure.EraseConcepts)
	rep.Structural.Unfolded = structure.Collisions(in.TBox, maxDepth, structure.EraseConcepts)
	rep.Structural.ShapeOnly = structure.Collisions(in.TBox, maxDepth, structure.EraseAll)
	rep.Structural.Curve = structure.DifferentiationCurve(in.TBox, maxDepth, structure.EraseConcepts)

	asWritten := rep.Structural.AsWritten
	unfolded := rep.Structural.Unfolded
	if asWritten.CollidingPairs > 0 {
		example := ""
		if len(asWritten.Groups) > 0 {
			example = " (e.g. " + strings.Join(asWritten.Groups[0].Names, " ≅ ") + ")"
		}
		rep.Findings = append(rep.Findings, fmt.Sprintf(
			"structural: %d of %d concept pairs share a structural meaning as written%s",
			asWritten.CollidingPairs, asWritten.TotalPairs, example))
		if unfolded.CollidingPairs > 0 {
			rep.Findings = append(rep.Findings, fmt.Sprintf(
				"structural: unfolding to depth %d still leaves %d colliding pairs; differentiation has not terminated",
				maxDepth, unfolded.CollidingPairs))
		} else {
			rep.Findings = append(rep.Findings, fmt.Sprintf(
				"structural: unfolding to depth %d separates all colliding pairs, at a mean definition size of %.1f nodes",
				maxDepth, rep.Structural.Curve[len(rep.Structural.Curve)-1].MeanTreeSize))
		}
	} else {
		rep.Findings = append(rep.Findings, "structural: no structural-meaning collisions among the definitions as written")
	}
	if rep.Structural.ShapeOnly.CollidingPairs > 0 {
		rep.Findings = append(rep.Findings, fmt.Sprintf(
			"structural: read shape-only (the paper's diagram (7)), %d pairs remain indistinguishable at depth %d",
			rep.Structural.ShapeOnly.CollidingPairs, maxDepth))
	}
	if len(asWritten.Skipped) > 0 {
		rep.Findings = append(rep.Findings, fmt.Sprintf(
			"structural: %d definitions fall outside the conjunctive fragment and were not analyzed (%s)",
			len(asWritten.Skipped), strings.Join(asWritten.Skipped, ", ")))
	}
}

func auditSemantic(in Input, rep *Report) {
	if len(in.Languages) < 2 {
		rep.Findings = append(rep.Findings, "semantic: fewer than two lexical fields supplied; the field audit was skipped")
		return
	}
	worst := 0.0
	for i, src := range in.Languages {
		for j, dst := range in.Languages {
			if i == j {
				continue
			}
			pair := LanguagePairLoss{
				Source:        src.Name(),
				Target:        dst.Name(),
				Divergence:    semfield.Divergence(src, dst),
				Atomistic:     semfield.TranslationLoss(src, dst, semfield.Atomistic),
				FieldRelative: semfield.TranslationLoss(src, dst, semfield.FieldRelative),
			}
			rep.Semantic.Pairs = append(rep.Semantic.Pairs, pair)
			if e := pair.Atomistic.ErrorRate(); e > worst {
				worst = e
			}
		}
	}
	rep.Findings = append(rep.Findings, fmt.Sprintf(
		"semantic: across %d language pairs, an atomistic word-to-word mapping misplaces up to %.0f%% of occurrences that the field structure resolves",
		len(rep.Semantic.Pairs), worst*100))
}

func auditPragmatic(in Input, rep *Report) {
	if in.Annotations == nil {
		rep.Findings = append(rep.Findings, "pragmatic: no annotated store supplied; the retrieval audit was skipped")
		return
	}
	oi, err := store.NewOntologyIndex(in.TBox)
	if err != nil {
		rep.Findings = append(rep.Findings, fmt.Sprintf("pragmatic: the ontology could not be classified (%v); the retrieval audit was skipped", err))
		return
	}
	classes := oi.Classes()
	rep.Pragmatic.Classes = len(classes)
	rep.Pragmatic.AnnotatedInstances = in.Annotations.Count(store.Pattern{Predicate: store.TypePredicate})
	if len(in.TrueClass) == 0 {
		rep.Findings = append(rep.Findings, fmt.Sprintf(
			"pragmatic: %d annotated instances over %d classes; no usage ground truth supplied, so retrieval quality was not scored",
			rep.Pragmatic.AnnotatedInstances, rep.Pragmatic.Classes))
		return
	}
	rep.Pragmatic.GroundTruth = true
	var expanded, plain []store.RetrievalResult
	for _, class := range classes {
		relevant := relevantTo(in.TrueClass, oi, class)
		expanded = append(expanded, store.Evaluate(classInstances(in.Annotations, oi, class), relevant))
		plain = append(plain, store.Evaluate(classInstances(in.Annotations, nil, class), relevant))
	}
	rep.Pragmatic.Expanded = store.Macro(expanded)
	rep.Pragmatic.Plain = store.Macro(plain)
	verdict := "helps"
	if rep.Pragmatic.Expanded.F1 < rep.Pragmatic.Plain.F1 {
		verdict = "hurts"
	}
	rep.Findings = append(rep.Findings, fmt.Sprintf(
		"pragmatic: ontology expansion %s retrieval on this corpus (macro F1 %.3f expanded vs %.3f plain over %d class queries)",
		verdict, rep.Pragmatic.Expanded.F1, rep.Pragmatic.Plain.F1, rep.Pragmatic.Classes))
}

// classInstances answers one class query through the query layer
// (query.Instances), ontology-expanded when an index is supplied. Audited
// classes come from the ontology index, so the query is well-formed by
// construction and an evaluation error is a bug, not an input condition.
func classInstances(s *store.Store, oi *store.OntologyIndex, class string) []string {
	out, err := query.Instances(s, oi, class)
	if err != nil {
		panic(err)
	}
	return out
}

// relevantTo computes the ground-truth answer set of a class query from the
// usage map.
func relevantTo(trueClass map[string]string, oi *store.OntologyIndex, class string) []string {
	wanted := map[string]bool{}
	for _, sub := range oi.Subsumees(class) {
		wanted[sub] = true
	}
	var out []string
	for inst, c := range trueClass {
		if wanted[c] {
			out = append(out, inst)
		}
	}
	sort.Strings(out)
	return out
}

// Render writes the report as human-readable text: the findings first, then
// the per-audit details.
func (r *Report) Render() string {
	var b strings.Builder
	b.WriteString("ONTOLOGY AUDIT\n==============\n\nFindings\n--------\n")
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  - %s\n", f)
	}
	b.WriteString("\nDefinitional audit (§2)\n-----------------------\n")
	for _, v := range r.Definitional.Verdicts {
		status := "rejects"
		if v.Accepted {
			status = "accepts"
		}
		fmt.Fprintf(&b, "  %-36s %s: %s\n", v.Definition, status, v.Reason)
	}
	b.WriteString("\nStructural audit (§3)\n---------------------\n")
	fmt.Fprintf(&b, "  as written: %s", r.Structural.AsWritten.Describe())
	fmt.Fprintf(&b, "  unfolded:   %s", r.Structural.Unfolded.Describe())
	if len(r.Semantic.Pairs) > 0 {
		b.WriteString("\nSemantic-field audit (§3)\n-------------------------\n")
		for _, p := range r.Semantic.Pairs {
			fmt.Fprintf(&b, "  %s → %s  divergence %.3f  atomistic %.3f  field-relative %.3f\n",
				p.Source, p.Target, p.Divergence, p.Atomistic.ErrorRate(), p.FieldRelative.ErrorRate())
		}
	}
	if r.Pragmatic.Classes > 0 {
		b.WriteString("\nPragmatic audit (§4)\n--------------------\n")
		fmt.Fprintf(&b, "  %d annotated instances, %d classes\n", r.Pragmatic.AnnotatedInstances, r.Pragmatic.Classes)
		if r.Pragmatic.GroundTruth {
			fmt.Fprintf(&b, "  expanded: %s\n  plain:    %s\n", r.Pragmatic.Expanded, r.Pragmatic.Plain)
		}
	}
	return b.String()
}
