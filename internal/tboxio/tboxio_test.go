package tboxio

import (
	"strings"
	"testing"
	"testing/quick"

	"math/rand"

	"repro/internal/dl"
	"repro/internal/workload"
)

const paperText = `
# the paper's eq. (4) and (8)
car           <= motorvehicle and roadvehicle and exists size.small
pickup        <= motorvehicle and roadvehicle and exists size.big
motorvehicle  <= exists uses.gasoline
roadvehicle   <= atleast 4 has.wheels

dog           <= animal and quadruped and exists size.small
horse         <= animal and quadruped and exists size.big
animal        <= exists ingests.food
quadruped     <= atleast 4 has.leg
`

func TestParsePaperText(t *testing.T) {
	tb, err := ParseString(paperText)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tb.DefinedNames()); got != 8 {
		t.Fatalf("parsed %d definitions, want 8", got)
	}
	d, ok := tb.Definition("car")
	if !ok {
		t.Fatal("car not defined")
	}
	if d.Kind != dl.SubsumedBy {
		t.Errorf("car kind = %v, want SubsumedBy", d.Kind)
	}
	conjuncts := d.Concept.Conjuncts()
	if len(conjuncts) != 3 {
		t.Fatalf("car has %d conjuncts, want 3", len(conjuncts))
	}
	rv, _ := tb.Definition("roadvehicle")
	if rv.Concept.Op != dl.OpAtLeast || rv.Concept.N != 4 || rv.Concept.Role != "has" {
		t.Errorf("roadvehicle parsed as %s, want ≥4 has.wheels", rv.Concept)
	}
}

func TestParseEquivalentAndNesting(t *testing.T) {
	tb, err := ParseString(`
wheel == round and exists made-of.rubber
bicycle == vehicle and atleast 2 part.(wheel and exists made-of.rubber) and top
`)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := tb.Definition("wheel")
	if w.Kind != dl.Equivalent {
		t.Errorf("wheel kind = %v, want Equivalent", w.Kind)
	}
	b, _ := tb.Definition("bicycle")
	var nested *dl.Concept
	for _, c := range b.Concept.Conjuncts() {
		if c.Op == dl.OpAtLeast {
			nested = c
		}
	}
	if nested == nil {
		t.Fatal("bicycle lost its atleast conjunct")
	}
	if nested.N != 2 || nested.Role != "part" {
		t.Errorf("nested restriction = %s", nested)
	}
	if len(nested.Args[0].Conjuncts()) != 2 {
		t.Errorf("nested filler should have 2 conjuncts, got %s", nested.Args[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing separator": "car motorvehicle",
		"missing name":      "<= motorvehicle",
		"missing body":      "car <=",
		"name with spaces":  "the car <= motorvehicle",
		"empty conjunct":    "car <= motorvehicle and",
		"bad restriction":   "car <= exists size",
		"bad atleast count": "car <= atleast zero has.wheels",
		"atleast no rest":   "car <= atleast 4",
		"unbalanced paren":  "car <= exists part.(wheel",
		"role with paren":   "car <= exists si(ze.small",
		"duplicate name":    "car <= a\ncar <= b",
		"stray dot":         "car <= motor.vehicle extra",
		"negative atleast":  "car <= atleast -1 has.wheels",
		"empty filler":      "car <= exists size.",
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseString(text); err == nil {
				t.Errorf("ParseString(%q) accepted invalid input", text)
			}
		})
	}
}

func TestParseIgnoresCommentsAndBlankLines(t *testing.T) {
	tb, err := ParseString("\n# a comment\n\ncar <= vehicle\n   \n")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.DefinedNames()) != 1 {
		t.Errorf("parsed %d definitions, want 1", len(tb.DefinedNames()))
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	tb, err := ParseString(paperText)
	if err != nil {
		t.Fatal(err)
	}
	text, err := SerializeString(tb)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parsing serialized text: %v\n%s", err, text)
	}
	for _, name := range tb.DefinedNames() {
		orig, _ := tb.Definition(name)
		copy_, ok := back.Definition(name)
		if !ok {
			t.Fatalf("definition %s lost in round trip", name)
		}
		if !orig.Concept.Equal(copy_.Concept) || orig.Kind != copy_.Kind {
			t.Errorf("round trip changed %s: %s vs %s", name, orig.Concept, copy_.Concept)
		}
	}
}

func TestSerializeRejectsNonConjunctive(t *testing.T) {
	tb := dl.NewTBox()
	tb.MustDefine("weird", dl.Equivalent, dl.Not(dl.Atomic("a")))
	if _, err := SerializeString(tb); err == nil {
		t.Error("Serialize accepted a non-conjunctive TBox")
	}
}

func TestSerializeTopBody(t *testing.T) {
	tb := dl.NewTBox()
	tb.MustDefine("anything", dl.SubsumedBy, dl.Top())
	text, err := SerializeString(tb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "anything <= top") {
		t.Errorf("serialization of ⊤ body = %q", text)
	}
	back, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := back.Definition("anything")
	if d.Concept.Op != dl.OpTop {
		t.Errorf("round trip of ⊤ body = %s", d.Concept)
	}
}

// TestRoundTripRandomTBoxes is the property test: every TBox the workload
// generator produces survives a serialize→parse round trip unchanged.
func TestRoundTripRandomTBoxes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := workload.RandomTBox(rng, workload.DefaultTBoxParams(12, 10, 3))
		text, err := SerializeString(tb)
		if err != nil {
			return false
		}
		back, err := ParseString(text)
		if err != nil {
			return false
		}
		for _, name := range tb.DefinedNames() {
			orig, _ := tb.Definition(name)
			copy_, ok := back.Definition(name)
			if !ok || !orig.Concept.Equal(copy_.Concept) || orig.Kind != copy_.Kind {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
