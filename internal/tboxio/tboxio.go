// Package tboxio reads and writes the small text format used by
// cmd/ontoaudit to describe TBoxes. The format covers exactly the conjunctive
// fragment the paper's examples are written in:
//
//	# the paper's eq. (4)
//	car           <= motorvehicle and roadvehicle and exists size.small
//	pickup        <= motorvehicle and roadvehicle and exists size.big
//	motorvehicle  <= exists uses.gasoline
//	roadvehicle   <= atleast 4 has.wheels
//
// One definition per line; "<=" introduces a primitive definition (⊑) and
// "==" a full definition (≡). A body is a conjunction ("and") of atoms,
// "exists role.Concept", "atleast N role.Concept", and "top". Nested fillers
// may be parenthesized: "exists part.(wheel and exists made-of.rubber)".
// Blank lines and lines starting with '#' are ignored.
package tboxio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dl"
)

// Parse reads a TBox from the text format.
func Parse(r io.Reader) (*dl.TBox, error) {
	tb := dl.NewTBox()
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, kind, body, err := splitDefinition(line)
		if err != nil {
			return nil, fmt.Errorf("tboxio: line %d: %w", lineNo, err)
		}
		concept, err := parseConcept(body)
		if err != nil {
			return nil, fmt.Errorf("tboxio: line %d: %w", lineNo, err)
		}
		if err := tb.Define(name, kind, concept); err != nil {
			return nil, fmt.Errorf("tboxio: line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("tboxio: %w", err)
	}
	return tb, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*dl.TBox, error) {
	return Parse(strings.NewReader(s))
}

// splitDefinition separates "name <= body" or "name == body".
func splitDefinition(line string) (string, dl.DefinitionKind, string, error) {
	for _, sep := range []struct {
		token string
		kind  dl.DefinitionKind
	}{{"<=", dl.SubsumedBy}, {"==", dl.Equivalent}} {
		if idx := strings.Index(line, sep.token); idx >= 0 {
			name := strings.TrimSpace(line[:idx])
			body := strings.TrimSpace(line[idx+len(sep.token):])
			if name == "" {
				return "", 0, "", fmt.Errorf("missing defined name before %q", sep.token)
			}
			if strings.ContainsAny(name, " \t") {
				return "", 0, "", fmt.Errorf("defined name %q contains whitespace", name)
			}
			if body == "" {
				return "", 0, "", fmt.Errorf("missing body after %q", sep.token)
			}
			return name, sep.kind, body, nil
		}
	}
	return "", 0, "", fmt.Errorf("no '<=' or '==' in definition %q", line)
}

// parseConcept parses a conjunction of conjuncts.
func parseConcept(s string) (*dl.Concept, error) {
	parts, err := splitTopLevel(s, " and ")
	if err != nil {
		return nil, err
	}
	conjuncts := make([]*dl.Concept, 0, len(parts))
	for _, part := range parts {
		c, err := parseConjunct(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		conjuncts = append(conjuncts, c)
	}
	return dl.And(conjuncts...), nil
}

// parseConjunct parses one conjunct: an atom, top, exists, or atleast.
func parseConjunct(s string) (*dl.Concept, error) {
	switch {
	case s == "":
		return nil, fmt.Errorf("empty conjunct")
	case s == "top":
		return dl.Top(), nil
	case strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")"):
		return parseConcept(strings.TrimSpace(s[1 : len(s)-1]))
	case strings.HasPrefix(s, "exists "):
		role, filler, err := parseRestriction(strings.TrimSpace(strings.TrimPrefix(s, "exists ")))
		if err != nil {
			return nil, err
		}
		return dl.Exists(role, filler), nil
	case strings.HasPrefix(s, "atleast "):
		rest := strings.TrimSpace(strings.TrimPrefix(s, "atleast "))
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("atleast needs a count and a restriction, got %q", s)
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid atleast count %q", fields[0])
		}
		role, filler, err := parseRestriction(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, err
		}
		return dl.AtLeast(n, role, filler), nil
	case strings.ContainsAny(s, " ."):
		return nil, fmt.Errorf("cannot parse conjunct %q", s)
	default:
		return dl.Atomic(s), nil
	}
}

// parseRestriction parses "role.filler" where filler is an atom or a
// parenthesized concept.
func parseRestriction(s string) (string, *dl.Concept, error) {
	idx := strings.Index(s, ".")
	if idx <= 0 {
		return "", nil, fmt.Errorf("restriction %q needs the form role.Concept", s)
	}
	role := strings.TrimSpace(s[:idx])
	if strings.ContainsAny(role, " ()") {
		return "", nil, fmt.Errorf("invalid role name %q", role)
	}
	fillerText := strings.TrimSpace(s[idx+1:])
	if fillerText == "" {
		return "", nil, fmt.Errorf("restriction %q has no filler", s)
	}
	filler, err := parseConjunct(fillerText)
	if err != nil {
		return "", nil, err
	}
	return role, filler, nil
}

// splitTopLevel splits s on the separator, ignoring occurrences inside
// parentheses.
func splitTopLevel(s, sep string) ([]string, error) {
	var parts []string
	depth := 0
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced ')' in %q", s)
			}
		}
		if depth == 0 && i+len(sep) <= len(s) && s[i:i+len(sep)] == sep {
			parts = append(parts, s[last:i])
			last = i + len(sep)
			i += len(sep) - 1
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced '(' in %q", s)
	}
	parts = append(parts, s[last:])
	return parts, nil
}

// Serialize writes a TBox in the text format, one definition per line in
// name order. Definitions outside the conjunctive fragment are rejected.
func Serialize(w io.Writer, tb *dl.TBox) error {
	names := tb.DefinedNames()
	sort.Strings(names)
	for _, name := range names {
		d, _ := tb.Definition(name)
		body, err := serializeConcept(d.Concept)
		if err != nil {
			return fmt.Errorf("tboxio: definition of %s: %w", name, err)
		}
		sep := "<="
		if d.Kind == dl.Equivalent {
			sep = "=="
		}
		if _, err := fmt.Fprintf(w, "%s %s %s\n", name, sep, body); err != nil {
			return err
		}
	}
	return nil
}

// SerializeString is Serialize into a string.
func SerializeString(tb *dl.TBox) (string, error) {
	var b strings.Builder
	if err := Serialize(&b, tb); err != nil {
		return "", err
	}
	return b.String(), nil
}

// serializeConcept renders a conjunctive concept in the text syntax.
func serializeConcept(c *dl.Concept) (string, error) {
	if !c.IsConjunctive() {
		return "", dl.ErrNotConjunctive
	}
	conjuncts := c.Conjuncts()
	parts := make([]string, 0, len(conjuncts))
	for _, conj := range conjuncts {
		part, err := serializeConjunct(conj)
		if err != nil {
			return "", err
		}
		parts = append(parts, part)
	}
	if len(parts) == 0 {
		return "top", nil
	}
	return strings.Join(parts, " and "), nil
}

func serializeConjunct(c *dl.Concept) (string, error) {
	switch c.Op {
	case dl.OpTop:
		return "top", nil
	case dl.OpAtomic:
		return c.Name, nil
	case dl.OpExists, dl.OpAtLeast:
		filler, err := serializeConcept(c.Args[0])
		if err != nil {
			return "", err
		}
		if fillerNeedsParens(c.Args[0]) {
			filler = "(" + filler + ")"
		}
		if c.Op == dl.OpAtLeast {
			return fmt.Sprintf("atleast %d %s.%s", c.N, c.Role, filler), nil
		}
		return fmt.Sprintf("exists %s.%s", c.Role, filler), nil
	default:
		return "", dl.ErrNotConjunctive
	}
}

// fillerNeedsParens reports whether a filler must be parenthesized: anything
// that is not a single atom or top.
func fillerNeedsParens(c *dl.Concept) bool {
	return !(c.Op == dl.OpAtomic || c.Op == dl.OpTop)
}
