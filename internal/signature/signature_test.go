package signature

import (
	"strings"
	"testing"

	"repro/internal/algebra"
)

// sizeDomain builds a tiny data domain with a Size sort carrying the values
// small and big, mirroring the paper's vehicle examples.
func sizeDomain(t testing.TB) *algebra.DataDomain {
	t.Helper()
	sig := algebra.NewSignature()
	sig.AddSort("Size")
	sig.AddSort("Count")
	must := func(op algebra.Operator) {
		if err := sig.AddOperator(op); err != nil {
			t.Fatalf("AddOperator: %v", err)
		}
	}
	must(algebra.Operator{Name: "small", Result: "Size"})
	must(algebra.Operator{Name: "big", Result: "Size"})
	must(algebra.Operator{Name: "four", Result: "Count"})
	th, err := algebra.NewTheory(sig, nil)
	if err != nil {
		t.Fatalf("NewTheory: %v", err)
	}
	m := algebra.NewModel(sig)
	m.SetCarrier("Size", []algebra.Value{"small", "big"})
	m.SetCarrier("Count", []algebra.Value{"four"})
	m.DefineOp("small", nil, "small")
	m.DefineOp("big", nil, "big")
	m.DefineOp("four", nil, "four")
	dd, err := algebra.NewDataDomain(th, m)
	if err != nil {
		t.Fatalf("NewDataDomain: %v", err)
	}
	return dd
}

// vehicleSig builds the paper's §3 vehicle ontology signature: car and pickup
// below motorvehicle and roadvehicle, with size and wheel attributes.
func vehicleSig(t testing.TB) *Signature {
	t.Helper()
	s := New(sizeDomain(t))
	for _, c := range []Class{"vehicle", "motorvehicle", "roadvehicle", "car", "pickup", "fuel"} {
		s.AddClass(c)
	}
	must := func(err error) {
		if err != nil {
			t.Fatalf("building vehicle signature: %v", err)
		}
	}
	must(s.AddSubclass("motorvehicle", "vehicle"))
	must(s.AddSubclass("roadvehicle", "vehicle"))
	must(s.AddSubclass("car", "motorvehicle"))
	must(s.AddSubclass("car", "roadvehicle"))
	must(s.AddSubclass("pickup", "motorvehicle"))
	must(s.AddSubclass("pickup", "roadvehicle"))
	must(s.DeclareAttribute(Attribute{Name: "size", Owner: "vehicle", Target: SortTarget("Size")}))
	must(s.DeclareAttribute(Attribute{Name: "uses", Owner: "motorvehicle", Target: ClassTarget("fuel")}))
	must(s.DeclareAttribute(Attribute{Name: "wheels", Owner: "roadvehicle", Target: SortTarget("Count")}))
	return s
}

func TestSubclassAndAttributes(t *testing.T) {
	s := vehicleSig(t)
	if !s.Subclass("car", "vehicle") {
		t.Error("car should be a subclass of vehicle (transitively)")
	}
	if s.Subclass("vehicle", "car") {
		t.Error("vehicle is not a subclass of car")
	}
	attrs := s.AttributesOf("car")
	names := map[string]bool{}
	for _, a := range attrs {
		names[a.Name] = true
	}
	for _, want := range []string{"size", "uses", "wheels"} {
		if !names[want] {
			t.Errorf("car should inherit attribute %q, got %v", want, attrs)
		}
	}
	if got := len(s.AttributesOf("fuel")); got != 0 {
		t.Errorf("fuel should have no attributes, got %d", got)
	}
}

func TestDeclareAttributeValidation(t *testing.T) {
	s := vehicleSig(t)
	if err := s.DeclareAttribute(Attribute{Name: "x", Owner: "nope", Target: SortTarget("Size")}); err == nil {
		t.Error("attribute on unknown class should be rejected")
	}
	if err := s.DeclareAttribute(Attribute{Name: "x", Owner: "car", Target: ClassTarget("nope")}); err == nil {
		t.Error("attribute with unknown class target should be rejected")
	}
	if err := s.DeclareAttribute(Attribute{Name: "x", Owner: "car", Target: SortTarget("Nope")}); err == nil {
		t.Error("attribute with unknown sort target should be rejected")
	}
	if err := s.DeclareAttribute(Attribute{Name: "size", Owner: "vehicle", Target: SortTarget("Size")}); err == nil {
		t.Error("duplicate attribute declaration should be rejected")
	}
}

func TestFamilyAndInheritanceCondition(t *testing.T) {
	s := vehicleSig(t)
	// A[car][Size] must include the size attribute inherited from vehicle.
	fam := s.Family("car", SortTarget("Size"))
	if len(fam) != 1 || fam[0] != "size" {
		t.Errorf("Family(car, Size) = %v, want [size]", fam)
	}
	// A[vehicle][fuel] contains nothing; A[car][fuel] contains uses.
	if got := s.Family("vehicle", ClassTarget("fuel")); len(got) != 0 {
		t.Errorf("Family(vehicle, fuel) = %v, want empty", got)
	}
	if got := s.Family("car", ClassTarget("fuel")); len(got) != 1 || got[0] != "uses" {
		t.Errorf("Family(car, fuel) = %v, want [uses]", got)
	}
	if err := s.CheckInheritanceCondition(); err != nil {
		t.Errorf("inheritance condition should hold by construction: %v", err)
	}
}

func TestTargetHelpers(t *testing.T) {
	ct := ClassTarget("car")
	st := SortTarget("Size")
	if !ct.IsClass() || st.IsClass() {
		t.Error("IsClass misreports")
	}
	if ct.String() != "car" || st.String() != "Size" {
		t.Error("Target.String misrenders")
	}
}

func TestNewOntonomyValidation(t *testing.T) {
	s := vehicleSig(t)
	if _, err := NewOntonomy(s, []Axiom{{Kind: AxiomDisjoint, A: "car", B: "spaceship"}}); err == nil {
		t.Error("axiom with unknown class should be rejected")
	}
	if _, err := NewOntonomy(s, []Axiom{{Kind: AxiomAttributeRequired, A: "fuel", Attr: "size"}}); err == nil {
		t.Error("axiom requiring an attribute not applicable to the class should be rejected")
	}
	if _, err := NewOntonomy(s, []Axiom{{Kind: AxiomCover, A: "vehicle", Classes: []Class{"car", "ghost"}}}); err == nil {
		t.Error("cover axiom with unknown class should be rejected")
	}
	o, err := NewOntonomy(s, []Axiom{
		{Kind: AxiomDisjoint, A: "car", B: "pickup"},
		{Kind: AxiomAttributeRequired, A: "car", Attr: "size"},
	})
	if err != nil {
		t.Fatalf("valid ontonomy rejected: %v", err)
	}
	if len(o.Axioms) != 2 {
		t.Errorf("Axioms len = %d", len(o.Axioms))
	}
}

func carOntonomy(t testing.TB) *Ontonomy {
	s := vehicleSig(t)
	o, err := NewOntonomy(s, []Axiom{
		{Kind: AxiomDisjoint, A: "car", B: "pickup"},
		{Kind: AxiomAttributeRequired, A: "car", Attr: "size"},
		{Kind: AxiomAttributeValueIn, A: "car", Attr: "size", Values: []string{"small"}},
		{Kind: AxiomMinInstances, A: "fuel", N: 1},
		{Kind: AxiomMaxInstances, A: "pickup", N: 2},
		{Kind: AxiomCover, A: "motorvehicle", Classes: []Class{"car", "pickup"}},
	})
	if err != nil {
		t.Fatalf("carOntonomy: %v", err)
	}
	return o
}

// goodInterp builds an interpretation satisfying carOntonomy.
func goodInterp() *Interpretation {
	in := NewInterpretation()
	in.AddMember("fuel", "gasoline")
	in.AddMember("car", "fiat500")
	in.AddMember("pickup", "hilux")
	in.SetValue("fiat500", "size", "small")
	in.SetValue("fiat500", "uses", "gasoline")
	in.SetValue("fiat500", "wheels", "four")
	in.SetValue("hilux", "size", "big")
	return in
}

func TestCheckModelSatisfied(t *testing.T) {
	o := carOntonomy(t)
	in := goodInterp()
	if violations := o.Check(in); len(violations) != 0 {
		t.Fatalf("expected model, got violations: %v", violations)
	}
	if !o.IsModel(in) {
		t.Error("IsModel should be true")
	}
}

func TestCheckDisjointViolation(t *testing.T) {
	o := carOntonomy(t)
	in := goodInterp()
	in.AddMember("pickup", "fiat500") // same instance in both classes
	found := false
	for _, v := range o.Check(in) {
		if strings.Contains(v.Axiom, "disjoint") {
			found = true
		}
	}
	if !found {
		t.Error("expected a disjointness violation")
	}
}

func TestCheckRequiredAttributeViolation(t *testing.T) {
	o := carOntonomy(t)
	in := goodInterp()
	in.AddMember("car", "mystery") // no size value
	found := false
	for _, v := range o.Check(in) {
		if strings.Contains(v.Axiom, "required") && v.Subject == "mystery" {
			found = true
		}
	}
	if !found {
		t.Error("expected a required-attribute violation for the new car")
	}
}

func TestCheckValueInViolation(t *testing.T) {
	o := carOntonomy(t)
	in := goodInterp()
	in.SetValue("fiat500", "size", "big")
	found := false
	for _, v := range o.Check(in) {
		if strings.Contains(v.Axiom, "valuesIn") {
			found = true
		}
	}
	if !found {
		t.Error("expected a value-in violation when a car is big")
	}
}

func TestCheckCardinalityViolations(t *testing.T) {
	o := carOntonomy(t)
	in := goodInterp()
	in.AddMember("pickup", "ranger")
	in.AddMember("pickup", "tundra")
	in.SetValue("ranger", "size", "big")
	in.SetValue("tundra", "size", "big")
	foundMax := false
	for _, v := range o.Check(in) {
		if strings.Contains(v.Axiom, "maxInstances") {
			foundMax = true
		}
	}
	if !foundMax {
		t.Error("expected a max-instances violation with three pickups")
	}
	empty := NewInterpretation()
	foundMin := false
	for _, v := range o.Check(empty) {
		if strings.Contains(v.Axiom, "minInstances") {
			foundMin = true
		}
	}
	if !foundMin {
		t.Error("expected a min-instances violation for fuel in the empty interpretation")
	}
}

func TestCheckCoverViolation(t *testing.T) {
	o := carOntonomy(t)
	in := goodInterp()
	in.AddMember("motorvehicle", "tractor") // neither car nor pickup
	found := false
	for _, v := range o.Check(in) {
		if strings.Contains(v.Axiom, "cover") && v.Subject == "tractor" {
			found = true
		}
	}
	if !found {
		t.Error("expected a cover violation for the tractor")
	}
}

func TestCheckStructuralViolations(t *testing.T) {
	o := carOntonomy(t)
	in := goodInterp()
	in.SetValue("fiat500", "uses", "water") // not an instance of fuel
	in.SetValue("hilux", "wheels", "three") // not in the Count carrier
	var structural int
	for _, v := range o.Check(in) {
		if v.Axiom == "structure" {
			structural++
		}
	}
	if structural != 2 {
		t.Errorf("expected 2 structural violations, got %d", structural)
	}
}

func TestMembersOfIncludesSubclasses(t *testing.T) {
	s := vehicleSig(t)
	in := NewInterpretation()
	in.AddMember("car", "fiat500")
	in.AddMember("pickup", "hilux")
	members := in.MembersOf(s, "vehicle")
	if len(members) != 2 {
		t.Errorf("MembersOf(vehicle) = %v, want both instances", members)
	}
	in.AddMember("car", "fiat500") // duplicate AddMember is idempotent
	if got := len(in.Members["car"]); got != 1 {
		t.Errorf("duplicate AddMember stored: %d members", got)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Axiom: "required(car.size)", Detail: "missing", Subject: "x"}
	if !strings.Contains(v.String(), "instance x") {
		t.Errorf("Violation.String = %q", v.String())
	}
	v2 := Violation{Axiom: "minInstances", Detail: "too few"}
	if strings.Contains(v2.String(), "instance") {
		t.Errorf("subject-less violation should not mention an instance: %q", v2.String())
	}
}

func TestAxiomKindStrings(t *testing.T) {
	kinds := []AxiomKind{AxiomDisjoint, AxiomAttributeRequired, AxiomAttributeValueIn, AxiomMinInstances, AxiomMaxInstances, AxiomCover}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("AxiomKind(%d).String() = %q not distinct", int(k), s)
		}
		seen[s] = true
	}
	if AxiomKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func BenchmarkOntonomyCheck(b *testing.B) {
	o := carOntonomy(b)
	in := goodInterp()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !o.IsModel(in) {
			b.Fatal("expected a model")
		}
	}
}
