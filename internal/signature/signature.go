// Package signature implements the Bench-Capon and Malcolm formalization of
// ontologies that the paper's §2 singles out as "the most promising attempt at
// a definition of an ontonomy": ontology signatures over order-sorted data
// domains, ontonomies as signatures paired with axioms, and finite
// interpretations (models) with a satisfaction check.
//
// Following the paper's Definition 1, an ontology signature is a triple
// (D, C, A) where D is a data domain (an order-sorted equational theory with
// a model, from package algebra), C is a partial order of classes, and A is a
// family of attribute-symbol sets A[c][e] indexed by a class c and a target e
// that is either a class or a sort, subject to the inheritance condition
//
//	A[c'][e] ⊆ A[c][e']   whenever c ≤ c' and e ≤ e'.
//
// An ontonomy is an ontology signature together with a set of axioms; a model
// of the ontonomy is an interpretation of the signature that satisfies the
// axioms.
package signature

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/order"
)

// Class is the name of a class in the class hierarchy.
type Class string

// Target is the target of an attribute: either a class or a sort of the data
// domain. Exactly one of Class and Sort is non-empty.
type Target struct {
	Class Class
	Sort  algebra.Sort
}

// ClassTarget returns a Target naming a class.
func ClassTarget(c Class) Target { return Target{Class: c} }

// SortTarget returns a Target naming a data sort.
func SortTarget(s algebra.Sort) Target { return Target{Sort: s} }

// IsClass reports whether the target is a class.
func (t Target) IsClass() bool { return t.Class != "" }

// String renders the target.
func (t Target) String() string {
	if t.IsClass() {
		return string(t.Class)
	}
	return string(t.Sort)
}

// Attribute is a named attribute symbol declared on a class with a target.
type Attribute struct {
	Name   string
	Owner  Class
	Target Target
}

// Signature is an ontology signature (D, C, A).
type Signature struct {
	domain  *algebra.DataDomain
	classes *order.Poset[Class]
	attrs   []Attribute
}

// New creates an ontology signature over the given data domain with an empty
// class hierarchy.
func New(domain *algebra.DataDomain) *Signature {
	return &Signature{domain: domain, classes: order.New[Class]()}
}

// Domain returns the underlying data domain.
func (s *Signature) Domain() *algebra.DataDomain { return s.domain }

// Classes returns the class hierarchy poset.
func (s *Signature) Classes() *order.Poset[Class] { return s.classes }

// AddClass declares a class.
func (s *Signature) AddClass(c Class) { s.classes.Add(c) }

// AddSubclass declares sub ≤ super in the class hierarchy.
func (s *Signature) AddSubclass(sub, super Class) error {
	return s.classes.Relate(sub, super)
}

// Subclass reports whether a ≤ b in the class hierarchy.
func (s *Signature) Subclass(a, b Class) bool { return s.classes.Leq(a, b) }

// DeclareAttribute declares an attribute symbol on a class with a target.
// The owner class must exist; a class target must exist in the hierarchy and
// a sort target must exist in the data domain's signature.
func (s *Signature) DeclareAttribute(a Attribute) error {
	if !s.classes.Contains(a.Owner) {
		return fmt.Errorf("signature: attribute %q declared on unknown class %q", a.Name, a.Owner)
	}
	if a.Target.IsClass() {
		if !s.classes.Contains(a.Target.Class) {
			return fmt.Errorf("signature: attribute %q targets unknown class %q", a.Name, a.Target.Class)
		}
	} else {
		if !s.domain.Theory.Sig.SortOrder().Contains(a.Target.Sort) {
			return fmt.Errorf("signature: attribute %q targets unknown sort %q", a.Name, a.Target.Sort)
		}
	}
	for _, existing := range s.attrs {
		if existing.Name == a.Name && existing.Owner == a.Owner {
			return fmt.Errorf("signature: attribute %q already declared on class %q", a.Name, a.Owner)
		}
	}
	s.attrs = append(s.attrs, a)
	return nil
}

// Attributes returns all declared attributes, sorted by owner then name.
func (s *Signature) Attributes() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Owner != out[j].Owner {
			return out[i].Owner < out[j].Owner
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// AttributesOf returns the attributes applicable to class c: those declared
// on c or on any superclass of c (the inheritance induced by the Definition 1
// condition).
func (s *Signature) AttributesOf(c Class) []Attribute {
	var out []Attribute
	for _, a := range s.Attributes() {
		if s.classes.Leq(c, a.Owner) {
			out = append(out, a)
		}
	}
	return out
}

// Family returns A[c][target-name] as the set of attribute names declared on
// or inherited by class c with targets at or below the given target. It is
// the explicit attribute family of Definition 1.
func (s *Signature) Family(c Class, target Target) []string {
	var out []string
	for _, a := range s.AttributesOf(c) {
		if s.targetLeq(a.Target, target) {
			out = append(out, a.Name)
		}
	}
	sort.Strings(out)
	return out
}

// targetLeq reports whether target a ≤ target b: both are classes related in
// the class hierarchy, or both are sorts related in the sub-sort order.
func (s *Signature) targetLeq(a, b Target) bool {
	if a.IsClass() != b.IsClass() {
		return false
	}
	if a.IsClass() {
		return s.classes.Leq(a.Class, b.Class)
	}
	return s.domain.Theory.Sig.Subsort(a.Sort, b.Sort)
}

// CheckInheritanceCondition verifies the Definition 1 condition: for all
// classes c ≤ c' and targets e ≤ e', A[c'][e] ⊆ A[c][e']. With the inherited
// family computed by Family this holds by construction; the check exists to
// validate signatures whose attribute families are supplied externally (for
// example by the workload generators) and to support property-based testing.
func (s *Signature) CheckInheritanceCondition() error {
	classes := s.classes.Elements()
	targets := s.allTargets()
	for _, c := range classes {
		for _, cp := range classes {
			if !s.classes.Leq(c, cp) {
				continue
			}
			for _, e := range targets {
				for _, ep := range targets {
					if !s.targetLeq(e, ep) {
						continue
					}
					upper := s.Family(cp, e)
					lower := toSet(s.Family(c, ep))
					for _, name := range upper {
						if !lower[name] {
							return fmt.Errorf("signature: inheritance condition violated: %q in A[%s][%s] but not in A[%s][%s]",
								name, cp, e, c, ep)
						}
					}
				}
			}
		}
	}
	return nil
}

func (s *Signature) allTargets() []Target {
	var out []Target
	for _, c := range s.classes.Elements() {
		out = append(out, ClassTarget(c))
	}
	for _, srt := range s.domain.Theory.Sig.Sorts() {
		out = append(out, SortTarget(srt))
	}
	return out
}

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

// AxiomKind distinguishes the axiom forms supported by ontonomies.
type AxiomKind int

// Supported axiom kinds.
const (
	// AxiomDisjoint requires the instance sets of classes A and B to be
	// disjoint.
	AxiomDisjoint AxiomKind = iota
	// AxiomAttributeRequired requires every instance of class A to have a
	// defined value for attribute Attr.
	AxiomAttributeRequired
	// AxiomAttributeValueIn requires every defined value of Attr on
	// instances of class A to be one of Values.
	AxiomAttributeValueIn
	// AxiomMinInstances requires class A to have at least N instances.
	AxiomMinInstances
	// AxiomMaxInstances requires class A to have at most N instances.
	AxiomMaxInstances
	// AxiomCover requires every instance of class A to be an instance of at
	// least one class in Classes.
	AxiomCover
)

// String names the axiom kind.
func (k AxiomKind) String() string {
	switch k {
	case AxiomDisjoint:
		return "disjoint"
	case AxiomAttributeRequired:
		return "attribute-required"
	case AxiomAttributeValueIn:
		return "attribute-value-in"
	case AxiomMinInstances:
		return "min-instances"
	case AxiomMaxInstances:
		return "max-instances"
	case AxiomCover:
		return "cover"
	default:
		return fmt.Sprintf("axiom(%d)", int(k))
	}
}

// Axiom is a constraint over interpretations of an ontology signature.
type Axiom struct {
	Kind    AxiomKind
	A, B    Class
	Attr    string
	Values  []string
	N       int
	Classes []Class
	Label   string
}

// String renders the axiom.
func (a Axiom) String() string {
	switch a.Kind {
	case AxiomDisjoint:
		return fmt.Sprintf("disjoint(%s, %s)", a.A, a.B)
	case AxiomAttributeRequired:
		return fmt.Sprintf("required(%s.%s)", a.A, a.Attr)
	case AxiomAttributeValueIn:
		return fmt.Sprintf("valuesIn(%s.%s, %v)", a.A, a.Attr, a.Values)
	case AxiomMinInstances:
		return fmt.Sprintf("minInstances(%s, %d)", a.A, a.N)
	case AxiomMaxInstances:
		return fmt.Sprintf("maxInstances(%s, %d)", a.A, a.N)
	case AxiomCover:
		return fmt.Sprintf("cover(%s, %v)", a.A, a.Classes)
	default:
		return "unknown axiom"
	}
}

// Ontonomy pairs an ontology signature with a set of axioms. This is the
// artifact the paper proposes to call "ontonomy" rather than "ontology".
type Ontonomy struct {
	Sig    *Signature
	Axioms []Axiom
}

// NewOntonomy validates that every axiom refers only to declared classes and
// attributes and returns the ontonomy.
func NewOntonomy(sig *Signature, axioms []Axiom) (*Ontonomy, error) {
	for _, ax := range axioms {
		if err := validateAxiom(sig, ax); err != nil {
			return nil, err
		}
	}
	return &Ontonomy{Sig: sig, Axioms: append([]Axiom(nil), axioms...)}, nil
}

func validateAxiom(sig *Signature, ax Axiom) error {
	checkClass := func(c Class) error {
		if c != "" && !sig.classes.Contains(c) {
			return fmt.Errorf("signature: axiom %s refers to unknown class %q", ax, c)
		}
		return nil
	}
	if err := checkClass(ax.A); err != nil {
		return err
	}
	if err := checkClass(ax.B); err != nil {
		return err
	}
	for _, c := range ax.Classes {
		if err := checkClass(c); err != nil {
			return err
		}
	}
	if ax.Kind == AxiomAttributeRequired || ax.Kind == AxiomAttributeValueIn {
		found := false
		for _, a := range sig.AttributesOf(ax.A) {
			if a.Name == ax.Attr {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("signature: axiom %s refers to attribute %q not applicable to class %q", ax, ax.Attr, ax.A)
		}
	}
	return nil
}

// Instance is an individual in an interpretation, identified by name.
type Instance string

// Interpretation is a finite model candidate for an ontology signature: a set
// of instances per class and attribute value assignments. Attribute values
// are strings; for class-targeted attributes they name instances, for
// sort-targeted attributes they name data-domain carrier values.
type Interpretation struct {
	Members map[Class][]Instance
	// Values[instance][attribute] = value
	Values map[Instance]map[string]string
}

// NewInterpretation returns an empty interpretation ready for population.
func NewInterpretation() *Interpretation {
	return &Interpretation{
		Members: map[Class][]Instance{},
		Values:  map[Instance]map[string]string{},
	}
}

// AddMember adds an instance to a class (and, implicitly when checked, to its
// superclasses).
func (in *Interpretation) AddMember(c Class, i Instance) {
	for _, existing := range in.Members[c] {
		if existing == i {
			return
		}
	}
	in.Members[c] = append(in.Members[c], i)
}

// SetValue assigns attribute attr of instance i.
func (in *Interpretation) SetValue(i Instance, attr, value string) {
	if in.Values[i] == nil {
		in.Values[i] = map[string]string{}
	}
	in.Values[i][attr] = value
}

// MembersOf returns the instances of class c including those of its
// subclasses, deduplicated, in deterministic order.
func (in *Interpretation) MembersOf(sig *Signature, c Class) []Instance {
	seen := map[Instance]bool{}
	var out []Instance
	for _, sub := range sig.Classes().DownSet(c) {
		for _, i := range in.Members[sub] {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Violation describes an axiom or structural condition an interpretation
// fails to satisfy.
type Violation struct {
	Axiom   string
	Detail  string
	Subject Instance
}

// String renders the violation.
func (v Violation) String() string {
	if v.Subject != "" {
		return fmt.Sprintf("%s: %s (instance %s)", v.Axiom, v.Detail, v.Subject)
	}
	return fmt.Sprintf("%s: %s", v.Axiom, v.Detail)
}

// Check evaluates the interpretation against the ontonomy and returns all
// violations found (empty means the interpretation is a model of the
// ontonomy). Structural conditions checked before the axioms: class-targeted
// attribute values must name instances of the target class, and sort-targeted
// attribute values must be carrier elements of the target sort.
func (o *Ontonomy) Check(in *Interpretation) []Violation {
	var out []Violation
	out = append(out, o.checkStructure(in)...)
	for _, ax := range o.Axioms {
		out = append(out, o.checkAxiom(in, ax)...)
	}
	return out
}

// IsModel reports whether the interpretation satisfies the ontonomy.
func (o *Ontonomy) IsModel(in *Interpretation) bool { return len(o.Check(in)) == 0 }

func (o *Ontonomy) checkStructure(in *Interpretation) []Violation {
	var out []Violation
	for _, c := range o.Sig.Classes().Elements() {
		for _, a := range o.Sig.AttributesOf(c) {
			for _, i := range in.Members[c] {
				val, ok := in.Values[i][a.Name]
				if !ok {
					continue // absence is only a violation under a required axiom
				}
				if a.Target.IsClass() {
					members := in.MembersOf(o.Sig, a.Target.Class)
					if !containsInstance(members, Instance(val)) {
						out = append(out, Violation{
							Axiom:   "structure",
							Detail:  fmt.Sprintf("attribute %q of class %q must name an instance of %q, got %q", a.Name, c, a.Target.Class, val),
							Subject: i,
						})
					}
				} else {
					carrier := o.Sig.Domain().Model.Carrier(a.Target.Sort)
					found := false
					for _, cv := range carrier {
						if string(cv) == val {
							found = true
							break
						}
					}
					if !found {
						out = append(out, Violation{
							Axiom:   "structure",
							Detail:  fmt.Sprintf("attribute %q of class %q must be a %q value, got %q", a.Name, c, a.Target.Sort, val),
							Subject: i,
						})
					}
				}
			}
		}
	}
	return out
}

func containsInstance(xs []Instance, x Instance) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

func (o *Ontonomy) checkAxiom(in *Interpretation, ax Axiom) []Violation {
	var out []Violation
	switch ax.Kind {
	case AxiomDisjoint:
		as := in.MembersOf(o.Sig, ax.A)
		bs := toInstanceSet(in.MembersOf(o.Sig, ax.B))
		for _, i := range as {
			if bs[i] {
				out = append(out, Violation{Axiom: ax.String(), Detail: "instance in both classes", Subject: i})
			}
		}
	case AxiomAttributeRequired:
		for _, i := range in.MembersOf(o.Sig, ax.A) {
			if _, ok := in.Values[i][ax.Attr]; !ok {
				out = append(out, Violation{Axiom: ax.String(), Detail: "missing required attribute", Subject: i})
			}
		}
	case AxiomAttributeValueIn:
		allowed := map[string]bool{}
		for _, v := range ax.Values {
			allowed[v] = true
		}
		for _, i := range in.MembersOf(o.Sig, ax.A) {
			if v, ok := in.Values[i][ax.Attr]; ok && !allowed[v] {
				out = append(out, Violation{Axiom: ax.String(), Detail: fmt.Sprintf("value %q not allowed", v), Subject: i})
			}
		}
	case AxiomMinInstances:
		if n := len(in.MembersOf(o.Sig, ax.A)); n < ax.N {
			out = append(out, Violation{Axiom: ax.String(), Detail: fmt.Sprintf("%d instances, need at least %d", n, ax.N)})
		}
	case AxiomMaxInstances:
		if n := len(in.MembersOf(o.Sig, ax.A)); n > ax.N {
			out = append(out, Violation{Axiom: ax.String(), Detail: fmt.Sprintf("%d instances, allowed at most %d", n, ax.N)})
		}
	case AxiomCover:
		covered := map[Instance]bool{}
		for _, c := range ax.Classes {
			for _, i := range in.MembersOf(o.Sig, c) {
				covered[i] = true
			}
		}
		for _, i := range in.MembersOf(o.Sig, ax.A) {
			if !covered[i] {
				out = append(out, Violation{Axiom: ax.String(), Detail: "instance not covered by any listed class", Subject: i})
			}
		}
	}
	return out
}

func toInstanceSet(xs []Instance) map[Instance]bool {
	m := make(map[Instance]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}
