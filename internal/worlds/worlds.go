// Package worlds implements the model-theoretic machinery of Guarino's
// "Formal ontology and information systems" definition, exactly as the
// paper's §2 reconstructs it in order to critique it: domains of elements,
// possible worlds, extensional relations, intensional relations as functions
// from worlds to extensional relations, ontological commitments, and
// ontonomies as axiom sets whose models "approximate" the intended models of
// a language.
//
// The package also implements the two analyses the paper performs on this
// construction:
//
//   - a circularity analysis (CircularityReport) that detects when the
//     structure of the worlds used to define the intensional relations is
//     itself given only in terms of those intensional relations — the
//     "circular argument" of §2;
//   - an approximation analysis (ApproximationReport) that measures how well
//     a set of axioms separates the intended models of a commitment from
//     perturbed non-intended models — the executable version of the paper's
//     complaint that with the word "approximates" any satisfiable axiom set
//     (including a set of tautologies) qualifies as an ontonomy.
package worlds

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Element is an individual of the domain of discourse.
type Element string

// Tuple is an ordered tuple of domain elements.
type Tuple []Element

// key renders the tuple as a map key.
func (t Tuple) key() string {
	parts := make([]string, len(t))
	for i, e := range t {
		parts[i] = string(e)
	}
	return strings.Join(parts, "\x00")
}

// String renders the tuple.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, e := range t {
		parts[i] = string(e)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Relation is a finite extensional relation: a named set of tuples of fixed
// arity.
type Relation struct {
	Name   string
	Arity  int
	tuples map[string]Tuple
}

// NewRelation creates an empty extensional relation.
func NewRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity, tuples: map[string]Tuple{}}
}

// Add inserts a tuple, returning an error if the arity does not match.
func (r *Relation) Add(t Tuple) error {
	if len(t) != r.Arity {
		return fmt.Errorf("worlds: tuple %v has arity %d, relation %q expects %d", t, len(t), r.Name, r.Arity)
	}
	cp := make(Tuple, len(t))
	copy(cp, t)
	r.tuples[cp.key()] = cp
	return nil
}

// Contains reports whether the tuple is in the relation.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.tuples[t.key()]
	return ok
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the tuples in deterministic (sorted) order.
func (r *Relation) Tuples() []Tuple {
	keys := make([]string, 0, len(r.tuples))
	for k := range r.tuples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = r.tuples[k]
	}
	return out
}

// Equal reports whether two relations have the same name, arity, and tuples.
func (r *Relation) Equal(o *Relation) bool {
	if r.Name != o.Name || r.Arity != o.Arity || len(r.tuples) != len(o.tuples) {
		return false
	}
	for k := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Name, r.Arity)
	for _, t := range r.tuples {
		_ = c.Add(t)
	}
	return c
}

// World is a legal configuration of the domain elements: a named assignment
// of extensional relations.
type World struct {
	Name      string
	relations map[string]*Relation
}

// NewWorld creates a world with no relations.
func NewWorld(name string) *World {
	return &World{Name: name, relations: map[string]*Relation{}}
}

// SetRelation installs (or replaces) the extension of a relation name in this
// world.
func (w *World) SetRelation(r *Relation) { w.relations[r.Name] = r }

// Relation returns the extension of the named relation in this world and
// whether it is defined.
func (w *World) Relation(name string) (*Relation, bool) {
	r, ok := w.relations[name]
	return r, ok
}

// RelationNames returns the defined relation names in sorted order.
func (w *World) RelationNames() []string {
	out := make([]string, 0, len(w.relations))
	for n := range w.relations {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Holds reports whether the named relation holds of the tuple in this world;
// undefined relations hold of nothing.
func (w *World) Holds(name string, t Tuple) bool {
	r, ok := w.relations[name]
	return ok && r.Contains(t)
}

// Structure is a set of possible worlds over a shared domain, the W of
// Guarino's construction.
type Structure struct {
	Domain []Element
	Worlds []*World
}

// NewStructure builds a structure over the given domain.
func NewStructure(domain []Element) *Structure {
	d := make([]Element, len(domain))
	copy(d, domain)
	return &Structure{Domain: d}
}

// AddWorld appends a world to the structure.
func (s *Structure) AddWorld(w *World) { s.Worlds = append(s.Worlds, w) }

// WorldByName returns the named world and whether it exists.
func (s *Structure) WorldByName(name string) (*World, bool) {
	for _, w := range s.Worlds {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}

// IntensionalRelation is a function from worlds to extensional relations: for
// each world of a structure it gives the extension of a conceptual relation.
// Following the paper's presentation it is represented extensionally as a
// finite table indexed by world name.
type IntensionalRelation struct {
	Name   string
	Arity  int
	byName map[string]*Relation
}

// NewIntensionalRelation creates an intensional relation with no world
// assignments.
func NewIntensionalRelation(name string, arity int) *IntensionalRelation {
	return &IntensionalRelation{Name: name, Arity: arity, byName: map[string]*Relation{}}
}

// Assign sets the extension of the relation in the named world. The
// extension's arity must match.
func (ir *IntensionalRelation) Assign(world string, ext *Relation) error {
	if ext.Arity != ir.Arity {
		return fmt.Errorf("worlds: extension arity %d does not match intensional relation %q arity %d", ext.Arity, ir.Name, ir.Arity)
	}
	ir.byName[world] = ext
	return nil
}

// At returns the extension assigned to the named world, and whether one was
// assigned.
func (ir *IntensionalRelation) At(world string) (*Relation, bool) {
	r, ok := ir.byName[world]
	return r, ok
}

// Rigid reports whether the relation has the same extension in every world it
// is defined on — the degenerate case in which intensionality adds nothing.
func (ir *IntensionalRelation) Rigid() bool {
	var first *Relation
	for _, r := range ir.byName {
		if first == nil {
			first = r
			continue
		}
		if !first.Equal(r) {
			return false
		}
	}
	return true
}

// Commitment is an ontological commitment: a structure of possible worlds
// together with a set of intensional relations over it. It induces, for each
// world, an extensional model of the language whose predicate symbols are the
// intensional relation names.
type Commitment struct {
	Structure *Structure
	Relations []*IntensionalRelation
}

// NewCommitment validates that every intensional relation assigns an
// extension to every world of the structure and returns the commitment.
func NewCommitment(s *Structure, rels []*IntensionalRelation) (*Commitment, error) {
	for _, ir := range rels {
		for _, w := range s.Worlds {
			if _, ok := ir.At(w.Name); !ok {
				return nil, fmt.Errorf("worlds: intensional relation %q assigns no extension to world %q", ir.Name, w.Name)
			}
		}
	}
	return &Commitment{Structure: s, Relations: rels}, nil
}

// ExtensionalModel is the model induced by a commitment at one world: the
// domain together with one extensional relation per intensional relation.
type ExtensionalModel struct {
	World     string
	Domain    []Element
	Relations map[string]*Relation
}

// ModelAt returns the extensional model induced at the named world.
func (c *Commitment) ModelAt(world string) (*ExtensionalModel, error) {
	if _, ok := c.Structure.WorldByName(world); !ok {
		return nil, fmt.Errorf("worlds: unknown world %q", world)
	}
	m := &ExtensionalModel{World: world, Domain: c.Structure.Domain, Relations: map[string]*Relation{}}
	for _, ir := range c.Relations {
		ext, _ := ir.At(world)
		m.Relations[ir.Name] = ext
	}
	return m, nil
}

// IntendedModels returns the extensional models induced at every world, in
// world order. These are "the set of intended models of L according to K" of
// Guarino's definition.
func (c *Commitment) IntendedModels() []*ExtensionalModel {
	out := make([]*ExtensionalModel, 0, len(c.Structure.Worlds))
	for _, w := range c.Structure.Worlds {
		m, err := c.ModelAt(w.Name)
		if err == nil {
			out = append(out, m)
		}
	}
	return out
}

// Holds reports whether the named relation holds of the tuple in the model.
func (m *ExtensionalModel) Holds(rel string, t Tuple) bool {
	r, ok := m.Relations[rel]
	return ok && r.Contains(t)
}

// Literal is an atomic statement about a relation applied to a tuple,
// possibly negated.
type Literal struct {
	Relation string
	Args     Tuple
	Negated  bool
}

// String renders the literal.
func (l Literal) String() string {
	s := l.Relation + l.Args.String()
	if l.Negated {
		return "¬" + s
	}
	return s
}

// Eval evaluates the literal in a model.
func (l Literal) Eval(m *ExtensionalModel) bool {
	holds := m.Holds(l.Relation, l.Args)
	if l.Negated {
		return !holds
	}
	return holds
}

// Axiom is a ground clause: a disjunction of literals. The empty clause is
// unsatisfiable; a clause whose literals cover both polarities of an atom is
// a tautology.
type Axiom struct {
	Literals []Literal
	Label    string
}

// String renders the axiom.
func (a Axiom) String() string {
	if len(a.Literals) == 0 {
		return "⊥"
	}
	parts := make([]string, len(a.Literals))
	for i, l := range a.Literals {
		parts[i] = l.String()
	}
	return strings.Join(parts, " ∨ ")
}

// Tautology reports whether the clause contains an atom together with its
// negation and therefore holds in every model.
func (a Axiom) Tautology() bool {
	pos := map[string]bool{}
	neg := map[string]bool{}
	for _, l := range a.Literals {
		k := l.Relation + l.Args.key()
		if l.Negated {
			neg[k] = true
		} else {
			pos[k] = true
		}
	}
	for k := range pos {
		if neg[k] {
			return true
		}
	}
	return false
}

// Eval evaluates the clause in a model.
func (a Axiom) Eval(m *ExtensionalModel) bool {
	for _, l := range a.Literals {
		if l.Eval(m) {
			return true
		}
	}
	return len(a.Literals) == 0 && false
}

// Ontonomy is, per Guarino's definition as quoted by the paper, "a set of
// axioms designed in a way such that the set of its models approximates as
// best as possible the set of intended models of L according to K".
type Ontonomy struct {
	Axioms []Axiom
}

// Satisfied reports whether every axiom holds in the model.
func (o *Ontonomy) Satisfied(m *ExtensionalModel) bool {
	for _, a := range o.Axioms {
		if !a.Eval(m) {
			return false
		}
	}
	return true
}

// AllTautologies reports whether every axiom of the ontonomy is a tautology —
// the degenerate ontonomy the paper uses to argue that the definition is too
// broad to be useful.
func (o *Ontonomy) AllTautologies() bool {
	for _, a := range o.Axioms {
		if !a.Tautology() {
			return false
		}
	}
	return len(o.Axioms) > 0
}

// ApproximationReport measures how well an ontonomy's models approximate the
// intended models of a commitment.
type ApproximationReport struct {
	// IntendedAccepted is the number of intended models satisfying the axioms
	// and IntendedTotal the number of intended models (recall numerator and
	// denominator).
	IntendedAccepted, IntendedTotal int
	// PerturbedAccepted is the number of perturbed (non-intended) models that
	// also satisfy the axioms and PerturbedTotal the number generated. A high
	// acceptance rate on perturbed models means the axioms fail to pin down
	// the commitment — the paper's "too broad to be of any use".
	PerturbedAccepted, PerturbedTotal int
}

// Recall is the fraction of intended models accepted.
func (r ApproximationReport) Recall() float64 {
	if r.IntendedTotal == 0 {
		return 0
	}
	return float64(r.IntendedAccepted) / float64(r.IntendedTotal)
}

// FalseAcceptRate is the fraction of perturbed models accepted.
func (r ApproximationReport) FalseAcceptRate() float64 {
	if r.PerturbedTotal == 0 {
		return 0
	}
	return float64(r.PerturbedAccepted) / float64(r.PerturbedTotal)
}

// Discrimination is recall minus false-accept rate: 1 means the axioms accept
// exactly the intended models among those examined, 0 means they do not
// separate intended from perturbed models at all (as with tautologies).
func (r ApproximationReport) Discrimination() float64 {
	return r.Recall() - r.FalseAcceptRate()
}

// Approximation evaluates the ontonomy against the commitment: every intended
// model is tested, and perturbedPerWorld perturbed variants of each intended
// model (with random tuples flipped in and out of relations) are generated
// with rng and tested.
func Approximation(c *Commitment, o *Ontonomy, perturbedPerWorld int, rng *rand.Rand) ApproximationReport {
	var rep ApproximationReport
	intended := c.IntendedModels()
	rep.IntendedTotal = len(intended)
	for _, m := range intended {
		if o.Satisfied(m) {
			rep.IntendedAccepted++
		}
	}
	for _, m := range intended {
		for i := 0; i < perturbedPerWorld; i++ {
			p := perturb(m, rng)
			rep.PerturbedTotal++
			if o.Satisfied(p) {
				rep.PerturbedAccepted++
			}
		}
	}
	return rep
}

// perturb returns a copy of the model with between one and three random tuple
// flips applied across its relations.
func perturb(m *ExtensionalModel, rng *rand.Rand) *ExtensionalModel {
	out := &ExtensionalModel{World: m.World + "'", Domain: m.Domain, Relations: map[string]*Relation{}}
	names := make([]string, 0, len(m.Relations))
	for n := range m.Relations {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out.Relations[n] = m.Relations[n].Clone()
	}
	if len(names) == 0 || len(m.Domain) == 0 {
		return out
	}
	flips := 1 + rng.Intn(3)
	for i := 0; i < flips; i++ {
		rel := out.Relations[names[rng.Intn(len(names))]]
		t := make(Tuple, rel.Arity)
		for j := range t {
			t[j] = m.Domain[rng.Intn(len(m.Domain))]
		}
		if rel.Contains(t) {
			delete(rel.tuples, t.key())
		} else {
			_ = rel.Add(t)
		}
	}
	return out
}
