package worlds

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// blocksCommitment builds the paper's blocks-world example: a domain of
// blocks a, b, c, d with an intensional relation "above" whose extension
// varies between two worlds.
func blocksCommitment(t testing.TB) *Commitment {
	t.Helper()
	domain := []Element{"a", "b", "c", "d"}
	s := NewStructure(domain)

	w1 := NewWorld("w1")
	above1 := NewRelation("above", 2)
	for _, tu := range []Tuple{{"a", "b"}, {"a", "d"}, {"b", "d"}} {
		if err := above1.Add(tu); err != nil {
			t.Fatal(err)
		}
	}
	w1.SetRelation(above1)

	w2 := NewWorld("w2")
	above2 := NewRelation("above", 2)
	if err := above2.Add(Tuple{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	w2.SetRelation(above2)

	s.AddWorld(w1)
	s.AddWorld(w2)

	ir := NewIntensionalRelation("above", 2)
	if err := ir.Assign("w1", above1); err != nil {
		t.Fatal(err)
	}
	if err := ir.Assign("w2", above2); err != nil {
		t.Fatal(err)
	}

	c, err := NewCommitment(s, []*IntensionalRelation{ir})
	if err != nil {
		t.Fatalf("NewCommitment: %v", err)
	}
	return c
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation("above", 2)
	if err := r.Add(Tuple{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(Tuple{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Errorf("duplicate tuples stored: Len = %d", r.Len())
	}
	if err := r.Add(Tuple{"a"}); err == nil {
		t.Error("arity mismatch should be rejected")
	}
	if !r.Contains(Tuple{"a", "b"}) || r.Contains(Tuple{"b", "a"}) {
		t.Error("Contains misreports")
	}
	clone := r.Clone()
	if !clone.Equal(r) {
		t.Error("clone should equal original")
	}
	if err := clone.Add(Tuple{"c", "d"}); err != nil {
		t.Fatal(err)
	}
	if clone.Equal(r) {
		t.Error("mutated clone should differ")
	}
	if got := r.Tuples(); len(got) != 1 || got[0].String() != "(a,b)" {
		t.Errorf("Tuples = %v", got)
	}
}

func TestWorldHolds(t *testing.T) {
	c := blocksCommitment(t)
	w1, ok := c.Structure.WorldByName("w1")
	if !ok {
		t.Fatal("w1 missing")
	}
	if !w1.Holds("above", Tuple{"a", "b"}) {
		t.Error("above(a,b) should hold in w1")
	}
	if w1.Holds("above", Tuple{"d", "a"}) {
		t.Error("above(d,a) should not hold in w1")
	}
	if w1.Holds("under", Tuple{"a", "b"}) {
		t.Error("undefined relation holds of nothing")
	}
	if names := w1.RelationNames(); len(names) != 1 || names[0] != "above" {
		t.Errorf("RelationNames = %v", names)
	}
	if _, ok := c.Structure.WorldByName("nowhere"); ok {
		t.Error("unknown world should not be found")
	}
}

func TestIntensionalRelation(t *testing.T) {
	ir := NewIntensionalRelation("above", 2)
	r := NewRelation("above", 2)
	if err := ir.Assign("w", r); err != nil {
		t.Fatal(err)
	}
	bad := NewRelation("above", 3)
	if err := ir.Assign("w2", bad); err == nil {
		t.Error("arity mismatch in Assign should fail")
	}
	if _, ok := ir.At("w"); !ok {
		t.Error("assigned world should be retrievable")
	}
	if _, ok := ir.At("missing"); ok {
		t.Error("unassigned world should not be retrievable")
	}
}

func TestRigid(t *testing.T) {
	c := blocksCommitment(t)
	if c.Relations[0].Rigid() {
		t.Error("above varies between worlds, should not be rigid")
	}
	rigid := NewIntensionalRelation("color", 1)
	ext := NewRelation("color", 1)
	_ = ext.Add(Tuple{"a"})
	_ = rigid.Assign("w1", ext)
	_ = rigid.Assign("w2", ext.Clone())
	if !rigid.Rigid() {
		t.Error("same extension everywhere should be rigid")
	}
}

func TestNewCommitmentValidation(t *testing.T) {
	s := NewStructure([]Element{"a"})
	s.AddWorld(NewWorld("w1"))
	ir := NewIntensionalRelation("p", 1)
	if _, err := NewCommitment(s, []*IntensionalRelation{ir}); err == nil {
		t.Error("commitment with a world lacking an assignment should be rejected")
	}
}

func TestIntendedModels(t *testing.T) {
	c := blocksCommitment(t)
	models := c.IntendedModels()
	if len(models) != 2 {
		t.Fatalf("IntendedModels = %d, want 2", len(models))
	}
	if !models[0].Holds("above", Tuple{"b", "d"}) {
		t.Error("model at w1 should contain above(b,d)")
	}
	if models[1].Holds("above", Tuple{"b", "d"}) {
		t.Error("model at w2 should not contain above(b,d)")
	}
	if _, err := c.ModelAt("nope"); err == nil {
		t.Error("ModelAt unknown world should fail")
	}
}

func TestLiteralAndAxiomEval(t *testing.T) {
	c := blocksCommitment(t)
	m, _ := c.ModelAt("w1")
	pos := Literal{Relation: "above", Args: Tuple{"a", "b"}}
	neg := Literal{Relation: "above", Args: Tuple{"d", "a"}, Negated: true}
	if !pos.Eval(m) || !neg.Eval(m) {
		t.Error("literal evaluation wrong")
	}
	ax := Axiom{Literals: []Literal{pos, {Relation: "above", Args: Tuple{"d", "a"}}}}
	if !ax.Eval(m) {
		t.Error("disjunction with one true literal should hold")
	}
	empty := Axiom{}
	if empty.Eval(m) {
		t.Error("the empty clause holds in no model")
	}
	if !strings.Contains(neg.String(), "¬") {
		t.Errorf("negated literal rendering: %q", neg.String())
	}
	if empty.String() != "⊥" {
		t.Errorf("empty clause rendering: %q", empty.String())
	}
}

func TestTautologyDetection(t *testing.T) {
	l := Literal{Relation: "above", Args: Tuple{"a", "b"}}
	nl := l
	nl.Negated = true
	taut := Axiom{Literals: []Literal{l, nl}}
	if !taut.Tautology() {
		t.Error("p ∨ ¬p is a tautology")
	}
	notTaut := Axiom{Literals: []Literal{l}}
	if notTaut.Tautology() {
		t.Error("a single positive literal is not a tautology")
	}
	o := &Ontonomy{Axioms: []Axiom{taut}}
	if !o.AllTautologies() {
		t.Error("ontonomy of tautologies should be detected")
	}
	if (&Ontonomy{}).AllTautologies() {
		t.Error("the empty ontonomy is not 'all tautologies'")
	}
}

func TestApproximationDiscriminatingAxioms(t *testing.T) {
	c := blocksCommitment(t)
	// Informative axiom set: above(a,b) holds in all intended worlds, and
	// above(d,a) holds in none.
	o := &Ontonomy{Axioms: []Axiom{
		{Literals: []Literal{{Relation: "above", Args: Tuple{"a", "b"}}}},
		{Literals: []Literal{{Relation: "above", Args: Tuple{"d", "a"}, Negated: true}}},
		{Literals: []Literal{{Relation: "above", Args: Tuple{"d", "b"}, Negated: true}}},
		{Literals: []Literal{{Relation: "above", Args: Tuple{"c", "a"}, Negated: true}}},
	}}
	rng := rand.New(rand.NewSource(42))
	rep := Approximation(c, o, 50, rng)
	if rep.Recall() != 1.0 {
		t.Errorf("informative axioms should accept all intended models, recall = %f", rep.Recall())
	}
	if rep.FalseAcceptRate() >= 1.0 {
		t.Errorf("informative axioms should reject some perturbed models, false accept = %f", rep.FalseAcceptRate())
	}
	if rep.Discrimination() <= 0 {
		t.Errorf("discrimination should be positive, got %f", rep.Discrimination())
	}
}

func TestApproximationTautologiesDoNotDiscriminate(t *testing.T) {
	c := blocksCommitment(t)
	l := Literal{Relation: "above", Args: Tuple{"a", "b"}}
	nl := l
	nl.Negated = true
	o := &Ontonomy{Axioms: []Axiom{{Literals: []Literal{l, nl}}}}
	rng := rand.New(rand.NewSource(7))
	rep := Approximation(c, o, 50, rng)
	if rep.Recall() != 1.0 || rep.FalseAcceptRate() != 1.0 {
		t.Errorf("tautologies accept everything: recall=%f far=%f", rep.Recall(), rep.FalseAcceptRate())
	}
	if rep.Discrimination() != 0 {
		t.Errorf("tautologies have zero discrimination, got %f", rep.Discrimination())
	}
}

func TestApproximationEmptyReport(t *testing.T) {
	var rep ApproximationReport
	if rep.Recall() != 0 || rep.FalseAcceptRate() != 0 {
		t.Error("empty report rates should be zero")
	}
}

func TestPropertyTautologiesAcceptEverything(t *testing.T) {
	c := blocksCommitment(t)
	l := Literal{Relation: "above", Args: Tuple{"a", "b"}}
	nl := l
	nl.Negated = true
	o := &Ontonomy{Axioms: []Axiom{{Literals: []Literal{l, nl}}}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rep := Approximation(c, o, 10, rng)
		return rep.Discrimination() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCircularityWithoutPrimitives(t *testing.T) {
	c := blocksCommitment(t)
	rep := AnalyzeCommitment(c, nil)
	if rep.Grounded {
		t.Error("with no primitives the construction should be circular")
	}
	if len(rep.Cycles) == 0 {
		t.Error("expected at least one definitional cycle")
	}
	if !strings.Contains(rep.Describe(), "cycle") {
		t.Errorf("Describe should mention cycles: %q", rep.Describe())
	}
}

func TestCircularityWithPrimitives(t *testing.T) {
	c := blocksCommitment(t)
	rep := AnalyzeCommitment(c, []string{"above"})
	if !rep.Grounded {
		t.Errorf("declaring 'above' observations primitive should ground the construction: %s", rep.Describe())
	}
	if !strings.Contains(rep.Describe(), "grounded") {
		t.Errorf("Describe should report grounding: %q", rep.Describe())
	}
}

func TestDependencyGraphDirect(t *testing.T) {
	g := NewDependencyGraph()
	g.AddNode("a", NodeIntensional)
	g.AddDependency("a", "b")
	g.AddDependency("b", "a")
	g.AddDependency("a", "b") // duplicate edge ignored
	rep := g.Analyze()
	if rep.Grounded || len(rep.Cycles) != 1 {
		t.Errorf("expected exactly one cycle, got %+v", rep)
	}
	if k, ok := g.Kind("b"); !ok || k != NodeExtension {
		t.Errorf("implicit node should default to extension kind, got %v", k)
	}
	if len(g.Nodes()) != 2 {
		t.Errorf("Nodes = %v", g.Nodes())
	}
}

func TestDependencyGraphCyclesOnly(t *testing.T) {
	g := NewDependencyGraph()
	g.AddDependency("a", "b")
	g.AddDependency("b", "a")
	g.AddDependency("c", "a") // acyclic appendage
	cycles := g.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("Cycles = %v, want exactly one", cycles)
	}
	if len(cycles[0]) != 2 {
		t.Errorf("cycle = %v, want the a/b component", cycles[0])
	}
	acyclic := NewDependencyGraph()
	acyclic.AddDependency("x", "y")
	if got := acyclic.Cycles(); len(got) != 0 {
		t.Errorf("acyclic graph reported cycles: %v", got)
	}
}

func TestDependencyGraphSelfLoop(t *testing.T) {
	g := NewDependencyGraph()
	g.AddDependency("x", "x")
	rep := g.Analyze()
	if len(rep.Cycles) != 1 {
		t.Errorf("self-loop should count as a cycle: %+v", rep)
	}
}

func TestDependencyGraphUngroundedLeaf(t *testing.T) {
	g := NewDependencyGraph()
	g.AddNode("def", NodeIntensional) // no outgoing edges, not primitive
	rep := g.Analyze()
	if rep.Grounded {
		t.Error("an intensional definition resting on nothing is not grounded")
	}
	if len(rep.Ungrounded) != 1 || rep.Ungrounded[0] != "def" {
		t.Errorf("Ungrounded = %v", rep.Ungrounded)
	}
}

func TestDependencyGraphGroundedChain(t *testing.T) {
	g := NewDependencyGraph()
	g.AddNode("obs", NodePrimitive)
	g.AddDependency("def", "mid")
	g.AddDependency("mid", "obs")
	rep := g.Analyze()
	if !rep.Grounded {
		t.Errorf("chain ending in a primitive should be grounded: %+v", rep)
	}
}

func TestNodeKindString(t *testing.T) {
	for _, k := range []NodeKind{NodeIntensional, NodeWorld, NodeExtension, NodePrimitive, NodeKind(42)} {
		if k.String() == "" {
			t.Errorf("NodeKind(%d).String() empty", int(k))
		}
	}
}

func BenchmarkApproximation(b *testing.B) {
	c := blocksCommitment(b)
	o := &Ontonomy{Axioms: []Axiom{
		{Literals: []Literal{{Relation: "above", Args: Tuple{"a", "b"}}}},
		{Literals: []Literal{{Relation: "above", Args: Tuple{"d", "a"}, Negated: true}}},
	}}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Approximation(c, o, 20, rng)
	}
}

func BenchmarkAnalyzeCommitment(b *testing.B) {
	c := blocksCommitment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeCommitment(c, nil)
	}
}
