package worlds

import (
	"fmt"
	"sort"
	"strings"
)

// NodeKind classifies a node of the definitional-dependency graph.
type NodeKind int

// Node kinds of the definitional-dependency graph.
const (
	// NodeIntensional is the definition of an intensional relation.
	NodeIntensional NodeKind = iota
	// NodeWorld is the specification of a possible world's structure.
	NodeWorld
	// NodeExtension is the extension of a relation inside a particular world.
	NodeExtension
	// NodePrimitive is an observable given independently of the ontology
	// (e.g. a sensor reading or a database fact); primitives ground the
	// definitional chain.
	NodePrimitive
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case NodeIntensional:
		return "intensional"
	case NodeWorld:
		return "world"
	case NodeExtension:
		return "extension"
	case NodePrimitive:
		return "primitive"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// DependencyGraph records which definitions presuppose which others. An edge
// from A to B means "A is defined in terms of B". The paper's §2 circularity
// argument is that, on the natural reading of Guarino's construction, the
// graph contains cycles through every non-primitive relation.
type DependencyGraph struct {
	kinds map[string]NodeKind
	edges map[string][]string
}

// NewDependencyGraph returns an empty graph.
func NewDependencyGraph() *DependencyGraph {
	return &DependencyGraph{kinds: map[string]NodeKind{}, edges: map[string][]string{}}
}

// AddNode declares a node with its kind. Re-declaring a node overwrites its
// kind, which lets callers promote an extension to a primitive.
func (g *DependencyGraph) AddNode(id string, kind NodeKind) {
	g.kinds[id] = kind
	if _, ok := g.edges[id]; !ok {
		g.edges[id] = nil
	}
}

// AddDependency records that `from` is defined in terms of `to`. Unknown
// nodes are added with NodeExtension kind.
func (g *DependencyGraph) AddDependency(from, to string) {
	if _, ok := g.kinds[from]; !ok {
		g.AddNode(from, NodeExtension)
	}
	if _, ok := g.kinds[to]; !ok {
		g.AddNode(to, NodeExtension)
	}
	for _, e := range g.edges[from] {
		if e == to {
			return
		}
	}
	g.edges[from] = append(g.edges[from], to)
}

// Nodes returns the node ids in sorted order.
func (g *DependencyGraph) Nodes() []string {
	out := make([]string, 0, len(g.kinds))
	for id := range g.kinds {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Kind returns the kind of a node.
func (g *DependencyGraph) Kind(id string) (NodeKind, bool) {
	k, ok := g.kinds[id]
	return k, ok
}

// CircularityReport is the result of analyzing a dependency graph.
type CircularityReport struct {
	// Cycles lists one representative cycle per strongly connected component
	// of size greater than one (each cycle is a sequence of node ids; the
	// last id depends on the first).
	Cycles [][]string
	// Ungrounded lists nodes that cannot be traced back to a primitive: every
	// path out of them loops without reaching a NodePrimitive node.
	Ungrounded []string
	// Grounded reports whether the definitional structure bottoms out: no
	// cycles and every non-primitive node reaches a primitive.
	Grounded bool
}

// Describe renders a human-readable summary of the report.
func (r CircularityReport) Describe() string {
	var b strings.Builder
	if r.Grounded {
		b.WriteString("definitional structure is grounded: every definition bottoms out in primitives\n")
		return b.String()
	}
	if len(r.Cycles) > 0 {
		fmt.Fprintf(&b, "%d definitional cycle(s) found:\n", len(r.Cycles))
		for _, c := range r.Cycles {
			fmt.Fprintf(&b, "  %s -> %s\n", strings.Join(c, " -> "), c[0])
		}
	}
	if len(r.Ungrounded) > 0 {
		fmt.Fprintf(&b, "%d definition(s) never reach a primitive: %s\n", len(r.Ungrounded), strings.Join(r.Ungrounded, ", "))
	}
	return b.String()
}

// Cycles returns one representative cycle per non-trivial strongly connected
// component of the graph (plus self-loops), without the groundedness analysis
// of Analyze. Callers that only need cycle detection — such as the
// subsumption-cycle check in repro/internal/store — use this directly.
func (g *DependencyGraph) Cycles() [][]string {
	return g.cycles()
}

// Analyze computes the circularity report of the graph.
func (g *DependencyGraph) Analyze() CircularityReport {
	var rep CircularityReport
	rep.Cycles = g.cycles()
	rep.Ungrounded = g.ungrounded()
	rep.Grounded = len(rep.Cycles) == 0 && len(rep.Ungrounded) == 0
	return rep
}

// cycles returns one representative cycle per non-trivial strongly connected
// component, found with Tarjan's algorithm.
func (g *DependencyGraph) cycles() [][]string {
	ids := g.Nodes()
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	counter := 0
	var out [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		targets := append([]string(nil), g.edges[v]...)
		sort.Strings(targets)
		for _, w := range targets {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				sort.Strings(comp)
				out = append(out, comp)
			} else if len(comp) == 1 && g.selfLoop(comp[0]) {
				out = append(out, comp)
			}
		}
	}
	for _, v := range ids {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return out
}

func (g *DependencyGraph) selfLoop(id string) bool {
	for _, e := range g.edges[id] {
		if e == id {
			return true
		}
	}
	return false
}

// ungrounded returns the non-primitive nodes from which no primitive node is
// reachable. A node with no outgoing edges and non-primitive kind counts as
// ungrounded too: its definition rests on nothing at all.
func (g *DependencyGraph) ungrounded() []string {
	reachesPrimitive := map[string]bool{}
	var visit func(id string, seen map[string]bool) bool
	visit = func(id string, seen map[string]bool) bool {
		if g.kinds[id] == NodePrimitive {
			return true
		}
		if v, done := reachesPrimitive[id]; done {
			return v
		}
		if seen[id] {
			return false
		}
		seen[id] = true
		ok := false
		for _, e := range g.edges[id] {
			if visit(e, seen) {
				ok = true
				break
			}
		}
		delete(seen, id)
		reachesPrimitive[id] = ok
		return ok
	}
	var out []string
	for _, id := range g.Nodes() {
		if g.kinds[id] == NodePrimitive {
			continue
		}
		if !visit(id, map[string]bool{}) {
			out = append(out, id)
		}
	}
	return out
}

// AnalyzeCommitment builds the definitional-dependency graph of a commitment
// under the reading the paper attributes to Guarino's construction and
// analyzes it:
//
//   - each intensional relation is defined in terms of every world of the
//     structure (it is a function on worlds);
//   - each world's structure is given by the extensions it assigns to the
//     relation names;
//   - each extension of a relation name is, in turn, given by the intensional
//     relation of that name — unless the name appears in primitives, in which
//     case it is treated as an observable given independently of the
//     ontology.
//
// With an empty primitive set the graph is cyclic for every relation that
// appears both intensionally and inside a world, reproducing the paper's
// circularity argument; declaring primitives breaks the cycles and the
// construction grounds out.
func AnalyzeCommitment(c *Commitment, primitives []string) CircularityReport {
	prim := map[string]bool{}
	for _, p := range primitives {
		prim[p] = true
	}
	g := NewDependencyGraph()
	intensionalNames := map[string]bool{}
	for _, ir := range c.Relations {
		id := "intensional:" + ir.Name
		g.AddNode(id, NodeIntensional)
		intensionalNames[ir.Name] = true
	}
	for _, w := range c.Structure.Worlds {
		wid := "world:" + w.Name
		g.AddNode(wid, NodeWorld)
		for _, ir := range c.Relations {
			g.AddDependency("intensional:"+ir.Name, wid)
		}
		for _, rn := range w.RelationNames() {
			eid := "extension:" + w.Name + ":" + rn
			if prim[rn] {
				g.AddNode(eid, NodePrimitive)
			} else {
				g.AddNode(eid, NodeExtension)
			}
			g.AddDependency(wid, eid)
			if !prim[rn] && intensionalNames[rn] {
				g.AddDependency(eid, "intensional:"+rn)
			}
		}
	}
	return g.Analyze()
}
