package dl

import (
	"fmt"
)

// ErrUnsupported is returned by the tableau when a concept contains a
// constructor outside ALC plus positive at-least restrictions (the only
// number restrictions the calculus handles).
var ErrUnsupported = fmt.Errorf("dl: concept uses a constructor unsupported by the tableau")

// Satisfiable reports whether the concept is satisfiable, using a standard
// ALC completion tableau on the negation normal form. Positive at-least
// restrictions are handled by generating the required number of successors
// (sound and complete in the absence of at-most restrictions); a negated
// at-least restriction yields ErrUnsupported.
//
// The input must not contain defined names that require TBox unfolding; use
// Reasoner for TBox-level questions.
func Satisfiable(c *Concept) (bool, error) {
	root := newTableauNode()
	if err := root.add(c.NNF()); err != nil {
		return false, err
	}
	return expand(root)
}

// Subsumes reports whether sub ⊑ super holds, i.e. whether sub ⊓ ¬super is
// unsatisfiable.
func Subsumes(sub, super *Concept) (bool, error) {
	sat, err := Satisfiable(And(sub, Not(super)))
	if err != nil {
		return false, err
	}
	return !sat, nil
}

// EquivalentConcepts reports whether the two concepts subsume each other.
func EquivalentConcepts(a, b *Concept) (bool, error) {
	ab, err := Subsumes(a, b)
	if err != nil {
		return false, err
	}
	ba, err := Subsumes(b, a)
	if err != nil {
		return false, err
	}
	return ab && ba, nil
}

// Disjoint reports whether a ⊓ b is unsatisfiable.
func Disjoint(a, b *Concept) (bool, error) {
	sat, err := Satisfiable(And(a, b))
	if err != nil {
		return false, err
	}
	return !sat, nil
}

// tableauNode is an individual of the completion forest with its label set of
// concepts (in NNF) and role successors.
type tableauNode struct {
	labels     []*Concept
	successors map[string][]*tableauNode
}

func newTableauNode() *tableauNode {
	return &tableauNode{successors: map[string][]*tableauNode{}}
}

// add inserts a concept into the node label, returning an error for
// constructors the calculus does not handle. Duplicate labels are ignored.
func (n *tableauNode) add(c *Concept) error {
	if c.Op == OpNot && c.Args[0].Op != OpAtomic {
		return ErrUnsupported
	}
	for _, existing := range n.labels {
		if existing.Equal(c) {
			return nil
		}
	}
	n.labels = append(n.labels, c)
	return nil
}

func (n *tableauNode) has(c *Concept) bool {
	for _, existing := range n.labels {
		if existing.Equal(c) {
			return true
		}
	}
	return false
}

// clash reports whether the node label contains ⊥ or an atomic concept
// together with its negation.
func (n *tableauNode) clash() bool {
	atoms := map[string]bool{}
	negs := map[string]bool{}
	for _, c := range n.labels {
		switch c.Op {
		case OpBottom:
			return true
		case OpAtomic:
			atoms[c.Name] = true
		case OpNot:
			negs[c.Args[0].Name] = true
		}
	}
	for a := range atoms {
		if negs[a] {
			return true
		}
	}
	return false
}

// clone deep-copies the node and its successor forest.
func (n *tableauNode) clone() *tableauNode {
	out := newTableauNode()
	out.labels = append([]*Concept(nil), n.labels...)
	for role, succs := range n.successors {
		for _, s := range succs {
			out.successors[role] = append(out.successors[role], s.clone())
		}
	}
	return out
}

// expand applies the completion rules to the node until either a clash is
// unavoidable (returns false) or a complete clash-free forest is found
// (returns true).
func expand(n *tableauNode) (bool, error) {
	if n.clash() {
		return false, nil
	}
	// ⊓-rule: add conjuncts.
	for _, c := range n.labels {
		if c.Op == OpAnd {
			changed := false
			for _, a := range c.Args {
				if !n.has(a) {
					if err := n.add(a); err != nil {
						return false, err
					}
					changed = true
				}
			}
			if changed {
				return expand(n)
			}
		}
	}
	// ⊔-rule: branch.
	for _, c := range n.labels {
		if c.Op == OpOr {
			allPresent := false
			for _, a := range c.Args {
				if n.has(a) {
					allPresent = true
					break
				}
			}
			if allPresent {
				continue
			}
			for _, a := range c.Args {
				branch := n.clone()
				if err := branch.add(a); err != nil {
					return false, err
				}
				ok, err := expand(branch)
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil
				}
			}
			return false, nil
		}
	}
	// ∃- and ≥-rules: generate successors.
	for _, c := range n.labels {
		switch c.Op {
		case OpExists:
			if !hasSuccessorWith(n, c.Role, c.Args[0]) {
				succ := newTableauNode()
				if err := succ.add(c.Args[0]); err != nil {
					return false, err
				}
				n.successors[c.Role] = append(n.successors[c.Role], succ)
				if err := propagateForAll(n, c.Role, succ); err != nil {
					return false, err
				}
				return expand(n)
			}
		case OpAtLeast:
			needed := c.N - countSuccessorsWith(n, c.Role, c.Args[0])
			if needed > 0 {
				for i := 0; i < needed; i++ {
					succ := newTableauNode()
					if err := succ.add(c.Args[0]); err != nil {
						return false, err
					}
					n.successors[c.Role] = append(n.successors[c.Role], succ)
					if err := propagateForAll(n, c.Role, succ); err != nil {
						return false, err
					}
				}
				return expand(n)
			}
		case OpNot:
			if c.Args[0].Op != OpAtomic {
				return false, ErrUnsupported
			}
		}
	}
	// ∀-rule: propagate to existing successors.
	for _, c := range n.labels {
		if c.Op == OpForAll {
			changed := false
			for _, succ := range n.successors[c.Role] {
				if !succ.has(c.Args[0]) {
					if err := succ.add(c.Args[0]); err != nil {
						return false, err
					}
					changed = true
				}
			}
			if changed {
				return expand(n)
			}
		}
	}
	// Recurse into successors.
	for _, succs := range n.successors {
		for _, s := range succs {
			ok, err := expand(s)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
	}
	return true, nil
}

func hasSuccessorWith(n *tableauNode, role string, c *Concept) bool {
	for _, s := range n.successors[role] {
		if s.has(c) {
			return true
		}
	}
	return false
}

func countSuccessorsWith(n *tableauNode, role string, c *Concept) int {
	count := 0
	for _, s := range n.successors[role] {
		if s.has(c) {
			count++
		}
	}
	return count
}

func propagateForAll(n *tableauNode, role string, succ *tableauNode) error {
	for _, c := range n.labels {
		if c.Op == OpForAll && c.Role == role {
			if err := succ.add(c.Args[0]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reasoner answers TBox-level subsumption questions with the tableau, after
// unfolding defined names. The TBox must be acyclic.
type Reasoner struct {
	TBox  *TBox
	Depth int
}

// NewReasoner builds a tableau reasoner for an acyclic TBox; it returns an
// error if the TBox has a definitional cycle.
func NewReasoner(t *TBox) (*Reasoner, error) {
	if cycle := t.DependencyCycle(); cycle != nil {
		return nil, fmt.Errorf("dl: tableau reasoner requires an acyclic TBox, found cycle %v", cycle)
	}
	return &Reasoner{TBox: t, Depth: len(t.Definitions()) + 1}, nil
}

// Subsumes reports whether the name sub is subsumed by super under the TBox.
func (r *Reasoner) Subsumes(sub, super string) (bool, error) {
	a := r.TBox.UnfoldName(sub, r.Depth)
	b := r.TBox.UnfoldName(super, r.Depth)
	return Subsumes(a, b)
}

// SubsumesConcepts reports whether concept sub is subsumed by concept super
// under the TBox.
func (r *Reasoner) SubsumesConcepts(sub, super *Concept) (bool, error) {
	a := r.TBox.Unfold(sub, r.Depth)
	b := r.TBox.Unfold(super, r.Depth)
	return Subsumes(a, b)
}

// Satisfiable reports whether the named concept is satisfiable under the
// TBox.
func (r *Reasoner) Satisfiable(name string) (bool, error) {
	return Satisfiable(r.TBox.UnfoldName(name, r.Depth))
}
