// Package dl implements a small description logic in the style the paper's §3
// uses for its CAR/DOG example: concept expressions built from atomic
// concepts, conjunction, disjunction, negation, existential and universal role
// restrictions, and qualified at-least restrictions (the ∃4has.wheels of the
// paper); TBoxes of concept definitions; and two subsumption procedures — a
// structural one, complete for the conjunctive fragment the paper's examples
// live in, and a tableau one, complete for ALC.
//
// The package is the substrate for internal/structure (definition graphs,
// isomorphism — the CAR ≅ DOG argument), for the ontology-aware query
// expansion in internal/store, and for experiments E2, E3, E5 and A1.
package dl

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates the concept constructors.
type Op int

// Concept constructors.
const (
	// OpTop is the universal concept ⊤.
	OpTop Op = iota
	// OpBottom is the empty concept ⊥.
	OpBottom
	// OpAtomic is an atomic concept name.
	OpAtomic
	// OpNot is negation ¬C.
	OpNot
	// OpAnd is conjunction C ⊓ D.
	OpAnd
	// OpOr is disjunction C ⊔ D.
	OpOr
	// OpExists is the existential restriction ∃r.C.
	OpExists
	// OpForAll is the universal restriction ∀r.C.
	OpForAll
	// OpAtLeast is the qualified at-least restriction ≥n r.C (written in the
	// paper as ∃n r.C, e.g. ∃4has.wheels).
	OpAtLeast
)

// String names the constructor.
func (o Op) String() string {
	switch o {
	case OpTop:
		return "⊤"
	case OpBottom:
		return "⊥"
	case OpAtomic:
		return "atomic"
	case OpNot:
		return "¬"
	case OpAnd:
		return "⊓"
	case OpOr:
		return "⊔"
	case OpExists:
		return "∃"
	case OpForAll:
		return "∀"
	case OpAtLeast:
		return "≥"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Concept is a concept expression. Concepts are immutable once built; the
// constructor functions below are the only intended way to create them.
type Concept struct {
	Op   Op
	Name string     // atomic concept name (OpAtomic)
	Role string     // role name (OpExists, OpForAll, OpAtLeast)
	N    int        // cardinality (OpAtLeast)
	Args []*Concept // operands (OpNot: 1, OpAnd/OpOr: ≥1, restrictions: 1)
}

// Top returns the universal concept.
func Top() *Concept { return &Concept{Op: OpTop} }

// Bottom returns the empty concept.
func Bottom() *Concept { return &Concept{Op: OpBottom} }

// Atomic returns the atomic concept with the given name.
func Atomic(name string) *Concept { return &Concept{Op: OpAtomic, Name: name} }

// Not returns ¬c.
func Not(c *Concept) *Concept { return &Concept{Op: OpNot, Args: []*Concept{c}} }

// And returns the conjunction of the arguments; with no arguments it returns
// ⊤ and with one argument it returns that argument unchanged.
func And(cs ...*Concept) *Concept {
	switch len(cs) {
	case 0:
		return Top()
	case 1:
		return cs[0]
	}
	return &Concept{Op: OpAnd, Args: append([]*Concept(nil), cs...)}
}

// Or returns the disjunction of the arguments; with no arguments it returns
// ⊥ and with one argument it returns that argument unchanged.
func Or(cs ...*Concept) *Concept {
	switch len(cs) {
	case 0:
		return Bottom()
	case 1:
		return cs[0]
	}
	return &Concept{Op: OpOr, Args: append([]*Concept(nil), cs...)}
}

// Exists returns ∃role.c.
func Exists(role string, c *Concept) *Concept {
	return &Concept{Op: OpExists, Role: role, Args: []*Concept{c}}
}

// ForAll returns ∀role.c.
func ForAll(role string, c *Concept) *Concept {
	return &Concept{Op: OpForAll, Role: role, Args: []*Concept{c}}
}

// AtLeast returns ≥n role.c, the paper's ∃n role.c.
func AtLeast(n int, role string, c *Concept) *Concept {
	return &Concept{Op: OpAtLeast, N: n, Role: role, Args: []*Concept{c}}
}

// String renders the concept in the usual description-logic notation.
func (c *Concept) String() string {
	switch c.Op {
	case OpTop:
		return "⊤"
	case OpBottom:
		return "⊥"
	case OpAtomic:
		return c.Name
	case OpNot:
		return "¬" + parenthesize(c.Args[0])
	case OpAnd, OpOr:
		parts := make([]string, len(c.Args))
		for i, a := range c.Args {
			parts[i] = parenthesize(a)
		}
		sep := " ⊓ "
		if c.Op == OpOr {
			sep = " ⊔ "
		}
		return strings.Join(parts, sep)
	case OpExists:
		return "∃" + c.Role + "." + parenthesize(c.Args[0])
	case OpForAll:
		return "∀" + c.Role + "." + parenthesize(c.Args[0])
	case OpAtLeast:
		return fmt.Sprintf("≥%d %s.%s", c.N, c.Role, parenthesize(c.Args[0]))
	default:
		return "?"
	}
}

func parenthesize(c *Concept) string {
	if c.Op == OpAnd || c.Op == OpOr {
		return "(" + c.String() + ")"
	}
	return c.String()
}

// Size returns the number of constructor nodes in the concept expression.
func (c *Concept) Size() int {
	n := 1
	for _, a := range c.Args {
		n += a.Size()
	}
	return n
}

// Depth returns the maximal nesting depth of role restrictions.
func (c *Concept) Depth() int {
	max := 0
	for _, a := range c.Args {
		if d := a.Depth(); d > max {
			max = d
		}
	}
	switch c.Op {
	case OpExists, OpForAll, OpAtLeast:
		return max + 1
	default:
		return max
	}
}

// AtomicNames returns the atomic concept names occurring in the expression,
// sorted and deduplicated.
func (c *Concept) AtomicNames() []string {
	set := map[string]bool{}
	c.walk(func(x *Concept) {
		if x.Op == OpAtomic {
			set[x.Name] = true
		}
	})
	return sortedKeys(set)
}

// RoleNames returns the role names occurring in the expression, sorted and
// deduplicated.
func (c *Concept) RoleNames() []string {
	set := map[string]bool{}
	c.walk(func(x *Concept) {
		if x.Role != "" {
			set[x.Role] = true
		}
	})
	return sortedKeys(set)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (c *Concept) walk(fn func(*Concept)) {
	fn(c)
	for _, a := range c.Args {
		a.walk(fn)
	}
}

// Equal reports whether two concepts are syntactically identical (same
// constructor tree; argument order matters).
func (c *Concept) Equal(d *Concept) bool {
	if c.Op != d.Op || c.Name != d.Name || c.Role != d.Role || c.N != d.N || len(c.Args) != len(d.Args) {
		return false
	}
	for i := range c.Args {
		if !c.Args[i].Equal(d.Args[i]) {
			return false
		}
	}
	return true
}

// Rename returns a copy of the concept in which every atomic concept name and
// role name is replaced according to the given maps (names missing from a map
// are kept). It is used by the isomorphism machinery of internal/structure
// and by the workload generators.
func (c *Concept) Rename(concepts, roles map[string]string) *Concept {
	out := &Concept{Op: c.Op, Name: c.Name, Role: c.Role, N: c.N}
	if c.Op == OpAtomic {
		if r, ok := concepts[c.Name]; ok {
			out.Name = r
		}
	}
	if c.Role != "" {
		if r, ok := roles[c.Role]; ok {
			out.Role = r
		}
	}
	if len(c.Args) > 0 {
		out.Args = make([]*Concept, len(c.Args))
		for i, a := range c.Args {
			out.Args[i] = a.Rename(concepts, roles)
		}
	}
	return out
}

// NNF returns the negation normal form of the concept: negation pushed inward
// so it applies only to atomic concepts, using the dualities ¬⊤=⊥, ¬⊥=⊤,
// de Morgan, ¬∃r.C = ∀r.¬C, ¬∀r.C = ∃r.¬C. Negated at-least restrictions have
// no dual in the supported fragment and are reported as an error by the
// tableau; NNF leaves ¬(≥n r.C) in place.
func (c *Concept) NNF() *Concept {
	return nnf(c, false)
}

func nnf(c *Concept, negated bool) *Concept {
	switch c.Op {
	case OpTop:
		if negated {
			return Bottom()
		}
		return Top()
	case OpBottom:
		if negated {
			return Top()
		}
		return Bottom()
	case OpAtomic:
		if negated {
			return Not(Atomic(c.Name))
		}
		return Atomic(c.Name)
	case OpNot:
		return nnf(c.Args[0], !negated)
	case OpAnd, OpOr:
		args := make([]*Concept, len(c.Args))
		for i, a := range c.Args {
			args[i] = nnf(a, negated)
		}
		op := c.Op
		if negated {
			if op == OpAnd {
				op = OpOr
			} else {
				op = OpAnd
			}
		}
		return &Concept{Op: op, Args: args}
	case OpExists:
		if negated {
			return ForAll(c.Role, nnf(c.Args[0], true))
		}
		return Exists(c.Role, nnf(c.Args[0], false))
	case OpForAll:
		if negated {
			return Exists(c.Role, nnf(c.Args[0], true))
		}
		return ForAll(c.Role, nnf(c.Args[0], false))
	case OpAtLeast:
		inner := AtLeast(c.N, c.Role, nnf(c.Args[0], false))
		if negated {
			return Not(inner)
		}
		return inner
	default:
		return c
	}
}

// Conjuncts flattens nested conjunctions into a single slice; non-conjunction
// concepts are returned as a singleton.
func (c *Concept) Conjuncts() []*Concept {
	if c.Op != OpAnd {
		return []*Concept{c}
	}
	var out []*Concept
	for _, a := range c.Args {
		out = append(out, a.Conjuncts()...)
	}
	return out
}

// IsConjunctive reports whether the concept lies in the conjunctive fragment
// handled by the structural subsumption procedure: only ⊤, atomic concepts,
// conjunction, existential restrictions and at-least restrictions.
func (c *Concept) IsConjunctive() bool {
	switch c.Op {
	case OpTop, OpAtomic:
		return true
	case OpAnd, OpExists, OpAtLeast:
		for _, a := range c.Args {
			if !a.IsConjunctive() {
				return false
			}
		}
		return true
	default:
		return false
	}
}
