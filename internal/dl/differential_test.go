package dl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestStructuralTableauAgreement is the differential property test between
// the two subsumption procedures: on the conjunctive fragment (where both are
// sound and complete) they must give the same answer for every pair of
// randomly generated concepts.
func TestStructuralTableauAgreement(t *testing.T) {
	atoms := []string{"A", "B", "C", "D"}
	roles := []string{"r", "s"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomConjunctiveConcept(rng, atoms, roles, 2)
		b := randomConjunctiveConcept(rng, atoms, roles, 2)
		structural, err := StructuralSubsumes(a, b)
		if err != nil {
			return false
		}
		tableau, err := Subsumes(a, b)
		if err == ErrUnsupported {
			// Negating an at-least restriction takes the question outside
			// what the tableau handles; nothing to compare.
			return true
		}
		if err != nil {
			return false
		}
		if structural != tableau {
			t.Logf("disagreement on %s ⊑ %s: structural=%v tableau=%v", a, b, structural, tableau)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestReasonerAgreementOnPaperTBox checks that the two TBox-level reasoners
// classify the paper's vehicle/animal terminology identically.
func TestReasonerAgreementOnPaperTBox(t *testing.T) {
	tb := NewTBox()
	tb.MustDefine("car", SubsumedBy, And(Atomic("motorvehicle"), Atomic("roadvehicle"), Exists("size", Atomic("small"))))
	tb.MustDefine("pickup", SubsumedBy, And(Atomic("motorvehicle"), Atomic("roadvehicle"), Exists("size", Atomic("big"))))
	tb.MustDefine("motorvehicle", SubsumedBy, Exists("uses", Atomic("gasoline")))
	tb.MustDefine("roadvehicle", SubsumedBy, AtLeast(4, "has", Atomic("wheels")))
	tb.MustDefine("dog", SubsumedBy, And(Atomic("animal"), Atomic("quadruped"), Exists("size", Atomic("small"))))
	tb.MustDefine("horse", SubsumedBy, And(Atomic("animal"), Atomic("quadruped"), Exists("size", Atomic("big"))))
	tb.MustDefine("animal", SubsumedBy, Exists("ingests", Atomic("food")))
	tb.MustDefine("quadruped", SubsumedBy, AtLeast(4, "has", Atomic("leg")))

	structural := NewStructuralReasoner(tb)
	tableau, err := NewReasoner(tb)
	if err != nil {
		t.Fatal(err)
	}
	names := tb.DefinedNames()
	compared := 0
	for _, sub := range names {
		for _, super := range names {
			s, err := structural.Subsumes(sub, super)
			if err != nil {
				t.Fatalf("structural %s ⊑ %s: %v", sub, super, err)
			}
			answer, err := tableau.Subsumes(sub, super)
			if err == ErrUnsupported {
				// Questions whose negated right-hand side contains an
				// at-least restriction (roadvehicle, quadruped and their
				// subsumees) are outside the tableau's coverage.
				continue
			}
			if err != nil {
				t.Fatalf("tableau %s ⊑ %s: %v", sub, super, err)
			}
			compared++
			if s != answer {
				t.Errorf("%s ⊑ %s: structural=%v tableau=%v", sub, super, s, answer)
			}
		}
	}
	if compared == 0 {
		t.Fatal("no pairs were comparable; the fixture is mis-built")
	}
}

// randomConjunctiveConcept builds a random concept in the conjunctive fragment.
func randomConjunctiveConcept(rng *rand.Rand, atoms, roles []string, depth int) *Concept {
	n := 1 + rng.Intn(3)
	conjuncts := make([]*Concept, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case depth > 0 && rng.Intn(3) == 0:
			role := roles[rng.Intn(len(roles))]
			filler := randomConjunctiveConcept(rng, atoms, roles, depth-1)
			if rng.Intn(4) == 0 {
				conjuncts = append(conjuncts, AtLeast(1+rng.Intn(3), role, filler))
			} else {
				conjuncts = append(conjuncts, Exists(role, filler))
			}
		default:
			conjuncts = append(conjuncts, Atomic(atoms[rng.Intn(len(atoms))]))
		}
	}
	if rng.Intn(6) == 0 {
		conjuncts = append(conjuncts, Top())
	}
	return And(conjuncts...)
}
