package dl

import (
	"fmt"
	"sort"

	"repro/internal/order"
)

// DefinitionKind distinguishes full definitions (A ≡ C) from primitive ones
// (A ⊑ C).
type DefinitionKind int

// Definition kinds.
const (
	// Equivalent is a full definition A ≡ C.
	Equivalent DefinitionKind = iota
	// SubsumedBy is a primitive definition A ⊑ C.
	SubsumedBy
)

// String renders the definition connective.
func (k DefinitionKind) String() string {
	if k == Equivalent {
		return "≡"
	}
	return "⊑"
}

// Definition associates a defined concept name with its definition.
type Definition struct {
	Name    string
	Kind    DefinitionKind
	Concept *Concept
}

// String renders the definition.
func (d Definition) String() string {
	return fmt.Sprintf("%s %s %s", d.Name, d.Kind, d.Concept)
}

// TBox is a terminology: an ordered collection of definitions, at most one per
// defined name. TBoxes are the artifact the paper's eq. (4) and (8) present;
// a TBox plus the machinery of package structure is what the CAR/DOG argument
// is about.
type TBox struct {
	defs  []Definition
	index map[string]int
}

// NewTBox returns an empty TBox.
func NewTBox() *TBox {
	return &TBox{index: map[string]int{}}
}

// Define adds a definition. Defining the same name twice is an error.
func (t *TBox) Define(name string, kind DefinitionKind, c *Concept) error {
	if _, ok := t.index[name]; ok {
		return fmt.Errorf("dl: concept %q already defined", name)
	}
	t.index[name] = len(t.defs)
	t.defs = append(t.defs, Definition{Name: name, Kind: kind, Concept: c})
	return nil
}

// MustDefine is like Define but panics on error; intended for statically
// known terminologies in tests and examples.
func (t *TBox) MustDefine(name string, kind DefinitionKind, c *Concept) {
	if err := t.Define(name, kind, c); err != nil {
		panic(err)
	}
}

// Definitions returns the definitions in insertion order.
func (t *TBox) Definitions() []Definition {
	out := make([]Definition, len(t.defs))
	copy(out, t.defs)
	return out
}

// Definition returns the definition of a name and whether one exists.
func (t *TBox) Definition(name string) (Definition, bool) {
	i, ok := t.index[name]
	if !ok {
		return Definition{}, false
	}
	return t.defs[i], true
}

// DefinedNames returns the defined concept names in insertion order.
func (t *TBox) DefinedNames() []string {
	out := make([]string, len(t.defs))
	for i, d := range t.defs {
		out[i] = d.Name
	}
	return out
}

// PrimitiveNames returns the atomic concept names used in definitions but not
// themselves defined — the vocabulary on which the terminology bottoms out —
// sorted.
func (t *TBox) PrimitiveNames() []string {
	set := map[string]bool{}
	for _, d := range t.defs {
		for _, n := range d.Concept.AtomicNames() {
			if _, defined := t.index[n]; !defined {
				set[n] = true
			}
		}
	}
	return sortedKeys(set)
}

// RoleNames returns every role name used in the TBox, sorted.
func (t *TBox) RoleNames() []string {
	set := map[string]bool{}
	for _, d := range t.defs {
		for _, r := range d.Concept.RoleNames() {
			set[r] = true
		}
	}
	return sortedKeys(set)
}

// DependencyCycle returns a cycle of defined names each of whose definitions
// mentions the next, or nil if the TBox is acyclic (definitorial in the usual
// sense).
func (t *TBox) DependencyCycle() []string {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var cycle []string
	var visit func(name string, path []string) bool
	visit = func(name string, path []string) bool {
		color[name] = grey
		path = append(path, name)
		d, _ := t.Definition(name)
		deps := d.Concept.AtomicNames()
		sort.Strings(deps)
		for _, dep := range deps {
			if _, defined := t.index[dep]; !defined {
				continue
			}
			switch color[dep] {
			case grey:
				// Found a back edge; extract the cycle from the path.
				for i, n := range path {
					if n == dep {
						cycle = append([]string(nil), path[i:]...)
						return true
					}
				}
				cycle = append([]string(nil), path...)
				return true
			case white:
				if visit(dep, path) {
					return true
				}
			}
		}
		color[name] = black
		return false
	}
	for _, d := range t.defs {
		if color[d.Name] == white {
			if visit(d.Name, nil) {
				return cycle
			}
		}
	}
	return nil
}

// Acyclic reports whether the TBox has no definitional cycles.
func (t *TBox) Acyclic() bool { return t.DependencyCycle() == nil }

// Unfold replaces defined concept names inside c by their definitions,
// recursively, up to maxDepth substitution rounds. Primitive definitions
// A ⊑ C are unfolded as A ⊓' C, i.e. the name is kept (as a marker of the
// primitive component) and conjoined with its necessary condition, which is
// the standard treatment. For acyclic TBoxes a sufficiently large maxDepth
// yields the full unfolding; for cyclic ones the bound makes unfolding a
// total function, which experiment E3 exploits to measure how the expansion
// grows with depth.
func (t *TBox) Unfold(c *Concept, maxDepth int) *Concept {
	if maxDepth <= 0 {
		return c
	}
	switch c.Op {
	case OpAtomic:
		d, ok := t.Definition(c.Name)
		if !ok {
			return c
		}
		inner := t.Unfold(d.Concept, maxDepth-1)
		if d.Kind == Equivalent {
			return inner
		}
		// Primitive definition: keep the name as an atomic marker.
		return And(Atomic(primitiveMarker(c.Name)), inner)
	case OpTop, OpBottom:
		return c
	default:
		out := &Concept{Op: c.Op, Name: c.Name, Role: c.Role, N: c.N}
		out.Args = make([]*Concept, len(c.Args))
		for i, a := range c.Args {
			out.Args[i] = t.Unfold(a, maxDepth)
		}
		return out
	}
}

// primitiveMarker returns the atomic marker name used when unfolding a
// primitive definition.
func primitiveMarker(name string) string { return name + "*" }

// UnfoldName unfolds the definition of a defined name to the given depth. For
// an undefined name it returns the atomic concept itself.
func (t *TBox) UnfoldName(name string, maxDepth int) *Concept {
	return t.Unfold(Atomic(name), maxDepth)
}

// ExpansionSize returns the size of the unfolding of the named concept at the
// given depth. Experiment E3 uses the growth of this quantity to
// operationalize the paper's "when can we stop? … we can't".
func (t *TBox) ExpansionSize(name string, maxDepth int) int {
	return t.UnfoldName(name, maxDepth).Size()
}

// Classify computes the subsumption hierarchy over the defined names using
// the given subsumption test (typically Reasoner.Subsumes from this package)
// and returns it as a poset in which a ≤ b means "a is subsumed by b".
func (t *TBox) Classify(subsumes func(sub, super string) (bool, error)) (*order.Poset[string], error) {
	p := order.New[string]()
	names := t.DefinedNames()
	for _, n := range names {
		p.Add(n)
	}
	for _, a := range names {
		for _, b := range names {
			if a == b {
				continue
			}
			ok, err := subsumes(a, b)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			// Skip the reverse direction check if it would create a cycle
			// (equivalent concepts); keep the first direction only so the
			// result stays a partial order on names.
			if p.Leq(b, a) {
				continue
			}
			if err := p.Relate(a, b); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}
