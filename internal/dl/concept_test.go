package dl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConstructorsAndString(t *testing.T) {
	c := And(Atomic("motorvehicle"), Atomic("roadvehicle"), Exists("size", Atomic("small")))
	s := c.String()
	for _, want := range []string{"motorvehicle", "roadvehicle", "∃size.small", "⊓"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if got := AtLeast(4, "has", Atomic("wheels")).String(); got != "≥4 has.wheels" {
		t.Errorf("AtLeast rendering = %q", got)
	}
	if Top().String() != "⊤" || Bottom().String() != "⊥" {
		t.Error("Top/Bottom rendering wrong")
	}
	if got := Not(And(Atomic("a"), Atomic("b"))).String(); got != "¬(a ⊓ b)" {
		t.Errorf("negated conjunction rendering = %q", got)
	}
	if got := Or(Atomic("a"), Atomic("b")).String(); got != "a ⊔ b" {
		t.Errorf("disjunction rendering = %q", got)
	}
	if got := ForAll("r", Atomic("a")).String(); got != "∀r.a" {
		t.Errorf("forall rendering = %q", got)
	}
}

func TestAndOrDegenerateCases(t *testing.T) {
	if And().Op != OpTop {
		t.Error("empty conjunction should be ⊤")
	}
	if Or().Op != OpBottom {
		t.Error("empty disjunction should be ⊥")
	}
	a := Atomic("a")
	if And(a) != a || Or(a) != a {
		t.Error("singleton conjunction/disjunction should return the argument")
	}
}

func TestSizeAndDepth(t *testing.T) {
	c := And(Atomic("a"), Exists("r", And(Atomic("b"), Exists("s", Atomic("c")))))
	if got := c.Size(); got != 7 {
		t.Errorf("Size = %d, want 7", got)
	}
	if got := c.Depth(); got != 2 {
		t.Errorf("Depth = %d, want 2", got)
	}
	if Atomic("a").Depth() != 0 {
		t.Error("atomic concept has depth 0")
	}
}

func TestVocabulary(t *testing.T) {
	c := And(Atomic("car"), Exists("uses", Atomic("gasoline")), AtLeast(4, "has", Atomic("wheels")))
	atoms := c.AtomicNames()
	if len(atoms) != 3 || atoms[0] != "car" || atoms[1] != "gasoline" || atoms[2] != "wheels" {
		t.Errorf("AtomicNames = %v", atoms)
	}
	roles := c.RoleNames()
	if len(roles) != 2 || roles[0] != "has" || roles[1] != "uses" {
		t.Errorf("RoleNames = %v", roles)
	}
}

func TestEqual(t *testing.T) {
	a := And(Atomic("a"), Exists("r", Atomic("b")))
	b := And(Atomic("a"), Exists("r", Atomic("b")))
	c := And(Exists("r", Atomic("b")), Atomic("a"))
	if !a.Equal(b) {
		t.Error("identical trees should be equal")
	}
	if a.Equal(c) {
		t.Error("Equal is syntactic: argument order matters")
	}
	if AtLeast(4, "r", Atomic("x")).Equal(AtLeast(3, "r", Atomic("x"))) {
		t.Error("different cardinalities are not equal")
	}
}

func TestRename(t *testing.T) {
	c := And(Atomic("dog"), Exists("ingests", Atomic("food")))
	r := c.Rename(map[string]string{"dog": "car", "food": "gasoline"}, map[string]string{"ingests": "uses"})
	want := And(Atomic("car"), Exists("uses", Atomic("gasoline")))
	if !r.Equal(want) {
		t.Errorf("Rename = %v, want %v", r, want)
	}
	// Original untouched.
	if !c.Equal(And(Atomic("dog"), Exists("ingests", Atomic("food")))) {
		t.Error("Rename mutated the original")
	}
	// Unmapped names are preserved.
	r2 := c.Rename(map[string]string{}, map[string]string{})
	if !r2.Equal(c) {
		t.Error("empty rename should be identity")
	}
}

func TestNNF(t *testing.T) {
	cases := []struct {
		in   *Concept
		want *Concept
	}{
		{Not(Top()), Bottom()},
		{Not(Bottom()), Top()},
		{Not(Not(Atomic("a"))), Atomic("a")},
		{Not(And(Atomic("a"), Atomic("b"))), Or(Not(Atomic("a")), Not(Atomic("b")))},
		{Not(Or(Atomic("a"), Atomic("b"))), And(Not(Atomic("a")), Not(Atomic("b")))},
		{Not(Exists("r", Atomic("a"))), ForAll("r", Not(Atomic("a")))},
		{Not(ForAll("r", Atomic("a"))), Exists("r", Not(Atomic("a")))},
	}
	for _, c := range cases {
		if got := c.in.NNF(); !got.Equal(c.want) {
			t.Errorf("NNF(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// NNF of a negated at-least restriction keeps the negation in place.
	neg := Not(AtLeast(2, "r", Atomic("a")))
	if got := neg.NNF(); got.Op != OpNot || got.Args[0].Op != OpAtLeast {
		t.Errorf("NNF(¬≥2r.a) = %v, expected the negation to remain", got)
	}
}

func TestConjunctsFlattening(t *testing.T) {
	c := And(Atomic("a"), And(Atomic("b"), And(Atomic("c"), Atomic("d"))))
	if got := len(c.Conjuncts()); got != 4 {
		t.Errorf("Conjuncts = %d, want 4", got)
	}
	if got := len(Atomic("a").Conjuncts()); got != 1 {
		t.Errorf("Conjuncts of atom = %d, want 1", got)
	}
}

func TestIsConjunctive(t *testing.T) {
	good := And(Atomic("a"), Exists("r", Atomic("b")), AtLeast(2, "s", Top()))
	if !good.IsConjunctive() {
		t.Error("conjunctive concept misclassified")
	}
	for _, bad := range []*Concept{
		Not(Atomic("a")),
		Or(Atomic("a"), Atomic("b")),
		ForAll("r", Atomic("a")),
		Bottom(),
		And(Atomic("a"), Or(Atomic("b"), Atomic("c"))),
		Exists("r", Not(Atomic("a"))),
	} {
		if bad.IsConjunctive() {
			t.Errorf("%v should not be conjunctive", bad)
		}
	}
}

func TestOpString(t *testing.T) {
	ops := []Op{OpTop, OpBottom, OpAtomic, OpNot, OpAnd, OpOr, OpExists, OpForAll, OpAtLeast, Op(99)}
	for _, o := range ops {
		if o.String() == "" {
			t.Errorf("Op(%d).String() empty", int(o))
		}
	}
}

// randomConjunctive builds a deterministic pseudo-random conjunctive concept
// from an integer seed, for property tests.
func randomConjunctive(seed uint32, depth int) *Concept {
	names := []string{"a", "b", "c", "d"}
	roles := []string{"r", "s"}
	next := func() uint32 {
		seed = seed*1664525 + 1013904223
		return seed
	}
	var build func(d int) *Concept
	build = func(d int) *Concept {
		if d <= 0 || next()%3 == 0 {
			return Atomic(names[next()%uint32(len(names))])
		}
		switch next() % 3 {
		case 0:
			return And(build(d-1), build(d-1))
		case 1:
			return Exists(roles[next()%uint32(len(roles))], build(d-1))
		default:
			return AtLeast(int(next()%3)+1, roles[next()%uint32(len(roles))], build(d-1))
		}
	}
	return build(depth)
}

func TestPropertyNNFIdempotentAndNegationFree(t *testing.T) {
	f := func(seed uint32) bool {
		c := randomConjunctive(seed, 3)
		// Negate it to exercise the de Morgan pushes, excluding at-least
		// (whose negation legitimately remains).
		n := Not(c).NNF()
		again := n.NNF()
		if !n.Equal(again) {
			return false
		}
		ok := true
		n.walk(func(x *Concept) {
			if x.Op == OpNot && x.Args[0].Op != OpAtomic && x.Args[0].Op != OpAtLeast {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRenameRoundTrip(t *testing.T) {
	forward := map[string]string{"a": "x", "b": "y", "c": "z", "d": "w"}
	backward := map[string]string{"x": "a", "y": "b", "z": "c", "w": "d"}
	rf := map[string]string{"r": "p", "s": "q"}
	rb := map[string]string{"p": "r", "q": "s"}
	f := func(seed uint32) bool {
		c := randomConjunctive(seed, 3)
		return c.Rename(forward, rf).Rename(backward, rb).Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
