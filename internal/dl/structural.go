package dl

import (
	"fmt"
	"sort"
	"strings"
)

// DescriptionNode is a node of a description tree: the normal form of a
// concept in the conjunctive fragment (⊤, atomic names, ⊓, ∃r.C, ≥n r.C).
// Atoms collects the atomic names asserted at the node; Edges collects the
// role successors, each with the minimum multiplicity required (1 for a plain
// existential restriction).
type DescriptionNode struct {
	Atoms []string
	Edges []DescriptionEdge
}

// DescriptionEdge is a labeled edge of a description tree.
type DescriptionEdge struct {
	Role  string
	Min   int
	Child *DescriptionNode
}

// ErrNotConjunctive is returned when a concept outside the conjunctive
// fragment is passed to the structural machinery.
var ErrNotConjunctive = fmt.Errorf("dl: concept is outside the conjunctive fragment")

// DescriptionTree normalizes a conjunctive concept into a description tree.
// It returns ErrNotConjunctive for concepts using negation, disjunction,
// universal restrictions, or ⊥.
func DescriptionTree(c *Concept) (*DescriptionNode, error) {
	if !c.IsConjunctive() {
		return nil, ErrNotConjunctive
	}
	node := &DescriptionNode{}
	for _, conj := range c.Conjuncts() {
		switch conj.Op {
		case OpTop:
			// contributes nothing
		case OpAtomic:
			node.Atoms = append(node.Atoms, conj.Name)
		case OpExists, OpAtLeast:
			min := 1
			if conj.Op == OpAtLeast {
				min = conj.N
			}
			child, err := DescriptionTree(conj.Args[0])
			if err != nil {
				return nil, err
			}
			node.Edges = append(node.Edges, DescriptionEdge{Role: conj.Role, Min: min, Child: child})
		default:
			return nil, ErrNotConjunctive
		}
	}
	sort.Strings(node.Atoms)
	node.Atoms = dedupeStrings(node.Atoms)
	return node, nil
}

func dedupeStrings(xs []string) []string {
	var out []string
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// Size returns the number of nodes in the description tree.
func (n *DescriptionNode) Size() int {
	s := 1
	for _, e := range n.Edges {
		s += e.Child.Size()
	}
	return s
}

// String renders the tree in a compact nested notation, deterministic up to
// the order in which edges were produced.
func (n *DescriptionNode) String() string {
	var parts []string
	if len(n.Atoms) > 0 {
		parts = append(parts, strings.Join(n.Atoms, ","))
	}
	for _, e := range n.Edges {
		parts = append(parts, fmt.Sprintf("%s[%d]->%s", e.Role, e.Min, e.Child))
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// homomorphism reports whether there is a homomorphism from pattern to target
// rooted at their roots: every atom required by pattern is present in target,
// and every edge of pattern maps to an edge of target with the same role, at
// least the required multiplicity, and a homomorphic child.
func homomorphism(pattern, target *DescriptionNode) bool {
	targetAtoms := map[string]bool{}
	for _, a := range target.Atoms {
		targetAtoms[a] = true
	}
	for _, a := range pattern.Atoms {
		if !targetAtoms[a] {
			return false
		}
	}
	for _, pe := range pattern.Edges {
		found := false
		for _, te := range target.Edges {
			if te.Role == pe.Role && te.Min >= pe.Min && homomorphism(pe.Child, te.Child) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// StructuralSubsumes reports whether sub ⊑ super for concepts in the
// conjunctive fragment, by checking for a homomorphism from super's
// description tree into sub's. The check is sound, and complete for the
// EL-with-at-least fragment in which the paper's examples are written.
func StructuralSubsumes(sub, super *Concept) (bool, error) {
	subTree, err := DescriptionTree(sub)
	if err != nil {
		return false, err
	}
	superTree, err := DescriptionTree(super)
	if err != nil {
		return false, err
	}
	return homomorphism(superTree, subTree), nil
}

// StructuralEquivalent reports whether the two conjunctive concepts subsume
// each other.
func StructuralEquivalent(a, b *Concept) (bool, error) {
	ab, err := StructuralSubsumes(a, b)
	if err != nil {
		return false, err
	}
	ba, err := StructuralSubsumes(b, a)
	if err != nil {
		return false, err
	}
	return ab && ba, nil
}

// StructuralReasoner offers TBox-level subsumption over the conjunctive
// fragment: defined names are unfolded (to the given depth) before the
// structural check. For acyclic TBoxes an unfolding depth of the number of
// definitions is always sufficient.
type StructuralReasoner struct {
	TBox  *TBox
	Depth int
}

// NewStructuralReasoner builds a reasoner whose unfolding depth defaults to
// the number of definitions in the TBox plus one.
func NewStructuralReasoner(t *TBox) *StructuralReasoner {
	return &StructuralReasoner{TBox: t, Depth: len(t.Definitions()) + 1}
}

// Subsumes reports whether the defined (or primitive) name sub is subsumed by
// super according to the TBox.
func (r *StructuralReasoner) Subsumes(sub, super string) (bool, error) {
	a := r.TBox.UnfoldName(sub, r.Depth)
	b := r.TBox.UnfoldName(super, r.Depth)
	return StructuralSubsumes(a, b)
}

// SubsumesConcepts reports whether concept sub is subsumed by concept super
// after unfolding both against the TBox.
func (r *StructuralReasoner) SubsumesConcepts(sub, super *Concept) (bool, error) {
	a := r.TBox.Unfold(sub, r.Depth)
	b := r.TBox.Unfold(super, r.Depth)
	return StructuralSubsumes(a, b)
}
