package dl

import (
	"errors"
	"testing"
	"testing/quick"
)

// vehiclesTBox builds the paper's eq. (4) terminology:
//
//	car    ⊑ motorvehicle ⊓ roadvehicle ⊓ ∃size.small
//	pickup ⊑ motorvehicle ⊓ roadvehicle ⊓ ∃size.big
//	motorvehicle ⊑ ∃uses.gasoline
//	roadvehicle  ⊑ ≥4 has.wheels
func vehiclesTBox(t testing.TB) *TBox {
	t.Helper()
	tb := NewTBox()
	tb.MustDefine("car", SubsumedBy, And(Atomic("motorvehicle"), Atomic("roadvehicle"), Exists("size", Atomic("small"))))
	tb.MustDefine("pickup", SubsumedBy, And(Atomic("motorvehicle"), Atomic("roadvehicle"), Exists("size", Atomic("big"))))
	tb.MustDefine("motorvehicle", SubsumedBy, Exists("uses", Atomic("gasoline")))
	tb.MustDefine("roadvehicle", SubsumedBy, AtLeast(4, "has", Atomic("wheels")))
	return tb
}

// animalsTBox builds the paper's eq. (8) terminology, isomorphic to the
// vehicles one.
func animalsTBox(t testing.TB) *TBox {
	t.Helper()
	tb := NewTBox()
	tb.MustDefine("dog", SubsumedBy, And(Atomic("animal"), Atomic("quadruped"), Exists("size", Atomic("small"))))
	tb.MustDefine("horse", SubsumedBy, And(Atomic("animal"), Atomic("quadruped"), Exists("size", Atomic("big"))))
	tb.MustDefine("animal", SubsumedBy, Exists("ingests", Atomic("food")))
	tb.MustDefine("quadruped", SubsumedBy, AtLeast(4, "has", Atomic("leg")))
	return tb
}

func TestTBoxDefineAndLookup(t *testing.T) {
	tb := vehiclesTBox(t)
	if err := tb.Define("car", Equivalent, Top()); err == nil {
		t.Error("redefining car should fail")
	}
	d, ok := tb.Definition("car")
	if !ok || d.Kind != SubsumedBy {
		t.Fatalf("Definition(car) = %v, %v", d, ok)
	}
	if _, ok := tb.Definition("boat"); ok {
		t.Error("undefined name should not have a definition")
	}
	if got := len(tb.Definitions()); got != 4 {
		t.Errorf("Definitions len = %d, want 4", got)
	}
	if got := tb.DefinedNames(); got[0] != "car" || len(got) != 4 {
		t.Errorf("DefinedNames = %v", got)
	}
	if d.String() == "" || d.Kind.String() != "⊑" || (Definition{Kind: Equivalent}).Kind.String() != "≡" {
		t.Error("definition rendering wrong")
	}
}

func TestPrimitiveAndRoleNames(t *testing.T) {
	tb := vehiclesTBox(t)
	prims := tb.PrimitiveNames()
	want := []string{"big", "gasoline", "small", "wheels"}
	if len(prims) != len(want) {
		t.Fatalf("PrimitiveNames = %v, want %v", prims, want)
	}
	for i := range want {
		if prims[i] != want[i] {
			t.Errorf("PrimitiveNames[%d] = %q, want %q", i, prims[i], want[i])
		}
	}
	roles := tb.RoleNames()
	if len(roles) != 3 || roles[0] != "has" || roles[1] != "size" || roles[2] != "uses" {
		t.Errorf("RoleNames = %v", roles)
	}
}

func TestDependencyCycle(t *testing.T) {
	tb := vehiclesTBox(t)
	if !tb.Acyclic() {
		t.Error("vehicles TBox should be acyclic")
	}
	cyc := NewTBox()
	cyc.MustDefine("a", Equivalent, Exists("r", Atomic("b")))
	cyc.MustDefine("b", Equivalent, Exists("r", Atomic("a")))
	if cyc.Acyclic() {
		t.Error("a/b cycle should be detected")
	}
	if got := cyc.DependencyCycle(); len(got) != 2 {
		t.Errorf("DependencyCycle = %v", got)
	}
}

func TestUnfoldEquivalentAndPrimitive(t *testing.T) {
	tb := NewTBox()
	tb.MustDefine("parent", Equivalent, Exists("hasChild", Atomic("person")))
	tb.MustDefine("grandparent", Equivalent, Exists("hasChild", Atomic("parent")))
	u := tb.UnfoldName("grandparent", 10)
	want := Exists("hasChild", Exists("hasChild", Atomic("person")))
	if !u.Equal(want) {
		t.Errorf("Unfold(grandparent) = %v, want %v", u, want)
	}
	// Primitive definitions keep a marker.
	vt := vehiclesTBox(t)
	uc := vt.UnfoldName("car", 10)
	atoms := uc.AtomicNames()
	found := false
	for _, a := range atoms {
		if a == "motorvehicle*" {
			found = true
		}
	}
	if !found {
		t.Errorf("unfolding a primitive definition should keep its marker, atoms = %v", atoms)
	}
	// Depth zero leaves the concept untouched.
	if !vt.Unfold(Atomic("car"), 0).Equal(Atomic("car")) {
		t.Error("Unfold with depth 0 should be identity")
	}
}

func TestExpansionSizeGrowsWithDepth(t *testing.T) {
	tb := vehiclesTBox(t)
	s1 := tb.ExpansionSize("car", 1)
	s2 := tb.ExpansionSize("car", 3)
	if s2 <= s1 {
		t.Errorf("expansion should grow with depth: depth1=%d depth3=%d", s1, s2)
	}
}

func TestDescriptionTreeAndErrors(t *testing.T) {
	c := And(Atomic("a"), Exists("r", Atomic("b")), AtLeast(4, "has", Atomic("w")))
	n, err := DescriptionTree(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Atoms) != 1 || len(n.Edges) != 2 || n.Size() != 3 {
		t.Errorf("tree = %v", n)
	}
	if n.String() == "" {
		t.Error("tree rendering empty")
	}
	if _, err := DescriptionTree(Or(Atomic("a"), Atomic("b"))); !errors.Is(err, ErrNotConjunctive) {
		t.Errorf("expected ErrNotConjunctive, got %v", err)
	}
	if _, err := StructuralSubsumes(Not(Atomic("a")), Atomic("a")); err == nil {
		t.Error("structural subsumption outside the fragment should fail")
	}
}

func TestStructuralSubsumption(t *testing.T) {
	cases := []struct {
		sub, super *Concept
		want       bool
	}{
		{And(Atomic("a"), Atomic("b")), Atomic("a"), true},
		{Atomic("a"), And(Atomic("a"), Atomic("b")), false},
		{Exists("r", And(Atomic("a"), Atomic("b"))), Exists("r", Atomic("a")), true},
		{Exists("r", Atomic("a")), Exists("r", And(Atomic("a"), Atomic("b"))), false},
		{And(Exists("r", Atomic("a")), Exists("r", Atomic("b"))), Exists("r", And(Atomic("a"), Atomic("b"))), false},
		{Exists("r", And(Atomic("a"), Atomic("b"))), And(Exists("r", Atomic("a")), Exists("r", Atomic("b"))), true},
		{AtLeast(4, "has", Atomic("w")), Exists("has", Atomic("w")), true},
		{Exists("has", Atomic("w")), AtLeast(4, "has", Atomic("w")), false},
		{AtLeast(4, "has", Atomic("w")), AtLeast(2, "has", Atomic("w")), true},
		{Atomic("a"), Top(), true},
		{Top(), Atomic("a"), false},
	}
	for _, c := range cases {
		got, err := StructuralSubsumes(c.sub, c.super)
		if err != nil {
			t.Errorf("StructuralSubsumes(%v, %v): %v", c.sub, c.super, err)
			continue
		}
		if got != c.want {
			t.Errorf("StructuralSubsumes(%v, %v) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestStructuralEquivalentOrderInsensitive(t *testing.T) {
	a := And(Atomic("p"), Atomic("q"), Exists("r", Atomic("x")))
	b := And(Exists("r", Atomic("x")), Atomic("q"), Atomic("p"))
	eq, err := StructuralEquivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("conjunct order should not affect equivalence")
	}
	ne, err := StructuralEquivalent(a, Atomic("p"))
	if err != nil {
		t.Fatal(err)
	}
	if ne {
		t.Error("a ⊓ q ⊓ ∃r.x is not equivalent to p")
	}
}

func TestStructuralReasonerOnVehicles(t *testing.T) {
	tb := vehiclesTBox(t)
	r := NewStructuralReasoner(tb)
	ok, err := r.Subsumes("car", "motorvehicle")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("car should be subsumed by motorvehicle")
	}
	ok, err = r.Subsumes("motorvehicle", "car")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("motorvehicle should not be subsumed by car")
	}
	ok, err = r.SubsumesConcepts(Atomic("car"), Exists("uses", Atomic("gasoline")))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("a car uses gasoline (through motorvehicle)")
	}
	ok, err = r.Subsumes("car", "pickup")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("car is not a pickup")
	}
}

func TestTableauSatisfiability(t *testing.T) {
	cases := []struct {
		c    *Concept
		want bool
	}{
		{Atomic("a"), true},
		{And(Atomic("a"), Not(Atomic("a"))), false},
		{Bottom(), false},
		{Or(And(Atomic("a"), Not(Atomic("a"))), Atomic("b")), true},
		{And(Exists("r", Atomic("a")), ForAll("r", Not(Atomic("a")))), false},
		{And(Exists("r", Atomic("a")), ForAll("r", Atomic("b"))), true},
		{And(AtLeast(3, "r", Atomic("a")), ForAll("r", Not(Atomic("a")))), false},
		{Not(Top()), false},
		{ForAll("r", Bottom()), true}, // vacuously satisfiable with no r-successor
	}
	for _, c := range cases {
		got, err := Satisfiable(c.c)
		if err != nil {
			t.Errorf("Satisfiable(%v): %v", c.c, err)
			continue
		}
		if got != c.want {
			t.Errorf("Satisfiable(%v) = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestTableauSubsumption(t *testing.T) {
	cases := []struct {
		sub, super *Concept
		want       bool
	}{
		{And(Atomic("a"), Atomic("b")), Atomic("a"), true},
		{Atomic("a"), Or(Atomic("a"), Atomic("b")), true},
		{Or(Atomic("a"), Atomic("b")), Atomic("a"), false},
		{Exists("r", And(Atomic("a"), Atomic("b"))), Exists("r", Atomic("a")), true},
		{And(Exists("r", Atomic("a")), ForAll("r", Atomic("b"))), Exists("r", And(Atomic("a"), Atomic("b"))), true},
		{Atomic("a"), Bottom(), false},
		{Bottom(), Atomic("a"), true},
	}
	for _, c := range cases {
		got, err := Subsumes(c.sub, c.super)
		if err != nil {
			t.Errorf("Subsumes(%v, %v): %v", c.sub, c.super, err)
			continue
		}
		if got != c.want {
			t.Errorf("Subsumes(%v, %v) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestTableauEquivalentAndDisjoint(t *testing.T) {
	eq, err := EquivalentConcepts(And(Atomic("a"), Atomic("b")), And(Atomic("b"), Atomic("a")))
	if err != nil || !eq {
		t.Errorf("commuted conjunction should be equivalent: %v %v", eq, err)
	}
	dj, err := Disjoint(Atomic("a"), Not(Atomic("a")))
	if err != nil || !dj {
		t.Errorf("a and ¬a should be disjoint: %v %v", dj, err)
	}
	dj, err = Disjoint(Atomic("a"), Atomic("b"))
	if err != nil || dj {
		t.Errorf("distinct atoms are not disjoint without axioms: %v %v", dj, err)
	}
}

func TestTableauUnsupportedNegatedAtLeast(t *testing.T) {
	if _, err := Satisfiable(Not(AtLeast(2, "r", Atomic("a")))); !errors.Is(err, ErrUnsupported) {
		t.Errorf("negated at-least should be unsupported, got %v", err)
	}
}

func TestTableauReasonerRequiresAcyclicTBox(t *testing.T) {
	cyc := NewTBox()
	cyc.MustDefine("a", Equivalent, Exists("r", Atomic("b")))
	cyc.MustDefine("b", Equivalent, Exists("r", Atomic("a")))
	if _, err := NewReasoner(cyc); err == nil {
		t.Error("cyclic TBox should be rejected by the tableau reasoner")
	}
}

func TestTableauReasonerOnVehicles(t *testing.T) {
	tb := vehiclesTBox(t)
	r, err := NewReasoner(tb)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := r.Subsumes("car", "motorvehicle")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("tableau: car ⊑ motorvehicle should hold")
	}
	ok, err = r.Subsumes("pickup", "car")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("tableau: pickup ⊑ car should not hold")
	}
	sat, err := r.Satisfiable("car")
	if err != nil {
		t.Fatal(err)
	}
	if !sat {
		t.Error("car should be satisfiable")
	}
	ok, err = r.SubsumesConcepts(Atomic("car"), Exists("uses", Atomic("gasoline")))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("tableau: car uses gasoline")
	}
}

func TestClassifyVehicles(t *testing.T) {
	tb := vehiclesTBox(t)
	r := NewStructuralReasoner(tb)
	p, err := tb.Classify(r.Subsumes)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Leq("car", "motorvehicle") || !p.Leq("car", "roadvehicle") {
		t.Error("classification should place car below motorvehicle and roadvehicle")
	}
	if !p.Leq("pickup", "motorvehicle") {
		t.Error("classification should place pickup below motorvehicle")
	}
	if p.Leq("motorvehicle", "car") {
		t.Error("classification should not place motorvehicle below car")
	}
	if p.IsTree() {
		t.Error("the vehicle hierarchy is a DAG, not a tree (car has two parents)")
	}
}

func TestStructuralAndTableauAgreeOnConjunctiveFragment(t *testing.T) {
	f := func(s1, s2 uint32) bool {
		a := randomConjunctive(s1, 3)
		b := randomConjunctive(s2, 3)
		// The tableau cannot see negated at-least restrictions; skip pairs
		// where the super-concept contains one.
		hasAtLeast := false
		b.walk(func(x *Concept) {
			if x.Op == OpAtLeast {
				hasAtLeast = true
			}
		})
		if hasAtLeast {
			return true
		}
		sGot, err := StructuralSubsumes(a, b)
		if err != nil {
			return false
		}
		tGot, err := Subsumes(a, b)
		if err != nil {
			return false
		}
		return sGot == tGot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyStructuralSubsumptionReflexiveTransitive(t *testing.T) {
	f := func(s1, s2, s3 uint32) bool {
		a := randomConjunctive(s1, 2)
		b := randomConjunctive(s2, 2)
		c := randomConjunctive(s3, 2)
		refl, err := StructuralSubsumes(a, a)
		if err != nil || !refl {
			return false
		}
		ab, _ := StructuralSubsumes(a, b)
		bc, _ := StructuralSubsumes(b, c)
		if ab && bc {
			ac, _ := StructuralSubsumes(a, c)
			return ac
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStructuralSubsumes(b *testing.B) {
	tb := vehiclesTBox(b)
	r := NewStructuralReasoner(tb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Subsumes("car", "motorvehicle"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableauSubsumes(b *testing.B) {
	tb := vehiclesTBox(b)
	r, err := NewReasoner(tb)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Subsumes("car", "motorvehicle"); err != nil {
			b.Fatal(err)
		}
	}
}
