// Package durable is the store's crash-safe persistence engine: a write-ahead
// log in front of the in-memory triple store, compacted into generational
// (tiered) delta segment files.
//
// The engine journals every acknowledged mutation — at dictionary-id level,
// through the store's Journal hook — before reporting it committed, batching
// concurrent committers behind one fsync (group commit). A checkpoint retires
// one window of the log by folding it into a young delta segment (cost
// proportional to what changed, not to the corpus), and a size-ratio-triggered
// background merge folds young segments into older generations, applying
// tombstoned removes, so the chain stays short. Recovery chains the segments,
// folds them in memory, bulk-restores the result through the store's
// RestoreSorted fast path, and replays only the log tail — startup cost is
// dominated by sequential segment I/O, not index mutation.
//
// Typical use:
//
//	st := store.New()
//	eng, err := durable.Open(st, durable.Options{Dir: dataDir})
//	if err != nil { ... }
//	defer eng.Close()
//	// st now persists: every Add/AddBatch/Remove is journaled, and the next
//	// Open over the same directory rebuilds exactly the committed state.
//
// The store handed to Open must be empty — the directory is the single
// source of truth, and recovery rebuilds the store from it. Load corpora
// AFTER opening, through the store's ordinary mutation methods, so the loads
// are journaled like any other write.
package durable

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// FsyncPolicy says when the log is fsynced relative to commit
// acknowledgement — the durability/latency trade every WAL exposes.
type FsyncPolicy int

// Policies, from safest to fastest.
const (
	// FsyncAlways fsyncs before every commit acknowledgement (group
	// committed: concurrent committers share one fsync). An acknowledged
	// mutation survives both process and OS crash.
	FsyncAlways FsyncPolicy = iota
	// FsyncBatch acknowledges after the write syscall and fsyncs on a
	// background interval. An acknowledged mutation survives a process
	// crash; an OS crash may lose the last interval's worth.
	FsyncBatch
	// FsyncOff acknowledges after the write syscall and fsyncs only at
	// rotation and close. For tests and bulk loads.
	FsyncOff
)

// String names the policy the way the -fsync flag spells it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses the -fsync flag forms: always, batch, off.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, batch or off)", s)
}

// Defaults for Options zero values.
const (
	// DefaultBatchInterval is the FsyncBatch background fsync cadence.
	DefaultBatchInterval = 10 * time.Millisecond
	// DefaultCheckpointBytes is the log growth that triggers a checkpoint.
	DefaultCheckpointBytes = 64 << 20
)

// Options configures Open. The zero value of every field but Dir is usable.
type Options struct {
	// Dir is the data directory — segments and log files live there. It is
	// created if missing. Required.
	Dir string
	// Fsync is the durability policy; the zero value is FsyncAlways.
	Fsync FsyncPolicy
	// BatchInterval is the background fsync cadence under FsyncBatch;
	// DefaultBatchInterval if zero.
	BatchInterval time.Duration
	// CheckpointBytes triggers an automatic checkpoint once the log has
	// grown past it; DefaultCheckpointBytes if zero, negative disables
	// automatic checkpoints (Checkpoint can still be called directly).
	CheckpointBytes int64
	// MergeRatio is the size-separation factor of the background merge: a
	// checkpoint schedules a merge when an older segment is at most
	// MergeRatio times the combined size of everything younger (see
	// pickMergeRun). DefaultMergeRatio if zero, negative disables background
	// merges entirely — the chain then only grows, which tests use for
	// deterministic tier layouts.
	MergeRatio float64
	// MaxSegments force-merges the whole chain once it holds more than this
	// many segments; DefaultMaxSegments if zero, negative disables the cap.
	// Ignored while MergeRatio is negative.
	MaxSegments int
	// Metrics, when non-nil, registers the engine's instruments on the given
	// registry: fsync latency and group-commit size distributions, WAL
	// frame/byte counters, checkpoint/merge durations, compaction ratio,
	// segment-chain gauges, write amplification, and recovery time. Nil
	// disables all observation.
	Metrics *obs.Registry
}

// TierStats describes one live segment of the chain, oldest first in
// Stats.Tiers.
type TierStats struct {
	// Start and End are the WAL seq window the segment folds.
	Start, End uint64
	// Triples is the segment's net adds, Tombstones its net removes.
	Triples    int
	Tombstones int
	// DictNames is how many dictionary ids the segment's window minted.
	DictNames int
	// Bytes is the segment file size.
	Bytes int64
}

// Stats is a point-in-time report of the engine's durability state, the
// shape GET /stats serves.
type Stats struct {
	// Seq is the sequence number of the last journaled record.
	Seq uint64
	// DurableSeq is the highest seq known fsynced; Seq - DurableSeq records
	// are exposed to an OS crash right now.
	DurableSeq uint64
	// LastFsync is when the log last reached stable storage.
	LastFsync time.Time
	// Fsyncs counts fsync syscalls on the log — under group commit, usually
	// far fewer than commits.
	Fsyncs int64
	// WALBytes is the log growth since the last checkpoint.
	WALBytes int64
	// Segments is the number of live segment files — the tiers of the chain.
	Segments int
	// SegmentSeq is the seq the newest segment covers through.
	SegmentSeq uint64
	// Tiers describes each live segment, oldest first.
	Tiers []TierStats
	// Checkpoints counts completed checkpoints this process.
	Checkpoints int64
	// Merges counts completed background merges this process, and
	// LastMergeDuration is the wall time of the most recent one.
	Merges            int64
	LastMergeDuration time.Duration
	// WALAppendedBytes, CheckpointBytes and MergeBytes are this process's
	// cumulative physical writes: log appends, checkpoint segment dumps,
	// and merge rewrites. WriteAmplification is their sum over
	// WALAppendedBytes — how many bytes hit disk per logical log byte
	// (1.0 = no segment overhead yet; 0 while nothing has been appended).
	WALAppendedBytes   int64
	CheckpointBytes    int64
	MergeBytes         int64
	WriteAmplification float64
	// RecoverySeconds is how long Open spent rebuilding the store from the
	// directory (segment fold + bulk restore + tail replay).
	RecoverySeconds float64
	// Err is the engine's sticky error, "" while healthy. Once set, commits
	// fail and the engine needs a restart (and recovery) to trust its log.
	Err string
}

// Engine is the durability engine: it implements store.Journal, owns the
// log writer and the checkpoint/merge lifecycle, and is what Open installs
// on the store. Safe for concurrent use.
type Engine struct {
	st   *store.Store
	opts Options
	w    *walWriter

	// ckptMu serializes the segment-chain writers: checkpoints (manual and
	// automatic) and background merges. Always taken before mu.
	ckptMu sync.Mutex

	// mu guards the segment chain and the counters below.
	mu           sync.Mutex
	tiers        []segMeta
	dictCovered  store.SymbolID // dictionary ids folded into the chain
	checkpoints  int64
	merges       int64
	lastMergeDur time.Duration
	ckptBytes    int64 // cumulative segment bytes written by checkpoints
	mergeBytes   int64 // cumulative segment bytes written by merges
	ckptErr      error // last checkpoint/merge failure, cleared by a later success

	recoveryDur time.Duration // set once in Open, read-only afterwards

	ckptC  chan struct{} // pokes the background goroutine; capacity 1
	mergeC chan struct{} // merge-needed poke; capacity 1
	done   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	// mergeHook, when non-nil, runs right before a merge publishes its
	// output — after the fold, before the rename. Tests use it to park a
	// merge mid-flight and prove Close waits for (or cleanly aborts) it.
	// Set it before any mutation traffic; the background goroutine reads it
	// unsynchronized.
	mergeHook func()

	// Metric handles, nil without Options.Metrics (observations are
	// nil-safe).
	mCkptSeconds  *obs.Histogram
	mMergeSeconds *obs.Histogram
	mCompaction   *obs.Gauge
}

// Open recovers the data directory into st (which must be a fresh, empty
// store — recovery rebuilds both its dictionary and its triples, and the ids
// in the directory's files are only meaningful from an empty dictionary),
// installs the engine as the store's journal, and starts the background
// fsync/checkpoint/merge goroutine. On a pristine directory it simply starts
// a new log. The caller must Close the engine to release the log file and
// flush the tail.
func Open(st *store.Store, opts Options) (*Engine, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("durable: Options.Dir is required")
	}
	if st.Len() != 0 || st.DictLen() != 0 {
		return nil, fmt.Errorf("durable: Open needs an empty store (it holds %d triples, %d dictionary entries); recovery is the only writer allowed before the journal is attached", st.Len(), st.DictLen())
	}
	if opts.BatchInterval <= 0 {
		opts.BatchInterval = DefaultBatchInterval
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = DefaultCheckpointBytes
	}
	if opts.MergeRatio == 0 {
		opts.MergeRatio = DefaultMergeRatio
	}
	if opts.MaxSegments == 0 {
		opts.MaxSegments = DefaultMaxSegments
	}
	if err := ensureDir(opts.Dir); err != nil {
		return nil, err
	}
	recStart := time.Now()
	rec, err := recoverDir(st, opts.Dir)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		st:          st,
		opts:        opts,
		w:           newWALWriter(opts.Dir, opts.Fsync, rec.file, rec.lastSeq, rec.fileFirst),
		tiers:       rec.tiers,
		dictCovered: rec.dictCovered,
		recoveryDur: time.Since(recStart),
		ckptC:       make(chan struct{}, 1),
		mergeC:      make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	if opts.Metrics != nil {
		// Before the journal attaches and the background goroutine starts:
		// nothing else can touch the handles yet, so plain assignment is safe
		// and the hot paths read them without synchronization.
		e.registerMetrics(opts.Metrics)
	}
	st.SetJournal(e)
	e.wg.Add(1)
	go e.background()
	// Recovery may have left an unbalanced chain (many young segments from
	// a crash-happy run); let the background goroutine even it out.
	e.mu.Lock()
	_, needMerge := e.pickMergeLocked()
	e.mu.Unlock()
	if needMerge {
		e.pokeMerge()
	}
	return e, nil
}

// registerMetrics registers the engine's instruments on reg. Called from
// Open only, before any journal traffic or background goroutine exists.
func (e *Engine) registerMetrics(reg *obs.Registry) {
	e.w.mFsyncSeconds = reg.Histogram("onto_wal_fsync_seconds", "Log fsync syscall latency.", obs.LatencyBuckets())
	e.w.mCommitFrames = reg.Histogram("onto_wal_commit_frames", "Frames drained per group commit.", obs.SizeBuckets())
	e.w.mFrames = reg.Counter("onto_wal_frames_total", "Frames appended to the write-ahead log.")
	e.w.mBytes = reg.Counter("onto_wal_bytes_total", "Bytes appended to the write-ahead log.")
	e.mCkptSeconds = reg.Histogram("onto_checkpoint_seconds", "Checkpoint wall time (rotate, fold, dump, cleanup).", obs.LatencyBuckets())
	e.mMergeSeconds = reg.Histogram("onto_durable_merge_seconds", "Background segment-merge wall time.", obs.LatencyBuckets())
	e.mCompaction = reg.Gauge("onto_checkpoint_compaction_ratio", "Last checkpoint's segment bytes per superseded log byte.")
	reg.Gauge("onto_durable_recovery_seconds", "Wall time Open spent rebuilding the store from the data directory.").Set(e.recoveryDur.Seconds())
	reg.GaugeFunc("onto_wal_seq", "Sequence number of the last journaled record.", func() float64 {
		return float64(e.Stats().Seq)
	})
	reg.GaugeFunc("onto_wal_durable_seq", "Highest sequence number known fsynced.", func() float64 {
		return float64(e.Stats().DurableSeq)
	})
	reg.GaugeFunc("onto_wal_window_bytes", "Log growth since the last checkpoint.", func() float64 {
		return float64(e.Stats().WALBytes)
	})
	reg.GaugeFunc("onto_segments", "Live segment files (tiers of the chain).", func() float64 {
		return float64(e.Stats().Segments)
	})
	reg.GaugeFunc("onto_durable_segment_bytes", "Combined size of the live segment chain.", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		var n int64
		for _, t := range e.tiers {
			n += t.bytes
		}
		return float64(n)
	})
	reg.GaugeFunc("onto_durable_write_amplification", "Physical bytes written (log + segments) per logical log byte this process.", func() float64 {
		return e.Stats().WriteAmplification
	})
	reg.CounterFunc("onto_wal_fsyncs_total", "Fsync syscalls on the log.", func() float64 {
		return float64(e.Stats().Fsyncs)
	})
	reg.CounterFunc("onto_checkpoints_total", "Completed checkpoints this process.", func() float64 {
		return float64(e.Stats().Checkpoints)
	})
	reg.CounterFunc("onto_durable_merges_total", "Completed background segment merges this process.", func() float64 {
		return float64(e.Stats().Merges)
	})
}

// LastSeq returns the seq of the last journaled record — right after Open,
// the seq recovery replayed through.
func (e *Engine) LastSeq() uint64 { return e.w.currentSeq() }

// RecoveryDuration returns how long Open spent rebuilding the store from the
// data directory.
func (e *Engine) RecoveryDuration() time.Duration { return e.recoveryDur }

// Err returns the engine's sticky log error — nil while every commit has
// succeeded. Once non-nil it never clears: the log cannot vouch for its tail,
// so every later commit fails too and the process needs a restart (and
// recovery) to trust its data again. Callers that acknowledge mutations
// through paths without an error slot (store.Store.Remove) check it after the
// fact, so a lost write is reported as a failure rather than as durable.
func (e *Engine) Err() error { return e.w.stickyErr() }

// JournalDict implements store.Journal. Called under the store's
// symbol-table lock; it only stages bytes (see walWriter.appendDict).
func (e *Engine) JournalDict(first store.SymbolID, names []string) {
	e.w.appendDict(first, names)
}

// JournalAdd implements store.Journal.
func (e *Engine) JournalAdd(batch []store.IDTriple) {
	e.w.appendAdd(batch)
}

// JournalRemove implements store.Journal.
func (e *Engine) JournalRemove(t store.IDTriple) {
	e.w.appendRemove(t)
}

// JournalCommit implements store.Journal: it group-commits the log to the
// configured durability and nudges the checkpointer if the log has outgrown
// its budget.
func (e *Engine) JournalCommit() error {
	err := e.w.commit()
	if e.opts.CheckpointBytes > 0 && e.w.bytesSinceRotation() >= e.opts.CheckpointBytes {
		select {
		case e.ckptC <- struct{}{}:
		default: // a checkpoint poke is already pending
		}
	}
	return err
}

// pokeMerge schedules a background merge pass, coalescing with any pending
// poke.
func (e *Engine) pokeMerge() {
	select {
	case e.mergeC <- struct{}{}:
	default:
	}
}

// background is the engine's single service goroutine: interval fsync under
// FsyncBatch, checkpoints when the log outgrows its budget, and segment
// merges when the chain loses its size separation. Running merges here —
// not on their own goroutine — is what lets Close's wg.Wait promise that no
// merge is mid-flight when it returns.
func (e *Engine) background() {
	defer e.wg.Done()
	var tick <-chan time.Time
	if e.opts.Fsync == FsyncBatch {
		t := time.NewTicker(e.opts.BatchInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-e.done:
			return
		case <-tick:
			// Harmless when nothing is pending: syncTo of an already-durable
			// seq returns without touching the file.
			_ = e.w.syncTo(e.w.currentSeq())
		case <-e.ckptC:
			if err := e.Checkpoint(); err != nil {
				e.mu.Lock()
				e.ckptErr = err
				e.mu.Unlock()
			}
		case <-e.mergeC:
			e.runMerges()
		}
	}
}

// Checkpoint retires the current log window: it rotates the WAL, folds the
// retired window's records into a new young delta segment (last event per
// triple wins, so an add-then-remove folds to a tombstone), appends it to the
// chain, and deletes the log files the segment supersedes. Cost is
// proportional to the window — the live store is never read — and mutations
// proceed concurrently throughout. A checkpoint with an empty window is a
// no-op. If the new segment breaks the chain's size separation, a background
// merge is scheduled.
func (e *Engine) Checkpoint() error {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	e.mu.Lock() //ontolint:ignore lockcheck fixed one-way order: ckptMu is always taken before mu and mu critical sections never take ckptMu, so the nesting cannot deadlock
	lastEnd := e.coveredLocked()
	dictNext := e.dictCovered
	e.mu.Unlock()
	if e.w.currentSeq() == lastEnd {
		return nil // nothing journaled since the last checkpoint
	}
	var ckptStart time.Time
	if e.mCkptSeconds != nil {
		ckptStart = time.Now()
	}
	// The superseded log window, read before rotation resets it — the
	// denominator of the compaction ratio.
	walBytes := e.w.bytesSinceRotation()
	covered, err := e.w.rotate()
	if err != nil {
		return err
	}
	win, err := readWALWindow(e.opts.Dir, lastEnd, covered, dictNext)
	if err != nil {
		// The segment was never written and the rotated files remain on
		// disk, so recovery still sees an intact log; the checkpoint just
		// failed.
		return err
	}
	seg := segmentData{
		start:     lastEnd + 1,
		end:       covered,
		dictFirst: dictNext,
		dict:      win.names,
		adds:      win.adds,
		removes:   win.removes,
	}
	if seg.start == 1 {
		seg.removes = nil // a patch against the empty state removes nothing
	}
	size, err := writeSegment(e.opts.Dir, seg)
	if err != nil {
		return err
	}
	if e.mCompaction != nil && walBytes > 0 {
		e.mCompaction.Set(float64(size) / float64(walBytes))
	}
	// The new segment supersedes every log file that ends at or before the
	// rotation point. Deletion failures are reported but the checkpoint
	// itself has succeeded — recovery deletes leftovers too.
	cleanupErr := e.cleanupWAL(covered)
	e.mu.Lock() //ontolint:ignore lockcheck fixed one-way order: ckptMu is always taken before mu and mu critical sections never take ckptMu, so the nesting cannot deadlock
	e.tiers = append(e.tiers, metaOf(seg, size))
	e.dictCovered += store.SymbolID(len(win.names))
	e.checkpoints++
	e.ckptBytes += size
	e.ckptErr = cleanupErr
	_, needMerge := e.pickMergeLocked()
	e.mu.Unlock()
	if e.mCkptSeconds != nil {
		e.mCkptSeconds.Since(ckptStart)
	}
	if needMerge {
		e.pokeMerge()
	}
	return cleanupErr
}

// coveredLocked returns the seq the chain covers through. Callers hold mu.
func (e *Engine) coveredLocked() uint64 {
	if len(e.tiers) == 0 {
		return 0
	}
	return e.tiers[len(e.tiers)-1].end
}

// pickMergeLocked runs the merge policy over the current chain, returning
// the index the merge run would start at. Callers hold mu.
func (e *Engine) pickMergeLocked() (int, bool) {
	if e.opts.MergeRatio < 0 {
		return 0, false
	}
	sizes := make([]int64, len(e.tiers))
	for i, t := range e.tiers {
		sizes[i] = t.bytes
	}
	return pickMergeRun(sizes, e.opts.MergeRatio, e.opts.MaxSegments)
}

// cleanupWAL deletes the log files a checkpoint at covered supersedes: every
// wal file that starts at or before covered (rotation guarantees it also
// ends there).
func (e *Engine) cleanupWAL(covered uint64) error {
	firsts, err := walFilesThrough(e.opts.Dir, covered)
	var firstErr error
	if err != nil {
		firstErr = err
	}
	for _, first := range firsts {
		if err := removeFile(e.opts.Dir, walFileName(first)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// runMerges folds chain suffixes until the merge policy is satisfied or the
// engine is closing. It runs on the background goroutine, under ckptMu, so
// checkpoints and merges serialize and Close's wg.Wait covers any merge in
// flight.
func (e *Engine) runMerges() {
	for {
		select {
		case <-e.done:
			return
		default:
		}
		e.ckptMu.Lock()
		e.mu.Lock() //ontolint:ignore lockcheck fixed one-way order: ckptMu is always taken before mu and mu critical sections never take ckptMu, so the nesting cannot deadlock
		i, ok := e.pickMergeLocked()
		var run []segMeta
		if ok {
			run = append(run, e.tiers[i:]...)
		}
		e.mu.Unlock()
		if !ok {
			e.ckptMu.Unlock()
			return
		}
		err := e.mergeRun(i, run)
		e.ckptMu.Unlock()
		if err != nil {
			e.mu.Lock()
			e.ckptErr = err
			e.mu.Unlock()
			return
		}
	}
}

// mergeRun folds the chain suffix starting at tier index i into one segment:
// load each input, compose the patches, publish the merged file atomically,
// then delete the inputs. A crash or close at ANY point is safe: before the
// rename the merged .tmp is garbage recovery deletes (the merge is simply
// not-yet-merged); after it, the inputs are leftovers recovery recognizes as
// subsumed by the wider merged window and deletes. Close aborts cleanly at
// the checkpoints between I/O steps, never leaving a .tmp behind.
func (e *Engine) mergeRun(i int, metas []segMeta) error {
	start := time.Now()
	var merged segmentData
	for k, m := range metas {
		select {
		case <-e.done:
			return nil // closing: abort before any output exists
		default:
		}
		seg, err := loadSegment(e.opts.Dir + "/" + segmentName(m.start, m.end))
		if err != nil {
			return fmt.Errorf("durable: merge reading input: %w", err)
		}
		if k == 0 {
			merged = seg
			continue
		}
		if merged, err = foldSegments(merged, seg); err != nil {
			return err
		}
	}
	if hook := e.mergeHook; hook != nil {
		hook()
	}
	select {
	case <-e.done:
		return nil // closing: nothing written yet, inputs intact
	default:
	}
	size, err := writeSegment(e.opts.Dir, merged)
	if err != nil {
		return err
	}
	// Inputs are now subsumed; deletion failures are reported but recovery
	// would clean them up too.
	var cleanupErr error
	for _, m := range metas {
		if err := removeFile(e.opts.Dir, segmentName(m.start, m.end)); err != nil && cleanupErr == nil {
			cleanupErr = err
		}
	}
	dur := time.Since(start)
	e.mu.Lock() //ontolint:ignore lockcheck fixed one-way order: ckptMu is always taken before mu and mu critical sections never take ckptMu, so the nesting cannot deadlock
	e.tiers = append(e.tiers[:i:i], metaOf(merged, size))
	e.merges++
	e.lastMergeDur = dur
	e.mergeBytes += size
	e.ckptErr = cleanupErr
	e.mu.Unlock()
	if e.mMergeSeconds != nil {
		e.mMergeSeconds.Since(start)
	}
	return cleanupErr
}

// Stats returns a point-in-time durability report.
func (e *Engine) Stats() Stats {
	var st Stats
	e.w.snapshotStats(&st)
	st.RecoverySeconds = e.recoveryDur.Seconds()
	e.mu.Lock()
	st.Segments = len(e.tiers)
	st.SegmentSeq = e.coveredLocked()
	st.Tiers = make([]TierStats, len(e.tiers))
	for i, t := range e.tiers {
		st.Tiers[i] = TierStats{
			Start:      t.start,
			End:        t.end,
			Triples:    t.adds,
			Tombstones: t.removes,
			DictNames:  t.dictCount,
			Bytes:      t.bytes,
		}
	}
	st.Checkpoints = e.checkpoints
	st.Merges = e.merges
	st.LastMergeDuration = e.lastMergeDur
	st.CheckpointBytes = e.ckptBytes
	st.MergeBytes = e.mergeBytes
	if st.WALAppendedBytes > 0 {
		st.WriteAmplification = float64(st.WALAppendedBytes+e.ckptBytes+e.mergeBytes) / float64(st.WALAppendedBytes)
	}
	if st.Err == "" && e.ckptErr != nil {
		st.Err = e.ckptErr.Error()
	}
	e.mu.Unlock()
	return st
}

// Close stops the background goroutine — waiting for any in-flight
// checkpoint or merge to finish or abort cleanly, so shutdown never leaves a
// .tmp behind — flushes and fsyncs the log tail, closes it, and detaches the
// engine from the store. A cleanly closed engine never loses an acknowledged
// mutation, whatever the fsync policy. The store remains usable in memory
// afterwards, but new mutations are no longer journaled.
//
// Closing while mutations are in flight is not a data race (the store reads
// its journal atomically, once per mutation), and the log is closed BEFORE
// the journal detaches, so a mutation racing Close either has its records
// flushed by the final drain and commits clean, or finds the log closed and
// gets ErrJournal from its commit. Only a mutation starting after the
// detach — indistinguishable from one starting after Close returned — is
// applied in memory without journaling. Drain mutators first (as
// ontoserve's graceful shutdown does) for a crisp durability boundary.
func (e *Engine) Close() error {
	var err error
	e.once.Do(func() {
		close(e.done)
		e.wg.Wait()
		err = e.w.close()
		e.st.SetJournal(nil)
	})
	return err
}
