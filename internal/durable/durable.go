// Package durable is the store's crash-safe persistence engine: a write-ahead
// log in front of the in-memory triple store, periodically compacted into
// immutable segment files.
//
// The engine journals every acknowledged mutation — at dictionary-id level,
// through the store's Journal hook — before reporting it committed, batching
// concurrent committers behind one fsync (group commit). A background
// checkpoint dumps the whole store into a segment file and truncates the log
// behind it, so startup cost is bounded: recovery loads the newest segment
// and replays only the log tail, truncating the torn frame a crash may have
// left mid-write.
//
// Typical use:
//
//	st := store.New()
//	eng, err := durable.Open(st, durable.Options{Dir: dataDir})
//	if err != nil { ... }
//	defer eng.Close()
//	// st now persists: every Add/AddBatch/Remove is journaled, and the next
//	// Open over the same directory rebuilds exactly the committed state.
//
// The store handed to Open must be empty — the directory is the single
// source of truth, and recovery rebuilds the store from it. Load corpora
// AFTER opening, through the store's ordinary mutation methods, so the loads
// are journaled like any other write.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// FsyncPolicy says when the log is fsynced relative to commit
// acknowledgement — the durability/latency trade every WAL exposes.
type FsyncPolicy int

// Policies, from safest to fastest.
const (
	// FsyncAlways fsyncs before every commit acknowledgement (group
	// committed: concurrent committers share one fsync). An acknowledged
	// mutation survives both process and OS crash.
	FsyncAlways FsyncPolicy = iota
	// FsyncBatch acknowledges after the write syscall and fsyncs on a
	// background interval. An acknowledged mutation survives a process
	// crash; an OS crash may lose the last interval's worth.
	FsyncBatch
	// FsyncOff acknowledges after the write syscall and fsyncs only at
	// rotation and close. For tests and bulk loads.
	FsyncOff
)

// String names the policy the way the -fsync flag spells it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses the -fsync flag forms: always, batch, off.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, batch or off)", s)
}

// Defaults for Options zero values.
const (
	// DefaultBatchInterval is the FsyncBatch background fsync cadence.
	DefaultBatchInterval = 10 * time.Millisecond
	// DefaultCheckpointBytes is the log growth that triggers a checkpoint.
	DefaultCheckpointBytes = 64 << 20
)

// Options configures Open. The zero value of every field but Dir is usable.
type Options struct {
	// Dir is the data directory — segments and log files live there. It is
	// created if missing. Required.
	Dir string
	// Fsync is the durability policy; the zero value is FsyncAlways.
	Fsync FsyncPolicy
	// BatchInterval is the background fsync cadence under FsyncBatch;
	// DefaultBatchInterval if zero.
	BatchInterval time.Duration
	// CheckpointBytes triggers an automatic checkpoint once the log has
	// grown past it; DefaultCheckpointBytes if zero, negative disables
	// automatic checkpoints (Checkpoint can still be called directly).
	CheckpointBytes int64
	// Metrics, when non-nil, registers the engine's instruments on the given
	// registry: fsync latency and group-commit size distributions, WAL
	// frame/byte counters, checkpoint duration and compaction ratio, and
	// gauges over the durability state. Nil disables all observation.
	Metrics *obs.Registry
}

// Stats is a point-in-time report of the engine's durability state, the
// shape GET /stats serves.
type Stats struct {
	// Seq is the sequence number of the last journaled record.
	Seq uint64
	// DurableSeq is the highest seq known fsynced; Seq - DurableSeq records
	// are exposed to an OS crash right now.
	DurableSeq uint64
	// LastFsync is when the log last reached stable storage.
	LastFsync time.Time
	// Fsyncs counts fsync syscalls on the log — under group commit, usually
	// far fewer than commits.
	Fsyncs int64
	// WALBytes is the log growth since the last checkpoint.
	WALBytes int64
	// Segments is the number of segment files (0 before the first
	// checkpoint, 1 after — older segments are deleted once superseded).
	Segments int
	// SegmentSeq is the seq the newest segment covers through.
	SegmentSeq uint64
	// Checkpoints counts completed checkpoints this process.
	Checkpoints int64
	// Err is the engine's sticky error, "" while healthy. Once set, commits
	// fail and the engine needs a restart (and recovery) to trust its log.
	Err string
}

// Engine is the durability engine: it implements store.Journal, owns the
// log writer and the checkpoint lifecycle, and is what Open installs on the
// store. Safe for concurrent use.
type Engine struct {
	st   *store.Store
	opts Options
	w    *walWriter

	// ckptMu serializes checkpoints (manual and automatic).
	ckptMu sync.Mutex

	// mu guards the segment/checkpoint counters below.
	mu          sync.Mutex
	segSeq      uint64
	segments    int
	checkpoints int64
	ckptErr     error // last checkpoint failure, cleared by a later success

	ckptC chan struct{} // pokes the background goroutine; capacity 1
	done  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once

	// Metric handles, nil without Options.Metrics (observations are
	// nil-safe): checkpoint wall time and the last checkpoint's compaction
	// ratio (segment bytes per superseded log byte).
	mCkptSeconds *obs.Histogram
	mCompaction  *obs.Gauge
}

// Open recovers the data directory into st (which must be a fresh, empty
// store — recovery rebuilds both its dictionary and its triples, and the ids
// in the directory's files are only meaningful from an empty dictionary),
// installs the engine as the store's journal, and starts the background
// fsync/checkpoint goroutine. On a pristine directory it simply starts a new
// log. The caller must Close the engine to release the log file and flush
// the tail.
func Open(st *store.Store, opts Options) (*Engine, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("durable: Options.Dir is required")
	}
	if st.Len() != 0 || st.DictLen() != 0 {
		return nil, fmt.Errorf("durable: Open needs an empty store (it holds %d triples, %d dictionary entries); recovery is the only writer allowed before the journal is attached", st.Len(), st.DictLen())
	}
	if opts.BatchInterval <= 0 {
		opts.BatchInterval = DefaultBatchInterval
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = DefaultCheckpointBytes
	}
	if err := ensureDir(opts.Dir); err != nil {
		return nil, err
	}
	rec, err := recoverDir(st, opts.Dir)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		st:     st,
		opts:   opts,
		w:      newWALWriter(opts.Dir, opts.Fsync, rec.file, rec.lastSeq, rec.fileFirst),
		segSeq: rec.segSeq,
		ckptC:  make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	e.segments = rec.segments
	if opts.Metrics != nil {
		// Before the journal attaches and the background goroutine starts:
		// nothing else can touch the handles yet, so plain assignment is safe
		// and the hot paths read them without synchronization.
		e.registerMetrics(opts.Metrics)
	}
	st.SetJournal(e)
	e.wg.Add(1)
	go e.background()
	return e, nil
}

// registerMetrics registers the engine's instruments on reg. Called from
// Open only, before any journal traffic or background goroutine exists.
func (e *Engine) registerMetrics(reg *obs.Registry) {
	e.w.mFsyncSeconds = reg.Histogram("onto_wal_fsync_seconds", "Log fsync syscall latency.", obs.LatencyBuckets())
	e.w.mCommitFrames = reg.Histogram("onto_wal_commit_frames", "Frames drained per group commit.", obs.SizeBuckets())
	e.w.mFrames = reg.Counter("onto_wal_frames_total", "Frames appended to the write-ahead log.")
	e.w.mBytes = reg.Counter("onto_wal_bytes_total", "Bytes appended to the write-ahead log.")
	e.mCkptSeconds = reg.Histogram("onto_checkpoint_seconds", "Checkpoint wall time (rotate, dump, cleanup).", obs.LatencyBuckets())
	e.mCompaction = reg.Gauge("onto_checkpoint_compaction_ratio", "Last checkpoint's segment bytes per superseded log byte.")
	reg.GaugeFunc("onto_wal_seq", "Sequence number of the last journaled record.", func() float64 {
		return float64(e.Stats().Seq)
	})
	reg.GaugeFunc("onto_wal_durable_seq", "Highest sequence number known fsynced.", func() float64 {
		return float64(e.Stats().DurableSeq)
	})
	reg.GaugeFunc("onto_wal_window_bytes", "Log growth since the last checkpoint.", func() float64 {
		return float64(e.Stats().WALBytes)
	})
	reg.GaugeFunc("onto_segments", "Live segment files.", func() float64 {
		return float64(e.Stats().Segments)
	})
	reg.CounterFunc("onto_wal_fsyncs_total", "Fsync syscalls on the log.", func() float64 {
		return float64(e.Stats().Fsyncs)
	})
	reg.CounterFunc("onto_checkpoints_total", "Completed checkpoints this process.", func() float64 {
		return float64(e.Stats().Checkpoints)
	})
}

// LastSeq returns the seq of the last journaled record — right after Open,
// the seq recovery replayed through.
func (e *Engine) LastSeq() uint64 { return e.w.currentSeq() }

// Err returns the engine's sticky log error — nil while every commit has
// succeeded. Once non-nil it never clears: the log cannot vouch for its tail,
// so every later commit fails too and the process needs a restart (and
// recovery) to trust its data again. Callers that acknowledge mutations
// through paths without an error slot (store.Store.Remove) check it after the
// fact, so a lost write is reported as a failure rather than as durable.
func (e *Engine) Err() error { return e.w.stickyErr() }

// JournalDict implements store.Journal. Called under the store's
// symbol-table lock; it only stages bytes (see walWriter.appendDict).
func (e *Engine) JournalDict(first store.SymbolID, names []string) {
	e.w.appendDict(first, names)
}

// JournalAdd implements store.Journal.
func (e *Engine) JournalAdd(batch []store.IDTriple) {
	e.w.appendAdd(batch)
}

// JournalRemove implements store.Journal.
func (e *Engine) JournalRemove(t store.IDTriple) {
	e.w.appendRemove(t)
}

// JournalCommit implements store.Journal: it group-commits the log to the
// configured durability and nudges the checkpointer if the log has outgrown
// its budget.
func (e *Engine) JournalCommit() error {
	err := e.w.commit()
	if e.opts.CheckpointBytes > 0 && e.w.bytesSinceRotation() >= e.opts.CheckpointBytes {
		select {
		case e.ckptC <- struct{}{}:
		default: // a checkpoint poke is already pending
		}
	}
	return err
}

// background is the engine's single service goroutine: interval fsync under
// FsyncBatch, and checkpoints when the log outgrows its budget.
func (e *Engine) background() {
	defer e.wg.Done()
	var tick <-chan time.Time
	if e.opts.Fsync == FsyncBatch {
		t := time.NewTicker(e.opts.BatchInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-e.done:
			return
		case <-tick:
			// Harmless when nothing is pending: syncTo of an already-durable
			// seq returns without touching the file.
			_ = e.w.syncTo(e.w.currentSeq())
		case <-e.ckptC:
			if err := e.Checkpoint(); err != nil {
				e.mu.Lock()
				e.ckptErr = err
				e.mu.Unlock()
			}
		}
	}
}

// Checkpoint compacts the log: it rotates the WAL, dumps the store into a
// new segment covering everything up to the rotation point, and deletes the
// log files and older segment the new segment supersedes. Mutations proceed
// concurrently — the dump is fuzzy, which is safe because replay is
// idempotent (see recover.go). A checkpoint with an empty log window is a
// no-op.
func (e *Engine) Checkpoint() error {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	e.mu.Lock() //ontolint:ignore lockcheck fixed one-way order: ckptMu is always taken before mu and mu critical sections never take ckptMu, so the nesting cannot deadlock
	lastSeg := e.segSeq
	e.mu.Unlock()
	if e.w.currentSeq() == lastSeg {
		return nil // nothing journaled since the last checkpoint
	}
	var ckptStart time.Time
	if e.mCkptSeconds != nil {
		ckptStart = time.Now()
	}
	// The superseded log window, read before rotation resets it — the
	// denominator of the compaction ratio.
	walBytes := e.w.bytesSinceRotation()
	covered, err := e.w.rotate()
	if err != nil {
		return err
	}
	// Dump triples BEFORE reading the dictionary length: ids are minted
	// before the triples using them are inserted, so every id visible in the
	// triple scan is below a DictLen read after the scan. The other order
	// could dump a triple whose ids the dumped dictionary lacks.
	var triples []store.IDTriple
	e.st.QueryIDFunc(store.IDPattern{}, func(t store.IDTriple) bool {
		triples = append(triples, t)
		return true
	})
	n := e.st.DictLen()
	res := e.st.NewResolver()
	dict := make([]string, n)
	for i := range dict {
		dict[i] = res.Name(store.SymbolID(i))
	}
	if err := writeSegment(e.opts.Dir, covered, dict, triples); err != nil {
		return err
	}
	if e.mCompaction != nil && walBytes > 0 {
		if fi, err := os.Stat(filepath.Join(e.opts.Dir, segFileName(covered))); err == nil {
			e.mCompaction.Set(float64(fi.Size()) / float64(walBytes))
		}
	}
	// The new segment supersedes the old one and every log file that ends at
	// or before the rotation point. Deletion failures are reported but the
	// checkpoint itself has succeeded — recovery deletes leftovers too.
	cleanupErr := e.cleanup(lastSeg, covered)
	e.mu.Lock() //ontolint:ignore lockcheck fixed one-way order: ckptMu is always taken before mu and mu critical sections never take ckptMu, so the nesting cannot deadlock
	e.segSeq = covered
	e.segments = 1
	e.checkpoints++
	e.ckptErr = cleanupErr
	e.mu.Unlock()
	if e.mCkptSeconds != nil {
		e.mCkptSeconds.Since(ckptStart)
	}
	return cleanupErr
}

// cleanup deletes the files a checkpoint at covered supersedes: the previous
// segment and the wal files that start at or before covered (rotation
// guarantees they also end there).
func (e *Engine) cleanup(prevSeg, covered uint64) error {
	var firstErr error
	if e.segments > 0 && prevSeg != covered {
		if err := removeFile(e.opts.Dir, segFileName(prevSeg)); err != nil {
			firstErr = err
		}
	}
	firsts, err := walFilesThrough(e.opts.Dir, covered)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	for _, first := range firsts {
		if err := removeFile(e.opts.Dir, walFileName(first)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats returns a point-in-time durability report.
func (e *Engine) Stats() Stats {
	var st Stats
	e.w.snapshotStats(&st)
	e.mu.Lock()
	st.Segments = e.segments
	st.SegmentSeq = e.segSeq
	st.Checkpoints = e.checkpoints
	if st.Err == "" && e.ckptErr != nil {
		st.Err = e.ckptErr.Error()
	}
	e.mu.Unlock()
	return st
}

// Close stops the background goroutine, flushes and fsyncs the log tail,
// closes it, and detaches the engine from the store — a cleanly closed
// engine never loses an acknowledged mutation, whatever the fsync policy.
// The store remains usable in memory afterwards, but new mutations are no
// longer journaled.
//
// Closing while mutations are in flight is not a data race (the store reads
// its journal atomically, once per mutation), and the log is closed BEFORE
// the journal detaches, so a mutation racing Close either has its records
// flushed by the final drain and commits clean, or finds the log closed and
// gets ErrJournal from its commit. Only a mutation starting after the
// detach — indistinguishable from one starting after Close returned — is
// applied in memory without journaling. Drain mutators first (as
// ontoserve's graceful shutdown does) for a crisp durability boundary.
func (e *Engine) Close() error {
	var err error
	e.once.Do(func() {
		close(e.done)
		e.wg.Wait()
		err = e.w.close()
		e.st.SetJournal(nil)
	})
	return err
}
