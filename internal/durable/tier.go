package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/store"
)

// This file is the tiering machinery around the delta-segment format in
// segment.go: the patch algebra (fold two adjacent segments into one, apply a
// segment to a state), the size-ratio merge policy, and the WAL-window fold a
// checkpoint runs to turn one retired log window into a young segment.
//
// The on-disk chain is a classic size-tiered LSM shape: checkpoints append
// small young segments on the right, the background merge folds a suffix of
// the chain whenever the generations stop being size-separated, and the
// oldest segment (start == 1) absorbs tombstones terminally — merging into it
// drops them, because a patch against the empty state has nothing to remove.

// segMeta is the engine's in-memory accounting for one live segment file.
type segMeta struct {
	start, end uint64
	dictFirst  store.SymbolID
	dictCount  int
	adds       int
	removes    int
	bytes      int64
}

func metaOf(seg segmentData, size int64) segMeta {
	return segMeta{
		start:     seg.start,
		end:       seg.end,
		dictFirst: seg.dictFirst,
		dictCount: len(seg.dict),
		adds:      len(seg.adds),
		removes:   len(seg.removes),
		bytes:     size,
	}
}

// tripleLess orders id triples by (S, P, O) — the sort every segment run and
// fold operand shares.
func tripleLess(a, b store.IDTriple) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	if a.P != b.P {
		return a.P < b.P
	}
	return a.O < b.O
}

// unionTriples merges two sorted strictly-ascending runs into one, dropping
// duplicates. Linear.
func unionTriples(a, b []store.IDTriple) []store.IDTriple {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]store.IDTriple, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case tripleLess(a[i], b[j]):
			out = append(out, a[i])
			i++
		case tripleLess(b[j], a[i]):
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// subtractTriples returns a \ b over sorted strictly-ascending runs. Linear.
func subtractTriples(a, b []store.IDTriple) []store.IDTriple {
	if len(a) == 0 || len(b) == 0 {
		return a
	}
	out := make([]store.IDTriple, 0, len(a))
	j := 0
	for _, t := range a {
		for j < len(b) && tripleLess(b[j], t) {
			j++
		}
		if j < len(b) && b[j] == t {
			continue
		}
		out = append(out, t)
	}
	return out
}

// applySegment applies one segment patch to a sorted state: subtract its
// tombstones, union its adds.
func applySegment(state []store.IDTriple, seg segmentData) []store.IDTriple {
	return unionTriples(subtractTriples(state, seg.removes), seg.adds)
}

// foldSegments composes two adjacent patches (older, then newer) into one
// covering both windows. The composed adds are what survives both patches;
// the composed tombstones are every removal either patch makes, minus what
// the composition re-adds — so adds and removes stay disjoint. A fold that
// reaches the base of the chain (start == 1) drops its tombstones entirely:
// the patch now applies to the empty state.
func foldSegments(older, newer segmentData) (segmentData, error) {
	if newer.start != older.end+1 {
		return segmentData{}, fmt.Errorf("durable: merging segments [%d, %d] and [%d, %d]: windows not adjacent", older.start, older.end, newer.start, newer.end)
	}
	if newer.dictFirst != older.dictFirst+store.SymbolID(len(older.dict)) {
		return segmentData{}, fmt.Errorf("durable: merging segments [%d, %d] and [%d, %d]: dictionary windows not contiguous (%d+%d names, then first id %d)",
			older.start, older.end, newer.start, newer.end, older.dictFirst, len(older.dict), newer.dictFirst)
	}
	out := segmentData{
		start:     older.start,
		end:       newer.end,
		dictFirst: older.dictFirst,
		dict:      append(older.dict[:len(older.dict):len(older.dict)], newer.dict...),
	}
	out.adds = unionTriples(subtractTriples(older.adds, newer.removes), newer.adds)
	if out.start > 1 {
		out.removes = subtractTriples(unionTriples(older.removes, newer.removes), out.adds)
	}
	return out, nil
}

// DefaultMergeRatio and DefaultMaxSegments are the merge-policy defaults for
// the zero Options values.
const (
	// DefaultMergeRatio is the size-separation factor between generations:
	// a segment is folded into the suffix being merged while its size is at
	// most the ratio times the combined size of everything younger. 4 keeps
	// the chain logarithmic in corpus size while bounding merge write
	// amplification to ~1/ratio of ingested bytes per generation.
	DefaultMergeRatio = 4.0
	// DefaultMaxSegments force-merges the whole chain once it grows past
	// this many segments, whatever the sizes — a hard bound on how many
	// files recovery must open.
	DefaultMaxSegments = 8
)

// pickMergeRun decides which suffix of the chain to merge: it grows the run
// from the newest segment leftwards while the next-older segment is within
// ratio× of the run's combined size, and returns the index the run starts at.
// ok is false when no merge is warranted (the generations are size-separated
// and the chain is short enough). sizes is ordered oldest→newest.
func pickMergeRun(sizes []int64, ratio float64, maxSegs int) (int, bool) {
	n := len(sizes)
	if n < 2 {
		return 0, false
	}
	if maxSegs > 0 && n > maxSegs {
		return 0, true // chain too long: fold everything into one base segment
	}
	sum := sizes[n-1]
	i := n - 1
	for i > 0 && float64(sizes[i-1]) <= ratio*float64(sum) {
		i--
		sum += sizes[i]
	}
	return i, i < n-1
}

// walWindow is the folded content of one retired WAL window: the dictionary
// growth in id order, and the net adds/removes sorted by triple.
type walWindow struct {
	names   []string
	adds    []store.IDTriple
	removes []store.IDTriple
}

// readWALWindow reads the sealed wal files covering records (after, through]
// and folds them: dictionary records are concatenated (verified contiguous
// from dictNext), and per triple the LAST event in the window wins — an add
// followed by a remove folds to a tombstone, a remove followed by a re-add to
// an add. Records at or below after (leftovers of an interrupted cleanup) are
// skipped. Every frame must be whole: these files were sealed by a rotation's
// fsync, so a torn frame here is corruption, not a tail to truncate.
func readWALWindow(dir string, after, through uint64, dictNext store.SymbolID) (walWindow, error) {
	var win walWindow
	firsts, err := walFilesThrough(dir, through)
	if err != nil {
		return win, err
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	type walEvent struct {
		t   store.IDTriple
		seq uint64
		add bool
	}
	var events []walEvent
	prev := after
	for _, first := range firsts {
		path := filepath.Join(dir, walFileName(first))
		data, err := os.ReadFile(path)
		if err != nil {
			return win, fmt.Errorf("durable: reading checkpoint window: %w", err)
		}
		off := 0
		for off < len(data) {
			payload, next, ok := nextFrame(data, off)
			if !ok {
				return win, fmt.Errorf("durable: %s: bad frame at offset %d in a sealed log file; the log is corrupt", filepath.Base(path), off)
			}
			r, err := decodeRecord(payload)
			if err != nil {
				return win, fmt.Errorf("durable: %s: offset %d: %w", filepath.Base(path), off, err)
			}
			off = next
			if r.seq <= after {
				continue // already folded into an earlier segment
			}
			if r.seq != prev+1 {
				return win, fmt.Errorf("durable: checkpoint window record has seq %d, want %d; the log has a gap", r.seq, prev+1)
			}
			if r.seq > through {
				return win, fmt.Errorf("durable: checkpoint window record %d lies beyond the rotation point %d", r.seq, through)
			}
			prev = r.seq
			switch r.typ {
			case recDict:
				if want := dictNext + store.SymbolID(len(win.names)); r.first != want {
					return win, fmt.Errorf("durable: checkpoint window dictionary record starts at id %d, want %d", r.first, want)
				}
				win.names = append(win.names, r.names...)
			case recAdd:
				for _, t := range r.triples {
					events = append(events, walEvent{t: t, seq: r.seq, add: true})
				}
			case recRemove:
				events = append(events, walEvent{t: r.triples[0], seq: r.seq, add: false})
			default:
				return win, fmt.Errorf("durable: checkpoint window record %d has unknown type %d", r.seq, r.typ)
			}
		}
	}
	if prev != through {
		return win, fmt.Errorf("durable: checkpoint window ends at record %d, want %d; a log file is missing", prev, through)
	}
	// Last event per triple wins. Sorting by (triple, seq) groups each
	// triple's history together AND leaves the surviving triples in (S, P, O)
	// order — the segment runs fall out sorted for free.
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return tripleLess(events[i].t, events[j].t)
		}
		return events[i].seq < events[j].seq
	})
	for i := 0; i < len(events); {
		j := i
		for j < len(events) && events[j].t == events[i].t {
			j++
		}
		if events[j-1].add {
			win.adds = append(win.adds, events[i].t)
		} else {
			win.removes = append(win.removes, events[i].t)
		}
		i = j
	}
	return win, nil
}
