package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
)

// testTriple returns the i-th triple of a deterministic corpus whose
// components recur across triples, so the dictionary grows slower than the
// triple count and batches mix fresh and known ids.
func testTriple(i int) store.Triple {
	return store.Triple{
		Subject:   fmt.Sprintf("s%d", i%37),
		Predicate: fmt.Sprintf("p%d", i%11),
		Object:    fmt.Sprintf("o%d", i),
	}
}

// snapshotString returns the store's canonical snapshot as a string.
func snapshotString(t *testing.T, st *store.Store) string {
	t.Helper()
	var b strings.Builder
	if _, err := st.Snapshot(&b); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return b.String()
}

// mustOpen opens an engine over dir or fails the test.
func mustOpen(t *testing.T, st *store.Store, opts Options) *Engine {
	t.Helper()
	eng, err := Open(st, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.Dir, err)
	}
	return eng
}

func TestOpenPristineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := store.New()
	eng := mustOpen(t, st, Options{Dir: dir, Fsync: FsyncOff})
	var triples []store.Triple
	for i := 0; i < 500; i++ {
		triples = append(triples, testTriple(i))
	}
	if _, err := st.AddBatch(triples[:300]); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if _, err := st.Add(triples[300]); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if _, err := st.AddBatch(triples[301:]); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if removed := st.Remove(triples[7]); !removed {
		t.Fatalf("Remove(%v) found nothing", triples[7])
	}
	want := snapshotString(t, st)
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2 := store.New()
	eng2 := mustOpen(t, st2, Options{Dir: dir, Fsync: FsyncOff})
	defer eng2.Close()
	if got := snapshotString(t, st2); got != want {
		t.Fatalf("recovered snapshot differs from the one before close:\ngot  %d bytes\nwant %d bytes", len(got), len(want))
	}
	if got, wantSeq := eng2.LastSeq(), eng.LastSeq(); got != wantSeq {
		t.Fatalf("recovered LastSeq = %d, want %d", got, wantSeq)
	}
}

func TestOpenRejectsNonEmptyStore(t *testing.T) {
	st := store.New()
	if _, err := st.Add(testTriple(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(st, Options{Dir: t.TempDir()}); err == nil {
		t.Fatal("Open accepted a non-empty store")
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(store.New(), Options{}); err == nil {
		t.Fatal("Open accepted empty Options.Dir")
	}
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	st := store.New()
	// MergeRatio -1: no background merges, so the tier layout is exactly what
	// the checkpoints produced.
	eng := mustOpen(t, st, Options{Dir: dir, Fsync: FsyncOff, CheckpointBytes: -1, MergeRatio: -1})
	var first, second []store.Triple
	for i := 0; i < 400; i++ {
		first = append(first, testTriple(i))
	}
	for i := 400; i < 700; i++ {
		second = append(second, testTriple(i))
	}
	if _, err := st.AddBatch(first); err != nil {
		t.Fatal(err)
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	stats := eng.Stats()
	if stats.Segments != 1 || stats.SegmentSeq == 0 || stats.Checkpoints != 1 {
		t.Fatalf("after checkpoint: %+v", stats)
	}
	if stats.WALBytes != 0 {
		t.Fatalf("WALBytes = %d after checkpoint, want 0", stats.WALBytes)
	}
	// The log behind the checkpoint is gone; one fresh tail file remains.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs, wals int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			segs++
		}
		if strings.HasSuffix(e.Name(), ".wal") {
			wals++
		}
	}
	if segs != 1 || wals != 1 {
		t.Fatalf("after checkpoint the directory holds %d segments and %d log files, want 1 and 1", segs, wals)
	}

	// Mutate past the checkpoint, checkpoint again (a second, young delta
	// segment joins the chain), mutate more, and verify recovery sees
	// chain + tail.
	if _, err := st.AddBatch(second[:200]); err != nil {
		t.Fatal(err)
	}
	st.Remove(first[3])
	if err := eng.Checkpoint(); err != nil {
		t.Fatalf("second Checkpoint: %v", err)
	}
	stats = eng.Stats()
	if stats.Segments != 2 || len(stats.Tiers) != 2 {
		t.Fatalf("Segments = %d (tiers %d) after second checkpoint, want a 2-segment chain", stats.Segments, len(stats.Tiers))
	}
	// The second segment is a delta: it carries only the window's net changes,
	// including the tombstone for the removed triple.
	if y := stats.Tiers[1]; y.Start != stats.Tiers[0].End+1 || y.Triples != 200 || y.Tombstones != 1 {
		t.Fatalf("young tier %+v, want 200 adds and 1 tombstone starting at seq %d", y, stats.Tiers[0].End+1)
	}
	if _, err := st.AddBatch(second[200:]); err != nil {
		t.Fatal(err)
	}
	want := snapshotString(t, st)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := store.New()
	eng2 := mustOpen(t, st2, Options{Dir: dir, Fsync: FsyncOff})
	defer eng2.Close()
	if got := snapshotString(t, st2); got != want {
		t.Fatal("snapshot after segment+tail recovery differs from the pre-close snapshot")
	}
}

func TestCheckpointEmptyWindowIsNoop(t *testing.T) {
	dir := t.TempDir()
	st := store.New()
	eng := mustOpen(t, st, Options{Dir: dir, Fsync: FsyncOff})
	defer eng.Close()
	if err := eng.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint on an empty log: %v", err)
	}
	if got := eng.Stats().Checkpoints; got != 0 {
		t.Fatalf("empty-window checkpoint ran (%d), want no-op", got)
	}
	if _, err := st.Add(testTriple(1)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Checkpoint(); err != nil { // window empty again
		t.Fatal(err)
	}
	if got := eng.Stats().Checkpoints; got != 1 {
		t.Fatalf("Checkpoints = %d, want 1", got)
	}
}

func TestAutoCheckpointTriggers(t *testing.T) {
	dir := t.TempDir()
	st := store.New()
	// A tiny budget so the first real batch crosses it.
	eng := mustOpen(t, st, Options{Dir: dir, Fsync: FsyncOff, CheckpointBytes: 512})
	defer eng.Close()
	var triples []store.Triple
	for i := 0; i < 2000; i++ {
		triples = append(triples, testTriple(i))
	}
	if _, err := st.AddBatch(triples); err != nil {
		t.Fatal(err)
	}
	// The trigger is asynchronous; poll until the background goroutine has
	// run the checkpoint.
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no automatic checkpoint after far exceeding CheckpointBytes")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	st := store.New()
	eng := mustOpen(t, st, Options{Dir: dir, Fsync: FsyncAlways, CheckpointBytes: -1})
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := w*perWorker + i
				if _, err := st.AddBatch([]store.Triple{testTriple(n), testTriple(n + 10000)}); err != nil {
					t.Errorf("worker %d: AddBatch: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stats := eng.Stats()
	if stats.Seq == 0 || stats.DurableSeq != stats.Seq {
		t.Fatalf("after concurrent committed batches: %+v", stats)
	}
	want := snapshotString(t, st)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := store.New()
	eng2 := mustOpen(t, st2, Options{Dir: dir, Fsync: FsyncOff})
	defer eng2.Close()
	if snapshotString(t, st2) != want {
		t.Fatal("recovery after concurrent group-committed batches lost triples")
	}
}

// TestCloseDuringMutations races Close against live mutators (run it under
// -race): the journal detach is an atomic pointer swap, so closing mid-flight
// is not a data race. The durability contract it pins: an Add that completed
// with a nil error BEFORE Close began must survive recovery — its journal
// commit succeeded while the log was open, and Close's final drain fsyncs
// everything written. Mutations overlapping Close itself may instead get
// ErrJournal (the log closed under them) or, if they start after the
// detach, apply in memory only — both legal, so the test records a triple
// as must-survive only when the closing flag is still down AFTER its Add
// returns, proving the whole mutation preceded Close.
func TestCloseDuringMutations(t *testing.T) {
	dir := t.TempDir()
	st := store.New()
	eng := mustOpen(t, st, Options{Dir: dir, Fsync: FsyncOff})

	var mu sync.Mutex
	committed := map[store.Triple]bool{}
	var closing atomic.Bool
	var wg, warm sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		warm.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				tr := store.Triple{
					Subject:   fmt.Sprintf("close-s%d", w),
					Predicate: "p",
					Object:    fmt.Sprintf("o%d", i),
				}
				added, err := st.Add(tr)
				if err == nil && added && !closing.Load() {
					mu.Lock()
					committed[tr] = true
					mu.Unlock()
				} // ErrJournal, or a nil-error Add racing Close, is legal
				if i == 49 {
					warm.Done() // enough pre-Close commits to make recovery meaningful
				}
			}
		}(w)
	}
	close(start)
	warm.Wait()
	closing.Store(true)
	if err := eng.Close(); err != nil {
		t.Fatalf("Close during mutations: %v", err)
	}
	wg.Wait()

	st2 := store.New()
	eng2 := mustOpen(t, st2, Options{Dir: dir, Fsync: FsyncOff})
	defer eng2.Close()
	for tr := range committed {
		if !st2.Contains(tr) {
			t.Fatalf("recovery lost %v, whose Add completed before Close began", tr)
		}
	}
}

// TestWALChunksOversizedMutations shrinks the writer's payload cap and
// pushes one batch (and its dictionary growth) far past it: every frame on
// disk must stay under the cap, and recovery over the chunked log must
// reproduce the store byte-exactly. This is the write-side half of the
// maxFramePayload contract — a mutation of any size journals as records
// replay can always read back.
func TestWALChunksOversizedMutations(t *testing.T) {
	dir := t.TempDir()
	st := store.New()
	eng := mustOpen(t, st, Options{Dir: dir, Fsync: FsyncOff, CheckpointBytes: -1})
	const cap = 256
	eng.w.maxPayload = cap // before any mutation; the writer is idle

	var batch []store.Triple
	for i := 0; i < 400; i++ {
		batch = append(batch, testTriple(i))
	}
	if _, err := st.AddBatch(batch); err != nil {
		t.Fatalf("AddBatch over the shrunken cap: %v", err)
	}
	want := snapshotString(t, st)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, walFileName(1)))
	if err != nil {
		t.Fatal(err)
	}
	frames, prevSeq := 0, uint64(0)
	for off := 0; off < len(data); {
		payload, next, ok := nextFrame(data, off)
		if !ok {
			t.Fatalf("chunked log has a bad frame at offset %d", off)
		}
		if len(payload) > cap {
			t.Fatalf("frame at offset %d carries %d bytes, beyond the %d-byte cap the writer promised", off, len(payload), cap)
		}
		r, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("frame at offset %d: %v", off, err)
		}
		if r.seq != prevSeq+1 {
			t.Fatalf("chunking broke the seq chain: record at offset %d has seq %d, want %d", off, r.seq, prevSeq+1)
		}
		prevSeq = r.seq
		frames++
		off = next
	}
	if frames < 3 {
		t.Fatalf("a 400-triple batch under a %d-byte cap produced only %d frames; chunking did not happen", cap, frames)
	}

	st2 := store.New()
	eng2 := mustOpen(t, st2, Options{Dir: dir, Fsync: FsyncOff})
	defer eng2.Close()
	if got := snapshotString(t, st2); got != want {
		t.Fatal("recovery over the chunked log lost triples")
	}
}

// TestOversizedDictNameKillsLog covers the one mutation chunking cannot
// split: a single dictionary name bigger than a whole frame. The log must
// go sticky-dead — the commit fails with ErrJournal and Err reports it —
// rather than write a frame recovery would reject (or silently drop a
// record and desynchronize id assignment).
func TestOversizedDictNameKillsLog(t *testing.T) {
	st := store.New()
	eng := mustOpen(t, st, Options{Dir: t.TempDir(), Fsync: FsyncOff})
	defer eng.Close()
	eng.w.maxPayload = 64

	_, err := st.Add(store.Triple{Subject: strings.Repeat("x", 100), Predicate: "p", Object: "o"})
	if err == nil {
		t.Fatal("Add with an un-journalable name was acknowledged durable")
	}
	if !errors.Is(err, store.ErrJournal) {
		t.Fatalf("Add error %v does not wrap ErrJournal", err)
	}
	if eng.Err() == nil {
		t.Fatal("Err() is nil after the log went dead")
	}
	// Sticky: a later, perfectly journalable mutation must fail too.
	if _, err := st.Add(testTriple(1)); err == nil {
		t.Fatal("a later Add committed on a dead log")
	}
}

// TestOverCapSealedFrameIsAnError crafts a log whose (only, therefore last)
// file opens with a frame claiming a payload beyond maxFramePayload.
// Pre-fix recovery treated it as a torn tail and TRUNCATED — silently
// discarding everything in the file; it must instead refuse with a
// corruption error, because the writer chunks every record below the cap
// and can never have produced such a frame.
func TestOverCapSealedFrameIsAnError(t *testing.T) {
	dir := t.TempDir()
	frame := make([]byte, 64)
	binary.LittleEndian.PutUint32(frame, maxFramePayload+1)
	path := filepath.Join(dir, walFileName(1))
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := recoverDir(store.New(), dir)
	if err == nil {
		t.Fatal("recovery accepted (and would have truncated) an over-cap frame")
	}
	if !strings.Contains(err.Error(), "cap") {
		t.Fatalf("error %q does not name the payload cap", err)
	}
	if data, rerr := os.ReadFile(path); rerr != nil || len(data) != len(frame) {
		t.Fatalf("recovery truncated the file it refused (now %d bytes, want %d)", len(data), len(frame))
	}
}

// TestLoadSegmentRejectsOverflowedTripleCount patches a valid segment's
// triple count to a value whose 12× product wraps uint64 back to the true
// byte length: the pre-fix multiplication check passed it through to a
// make() that panicked. loadSegment must return the clean corruption error
// it promises.
func TestLoadSegmentRejectsOverflowedTripleCount(t *testing.T) {
	dir := t.TempDir()
	seg := segmentData{
		start:     1,
		end:       7,
		dictFirst: 0,
		dict:      []string{"s", "p", "o"},
		adds:      []store.IDTriple{{S: 0, P: 1, O: 2}, {S: 2, P: 1, O: 0}},
	}
	if _, err := writeSegment(dir, seg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segmentName(1, 7))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The add count sits right before the add run, the (empty) remove run and
	// the 12-byte footer. 12*(count + 2^62) = 12*count + 3*2^64 ≡ 12*count
	// (mod 2^64), so the patched count defeats any multiplication-based check.
	countOff := len(data) - (4 + len(segTrailer)) - 8 - 12*len(seg.adds) - 8
	count := binary.LittleEndian.Uint64(data[countOff:])
	binary.LittleEndian.PutUint64(data[countOff:], count+1<<62)
	body := data[:len(data)-(4+len(segTrailer))]
	binary.LittleEndian.PutUint32(data[len(body):], crc32.Checksum(body, castagnoli))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSegment(path); err == nil {
		t.Fatal("loadSegment accepted a wrapped triple count")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncBatch, FsyncOff} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted nonsense")
	}
}

// buildLog runs a deterministic mutation script through an FsyncOff engine
// and returns the resulting single wal file's bytes, together with the log
// offset and canonical snapshot recorded after every mutation (index 0 is
// the empty store at offset 0).
func buildLog(t *testing.T) (data []byte, offsets []int64, snaps []string) {
	t.Helper()
	dir := t.TempDir()
	st := store.New()
	eng := mustOpen(t, st, Options{Dir: dir, Fsync: FsyncOff, CheckpointBytes: -1})
	record := func() {
		offsets = append(offsets, eng.Stats().WALBytes)
		snaps = append(snaps, snapshotString(t, st))
	}
	record()
	for i := 0; i < 10; i++ {
		switch {
		case i%4 == 3:
			if removed := st.Remove(testTriple(i - 2)); !removed {
				t.Fatalf("script step %d: Remove found nothing", i)
			}
		default:
			var batch []store.Triple
			for j := 0; j < 5; j++ {
				batch = append(batch, testTriple(i*5+j))
			}
			if _, err := st.AddBatch(batch); err != nil {
				t.Fatalf("script step %d: %v", i, err)
			}
		}
		record()
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, walFileName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != offsets[len(offsets)-1] {
		t.Fatalf("log file is %d bytes but the last commit offset is %d", len(data), offsets[len(offsets)-1])
	}
	return data, offsets, snaps
}

// recoverPrefix writes data as the only wal file of a fresh directory,
// recovers a fresh store from it, and returns the recovered snapshot.
func recoverPrefix(t *testing.T, root string, name string, data []byte) string {
	t.Helper()
	snap, err := recoverPrefixErr(t, root, name, data)
	if err != nil {
		t.Fatalf("%s: recoverDir: %v", name, err)
	}
	return snap
}

// recoverPrefixErr is recoverPrefix for inputs recovery may legitimately
// refuse: it hands back recoverDir's error instead of failing the test.
func recoverPrefixErr(t *testing.T, root string, name string, data []byte) (string, error) {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFileName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	st := store.New()
	rec, err := recoverDir(st, dir)
	if err != nil {
		return "", err
	}
	rec.file.Close()
	return snapshotString(t, st), nil
}

// TestPrefixReplayProperty cuts the recorded log at EVERY byte offset and
// checks the property the durability contract promises: replaying any
// prefix yields exactly the store state at the last commit boundary the
// prefix wholly contains — never a partial batch, never a lost earlier
// record.
func TestPrefixReplayProperty(t *testing.T) {
	data, offsets, snaps := buildLog(t)
	root := t.TempDir()
	for cut := 0; cut <= len(data); cut++ {
		j := 0
		for k, off := range offsets {
			if off <= int64(cut) {
				j = k
			}
		}
		got := recoverPrefix(t, root, fmt.Sprintf("cut%d", cut), data[:cut])
		if got != snaps[j] {
			t.Fatalf("cut at byte %d: recovered state is not the boundary-%d state (offset %d)", cut, j, offsets[j])
		}
	}
}

// TestBitFlipRecovery flips single bits across the whole log and checks the
// CRC framing turns the flip into a clean torn-tail truncation at the
// damaged frame — recovery succeeds and lands exactly on the last commit
// boundary before it — with one deliberate exception: a flip that drives a
// length field beyond maxFramePayload is refused as corruption, because the
// writer chunks every record below the cap and a torn write never scrambles
// the bytes it did write, so an over-cap claim proves damage; truncating
// there would silently discard every record behind the damaged header.
func TestBitFlipRecovery(t *testing.T) {
	data, offsets, snaps := buildLog(t)
	var frameStarts []int
	for off := 0; off < len(data); {
		_, next, ok := nextFrame(data, off)
		if !ok {
			t.Fatalf("pristine log has a bad frame at %d", off)
		}
		frameStarts = append(frameStarts, off)
		off = next
	}
	root := t.TempDir()
	for p := 0; p < len(data); p++ {
		for _, bit := range []uint{0, 7} {
			start := 0
			for _, fs := range frameStarts {
				if fs <= p {
					start = fs
				}
			}
			j := 0
			for k, off := range offsets {
				if off <= int64(start) {
					j = k
				}
			}
			mut := append([]byte(nil), data...)
			mut[p] ^= 1 << bit
			if p-start < 4 && binary.LittleEndian.Uint32(mut[start:]) > maxFramePayload {
				if _, err := recoverPrefixErr(t, root, fmt.Sprintf("flip%d-%d", p, bit), mut); err == nil {
					t.Fatalf("flip byte %d bit %d: over-cap length claim was recovered silently, want a corruption error", p, bit)
				}
				continue
			}
			got := recoverPrefix(t, root, fmt.Sprintf("flip%d-%d", p, bit), mut)
			if got != snaps[j] {
				t.Fatalf("flip byte %d bit %d: recovered state is not the boundary-%d state (frame at %d)", p, bit, j, start)
			}
		}
	}
}

func TestCorruptSealedFileIsAnError(t *testing.T) {
	data, _, _ := buildLog(t)
	dir := t.TempDir()
	// Pretend the log rotated: the corrupted bytes become a SEALED file
	// (wal-1) because a later file exists. Its seq chain ends early, so the
	// follow-on file no longer chains — recovery must refuse, not truncate.
	tail := append([]byte(nil), data...)
	tail[len(tail)/2] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, walFileName(1)), tail, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFileName(1_000_000)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := recoverDir(store.New(), dir); err == nil {
		t.Fatal("recoverDir tolerated a bad frame in a sealed log file")
	}
}

func TestLogGapIsAnError(t *testing.T) {
	data, _, _ := buildLog(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFileName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	// A tail file whose name skips ahead of the chain.
	if err := os.WriteFile(filepath.Join(dir, walFileName(1_000_000)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := recoverDir(store.New(), dir); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("recoverDir over a gapped log: %v, want a gap error", err)
	}
}

func TestForeignFileIsAnError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := recoverDir(store.New(), dir); err == nil {
		t.Fatal("recoverDir accepted a directory holding foreign files")
	}
}

func TestLeftoverTmpIsDeleted(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, segmentName(1, 9)+".tmp")
	if err := os.WriteFile(tmp, []byte("half a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	st := store.New()
	rec, err := recoverDir(st, dir)
	if err != nil {
		t.Fatalf("recoverDir: %v", err)
	}
	rec.file.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("recovery kept the unpublished checkpoint temp file")
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	seg := segmentData{
		start:     8,
		end:       42,
		dictFirst: 2,
		dict:      []string{"s0", "p0", "o0", "o1"},
		adds:      []store.IDTriple{{S: 2, P: 3, O: 4}, {S: 2, P: 3, O: 5}},
		removes:   []store.IDTriple{{S: 0, P: 1, O: 2}},
	}
	size, err := writeSegment(dir, seg)
	if err != nil {
		t.Fatalf("writeSegment: %v", err)
	}
	path := filepath.Join(dir, segmentName(8, 42))
	got, err := loadSegment(path)
	if err != nil {
		t.Fatalf("loadSegment: %v", err)
	}
	if got.start != 8 || got.end != 42 || got.dictFirst != 2 {
		t.Fatalf("window = [%d, %d] dictFirst %d, want [8, 42] dictFirst 2", got.start, got.end, got.dictFirst)
	}
	if got.size != size {
		t.Fatalf("loaded size %d, written size %d", got.size, size)
	}
	if len(got.dict) != 4 || got.dict[3] != "o1" {
		t.Fatalf("dict = %v", got.dict)
	}
	if len(got.adds) != 2 || got.adds[1] != (store.IDTriple{S: 2, P: 3, O: 5}) {
		t.Fatalf("adds = %v", got.adds)
	}
	if len(got.removes) != 1 || got.removes[0] != (store.IDTriple{S: 0, P: 1, O: 2}) {
		t.Fatalf("removes = %v", got.removes)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, corrupt := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"bit flip", func(b []byte) []byte { b[len(b)/2] ^= 1; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
	} {
		bad := corrupt.mut(append([]byte(nil), data...))
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadSegment(path); err == nil {
			t.Fatalf("loadSegment accepted a %s segment", corrupt.name)
		}
	}
}
