package durable

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"repro/internal/store"
)

// This file is the acceptance test the subsystem exists for: a child process
// ingests batches under FsyncAlways, acknowledging each one on stdout only
// after its group commit returns; the parent SIGKILLs it mid-ingest and then
// recovers the directory. The recovered store must be byte-identical (via
// the canonical Snapshot) to a reference store holding exactly the first K'
// batches for some K' — no partial batch ever surfaces — and K' must be at
// least the number of batches the child acknowledged before dying, because
// an acknowledged commit may never be lost.

const (
	crashChildEnv    = "DURABLE_CRASH_CHILD_DIR"
	crashBatchSize   = 2000
	crashMaxBatches  = 200
	crashKillAtAcked = 5
)

// crashBatch returns the deterministic k-th ingest batch. Components recur
// across batches so dictionary records and known-id adds both occur.
func crashBatch(k int) []store.Triple {
	batch := make([]store.Triple, 0, crashBatchSize)
	for i := 0; i < crashBatchSize; i++ {
		n := k*crashBatchSize + i
		batch = append(batch, store.Triple{
			Subject:   fmt.Sprintf("subject-%d", n%700),
			Predicate: fmt.Sprintf("predicate-%d", n%13),
			Object:    fmt.Sprintf("object-%d", n),
		})
	}
	return batch
}

// crashChild is the re-exec'd ingest loop: it runs until killed (or the
// batch cap, if the kill loses the race that badly).
func crashChild(dir string) {
	st := store.New()
	// A small checkpoint budget so the kill also lands around rotations and
	// segment writes, not only mid-append.
	eng, err := Open(st, Options{Dir: dir, Fsync: FsyncAlways, CheckpointBytes: 64 << 10})
	if err != nil {
		fmt.Println("child open error:", err)
		os.Exit(1)
	}
	for k := 0; k < crashMaxBatches; k++ {
		if _, err := st.AddBatch(crashBatch(k)); err != nil {
			fmt.Println("child ingest error:", err)
			os.Exit(1)
		}
		// The commit above returned: batch k is on stable storage. Only now
		// may it be acknowledged.
		fmt.Println("acked", k+1)
	}
	eng.Close()
	os.Exit(0)
}

func TestCrashRecovery(t *testing.T) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		crashChild(dir)
		return
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe, "-test.run", "^TestCrashRecovery$")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting crash child: %v", err)
	}
	// Read acknowledgements until the kill threshold, then SIGKILL — no
	// shutdown path runs, so the directory is whatever the group commits
	// made durable plus, likely, a torn tail.
	acked := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "acked ") {
			t.Fatalf("child said %q", line)
		}
		n, err := strconv.Atoi(strings.TrimPrefix(line, "acked "))
		if err != nil {
			t.Fatalf("child said %q", line)
		}
		acked = n
		if acked >= crashKillAtAcked {
			break
		}
	}
	if acked < crashKillAtAcked {
		cmd.Wait()
		t.Fatalf("child exited after acknowledging only %d batches", acked)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("killing child: %v", err)
	}
	cmd.Wait() // reap; the kill makes the error uninteresting

	// Recover. The engine must come up without help...
	st := store.New()
	eng, err := Open(st, Options{Dir: dir, Fsync: FsyncOff})
	if err != nil {
		t.Fatalf("recovery after kill -9: %v", err)
	}
	defer eng.Close()
	got := snapshotString(t, st)

	// ...and its state must be EXACTLY the first K' batches for some K' ≥
	// acked: group commit may have made batches durable that were never
	// acknowledged (the kill raced the ack), but may never lose an
	// acknowledged one, and a batch is all-or-nothing.
	ref := store.New()
	matched := -1
	for k := 0; k <= crashMaxBatches; k++ {
		if snapshotString(t, ref) == got {
			matched = k
			break
		}
		if k < crashMaxBatches {
			if _, err := ref.AddBatch(crashBatch(k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if matched < 0 {
		t.Fatalf("recovered state (%d triples) matches no committed batch prefix", st.Len())
	}
	if matched < acked {
		t.Fatalf("recovered state is the %d-batch prefix, but the child had %d batches acknowledged", matched, acked)
	}
	t.Logf("killed after %d acked batches; recovered exactly %d batches (seq %d, %d triples)",
		acked, matched, eng.LastSeq(), st.Len())
}
