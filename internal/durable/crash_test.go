package durable

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/store"
)

// This file is the acceptance test the subsystem exists for: a child process
// ingests batches under FsyncAlways, acknowledging each one on stdout only
// after its group commit returns; the parent SIGKILLs it mid-ingest and then
// recovers the directory. The recovered store must be byte-identical (via
// the canonical Snapshot) to a reference store holding exactly the first K'
// batches for some K' — no partial batch ever surfaces — and K' must be at
// least the number of batches the child acknowledged before dying, because
// an acknowledged commit may never be lost.

const (
	crashChildEnv      = "DURABLE_CRASH_CHILD_DIR"
	crashMergeChildEnv = "DURABLE_CRASH_MERGE_DIR"
	crashBatchSize     = 2000
	crashMaxBatches    = 200
	crashKillAtAcked   = 5
)

// crashBatch returns the deterministic k-th ingest batch. Components recur
// across batches so dictionary records and known-id adds both occur.
func crashBatch(k int) []store.Triple {
	batch := make([]store.Triple, 0, crashBatchSize)
	for i := 0; i < crashBatchSize; i++ {
		n := k*crashBatchSize + i
		batch = append(batch, store.Triple{
			Subject:   fmt.Sprintf("subject-%d", n%700),
			Predicate: fmt.Sprintf("predicate-%d", n%13),
			Object:    fmt.Sprintf("object-%d", n),
		})
	}
	return batch
}

// crashChild is the re-exec'd ingest loop: it runs until killed (or the
// batch cap, if the kill loses the race that badly).
func crashChild(dir string) {
	st := store.New()
	// A small checkpoint budget so the kill also lands around rotations and
	// segment writes, not only mid-append.
	eng, err := Open(st, Options{Dir: dir, Fsync: FsyncAlways, CheckpointBytes: 64 << 10})
	if err != nil {
		fmt.Println("child open error:", err)
		os.Exit(1)
	}
	for k := 0; k < crashMaxBatches; k++ {
		if _, err := st.AddBatch(crashBatch(k)); err != nil {
			fmt.Println("child ingest error:", err)
			os.Exit(1)
		}
		// The commit above returned: batch k is on stable storage. Only now
		// may it be acknowledged.
		fmt.Println("acked", k+1)
	}
	eng.Close()
	os.Exit(0)
}

func TestCrashRecovery(t *testing.T) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		crashChild(dir)
		return
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe, "-test.run", "^TestCrashRecovery$")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting crash child: %v", err)
	}
	// Read acknowledgements until the kill threshold, then SIGKILL — no
	// shutdown path runs, so the directory is whatever the group commits
	// made durable plus, likely, a torn tail.
	acked := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "acked ") {
			t.Fatalf("child said %q", line)
		}
		n, err := strconv.Atoi(strings.TrimPrefix(line, "acked "))
		if err != nil {
			t.Fatalf("child said %q", line)
		}
		acked = n
		if acked >= crashKillAtAcked {
			break
		}
	}
	if acked < crashKillAtAcked {
		cmd.Wait()
		t.Fatalf("child exited after acknowledging only %d batches", acked)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("killing child: %v", err)
	}
	cmd.Wait() // reap; the kill makes the error uninteresting

	// Recover. The engine must come up without help...
	st := store.New()
	eng, err := Open(st, Options{Dir: dir, Fsync: FsyncOff})
	if err != nil {
		t.Fatalf("recovery after kill -9: %v", err)
	}
	defer eng.Close()
	got := snapshotString(t, st)

	// ...and its state must be EXACTLY the first K' batches for some K' ≥
	// acked: group commit may have made batches durable that were never
	// acknowledged (the kill raced the ack), but may never lose an
	// acknowledged one, and a batch is all-or-nothing.
	ref := store.New()
	matched := -1
	for k := 0; k <= crashMaxBatches; k++ {
		if snapshotString(t, ref) == got {
			matched = k
			break
		}
		if k < crashMaxBatches {
			if _, err := ref.AddBatch(crashBatch(k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if matched < 0 {
		t.Fatalf("recovered state (%d triples) matches no committed batch prefix", st.Len())
	}
	if matched < acked {
		t.Fatalf("recovered state is the %d-batch prefix, but the child had %d batches acknowledged", matched, acked)
	}
	t.Logf("killed after %d acked batches; recovered exactly %d batches (seq %d, %d triples)",
		acked, matched, eng.LastSeq(), st.Len())
}

// crashMergeChild builds a two-segment chain, then re-opens the directory
// with a merge parked mid-flight: the hook drops a half-written .tmp where
// the merged segment would land (simulating a merge killed mid-write),
// acknowledges, and sleeps until the parent's SIGKILL.
func crashMergeChild(dir string) {
	st := store.New()
	eng, err := Open(st, Options{Dir: dir, Fsync: FsyncAlways, CheckpointBytes: -1, MergeRatio: -1})
	if err != nil {
		fmt.Println("child open error:", err)
		os.Exit(1)
	}
	for k := 0; k < 2; k++ {
		if _, err := st.AddBatch(crashBatch(k)); err != nil {
			fmt.Println("child ingest error:", err)
			os.Exit(1)
		}
		if err := eng.Checkpoint(); err != nil {
			fmt.Println("child checkpoint error:", err)
			os.Exit(1)
		}
	}
	covered := eng.Stats().SegmentSeq
	if err := eng.Close(); err != nil {
		fmt.Println("child close error:", err)
		os.Exit(1)
	}

	st2 := store.New()
	eng2, err := Open(st2, Options{Dir: dir, Fsync: FsyncAlways, CheckpointBytes: -1, MergeRatio: -1})
	if err != nil {
		fmt.Println("child reopen error:", err)
		os.Exit(1)
	}
	eng2.mergeHook = func() {
		tmp := filepath.Join(dir, segmentName(1, covered)+".tmp")
		if err := os.WriteFile(tmp, []byte(segMagic+"half a merge"), 0o644); err != nil {
			fmt.Println("child tmp error:", err)
			os.Exit(1)
		}
		fmt.Println("merging")
		select {} // park until the parent's SIGKILL
	}
	// Merges were disabled at Open so the hook could be installed first; now
	// arm the policy and schedule the pass.
	eng2.mu.Lock()
	eng2.opts.MergeRatio = 1e12
	eng2.mu.Unlock()
	eng2.pokeMerge()
	select {} // the hook never returns; if the poke was lost, hang for the kill anyway
}

// TestCrashMidMerge SIGKILLs a process whose background merge is mid-write —
// a torn .tmp on disk, inputs still present. Recovery must treat the torn
// merge as simply not-yet-merged: delete the .tmp, chain the input segments,
// and reproduce the exact pre-crash state.
func TestCrashMidMerge(t *testing.T) {
	if dir := os.Getenv(crashMergeChildEnv); dir != "" {
		crashMergeChild(dir)
		return
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe, "-test.run", "^TestCrashMidMerge$")
	cmd.Env = append(os.Environ(), crashMergeChildEnv+"="+dir)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting merge-crash child: %v", err)
	}
	sc := bufio.NewScanner(out)
	if !sc.Scan() || sc.Text() != "merging" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("child said %q, want \"merging\"", sc.Text())
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("killing child: %v", err)
	}
	cmd.Wait()

	st := store.New()
	eng, err := Open(st, Options{Dir: dir, Fsync: FsyncOff, MergeRatio: -1})
	if err != nil {
		t.Fatalf("recovery after kill -9 mid-merge: %v", err)
	}
	defer eng.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("recovery kept the torn merge output %s", e.Name())
		}
	}
	if got := eng.Stats().Segments; got != 2 {
		t.Fatalf("recovered chain has %d segments, want the 2 merge inputs", got)
	}
	ref := store.New()
	for k := 0; k < 2; k++ {
		if _, err := ref.AddBatch(crashBatch(k)); err != nil {
			t.Fatal(err)
		}
	}
	if snapshotString(t, st) != snapshotString(t, ref) {
		t.Fatal("recovery after a torn merge diverges from the pre-crash state")
	}
}
