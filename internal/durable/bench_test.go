package durable

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/store"
)

// BenchmarkIngestWAL measures what durability costs the ingest path: 1e5
// triples in 1000-triple batches, against the bare in-memory store and
// against a journaled store under each fsync policy. The "always/group"
// variant ingests the same work from 8 goroutines so concurrent committers
// share fsyncs — the group-commit effect the log is built around.
func BenchmarkIngestWAL(b *testing.B) {
	const total, batch = 100_000, 1000
	batches := make([][]store.Triple, 0, total/batch)
	for off := 0; off < total; off += batch {
		ts := make([]store.Triple, 0, batch)
		for i := off; i < off+batch; i++ {
			ts = append(ts, store.Triple{
				Subject:   fmt.Sprintf("subject-%d", i%5000),
				Predicate: fmt.Sprintf("predicate-%d", i%17),
				Object:    fmt.Sprintf("object-%d", i),
			})
		}
		batches = append(batches, ts)
	}

	ingest := func(b *testing.B, st *store.Store, workers int) {
		b.Helper()
		if workers <= 1 {
			for _, ts := range batches {
				if _, err := st.AddBatch(ts); err != nil {
					b.Fatal(err)
				}
			}
			return
		}
		var wg sync.WaitGroup
		next := make(chan []store.Triple)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ts := range next {
					if _, err := st.AddBatch(ts); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		for _, ts := range batches {
			next <- ts
		}
		close(next)
		wg.Wait()
	}

	b.Run("memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ingest(b, store.New(), 1)
		}
		b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "triples/s")
	})
	for _, bench := range []struct {
		name    string
		policy  FsyncPolicy
		workers int
	}{
		{"wal-off", FsyncOff, 1},
		{"wal-batch", FsyncBatch, 1},
		{"wal-always", FsyncAlways, 1},
		{"wal-always-group", FsyncAlways, 8},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st := store.New()
				eng, err := Open(st, Options{Dir: b.TempDir(), Fsync: bench.policy, CheckpointBytes: -1})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				ingest(b, st, bench.workers)
				b.StopTimer()
				if err := eng.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "triples/s")
		})
	}
}
