package durable

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/store"
)

// BenchmarkIngestWAL measures what durability costs the ingest path: 1e5
// triples in 1000-triple batches, against the bare in-memory store and
// against a journaled store under each fsync policy. The "always/group"
// variant ingests the same work from 8 goroutines so concurrent committers
// share fsyncs — the group-commit effect the log is built around.
func BenchmarkIngestWAL(b *testing.B) {
	const total, batch = 100_000, 1000
	batches := make([][]store.Triple, 0, total/batch)
	for off := 0; off < total; off += batch {
		ts := make([]store.Triple, 0, batch)
		for i := off; i < off+batch; i++ {
			ts = append(ts, store.Triple{
				Subject:   fmt.Sprintf("subject-%d", i%5000),
				Predicate: fmt.Sprintf("predicate-%d", i%17),
				Object:    fmt.Sprintf("object-%d", i),
			})
		}
		batches = append(batches, ts)
	}

	ingest := func(b *testing.B, st *store.Store, workers int) {
		b.Helper()
		if workers <= 1 {
			for _, ts := range batches {
				if _, err := st.AddBatch(ts); err != nil {
					b.Fatal(err)
				}
			}
			return
		}
		var wg sync.WaitGroup
		next := make(chan []store.Triple)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ts := range next {
					if _, err := st.AddBatch(ts); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		for _, ts := range batches {
			next <- ts
		}
		close(next)
		wg.Wait()
	}

	b.Run("memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ingest(b, store.New(), 1)
		}
		b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "triples/s")
	})
	for _, bench := range []struct {
		name    string
		policy  FsyncPolicy
		workers int
	}{
		{"wal-off", FsyncOff, 1},
		{"wal-batch", FsyncBatch, 1},
		{"wal-always", FsyncAlways, 1},
		{"wal-always-group", FsyncAlways, 8},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st := store.New()
				eng, err := Open(st, Options{Dir: b.TempDir(), Fsync: bench.policy, CheckpointBytes: -1})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				ingest(b, st, bench.workers)
				b.StopTimer()
				if err := eng.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "triples/s")
		})
	}
}

// benchCorpus is the deterministic n-triple recovery corpus: components recur
// so the dictionary is a realistic fraction of the triple count.
func benchCorpus(n int) []store.Triple {
	ts := make([]store.Triple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, store.Triple{
			Subject:   fmt.Sprintf("subject-%d", i%(n/5+1)),
			Predicate: fmt.Sprintf("predicate-%d", i%23),
			Object:    fmt.Sprintf("object-%d", i),
		})
	}
	return ts
}

// buildRecoveryDir ingests n triples through an engine and returns the
// directory. With checkpoint true the corpus is folded into a single base
// segment (the WAL tail left behind is empty); with checkpoint false the
// whole corpus stays in the log — exactly the directory the pre-tier engine
// always recovered from.
func buildRecoveryDir(b *testing.B, n int, checkpoint bool) string {
	b.Helper()
	dir := b.TempDir()
	st := store.New()
	eng, err := Open(st, Options{Dir: dir, Fsync: FsyncOff, CheckpointBytes: -1, MergeRatio: -1})
	if err != nil {
		b.Fatal(err)
	}
	corpus := benchCorpus(n)
	for off := 0; off < len(corpus); off += 10_000 {
		end := off + 10_000
		if end > len(corpus) {
			end = len(corpus)
		}
		if _, err := st.AddBatch(corpus[off:end]); err != nil {
			b.Fatal(err)
		}
	}
	if checkpoint {
		if err := eng.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// benchmarkRecover compares the two ways the engine can rebuild a store of n
// triples at Open, end to end (file I/O included in both):
//
//   - bulk: the tiered path — chain the segment directory, fold it, and hand
//     the result to store.RestoreSorted (per-shard goroutines, no per-triple
//     locking, no dedup probing).
//   - replay: the pre-tier path — the same corpus left entirely in the WAL,
//     recovered record by record through the store's ordinary mutation
//     machinery (decode, verify-or-intern each dictionary name, set-insert
//     each batch).
//
// The ratio between the two is the headline number this subsystem exists for.
func benchmarkRecover(b *testing.B, n int) {
	for _, variant := range []struct {
		name       string
		checkpoint bool
	}{
		{"bulk", true},
		{"replay", false},
	} {
		dir := buildRecoveryDir(b, n, variant.checkpoint)
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := store.New()
				eng, err := Open(st, Options{Dir: dir, Fsync: FsyncOff, MergeRatio: -1})
				if err != nil {
					b.Fatal(err)
				}
				if st.Len() != n {
					b.Fatalf("recovered %d triples, want %d", st.Len(), n)
				}
				b.StopTimer()
				if err := eng.Close(); err != nil {
					b.Fatal(err)
				}
				// A real recovery boots into a fresh heap; without this,
				// iterations after the first pay collection of the previous
				// iteration's dead store inside the timed region.
				runtime.GC()
				b.StartTimer()
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "triples/s")
		})
	}
}

func BenchmarkRecover1e5(b *testing.B) { benchmarkRecover(b, 100_000) }
func BenchmarkRecover1e6(b *testing.B) { benchmarkRecover(b, 1_000_000) }

// BenchmarkCheckpointDelta pins the O(delta) checkpoint property: against a
// 1e5-triple base already folded into a segment, each iteration journals a
// 1000-triple burst and checkpoints it. The reported segment bytes per op
// are the size of the delta, not the corpus — the old full-dump design paid
// the whole corpus here every time.
func BenchmarkCheckpointDelta(b *testing.B) {
	const base, burst = 100_000, 1000
	dir := b.TempDir()
	st := store.New()
	eng, err := Open(st, Options{Dir: dir, Fsync: FsyncOff, CheckpointBytes: -1, MergeRatio: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	corpus := benchCorpus(base)
	for off := 0; off < len(corpus); off += 10_000 {
		if _, err := st.AddBatch(corpus[off : off+10_000]); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	segBefore := eng.Stats().CheckpointBytes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ts := make([]store.Triple, 0, burst)
		for j := 0; j < burst; j++ {
			ts = append(ts, store.Triple{
				Subject:   fmt.Sprintf("delta-subject-%d", (i*burst+j)%5000),
				Predicate: "delta-predicate",
				Object:    fmt.Sprintf("delta-object-%d", i*burst+j),
			})
		}
		b.StartTimer()
		if _, err := st.AddBatch(ts); err != nil {
			b.Fatal(err)
		}
		if err := eng.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(eng.Stats().CheckpointBytes-segBefore)/float64(b.N), "segbytes/op")
}
