package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// This file tests the tiering machinery end to end: the patch algebra under
// merge compaction, tombstones crossing segment boundaries, recovery over
// merged-plus-leftover and damaged chains, the replay-vs-chain equivalence
// property, and the Close-during-merge contract.

// scriptStep applies the deterministic i-th mutation step: a 40-triple batch,
// and every third step a couple of removals reaching back into earlier steps.
func scriptStep(t *testing.T, st *store.Store, i int) {
	t.Helper()
	var batch []store.Triple
	for j := 0; j < 40; j++ {
		batch = append(batch, testTriple(i*40+j))
	}
	if _, err := st.AddBatch(batch); err != nil {
		t.Fatalf("script step %d: %v", i, err)
	}
	if i%3 == 2 {
		for _, back := range []int{i*40 - 1, i*40 - 17} {
			if !st.Remove(testTriple(back)) {
				t.Fatalf("script step %d: Remove(%d) found nothing", i, back)
			}
		}
	}
}

// waitForChain polls until the engine's chain settles at want segments (the
// background merge is asynchronous) or the deadline passes.
func waitForChain(t *testing.T, eng *Engine, want int) Stats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats := eng.Stats()
		if stats.Err != "" {
			t.Fatalf("engine error while waiting for the merge: %s", stats.Err)
		}
		if stats.Segments == want {
			return stats
		}
		if time.Now().After(deadline) {
			t.Fatalf("chain stuck at %d segments, want %d: %+v", stats.Segments, want, stats)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMergeCompaction(t *testing.T) {
	dir := t.TempDir()
	st := store.New()
	eng := mustOpen(t, st, Options{Dir: dir, Fsync: FsyncOff, CheckpointBytes: -1})
	for i := 0; i < 4; i++ {
		scriptStep(t, st, i)
		if err := eng.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
	// Four similar-sized young segments violate the default 4× separation, so
	// the background merge must fold them into one base segment.
	stats := waitForChain(t, eng, 1)
	if stats.Merges == 0 || stats.LastMergeDuration <= 0 {
		t.Fatalf("chain merged but Merges = %d, LastMergeDuration = %v", stats.Merges, stats.LastMergeDuration)
	}
	base := stats.Tiers[0]
	if base.Start != 1 || base.End != stats.SegmentSeq {
		t.Fatalf("base tier covers [%d, %d], want [1, %d]", base.Start, base.End, stats.SegmentSeq)
	}
	if base.Tombstones != 0 {
		t.Fatalf("base tier carries %d tombstones; a patch against the empty state removes nothing", base.Tombstones)
	}
	if base.Triples != st.Len() {
		t.Fatalf("base tier holds %d triples, store holds %d", base.Triples, st.Len())
	}
	if stats.MergeBytes == 0 || stats.WriteAmplification <= 1 {
		t.Fatalf("merge accounting missing: %+v", stats)
	}
	want := snapshotString(t, st)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := store.New()
	eng2 := mustOpen(t, st2, Options{Dir: dir, Fsync: FsyncOff})
	defer eng2.Close()
	if snapshotString(t, st2) != want {
		t.Fatal("recovery over the merged chain diverges from the pre-close state")
	}
}

// TestTombstoneOverOldAdd pins the cross-segment removal contract both ways:
// a younger segment's tombstone must suppress an older segment's add during
// chain recovery, and a merge folding the two must drop the pair entirely.
func TestTombstoneOverOldAdd(t *testing.T) {
	dir := t.TempDir()
	victim := testTriple(5)
	st := store.New()
	eng := mustOpen(t, st, Options{Dir: dir, Fsync: FsyncOff, CheckpointBytes: -1, MergeRatio: -1})
	scriptStep(t, st, 0)
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !st.Remove(victim) {
		t.Fatalf("Remove(%v) found nothing", victim)
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := snapshotString(t, st)
	if got := eng.Stats(); got.Segments != 2 || got.Tiers[1].Tombstones != 1 {
		t.Fatalf("chain %+v, want 2 tiers with 1 young tombstone", got)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Unmerged: recovery must apply the young tombstone over the old add.
	st2 := store.New()
	eng2 := mustOpen(t, st2, Options{Dir: dir, Fsync: FsyncOff, MergeRatio: -1})
	if st2.Contains(victim) {
		t.Fatal("chain recovery resurrected a tombstoned triple")
	}
	if snapshotString(t, st2) != want {
		t.Fatal("chain recovery diverges from the pre-close state")
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}

	// Merged: an enormous ratio makes the tiny tombstone segment mergeable
	// into the big one; Open schedules the merge itself. The fold must erase
	// the add/tombstone pair.
	st3 := store.New()
	eng3 := mustOpen(t, st3, Options{Dir: dir, Fsync: FsyncOff, MergeRatio: 1e12})
	defer eng3.Close()
	stats := waitForChain(t, eng3, 1)
	if st3.Contains(victim) {
		t.Fatal("merge resurrected a tombstoned triple")
	}
	if base := stats.Tiers[0]; base.Tombstones != 0 || base.Triples != st3.Len() {
		t.Fatalf("merged base tier %+v, want %d triples and no tombstones", base, st3.Len())
	}
	if snapshotString(t, st3) != want {
		t.Fatal("post-merge recovery diverges from the pre-close state")
	}
}

// TestRecoveryPrefersMergedSegment stages the directory a crash between a
// merge's publish and its input cleanup leaves behind: the merged segment AND
// its narrower inputs. Recovery must chain the merged one and delete the
// leftovers.
func TestRecoveryPrefersMergedSegment(t *testing.T) {
	dir := t.TempDir()
	older := segmentData{
		start: 1, end: 5, dictFirst: 0,
		dict: []string{"a", "b", "c"},
		adds: []store.IDTriple{{S: 0, P: 1, O: 2}},
	}
	newer := segmentData{
		start: 6, end: 10, dictFirst: 3,
		dict:    []string{"d"},
		adds:    []store.IDTriple{{S: 0, P: 1, O: 3}},
		removes: []store.IDTriple{{S: 0, P: 1, O: 2}},
	}
	merged, err := foldSegments(older, newer)
	if err != nil {
		t.Fatalf("foldSegments: %v", err)
	}
	if len(merged.removes) != 0 || len(merged.adds) != 1 || merged.adds[0] != (store.IDTriple{S: 0, P: 1, O: 3}) {
		t.Fatalf("fold produced adds %v removes %v", merged.adds, merged.removes)
	}
	for _, seg := range []segmentData{older, newer, merged} {
		if _, err := writeSegment(dir, seg); err != nil {
			t.Fatalf("writeSegment([%d, %d]): %v", seg.start, seg.end, err)
		}
	}
	st := store.New()
	rec, err := recoverDir(st, dir)
	if err != nil {
		t.Fatalf("recoverDir: %v", err)
	}
	rec.file.Close()
	if len(rec.tiers) != 1 || rec.tiers[0].start != 1 || rec.tiers[0].end != 10 {
		t.Fatalf("recovered tiers %+v, want the single merged [1, 10] segment", rec.tiers)
	}
	if rec.lastSeq != 10 {
		t.Fatalf("lastSeq = %d, want 10", rec.lastSeq)
	}
	if st.Len() != 1 || !st.Contains(store.Triple{Subject: "a", Predicate: "b", Object: "d"}) {
		t.Fatalf("recovered store holds %d triples", st.Len())
	}
	for _, leftover := range []string{segmentName(1, 5), segmentName(6, 10)} {
		if _, err := os.Stat(filepath.Join(dir, leftover)); !os.IsNotExist(err) {
			t.Fatalf("recovery kept the merged-away input %s", leftover)
		}
	}
}

func TestDamagedChainIsAnError(t *testing.T) {
	base := segmentData{
		start: 1, end: 5, dictFirst: 0,
		dict: []string{"a", "b", "c"},
		adds: []store.IDTriple{{S: 0, P: 1, O: 2}},
	}
	for _, tc := range []struct {
		name string
		next segmentData
		want string
	}{
		{"gap", segmentData{start: 8, end: 10, dictFirst: 3, dict: []string{"d"}, adds: []store.IDTriple{{S: 0, P: 1, O: 3}}}, "missing"},
		{"overlap", segmentData{start: 4, end: 10, dictFirst: 3, dict: []string{"d"}, adds: []store.IDTriple{{S: 0, P: 1, O: 3}}}, "overlap"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			for _, seg := range []segmentData{base, tc.next} {
				if _, err := writeSegment(dir, seg); err != nil {
					t.Fatal(err)
				}
			}
			_, err := recoverDir(store.New(), dir)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("recoverDir over a %s chain: %v, want a %q error", tc.name, err, tc.want)
			}
		})
	}
}

// TestReplayAndChainRecoveryAgree is the equivalence property the whole tier
// design rests on: the same mutation script recovered through pure WAL
// replay, through an unmerged segment chain, and through a fully merged
// chain must produce byte-identical stores (canonical Snapshot) — and
// identical dictionaries, since tombstone ids only mean anything if every
// path mints the same ids.
func TestReplayAndChainRecoveryAgree(t *testing.T) {
	const steps = 9
	run := func(opts Options, ckptEvery int, mergedTo int) (string, string) {
		dir := t.TempDir()
		opts.Dir = dir
		opts.Fsync = FsyncOff
		opts.CheckpointBytes = -1
		st := store.New()
		eng := mustOpen(t, st, opts)
		for i := 0; i < steps; i++ {
			scriptStep(t, st, i)
			if ckptEvery > 0 && i%ckptEvery == ckptEvery-1 {
				if err := eng.Checkpoint(); err != nil {
					t.Fatalf("checkpoint at step %d: %v", i, err)
				}
			}
		}
		if mergedTo > 0 {
			waitForChain(t, eng, mergedTo)
		}
		live := snapshotString(t, st)
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		st2 := store.New()
		eng2 := mustOpen(t, st2, Options{Dir: dir, Fsync: FsyncOff, MergeRatio: -1})
		defer eng2.Close()
		if got := snapshotString(t, st2); got != live {
			t.Fatal("recovered snapshot differs from the live store it journaled")
		}
		res := st2.NewResolver()
		var dict strings.Builder
		for i := 0; i < st2.DictLen(); i++ {
			fmt.Fprintf(&dict, "%d=%s\n", i, res.Name(store.SymbolID(i)))
		}
		return snapshotString(t, st2), dict.String()
	}
	replaySnap, replayDict := run(Options{MergeRatio: -1}, 0, 0)   // WAL only
	chainSnap, chainDict := run(Options{MergeRatio: -1}, 3, 0)     // segments + tail, unmerged
	mergedSnap, mergedDict := run(Options{MergeRatio: 1e12}, 3, 1) // fully merged base
	if chainSnap != replaySnap || mergedSnap != replaySnap {
		t.Fatal("replay, chain and merged recoveries disagree on the store state")
	}
	if chainDict != replayDict || mergedDict != replayDict {
		t.Fatal("replay, chain and merged recoveries disagree on id assignment")
	}
}

// TestCloseWaitsForMerge pins the shutdown contract: Close must not return
// while a background merge is mid-flight — it waits for the merge to notice
// the shutdown and abort cleanly — and the abort leaves no .tmp and a chain
// recovery reproduces exactly.
func TestCloseWaitsForMerge(t *testing.T) {
	dir := t.TempDir()
	st := store.New()
	eng := mustOpen(t, st, Options{Dir: dir, Fsync: FsyncOff, CheckpointBytes: -1})
	entered := make(chan struct{})
	release := make(chan struct{})
	eng.mergeHook = func() {
		close(entered)
		<-release
	}
	for i := 0; i < 2; i++ {
		scriptStep(t, st, i)
		if err := eng.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	// Two similar-sized segments put the chain out of separation; the second
	// checkpoint scheduled the merge, which is now parked in the hook.
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("background merge never started")
	}
	want := snapshotString(t, st)
	closed := make(chan error, 1)
	go func() { closed <- eng.Close() }()
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while the merge was still parked in its hook", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned after the merge was released")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("shutdown left %s behind", e.Name())
		}
	}
	st2 := store.New()
	eng2 := mustOpen(t, st2, Options{Dir: dir, Fsync: FsyncOff, MergeRatio: -1})
	defer eng2.Close()
	if got := eng2.Stats().Segments; got != 2 {
		t.Fatalf("aborted merge left %d segments, want the 2 untouched inputs", got)
	}
	if snapshotString(t, st2) != want {
		t.Fatal("recovery after an aborted merge diverges from the pre-close state")
	}
}
