package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/store"
)

// This file is the log's wire format: length-prefixed, CRC-framed records,
// each carrying a sequence number and a dictionary-id-level payload. The
// format is append-only and self-delimiting, so a reader can walk a file
// frame by frame and stop at the first frame the CRC rejects — which is
// exactly how torn tails are detected after a crash.
//
// Frame layout (all integers little-endian):
//
//	+------------+------------+====================+
//	| len uint32 | crc uint32 | payload (len bytes)|
//	+------------+------------+====================+
//
// crc is CRC-32C (Castagnoli) over the payload only, so a frame is valid iff
// its length field delimits a payload whose checksum matches — a truncated
// write, a bit flip in the payload, and a bit flip in the length field are
// all rejected (the last because the misdelimited span checksums wrong).
//
// Payload layout:
//
//	+----------+------------+======+
//	| typ byte | seq uint64 | body |
//	+----------+------------+======+
//
// seq numbers records 1, 2, 3… across the log's whole life (files included),
// so replay can verify continuity and a checkpoint can name the exact record
// its segment covers through. The three record types:
//
//	recDict   body = first uint32, count uint32, count × (uvarint n, n bytes)
//	          — names[i] was interned as dictionary id first+i
//	recAdd    body = count uint32, count × (s, p, o uint32)
//	          — the triples one mutation actually inserted
//	recRemove body = s, p, o uint32
//	          — one removed triple

// Record type tags.
const (
	recDict   = 1
	recAdd    = 2
	recRemove = 3
)

// frameHeader is the fixed prefix of every frame: length + CRC.
const frameHeader = 8

// maxFramePayload caps a single frame, and is enforced on BOTH sides of the
// format: the writer chunks any mutation whose record would exceed it into
// consecutive smaller records (see walWriter.appendAdd/appendDict), so the
// reader may treat a frame claiming more than the cap as corruption rather
// than trust it to allocate. A typical payload — a 100k-triple server batch
// (~1.2 MB) or its dictionary growth — sits far below it.
const maxFramePayload = 1 << 26

// Fixed payload-prefix sizes, which the writer subtracts from maxFramePayload
// when deciding where to chunk an oversized mutation.
const (
	// recHeader is the typ byte plus the seq uint64 every record carries.
	recHeader = 9
	// addPayloadHeader is recHeader plus recAdd's count uint32.
	addPayloadHeader = recHeader + 4
	// dictPayloadHeader is recHeader plus recDict's first and count uint32s.
	dictPayloadHeader = recHeader + 8
)

// castagnoli is the CRC-32C table shared by framing and segment footers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame wraps payload in a frame and appends it to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// nextFrame delimits the frame starting at data[off:], returning its payload
// and the offset of the following frame. ok is false when the bytes at off do
// not form a whole, checksum-valid frame — the torn-tail condition; the
// caller decides whether that means "clean end" (off == len(data)) or
// corruption worth reporting.
func nextFrame(data []byte, off int) (payload []byte, next int, ok bool) {
	if off < 0 || len(data)-off < frameHeader {
		return nil, off, false
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	if n > maxFramePayload || len(data)-off-frameHeader < n {
		return nil, off, false
	}
	crc := binary.LittleEndian.Uint32(data[off+4:])
	payload = data[off+frameHeader : off+frameHeader+n]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, off, false
	}
	return payload, off + frameHeader + n, true
}

// record is one decoded WAL record.
type record struct {
	typ byte
	seq uint64
	// first and names carry a recDict body.
	first store.SymbolID
	names []string
	// triples carries a recAdd body, or the single triple of a recRemove.
	triples []store.IDTriple
}

// encodeDict appends a recDict payload to dst.
func encodeDict(dst []byte, seq uint64, first store.SymbolID, names []string) []byte {
	dst = append(dst, recDict)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint32(dst, first)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(names)))
	for _, name := range names {
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
	}
	return dst
}

// dictNameSize is the encoded size of one recDict name: its uvarint length
// prefix plus its bytes. The writer sums it to chunk dictionary growth below
// the frame cap.
func dictNameSize(name string) int {
	n := 1
	for x := uint64(len(name)); x >= 0x80; x >>= 7 {
		n++
	}
	return n + len(name)
}

// encodeAdd appends a recAdd payload to dst.
func encodeAdd(dst []byte, seq uint64, triples []store.IDTriple) []byte {
	dst = append(dst, recAdd)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(triples)))
	for _, t := range triples {
		dst = binary.LittleEndian.AppendUint32(dst, t.S)
		dst = binary.LittleEndian.AppendUint32(dst, t.P)
		dst = binary.LittleEndian.AppendUint32(dst, t.O)
	}
	return dst
}

// encodeRemove appends a recRemove payload to dst.
func encodeRemove(dst []byte, seq uint64, t store.IDTriple) []byte {
	dst = append(dst, recRemove)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint32(dst, t.S)
	dst = binary.LittleEndian.AppendUint32(dst, t.P)
	dst = binary.LittleEndian.AppendUint32(dst, t.O)
	return dst
}

// decodeRecord parses one frame payload. Every length is bounds-checked
// against the remaining bytes before it is trusted, so a corrupt payload that
// slipped past the CRC (or a fuzzer's invention) yields an error, never a
// panic or an oversized allocation.
func decodeRecord(payload []byte) (record, error) {
	var r record
	if len(payload) < recHeader {
		return r, fmt.Errorf("durable: record payload of %d bytes is shorter than its type+seq header", len(payload))
	}
	r.typ = payload[0]
	r.seq = binary.LittleEndian.Uint64(payload[1:])
	body := payload[recHeader:]
	switch r.typ {
	case recDict:
		if len(body) < 8 {
			return r, fmt.Errorf("durable: dict record body of %d bytes is shorter than its first+count header", len(body))
		}
		r.first = binary.LittleEndian.Uint32(body)
		count := int(binary.LittleEndian.Uint32(body[4:]))
		body = body[8:]
		if count > len(body) { // every name costs ≥1 length byte
			return r, fmt.Errorf("durable: dict record claims %d names in %d bytes", count, len(body))
		}
		r.names = make([]string, 0, count)
		for i := 0; i < count; i++ {
			n, w := binary.Uvarint(body)
			if w <= 0 || n > uint64(len(body)-w) {
				return r, fmt.Errorf("durable: dict record name %d overruns the body", i)
			}
			r.names = append(r.names, string(body[w:w+int(n)]))
			body = body[w+int(n):]
		}
		if len(body) != 0 {
			return r, fmt.Errorf("durable: dict record has %d trailing bytes", len(body))
		}
	case recAdd:
		if len(body) < 4 {
			return r, fmt.Errorf("durable: add record body of %d bytes is shorter than its count header", len(body))
		}
		count := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if len(body) != 12*count {
			return r, fmt.Errorf("durable: add record claims %d triples but carries %d bytes", count, len(body))
		}
		r.triples = make([]store.IDTriple, 0, count)
		for i := 0; i < count; i++ {
			r.triples = append(r.triples, store.IDTriple{
				S: binary.LittleEndian.Uint32(body[12*i:]),
				P: binary.LittleEndian.Uint32(body[12*i+4:]),
				O: binary.LittleEndian.Uint32(body[12*i+8:]),
			})
		}
	case recRemove:
		if len(body) != 12 {
			return r, fmt.Errorf("durable: remove record body is %d bytes, want 12", len(body))
		}
		r.triples = []store.IDTriple{{
			S: binary.LittleEndian.Uint32(body),
			P: binary.LittleEndian.Uint32(body[4:]),
			O: binary.LittleEndian.Uint32(body[8:]),
		}}
	default:
		return r, fmt.Errorf("durable: unknown record type %d", r.typ)
	}
	return r, nil
}
