package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// This file is the write-ahead log writer: an append-only, group-committing
// front for the record format in record.go. Appenders (the store's mutation
// goroutines, calling through the Journal hook) stage encoded frames in an
// in-memory buffer under a mutex; commit drains the buffer to the file and —
// under the always policy — fsyncs, with one goroutine doing the I/O while
// every other committer waits on a condition variable. That is the group
// commit: when ten handlers commit concurrently, the first one into the
// syncer role writes and fsyncs everyone's frames, and the other nine return
// without touching the disk.
//
// The single invariant that keeps the concurrency sound: ALL file I/O —
// write, fsync, close, rotate — happens with the syncing flag held, and the
// flag is only taken and released under mu. Appenders never touch the file;
// the flag holder drops mu around each syscall, so staging new frames never
// blocks on the disk.
//
// Errors are sticky: the first I/O failure is kept and returned by every
// later commit. A log that failed once cannot promise anything about its
// tail, so there is no retry path — the operator restarts and recovery
// truncates at the torn frame.

// walWriter is the append/commit side of the log. One per Engine.
type walWriter struct {
	dir    string
	policy FsyncPolicy
	// maxPayload caps one record's payload; appenders chunk mutations that
	// would exceed it into consecutive records, so every frame stays below
	// the cap the reader enforces. Always maxFramePayload outside tests.
	maxPayload int

	mu   sync.Mutex
	cond *sync.Cond // broadcast whenever syncing is released or seqs advance
	f    *os.File   // current wal file; I/O only with syncing held
	// syncing marks the one goroutine allowed to touch f. Taken and released
	// only under mu; the holder drops mu around syscalls.
	syncing bool
	err     error // sticky: first I/O failure, returned by every later commit

	buf     []byte // staged frames not yet written to f
	spare   []byte // recycled staging buffer (swapped with buf at each drain)
	scratch []byte // payload encode scratch, reused under mu

	seq        uint64 // seq of the last staged record
	writtenSeq uint64 // every record ≤ this has reached the OS
	durableSeq uint64 // every record ≤ this has been fsynced

	fileFirst  uint64 // first seq the current file can hold (its name)
	totalBytes int64  // bytes appended since the last rotation (checkpoint trigger)
	appended   int64  // bytes appended over the writer's lifetime (write-amplification denominator)

	lastFsync time.Time
	fsyncs    int64

	// pendingFrames counts frames staged since the last drain — the size of
	// the next group commit, observed into mCommitFrames when it drains.
	pendingFrames int64

	// Metric handles, nil until the engine registers them (observations are
	// nil-safe): fsync syscall latency, group-commit batch sizes, and the
	// cumulative frame/byte append counters.
	mFsyncSeconds *obs.Histogram
	mCommitFrames *obs.Histogram
	mFrames       *obs.Counter
	mBytes        *obs.Counter
}

// walFileName names the log file whose first record is seq. Fixed-width
// decimal so lexical directory order is replay order.
func walFileName(first uint64) string {
	return fmt.Sprintf("wal-%016d.wal", first)
}

// createWALFile creates (or truncates) the log file for records starting at
// first and fsyncs the directory so the entry itself survives a crash.
func createWALFile(dir string, first uint64) (*os.File, error) {
	path := filepath.Join(dir, walFileName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: creating log file: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs a directory so renames and creates inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: opening directory for fsync: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("durable: fsyncing directory: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("durable: closing directory after fsync: %w", cerr)
	}
	return nil
}

// newWALWriter wraps an already-open log file positioned at its end. lastSeq
// is the seq of the last record recovery accepted (everything ≤ lastSeq is on
// disk and fsync-clean after recovery's truncate), fileFirst the first seq of
// the open file.
func newWALWriter(dir string, policy FsyncPolicy, f *os.File, lastSeq, fileFirst uint64) *walWriter {
	w := &walWriter{
		dir:        dir,
		policy:     policy,
		maxPayload: maxFramePayload,
		f:          f,
		seq:        lastSeq,
		writtenSeq: lastSeq,
		durableSeq: lastSeq,
		fileFirst:  fileFirst,
		lastFsync:  time.Now(),
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// stageLocked frames the payload in scratch and stages it. Callers hold mu
// and have already advanced w.seq.
func (w *walWriter) stageLocked() {
	w.buf = appendFrame(w.buf, w.scratch)
	w.totalBytes += int64(frameHeader + len(w.scratch))
	w.appended += int64(frameHeader + len(w.scratch))
	w.pendingFrames++
	w.mFrames.Inc()
	w.mBytes.Add(int64(frameHeader + len(w.scratch)))
}

// appendDict stages dictionary-growth records. Called under the store's
// symbol-table lock (see store.Journal), which is what orders it ahead of
// every triple record using the new ids; it must therefore stay
// syscall-free, and it does — staging only appends to the in-memory buffer.
//
// Growth too large for one frame is chunked into consecutive records, each
// under the payload cap; replay applies each chunk's verify-or-intern run
// independently, so the split is invisible to recovery. A single name that
// cannot fit even alone kills the log (sticky error): dropping it would
// desynchronize the log's id assignment from the store's, so every later
// commit must report the loss instead of acknowledging it.
func (w *walWriter) appendDict(first store.SymbolID, names []string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(names) > 0 {
		size := dictPayloadHeader + dictNameSize(names[0])
		if size > w.maxPayload {
			w.seq++
			if w.err == nil {
				w.err = fmt.Errorf("durable: dictionary name of %d bytes exceeds the %d-byte record cap; the log cannot represent this mutation", len(names[0]), w.maxPayload)
			}
			first++
			names = names[1:]
			continue
		}
		n := 1
		for n < len(names) {
			c := dictNameSize(names[n])
			if size+c > w.maxPayload {
				break
			}
			size += c
			n++
		}
		w.seq++
		if w.err == nil { // a dead log stays dead; keep seq accounting only
			w.scratch = encodeDict(w.scratch[:0], w.seq, first, names[:n])
			w.stageLocked()
		}
		first += store.SymbolID(n)
		names = names[n:]
	}
}

// appendAdd stages insertion records, chunking a batch too large for one
// frame into consecutive records — each chunk replays as an ordinary set
// insertion, so the split is invisible to recovery.
func (w *walWriter) appendAdd(batch []store.IDTriple) {
	max := (w.maxPayload - addPayloadHeader) / 12
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(batch) > 0 {
		chunk := batch
		if len(chunk) > max {
			chunk = chunk[:max]
		}
		batch = batch[len(chunk):]
		w.seq++
		if w.err != nil {
			continue // the log is dead; don't grow the buffer for records that can never commit
		}
		w.scratch = encodeAdd(w.scratch[:0], w.seq, chunk)
		w.stageLocked()
	}
}

// appendRemove stages a removal record.
func (w *walWriter) appendRemove(t store.IDTriple) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	if w.err != nil {
		return
	}
	w.scratch = encodeRemove(w.scratch[:0], w.seq, t)
	w.stageLocked()
}

// commit makes every record staged so far durable to the degree the policy
// promises: written and fsynced for FsyncAlways, written to the OS for
// FsyncBatch (the background ticker supplies the fsync) and FsyncOff.
func (w *walWriter) commit() error {
	w.mu.Lock()
	target := w.seq
	w.mu.Unlock()
	if w.policy == FsyncAlways {
		return w.syncTo(target)
	}
	return w.writeTo(target)
}

// writeTo blocks until every record ≤ target has reached the OS (no fsync).
func (w *walWriter) writeTo(target uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.writtenSeq < target && w.err == nil {
		if w.syncing {
			w.cond.Wait() // another goroutine is on the disk; it advances seqs for us too
			continue
		}
		w.drainLocked(false)
	}
	return w.err
}

// syncTo blocks until every record ≤ target is fsynced — the group-commit
// loop. The first committer to find the syncer role free takes it, writes
// and fsyncs everything staged (its own frames and everyone else's), and
// wakes the rest; committers whose target was covered return without any
// I/O of their own.
func (w *walWriter) syncTo(target uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.durableSeq < target && w.err == nil {
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.drainLocked(true)
	}
	return w.err
}

// drainLocked takes the syncer role, writes the staged buffer (and fsyncs,
// when asked) with mu released, then publishes the advanced seqs. Callers
// hold mu with syncing free; on return mu is held again. The buffer swap
// means appenders staged into spare while we were on the disk, and the next
// drain picks those up.
func (w *walWriter) drainLocked(sync bool) {
	buf := w.buf
	w.buf = w.spare[:0]
	w.spare = nil
	covered := w.seq
	frames := w.pendingFrames
	w.pendingFrames = 0
	f := w.f
	w.syncing = true
	w.mu.Unlock()

	if frames > 0 {
		w.mCommitFrames.Observe(float64(frames))
	}
	var err error
	if len(buf) > 0 {
		_, err = f.Write(buf)
	}
	if err == nil && sync {
		fsStart := time.Now()
		err = f.Sync()
		w.mFsyncSeconds.Since(fsStart)
	}
	now := time.Now()

	w.mu.Lock() //ontolint:ignore lockcheck reacquisition after the unlocked I/O window; drainLocked's caller entered with the lock held and releases it, so this Lock is deliberately unbalanced here
	w.syncing = false
	w.spare = buf[:0]
	if err != nil {
		if w.err == nil {
			w.err = fmt.Errorf("durable: log write: %w", err)
		}
	} else {
		w.writtenSeq = covered
		if sync {
			w.durableSeq = covered
			w.lastFsync = now
			w.fsyncs++
		}
	}
	w.cond.Broadcast()
}

// rotate finishes the current file — final write, fsync, close — and opens
// the successor wal file. It returns the seq the finished file covers
// through: the checkpoint that triggered the rotation will dump the store
// (whose state includes every record ≤ that seq, by apply-before-log) and
// name its segment after it. Frames staged by appenders while the rotation
// is on the disk carry seqs beyond the returned one and land in the new
// file, where they belong.
func (w *walWriter) rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncing {
		w.cond.Wait()
	}
	if w.err != nil {
		return 0, w.err
	}
	buf := w.buf
	w.buf = w.spare[:0]
	w.spare = nil
	covered := w.seq
	frames := w.pendingFrames
	w.pendingFrames = 0
	f := w.f
	w.syncing = true
	w.mu.Unlock()

	if frames > 0 {
		w.mCommitFrames.Observe(float64(frames))
	}
	var err error
	if len(buf) > 0 {
		_, err = f.Write(buf)
	}
	if err == nil {
		fsStart := time.Now()
		err = f.Sync()
		w.mFsyncSeconds.Since(fsStart)
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	var next *os.File
	if err == nil {
		next, err = createWALFile(w.dir, covered+1)
	}
	now := time.Now()

	w.mu.Lock()
	w.syncing = false
	defer w.cond.Broadcast()
	w.spare = buf[:0]
	if err != nil {
		if w.err == nil {
			w.err = fmt.Errorf("durable: log rotation: %w", err)
		}
		return 0, w.err
	}
	w.f = next
	w.fileFirst = covered + 1
	w.totalBytes = 0
	w.writtenSeq = covered
	w.durableSeq = covered
	w.lastFsync = now
	w.fsyncs++
	return covered, nil
}

// close drains and fsyncs whatever is staged (whatever the policy — a clean
// shutdown should never lose acknowledged work) and closes the file.
func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.durableSeq < w.seq && w.err == nil {
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.drainLocked(true)
	}
	err := w.err
	for w.syncing {
		w.cond.Wait()
	}
	w.syncing = true
	f := w.f
	w.mu.Unlock()
	cerr := f.Close()
	w.mu.Lock()
	w.syncing = false
	if w.err == nil && cerr != nil {
		w.err = fmt.Errorf("durable: closing log: %w", cerr)
	}
	w.cond.Broadcast()
	if err == nil {
		err = w.err
	}
	return err
}

// stickyErr returns the writer's sticky error — nil while every write and
// fsync has succeeded.
func (w *walWriter) stickyErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// currentSeq returns the seq of the last staged record.
func (w *walWriter) currentSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// bytesSinceRotation returns how much log the current checkpoint window has
// accumulated — the auto-checkpoint trigger reads it after every commit.
func (w *walWriter) bytesSinceRotation() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.totalBytes
}

// snapshotStats copies the writer's counters into st under the lock.
func (w *walWriter) snapshotStats(st *Stats) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st.Seq = w.seq
	st.DurableSeq = w.durableSeq
	st.WALBytes = w.totalBytes
	st.WALAppendedBytes = w.appended
	st.LastFsync = w.lastFsync
	st.Fsyncs = w.fsyncs
	if w.err != nil {
		st.Err = w.err.Error()
	}
}
