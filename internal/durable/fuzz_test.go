package durable

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// FuzzDecodeRecord throws arbitrary bytes at the record decoder: whatever
// the input, it must return cleanly — an error or a record, never a panic or
// a length-driven runaway allocation (the decoder bounds-checks every length
// against the bytes actually present).
func FuzzDecodeRecord(f *testing.F) {
	f.Add(encodeDict(nil, 1, 0, []string{"a", "bb", ""}))
	f.Add(encodeAdd(nil, 2, []store.IDTriple{{S: 0, P: 1, O: 2}, {S: 2, P: 1, O: 0}}))
	f.Add(encodeRemove(nil, 3, store.IDTriple{S: 7, P: 8, O: 9}))
	f.Add([]byte{})
	f.Add([]byte{recDict, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := decodeRecord(payload)
		if err != nil {
			return
		}
		// Fixed-width bodies round-trip byte-exactly. Dict bodies may not
		// (binary.Uvarint tolerates non-canonical length encodings), so for
		// them re-encode and re-decode: the RECORD must survive unchanged.
		switch r.typ {
		case recAdd:
			if again := encodeAdd(nil, r.seq, r.triples); string(again) != string(payload) {
				t.Fatalf("add record round trip changed the payload: %x -> %x", payload, again)
			}
		case recRemove:
			if again := encodeRemove(nil, r.seq, r.triples[0]); string(again) != string(payload) {
				t.Fatalf("remove record round trip changed the payload: %x -> %x", payload, again)
			}
		case recDict:
			r2, err := decodeRecord(encodeDict(nil, r.seq, r.first, r.names))
			if err != nil {
				t.Fatalf("re-encoded dict record does not decode: %v", err)
			}
			if r2.first != r.first || len(r2.names) != len(r.names) {
				t.Fatalf("dict record round trip changed: %+v -> %+v", r, r2)
			}
			for i := range r.names {
				if r2.names[i] != r.names[i] {
					t.Fatalf("dict record round trip changed name %d: %q -> %q", i, r.names[i], r2.names[i])
				}
			}
		}
	})
}

// fuzzChainSegments is the fixed two-tier segment chain the recovery fuzzer
// lays down in front of the fuzzed log tail: a base segment and a young delta
// whose tombstone reaches into it.
func fuzzChainSegments() []segmentData {
	return []segmentData{
		{
			start: 1, end: 2, dictFirst: 0,
			dict: []string{"s", "p", "o"},
			adds: []store.IDTriple{{S: 0, P: 1, O: 2}},
		},
		{
			start: 3, end: 4, dictFirst: 3,
			dict:    []string{"q"},
			adds:    []store.IDTriple{{S: 0, P: 1, O: 3}},
			removes: []store.IDTriple{{S: 0, P: 1, O: 2}},
		},
	}
}

// FuzzRecoverLog feeds arbitrary bytes to the whole recovery path as a log
// tail — once over a bare directory, once behind a two-segment tier chain:
// recovery must either succeed (torn tails are legal in the last file) or
// fail with an error — never panic, and never leave the store in a state the
// decoder did not explicitly apply.
func FuzzRecoverLog(f *testing.F) {
	var seed []byte
	seed = appendFrame(seed, encodeDict(nil, 1, 0, []string{"s", "p", "o"}))
	seed = appendFrame(seed, encodeAdd(nil, 2, []store.IDTriple{{S: 0, P: 1, O: 2}}))
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte{})
	// A tail that chains correctly onto the segment fixture (first seq 5,
	// re-adding the tombstoned triple), so the fuzzer explores the
	// chain-plus-valid-tail path too, not only early rejections.
	var chained []byte
	chained = appendFrame(chained, encodeAdd(nil, 5, []store.IDTriple{{S: 0, P: 1, O: 2}}))
	chained = appendFrame(chained, encodeRemove(nil, 6, store.IDTriple{S: 0, P: 1, O: 3}))
	f.Add(chained)
	// Serialize the segment fixture ONCE (writeSegment fsyncs; per-exec that
	// would throttle the fuzzer to disk speed) and copy the bytes per exec.
	segDir := f.TempDir()
	type segFile struct {
		name string
		data []byte
	}
	var segFiles []segFile
	for _, seg := range fuzzChainSegments() {
		if _, err := writeSegment(segDir, seg); err != nil {
			f.Fatal(err)
		}
		name := segmentName(seg.start, seg.end)
		data, err := os.ReadFile(filepath.Join(segDir, name))
		if err != nil {
			f.Fatal(err)
		}
		segFiles = append(segFiles, segFile{name, data})
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFileName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := recoverDir(store.New(), dir)
		if err == nil {
			rec.file.Close()
		}

		// Same bytes as the tail of a segment-chain directory: the chain
		// covers seqs 1..4, so the tail file starts at 5 and the fuzzed data
		// must chain densely from there (or be refused).
		chainDir := t.TempDir()
		for _, sf := range segFiles {
			if err := os.WriteFile(filepath.Join(chainDir, sf.name), sf.data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(chainDir, walFileName(5)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st := store.New()
		rec, err = recoverDir(st, chainDir)
		if err != nil {
			return
		}
		rec.file.Close()
		// Whatever the tail did, the chain's fold must have held: the base
		// add is tombstoned unless the tail explicitly re-added it.
		if st.Len() < 1 {
			t.Fatalf("chain recovery lost the young segment's add (store holds %d triples)", st.Len())
		}
	})
}

// FuzzLoadSegment throws arbitrary bytes at the segment loader: whatever the
// input, it must return cleanly — segments are published atomically, so the
// loader treats every violation as corruption, and none may panic or
// over-allocate past the bytes actually present.
func FuzzLoadSegment(f *testing.F) {
	dir := f.TempDir()
	for _, seg := range fuzzChainSegments() {
		if _, err := writeSegment(dir, seg); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, segmentName(seg.start, seg.end)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)-7])
	}
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segmentName(1, 2))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		seg, err := loadSegment(path)
		if err != nil {
			return
		}
		// An accepted segment must satisfy the invariants every consumer
		// assumes: sorted runs within the dictionary bound.
		bound := seg.dictFirst + store.SymbolID(len(seg.dict))
		for _, run := range [][]store.IDTriple{seg.adds, seg.removes} {
			for i, tr := range run {
				if tr.S >= bound || tr.P >= bound || tr.O >= bound {
					t.Fatalf("accepted segment references id beyond its %d-id prefix", bound)
				}
				if i > 0 && !tripleLess(run[i-1], tr) {
					t.Fatal("accepted segment has an unsorted run")
				}
			}
		}
	})
}
