package durable

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// FuzzDecodeRecord throws arbitrary bytes at the record decoder: whatever
// the input, it must return cleanly — an error or a record, never a panic or
// a length-driven runaway allocation (the decoder bounds-checks every length
// against the bytes actually present).
func FuzzDecodeRecord(f *testing.F) {
	f.Add(encodeDict(nil, 1, 0, []string{"a", "bb", ""}))
	f.Add(encodeAdd(nil, 2, []store.IDTriple{{S: 0, P: 1, O: 2}, {S: 2, P: 1, O: 0}}))
	f.Add(encodeRemove(nil, 3, store.IDTriple{S: 7, P: 8, O: 9}))
	f.Add([]byte{})
	f.Add([]byte{recDict, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := decodeRecord(payload)
		if err != nil {
			return
		}
		// Fixed-width bodies round-trip byte-exactly. Dict bodies may not
		// (binary.Uvarint tolerates non-canonical length encodings), so for
		// them re-encode and re-decode: the RECORD must survive unchanged.
		switch r.typ {
		case recAdd:
			if again := encodeAdd(nil, r.seq, r.triples); string(again) != string(payload) {
				t.Fatalf("add record round trip changed the payload: %x -> %x", payload, again)
			}
		case recRemove:
			if again := encodeRemove(nil, r.seq, r.triples[0]); string(again) != string(payload) {
				t.Fatalf("remove record round trip changed the payload: %x -> %x", payload, again)
			}
		case recDict:
			r2, err := decodeRecord(encodeDict(nil, r.seq, r.first, r.names))
			if err != nil {
				t.Fatalf("re-encoded dict record does not decode: %v", err)
			}
			if r2.first != r.first || len(r2.names) != len(r.names) {
				t.Fatalf("dict record round trip changed: %+v -> %+v", r, r2)
			}
			for i := range r.names {
				if r2.names[i] != r.names[i] {
					t.Fatalf("dict record round trip changed name %d: %q -> %q", i, r.names[i], r2.names[i])
				}
			}
		}
	})
}

// FuzzRecoverLog feeds arbitrary bytes to the whole recovery path as a log
// tail: recovery must either succeed (torn tails are legal in the last file)
// or fail with an error — never panic, and never leave the store in a state
// the decoder did not explicitly apply.
func FuzzRecoverLog(f *testing.F) {
	var seed []byte
	seed = appendFrame(seed, encodeDict(nil, 1, 0, []string{"s", "p", "o"}))
	seed = appendFrame(seed, encodeAdd(nil, 2, []store.IDTriple{{S: 0, P: 1, O: 2}}))
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFileName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st := store.New()
		rec, err := recoverDir(st, dir)
		if err != nil {
			return
		}
		rec.file.Close()
	})
}
