package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/store"
)

// This file is the segment format: an immutable delta file produced by
// compacting one window of the WAL. A segment named seg-<start>-<end> is a
// patch covering log records start..end: the dictionary names those records
// minted (ids dictFirst..dictFirst+count-1), the triples whose last event in
// the window was an insert (adds), and the triples whose last event was a
// removal (tombstones). Applying a chain of segments oldest→newest — subtract
// each segment's tombstones, union its adds — reproduces exactly the state
// the WAL prefix through the newest segment's end would build.
//
// Delta segments are what make checkpoints O(changed bytes) instead of
// O(corpus): a checkpoint folds only the WAL window it retires, and a
// background merge (see tier.go) folds young segments into older generations
// so the chain stays short. The oldest segment of a chain always starts at
// seq 1, and a segment starting at 1 carries no tombstones — a patch against
// the empty state has nothing to remove.
//
// Layout (integers little-endian):
//
//	magic     "ONTOSEG2"                       8 bytes
//	start     uint64                           first WAL seq the segment covers
//	end       uint64                           last WAL seq the segment covers
//	dictFirst uint32                           id of the first name below
//	dict      count uint32,
//	          count × (uvarint n, n bytes)     names for ids dictFirst..dictFirst+count-1
//	adds      count uint64,
//	          count × (s, p, o uint32)         net inserts, sorted by (s, p, o)
//	removes   count uint64,
//	          count × (s, p, o uint32)         net removals (tombstones), sorted
//	crc       uint32                           CRC-32C of everything above
//	trailer   "ONTOSEGE"                       8 bytes
//
// Both triple runs are strictly sorted and reference only ids below
// dictFirst+count of the whole chain prefix — properties the loader verifies,
// because every consumer (the fold in tier.go, store.RestoreSorted) depends
// on them.
//
// A segment becomes visible atomically: written to a .tmp name, fsynced,
// renamed into place, directory fsynced. Readers never see a half-written
// seg- file; a crash mid-checkpoint or mid-merge leaves a .tmp that recovery
// deletes — a torn merge is simply not-yet-merged, its inputs still on disk.

// Segment magic strings. ONTOSEG1 (the PR-7 full-dump format) is gone:
// a directory holding one is from a build this engine predates, and the
// loader reports its magic as unrecognized rather than misreading it.
const (
	segMagic   = "ONTOSEG2"
	segTrailer = "ONTOSEGE"
)

// segmentData is one decoded (or about-to-be-written) delta segment.
type segmentData struct {
	start, end uint64 // WAL seq window [start, end], start ≥ 1
	dictFirst  store.SymbolID
	dict       []string
	adds       []store.IDTriple // sorted (S, P, O), strictly ascending
	removes    []store.IDTriple // sorted tombstones; empty when start == 1
	size       int64            // file size; set by loadSegment, informative only
}

// segmentName names the segment covering WAL records start..end. Both bounds
// are in the name so a merged segment never collides with its inputs and
// recovery can chain tiers without opening every file.
func segmentName(start, end uint64) string {
	return fmt.Sprintf("seg-%016d-%016d.seg", start, end)
}

// parseSegmentName extracts the window from a "seg-%016d-%016d.seg" name.
func parseSegmentName(name string) (start, end uint64, ok bool) {
	const prefix, ext = "seg-", ".seg"
	if len(name) != len(prefix)+16+1+16+len(ext) {
		return 0, 0, false
	}
	if name[:len(prefix)] != prefix || name[len(name)-len(ext):] != ext || name[len(prefix)+16] != '-' {
		return 0, 0, false
	}
	var err error
	if start, err = parseSeq(name[len(prefix) : len(prefix)+16]); err != nil {
		return 0, 0, false
	}
	if end, err = parseSeq(name[len(prefix)+17 : len(prefix)+33]); err != nil {
		return 0, 0, false
	}
	return start, end, true
}

// crcWriter feeds every written byte to both the file and the running
// checksum, so the footer CRC covers exactly the bytes on disk before it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, castagnoli, p[:n])
	return n, err
}

// writeSegment atomically writes seg's file into dir, returning its size.
// The caller guarantees the triple runs are sorted (checkpoint and merge
// folds produce them sorted); the loader verifies it on the way back in.
func writeSegment(dir string, seg segmentData) (size int64, retErr error) {
	final := filepath.Join(dir, segmentName(seg.start, seg.end))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("durable: creating segment: %w", err)
	}
	defer func() {
		if retErr != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	bw := bufio.NewWriterSize(f, 1<<20)
	cw := &crcWriter{w: bw}
	var scratch [12]byte
	write := func(p []byte) error {
		if retErr == nil {
			if _, err := cw.Write(p); err != nil {
				retErr = fmt.Errorf("durable: writing segment: %w", err)
			}
		}
		return retErr
	}
	_ = write([]byte(segMagic))
	binary.LittleEndian.PutUint64(scratch[:8], seg.start)
	_ = write(scratch[:8])
	binary.LittleEndian.PutUint64(scratch[:8], seg.end)
	_ = write(scratch[:8])
	binary.LittleEndian.PutUint32(scratch[:4], seg.dictFirst)
	_ = write(scratch[:4])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(seg.dict)))
	_ = write(scratch[:4])
	var varint [binary.MaxVarintLen64]byte
	for _, name := range seg.dict {
		n := binary.PutUvarint(varint[:], uint64(len(name)))
		_ = write(varint[:n])
		_ = write([]byte(name))
	}
	writeRun := func(ts []store.IDTriple) {
		binary.LittleEndian.PutUint64(scratch[:8], uint64(len(ts)))
		_ = write(scratch[:8])
		for _, t := range ts {
			binary.LittleEndian.PutUint32(scratch[0:], t.S)
			binary.LittleEndian.PutUint32(scratch[4:], t.P)
			binary.LittleEndian.PutUint32(scratch[8:], t.O)
			if write(scratch[:12]) != nil {
				return
			}
		}
	}
	writeRun(seg.adds)
	writeRun(seg.removes)
	if retErr != nil {
		return 0, retErr
	}
	// Footer: CRC of everything above, then the trailer magic. Written to the
	// buffered writer directly — the CRC must not hash itself.
	binary.LittleEndian.PutUint32(scratch[:4], cw.crc)
	if _, err := bw.Write(scratch[:4]); err != nil {
		return 0, fmt.Errorf("durable: writing segment footer: %w", err)
	}
	if _, err := bw.WriteString(segTrailer); err != nil {
		return 0, fmt.Errorf("durable: writing segment footer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return 0, fmt.Errorf("durable: flushing segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("durable: fsyncing segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("durable: sizing segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("durable: closing segment: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("durable: publishing segment: %w", err)
	}
	return fi.Size(), syncDir(dir)
}

// loadSegment reads and verifies one segment file. Any framing violation —
// bad magic, bad CRC, truncation, an unsorted run, an id at or beyond
// dictFirst+count — is an error: segments are published atomically, so a
// damaged one means real corruption, never a torn write to tolerate. The id
// bound is against the chain prefix the window ends at (dictFirst+count), so
// a segment may freely reference names minted by older segments.
func loadSegment(path string) (segmentData, error) {
	var seg segmentData
	base := filepath.Base(path)
	data, err := os.ReadFile(path)
	if err != nil {
		return seg, fmt.Errorf("durable: reading segment: %w", err)
	}
	seg.size = int64(len(data))
	const header = len(segMagic) + 8 + 8 + 4 + 4
	const footer = 4 + len(segTrailer)
	if len(data) < header+8+8+footer {
		return seg, fmt.Errorf("durable: segment %s is %d bytes, too short to be valid", base, len(data))
	}
	if string(data[:len(segMagic)]) != segMagic {
		return seg, fmt.Errorf("durable: segment %s has a bad magic header", base)
	}
	if string(data[len(data)-len(segTrailer):]) != segTrailer {
		return seg, fmt.Errorf("durable: segment %s has a bad trailer (truncated checkpoint?)", base)
	}
	body := data[:len(data)-footer]
	wantCRC := binary.LittleEndian.Uint32(data[len(body):])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return seg, fmt.Errorf("durable: segment %s fails its checksum", base)
	}

	seg.start = binary.LittleEndian.Uint64(body[len(segMagic):])
	seg.end = binary.LittleEndian.Uint64(body[len(segMagic)+8:])
	if seg.start < 1 || seg.end < seg.start {
		return seg, fmt.Errorf("durable: segment %s claims window [%d, %d]", base, seg.start, seg.end)
	}
	seg.dictFirst = binary.LittleEndian.Uint32(body[len(segMagic)+16:])
	dictCount := int(binary.LittleEndian.Uint32(body[len(segMagic)+20:]))
	if uint64(seg.dictFirst)+uint64(dictCount) > 1<<32-1 {
		return seg, fmt.Errorf("durable: segment %s dictionary window %d+%d overflows the id space", base, seg.dictFirst, dictCount)
	}
	rest := body[header:]
	if dictCount > len(rest) { // every name costs ≥1 length byte
		return seg, fmt.Errorf("durable: segment %s claims %d dictionary names in %d bytes", base, dictCount, len(rest))
	}
	// Walk the varint-framed names once to find where the dictionary ends,
	// then convert that whole region to a single string and slice every name
	// out of it. Converting per name would allocate one heap object per name
	// — for a million-name segment that is a million tiny objects the GC
	// re-scans on every cycle for the life of the store; one backing blob is
	// one object (the varint bytes ride along unreferenced, a few bytes per
	// name of slack).
	dictEnd := 0
	for i := 0; i < dictCount; i++ {
		n, w := binary.Uvarint(rest[dictEnd:])
		if w <= 0 || n > uint64(len(rest)-dictEnd-w) {
			return seg, fmt.Errorf("durable: segment %s: dictionary name %d overruns the file", base, i)
		}
		dictEnd += w + int(n)
	}
	blob := string(rest[:dictEnd])
	seg.dict = make([]string, 0, dictCount)
	for off := 0; off < dictEnd; {
		n, w := binary.Uvarint(rest[off:])
		seg.dict = append(seg.dict, blob[off+w:off+w+int(n)])
		off += w + int(n)
	}
	rest = rest[dictEnd:]
	idBound := seg.dictFirst + store.SymbolID(dictCount)
	readRun := func(what string) ([]store.IDTriple, error) {
		if len(rest) < 8 {
			return nil, fmt.Errorf("durable: segment %s is truncated before its %s count", base, what)
		}
		count := binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
		// Validate by division, not multiplication: 12*count would wrap for
		// a corrupt count near 2^64, sneak past a comparison, and turn the
		// allocation below into a panic instead of a clean error.
		if uint64(len(rest))/12 < count {
			return nil, fmt.Errorf("durable: segment %s claims %d %s triples but carries %d bytes", base, count, what, len(rest))
		}
		ts := make([]store.IDTriple, 0, count)
		for i := uint64(0); i < count; i++ {
			t := store.IDTriple{
				S: binary.LittleEndian.Uint32(rest[12*i:]),
				P: binary.LittleEndian.Uint32(rest[12*i+4:]),
				O: binary.LittleEndian.Uint32(rest[12*i+8:]),
			}
			if t.S >= idBound || t.P >= idBound || t.O >= idBound {
				return nil, fmt.Errorf("durable: segment %s: %s triple %d references id beyond the %d-id dictionary prefix", base, what, i, idBound)
			}
			if i > 0 && !tripleLess(ts[i-1], t) {
				return nil, fmt.Errorf("durable: segment %s: %s run not strictly sorted at triple %d", base, what, i)
			}
			ts = append(ts, t)
		}
		rest = rest[12*count:]
		return ts, nil
	}
	if seg.adds, err = readRun("add"); err != nil {
		return seg, err
	}
	if seg.removes, err = readRun("remove"); err != nil {
		return seg, err
	}
	if len(rest) != 0 {
		return seg, fmt.Errorf("durable: segment %s has %d trailing bytes", base, len(rest))
	}
	return seg, nil
}
