package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/store"
)

// This file is the checkpoint format: an immutable segment file holding a
// whole store — interned dictionary plus sorted id-triple runs — loadable on
// startup without re-parsing a line of JSON. A segment named seg-N captures
// the store's state with every WAL record ≤ N applied, so recovery loads the
// latest segment and replays only the log tail beyond N.
//
// Layout (integers little-endian):
//
//	magic   "ONTOSEG1"                       8 bytes
//	seq     uint64                           the log seq the segment covers through
//	dict    count uint32,
//	        count × (uvarint n, n bytes)     names in id order: ids 0..count-1
//	triples count uint64,
//	        count × (s, p, o uint32)         sorted by (s, p, o)
//	crc     uint32                           CRC-32C of everything above
//	trailer "ONTOSEGE"                       8 bytes
//
// The dictionary is written in id order so loading it into a fresh store by
// interning name after name reproduces ids 0..count-1 exactly — the property
// that lets the replayed log tail keep speaking the same ids. The triple
// runs are sorted so the file is deterministic for a given state and loads
// as one pre-deduplicated batch.
//
// A segment becomes visible atomically: it is written to a .tmp name,
// fsynced, renamed into place, and the directory fsynced. Readers therefore
// never see a half-written seg- file; a crash mid-checkpoint leaves a .tmp
// that recovery deletes.

// Segment magic strings.
const (
	segMagic   = "ONTOSEG1"
	segTrailer = "ONTOSEGE"
)

// segFileName names the segment covering the log through seq.
func segFileName(seq uint64) string {
	return fmt.Sprintf("seg-%016d.seg", seq)
}

// crcWriter feeds every written byte to both the file and the running
// checksum, so the footer CRC covers exactly the bytes on disk before it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, castagnoli, p[:n])
	return n, err
}

// writeSegment atomically writes the segment file for a store state: dict is
// the id→name mapping (index = id), triples the id-level triple set. It
// sorts triples in place. On success the file seg-<seq>.seg is durably in
// dir.
func writeSegment(dir string, seq uint64, dict []string, triples []store.IDTriple) (retErr error) {
	sort.Slice(triples, func(i, j int) bool {
		a, b := triples[i], triples[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.O < b.O
	})

	final := filepath.Join(dir, segFileName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: creating segment: %w", err)
	}
	defer func() {
		if retErr != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	bw := bufio.NewWriterSize(f, 1<<20)
	cw := &crcWriter{w: bw}
	var scratch [12]byte

	if _, err := cw.Write([]byte(segMagic)); err != nil {
		return fmt.Errorf("durable: writing segment: %w", err)
	}
	binary.LittleEndian.PutUint64(scratch[:8], seq)
	if _, err := cw.Write(scratch[:8]); err != nil {
		return fmt.Errorf("durable: writing segment: %w", err)
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(dict)))
	if _, err := cw.Write(scratch[:4]); err != nil {
		return fmt.Errorf("durable: writing segment: %w", err)
	}
	var varint [binary.MaxVarintLen64]byte
	for _, name := range dict {
		n := binary.PutUvarint(varint[:], uint64(len(name)))
		if _, err := cw.Write(varint[:n]); err != nil {
			return fmt.Errorf("durable: writing segment dictionary: %w", err)
		}
		if _, err := io.WriteString(cw, name); err != nil {
			return fmt.Errorf("durable: writing segment dictionary: %w", err)
		}
	}
	binary.LittleEndian.PutUint64(scratch[:8], uint64(len(triples)))
	if _, err := cw.Write(scratch[:8]); err != nil {
		return fmt.Errorf("durable: writing segment: %w", err)
	}
	for _, t := range triples {
		binary.LittleEndian.PutUint32(scratch[0:], t.S)
		binary.LittleEndian.PutUint32(scratch[4:], t.P)
		binary.LittleEndian.PutUint32(scratch[8:], t.O)
		if _, err := cw.Write(scratch[:12]); err != nil {
			return fmt.Errorf("durable: writing segment triples: %w", err)
		}
	}
	// Footer: CRC of everything above, then the trailer magic. Written to the
	// buffered writer directly — the CRC must not hash itself.
	binary.LittleEndian.PutUint32(scratch[:4], cw.crc)
	if _, err := bw.Write(scratch[:4]); err != nil {
		return fmt.Errorf("durable: writing segment footer: %w", err)
	}
	if _, err := bw.WriteString(segTrailer); err != nil {
		return fmt.Errorf("durable: writing segment footer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("durable: flushing segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("durable: fsyncing segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: closing segment: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("durable: publishing segment: %w", err)
	}
	return syncDir(dir)
}

// loadSegment reads and verifies a segment file, returning the log seq it
// covers through, its dictionary in id order, and its sorted triples. Any
// framing violation — bad magic, bad CRC, truncation, an id out of
// dictionary range — is an error: segments are published atomically, so a
// damaged one means real corruption, never a torn write to tolerate.
func loadSegment(path string) (seq uint64, dict []string, triples []store.IDTriple, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("durable: reading segment: %w", err)
	}
	const header = len(segMagic) + 8 + 4
	const footer = 4 + len(segTrailer)
	if len(data) < header+8+footer {
		return 0, nil, nil, fmt.Errorf("durable: segment %s is %d bytes, too short to be valid", filepath.Base(path), len(data))
	}
	if string(data[:len(segMagic)]) != segMagic {
		return 0, nil, nil, fmt.Errorf("durable: segment %s has a bad magic header", filepath.Base(path))
	}
	if string(data[len(data)-len(segTrailer):]) != segTrailer {
		return 0, nil, nil, fmt.Errorf("durable: segment %s has a bad trailer (truncated checkpoint?)", filepath.Base(path))
	}
	body := data[:len(data)-footer]
	wantCRC := binary.LittleEndian.Uint32(data[len(body):])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return 0, nil, nil, fmt.Errorf("durable: segment %s fails its checksum", filepath.Base(path))
	}

	seq = binary.LittleEndian.Uint64(body[len(segMagic):])
	dictCount := int(binary.LittleEndian.Uint32(body[len(segMagic)+8:]))
	rest := body[header:]
	if dictCount > len(rest) {
		return 0, nil, nil, fmt.Errorf("durable: segment %s claims %d dictionary names in %d bytes", filepath.Base(path), dictCount, len(rest))
	}
	dict = make([]string, 0, dictCount)
	for i := 0; i < dictCount; i++ {
		n, w := binary.Uvarint(rest)
		if w <= 0 || n > uint64(len(rest)-w) {
			return 0, nil, nil, fmt.Errorf("durable: segment %s: dictionary name %d overruns the file", filepath.Base(path), i)
		}
		dict = append(dict, string(rest[w:w+int(n)]))
		rest = rest[w+int(n):]
	}
	if len(rest) < 8 {
		return 0, nil, nil, fmt.Errorf("durable: segment %s is truncated before its triple count", filepath.Base(path))
	}
	tripleCount := binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	// Validate by division, not multiplication: 12*tripleCount would wrap
	// for a corrupt count near 2^64, sneak past an equality check, and turn
	// the allocation below into a panic instead of a clean error.
	if len(rest)%12 != 0 || tripleCount != uint64(len(rest)/12) {
		return 0, nil, nil, fmt.Errorf("durable: segment %s claims %d triples but carries %d bytes", filepath.Base(path), tripleCount, len(rest))
	}
	triples = make([]store.IDTriple, 0, tripleCount)
	n := store.SymbolID(dictCount)
	for i := uint64(0); i < tripleCount; i++ {
		t := store.IDTriple{
			S: binary.LittleEndian.Uint32(rest[12*i:]),
			P: binary.LittleEndian.Uint32(rest[12*i+4:]),
			O: binary.LittleEndian.Uint32(rest[12*i+8:]),
		}
		if t.S >= n || t.P >= n || t.O >= n {
			return 0, nil, nil, fmt.Errorf("durable: segment %s: triple %d references id beyond its %d-name dictionary", filepath.Base(path), i, dictCount)
		}
		triples = append(triples, t)
	}
	return seq, dict, triples, nil
}
