package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/store"
)

// This file is startup recovery: scan the data directory, load the latest
// segment into the store, replay the WAL tail beyond it, truncate the torn
// tail a crash may have left, and hand back an open log file positioned for
// appending. The state machine, in order:
//
//	scan      classify directory entries: seg-*.seg, wal-*.wal, leftovers
//	clean     delete *.tmp (unpublished checkpoints) and anything the last
//	          completed checkpoint made obsolete (older segments, wal files
//	          entirely ≤ the segment's seq)
//	load      read the newest segment; intern its dictionary in id order —
//	          which reproduces ids 0..n-1 exactly, because the store mints
//	          dense append-only ids — then bulk-insert its triple runs
//	replay    walk the remaining wal files in ascending order, applying
//	          records and checking the seq chain stays dense
//	truncate  a frame that fails its CRC in the LAST file is a torn tail:
//	          cut the file there and stop. The same failure in any earlier
//	          file is corruption, reported as an error — earlier files were
//	          sealed by a rotation's fsync and have no business being torn.
//	          A frame claiming a payload beyond maxFramePayload is corruption
//	          even in the last file: the writer never produces one (oversized
//	          mutations are chunked), so truncating there would throw away
//	          good records behind a damaged header.
//	reopen    open the last wal file for appending (creating wal-<lastSeq+1>
//	          if the tail is empty), ready for the writer.
//
// Replay is idempotent against the fuzzy checkpoint: a segment dumped
// concurrently with mutations may already contain the effects of tail
// records, so dictionary records verify-or-intern (ids already present must
// resolve to the same name) and triple records re-apply as set operations.

// recovered is what recoverDir hands the engine: the store is loaded, the
// log tail is clean, and file is the wal file to keep appending to.
type recovered struct {
	lastSeq   uint64 // seq of the last record applied (0 = pristine directory)
	file      *os.File
	fileFirst uint64 // first seq of file (its name)
	segSeq    uint64 // seq of the loaded segment, 0 if none
	segments  int    // segment files present (0 or 1 after cleanup)
	walFiles  int    // wal files present, file included
}

// ensureDir creates the data directory if it is missing.
func ensureDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("durable: creating data directory: %w", err)
	}
	return nil
}

// removeFile deletes one file of the data directory.
func removeFile(dir, name string) error {
	if err := os.Remove(filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("durable: removing %s: %w", name, err)
	}
	return nil
}

// walFilesThrough lists the first-seqs of wal files that start at or before
// covered — the files a checkpoint at covered supersedes (rotation
// guarantees a file starting at or before the rotation point also ends
// there).
func walFilesThrough(dir string, covered uint64) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: scanning data directory: %w", err)
	}
	var firsts []uint64
	for _, e := range entries {
		if n, ok := parseSeqName(e.Name(), "wal-", ".wal"); ok && n <= covered {
			firsts = append(firsts, n)
		}
	}
	return firsts, nil
}

// parseSeqName extracts the sequence number from a "prefix-%016d.ext" name.
func parseSeqName(name, prefix, ext string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(ext)]
	if len(mid) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// recoverDir rebuilds st (which must be empty) from dir and returns the open
// log tail. Any error leaves the directory as it was found, minus deleted
// leftovers.
func recoverDir(st *store.Store, dir string) (recovered, error) {
	var rec recovered
	entries, err := os.ReadDir(dir)
	if err != nil {
		return rec, fmt.Errorf("durable: scanning data directory: %w", err)
	}
	var segSeqs, walSeqs []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// An unpublished checkpoint: a crash hit between temp write and
			// rename. The WAL behind it is intact, so it is pure garbage.
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return rec, fmt.Errorf("durable: removing leftover %s: %w", name, err)
			}
		case strings.HasSuffix(name, ".seg"):
			n, ok := parseSeqName(name, "seg-", ".seg")
			if !ok {
				return rec, fmt.Errorf("durable: unrecognized segment file name %q in data directory", name)
			}
			segSeqs = append(segSeqs, n)
		case strings.HasSuffix(name, ".wal"):
			n, ok := parseSeqName(name, "wal-", ".wal")
			if !ok {
				return rec, fmt.Errorf("durable: unrecognized log file name %q in data directory", name)
			}
			walSeqs = append(walSeqs, n)
		default:
			return rec, fmt.Errorf("durable: unexpected file %q in data directory; refusing to treat %s as a WAL directory", name, dir)
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })

	// Load the newest segment; every older one (and every wal file wholly
	// covered by it — rotation happens before the dump, so a file whose first
	// seq is ≤ the segment's seq also ends at or before it) is a leftover of
	// an interrupted cleanup.
	if len(segSeqs) > 0 {
		rec.segSeq = segSeqs[len(segSeqs)-1]
		rec.segments = 1
		for _, n := range segSeqs[:len(segSeqs)-1] {
			if err := os.Remove(filepath.Join(dir, segFileName(n))); err != nil {
				return rec, fmt.Errorf("durable: removing superseded segment: %w", err)
			}
		}
		path := filepath.Join(dir, segFileName(rec.segSeq))
		seq, dict, triples, err := loadSegment(path)
		if err != nil {
			return rec, err
		}
		if seq != rec.segSeq {
			return rec, fmt.Errorf("durable: segment %s claims internal seq %d", filepath.Base(path), seq)
		}
		for i, name := range dict {
			id, err := st.Intern(name)
			if err != nil {
				return rec, fmt.Errorf("durable: segment dictionary entry %d: %w", i, err)
			}
			if id != store.SymbolID(i) {
				return rec, fmt.Errorf("durable: segment dictionary entry %d interned as id %d (duplicate name in segment?)", i, id)
			}
		}
		if _, err := st.AddIDBatch(triples); err != nil {
			return rec, fmt.Errorf("durable: loading segment triples: %w", err)
		}
		rec.lastSeq = rec.segSeq
	}
	keep := walSeqs[:0]
	for _, n := range walSeqs {
		if n <= rec.segSeq && rec.segSeq != 0 {
			if err := os.Remove(filepath.Join(dir, walFileName(n))); err != nil {
				return rec, fmt.Errorf("durable: removing log file behind the checkpoint: %w", err)
			}
			continue
		}
		keep = append(keep, n)
	}
	walSeqs = keep

	// Replay the tail. Rotation boundaries and record seqs must chain
	// densely: file wal-F holds records F, F+1, … and the next file picks up
	// exactly where it ended.
	res := st.NewResolver()
	for i, first := range walSeqs {
		if first != rec.lastSeq+1 {
			return rec, fmt.Errorf("durable: log file %s does not follow record %d; the log has a gap", walFileName(first), rec.lastSeq)
		}
		last := i == len(walSeqs)-1
		path := filepath.Join(dir, walFileName(first))
		lastSeq, err := replayFile(st, res, path, rec.lastSeq, last)
		if err != nil {
			return rec, err
		}
		rec.lastSeq = lastSeq
	}

	// Reopen (or create) the tail file for appending.
	rec.walFiles = len(walSeqs)
	if len(walSeqs) > 0 {
		rec.fileFirst = walSeqs[len(walSeqs)-1]
		f, err := os.OpenFile(filepath.Join(dir, walFileName(rec.fileFirst)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return rec, fmt.Errorf("durable: reopening log tail: %w", err)
		}
		rec.file = f
	} else {
		rec.fileFirst = rec.lastSeq + 1
		f, err := createWALFile(dir, rec.fileFirst)
		if err != nil {
			return rec, err
		}
		rec.file = f
		rec.walFiles = 1
	}
	return rec, nil
}

// replayFile applies every record of one wal file to the store, enforcing
// the dense seq chain from prevSeq. In the last file a frame that fails
// framing is a torn tail: the file is truncated at the last good offset and
// replay ends there. Anywhere else the same failure is corruption.
func replayFile(st *store.Store, res store.Resolver, path string, prevSeq uint64, last bool) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return prevSeq, fmt.Errorf("durable: reading log file: %w", err)
	}
	off := 0
	for off < len(data) {
		payload, next, ok := nextFrame(data, off)
		if !ok {
			// A length field beyond the cap is never a torn tail: the writer
			// chunks every record below maxFramePayload, so an over-cap claim
			// means damage to a frame header (or a log from a broken writer).
			// Truncating here would silently discard every record after it —
			// report it instead, wherever it sits.
			if len(data)-off >= 4 {
				if claim := binary.LittleEndian.Uint32(data[off:]); claim > maxFramePayload {
					return prevSeq, fmt.Errorf("durable: %s: frame at offset %d claims a %d-byte payload, beyond the %d-byte cap the writer enforces; the log is corrupt, not torn", filepath.Base(path), off, claim, maxFramePayload)
				}
			}
			if !last {
				return prevSeq, fmt.Errorf("durable: %s: bad frame at offset %d in a sealed log file; the log is corrupt", filepath.Base(path), off)
			}
			// Torn tail: everything from off on is a half-written frame (or
			// damage to one). Cut it so the writer appends after the last
			// good record instead of burying garbage mid-file.
			if err := os.Truncate(path, int64(off)); err != nil {
				return prevSeq, fmt.Errorf("durable: truncating torn log tail: %w", err)
			}
			return prevSeq, nil
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return prevSeq, fmt.Errorf("durable: %s: offset %d: %w", filepath.Base(path), off, err)
		}
		if r.seq != prevSeq+1 {
			return prevSeq, fmt.Errorf("durable: %s: record at offset %d has seq %d, want %d; the log has a gap", filepath.Base(path), off, r.seq, prevSeq+1)
		}
		if err := applyRecord(st, res, r); err != nil {
			return prevSeq, fmt.Errorf("durable: %s: record %d: %w", filepath.Base(path), r.seq, err)
		}
		prevSeq = r.seq
		off = next
	}
	return prevSeq, nil
}

// applyRecord applies one decoded record. Application is idempotent — the
// fuzzy checkpoint may have captured this record's effects already — so
// dictionary entries verify-or-intern and triple records are set operations.
func applyRecord(st *store.Store, res store.Resolver, r record) error {
	switch r.typ {
	case recDict:
		for i, name := range r.names {
			id := r.first + store.SymbolID(i)
			switch n := store.SymbolID(st.DictLen()); {
			case id < n:
				// Already present (from the segment or an earlier record):
				// the name must agree, or the log and segment disagree about
				// what the id means.
				if got := res.Name(id); got != name {
					return fmt.Errorf("dictionary id %d is %q but the log says %q", id, got, name)
				}
			case id == n:
				got, err := st.Intern(name)
				if err != nil {
					return err
				}
				if got != id {
					return fmt.Errorf("name %q interned as id %d, but the log minted it as %d", name, got, id)
				}
			default:
				return fmt.Errorf("dictionary record skips from id %d to %d", n, id)
			}
		}
	case recAdd:
		if _, err := st.AddIDBatch(r.triples); err != nil {
			return err
		}
	case recRemove:
		st.RemoveID(r.triples[0])
	default:
		return fmt.Errorf("unknown record type %d", r.typ)
	}
	return nil
}
