package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"

	"repro/internal/store"
)

// This file is startup recovery: scan the data directory, chain the delta
// segments, fold them into one state, bulk-restore it into the store, replay
// the WAL tail beyond the chain, truncate the torn tail a crash may have
// left, and hand back an open log file positioned for appending. The state
// machine, in order:
//
//	scan      classify directory entries: seg-*-*.seg, wal-*.wal, leftovers
//	clean     delete *.tmp (unpublished checkpoints and torn merges — a torn
//	          merge is simply not-yet-merged, its inputs still present) and
//	          every segment subsumed by a wider merged segment (leftover
//	          inputs of a merge that crashed between publish and cleanup)
//	chain     order segments by window; they must tile seqs 1..N contiguously
//	          — a gap or partial overlap is corruption, reported, never
//	          papered over
//	fold      apply the chain oldest→newest in memory: concatenate the
//	          dictionary windows, subtract each segment's tombstones, union
//	          its adds — producing one sorted triple set
//	restore   store.RestoreSorted builds the dictionary and all three index
//	          families directly from the folded state: per-shard goroutines,
//	          no per-triple locks, no dedup probing. This is the bulk fast
//	          path; the per-record mutation path below is only for the tail.
//	replay    walk the remaining wal files in ascending order, applying
//	          records and checking the seq chain stays dense
//	truncate  a frame that fails its CRC in the LAST file is a torn tail:
//	          cut the file there and stop. The same failure in any earlier
//	          file is corruption, reported as an error — earlier files were
//	          sealed by a rotation's fsync and have no business being torn.
//	          A frame claiming a payload beyond maxFramePayload is corruption
//	          even in the last file: the writer never produces one (oversized
//	          mutations are chunked), so truncating there would throw away
//	          good records behind a damaged header.
//	reopen    open the last wal file for appending (creating wal-<lastSeq+1>
//	          if the tail is empty), ready for the writer.
//
// Unlike the PR-7 full-dump design, segments are exact WAL folds — a
// checkpoint never reads the live store — so the chain and the tail never
// overlap: every tail record's seq is beyond the chain. Replay keeps its
// verify-or-intern dictionary handling anyway; it is what lets recovery
// diagnose a log that disagrees with its segments instead of corrupting ids.

// recovered is what recoverDir hands the engine: the store is loaded, the
// log tail is clean, and file is the wal file to keep appending to.
type recovered struct {
	lastSeq     uint64 // seq of the last record applied (0 = pristine directory)
	file        *os.File
	fileFirst   uint64         // first seq of file (its name)
	tiers       []segMeta      // the live segment chain, oldest→newest
	dictCovered store.SymbolID // dictionary ids covered by the chain
	walFiles    int            // wal files present, file included
}

// ensureDir creates the data directory if it is missing.
func ensureDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("durable: creating data directory: %w", err)
	}
	return nil
}

// removeFile deletes one file of the data directory.
func removeFile(dir, name string) error {
	if err := os.Remove(filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("durable: removing %s: %w", name, err)
	}
	return nil
}

// walFilesThrough lists the first-seqs of wal files that start at or before
// covered — the files a checkpoint at covered supersedes (rotation
// guarantees a file starting at or before the rotation point also ends
// there).
func walFilesThrough(dir string, covered uint64) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: scanning data directory: %w", err)
	}
	var firsts []uint64
	for _, e := range entries {
		if n, ok := parseSeqName(e.Name(), "wal-", ".wal"); ok && n <= covered {
			firsts = append(firsts, n)
		}
	}
	return firsts, nil
}

// parseSeq parses one fixed-width 16-digit sequence field.
func parseSeq(s string) (uint64, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("durable: sequence field %q is not 16 digits", s)
	}
	return strconv.ParseUint(s, 10, 64)
}

// parseSeqName extracts the sequence number from a "prefix-%016d.ext" name.
func parseSeqName(name, prefix, ext string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
		return 0, false
	}
	n, err := parseSeq(name[len(prefix) : len(name)-len(ext)])
	if err != nil {
		return 0, false
	}
	return n, true
}

// recoverDir rebuilds st (which must be empty) from dir and returns the open
// log tail. Any error leaves the directory as it was found, minus deleted
// leftovers.
func recoverDir(st *store.Store, dir string) (recovered, error) {
	var rec recovered
	entries, err := os.ReadDir(dir)
	if err != nil {
		return rec, fmt.Errorf("durable: scanning data directory: %w", err)
	}
	type segWindow struct {
		start, end uint64
	}
	var segs []segWindow
	var walSeqs []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// An unpublished checkpoint or a torn merge: a crash hit between
			// temp write and rename. The inputs (WAL window or merge inputs)
			// are intact, so the temp file is pure garbage.
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return rec, fmt.Errorf("durable: removing leftover %s: %w", name, err)
			}
		case strings.HasSuffix(name, ".seg"):
			start, end, ok := parseSegmentName(name)
			if !ok {
				return rec, fmt.Errorf("durable: unrecognized segment file name %q in data directory", name)
			}
			segs = append(segs, segWindow{start, end})
		case strings.HasSuffix(name, ".wal"):
			n, ok := parseSeqName(name, "wal-", ".wal")
			if !ok {
				return rec, fmt.Errorf("durable: unrecognized log file name %q in data directory", name)
			}
			walSeqs = append(walSeqs, n)
		default:
			return rec, fmt.Errorf("durable: unexpected file %q in data directory; refusing to treat %s as a WAL directory", name, dir)
		}
	}
	// Chain the segments. Sorting by (start asc, end desc) puts the widest
	// segment at each position first, so a merged segment is preferred over
	// the narrower inputs it folded — those fall inside the chosen coverage
	// and are deleted as leftovers of the merge's interrupted cleanup. A
	// segment that straddles the chosen coverage boundary, or a hole between
	// windows, cannot be produced by any crash of this engine and is
	// reported as corruption.
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].start != segs[j].start {
			return segs[i].start < segs[j].start
		}
		return segs[i].end > segs[j].end
	})
	chain := segs[:0]
	covered := uint64(0)
	for _, sg := range segs {
		switch {
		case sg.end <= covered:
			if err := removeFile(dir, segmentName(sg.start, sg.end)); err != nil {
				return rec, fmt.Errorf("durable: removing merged-away segment: %w", err)
			}
		case sg.start == covered+1:
			chain = append(chain, sg)
			covered = sg.end
		case sg.start <= covered:
			return rec, fmt.Errorf("durable: segment %s overlaps the chain covering through seq %d; the segment set is corrupt", segmentName(sg.start, sg.end), covered)
		default:
			return rec, fmt.Errorf("durable: segment %s does not follow seq %d; a segment is missing", segmentName(sg.start, sg.end), covered)
		}
	}
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })

	// Fold the chain oldest→newest and bulk-restore the result in one shot.
	if len(chain) > 0 {
		// The fold and restore allocate the decoded segments, the folded
		// state, three shard-bucket families, and the index arenas in quick
		// succession while the live heap (the store being built) grows
		// underneath — any GC cycle in that window re-scans a near-final
		// heap just to reclaim the previous phase's scratch (~17% of boot
		// at 1e6 triples). Boot is single-purpose and every allocation here
		// is either the final store or scratch proportional to it, so the
		// peak is O(chain) regardless; suspend collection for the window
		// and restore it before the engine goes live.
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		var dict []string
		var state []store.IDTriple
		for _, sg := range chain {
			path := filepath.Join(dir, segmentName(sg.start, sg.end))
			seg, err := loadSegment(path)
			if err != nil {
				return rec, err
			}
			if seg.start != sg.start || seg.end != sg.end {
				return rec, fmt.Errorf("durable: segment %s claims internal window [%d, %d]", segmentName(sg.start, sg.end), seg.start, seg.end)
			}
			if seg.dictFirst != store.SymbolID(len(dict)) {
				return rec, fmt.Errorf("durable: segment %s starts its dictionary at id %d but the chain has minted %d ids", segmentName(sg.start, sg.end), seg.dictFirst, len(dict))
			}
			if dict == nil {
				dict = seg.dict // common single-base-segment case: no copy
			} else {
				dict = append(dict, seg.dict...)
			}
			state = applySegment(state, seg)
			rec.tiers = append(rec.tiers, metaOf(seg, seg.size))
		}
		if err := st.RestoreSorted(dict, state); err != nil {
			return rec, fmt.Errorf("durable: loading segment chain: %w", err)
		}
		rec.dictCovered = store.SymbolID(len(dict))
		rec.lastSeq = covered
	}

	// Log files wholly behind the chain are leftovers of an interrupted
	// checkpoint cleanup: their records are already folded into a segment.
	keep := walSeqs[:0]
	for _, n := range walSeqs {
		if n <= covered && covered != 0 {
			if err := os.Remove(filepath.Join(dir, walFileName(n))); err != nil {
				return rec, fmt.Errorf("durable: removing log file behind the checkpoint: %w", err)
			}
			continue
		}
		keep = append(keep, n)
	}
	walSeqs = keep

	// Replay the tail. Rotation boundaries and record seqs must chain
	// densely: file wal-F holds records F, F+1, … and the next file picks up
	// exactly where it ended.
	res := st.NewResolver()
	for i, first := range walSeqs {
		if first != rec.lastSeq+1 {
			return rec, fmt.Errorf("durable: log file %s does not follow record %d; the log has a gap", walFileName(first), rec.lastSeq)
		}
		last := i == len(walSeqs)-1
		path := filepath.Join(dir, walFileName(first))
		lastSeq, err := replayFile(st, res, path, rec.lastSeq, last)
		if err != nil {
			return rec, err
		}
		rec.lastSeq = lastSeq
	}

	// Reopen (or create) the tail file for appending.
	rec.walFiles = len(walSeqs)
	if len(walSeqs) > 0 {
		rec.fileFirst = walSeqs[len(walSeqs)-1]
		f, err := os.OpenFile(filepath.Join(dir, walFileName(rec.fileFirst)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return rec, fmt.Errorf("durable: reopening log tail: %w", err)
		}
		rec.file = f
	} else {
		rec.fileFirst = rec.lastSeq + 1
		f, err := createWALFile(dir, rec.fileFirst)
		if err != nil {
			return rec, err
		}
		rec.file = f
		rec.walFiles = 1
	}
	return rec, nil
}

// replayFile applies every record of one wal file to the store, enforcing
// the dense seq chain from prevSeq. In the last file a frame that fails
// framing is a torn tail: the file is truncated at the last good offset and
// replay ends there. Anywhere else the same failure is corruption.
func replayFile(st *store.Store, res store.Resolver, path string, prevSeq uint64, last bool) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return prevSeq, fmt.Errorf("durable: reading log file: %w", err)
	}
	off := 0
	for off < len(data) {
		payload, next, ok := nextFrame(data, off)
		if !ok {
			// A length field beyond the cap is never a torn tail: the writer
			// chunks every record below maxFramePayload, so an over-cap claim
			// means damage to a frame header (or a log from a broken writer).
			// Truncating here would silently discard every record after it —
			// report it instead, wherever it sits.
			if len(data)-off >= 4 {
				if claim := binary.LittleEndian.Uint32(data[off:]); claim > maxFramePayload {
					return prevSeq, fmt.Errorf("durable: %s: frame at offset %d claims a %d-byte payload, beyond the %d-byte cap the writer enforces; the log is corrupt, not torn", filepath.Base(path), off, claim, maxFramePayload)
				}
			}
			if !last {
				return prevSeq, fmt.Errorf("durable: %s: bad frame at offset %d in a sealed log file; the log is corrupt", filepath.Base(path), off)
			}
			// Torn tail: everything from off on is a half-written frame (or
			// damage to one). Cut it so the writer appends after the last
			// good record instead of burying garbage mid-file.
			if err := os.Truncate(path, int64(off)); err != nil {
				return prevSeq, fmt.Errorf("durable: truncating torn log tail: %w", err)
			}
			return prevSeq, nil
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return prevSeq, fmt.Errorf("durable: %s: offset %d: %w", filepath.Base(path), off, err)
		}
		if r.seq != prevSeq+1 {
			return prevSeq, fmt.Errorf("durable: %s: record at offset %d has seq %d, want %d; the log has a gap", filepath.Base(path), off, r.seq, prevSeq+1)
		}
		if err := applyRecord(st, res, r); err != nil {
			return prevSeq, fmt.Errorf("durable: %s: record %d: %w", filepath.Base(path), r.seq, err)
		}
		prevSeq = r.seq
		off = next
	}
	return prevSeq, nil
}

// applyRecord applies one decoded record. Dictionary entries verify-or-intern
// — an id already minted (by the segment chain or an earlier record) must
// resolve to the same name, or the log and segments disagree about what the
// id means — and triple records are set operations, so replay is idempotent.
func applyRecord(st *store.Store, res store.Resolver, r record) error {
	switch r.typ {
	case recDict:
		for i, name := range r.names {
			id := r.first + store.SymbolID(i)
			switch n := store.SymbolID(st.DictLen()); {
			case id < n:
				if got := res.Name(id); got != name {
					return fmt.Errorf("dictionary id %d is %q but the log says %q", id, got, name)
				}
			case id == n:
				got, err := st.Intern(name)
				if err != nil {
					return err
				}
				if got != id {
					return fmt.Errorf("name %q interned as id %d, but the log minted it as %d", name, got, id)
				}
			default:
				return fmt.Errorf("dictionary record skips from id %d to %d", n, id)
			}
		}
	case recAdd:
		if _, err := st.AddIDBatch(r.triples); err != nil {
			return err
		}
	case recRemove:
		st.RemoveID(r.triples[0])
	default:
		return fmt.Errorf("unknown record type %d", r.typ)
	}
	return nil
}
