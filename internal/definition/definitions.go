package definition

import (
	"fmt"

	"repro/internal/worlds"
)

// Verdict is a definition's judgement of one artifact.
type Verdict struct {
	Accepted bool
	Reason   string
}

// Definition is a candidate definition of "ontonomy" rendered as an
// acceptance predicate over arbitrary artifacts. The paper's criterion for an
// adequate definition is that "given an arbitrary string of symbols, a
// definition should allow one to determine whether the string is [an
// ontonomy] or not"; the three definitions below differ precisely in how much
// they can determine.
type Definition struct {
	// Name is the short name used in the E1 table rows.
	Name string
	// Source describes where the definition comes from.
	Source string
	// Accepts judges an artifact.
	Accepts func(Artifact) Verdict
}

// Functional is the Gruber-style definition the paper quotes as the most
// common one: "an ontology is a formalization of a conceptualization". Read
// as an acceptance predicate it can only require that the artifact be a
// formalization of *something*: a finite organized arrangement of symbols.
// Every family in the population passes.
func Functional() Definition {
	return Definition{
		Name:   "functional (Gruber)",
		Source: "a formalization of a conceptualization",
		Accepts: func(a Artifact) Verdict {
			if len(a.Symbols()) == 0 {
				return Verdict{Accepted: false, Reason: "no symbols: nothing has been formalized"}
			}
			if len(a.Statements()) == 0 {
				return Verdict{Accepted: false, Reason: "no statements: the symbols are not organized by any scheme"}
			}
			return Verdict{
				Accepted: true,
				Reason:   fmt.Sprintf("a finite arrangement of %d symbols; some conceptualization can be read into it", len(a.Symbols())),
			}
		},
	}
}

// Approximation is the Guarino-style definition as the paper reconstructs it:
// an ontonomy is a set of axioms whose models approximate the intended models
// of a language under some ontological commitment. Because "approximates"
// only requires sharing at least one model with the commitment, and because
// the language and commitment may be chosen freely, the predicate reduces to:
// the artifact's statements admit at least one model. Only genuinely
// unsatisfiable clause sets fail.
func Approximation() Definition {
	return Definition{
		Name:   "approximation (Guarino)",
		Source: "axioms whose models approximate the intended models of L under K",
		Accepts: func(a Artifact) Verdict {
			if len(a.Statements()) == 0 {
				return Verdict{Accepted: false, Reason: "no statements, hence no models to approximate anything with"}
			}
			if cs, ok := a.(ClauseSetArtifact); ok {
				if !satisfiable(cs.Clauses) {
					return Verdict{Accepted: false, Reason: "the clause set is unsatisfiable: it has no models at all"}
				}
				if cs.Clauses.AllTautologies() {
					return Verdict{
						Accepted: true,
						Reason:   "a set of tautologies: every model approximates every commitment (the paper's reductio)",
					}
				}
				return Verdict{Accepted: true, Reason: "satisfiable, so its models approximate the intended models of some language"}
			}
			return Verdict{
				Accepted: true,
				Reason: fmt.Sprintf("%d statements that can be read as a satisfiable axiom set for a suitably chosen language",
					len(a.Statements())),
			}
		},
	}
}

// Structural is the Bench-Capon & Malcolm definition (the paper's Definition
// 1): an ontonomy is an ontology signature — a data domain, a class hierarchy
// and an attribute family satisfying the inheritance condition — together
// with axioms. The predicate checks for that structure and nothing else; in
// particular it needs no appeal to intended use.
func Structural() Definition {
	return Definition{
		Name:   "structural (Bench-Capon & Malcolm)",
		Source: "an ontology signature (D, C, A) plus axioms, Definition 1",
		Accepts: func(a Artifact) Verdict {
			onto, ok := a.(OntonomyArtifact)
			if !ok {
				return Verdict{
					Accepted: false,
					Reason:   fmt.Sprintf("a %s presents no data domain, class hierarchy or attribute family", a.Kind()),
				}
			}
			sig := onto.Ontonomy.Sig
			if sig.Classes().Len() == 0 {
				return Verdict{Accepted: false, Reason: "the class hierarchy is empty"}
			}
			if sig.Domain() == nil {
				return Verdict{Accepted: false, Reason: "no data domain"}
			}
			if err := sig.CheckInheritanceCondition(); err != nil {
				return Verdict{Accepted: false, Reason: err.Error()}
			}
			return Verdict{Accepted: true, Reason: "a well-formed ontology signature with axioms"}
		},
	}
}

// AllDefinitions returns the three definitions in the order the E1 table
// reports them.
func AllDefinitions() []Definition {
	return []Definition{Functional(), Approximation(), Structural()}
}

// satisfiable reports whether a set of ground clauses has a model, by
// backtracking over truth assignments to the distinct ground atoms with unit
// propagation on singleton clauses. The clause sets produced by the workload
// are small (tens of atoms), so the search is cheap.
func satisfiable(o *worlds.Ontonomy) bool {
	type atom struct {
		rel  string
		args string
	}
	atomIndex := map[atom]int{}
	var atoms []atom
	clauses := make([][]int, 0, len(o.Axioms)) // positive: var+1, negative: -(var+1)
	for _, ax := range o.Axioms {
		var clause []int
		for _, lit := range ax.Literals {
			a := atom{rel: lit.Relation, args: lit.Args.String()}
			idx, ok := atomIndex[a]
			if !ok {
				idx = len(atoms)
				atomIndex[a] = idx
				atoms = append(atoms, a)
			}
			v := idx + 1
			if lit.Negated {
				v = -v
			}
			clause = append(clause, v)
		}
		if len(clause) == 0 {
			return false // the empty clause
		}
		clauses = append(clauses, clause)
	}
	assignment := make([]int8, len(atoms)) // 0 unknown, 1 true, -1 false
	var solve func() bool
	satisfiedOrUnit := func() (conflict bool, unit int) {
		for _, clause := range clauses {
			sat := false
			unassigned := 0
			lastUnassigned := 0
			for _, v := range clause {
				idx := v
				want := int8(1)
				if v < 0 {
					idx = -v
					want = -1
				}
				switch assignment[idx-1] {
				case 0:
					unassigned++
					lastUnassigned = v
				case want:
					sat = true
				}
			}
			if sat {
				continue
			}
			if unassigned == 0 {
				return true, 0
			}
			if unassigned == 1 {
				return false, lastUnassigned
			}
		}
		return false, 0
	}
	solve = func() bool {
		conflict, unit := satisfiedOrUnit()
		if conflict {
			return false
		}
		if unit != 0 {
			idx, val := unit, int8(1)
			if unit < 0 {
				idx, val = -unit, -1
			}
			assignment[idx-1] = val
			if solve() {
				return true
			}
			assignment[idx-1] = 0
			return false
		}
		// Pick the first unassigned atom.
		pick := -1
		for i, v := range assignment {
			if v == 0 {
				pick = i
				break
			}
		}
		if pick == -1 {
			return true // everything assigned, no conflict
		}
		for _, val := range []int8{1, -1} {
			assignment[pick] = val
			if solve() {
				return true
			}
		}
		assignment[pick] = 0
		return false
	}
	return solve()
}
